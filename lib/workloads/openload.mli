open Danaus_sim

(** Open-loop load generator: seeded Poisson arrivals of whole-file
    reads at a configured offered rate, independent of completions —
    the generator that exposes the saturation knee, where a closed loop
    would self-throttle and hide the collapse.

    Each arrival forks a process that opens a random file of the set,
    reads it whole and closes it through the supplied view.  Results are
    classified as good (completed within the [sla] latency bound), shed
    ([Rejected] by admission control or a full IPC ring), failed (any
    other error) — goodput is good ops per second of the offered
    window. *)

type params = {
  rate : float;  (** offered arrivals per simulated second *)
  duration : float;  (** arrival window, seconds *)
  op_bytes : int;  (** bytes read per op (also the file size) *)
  files : int;
  threads : int;  (** application thread ids cycled for IPC pinning *)
  dir : string;
  sla : float;  (** latency bound classifying a completion as good *)
  write_frac : float;
      (** fraction of ops that rewrite the file instead of reading it *)
}

(** 100 ops/s for 10 s, 256 KiB ops over 64 files, 8 threads, 0.5 s
    SLA, pure reads. *)
val default_params : params

type result = {
  offered : int;
  completed : int;
  good : int;  (** completed within [sla] *)
  shed : int;  (** answered [Rejected] without backend work *)
  failed : int;
  latency : Stats.t;  (** completion latencies (arrival to return) *)
  elapsed : float;  (** window plus drain of in-flight ops *)
  goodput_ops : float;  (** good / duration *)
}

(** Create the fileset (setup phase; reset metrics afterwards). *)
val prepopulate : Workload.ctx -> view:Workload.view -> params -> unit

(** Offer load for [duration], then drain and classify every op.  Must
    run inside a process. *)
val run : Workload.ctx -> view:Workload.view -> params -> result
