open Danaus_sim
open Danaus_client

type params = {
  rate : float;
  duration : float;
  op_bytes : int;
  files : int;
  threads : int;
  dir : string;
  sla : float;
  write_frac : float;
}

let default_params =
  {
    rate = 100.0;
    duration = 10.0;
    op_bytes = 256 * 1024;
    files = 64;
    threads = 8;
    dir = "/openload";
    sla = 0.5;
    write_frac = 0.0;
  }

type result = {
  offered : int;
  completed : int;
  good : int;
  shed : int;
  failed : int;
  latency : Stats.t;
  elapsed : float;
  goodput_ops : float;
}

let file_path p idx = Printf.sprintf "%s/f%04d" p.dir idx

let prepopulate ctx ~view p =
  let pool = ctx.Workload.pool in
  let iface = view ~thread:0 in
  Workload.exn_on_error "openload: mkdir" (iface.Client_intf.mkdir_p ~pool p.dir);
  for idx = 0 to p.files - 1 do
    match iface.Client_intf.open_file ~pool (file_path p idx) Client_intf.flags_wo with
    | Error e -> failwith ("openload: create: " ^ Client_intf.error_to_string e)
    | Ok fd ->
        Workload.exn_on_error "openload: write"
          (iface.Client_intf.write ~pool fd ~off:0 ~len:p.op_bytes);
        iface.Client_intf.close ~pool fd
  done

(* One op: open a random file of the set, read (or rewrite) it whole,
   close.  The caller is charged nothing beyond what the stack itself
   costs, so the measured knee is the stack's, not the generator's. *)
let one_op ctx ~view ~thread p ~write idx =
  let pool = ctx.Workload.pool in
  let iface = view ~thread in
  let flags = if write then Client_intf.flags_wo else Client_intf.flags_ro in
  match iface.Client_intf.open_file ~pool (file_path p idx) flags with
  | Error e -> Error e
  | Ok fd ->
      let r =
        if write then iface.Client_intf.write ~pool fd ~off:0 ~len:p.op_bytes
        else
          Result.map
            (fun (_ : int) -> ())
            (Client_intf.read_exact iface ~pool fd ~off:0 ~len:p.op_bytes)
      in
      iface.Client_intf.close ~pool fd;
      r

let run ctx ~view p =
  let engine = ctx.Workload.engine in
  let wg = Waitgroup.create engine in
  let offered = ref 0
  and completed = ref 0
  and good = ref 0
  and shed = ref 0
  and failed = ref 0 in
  let latency = Stats.create () in
  let start = Engine.now engine in
  let stop_at = start +. p.duration in
  while Engine.now engine < stop_at do
    (* thread ids cycle over a small pool so IPC queue pinning sees a
       bounded set of application threads, as a real app would expose *)
    let thread = 1 + (!offered mod p.threads) in
    let idx = Rng.int ctx.Workload.rng p.files in
    (* the write draw only happens for mixed workloads, so pure-read
       parameter sets keep their historical RNG stream *)
    let write =
      p.write_frac > 0.0 && Rng.float ctx.Workload.rng < p.write_frac
    in
    incr offered;
    Waitgroup.add wg;
    Engine.fork ~name:"openload.op" (fun () ->
        let t0 = Engine.now engine in
        let r = one_op ctx ~view ~thread p ~write idx in
        let dt = Engine.now engine -. t0 in
        (match r with
        | Ok () ->
            incr completed;
            Stats.add latency dt;
            if dt <= p.sla then incr good
        | Error Client_intf.Rejected -> incr shed
        | Error _ -> incr failed);
        Waitgroup.finish wg);
    Engine.sleep (Rng.exponential ctx.Workload.rng ~mean:(1.0 /. p.rate))
  done;
  (* open loop: arrivals stop at the window's end, but every op already
     in the system is drained and classified *)
  Waitgroup.wait wg;
  let elapsed = Engine.now engine -. start in
  {
    offered = !offered;
    completed = !completed;
    good = !good;
    shed = !shed;
    failed = !failed;
    latency;
    elapsed;
    goodput_ops = float_of_int !good /. p.duration;
  }
