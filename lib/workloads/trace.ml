open Danaus_sim
open Danaus_client

type event =
  | Open of { file : string; write : bool }
  | Read of { file : string; off : int; len : int }
  | Write of { file : string; off : int; len : int }
  | Stat of string
  | Unlink of string
  | Sleep of float

type t = event array

(* ------------------------------------------------------------------ *)
(* Text format *)

let event_to_string = function
  | Open { file; write = false } -> "open " ^ file
  | Open { file; write = true } -> "openw " ^ file
  | Read { file; off; len } -> Printf.sprintf "read %s %d %d" file off len
  | Write { file; off; len } -> Printf.sprintf "write %s %d %d" file off len
  | Stat file -> "stat " ^ file
  | Unlink file -> "unlink " ^ file
  | Sleep s -> Printf.sprintf "sleep %g" s

let to_string t =
  String.concat "\n" (Array.to_list (Array.map event_to_string t)) ^ "\n"

let parse_line line =
  let strip s =
    match String.index_opt s '#' with
    | Some i -> String.trim (String.sub s 0 i)
    | None -> String.trim s
  in
  let line = strip line in
  if line = "" then Ok None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ "open"; file ] -> Ok (Some (Open { file; write = false }))
    | [ "openw"; file ] -> Ok (Some (Open { file; write = true }))
    | [ "read"; file; off; len ] -> begin
        match (int_of_string_opt off, int_of_string_opt len) with
        | Some off, Some len -> Ok (Some (Read { file; off; len }))
        | _ -> Error line
      end
    | [ "write"; file; off; len ] -> begin
        match (int_of_string_opt off, int_of_string_opt len) with
        | Some off, Some len -> Ok (Some (Write { file; off; len }))
        | _ -> Error line
      end
    | [ "stat"; file ] -> Ok (Some (Stat file))
    | [ "unlink"; file ] -> Ok (Some (Unlink file))
    | [ "sleep"; s ] -> begin
        match float_of_string_opt s with
        | Some s when s >= 0.0 -> Ok (Some (Sleep s))
        | _ -> Error line
      end
    | _ -> Error line

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: rest -> begin
        match parse_line line with
        | Ok None -> go acc rest
        | Ok (Some ev) -> go (ev :: acc) rest
        | Error bad -> Error bad
      end
  in
  go [] lines

(* ------------------------------------------------------------------ *)
(* Synthesis *)

let synthesize rng ~ops ~files ~mean_io ~write_fraction ~dir =
  Danaus_check.Check.precondition ~layer:"workload" ~what:"synthesize_args"
    ~detail:(fun () ->
      Printf.sprintf "ops %d, files %d, mean_io %d" ops files mean_io)
    (ops >= 0 && files > 0 && mean_io > 0);
  let path i = Printf.sprintf "%s/t%05d" dir i in
  let io () =
    Stdlib.max 1 (int_of_float (Rng.exponential rng ~mean:(float_of_int mean_io)))
  in
  Array.init ops (fun _ ->
      let file = path (Rng.int rng files) in
      let r = Rng.float rng in
      if r < write_fraction then
        Write { file; off = Rng.int rng (16 * 1024 * 1024); len = io () }
      else if r < write_fraction +. ((1.0 -. write_fraction) *. 0.8) then
        Read { file; off = Rng.int rng (16 * 1024 * 1024); len = io () }
      else Stat file)

(* ------------------------------------------------------------------ *)
(* Replay *)

type replay_state = {
  iface : Client_intf.t;
  fds : (string, Client_intf.fd) Hashtbl.t;
  mutable errors : int;
}

let fd_for st ~pool ~write file =
  match Hashtbl.find_opt st.fds file with
  | Some fd -> Some fd
  | None -> begin
      let flags =
        if write then
          { Client_intf.rd = true; wr = true; append = false; create = true; trunc = false }
        else Client_intf.flags_ro
      in
      match st.iface.Client_intf.open_file ~pool file flags with
      | Ok fd ->
          Hashtbl.replace st.fds file fd;
          Some fd
      | Error _ ->
          st.errors <- st.errors + 1;
          None
    end

let run_event st ctx stats ev =
  let pool = ctx.Workload.pool in
  let now () = Engine.now ctx.Workload.engine in
  match ev with
  | Sleep s -> Engine.sleep s
  | Open { file; write } -> ignore (fd_for st ~pool ~write file)
  | Stat file -> begin
      let t0 = now () in
      match st.iface.Client_intf.stat ~pool file with
      | Ok _ -> Workload.record stats ~started:t0 ~now:(now ()) ~read:0 ~written:0
      | Error _ -> st.errors <- st.errors + 1
    end
  | Unlink file -> begin
      Hashtbl.remove st.fds file;
      match st.iface.Client_intf.unlink ~pool file with
      | Ok () -> ()
      | Error _ -> st.errors <- st.errors + 1
    end
  | Read { file; off; len } -> begin
      match fd_for st ~pool ~write:false file with
      | None -> ()
      | Some fd -> begin
          let t0 = now () in
          match st.iface.Client_intf.read ~pool fd ~off ~len with
          | Ok n -> Workload.record stats ~started:t0 ~now:(now ()) ~read:n ~written:0
          | Error _ -> st.errors <- st.errors + 1
        end
    end
  | Write { file; off; len } -> begin
      match fd_for st ~pool ~write:true file with
      | None -> ()
      | Some fd -> begin
          let t0 = now () in
          match st.iface.Client_intf.write ~pool fd ~off ~len with
          | Ok () -> Workload.record stats ~started:t0 ~now:(now ()) ~read:0 ~written:len
          | Error _ -> st.errors <- st.errors + 1
        end
    end

let replay ctx ~view ?(threads = 1) trace =
  Danaus_check.Check.precondition ~layer:"workload" ~what:"replay_threads"
    ~detail:(fun () -> Printf.sprintf "threads %d" threads)
    (threads >= 1);
  let engine = ctx.Workload.engine in
  let pool = ctx.Workload.pool in
  let stats = Workload.fresh_stats () in
  let errors = ref 0 in
  let started = Engine.now engine in
  let wg = Waitgroup.create engine in
  for thread = 1 to threads do
    Waitgroup.add wg;
    let iface = view ~thread in
    Engine.fork ~name:(Printf.sprintf "trace-%d" thread) (fun () ->
        let st = { iface; fds = Hashtbl.create 64; errors = 0 } in
        Array.iteri
          (fun i ev -> if i mod threads = thread - 1 then run_event st ctx stats ev)
          trace;
        Hashtbl.iter (fun _ fd -> iface.Client_intf.close ~pool fd) st.fds;
        errors := !errors + st.errors;
        Waitgroup.finish wg)
  done;
  Waitgroup.wait wg;
  (stats, Engine.now engine -. started, !errors)
