open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_client

type ctx = { engine : Engine.t; cpu : Cpu.t; pool : Cgroup.t; rng : Rng.t }

let make_ctx engine ~cpu ~pool ~seed = { engine; cpu; pool; rng = Rng.create seed }

let app_cpu ctx dt =
  if dt > 0.0 then
    Cpu.compute ctx.cpu ~tenant:(Cgroup.name ctx.pool) ~eligible:(Cgroup.cores ctx.pool)
      dt

type io_stats = {
  mutable ops : int;
  mutable bytes_read : float;
  mutable bytes_written : float;
  op_latency : Stats.t;
}

let fresh_stats () =
  { ops = 0; bytes_read = 0.0; bytes_written = 0.0; op_latency = Stats.create () }

let record s ~started ~now ~read ~written =
  s.ops <- s.ops + 1;
  s.bytes_read <- s.bytes_read +. float_of_int read;
  s.bytes_written <- s.bytes_written +. float_of_int written;
  Stats.add s.op_latency (now -. started)

let throughput_mbps s ~elapsed =
  if elapsed <= 0.0 then 0.0
  else (s.bytes_read +. s.bytes_written) /. elapsed /. 1.0e6

let chunked ~chunk ~total f =
  Danaus_check.Check.precondition ~layer:"workload" ~what:"chunk_size"
    ~detail:(fun () -> Printf.sprintf "chunk %d" chunk)
    (chunk > 0);
  let off = ref 0 in
  while !off < total do
    let len = Stdlib.min chunk (total - !off) in
    f ~off:!off ~len;
    off := !off + len
  done

type view = thread:int -> Client_intf.t

let exn_on_error what = function
  | Ok v -> v
  | Error e ->
      failwith (Printf.sprintf "%s: %s" what (Client_intf.error_to_string e))
