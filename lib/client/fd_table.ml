open Danaus_ceph

type entry = {
  path : string;
  ino : int;
  flags : Client_intf.flags;
  mutable written : bool;
  mutable last_end : int; (* end offset of the previous read (readahead) *)
}

type t = {
  fds : (int, entry) Hashtbl.t;
  sizes : (int, int ref) Hashtbl.t;
  cursors : (int, int ref) Hashtbl.t;
  attrs : (string, Namespace.attr option * float) Hashtbl.t;
  mutable next_fd : int;
}

let create () =
  {
    fds = Hashtbl.create 64;
    sizes = Hashtbl.create 1024;
    cursors = Hashtbl.create 1024;
    attrs = Hashtbl.create 1024;
    next_fd = 3;
  }

let insert t ~path ~ino ~flags =
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  Hashtbl.add t.fds fd { path; ino; flags; written = false; last_end = 0 };
  fd

let find t fd = Hashtbl.find_opt t.fds fd
let remove t fd = Hashtbl.remove t.fds fd

let cell tbl key =
  match Hashtbl.find tbl key with
  | r -> r
  | exception Not_found ->
      let r = ref 0 in
      Hashtbl.add tbl key r;
      r

let size_ref t ino = cell t.sizes ino
let cursor_ref t ino = cell t.cursors ino
let put_attr t path attr ~now = Hashtbl.replace t.attrs path (attr, now)

let get_attr t path ~now ~lease =
  match Hashtbl.find t.attrs path with
  | attr, at when now -. at <= lease -> Some attr
  | _ -> None
  | exception Not_found -> None

let drop_attr t path = Hashtbl.remove t.attrs path
let open_count t = Hashtbl.length t.fds
