open Danaus_sim

(** Exponential backoff with seeded jitter around any result-returning
    operation.  The sole error-recovery mechanism of the client stack:
    transient failures (a crashed service awaiting supervised restart, a
    dead OSD awaiting mark-down and failover) clear within the backoff
    budget; anything else surfaces to the caller after the budget is
    spent.  All delays are simulated time and all jitter is drawn from a
    seeded {!Rng}, so runs stay deterministic. *)

type policy = {
  attempts : int;  (** total tries including the first *)
  base_delay : float;  (** delay before the 2nd try, seconds *)
  multiplier : float;  (** delay growth per retry *)
  max_delay : float;  (** backoff cap, seconds *)
  jitter : float;  (** extra uniform-random fraction of each delay *)
}

val default : policy

(** Sized to ride out a supervised restart of a crashed service. *)
val crash_policy : policy

(** Sized to ride out OSD mark-down (heartbeat + grace) and failover. *)
val net_policy : policy

type counters = {
  rt_obs : Obs.t;  (** for the backoff trace span fast-path check *)
  rt_key : string;
  retries_c : Obs.counter;
  giveups_c : Obs.counter;
  deadline_giveups_c : Obs.counter;
  no_replica_c : Obs.counter;
}

(** Intern the [client/retries], [client/giveups],
    [client/deadline_giveups] and [client/no_replica] counters for [key]
    (conventionally the pool name). *)
val counters : Obs.t -> key:string -> counters

(** Count a [No_replica] failure that survived the retry budget under
    [client/no_replica] — the per-pool acceptance signal for
    degraded-mode reads (0 while any surviving replica can serve). *)
val note_no_replica : counters -> unit

(** [with_retry ~rng ~counters ~transient f] runs [f], retrying up to
    [policy.attempts] times while [f] returns [Error e] with
    [transient e], sleeping the backoff delay between tries.  Counts
    each retry and each exhausted budget.

    [deadline] (absolute simulated time; defaults to the ambient
    {!Engine.deadline} of the calling process) bounds the loop: when the
    next backoff sleep would end at or past the deadline, the loop
    surfaces the last error immediately instead of sleeping, counted
    under [client/deadline_giveups] (not [client/giveups]).  The jitter
    draw still happens, so seeded runs stay deterministic whether or not
    a deadline is in force. *)
val with_retry :
  ?policy:policy ->
  ?deadline:float ->
  rng:Rng.t ->
  counters:counters ->
  transient:('e -> bool) ->
  (unit -> ('a, 'e) result) ->
  ('a, 'e) result

(** [wrap engine ~seed ~key inner] is [inner] with every fallible
    operation retried on {!Client_intf.is_transient} errors.
    [op_budget] additionally stamps every wrapped op with the absolute
    deadline [now + op_budget] via {!Engine.with_deadline}, making the
    whole stack below the wrapper deadline-aware. *)
val wrap :
  Engine.t ->
  ?policy:policy ->
  ?op_budget:float ->
  seed:int ->
  key:string ->
  Client_intf.t ->
  Client_intf.t
