open Danaus_kernel
open Danaus_ceph

(** Kernel-based CephFS client (the paper's "K").

    Serves I/O inside the shared host kernel: data lives in the *shared*
    page cache, writeback is done by the *shared* kernel flushers (on any
    activated core), and every operation briefly takes host-wide kernel
    locks (VFS dcache, superblock inode-mutex class) besides the
    per-inode mutex on writes.  These shared resources are exactly what
    collapses under colocation in the paper's Fig. 1/6. *)

type t

(** [create kernel ~cluster ~name ~max_dirty] mounts a kernel client.
    [max_dirty] is the mount's dirty limit (paper: 50% of the pool RAM);
    [mem_limit] bounds the page cache the mount may hold (the pool's
    cgroup memory limit).  [readahead] defaults to 4 MiB. *)
val create :
  Kernel.t -> cluster:Cluster.t -> name:string -> max_dirty:int -> ?mem_limit:int ->
  ?readahead:int -> unit -> t

(** The client as a generic filesystem instance.  All CPU is charged to
    the *calling* pool (cpuset applies to syscall context), while
    writeback runs on the kernel's threads. *)
val iface : t -> Client_intf.t

val name : t -> string

(** {1 Fault injection} — the in-kernel client wedges/recovers.  While
    crashed, every operation on every mount answers [Error Crashed]. *)

val crash : t -> unit

val restart : t -> unit

val crashed : t -> bool
