open Danaus_sim

type policy = {
  attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
}

let default = { attempts = 6; base_delay = 0.1; multiplier = 2.0; max_delay = 5.0; jitter = 0.25 }

(* Sized to ride out a supervised service restart (sub-second to a few
   seconds): 8 attempts starting at 50 ms cover ~6 s of backoff. *)
let crash_policy =
  { attempts = 8; base_delay = 0.05; multiplier = 2.0; max_delay = 2.0; jitter = 0.25 }

(* Sized to ride out an OSD mark-down window (heartbeat + grace, a few
   seconds) plus failover. *)
let net_policy =
  { attempts = 6; base_delay = 0.1; multiplier = 2.0; max_delay = 5.0; jitter = 0.25 }

let backoff_delay policy ~rng ~attempt =
  let d =
    Float.min policy.max_delay
      (policy.base_delay *. (policy.multiplier ** float_of_int (attempt - 1)))
  in
  let delay = d *. (1.0 +. (policy.jitter *. Rng.float rng)) in
  Danaus_check.Check.require ~layer:"retry" ~what:"backoff_bounds"
    ~detail:(fun () ->
      Printf.sprintf "attempt %d: delay %g outside [0, %g]" attempt delay
        (policy.max_delay *. (1.0 +. policy.jitter)))
    (delay >= 0.0 && delay <= policy.max_delay *. (1.0 +. policy.jitter));
  delay

type counters = {
  rt_obs : Obs.t;
  rt_key : string;
  retries_c : Obs.counter;
  giveups_c : Obs.counter;
  deadline_giveups_c : Obs.counter;
  no_replica_c : Obs.counter;
}

let counters obs ~key =
  {
    rt_obs = obs;
    rt_key = key;
    retries_c = Obs.counter obs ~layer:"client" ~name:"retries" ~key;
    giveups_c = Obs.counter obs ~layer:"client" ~name:"giveups" ~key;
    deadline_giveups_c =
      Obs.counter obs ~layer:"client" ~name:"deadline_giveups" ~key;
    no_replica_c = Obs.counter obs ~layer:"client" ~name:"no_replica" ~key;
  }

(* A [No_replica] that survived the whole retry budget: the acceptance
   signal for degraded-mode serving (should stay 0 while a surviving
   replica exists). *)
let note_no_replica c = Obs.incr c.no_replica_c

let with_retry ?(policy = default) ?deadline ~rng ~counters ~transient f =
  (* default to the ambient process deadline so every retry site becomes
     deadline-aware without changing its call *)
  let deadline =
    match deadline with Some _ as d -> d | None -> Engine.deadline ()
  in
  let rec go attempt =
    match f () with
    | Ok _ as ok -> ok
    | Error e when transient e && attempt < policy.attempts -> (
        let delay = backoff_delay policy ~rng ~attempt in
        match deadline with
        | Some dl when Engine.time () +. delay >= dl ->
            (* the sleep alone would outlive the caller's deadline:
               stop burning backend attempts on an answer nobody is
               waiting for *)
            Obs.incr counters.deadline_giveups_c;
            Error e
        | _ ->
            Obs.incr counters.retries_c;
            if Obs.tracing counters.rt_obs then begin
              let engine = Engine.self_engine () in
              let start = Engine.now engine in
              Engine.sleep delay;
              Trace.emit engine ~layer:"client" ~name:"backoff"
                ~key:counters.rt_key ~phase:Backoff ~start ~dur:delay
            end
            else Engine.sleep delay;
            go (attempt + 1))
    | Error e as err ->
        if transient e then Obs.incr counters.giveups_c;
        err
  in
  go 1

(* Wrap every result-returning operation of a filesystem instance with
   transient-error retry.  [Fs] errors pass through untouched (see
   {!Client_intf.is_transient}); [close] and [memory_used] do not fail
   and are left alone.  [op_budget] stamps each wrapped op with an
   absolute deadline [now + op_budget] (tightening any deadline already
   in scope), which the retry loop above and every layer below observe. *)
let wrap engine ?(policy = default) ?op_budget ~seed ~key (inner : Client_intf.t) =
  let obs = Engine.obs engine in
  let counters = counters obs ~key in
  let rng = Rng.create seed in
  let retry f =
    let attempt () =
      with_retry ~policy ~rng ~counters ~transient:Client_intf.is_transient f
    in
    match op_budget with
    | None -> attempt ()
    | Some b -> Engine.with_deadline (Some (Engine.now engine +. b)) attempt
  in
  {
    inner with
    Client_intf.open_file =
      (fun ~pool path flags ->
        retry (fun () -> inner.Client_intf.open_file ~pool path flags));
    read =
      (fun ~pool fd ~off ~len ->
        retry (fun () -> inner.Client_intf.read ~pool fd ~off ~len));
    write =
      (fun ~pool fd ~off ~len ->
        retry (fun () -> inner.Client_intf.write ~pool fd ~off ~len));
    append =
      (fun ~pool fd ~len -> retry (fun () -> inner.Client_intf.append ~pool fd ~len));
    fsync = (fun ~pool fd -> retry (fun () -> inner.Client_intf.fsync ~pool fd));
    stat = (fun ~pool path -> retry (fun () -> inner.Client_intf.stat ~pool path));
    mkdir_p =
      (fun ~pool path -> retry (fun () -> inner.Client_intf.mkdir_p ~pool path));
    readdir =
      (fun ~pool path -> retry (fun () -> inner.Client_intf.readdir ~pool path));
    unlink =
      (fun ~pool path -> retry (fun () -> inner.Client_intf.unlink ~pool path));
    rename =
      (fun ~pool ~src ~dst ->
        retry (fun () -> inner.Client_intf.rename ~pool ~src ~dst));
  }
