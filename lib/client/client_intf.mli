open Danaus_kernel
open Danaus_ceph

(** Common interface of the three backend clients (kernel CephFS,
    FUSE-based ceph-fuse, libcephfs-style library client).

    The interface is a record of closures ("filesystem instance" in the
    paper's terms) so that the union filesystem and the Danaus service
    can stack over any client chosen at runtime (Table 1 configs). *)

type fd = int

type flags = {
  rd : bool;
  wr : bool;
  append : bool;
  create : bool;
  trunc : bool;
}

val flags_ro : flags
val flags_wo : flags  (** write, create, truncate *)

val flags_append : flags  (** O_WRONLY | O_APPEND *)

type error =
  | Fs of Namespace.error
  | Bad_fd
  | Read_only
  | Crashed  (** the backing service/daemon is dead *)
  | Unavailable  (** the storage backend rejected the op (no replica up) *)
  | Timed_out  (** the request timed out in transit *)
  | Rejected  (** shed by admission control or a full IPC ring *)

val error_to_string : error -> string

(** Transient errors ([Crashed], [Unavailable], [Timed_out]) may clear
    after a restart or failover and are worth retrying; [Fs] answers are
    definitive and never retried.  [Rejected] is never retried either:
    it is the overload machinery asking for less load, not a fault. *)
val is_transient : error -> bool

type t = {
  name : string;
  open_file : pool:Cgroup.t -> string -> flags -> (fd, error) result;
  close : pool:Cgroup.t -> fd -> unit;
  read : pool:Cgroup.t -> fd -> off:int -> len:int -> (int, error) result;
      (** returns bytes actually read (short at EOF) *)
  write : pool:Cgroup.t -> fd -> off:int -> len:int -> (unit, error) result;
  append : pool:Cgroup.t -> fd -> len:int -> (unit, error) result;
  fsync : pool:Cgroup.t -> fd -> (unit, error) result;
  fd_size : fd -> (int, error) result;
  stat : pool:Cgroup.t -> string -> (Namespace.attr, error) result;
  mkdir_p : pool:Cgroup.t -> string -> (unit, error) result;
  readdir : pool:Cgroup.t -> string -> (string list, error) result;
  unlink : pool:Cgroup.t -> string -> (unit, error) result;
  rename : pool:Cgroup.t -> src:string -> dst:string -> (unit, error) result;
  memory_used : unit -> int;
      (** bytes of cache memory currently attributable to this client *)
}

(** [read_exact t ~pool fd ~off ~len] keeps reading until [len] bytes or
    EOF; convenience for workloads. *)
val read_exact : t -> pool:Cgroup.t -> fd -> off:int -> len:int -> (int, error) result
