open Danaus_sim
open Danaus_kernel
open Danaus_ceph

type t = {
  kernel : Kernel.t;
  cluster : Cluster.t;
  kc_name : string;
  mount : Page_cache.mount;
  readahead : int;
  table : Fd_table.t;
  fetch_locks : (int, Mutex_sim.t) Hashtbl.t; (* page-lock single flight *)
  (* Resolved-once handles for the per-op path.  [Kernel.lock] and
     [Page_cache.file] intern by string key, so correctness never needs
     these caches — but building "i_mutex:<mount>:<ino>" and hashing it
     on every write is pure overhead once the handle exists.  Keyed by
     ino (or parent dir) so lookup is an int/string hash with no
     concatenation. *)
  inode_locks : (int, Mutex_sim.t) Hashtbl.t;
  dir_locks : (string, Mutex_sim.t) Hashtbl.t;
  pc_files : (int, Page_cache.file) Hashtbl.t;
  dcache_lock : Mutex_sim.t;
  i_mutex_class : Mutex_sim.t;
  attr_lease : float; (* dcache revalidation window (§3.4) *)
  (* the kclient's per-mount MDS session mutex (s_mutex): held across
     every metadata round trip, serialising the mount's metadata ops —
     cheap for one container, painful for 32 clones sharing the mount *)
  session_lock : Mutex_sim.t;
  (* fault handling: seeded backoff state and the crash flag flipped by
     Container_engine when the kernel client wedges (host-wide) *)
  rng : Rng.t;
  retry : Retry.counters;
  flush_fail_c : Obs.counter;
  mutable crashed : bool;
}

let create kernel ~cluster ~name ~max_dirty ?mem_limit
    ?(readahead = 4 * 1024 * 1024) () =
  {
    kernel;
    cluster;
    kc_name = name;
    mount =
      Page_cache.add_mount (Kernel.page_cache kernel) ~name ~max_dirty ?mem_limit ();
    readahead;
    table = Fd_table.create ();
    fetch_locks = Hashtbl.create 64;
    inode_locks = Hashtbl.create 64;
    dir_locks = Hashtbl.create 16;
    pc_files = Hashtbl.create 64;
    dcache_lock = Kernel.lock kernel "vfs:dcache";
    i_mutex_class = Kernel.lock kernel "cephfs:i_mutex_key";
    (* the kclient holds MDS capabilities: cached attributes stay valid
       for minutes unless revoked, unlike a user client's short lease *)
    attr_lease = 60.0;
    session_lock =
      Mutex_sim.create (Kernel.engine kernel) ~name:(name ^ ".s_mutex");
    rng =
      Rng.create (String.fold_left (fun a c -> (a * 131) + Char.code c) 11 name);
    retry = Retry.counters (Engine.obs (Kernel.engine kernel)) ~key:name;
    flush_fail_c =
      Obs.counter
        (Engine.obs (Kernel.engine kernel))
        ~layer:"client" ~name:"flush_failures" ~key:name;
    crashed = false;
  }

let name t = t.kc_name
let crash t = t.crashed <- true
let restart t = t.crashed <- false
let crashed t = t.crashed

let fetch_lock t ino =
  match Hashtbl.find t.fetch_locks ino with
  | m -> m
  | exception Not_found ->
      let m = Mutex_sim.create (Kernel.engine t.kernel) ~name:(t.kc_name ^ ".fetch") in
      Hashtbl.add t.fetch_locks ino m;
      m

let inode_lock t ino =
  match Hashtbl.find t.inode_locks ino with
  | m -> m
  | exception Not_found ->
      let m =
        Kernel.lock t.kernel ("i_mutex:" ^ t.kc_name ^ ":" ^ string_of_int ino)
      in
      Hashtbl.add t.inode_locks ino m;
      m

let dir_lock t parent =
  match Hashtbl.find t.dir_locks parent with
  | m -> m
  | exception Not_found ->
      let m = Kernel.lock t.kernel ("i_mutex_dir:" ^ t.kc_name ^ ":" ^ parent) in
      Hashtbl.add t.dir_locks parent m;
      m

(* Host-wide kernel locks: the dcache lock and the superblock inode-mutex
   class shared by every CephFS mount on the host.  The CPU of the locked
   section is charged before acquiring; the holds themselves are short
   wall-clock sections (the real locks are fine-grained spinlocks and are
   never held across a scheduler queue). *)
let with_vfs_locks t ~pool f =
  let k = t.kernel in
  let costs = Kernel.costs k in
  Kernel.pool_cpu k ~pool (2.0 *. costs.lock_hold);
  Mutex_sim.with_lock t.dcache_lock (fun () -> Engine.sleep costs.lock_hold);
  Mutex_sim.with_lock t.i_mutex_class (fun () -> Engine.sleep costs.lock_hold);
  f ()

let pc_file t ino =
  match Hashtbl.find t.pc_files ino with
  | f -> f
  | exception Not_found ->
      let k = t.kernel in
      let cur = Fd_table.cursor_ref t.table ino in
      let f =
        Page_cache.file (Kernel.page_cache k) t.mount
          ~key:(t.kc_name ^ ":" ^ string_of_int ino)
          ~flush:(fun ~bytes ->
            (* runs in kernel flusher context: brief superblock-class
               lock, then the network write *)
            Mutex_sim.with_lock t.i_mutex_class (fun () ->
                Engine.sleep (Kernel.costs k).lock_hold);
            let off = !cur in
            cur := !cur + bytes;
            let r =
              Retry.with_retry ~policy:Retry.net_policy ~rng:t.rng
                ~counters:t.retry
                ~transient:(fun _ -> true)
                (fun () -> Cluster.write_range t.cluster ~ino ~off ~len:bytes)
            in
            match r with Ok () -> () | Error _ -> Obs.incr t.flush_fail_c)
      in
      Hashtbl.add t.pc_files ino f;
      f

let put_attr t path attr =
  Fd_table.put_attr t.table path attr ~now:(Engine.now (Kernel.engine t.kernel))

(* One metadata request to the MDS: the mount's session mutex serialises
   request submission (mdsc), but the round trips themselves pipeline. *)
let mds_op t ~pool f =
  Mutex_sim.with_lock t.session_lock (fun () -> Engine.sleep 20.0e-6);
  Kernel.blocking_io t.kernel ~pool f

(* Component-wise resolution: one negative dentry for the deepest
   missing ancestor answers every lookup beneath it (VFS semantics). *)
let cache_negative_ancestor t path =
  let ns = Cluster.namespace t.cluster in
  let rec first_missing p =
    let parent = Fspath.parent p in
    if Fspath.is_root p || Namespace.lookup ns parent <> None then p
    else first_missing parent
  in
  put_attr t (first_missing path) None

let rec has_negative_ancestor t ~now path =
  if Fspath.is_root path then false
  else
    match Fd_table.get_attr t.table path ~now ~lease:t.attr_lease with
    | Some None -> true
    | Some (Some _) -> false
    | None -> has_negative_ancestor t ~now (Fspath.parent path)

let rec drop_negative_ancestors t path =
  if not (Fspath.is_root path) then begin
    (match
       Fd_table.get_attr t.table path
         ~now:(Engine.now (Kernel.engine t.kernel))
         ~lease:t.attr_lease
     with
    | Some None -> Fd_table.drop_attr t.table path
    | Some (Some _) | None -> ());
    drop_negative_ancestors t (Fspath.parent path)
  end

let stat_cached t ~pool path =
  let k = t.kernel in
  Kernel.pool_cpu k ~pool (Kernel.costs k).page_cache_op;
  let now = Engine.now (Kernel.engine k) in
  match Fd_table.get_attr t.table path ~now ~lease:t.attr_lease with
  | Some cached -> cached
  | None ->
      if has_negative_ancestor t ~now (Fspath.parent path) then None
      else begin
        let attr = mds_op t ~pool (fun () -> Cluster.lookup t.cluster path) in
        put_attr t path attr;
        (match attr with
        | Some a when not a.Namespace.is_dir ->
            (* keep locally-written sizes monotone vs a lagging MDS *)
            let r = Fd_table.size_ref t.table a.Namespace.ino in
            r := Stdlib.max !r a.Namespace.size
        | Some _ -> ()
        | None -> cache_negative_ancestor t path);
        attr
      end

let truncate_file t ino =
  let file = pc_file t ino in
  Page_cache.discard_dirty file;
  Page_cache.invalidate file;
  Fd_table.size_ref t.table ino := 0

let do_create t ~pool path =
  match mds_op t ~pool (fun () -> Cluster.create_file t.cluster path) with
  | Ok attr ->
      put_attr t path (Some attr);
      drop_negative_ancestors t (Fspath.parent path);
      Fd_table.size_ref t.table attr.Namespace.ino := 0;
      Ok attr
  | Error Namespace.Exists -> begin
      Fd_table.drop_attr t.table path;
      match stat_cached t ~pool path with
      | Some attr -> Ok attr
      | None -> Error Namespace.Exists
    end
  | Error Namespace.No_parent -> begin
      match mds_op t ~pool (fun () -> Cluster.mkdir_p t.cluster (Fspath.parent path)) with
      | Error e -> Error e
      | Ok _ -> begin
          match mds_op t ~pool (fun () -> Cluster.create_file t.cluster path) with
          | Ok attr ->
              put_attr t path (Some attr);
              drop_negative_ancestors t (Fspath.parent path);
              Fd_table.size_ref t.table attr.Namespace.ino := 0;
              Ok attr
          | Error _ as e -> e
        end
    end
  | Error _ as e -> e

let open_file t ~pool path (flags : Client_intf.flags) =
  let k = t.kernel in
  Kernel.syscall k ~pool (fun () ->
      with_vfs_locks t ~pool (fun () ->
          Kernel.pool_cpu k ~pool (Kernel.costs k).vfs_op;
          let path = Fspath.normalize path in
          match stat_cached t ~pool path with
          | Some a when a.Namespace.is_dir -> Error (Client_intf.Fs Namespace.Is_dir)
          | Some a ->
              if flags.trunc then truncate_file t a.Namespace.ino;
              Ok (Fd_table.insert t.table ~path ~ino:a.Namespace.ino ~flags)
          | None ->
              if not flags.create then Error (Client_intf.Fs Namespace.No_entry)
              else begin
                Mutex_sim.with_lock (dir_lock t (Fspath.parent path)) (fun () ->
                    match do_create t ~pool path with
                    | Error e -> Error (Client_intf.Fs e)
                    | Ok attr ->
                        Ok (Fd_table.insert t.table ~path ~ino:attr.Namespace.ino ~flags))
              end))

let push_size t ~pool (entry : Fd_table.entry) =
  if entry.written then begin
    let size = !(Fd_table.size_ref t.table entry.ino) in
    ignore (mds_op t ~pool (fun () -> Cluster.set_size t.cluster entry.path size));
    put_attr t entry.path
      (Some { Namespace.ino = entry.ino; size; is_dir = false })
  end

let close t ~pool fd =
  Kernel.syscall t.kernel ~pool (fun () ->
      match Fd_table.find t.table fd with
      | None -> ()
      | Some entry ->
          push_size t ~pool entry;
          Fd_table.remove t.table fd)

let read t ~pool fd ~off ~len =
  let k = t.kernel in
  match Fd_table.find t.table fd with
  | None -> Error Client_intf.Bad_fd
  | Some entry ->
      let size = !(Fd_table.size_ref t.table entry.ino) in
      let len = Stdlib.max 0 (Stdlib.min len (size - off)) in
      if len = 0 then Ok 0
      else
        Kernel.syscall k ~pool (fun () ->
            with_vfs_locks t ~pool (fun () ->
                Kernel.pool_cpu k ~pool (Kernel.costs k).page_cache_op);
            let file = pc_file t entry.ino in
            let fetch_failed = ref false in
            (if Page_cache.missing file ~off ~len > 0 then begin
               let fl = fetch_lock t entry.ino in
               Mutex_sim.with_lock fl (fun () ->
                   let miss = Page_cache.missing file ~off ~len in
                   if miss > 0 then begin
                     let sequential = off = entry.last_end in
                     let ra =
                       if sequential then
                         Stdlib.min t.readahead (Stdlib.max 0 (size - (off + len)))
                       else 0
                     in
                     let r =
                       Retry.with_retry ~policy:Retry.net_policy ~rng:t.rng
                         ~counters:t.retry
                         ~transient:(fun _ -> true)
                         (fun () ->
                           Kernel.blocking_io k ~pool (fun () ->
                               Cluster.read_range t.cluster ~ino:entry.ino ~off
                                 ~len:(miss + ra)))
                     in
                     match r with
                     | Ok () -> Page_cache.insert_clean file ~off ~len:(len + ra)
                     | Error e ->
                         (match e with
                         | Cluster.No_replica _ ->
                             Retry.note_no_replica t.retry
                         | _ -> ());
                         fetch_failed := true
                   end)
             end);
            if !fetch_failed then Error Client_intf.Unavailable
            else begin
              Kernel.copy k ~pool ~bytes:len;
              entry.last_end <- off + len;
              Ok len
            end)

let write t ~pool fd ~off ~len =
  let k = t.kernel in
  match Fd_table.find t.table fd with
  | None -> Error Client_intf.Bad_fd
  | Some entry ->
      if not entry.flags.wr then Error Client_intf.Bad_fd
      else
        Kernel.syscall k ~pool (fun () ->
            with_vfs_locks t ~pool (fun () -> ());
            let file = pc_file t entry.ino in
            Mutex_sim.with_lock (inode_lock t entry.ino) (fun () ->
                Kernel.copy k ~pool ~bytes:len;
                Kernel.pool_cpu k ~pool (Kernel.costs k).page_cache_op;
                Page_cache.write file ~off ~len);
            let size = Fd_table.size_ref t.table entry.ino in
            if off + len > !size then size := off + len;
            entry.written <- true;
            (* balance_dirty_pages: wait for the shared flushers *)
            Page_cache.throttle file;
            Ok ())

let append t ~pool fd ~len =
  match Fd_table.find t.table fd with
  | None -> Error Client_intf.Bad_fd
  | Some entry ->
      let off = !(Fd_table.size_ref t.table entry.ino) in
      write t ~pool fd ~off ~len

let fsync t ~pool fd =
  match Fd_table.find t.table fd with
  | None -> Error Client_intf.Bad_fd
  | Some entry ->
      Kernel.syscall t.kernel ~pool (fun () ->
          let before = Obs.counter_value t.flush_fail_c in
          Kernel.fsync_file t.kernel ~pool (pc_file t entry.ino);
          push_size t ~pool entry;
          if Obs.counter_value t.flush_fail_c > before then
            Error Client_intf.Unavailable
          else Ok ())

let fd_size t fd =
  match Fd_table.find t.table fd with
  | None -> Error Client_intf.Bad_fd
  | Some entry -> Ok !(Fd_table.size_ref t.table entry.ino)

let stat t ~pool path =
  Kernel.syscall t.kernel ~pool (fun () ->
      with_vfs_locks t ~pool (fun () ->
          Kernel.pool_cpu t.kernel ~pool (Kernel.costs t.kernel).vfs_op;
          match stat_cached t ~pool (Fspath.normalize path) with
          | Some a -> Ok a
          | None -> Error (Client_intf.Fs Namespace.No_entry)))

let mkdir_p t ~pool path =
  Kernel.syscall t.kernel ~pool (fun () ->
      with_vfs_locks t ~pool (fun () ->
          let path = Fspath.normalize path in
          match mds_op t ~pool (fun () -> Cluster.mkdir_p t.cluster path) with
          | Ok attr ->
              put_attr t path (Some attr);
              drop_negative_ancestors t path;
              Ok ()
          | Error e -> Error (Client_intf.Fs e)))

let readdir t ~pool path =
  Kernel.syscall t.kernel ~pool (fun () ->
      with_vfs_locks t ~pool (fun () ->
          match mds_op t ~pool (fun () -> Cluster.readdir t.cluster path) with
          | Ok names -> Ok names
          | Error e -> Error (Client_intf.Fs e)))

let unlink t ~pool path =
  let k = t.kernel in
  Kernel.syscall k ~pool (fun () ->
      with_vfs_locks t ~pool (fun () ->
          let path = Fspath.normalize path in
          match stat_cached t ~pool path with
          | None -> Error (Client_intf.Fs Namespace.No_entry)
          | Some a -> begin
              Mutex_sim.with_lock (dir_lock t (Fspath.parent path)) (fun () ->
                  match mds_op t ~pool (fun () -> Cluster.unlink t.cluster path) with
                  | Ok () ->
                      put_attr t path None;
                      if not a.Namespace.is_dir then begin
                        truncate_file t a.Namespace.ino;
                        Kernel.blocking_io k ~pool (fun () ->
                            Cluster.delete_range t.cluster ~ino:a.Namespace.ino
                              ~size:a.Namespace.size)
                      end;
                      Ok ()
                  | Error e -> Error (Client_intf.Fs e))
            end))

let rename t ~pool ~src ~dst =
  Kernel.syscall t.kernel ~pool (fun () ->
      with_vfs_locks t ~pool (fun () ->
          let src = Fspath.normalize src and dst = Fspath.normalize dst in
          match mds_op t ~pool (fun () -> Cluster.rename t.cluster ~src ~dst) with
          | Ok () ->
              (match
                 Fd_table.get_attr t.table src
                   ~now:(Engine.now (Kernel.engine t.kernel)) ~lease:t.attr_lease
               with
              | Some attr -> put_attr t dst attr
              | None -> ());
              put_attr t src None;
              Ok ()
          | Error e -> Error (Client_intf.Fs e)))

let iface t =
  (* a wedged kernel client fails every mount on the host until the
     supervisor remounts it *)
  let g f = if t.crashed then Error Client_intf.Crashed else f () in
  {
    Client_intf.name = t.kc_name;
    open_file = (fun ~pool path flags -> g (fun () -> open_file t ~pool path flags));
    close = (fun ~pool fd -> if not t.crashed then close t ~pool fd);
    read = (fun ~pool fd ~off ~len -> g (fun () -> read t ~pool fd ~off ~len));
    write = (fun ~pool fd ~off ~len -> g (fun () -> write t ~pool fd ~off ~len));
    append = (fun ~pool fd ~len -> g (fun () -> append t ~pool fd ~len));
    fsync = (fun ~pool fd -> g (fun () -> fsync t ~pool fd));
    fd_size = (fun fd -> g (fun () -> fd_size t fd));
    stat = (fun ~pool path -> g (fun () -> stat t ~pool path));
    mkdir_p = (fun ~pool path -> g (fun () -> mkdir_p t ~pool path));
    readdir = (fun ~pool path -> g (fun () -> readdir t ~pool path));
    unlink = (fun ~pool path -> g (fun () -> unlink t ~pool path));
    rename = (fun ~pool ~src ~dst -> g (fun () -> rename t ~pool ~src ~dst));
    (* page-cache memory is charged to the host, not the client *)
    memory_used = (fun () -> 0);
  }
