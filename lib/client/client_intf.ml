open Danaus_kernel
open Danaus_ceph

type fd = int

type flags = {
  rd : bool;
  wr : bool;
  append : bool;
  create : bool;
  trunc : bool;
}

let flags_ro = { rd = true; wr = false; append = false; create = false; trunc = false }
let flags_wo = { rd = false; wr = true; append = false; create = true; trunc = true }

let flags_append =
  { rd = false; wr = true; append = true; create = false; trunc = false }

type error =
  | Fs of Namespace.error
  | Bad_fd
  | Read_only
  | Crashed
  | Unavailable
  | Timed_out
  | Rejected

let error_to_string = function
  | Fs e -> Namespace.error_to_string e
  | Bad_fd -> "bad file descriptor"
  | Read_only -> "read-only filesystem"
  | Crashed -> "filesystem service crashed"
  | Unavailable -> "backend unavailable"
  | Timed_out -> "request timed out"
  | Rejected -> "shed by overload protection"

(* Errors worth retrying: the fault may clear (service restart, OSD
   mark-down and failover).  [Fs] errors are definitive answers from the
   namespace and must never be retried — the union filesystem probes for
   ENOENT on purpose.  [Rejected] is deliberate shedding: retrying it
   would re-offer the load the admission controller just refused, so it
   surfaces immediately. *)
let is_transient = function
  | Crashed | Unavailable | Timed_out -> true
  | Fs _ | Bad_fd | Read_only | Rejected -> false

type t = {
  name : string;
  open_file : pool:Cgroup.t -> string -> flags -> (fd, error) result;
  close : pool:Cgroup.t -> fd -> unit;
  read : pool:Cgroup.t -> fd -> off:int -> len:int -> (int, error) result;
  write : pool:Cgroup.t -> fd -> off:int -> len:int -> (unit, error) result;
  append : pool:Cgroup.t -> fd -> len:int -> (unit, error) result;
  fsync : pool:Cgroup.t -> fd -> (unit, error) result;
  fd_size : fd -> (int, error) result;
  stat : pool:Cgroup.t -> string -> (Namespace.attr, error) result;
  mkdir_p : pool:Cgroup.t -> string -> (unit, error) result;
  readdir : pool:Cgroup.t -> string -> (string list, error) result;
  unlink : pool:Cgroup.t -> string -> (unit, error) result;
  rename : pool:Cgroup.t -> src:string -> dst:string -> (unit, error) result;
  memory_used : unit -> int;
}

let read_exact t ~pool fd ~off ~len =
  let rec go done_ =
    if done_ >= len then Ok done_
    else
      match t.read ~pool fd ~off:(off + done_) ~len:(len - done_) with
      | Error _ as e -> e
      | Ok 0 -> Ok done_
      | Ok n -> go (done_ + n)
  in
  go 0
