open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_ceph

type config = {
  cache_bytes : int;
  dirty_ratio : float;
  readahead : int;
  writeback_interval : float;
  expire_interval : float;
  fine_grained_locking : bool;
  attr_lease : float;
  write_through : bool;
  breaker : Danaus_qos.Breaker.config option;
}

let default_config ~cache_bytes =
  {
    cache_bytes;
    dirty_ratio = 0.5;
    readahead = 4 * 1024 * 1024;
    writeback_interval = 1.0;
    expire_interval = 5.0;
    fine_grained_locking = false;
    attr_lease = 1.0;
    write_through = false;
    breaker = None;
  }

type t = {
  engine : Engine.t;
  cpu : Cpu.t;
  costs : Costs.t;
  cluster : Cluster.t;
  pool : Cgroup.t;
  ctx_switch_c : Obs.counter;
  config : config;
  name : string;
  lock : Mutex_sim.t;
  cache : Page_cache.t;
  cache_mount : Page_cache.mount;
  cache_mem : Memory.t;
  table : Fd_table.t;
  flush_window : Semaphore_sim.t;
  (* per-inode fetch locks: concurrent readers of the same file fetch a
     missing range once (page-lock single-flight semantics) *)
  fetch_locks : (int, Mutex_sim.t) Hashtbl.t;
  (* per-inode cache locks, used instead of the global client_lock when
     fine-grained locking is enabled (the refactoring the paper leaves as
     future work, S6.3.2/S9) *)
  ino_locks : (int, Mutex_sim.t) Hashtbl.t;
  mutable started : bool;
  (* fault handling: seeded backoff state and the crash flag flipped by
     Container_engine when the process hosting this client dies *)
  rng : Rng.t;
  retry : Retry.counters;
  flush_fail_c : Obs.counter;
  mutable crashed : bool;
  (* overload protection: optional circuit breaker over the backend
     data path (reads/writes to the cluster), keyed by the pool *)
  breaker : Danaus_qos.Breaker.t option;
}

let flush_chunk = 4 * 1024 * 1024

let seed_of_name name = String.fold_left (fun a c -> (a * 131) + Char.code c) 7 name

let create engine ~cpu ~costs ~cluster ~pool ~config ~name =
  let cache_mem = Memory.create ~name:(name ^ ".ulcc") () in
  let cache =
    Page_cache.create engine ~mem:cache_mem ~limit:config.cache_bytes
      ~block:(64 * 1024)
  in
  let cache_mount =
    Page_cache.add_mount cache ~name:(name ^ ".data")
      ~max_dirty:
        (Stdlib.max 1
           (int_of_float (config.dirty_ratio *. float_of_int config.cache_bytes)))
      ()
  in
  {
    engine;
    cpu;
    costs;
    cluster;
    pool;
    ctx_switch_c =
      Obs.counter (Engine.obs engine) ~layer:"client" ~name:"context_switches"
        ~key:(Cgroup.name pool);
    config;
    name;
    lock = Mutex_sim.create engine ~name:(name ^ ".client_lock");
    cache;
    cache_mount;
    cache_mem;
    table = Fd_table.create ();
    flush_window =
      Semaphore_sim.create engine ~name:(name ^ ".flush_window") ~value:8;
    fetch_locks = Hashtbl.create 64;
    ino_locks = Hashtbl.create 64;
    started = false;
    rng = Rng.create (seed_of_name name);
    retry = Retry.counters (Engine.obs engine) ~key:(Cgroup.name pool);
    flush_fail_c =
      Obs.counter (Engine.obs engine) ~layer:"client" ~name:"flush_failures"
        ~key:(Cgroup.name pool);
    crashed = false;
    breaker =
      Option.map
        (fun c ->
          Danaus_qos.Breaker.create ~config:c engine ~key:(Cgroup.name pool))
        config.breaker;
  }

let crash t = t.crashed <- true
let restart t = t.crashed <- false
let crashed t = t.crashed

let client_lock t = t.lock
let cache_used t = Memory.used t.cache_mem
let dirty_bytes t = Page_cache.dirty_bytes t.cache t.cache_mount

(* User-level CPU on the owning pool's reserved cores. *)
let user_cpu t dt =
  if dt > 0.0 then
    Cpu.compute t.cpu ~tenant:(Cgroup.name t.pool) ~eligible:(Cgroup.cores t.pool) dt

(* Network operations go through kernel sockets: two mode switches to
   send/receive plus a blocking context-switch pair. *)
let net_op t f =
  user_cpu t ((2.0 *. t.costs.mode_switch) +. (2.0 *. t.costs.context_switch));
  Obs.add t.ctx_switch_c 2.0;
  f ()

(* Backend data-path ops (cluster reads/writes) run through the pool's
   circuit breaker when one is configured: while the breaker is open,
   calls fail fast without paying the socket round trip, so retry loops
   stop hammering a downed backend before mark-down catches up. *)
let backend t f =
  match t.breaker with
  | None -> net_op t f
  | Some b ->
      Danaus_qos.Breaker.guard b
        ~on_open:(Cluster.No_replica "circuit-open")
        (fun () -> net_op t f)

let size_ref t ino = Fd_table.size_ref t.table ino

let fetch_lock t ino =
  match Hashtbl.find_opt t.fetch_locks ino with
  | Some m -> m
  | None ->
      let m = Mutex_sim.create t.engine ~name:(t.name ^ ".fetch") in
      Hashtbl.add t.fetch_locks ino m;
      m

(* The lock guarding cache operations on [ino]: the coarse global
   client_lock of libcephfs by default, a per-inode lock when the client
   is configured with fine-grained locking. *)
let cache_lock t ino =
  if not t.config.fine_grained_locking then t.lock
  else
    match Hashtbl.find_opt t.ino_locks ino with
    | Some m -> m
    | None ->
        let m = Mutex_sim.create t.engine ~name:(t.name ^ ".ino_lock") in
        Hashtbl.add t.ino_locks ino m;
        m
let cursor_ref t ino = Fd_table.cursor_ref t.table ino

let cache_file t ino =
  let cur = cursor_ref t ino in
  Page_cache.file t.cache t.cache_mount ~key:(string_of_int ino)
    ~flush:(fun ~bytes ->
      let off = !cur in
      cur := !cur + bytes;
      let r =
        Trace.with_span t.engine ~layer:"client" ~name:"flush"
          ~key:(Cgroup.name t.pool) ~phase:Service (fun () ->
            Retry.with_retry ~policy:Retry.net_policy ~rng:t.rng
              ~counters:t.retry
              ~transient:(fun _ -> true)
              (fun () ->
                backend t (fun () ->
                    Cluster.write_range t.cluster ~ino ~off ~len:bytes)))
      in
      match r with Ok () -> () | Error _ -> Obs.incr t.flush_fail_c)

(* Flush dirty work selected by the caller: writeback CPU is charged to
   the pool serially, but the network round trips of the 4 MB chunks are
   pipelined within a bounded in-flight window.  [wait] makes the call
   return only once every chunk reached the backend (fsync and
   write-through semantics); without it the flush is fire-and-forget
   (background writeback). *)
let do_flush ?(wait = false) t work =
  let wg = Waitgroup.create t.engine in
  List.iter
    (fun (file, bytes) ->
      let rec submit remaining =
        if remaining > 0 then begin
          let n = Stdlib.min flush_chunk remaining in
          user_cpu t (float_of_int n *. t.costs.user_flush_per_byte);
          Semaphore_sim.acquire t.flush_window;
          Waitgroup.add wg;
          Engine.fork ~name:(t.name ^ ".flush-io") (fun () ->
              Page_cache.run_flush file ~bytes:n;
              Page_cache.writeback_complete t.cache t.cache_mount ~bytes:n;
              Semaphore_sim.release t.flush_window;
              Waitgroup.finish wg);
          submit (remaining - n)
        end
      in
      submit bytes)
    work;
  if wait then Waitgroup.wait wg

(* Writer-side throttling: once over the dirty limit, the writer itself
   flushes chunks until the cache is back under it. *)
let throttle_writeback t =
  let max_dirty =
    Stdlib.max 1
      (int_of_float (t.config.dirty_ratio *. float_of_int t.config.cache_bytes))
  in
  while Page_cache.dirty_bytes t.cache t.cache_mount > max_dirty do
    let work =
      Page_cache.take_dirty t.cache t.cache_mount
        ~older_than:(Engine.now t.engine) ~max_bytes:flush_chunk
    in
    match work with
    | [] ->
        (* everything is already under writeback: wait for completions *)
        Page_cache.throttle_mount t.cache t.cache_mount
    | work -> do_flush t work
  done

let start t =
  if not t.started then begin
    t.started <- true;
    Engine.spawn t.engine ~name:(t.name ^ ".writeback") (fun () ->
        while true do
          Engine.sleep t.config.writeback_interval;
          (* a crashed process flushes nothing until it is restarted *)
          if not t.crashed then begin
            let now = Engine.now t.engine in
            let work =
              Page_cache.take_dirty t.cache t.cache_mount
                ~older_than:(now -. t.config.expire_interval) ~max_bytes:max_int
            in
            do_flush t work
          end
        done)
  end

(* ------------------------------------------------------------------ *)
(* Metadata *)

let put_attr t path attr =
  Fd_table.put_attr t.table path attr ~now:(Engine.now t.engine)

(* The MDS resolves lookups component-wise: a miss tells the client the
   deepest missing ancestor, and that single negative dentry answers
   every path beneath it until it expires or something is created. *)
let cache_negative_ancestor t path =
  let ns = Cluster.namespace t.cluster in
  let rec first_missing p =
    let parent = Fspath.parent p in
    if Fspath.is_root p || Namespace.lookup ns parent <> None then p
    else first_missing parent
  in
  put_attr t (first_missing path) None

let rec has_negative_ancestor t ~now ~lease path =
  if Fspath.is_root path then false
  else
    match Fd_table.get_attr t.table path ~now ~lease with
    | Some None -> true
    | Some (Some _) -> false
    | None -> has_negative_ancestor t ~now ~lease (Fspath.parent path)

(* A successful create makes every cached ancestor negative stale. *)
let rec drop_negative_ancestors t path =
  if not (Fspath.is_root path) then begin
    (match
       Fd_table.get_attr t.table path ~now:(Engine.now t.engine)
         ~lease:t.config.attr_lease
     with
    | Some None -> Fd_table.drop_attr t.table path
    | Some (Some _) | None -> ());
    drop_negative_ancestors t (Fspath.parent path)
  end

let stat_uncached t path =
  let attr = net_op t (fun () -> Cluster.lookup t.cluster path) in
  put_attr t path attr;
  (match attr with
  | Some a when not a.Namespace.is_dir ->
      (* never shrink below the locally-written size: our own buffered
         writes are ahead of the MDS until they are flushed *)
      let r = size_ref t a.Namespace.ino in
      r := Stdlib.max !r a.Namespace.size
  | Some _ -> ()
  | None -> cache_negative_ancestor t path);
  attr

let stat_cached t path =
  user_cpu t t.costs.page_cache_op;
  let now = Engine.now t.engine in
  let lease = t.config.attr_lease in
  match Fd_table.get_attr t.table path ~now ~lease with
  | Some cached -> cached
  | None ->
      if has_negative_ancestor t ~now ~lease (Fspath.parent path) then None
      else stat_uncached t path

(* ------------------------------------------------------------------ *)
(* File operations *)

let lookup_fd t fd = Fd_table.find t.table fd

let do_create t path =
  match net_op t (fun () -> Cluster.create_file t.cluster path) with
  | Ok attr ->
      put_attr t path (Some attr);
      drop_negative_ancestors t (Fspath.parent path);
      size_ref t attr.Namespace.ino := 0;
      Ok attr
  | Error Namespace.Exists -> begin
      (* lost a create race with another thread: adopt the winner's file *)
      match stat_uncached t path with
      | Some attr -> Ok attr
      | None -> Error Namespace.Exists
    end
  | Error Namespace.No_parent -> begin
      (* create missing ancestors, then retry once *)
      match net_op t (fun () -> Cluster.mkdir_p t.cluster (Fspath.parent path)) with
      | Error e -> Error e
      | Ok _ -> begin
          match net_op t (fun () -> Cluster.create_file t.cluster path) with
          | Ok attr ->
              put_attr t path (Some attr);
              drop_negative_ancestors t (Fspath.parent path);
              size_ref t attr.Namespace.ino := 0;
              Ok attr
          | Error _ as e -> e
        end
    end
  | Error _ as e -> e

let truncate_file t ino =
  (* cached contents are obsolete: discard dirty data and drop blocks *)
  let file = cache_file t ino in
  Page_cache.discard_dirty file;
  Page_cache.invalidate file;
  size_ref t ino := 0

let open_file t ~pool:_ path (flags : Client_intf.flags) =
  user_cpu t t.costs.vfs_op;
  let path = Fspath.normalize path in
  match stat_cached t path with
  | Some a when a.Namespace.is_dir -> Error (Client_intf.Fs Namespace.Is_dir)
  | Some a ->
      if flags.trunc then truncate_file t a.Namespace.ino;
      Ok (Fd_table.insert t.table ~path ~ino:a.Namespace.ino ~flags)
  | None ->
      if not flags.create then Error (Client_intf.Fs Namespace.No_entry)
      else begin
        match do_create t path with
        | Error e -> Error (Client_intf.Fs e)
        | Ok attr ->
            Ok (Fd_table.insert t.table ~path ~ino:attr.Namespace.ino ~flags)
      end

let push_size t of_ =
  if of_.Fd_table.written then begin
    let size = !(size_ref t of_.Fd_table.ino) in
    ignore (net_op t (fun () -> Cluster.set_size t.cluster of_.Fd_table.path size));
    put_attr t of_.Fd_table.path
      (Some { Namespace.ino = of_.Fd_table.ino; size; is_dir = false })
  end

let close t ~pool:_ fd =
  match lookup_fd t fd with
  | None -> ()
  | Some of_ ->
      push_size t of_;
      Fd_table.remove t.table fd

let read t ~pool:_ fd ~off ~len =
  match lookup_fd t fd with
  | None -> Error Client_intf.Bad_fd
  | Some of_ ->
      let size = !(size_ref t of_.Fd_table.ino) in
      let len = Stdlib.max 0 (Stdlib.min len (size - off)) in
      if len = 0 then Ok 0
      else begin
        user_cpu t t.costs.vfs_op;
        (* with fine-grained locking, cached reads traverse the object
           cache lock-free (per-block granularity); the stock client
           serialises the lookup and the copy under client_lock *)
        let coarse = not t.config.fine_grained_locking in
        if coarse then Mutex_sim.lock t.lock;
        user_cpu t t.costs.page_cache_op;
        let file = cache_file t of_.Fd_table.ino in
        let miss = Page_cache.missing file ~off ~len in
        let fetch_failed = ref false in
        if miss > 0 then begin
          (* fetch misses with the client lock released; the per-inode
             fetch lock makes concurrent readers of the same range fetch
             it once; readahead only for sequential patterns *)
          if coarse then Mutex_sim.unlock t.lock;
          let fl = fetch_lock t of_.Fd_table.ino in
          Mutex_sim.lock fl;
          let miss = Page_cache.missing file ~off ~len in
          if miss > 0 then begin
            let sequential = off = of_.Fd_table.last_end in
            let ra =
              if sequential then
                Stdlib.min t.config.readahead (Stdlib.max 0 (size - (off + len)))
              else 0
            in
            let r =
              Trace.with_span t.engine ~layer:"client" ~name:"fetch"
                ~key:(Cgroup.name t.pool) ~phase:Service (fun () ->
                  Retry.with_retry ~policy:Retry.net_policy ~rng:t.rng
                    ~counters:t.retry
                    ~transient:(fun _ -> true)
                    (fun () ->
                      backend t (fun () ->
                          Cluster.read_range t.cluster ~ino:of_.Fd_table.ino
                            ~off ~len:(miss + ra))))
            in
            match r with
            | Ok () -> Page_cache.insert_clean file ~off ~len:(len + ra)
            | Error e ->
                (match e with
                | Cluster.No_replica _ -> Retry.note_no_replica t.retry
                | _ -> ());
                fetch_failed := true
          end;
          Mutex_sim.unlock fl;
          if not !fetch_failed && coarse then Mutex_sim.lock t.lock
        end;
        if !fetch_failed then Error Client_intf.Unavailable
        else begin
          (* copy out of the cache (under client_lock in the stock client) *)
          user_cpu t (float_of_int len *. t.costs.copy_per_byte);
          if coarse then Mutex_sim.unlock t.lock;
          of_.Fd_table.last_end <- off + len;
          Ok len
        end
      end

let write t ~pool:_ fd ~off ~len =
  match lookup_fd t fd with
  | None -> Error Client_intf.Bad_fd
  | Some of_ ->
      if not of_.Fd_table.flags.wr then Error Client_intf.Bad_fd
      else begin
        user_cpu t t.costs.vfs_op;
        let lk = cache_lock t of_.Fd_table.ino in
        Mutex_sim.lock lk;
        user_cpu t (float_of_int len *. t.costs.copy_per_byte);
        let file = cache_file t of_.Fd_table.ino in
        Page_cache.write file ~off ~len;
        Mutex_sim.unlock lk;
        let size = size_ref t of_.Fd_table.ino in
        if off + len > !size then size := off + len;
        of_.Fd_table.written <- true;
        if t.config.write_through then begin
          (* per-service consistency setting (§5): push this write's data
             to the backend before returning *)
          let before = Obs.counter_value t.flush_fail_c in
          do_flush ~wait:true t (Page_cache.flush_file file);
          if Obs.counter_value t.flush_fail_c > before then
            Error Client_intf.Unavailable
          else Ok ()
        end
        else begin
          throttle_writeback t;
          Ok ()
        end
      end

let append t ~pool fd ~len =
  match lookup_fd t fd with
  | None -> Error Client_intf.Bad_fd
  | Some of_ ->
      let off = !(size_ref t of_.Fd_table.ino) in
      write t ~pool fd ~off ~len

let fsync t ~pool:_ fd =
  match lookup_fd t fd with
  | None -> Error Client_intf.Bad_fd
  | Some of_ ->
      let file = cache_file t of_.Fd_table.ino in
      let before = Obs.counter_value t.flush_fail_c in
      do_flush ~wait:true t (Page_cache.flush_file file);
      push_size t of_;
      if Obs.counter_value t.flush_fail_c > before then
        Error Client_intf.Unavailable
      else Ok ()

let fd_size t fd =
  match lookup_fd t fd with
  | None -> Error Client_intf.Bad_fd
  | Some of_ -> Ok !(size_ref t of_.Fd_table.ino)

let stat t ~pool:_ path =
  user_cpu t t.costs.vfs_op;
  match stat_cached t (Fspath.normalize path) with
  | Some a -> Ok a
  | None -> Error (Client_intf.Fs Namespace.No_entry)

let mkdir_p t ~pool:_ path =
  user_cpu t t.costs.vfs_op;
  let path = Fspath.normalize path in
  match net_op t (fun () -> Cluster.mkdir_p t.cluster path) with
  | Ok attr ->
      put_attr t path (Some attr);
      drop_negative_ancestors t path;
      Ok ()
  | Error e -> Error (Client_intf.Fs e)

let readdir t ~pool:_ path =
  user_cpu t t.costs.vfs_op;
  match net_op t (fun () -> Cluster.readdir t.cluster path) with
  | Ok names -> Ok names
  | Error e -> Error (Client_intf.Fs e)

let unlink t ~pool:_ path =
  user_cpu t t.costs.vfs_op;
  let path = Fspath.normalize path in
  match stat_cached t path with
  | None -> Error (Client_intf.Fs Namespace.No_entry)
  | Some a -> begin
      match net_op t (fun () -> Cluster.unlink t.cluster path) with
      | Ok () ->
          put_attr t path None;
          if not a.Namespace.is_dir then begin
            truncate_file t a.Namespace.ino;
            net_op t (fun () ->
                Cluster.delete_range t.cluster ~ino:a.Namespace.ino
                  ~size:a.Namespace.size)
          end;
          Ok ()
      | Error e -> Error (Client_intf.Fs e)
    end

let rename t ~pool:_ ~src ~dst =
  user_cpu t t.costs.vfs_op;
  let src = Fspath.normalize src and dst = Fspath.normalize dst in
  match net_op t (fun () -> Cluster.rename t.cluster ~src ~dst) with
  | Ok () ->
      (match
         Fd_table.get_attr t.table src ~now:(Engine.now t.engine)
           ~lease:t.config.attr_lease
       with
      | Some attr -> put_attr t dst attr
      | None -> ());
      put_attr t src None;
      Ok ()
  | Error e -> Error (Client_intf.Fs e)

let iface t =
  (* every entry point answers [Crashed] while the hosting process is
     dead; the supervisor's restart clears the flag *)
  let g f = if t.crashed then Error Client_intf.Crashed else f () in
  {
    Client_intf.name = t.name;
    open_file = (fun ~pool path flags -> g (fun () -> open_file t ~pool path flags));
    close = (fun ~pool fd -> if not t.crashed then close t ~pool fd);
    read = (fun ~pool fd ~off ~len -> g (fun () -> read t ~pool fd ~off ~len));
    write = (fun ~pool fd ~off ~len -> g (fun () -> write t ~pool fd ~off ~len));
    append = (fun ~pool fd ~len -> g (fun () -> append t ~pool fd ~len));
    fsync = (fun ~pool fd -> g (fun () -> fsync t ~pool fd));
    fd_size = (fun fd -> g (fun () -> fd_size t fd));
    stat = (fun ~pool path -> g (fun () -> stat t ~pool path));
    mkdir_p = (fun ~pool path -> g (fun () -> mkdir_p t ~pool path));
    readdir = (fun ~pool path -> g (fun () -> readdir t ~pool path));
    unlink = (fun ~pool path -> g (fun () -> unlink t ~pool path));
    rename = (fun ~pool ~src ~dst -> g (fun () -> rename t ~pool ~src ~dst));
    memory_used = (fun () -> cache_used t);
  }
