open Danaus_kernel

type t = { lib : Lib_client.t; iface_v : Client_intf.t }

let create kernel ~cluster ~pool ~config ~name ~page_cache ?threads () =
  let lib =
    Lib_client.create (Kernel.engine kernel) ~cpu:(Kernel.cpu kernel)
      ~costs:(Kernel.costs kernel) ~cluster ~pool ~config
      ~name:(name ^ ".daemon")
  in
  Lib_client.start lib;
  let fuse = Fuse.create kernel ~name ~pool in
  (* ceph-fuse runs a small fixed worker pool regardless of machine size *)
  let threads = match threads with Some n -> n | None -> 8 in
  Fuse.start fuse ~threads;
  let through ~pool ~bytes f = Fuse.call fuse ~caller:pool ~bytes f in
  let inner = Lib_client.iface lib in
  (* the F variant: every operation crosses the FUSE transport *)
  let base =
    {
      Client_intf.name;
      open_file =
        (fun ~pool path flags ->
          through ~pool ~bytes:0 (fun () ->
              inner.Client_intf.open_file ~pool path flags));
      close =
        (fun ~pool fd ->
          through ~pool ~bytes:0 (fun () -> inner.Client_intf.close ~pool fd));
      read =
        (fun ~pool fd ~off ~len ->
          through ~pool ~bytes:len (fun () ->
              inner.Client_intf.read ~pool fd ~off ~len));
      write =
        (fun ~pool fd ~off ~len ->
          through ~pool ~bytes:len (fun () ->
              inner.Client_intf.write ~pool fd ~off ~len));
      append =
        (fun ~pool fd ~len ->
          through ~pool ~bytes:len (fun () -> inner.Client_intf.append ~pool fd ~len));
      fsync =
        (fun ~pool fd ->
          through ~pool ~bytes:0 (fun () -> inner.Client_intf.fsync ~pool fd));
      fd_size = inner.Client_intf.fd_size;
      stat =
        (fun ~pool path ->
          through ~pool ~bytes:0 (fun () -> inner.Client_intf.stat ~pool path));
      mkdir_p =
        (fun ~pool path ->
          through ~pool ~bytes:0 (fun () -> inner.Client_intf.mkdir_p ~pool path));
      readdir =
        (fun ~pool path ->
          through ~pool ~bytes:0 (fun () -> inner.Client_intf.readdir ~pool path));
      unlink =
        (fun ~pool path ->
          through ~pool ~bytes:0 (fun () -> inner.Client_intf.unlink ~pool path));
      rename =
        (fun ~pool ~src ~dst ->
          through ~pool ~bytes:0 (fun () ->
              inner.Client_intf.rename ~pool ~src ~dst));
      memory_used = (fun () -> Lib_client.cache_used lib);
    }
  in
  (* the FP variant stacks the kernel page cache on top (double caching) *)
  let iface_v =
    if page_cache then
      Pagecache_wrap.wrap kernel ~name ~max_dirty:(Cgroup.mem_limit pool / 2) base
    else base
  in
  { lib; iface_v }

let inner t = t.lib
let iface t = t.iface_v

(* ceph-fuse daemon death: the wrapped user-level client carries the
   crash flag, so every path through the FUSE transport fails too. *)
let crash t = Lib_client.crash t.lib
let restart t = Lib_client.restart t.lib
let crashed t = Lib_client.crashed t.lib
