open Danaus_kernel
open Danaus_ceph

(** FUSE-based Ceph client (ceph-fuse): a {!Lib_client} running as a
    user-level daemon reached through the kernel's FUSE transport.

    Two variants (Table 1):
    - "F": direct I/O — every operation crosses FUSE; only the daemon's
      user-level object cache holds data.
    - "FP": the kernel page cache is kept on top, so reads hit it without
      crossing FUSE but every cached byte is held twice (double caching,
      the memory blow-up of Fig. 11b). *)

type t

(** [create kernel ~cluster ~pool ~config ~name ~page_cache ~threads ()]
    builds the daemon inside [pool] and starts its FUSE worker threads
    and writeback thread. *)
val create :
  Kernel.t ->
  cluster:Cluster.t ->
  pool:Cgroup.t ->
  config:Lib_client.config ->
  name:string ->
  page_cache:bool ->
  ?threads:int ->
  unit ->
  t

val iface : t -> Client_intf.t

(** The wrapped user-level client. *)
val inner : t -> Lib_client.t

(** {1 Fault injection} — daemon death/supervised restart (delegates to
    the wrapped {!Lib_client}). *)

val crash : t -> unit

val restart : t -> unit

val crashed : t -> bool
