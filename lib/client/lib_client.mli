open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_ceph

(** libcephfs-style user-level Ceph client.

    Runs entirely at user level on the owning pool's cores, with a
    private object cache charged to the pool's memory.  A single global
    [client_lock] serialises every cache operation — deliberately
    modelling the coarse lock of libcephfs that the paper identifies as
    the reason Danaus trails the kernel client in cached sequential read
    (§6.3.2, "client_lock", ceph tracker #23844).  Network operations
    release the lock, so misses and writeback overlap. *)

type t

type config = {
  cache_bytes : int;  (** user-level object cache capacity *)
  dirty_ratio : float;  (** max dirty = ratio * cache_bytes *)
  readahead : int;  (** bytes prefetched on a sequential miss *)
  writeback_interval : float;
  expire_interval : float;
  fine_grained_locking : bool;
      (** replace the global [client_lock] with per-inode locks — the
          libcephfs refactoring the paper identifies as the fix for the
          cached-read gap and leaves as future work (S6.3.2, S9) *)
  attr_lease : float;
      (** metadata consistency lease: cached attributes older than this
          are revalidated at the MDS, so another client's changes become
          visible within one lease (§3.4) *)
  write_through : bool;
      (** per-service consistency setting (§5): every write reaches the
          backend before returning, instead of write-back caching *)
  breaker : Danaus_qos.Breaker.config option;
      (** circuit breaker over the backend data path: open after
          consecutive cluster failures, fail fast while open, probe
          deterministically in half-open state (gauge
          [qos/breaker_state] keyed by the pool) *)
}

(** Paper defaults: dirty ratio 0.5, 1 s writeback, 5 s expire. *)
val default_config : cache_bytes:int -> config

(** [create engine ~cpu ~costs ~cluster ~pool ~config ~name] builds a
    client whose work is attributed to [pool].  Its socket context
    switches land in the engine's {!Obs} context under
    ["client"/"context_switches"] keyed by the pool name. *)
val create :
  Engine.t ->
  cpu:Cpu.t ->
  costs:Costs.t ->
  cluster:Cluster.t ->
  pool:Cgroup.t ->
  config:config ->
  name:string ->
  t

(** Spawn the background writeback thread (runs on the pool cores). *)
val start : t -> unit

(** {1 Fault injection} — the process hosting this client dies/returns.
    While crashed, every operation answers [Error Crashed] and the
    writeback thread is idle. *)

val crash : t -> unit

val restart : t -> unit

val crashed : t -> bool

(** The client as a generic filesystem instance. *)
val iface : t -> Client_intf.t

(** The global client lock (exposed for contention instrumentation). *)
val client_lock : t -> Mutex_sim.t

(** Bytes currently held by the user-level cache. *)
val cache_used : t -> int

val dirty_bytes : t -> int
