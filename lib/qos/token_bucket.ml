open Danaus_sim

type t = {
  engine : Engine.t;
  rate : float;
  burst : float;
  mutable tokens : float;
  mutable last : float;
}

let create engine ~rate ~burst =
  if rate <= 0.0 then invalid_arg "Token_bucket.create: rate must be positive";
  if burst < 1.0 then invalid_arg "Token_bucket.create: burst must be >= 1";
  { engine; rate; burst; tokens = burst; last = Engine.now engine }

(* Lazy refill: tokens accrue as a pure function of elapsed simulated
   time, so the bucket needs no background process and stays
   deterministic under any interleaving. *)
let refill t =
  let now = Engine.now t.engine in
  if now > t.last then begin
    t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last) *. t.rate));
    t.last <- now
  end;
  Danaus_check.Check.require ~obs:(Engine.obs t.engine) ~layer:"qos"
    ~what:"bucket_bounds"
    ~detail:(fun () ->
      Printf.sprintf "%g tokens outside [0, %g]" t.tokens t.burst)
    (t.tokens >= 0.0 && t.tokens <= t.burst)

let try_take ?(cost = 1.0) t =
  refill t;
  if t.tokens >= cost then begin
    t.tokens <- t.tokens -. cost;
    true
  end
  else false

let tokens t =
  refill t;
  t.tokens

let rate t = t.rate
let burst t = t.burst
