(** Circuit breaker: Closed / Open / Half-open state machine over a
    result-returning operation.

    While Closed, calls pass through and consecutive failures are
    counted; at [failure_threshold] the breaker opens.  While Open,
    calls fail fast (no backend traffic) for [open_for] simulated
    seconds, after which the breaker turns Half-open and lets exactly
    [half_open_probes] calls through as probes — a deterministic count,
    not a random sample, so runs stay reproducible.  A successful probe
    closes the breaker; a failed one reopens it with a fresh window.

    Observability (layer ["qos"], keyed by the [key] given at creation):
    gauge [breaker_state] (0 closed / 0.5 half-open / 1 open), counters
    [breaker_opens], [breaker_fast_fails], [breaker_probes]. *)

type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;  (** consecutive failures that open the breaker *)
  open_for : float;  (** seconds to stay open before probing *)
  half_open_probes : int;  (** calls let through in half-open state *)
}

val default_config : config
(** 5 consecutive failures; open 2 s; 1 probe. *)

type t

val create : ?config:config -> Danaus_sim.Engine.t -> key:string -> t

val state : t -> state
(** Current state (performs the timed Open → Half-open transition). *)

val state_to_string : state -> string

val allow : t -> bool
(** Admission decision for one call.  [false] counts a fast-fail; a
    [true] in half-open state consumes a probe slot, so every [allow]
    that returns [true] must be followed by {!success} or {!failure}. *)

val success : t -> unit
val failure : t -> unit

val guard : t -> on_open:'e -> (unit -> ('a, 'e) result) -> ('a, 'e) result
(** [guard t ~on_open f] = [allow]/[f]/[success|failure] in one step;
    returns [Error on_open] without running [f] when the breaker says
    no. *)
