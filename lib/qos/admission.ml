open Danaus_sim

type config = {
  rate : float;
  burst : float;
  max_inflight : int;
  op_budget : float option;
}

let config ?(burst = 32.0) ?(max_inflight = 64) ?op_budget ~rate () =
  { rate; burst; max_inflight; op_budget }

type t = {
  engine : Engine.t;
  bucket : Token_bucket.t;
  cfg : config;
  mutable inflight : int;
  admitted_c : Obs.counter;
  shed_c : Obs.counter;
  inflight_g : Obs.gauge;
  inflight_high_g : Obs.gauge;
}

let create engine ~key (cfg : config) =
  if cfg.max_inflight < 1 then
    invalid_arg "Admission.create: max_inflight must be >= 1";
  let obs = Engine.obs engine in
  {
    engine;
    bucket = Token_bucket.create engine ~rate:cfg.rate ~burst:cfg.burst;
    cfg;
    inflight = 0;
    admitted_c = Obs.counter obs ~layer:"qos" ~name:"admitted" ~key;
    shed_c = Obs.counter obs ~layer:"qos" ~name:"shed" ~key;
    inflight_g = Obs.gauge obs ~layer:"qos" ~name:"inflight" ~key;
    inflight_high_g = Obs.gauge obs ~layer:"qos" ~name:"inflight_high" ~key;
  }

let config_of t = t.cfg
let inflight t = t.inflight

(* The concurrency gate is checked before the bucket so a full window
   does not burn rate tokens: when the window drains, ops offered at the
   configured rate still find their tokens. *)
let try_admit t =
  if t.inflight >= t.cfg.max_inflight || not (Token_bucket.try_take t.bucket)
  then begin
    Obs.incr t.shed_c;
    false
  end
  else begin
    t.inflight <- t.inflight + 1;
    Obs.incr t.admitted_c;
    Obs.set t.inflight_g (float_of_int t.inflight);
    Obs.set_max t.inflight_high_g (float_of_int t.inflight);
    true
  end

let release t =
  t.inflight <- t.inflight - 1;
  Danaus_check.Check.require ~obs:(Engine.obs t.engine) ~layer:"qos"
    ~what:"inflight_balance"
    ~detail:(fun () ->
      Printf.sprintf "%d in flight after release (window %d)" t.inflight
        t.cfg.max_inflight)
    (t.inflight >= 0 && t.inflight < t.cfg.max_inflight);
  Obs.set t.inflight_g (float_of_int t.inflight)

let run t ~shed f =
  if not (try_admit t) then shed ()
  else
    Fun.protect
      ~finally:(fun () -> release t)
      (fun () ->
        let deadline =
          Option.map (fun b -> Engine.now t.engine +. b) t.cfg.op_budget
        in
        Engine.with_deadline deadline f)
