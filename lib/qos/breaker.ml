open Danaus_sim

type state = Closed | Open | Half_open

type config = { failure_threshold : int; open_for : float; half_open_probes : int }

let default_config = { failure_threshold = 5; open_for = 2.0; half_open_probes = 1 }

type t = {
  engine : Engine.t;
  config : config;
  mutable state : state;
  mutable failures : int; (* consecutive failures while Closed *)
  mutable opened_at : float;
  mutable probes_left : int;
  state_g : Obs.gauge;
  opens_c : Obs.counter;
  fast_fails_c : Obs.counter;
  probes_c : Obs.counter;
}

let state_value = function Closed -> 0.0 | Half_open -> 0.5 | Open -> 1.0

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

(* The breaker state machine: Closed trips to Open, Open cools down to
   Half_open, a Half_open probe settles it to Closed (success) or back
   to Open (failure).  Open -> Open re-arms the cool-down window. *)
let legal_transition from into =
  match (from, into) with
  | Closed, Open | Open, Half_open | Half_open, Closed | Half_open, Open
  | Open, Open ->
      true
  | from, into -> from = into

let set_state t s =
  Danaus_check.Check.require ~obs:(Engine.obs t.engine) ~layer:"qos"
    ~what:"breaker_transition"
    ~detail:(fun () ->
      Printf.sprintf "illegal %s -> %s" (state_to_string t.state)
        (state_to_string s))
    (legal_transition t.state s);
  t.state <- s;
  Obs.set t.state_g (state_value s)

let create ?(config = default_config) engine ~key =
  if config.failure_threshold < 1 then
    invalid_arg "Breaker.create: failure_threshold must be >= 1";
  if config.open_for < 0.0 then invalid_arg "Breaker.create: open_for must be >= 0";
  if config.half_open_probes < 1 then
    invalid_arg "Breaker.create: half_open_probes must be >= 1";
  let obs = Engine.obs engine in
  let t =
    {
      engine;
      config;
      state = Closed;
      failures = 0;
      opened_at = 0.0;
      probes_left = 0;
      state_g = Obs.gauge obs ~layer:"qos" ~name:"breaker_state" ~key;
      opens_c = Obs.counter obs ~layer:"qos" ~name:"breaker_opens" ~key;
      fast_fails_c = Obs.counter obs ~layer:"qos" ~name:"breaker_fast_fails" ~key;
      probes_c = Obs.counter obs ~layer:"qos" ~name:"breaker_probes" ~key;
    }
  in
  Obs.set t.state_g 0.0;
  t

let state t =
  (match t.state with
  | Open when Engine.now t.engine -. t.opened_at >= t.config.open_for ->
      set_state t Half_open;
      t.probes_left <- t.config.half_open_probes
  | _ -> ());
  t.state

let allow t =
  match state t with
  | Closed -> true
  | Open ->
      Obs.incr t.fast_fails_c;
      false
  | Half_open ->
      if t.probes_left > 0 then begin
        t.probes_left <- t.probes_left - 1;
        Obs.incr t.probes_c;
        true
      end
      else begin
        (* the configured probes are already in flight; everyone else
           keeps failing fast until a probe settles the state *)
        Obs.incr t.fast_fails_c;
        false
      end

let success t =
  (match t.state with
  | Half_open -> set_state t Closed
  | Closed | Open -> ());
  t.failures <- 0

let failure t =
  match t.state with
  | Half_open | Open ->
      (* a probe (or a straggler) failed: reopen with a fresh window *)
      t.opened_at <- Engine.now t.engine;
      if t.state <> Open then Obs.incr t.opens_c;
      t.failures <- 0;
      set_state t Open
  | Closed ->
      t.failures <- t.failures + 1;
      if t.failures >= t.config.failure_threshold then begin
        t.opened_at <- Engine.now t.engine;
        t.failures <- 0;
        Obs.incr t.opens_c;
        set_state t Open
      end

let guard t ~on_open f =
  if not (allow t) then Error on_open
  else
    match f () with
    | Ok _ as ok ->
        success t;
        ok
    | Error _ as err ->
        failure t;
        err
