open Danaus_sim

(** Read-only QoS signal accessors.

    The overload pipeline publishes its observable state through [Obs]
    cells in layer ["qos"], keyed by pool ([qos/admitted], [qos/shed],
    [qos/breaker_state], ...).  Control planes — the scheduler's fleet
    controller and autoscaler — consume those signals here instead of
    scraping raw counter names by string: this module owns the naming
    convention, and every accessor is a pure read ({!Obs.get} never
    interns a cell, so probing a pool that has no QoS pipeline returns
    0 without perturbing metric snapshots). *)

(** Cumulative admitted ops of a pool (0 when the pool has no admission
    controller). *)
val admitted : Obs.t -> pool:string -> float

(** Cumulative shed ops of a pool: rejected by admission control.  Sheds
    at a full IPC ring count in [ipc/sheds], not here. *)
val shed : Obs.t -> pool:string -> float

(** Fraction of offered ops shed so far ([shed / (admitted + shed)]);
    0 when the pool has seen no traffic. *)
val shed_fraction : Obs.t -> pool:string -> float

(** The pool's backend circuit-breaker state, decoded from the
    [qos/breaker_state] gauge (0 closed / 0.5 half-open / 1 open).
    [Closed] when the pool has no breaker. *)
val breaker_state : Obs.t -> pool:string -> Breaker.state

(** {1 Backend recovery signals}

    The ceph monitor's paced recovery engine publishes repair progress
    under layer ["ceph"], key ["cluster"]; these accessors are the
    read-only view control planes consume (all 0 / inactive when no
    monitor runs). *)

(** (object, OSD) pairs still awaiting repair right now. *)
val degraded_now : Obs.t -> float

(** Whether any OSD drain is currently in flight. *)
val recovery_active : Obs.t -> bool

(** Cumulative bytes re-replicated by paced recovery. *)
val recovered_bytes : Obs.t -> float

(** Cumulative reads redirected to a non-primary surviving replica. *)
val degraded_reads : Obs.t -> float

(** {1 Rate windows}

    A window turns a cumulative counter into a per-second rate between
    successive samples — the form hysteresis thresholds want.  Sampling
    is deterministic: the rate depends only on the counter values and
    the simulated times at which {!sample} is called. *)

type window

(** Track the shed counter of [pool]. *)
val shed_window : Obs.t -> pool:string -> window

(** Track the admitted counter of [pool]. *)
val admitted_window : Obs.t -> pool:string -> window

(** Track recovery throughput ({!recovered_bytes} per second). *)
val recovery_window : Obs.t -> window

(** [sample w ~now] returns the counter's increase per second since the
    previous sample (0 on the first call, and when time has not
    advanced).  [now] must not decrease across calls. *)
val sample : window -> now:float -> float

(** Last rate returned by {!sample}, without advancing the window. *)
val last_rate : window -> float
