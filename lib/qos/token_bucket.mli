(** Token bucket over simulated time.

    Tokens accrue at [rate] per simulated second up to [burst]; each
    admitted op consumes [cost] (default 1) tokens.  Refill is computed
    lazily from the engine clock on every access, so the bucket needs no
    background process: with a fixed seed, the same sequence of
    [try_take] calls at the same simulated instants yields the same
    sequence of decisions, which keeps experiments bit-reproducible. *)

type t

(** [create engine ~rate ~burst] starts a full bucket.  [rate] must be
    positive, [burst >= 1]. *)
val create : Danaus_sim.Engine.t -> rate:float -> burst:float -> t

(** Take [cost] (default [1.]) tokens if available; [false] means the
    caller should shed. *)
val try_take : ?cost:float -> t -> bool

(** Tokens currently available (after lazy refill). *)
val tokens : t -> float

val rate : t -> float
val burst : t -> float
