open Danaus_sim

(* Accessors use [Obs.get], which reads a cell without interning it:
   probing a pool that never created a QoS pipeline answers 0 and leaves
   the metric snapshot untouched. *)

let admitted obs ~pool = Obs.get obs ~layer:"qos" ~name:"admitted" ~key:pool
let shed obs ~pool = Obs.get obs ~layer:"qos" ~name:"shed" ~key:pool

let shed_fraction obs ~pool =
  let s = shed obs ~pool in
  let offered = admitted obs ~pool +. s in
  if offered > 0.0 then s /. offered else 0.0

let breaker_state obs ~pool =
  let v = Obs.get obs ~layer:"qos" ~name:"breaker_state" ~key:pool in
  if v >= 1.0 then Breaker.Open
  else if v >= 0.5 then Breaker.Half_open
  else Breaker.Closed

(* ------------------------------------------------------------------ *)
(* Backend recovery signals: the ceph monitor publishes repair progress
   under layer "ceph", key "cluster".  Control planes read them here so
   e.g. an autoscaler can hold back while the backend is self-healing. *)

let degraded_now obs =
  Obs.get obs ~layer:"ceph" ~name:"degraded_now" ~key:"cluster"

let recovery_active obs =
  Obs.get obs ~layer:"ceph" ~name:"recovery_active" ~key:"cluster" > 0.0

let recovered_bytes obs =
  Obs.get obs ~layer:"ceph" ~name:"recovered_bytes" ~key:"cluster"

let degraded_reads obs =
  Obs.get obs ~layer:"ceph" ~name:"degraded_reads" ~key:"cluster"

(* ------------------------------------------------------------------ *)
(* Rate windows *)

type window = {
  w_read : unit -> float;
  mutable w_last_t : float option;  (* None until the first sample *)
  mutable w_last_v : float;
  mutable w_rate : float;
}

let make_window read = { w_read = read; w_last_t = None; w_last_v = 0.0; w_rate = 0.0 }
let shed_window obs ~pool = make_window (fun () -> shed obs ~pool)

let admitted_window obs ~pool = make_window (fun () -> admitted obs ~pool)
let recovery_window obs = make_window (fun () -> recovered_bytes obs)

let sample w ~now =
  let v = w.w_read () in
  (match w.w_last_t with
  | Some t0 when now > t0 -> w.w_rate <- (v -. w.w_last_v) /. (now -. t0)
  | Some _ -> () (* time did not advance: keep the previous rate *)
  | None -> w.w_rate <- 0.0);
  w.w_last_t <- Some now;
  w.w_last_v <- v;
  w.w_rate

let last_rate w = w.w_rate
