(** Per-pool admission controller: a {!Token_bucket} rate gate plus an
    in-flight concurrency cap, with an optional per-op deadline budget.

    This is the outermost stage of the overload pipeline: an op that is
    not admitted is shed immediately at the client entry point — it
    never reaches the IPC ring, the retry loop or the backend.  Admitted
    ops run with their process deadline tightened to [now + op_budget]
    (see {!Danaus_sim.Engine.with_deadline}), which every downstream
    layer (transport timeout, retry backoff, cluster ops) observes.

    Observability (layer ["qos"], keyed by the [key] given at creation):
    counters [admitted] / [shed], gauges [inflight] / [inflight_high]. *)

type config = {
  rate : float;  (** admitted ops per simulated second *)
  burst : float;  (** token-bucket depth, ops *)
  max_inflight : int;  (** concurrent admitted ops *)
  op_budget : float option;  (** per-op deadline budget, seconds *)
}

val config :
  ?burst:float -> ?max_inflight:int -> ?op_budget:float -> rate:float -> unit -> config
(** Defaults: [burst = 32.], [max_inflight = 64], no op budget. *)

type t

val create : Danaus_sim.Engine.t -> key:string -> config -> t
val config_of : t -> config

val inflight : t -> int
(** Ops currently admitted and not yet released. *)

val try_admit : t -> bool
(** Raw decision: take an admission slot, or count a shed.  A [true]
    must be paired with {!release}; prefer {!run}. *)

val release : t -> unit

val run : t -> shed:(unit -> 'a) -> (unit -> 'a) -> 'a
(** [run t ~shed f] executes [f] under an admission slot with the op
    budget applied as a process deadline, or [shed ()] if not
    admitted. *)
