open Danaus_sim

(** Deterministic fault injection: a *plan* of timed fault events,
    executed as engine processes against an *injector* — a record of
    hooks into the layers of one testbed.

    The plan is data, the injector is wiring: experiments build a plan
    with {!at}/{!between}, the testbed supplies the injector, and
    {!schedule} arms everything before the simulation is driven.  Every
    stochastic choice (a [Between] window) draws from an [Rng] seeded by
    the caller, so a run is byte-identical for the same seed. *)

(** One fault, identified by the *name* of the target — pools, network
    nodes and disks are addressed by their string names, OSDs by index —
    so plans stay independent of testbed types. *)
type action =
  | Client_crash of { pool : string; restart_after : float }
      (** Kill the client stacks of one pool; a supervisor respawns them
          [restart_after] seconds later.  Under Danaus this fells one
          [fs_service]; other pools keep running. *)
  | Host_crash of { restart_after : float }
      (** Kill every client stack on the host — the blast radius of a
          wedged shared kernel client or a FUSE transport teardown. *)
  | Osd_down of int  (** Crash OSD [i] (stops heartbeating). *)
  | Osd_up of int  (** Revive OSD [i]; re-sync precedes map-up. *)
  | Osd_replace of int
      (** Swap OSD [i] for a blank replacement: its data is lost and the
          monitor backfills it from the surviving replicas. *)
  | Mark_up of int
      (** Operator override: force the osdmap to show an actually-up
          OSD without waiting for the heartbeat. *)
  | Link_degrade of { node : string; factor : float }
      (** Serialisation on [node]'s link slows by [factor]. *)
  | Link_partition of string
      (** Transfers touching the node block until restore. *)
  | Link_restore of string  (** Lift partition and degradation. *)
  | Disk_slow of { disk : string; factor : float }
      (** Service time of the named disk multiplies by [factor]. *)
  | Disk_restore of string  (** Restore normal disk speed. *)

(** Metric key of an action kind (e.g. ["client_crash"], ["osd_down"]). *)
val action_name : action -> string

(** When an event fires: at a fixed simulated time, or uniformly drawn
    from a window by the plan's seeded RNG. *)
type timing = At of float | Between of float * float

type event = { timing : timing; action : action }
type plan = event list

val at : float -> action -> event
val between : float -> float -> action -> event

(** The hooks a testbed exposes to the executor.  Unknown names must be
    ignored (injectors are total). *)
type injector = {
  inj_crash_pool : pool:string -> restart_after:float -> unit;
  inj_crash_host : restart_after:float -> unit;
  inj_osd_down : int -> unit;
  inj_osd_up : int -> unit;
  inj_osd_replace : int -> unit;
  inj_mark_up : int -> unit;
  inj_link_degrade : node:string -> factor:float -> unit;
  inj_link_partition : node:string -> unit;
  inj_link_restore : node:string -> unit;
  inj_disk_slow : disk:string -> factor:float -> unit;
  inj_disk_restore : disk:string -> unit;
}

(** An injector whose hooks all do nothing (tests, dry runs). *)
val null_injector : injector

(** [resolve ~seed plan] fixes every [Between] window to a concrete
    time, in plan order, from [Rng.create seed] — the pure part of
    {!schedule}, exposed so tests can assert determinism. *)
val resolve : seed:int -> plan -> (float * action) list

(** [schedule engine ~seed injector plan] resolves the plan and arms one
    engine callback per event at its absolute simulated time (events in
    the past fire immediately).  Each firing applies the injector hook
    and counts [faults/injected] keyed by {!action_name} (plus a
    [faults/<name>] trace span when tracing is on). *)
val schedule : Engine.t -> seed:int -> injector -> plan -> unit
