open Danaus_sim

type action =
  | Client_crash of { pool : string; restart_after : float }
  | Host_crash of { restart_after : float }
  | Osd_down of int
  | Osd_up of int
  | Osd_replace of int
  | Mark_up of int
  | Link_degrade of { node : string; factor : float }
  | Link_partition of string
  | Link_restore of string
  | Disk_slow of { disk : string; factor : float }
  | Disk_restore of string

let action_name = function
  | Client_crash _ -> "client_crash"
  | Host_crash _ -> "host_crash"
  | Osd_down _ -> "osd_down"
  | Osd_up _ -> "osd_up"
  | Osd_replace _ -> "osd_replace"
  | Mark_up _ -> "mark_up"
  | Link_degrade _ -> "link_degrade"
  | Link_partition _ -> "link_partition"
  | Link_restore _ -> "link_restore"
  | Disk_slow _ -> "disk_slow"
  | Disk_restore _ -> "disk_restore"

type timing = At of float | Between of float * float
type event = { timing : timing; action : action }
type plan = event list

let at t action = { timing = At t; action }
let between a b action = { timing = Between (a, b); action }

type injector = {
  inj_crash_pool : pool:string -> restart_after:float -> unit;
  inj_crash_host : restart_after:float -> unit;
  inj_osd_down : int -> unit;
  inj_osd_up : int -> unit;
  inj_osd_replace : int -> unit;
  inj_mark_up : int -> unit;
  inj_link_degrade : node:string -> factor:float -> unit;
  inj_link_partition : node:string -> unit;
  inj_link_restore : node:string -> unit;
  inj_disk_slow : disk:string -> factor:float -> unit;
  inj_disk_restore : disk:string -> unit;
}

let null_injector =
  {
    inj_crash_pool = (fun ~pool:_ ~restart_after:_ -> ());
    inj_crash_host = (fun ~restart_after:_ -> ());
    inj_osd_down = ignore;
    inj_osd_up = ignore;
    inj_osd_replace = ignore;
    inj_mark_up = ignore;
    inj_link_degrade = (fun ~node:_ ~factor:_ -> ());
    inj_link_partition = (fun ~node:_ -> ());
    inj_link_restore = (fun ~node:_ -> ());
    inj_disk_slow = (fun ~disk:_ ~factor:_ -> ());
    inj_disk_restore = (fun ~disk:_ -> ());
  }

(* Windows are resolved in plan order from one RNG stream: inserting an
   event shifts later draws, but a fixed plan + seed is reproducible. *)
let resolve ~seed plan =
  let rng = Rng.create seed in
  List.map
    (fun { timing; action } ->
      let t =
        match timing with At t -> t | Between (a, b) -> Rng.uniform rng a b
      in
      (t, action))
    plan

let apply inj = function
  | Client_crash { pool; restart_after } ->
      inj.inj_crash_pool ~pool ~restart_after
  | Host_crash { restart_after } -> inj.inj_crash_host ~restart_after
  | Osd_down i -> inj.inj_osd_down i
  | Osd_up i -> inj.inj_osd_up i
  | Osd_replace i -> inj.inj_osd_replace i
  | Mark_up i -> inj.inj_mark_up i
  | Link_degrade { node; factor } -> inj.inj_link_degrade ~node ~factor
  | Link_partition node -> inj.inj_link_partition ~node
  | Link_restore node -> inj.inj_link_restore ~node
  | Disk_slow { disk; factor } -> inj.inj_disk_slow ~disk ~factor
  | Disk_restore disk -> inj.inj_disk_restore ~disk

let schedule engine ~seed inj plan =
  let obs = Engine.obs engine in
  List.iter
    (fun (t, action) ->
      let name = action_name action in
      let injected = Obs.counter obs ~layer:"faults" ~name:"injected" ~key:name in
      let delay = Float.max 0.0 (t -. Engine.now engine) in
      Engine.schedule engine ~delay (fun () ->
          Obs.incr injected;
          Obs.span obs ~at:(Engine.now engine) ~layer:"faults" ~name ~dur:0.0;
          apply inj action))
    (resolve ~seed plan)
