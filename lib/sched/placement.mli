(** Placement policies: which host a container pool lands on.

    A policy is a pure, seed-free function from the fleet's sampled
    state to a host index — determinism falls out of the signals being
    deterministic and ties breaking by lowest host index.  The fleet
    controller ({!Fleet}) builds the {!host_view} array from live
    Obs-derived signals; policies never touch the simulation directly,
    which keeps them trivially testable on crafted views. *)

type host_view = {
  hv_index : int;
  hv_slots_total : int;  (** schedulable single-core slots *)
  hv_slots_used : int;
  hv_mem_total : int;  (** schedulable pool memory, bytes *)
  hv_mem_used : int;
  hv_dirty_frac : float;
      (** page-cache dirty bytes / schedulable memory (kernel-client
          write pressure; 0 for hosts running only user-level clients) *)
  hv_link_util : float;  (** NIC send utilization over the last sample tick *)
  hv_shed_rate : float;  (** summed qos shed ops/s of the pools on the host *)
}

type demand = { dm_slots : int; dm_mem : int }

val fits : host_view -> demand -> bool

(** Contention score of a host: dirty-pressure + link utilization +
    normalized shed rate, with a small occupancy term so equally-idle
    hosts order by free capacity.  Higher = more contended.  Also the
    fleet controller's hotspot signal. *)
val score : host_view -> float

module type POLICY = sig
  val name : string

  (** [choose views demand] is the index of the host to place on, or
      [None] when no host fits.  Must be pure and deterministic. *)
  val choose : host_view array -> demand -> int option
end

(** Fewest hosts: the fullest host (by used slots) that still fits. *)
module Bin_pack : POLICY

(** Lowest per-host load: the emptiest host (by used slots) that fits. *)
module Spread : POLICY

(** Lowest {!score}: avoids dirty-pressure, saturated links, and pools
    already shedding load. *)
module Contention_aware : POLICY

val all : (module POLICY) list
val of_label : string -> (module POLICY) option
