type host_view = {
  hv_index : int;
  hv_slots_total : int;
  hv_slots_used : int;
  hv_mem_total : int;
  hv_mem_used : int;
  hv_dirty_frac : float;
  hv_link_util : float;
  hv_shed_rate : float;
}

type demand = { dm_slots : int; dm_mem : int }

let fits hv d =
  hv.hv_slots_used + d.dm_slots <= hv.hv_slots_total
  && hv.hv_mem_used + d.dm_mem <= hv.hv_mem_total

let score hv =
  (2.0 *. hv.hv_dirty_frac) +. hv.hv_link_util
  +. (hv.hv_shed_rate /. 1000.0)
  +. (0.01 *. float_of_int hv.hv_slots_used
     /. float_of_int (max 1 hv.hv_slots_total))

(* Deterministic argmin over the hosts that fit: a strictly smaller key
   wins, so ties keep the lowest host index. *)
let choose_by key views d =
  let best = ref (-1) and best_k = ref infinity in
  Array.iter
    (fun hv ->
      if fits hv d then begin
        let k = key hv in
        if k < !best_k then begin
          best := hv.hv_index;
          best_k := k
        end
      end)
    views;
  if !best < 0 then None else Some !best

module type POLICY = sig
  val name : string
  val choose : host_view array -> demand -> int option
end

module Bin_pack = struct
  let name = "bin-pack"

  (* fullest-that-fits: minimize remaining free slots *)
  let choose = choose_by (fun hv -> float_of_int (hv.hv_slots_total - hv.hv_slots_used))
end

module Spread = struct
  let name = "spread"
  let choose = choose_by (fun hv -> float_of_int hv.hv_slots_used)
end

module Contention_aware = struct
  let name = "contention-aware"
  let choose = choose_by score
end

let all : (module POLICY) list =
  [ (module Bin_pack); (module Spread); (module Contention_aware) ]

let of_label l =
  List.find_opt (fun (module P : POLICY) -> P.name = l) all
