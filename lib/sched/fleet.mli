open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus

(** The fleet controller: owns a set of simulated hosts, places
    container pools onto them through a {!Placement} policy, samples
    per-host contention signals, and performs live pool migration
    (hotspot remediation, host drain) via
    [Container_engine.migrate_pool].

    Hosts expose single-core slots: a pool spec asking for [sp_slots]
    slots is pinned to that many distinct cores of its host (the cgroup
    the scheduler creates).  All decisions are deterministic: signals
    are Obs-derived, policies are pure, and ties break by lowest
    index / placement order. *)

type spec = {
  sp_pool : string;  (** pool (cgroup) name; replicas share it *)
  sp_id : string;  (** container id within the pool *)
  sp_slots : int;
  sp_mem : int;
  sp_config : Config.t;
  sp_image : string option;
  sp_cache_bytes : int option;
  sp_qos : Container_engine.qos option;
}

val spec :
  ?image:string ->
  ?cache_bytes:int ->
  ?qos:Container_engine.qos ->
  pool:string ->
  id:string ->
  slots:int ->
  mem:int ->
  config:Config.t ->
  unit ->
  spec

type placement = {
  pl_spec : spec;
  mutable pl_host : int;
  mutable pl_pool : Cgroup.t;  (** the cgroup on the current host *)
  mutable pl_container : Container_engine.container;
}

type t

val create : engine:Engine.t -> policy:(module Placement.POLICY) -> t

(** Register a machine with the fleet.  [slots] single-core slots
    (cores [0 .. slots-1] of the host CPU) and [mem] bytes are
    schedulable; both must be within the machine's capacity.
    [link_bandwidth] (bytes/s) normalizes the NIC-utilization signal. *)
val add_host :
  t ->
  name:string ->
  node:Net.node ->
  kernel:Kernel.t ->
  containers:Container_engine.t ->
  slots:int ->
  mem:int ->
  link_bandwidth:float ->
  unit

val host_count : t -> int
val placements : t -> placement list

(** Current per-host signal views (last sampled rates; see {!sample}).
    The array is freshly built — safe to hand to a policy or mutate. *)
val views : t -> Placement.host_view array

(** Sample the rate signals (link-utilization delta per host, shed-rate
    windows per placement) and publish [sched/host_score] /
    [sched/host_pools] gauges.  Call once per controller tick; the
    controller process does this itself. *)
val sample : t -> unit

(** Place a pool on the policy-chosen host: creates the pool cgroup
    pinned to free cores, launches the container, counts
    [sched/placements].  [Error] when no host fits. *)
val place : t -> spec -> (placement, string) result

(** Place on an explicit host (fixture pools of an experiment, forced
    rebalancing); same bookkeeping as {!place}. *)
val place_on : t -> spec -> host:int -> (placement, string) result

(** Retire a placement: release its slots and memory and forget it.
    The container's simulated processes are not torn down (the stack
    simply stops receiving work), as with a drained source. *)
val remove : t -> placement -> unit

(** Live-migrate one placement to [dst].  The destination cgroup keeps
    the pool name (same writable-branch subtree) on the destination's
    free cores.  [strategy] as [Container_engine.migrate_pool]
    (default [`Shared []]: shared-filesystem relaunch, no verification
    manifest).  On success the placement record points at the
    destination and [sched/migrations] counts once; on [Error] the
    source placement is untouched. *)
val migrate :
  t ->
  placement ->
  dst:int ->
  ?strategy:[ `Shared of (string * int) list | `Copy of (string * int) list ] ->
  ?after_launch:(Container_engine.container -> unit) ->
  unit ->
  (Container_engine.migration, string) result

(** Drain a host: migrate every placement off it (policy-chosen
    destinations, the drained host excluded), in placement order.
    Returns the migrations performed; [Error] aborts at the first pool
    that cannot move. *)
val drain :
  t ->
  host:int ->
  ?strategy:[ `Shared of (string * int) list | `Copy of (string * int) list ] ->
  unit ->
  (Container_engine.migration list, string) result

(** The placement's current client view (routes through the live
    container, so it stays valid across migrations). *)
val view : placement -> thread:int -> Danaus_client.Client_intf.t

(** {1 Hotspot controller} *)

type controller

(** [start_controller t ()] spawns the control loop: every [interval]
    (default 0.5 s) it {!sample}s the fleet and, if the hottest host
    scores above [hot_score] (default 0.5) while some other host both
    fits and scores below half the hotspot's score, migrates that
    host's first-placed pool there ([`Shared []]).  At most one
    migration per [cooldown] (default 2 s).  Decisions are recorded in
    [sched/migrations] and the [sched/host_score] gauges. *)
val start_controller :
  t -> ?interval:float -> ?hot_score:float -> ?cooldown:float -> unit -> controller

val stop_controller : controller -> unit

(** Conservation laws of the fleet (requires invariants on): every
    placement on exactly one registered host, per-host slots/memory
    within capacity, no core double-booked, accounting sums match. *)
val check_invariants : t -> unit
