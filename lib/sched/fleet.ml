open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus
module Check = Danaus_check.Check

type spec = {
  sp_pool : string;
  sp_id : string;
  sp_slots : int;
  sp_mem : int;
  sp_config : Config.t;
  sp_image : string option;
  sp_cache_bytes : int option;
  sp_qos : Container_engine.qos option;
}

let spec ?image ?cache_bytes ?qos ~pool ~id ~slots ~mem ~config () =
  {
    sp_pool = pool;
    sp_id = id;
    sp_slots = slots;
    sp_mem = mem;
    sp_config = config;
    sp_image = image;
    sp_cache_bytes = cache_bytes;
    sp_qos = qos;
  }

type placement = {
  pl_spec : spec;
  mutable pl_host : int;
  mutable pl_pool : Cgroup.t;
  mutable pl_container : Container_engine.container;
}

type host = {
  fh_index : int;
  fh_name : string;
  fh_node : Net.node;
  fh_kernel : Kernel.t;
  fh_containers : Container_engine.t;
  fh_slots : int;
  fh_mem : int;
  fh_link_bandwidth : float;
  mutable fh_free_cores : int list;  (* ascending *)
  mutable fh_mem_used : int;
  mutable fh_last_sent : float;
  mutable fh_last_t : float;
  mutable fh_link_util : float;
}

type t = {
  engine : Engine.t;
  obs : Obs.t;
  policy : (module Placement.POLICY);
  mutable hosts : host array;
  (* newest last: drain and the hotspot controller pick victims in
     placement order, so insertion order is part of determinism *)
  mutable placed : placement list;
  (* per-placement shed-rate window, keyed physically by the record *)
  mutable windows : (placement * Danaus_qos.Signal.window) list;
}

let create ~engine ~policy =
  { engine; obs = Engine.obs engine; policy; hosts = [||]; placed = []; windows = [] }

let add_host t ~name ~node ~kernel ~containers ~slots ~mem ~link_bandwidth =
  let h =
    {
      fh_index = Array.length t.hosts;
      fh_name = name;
      fh_node = node;
      fh_kernel = kernel;
      fh_containers = containers;
      fh_slots = slots;
      fh_mem = mem;
      fh_link_bandwidth = link_bandwidth;
      fh_free_cores = List.init slots (fun i -> i);
      fh_mem_used = 0;
      fh_last_sent = Net.bytes_sent node;
      fh_last_t = Engine.now t.engine;
      fh_link_util = 0.0;
    }
  in
  t.hosts <- Array.append t.hosts [| h |]

let host_count t = Array.length t.hosts
let placements t = List.rev t.placed

let shed_rate_of t h =
  List.fold_left
    (fun acc (pl, w) ->
      if pl.pl_host = h.fh_index then acc +. Danaus_qos.Signal.last_rate w
      else acc)
    0.0 t.windows

let view_of t h =
  {
    Placement.hv_index = h.fh_index;
    hv_slots_total = h.fh_slots;
    hv_slots_used = h.fh_slots - List.length h.fh_free_cores;
    hv_mem_total = h.fh_mem;
    hv_mem_used = h.fh_mem_used;
    hv_dirty_frac =
      float_of_int (Page_cache.total_dirty (Kernel.page_cache h.fh_kernel))
      /. float_of_int (max 1 h.fh_mem);
    hv_link_util = h.fh_link_util;
    hv_shed_rate = shed_rate_of t h;
  }

let views t = Array.map (view_of t) t.hosts

let sample t =
  let now = Engine.now t.engine in
  Array.iter
    (fun h ->
      let sent = Net.bytes_sent h.fh_node in
      let dt = now -. h.fh_last_t in
      if dt > 0.0 then
        h.fh_link_util <- (sent -. h.fh_last_sent) /. dt /. h.fh_link_bandwidth;
      h.fh_last_sent <- sent;
      h.fh_last_t <- now)
    t.hosts;
  List.iter (fun (_, w) -> ignore (Danaus_qos.Signal.sample w ~now)) t.windows;
  Array.iter
    (fun h ->
      let hv = view_of t h in
      Obs.set
        (Obs.gauge t.obs ~layer:"sched" ~name:"host_score" ~key:h.fh_name)
        (Placement.score hv);
      Obs.set
        (Obs.gauge t.obs ~layer:"sched" ~name:"host_pools" ~key:h.fh_name)
        (float_of_int
           (List.length
              (List.filter (fun pl -> pl.pl_host = h.fh_index) t.placed))))
    t.hosts

(* Claim [n] cores off the host's free list (lowest ids first). *)
let take_cores h n =
  if List.length h.fh_free_cores < n then None
  else begin
    let rec split acc k = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> assert false
      | c :: rest -> split (c :: acc) (k - 1) rest
    in
    let claimed, rest = split [] n h.fh_free_cores in
    h.fh_free_cores <- rest;
    Some (Array.of_list claimed)
  end

let release_cores h cores =
  h.fh_free_cores <- List.sort compare (Array.to_list cores @ h.fh_free_cores)

let launch_on h (sp : spec) ~pool =
  Container_engine.launch h.fh_containers ~config:sp.sp_config ~pool ~id:sp.sp_id
    ?image:sp.sp_image ?cache_bytes:sp.sp_cache_bytes ?qos:sp.sp_qos ()

let demand_of sp = { Placement.dm_slots = sp.sp_slots; dm_mem = sp.sp_mem }

let place_on t sp ~host:i =
  let h = t.hosts.(i) in
  if h.fh_mem_used + sp.sp_mem > h.fh_mem then
    Error (Printf.sprintf "host %s out of memory" h.fh_name)
  else
    match take_cores h sp.sp_slots with
    | None -> Error (Printf.sprintf "host %s out of slots" h.fh_name)
    | Some cores ->
        let pool = Cgroup.create ~name:sp.sp_pool ~cores ~mem_limit:sp.sp_mem in
        let ct = launch_on h sp ~pool in
        h.fh_mem_used <- h.fh_mem_used + sp.sp_mem;
        let pl =
          { pl_spec = sp; pl_host = i; pl_pool = pool; pl_container = ct }
        in
        t.placed <- pl :: t.placed;
        t.windows <-
          (pl, Danaus_qos.Signal.shed_window t.obs ~pool:sp.sp_pool)
          :: t.windows;
        Obs.incr
          (Obs.counter t.obs ~layer:"sched" ~name:"placements" ~key:sp.sp_pool);
        Ok pl

let place t sp =
  let module P = (val t.policy : Placement.POLICY) in
  match P.choose (views t) (demand_of sp) with
  | None -> Error (Printf.sprintf "no host fits pool %s" sp.sp_pool)
  | Some i -> place_on t sp ~host:i

let remove t pl =
  let h = t.hosts.(pl.pl_host) in
  release_cores h (Cgroup.cores pl.pl_pool);
  h.fh_mem_used <- h.fh_mem_used - pl.pl_spec.sp_mem;
  t.placed <- List.filter (fun p -> p != pl) t.placed;
  t.windows <- List.filter (fun (p, _) -> p != pl) t.windows

let migrate t pl ~dst ?(strategy = `Shared []) ?after_launch () =
  let sp = pl.pl_spec in
  let src_h = t.hosts.(pl.pl_host) and dst_h = t.hosts.(dst) in
  if dst = pl.pl_host then Error "migration destination is the current host"
  else if dst_h.fh_mem_used + sp.sp_mem > dst_h.fh_mem then
    Error (Printf.sprintf "host %s out of memory" dst_h.fh_name)
  else
    match take_cores dst_h sp.sp_slots with
    | None -> Error (Printf.sprintf "host %s out of slots" dst_h.fh_name)
    | Some cores -> (
        (* fresh cgroup, same pool name: the writable-branch subtree
           matches, so shared-FS migration sees the source's state *)
        let pool = Cgroup.create ~name:sp.sp_pool ~cores ~mem_limit:sp.sp_mem in
        match
          Container_engine.migrate_pool dst_h.fh_containers
            ~src:pl.pl_container ~dst_pool:pool ?image:sp.sp_image
            ?cache_bytes:sp.sp_cache_bytes ?qos:sp.sp_qos ?after_launch
            ~strategy ()
        with
        | Ok m ->
            release_cores src_h (Cgroup.cores pl.pl_pool);
            src_h.fh_mem_used <- src_h.fh_mem_used - sp.sp_mem;
            dst_h.fh_mem_used <- dst_h.fh_mem_used + sp.sp_mem;
            pl.pl_host <- dst;
            pl.pl_pool <- pool;
            pl.pl_container <- m.Container_engine.mg_container;
            Obs.incr
              (Obs.counter t.obs ~layer:"sched" ~name:"migrations"
                 ~key:sp.sp_pool);
            Ok m
        | Error e ->
            release_cores dst_h cores;
            Error e)

let drain t ~host ?(strategy = `Shared []) () =
  let victims = List.filter (fun pl -> pl.pl_host = host) (placements t) in
  let module P = (val t.policy : Placement.POLICY) in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | pl :: rest -> (
        (* the draining host is excluded by masking it full *)
        let vs =
          Array.map
            (fun hv ->
              if hv.Placement.hv_index = host then
                { hv with Placement.hv_slots_used = hv.hv_slots_total }
              else hv)
            (views t)
        in
        match P.choose vs (demand_of pl.pl_spec) with
        | None -> Error (Printf.sprintf "no host fits pool %s" pl.pl_spec.sp_pool)
        | Some dst -> (
            match migrate t pl ~dst ~strategy () with
            | Ok m -> go (m :: acc) rest
            | Error e -> Error e))
  in
  go [] victims

let view pl ~thread = pl.pl_container.Container_engine.view ~thread

(* ------------------------------------------------------------------ *)
(* Hotspot controller *)

type controller = { mutable c_stop : bool }

let start_controller t ?(interval = 0.5) ?(hot_score = 0.5) ?(cooldown = 2.0) ()
    =
  let c = { c_stop = false } in
  let last_migration = ref neg_infinity in
  Engine.spawn t.engine ~name:"sched-controller" (fun () ->
      while not c.c_stop do
        Engine.sleep interval;
        sample t;
        let now = Engine.now t.engine in
        if now >= !last_migration +. cooldown then begin
          let vs = views t in
          (* hottest host that still runs a pool *)
          let hot = ref (-1) and hot_s = ref hot_score in
          Array.iter
            (fun hv ->
              let s = Placement.score hv in
              if
                s > !hot_s
                && List.exists
                     (fun pl -> pl.pl_host = hv.Placement.hv_index)
                     t.placed
              then begin
                hot := hv.Placement.hv_index;
                hot_s := s
              end)
            vs;
          if !hot >= 0 then begin
            match
              List.find_opt (fun pl -> pl.pl_host = !hot) (placements t)
            with
            | None -> ()
            | Some pl ->
                (* coldest other host that fits and is markedly calmer *)
                let dst = ref (-1) and dst_s = ref (!hot_s /. 2.0) in
                Array.iter
                  (fun hv ->
                    let s = Placement.score hv in
                    if
                      hv.Placement.hv_index <> !hot
                      && Placement.fits hv (demand_of pl.pl_spec)
                      && s < !dst_s
                    then begin
                      dst := hv.Placement.hv_index;
                      dst_s := s
                    end)
                  vs;
                if !dst >= 0 then
                  match migrate t pl ~dst:!dst () with
                  | Ok _ -> last_migration := now
                  | Error _ -> ()
          end
        end
      done);
  c

let stop_controller c = c.c_stop <- true

(* ------------------------------------------------------------------ *)
(* Conservation laws *)

let check_invariants t =
  if Check.on () then begin
    let n = Array.length t.hosts in
    List.iter
      (fun pl ->
        Check.require ~obs:t.obs ~layer:"sched" ~what:"placed_on_one_host"
          ~detail:(fun () ->
            Printf.sprintf "pool %s on host %d of %d" pl.pl_spec.sp_pool
              pl.pl_host n)
          (pl.pl_host >= 0 && pl.pl_host < n))
      t.placed;
    Array.iter
      (fun h ->
        let mine = List.filter (fun pl -> pl.pl_host = h.fh_index) t.placed in
        let used_slots =
          List.fold_left (fun a pl -> a + pl.pl_spec.sp_slots) 0 mine
        in
        let used_mem =
          List.fold_left (fun a pl -> a + pl.pl_spec.sp_mem) 0 mine
        in
        Check.require ~obs:t.obs ~layer:"sched" ~what:"slot_capacity"
          ~detail:(fun () ->
            Printf.sprintf "host %s: %d slots used of %d" h.fh_name used_slots
              h.fh_slots)
          (used_slots <= h.fh_slots
          && used_slots = h.fh_slots - List.length h.fh_free_cores);
        Check.require ~obs:t.obs ~layer:"sched" ~what:"mem_capacity"
          ~detail:(fun () ->
            Printf.sprintf "host %s: %d bytes used of %d (accounted %d)"
              h.fh_name used_mem h.fh_mem h.fh_mem_used)
          (used_mem <= h.fh_mem && used_mem = h.fh_mem_used);
        (* no core double-booked: claimed core sets are disjoint and
           disjoint from the free list *)
        Check.invariant ~obs:t.obs ~layer:"sched" ~what:"cores_disjoint"
          ~detail:(fun () -> Printf.sprintf "host %s" h.fh_name)
          (fun () ->
            let seen = Hashtbl.create 16 in
            let ok = ref true in
            let claim c =
              if Hashtbl.mem seen c then ok := false else Hashtbl.add seen c ()
            in
            List.iter claim h.fh_free_cores;
            List.iter
              (fun pl -> Array.iter claim (Cgroup.cores pl.pl_pool))
              mine;
            !ok && Hashtbl.length seen = h.fh_slots))
      t.hosts
  end
