open Danaus_sim

type config = {
  ac_min : int;
  ac_max : int;
  ac_up_rate : float;
  ac_down_rate : float;
  ac_up_ticks : int;
  ac_down_ticks : int;
  ac_cooldown : float;
  ac_interval : float;
}

let default =
  {
    ac_min = 1;
    ac_max = 4;
    ac_up_rate = 50.0;
    ac_down_rate = 1.0;
    ac_up_ticks = 2;
    ac_down_ticks = 6;
    ac_cooldown = 1.0;
    ac_interval = 0.25;
  }

type t = {
  mutable a_stop : bool;
  mutable a_decisions : (float * string) list;  (* newest first *)
}

let create engine config ~key ~rate ~replicas ~scale_up ~scale_down =
  let t = { a_stop = false; a_decisions = [] } in
  let obs = Engine.obs engine in
  let g_replicas = Obs.gauge obs ~layer:"sched" ~name:"replicas" ~key in
  let g_rate = Obs.gauge obs ~layer:"sched" ~name:"signal_rate" ~key in
  let c_up = Obs.counter obs ~layer:"sched" ~name:"scale_up" ~key in
  let c_down = Obs.counter obs ~layer:"sched" ~name:"scale_down" ~key in
  let up = ref 0 and down = ref 0 in
  let hold_until = ref neg_infinity in
  Engine.spawn engine ~name:("autoscaler-" ^ key) (fun () ->
      Obs.set g_replicas (float_of_int (replicas ()));
      while not t.a_stop do
        Engine.sleep config.ac_interval;
        let now = Engine.now engine in
        let r = rate ~now in
        Obs.set g_rate r;
        if r >= config.ac_up_rate then incr up else up := 0;
        if r <= config.ac_down_rate then incr down else down := 0;
        if now >= !hold_until then begin
          let n = replicas () in
          if !up >= config.ac_up_ticks && n < config.ac_max then begin
            if scale_up () then begin
              t.a_decisions <- (now, "up") :: t.a_decisions;
              Obs.incr c_up;
              up := 0;
              down := 0;
              hold_until := now +. config.ac_cooldown
            end
          end
          else if !down >= config.ac_down_ticks && n > config.ac_min then
            if scale_down () then begin
              t.a_decisions <- (now, "down") :: t.a_decisions;
              Obs.incr c_down;
              up := 0;
              down := 0;
              hold_until := now +. config.ac_cooldown
            end
        end;
        Obs.set g_replicas (float_of_int (replicas ()))
      done);
  t

let stop t = t.a_stop <- true
let decisions t = List.rev t.a_decisions
