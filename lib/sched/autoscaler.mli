open Danaus_sim

(** Replica autoscaling from QoS shed-rate signals, with hysteresis.

    The autoscaler is deliberately mechanism-free: it watches a rate
    signal (ops/s, usually a [Qos.Signal] shed window) and calls the
    [scale_up] / [scale_down] actions the caller supplies — placing a
    new replica through {!Fleet.place}, or retiring one.  Hysteresis is
    double: a threshold must hold for [ac_up_ticks] (resp.
    [ac_down_ticks]) consecutive ticks before acting, and after any
    action the loop holds off for [ac_cooldown] seconds.  All decisions
    are functions of the sampled signal at deterministic tick times. *)

type config = {
  ac_min : int;
  ac_max : int;
  ac_up_rate : float;  (** scale up when rate >= this for up_ticks *)
  ac_down_rate : float;  (** scale down when rate <= this for down_ticks *)
  ac_up_ticks : int;
  ac_down_ticks : int;
  ac_cooldown : float;  (** seconds between actions *)
  ac_interval : float;  (** tick period, seconds *)
}

val default : config

type t

(** [create engine config ~key ~rate ~replicas ~scale_up ~scale_down]
    spawns the ticking control process.  [key] labels the Obs cells
    ([sched/replicas] gauge, [sched/scale_up] / [sched/scale_down]
    counters); [rate ~now] samples the watched signal; [replicas ()] is
    the current count; the actions return [false] when they could not
    act (no host fits — the tick counts stay armed). *)
val create :
  Engine.t ->
  config ->
  key:string ->
  rate:(now:float -> float) ->
  replicas:(unit -> int) ->
  scale_up:(unit -> bool) ->
  scale_down:(unit -> bool) ->
  t

val stop : t -> unit

(** Decision log (newest last): [(time, "up" | "down")]. *)
val decisions : t -> (float * string) list
