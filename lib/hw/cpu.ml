open Danaus_sim

(* flat single-float record: per-burst accounting updates stay unboxed *)
type fcell = { mutable v : float }

type core = {
  id : int;
  mutable busy : bool;
  mutable total_busy : float;
  usage : (string, fcell) Hashtbl.t;
}

type waiter = { eligible : int array; grant : int -> unit }

type t = {
  engine : Engine.t;
  quantum : float;
  cores : core array;
  mutable queue : waiter list; (* FIFO; head is the oldest *)
  mutable rotor : int; (* rotating start point for idle-core search *)
  busy_handles : (string, Obs.counter) Hashtbl.t; (* tenant -> handle *)
  core_keys : string array; (* interned "coreN" span keys *)
  queue_g : Obs.gauge;
  queue_peak_g : Obs.gauge;
}

let create ?(quantum = 500e-6) engine ~cores =
  assert (cores >= 1 && quantum > 0.0);
  let obs = Engine.obs engine in
  {
    engine;
    quantum;
    cores =
      Array.init cores (fun id ->
          { id; busy = false; total_busy = 0.0; usage = Hashtbl.create 8 });
    queue = [];
    rotor = 0;
    busy_handles = Hashtbl.create 16;
    core_keys = Array.init cores (Printf.sprintf "core%d");
    queue_g = Obs.gauge obs ~layer:"hw" ~name:"cpu_queue" ~key:"all";
    queue_peak_g = Obs.gauge obs ~layer:"hw" ~name:"cpu_queue_peak" ~key:"all";
  }

let core_count t = Array.length t.cores
let waiting t = List.length t.queue

let eligible_contains eligible id = Array.exists (fun c -> c = id) eligible

(* Rotating search so that background work spreads over the eligible
   cores instead of clustering on the lowest ids.  Returns the core id
   or -1: this runs once per 500 µs burst, so no option wrapping. *)
let find_idle t eligible =
  let n = Array.length eligible in
  let start = t.rotor mod n in
  t.rotor <- t.rotor + 1;
  let found = ref (-1) in
  for i = 0 to n - 1 do
    let id = eligible.((start + i) mod n) in
    if !found < 0 && not t.cores.(id).busy then found := id
  done;
  !found

let acquire t ~eligible =
  match find_idle t eligible with
  | id when id >= 0 ->
      t.cores.(id).busy <- true;
      id
  | _ ->
      let granted = ref (-1) in
      Engine.suspend (fun wake ->
          let grant id =
            granted := id;
            wake ()
          in
          t.queue <- t.queue @ [ { eligible; grant } ];
          let depth = float_of_int (List.length t.queue) in
          Obs.set t.queue_g depth;
          Obs.set_max t.queue_peak_g depth);
      !granted

(* Remove and return the oldest waiter eligible to run on [id]. *)
let take_waiter t id =
  let rec go acc = function
    | [] -> None
    | w :: rest ->
        if eligible_contains w.eligible id then begin
          t.queue <- List.rev_append acc rest;
          Obs.set t.queue_g (float_of_int (List.length t.queue));
          Some w
        end
        else go (w :: acc) rest
  in
  go [] t.queue

let release t id =
  match take_waiter t id with
  | Some w -> w.grant id (* core stays busy, handed to the waiter *)
  | None -> t.cores.(id).busy <- false

(* [Hashtbl.find] + exception instead of [find_opt]: the hit path of an
   interning lookup must not allocate an option per burst. *)
let busy_handle t tenant =
  match Hashtbl.find t.busy_handles tenant with
  | h -> h
  | exception Not_found ->
      let h = Obs.counter (Engine.obs t.engine) ~layer:"hw" ~name:"cpu_busy" ~key:tenant in
      Hashtbl.add t.busy_handles tenant h;
      h

let attribute t core ~tenant dt =
  core.total_busy <- core.total_busy +. dt;
  Obs.add (busy_handle t tenant) dt;
  let r =
    match Hashtbl.find core.usage tenant with
    | r -> r
    | exception Not_found ->
        let r = { v = 0.0 } in
        Hashtbl.add core.usage tenant r;
        r
  in
  r.v <- r.v +. dt

let compute t ~tenant ~eligible seconds =
  assert (Array.length eligible > 0);
  assert (seconds >= 0.0);
  (* per-burst [Trace.emit] calls are guarded at this call site: even a
     disabled emit boxes its float arguments, and this loop runs once
     per 500 µs quantum of simulated CPU time *)
  let traced = Trace.enabled (Engine.obs t.engine) in
  let remaining = ref seconds in
  while !remaining > 0.0 do
    let burst = Float.min !remaining t.quantum in
    let started = Engine.now t.engine in
    let id = acquire t ~eligible in
    let ran_at = Engine.now t.engine in
    if traced && ran_at > started then
      Trace.emit t.engine ~layer:"hw" ~name:"cpu_wait" ~key:tenant
        ~phase:Queue_wait ~start:started ~dur:(ran_at -. started);
    Engine.sleep burst;
    attribute t t.cores.(id) ~tenant burst;
    if traced then
      Trace.emit t.engine ~layer:"hw" ~name:tenant ~key:t.core_keys.(id)
        ~phase:Service ~start:ran_at ~dur:burst;
    release t id;
    remaining := !remaining -. burst
  done

(* Background (kworker-style) execution: only ever starts a burst on a
   core that is idle at that instant, and backs off whenever it either
   finds no idle core or displaced foreground work (a waiter queued up
   during the burst).  This models writeback threads living off idle
   time: plentiful when the neighbours' cores are unused, nearly nothing
   when every reserved core is busy (the paper's Fig. 1a mechanism). *)
let compute_background t ~tenant ~eligible ~backoff seconds =
  assert (Array.length eligible > 0);
  assert (seconds >= 0.0 && backoff > 0.0);
  let traced = Trace.enabled (Engine.obs t.engine) in
  let remaining = ref seconds in
  while !remaining > 0.0 do
    match find_idle t eligible with
    | -1 -> Engine.sleep backoff
    | id ->
        t.cores.(id).busy <- true;
        let burst = Float.min !remaining (t.quantum /. 2.0) in
        let ran_at = Engine.now t.engine in
        Engine.sleep burst;
        attribute t t.cores.(id) ~tenant burst;
        if traced then
          Trace.emit t.engine ~layer:"hw" ~name:tenant ~key:t.core_keys.(id)
            ~phase:Service ~start:ran_at ~dur:burst;
        let displaced =
          List.exists (fun w -> eligible_contains w.eligible id) t.queue
        in
        release t id;
        remaining := !remaining -. burst;
        if displaced then Engine.sleep backoff
  done

let busy_seconds t ~cores =
  Array.fold_left (fun acc id -> acc +. t.cores.(id).total_busy) 0.0 cores

let busy_seconds_by t ~cores ~tenant =
  Array.fold_left
    (fun acc id ->
      match Hashtbl.find_opt t.cores.(id).usage tenant with
      | Some r -> acc +. r.v
      | None -> acc)
    0.0 cores

let utilization_pct t ~cores ~tenant ~elapsed =
  if elapsed <= 0.0 then 0.0
  else 100.0 *. busy_seconds_by t ~cores ~tenant /. elapsed

let usage_breakdown t ~cores =
  let table = Hashtbl.create 8 in
  Array.iter
    (fun id ->
      Hashtbl.iter
        (fun tenant r ->
          let cell =
            match Hashtbl.find_opt table tenant with
            | Some c -> c
            | None ->
                let c = ref 0.0 in
                Hashtbl.add table tenant c;
                c
          in
          cell := !cell +. r.v)
        t.cores.(id).usage)
    cores;
  Hashtbl.fold (fun tenant r acc -> (tenant, !r) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_usage t =
  Array.iter
    (fun core ->
      core.total_busy <- 0.0;
      Hashtbl.reset core.usage)
    t.cores
