open Danaus_sim

type device = {
  engine : Engine.t;
  dev_name : string;
  bandwidth : float;
  latency : float;
  seek : float;
  gate : Semaphore_sim.t;
  (* Fault injection: service times are multiplied by [slow] (>= 1). *)
  mutable slow : float;
  mutable bytes : float;
  mutable busy : float;
  bytes_c : Obs.counter;
  busy_c : Obs.counter;
}

type t = Device of device | Raid0 of { chunk : int; members : t array }

let create engine ~name ~bandwidth ~latency ~seek =
  assert (bandwidth > 0.0 && latency >= 0.0 && seek >= 0.0);
  let obs = Engine.obs engine in
  Device
    {
      engine;
      dev_name = name;
      bandwidth;
      latency;
      seek;
      gate = Semaphore_sim.create engine ~name:("disk:" ^ name) ~value:1;
      slow = 1.0;
      bytes = 0.0;
      busy = 0.0;
      bytes_c = Obs.counter obs ~layer:"hw" ~name:"disk_bytes" ~key:name;
      busy_c = Obs.counter obs ~layer:"hw" ~name:"disk_busy" ~key:name;
    }

let raid0 ?(chunk = 64 * 1024) members =
  assert (Array.length members > 0 && chunk > 0);
  Raid0 { chunk; members }

let rec name = function
  | Device d -> d.dev_name
  | Raid0 { members; _ } -> "raid0(" ^ name members.(0) ^ "...)"

let service d ~bytes ~random =
  Semaphore_sim.acquire d.gate;
  let duration =
    (d.latency
    +. (if random then d.seek else 0.0)
    +. (float_of_int bytes /. d.bandwidth))
    *. d.slow
  in
  let started = Engine.now d.engine in
  Engine.sleep duration;
  d.bytes <- d.bytes +. float_of_int bytes;
  d.busy <- d.busy +. duration;
  Obs.add d.bytes_c (float_of_int bytes);
  Obs.add d.busy_c duration;
  Trace.emit d.engine ~layer:"hw" ~name:"disk" ~key:d.dev_name ~phase:Service
    ~start:started ~dur:duration;
  Semaphore_sim.release d.gate

(* Stripe a request across members; members are exercised concurrently
   and the request completes when the slowest stripe completes. *)
let striped members chunk ~bytes ~io =
  let n = Array.length members in
  let full_stripes = bytes / chunk in
  let tail = bytes mod chunk in
  let share = Array.make n 0 in
  for i = 0 to full_stripes - 1 do
    share.(i mod n) <- share.(i mod n) + chunk
  done;
  if tail > 0 then share.(full_stripes mod n) <- share.(full_stripes mod n) + tail;
  let engine =
    match members.(0) with
    | Device d -> d.engine
    | Raid0 _ -> invalid_arg "Disk.raid0: nested arrays unsupported"
  in
  let wg = Waitgroup.create engine in
  Array.iteri
    (fun i b ->
      if b > 0 then begin
        Waitgroup.add wg;
        Engine.fork (fun () ->
            io members.(i) b;
            Waitgroup.finish wg)
      end)
    share;
  Waitgroup.wait wg

let rec read t ~bytes ~random =
  assert (bytes >= 0);
  match t with
  | Device d -> service d ~bytes ~random
  | Raid0 { chunk; members } ->
      striped members chunk ~bytes ~io:(fun m b -> read m ~bytes:b ~random)

let rec write t ~bytes ~random =
  assert (bytes >= 0);
  match t with
  | Device d -> service d ~bytes ~random
  | Raid0 { chunk; members } ->
      striped members chunk ~bytes ~io:(fun m b -> write m ~bytes:b ~random)

let rec set_slow t ~factor =
  match t with
  | Device d -> d.slow <- Float.max 1.0 factor
  | Raid0 { members; _ } -> Array.iter (fun m -> set_slow m ~factor) members

let rec bytes_transferred = function
  | Device d -> d.bytes
  | Raid0 { members; _ } ->
      Array.fold_left (fun acc m -> acc +. bytes_transferred m) 0.0 members

let rec busy_seconds = function
  | Device d -> d.busy
  | Raid0 { members; _ } ->
      Array.fold_left (fun acc m -> acc +. busy_seconds m) 0.0 members
