open Danaus_sim

type node = {
  name : string;
  bandwidth : float;
  latency : float;
  tx : Semaphore_sim.t;
  rx : Semaphore_sim.t;
  mutable sent : float;
  sent_c : Obs.counter;
  (* Fault injection: a degraded link serialises [degrade] times slower;
     a partitioned link blocks transfers entirely until [restore]. *)
  mutable degrade : float;
  mutable partitioned : bool;
  mutable part_waiters : (unit -> unit) list;
}

type t = { engine : Engine.t; mutable nodes : node list }

let create engine = { engine; nodes = [] }

let add_node t ~name ~bandwidth ~latency =
  assert (bandwidth > 0.0 && latency >= 0.0);
  let node =
    {
      name;
      bandwidth;
      latency;
      tx = Semaphore_sim.create t.engine ~name:("net:" ^ name ^ ".tx") ~value:1;
      rx = Semaphore_sim.create t.engine ~name:("net:" ^ name ^ ".rx") ~value:1;
      sent = 0.0;
      sent_c = Obs.counter (Engine.obs t.engine) ~layer:"hw" ~name:"net_bytes" ~key:name;
      degrade = 1.0;
      partitioned = false;
      part_waiters = [];
    }
  in
  t.nodes <- node :: t.nodes;
  node

let node_name n = n.name

let set_degraded n ~factor = n.degrade <- Float.max 1.0 factor

let partition n = n.partitioned <- true

let restore n =
  n.partitioned <- false;
  n.degrade <- 1.0;
  let waiters = List.rev n.part_waiters in
  n.part_waiters <- [];
  List.iter (fun wake -> wake ()) waiters

(* Block the calling process while [n] is partitioned; the waiters are
   woken (in registration order, for determinism) by [restore]. *)
let await_link n =
  while n.partitioned do
    Engine.suspend (fun wake -> n.part_waiters <- wake :: n.part_waiters)
  done

let do_transfer src dst payload =
  await_link src;
  await_link dst;
  (* Serialise out of the sender... *)
  Semaphore_sim.acquire src.tx;
  Engine.sleep (payload /. src.bandwidth *. src.degrade);
  src.sent <- src.sent +. payload;
  Obs.add src.sent_c payload;
  Semaphore_sim.release src.tx;
  (* ...propagate... *)
  Engine.sleep (Float.max src.latency dst.latency);
  (* ...and serialise into the receiver. *)
  Semaphore_sim.acquire dst.rx;
  Engine.sleep (payload /. dst.bandwidth *. dst.degrade);
  Semaphore_sim.release dst.rx

let transfer (t : t) ~src ~dst ~bytes =
  assert (bytes >= 0);
  let payload = float_of_int bytes in
  if Trace.enabled (Engine.obs t.engine) then
    Trace.with_span t.engine ~layer:"hw" ~name:"net"
      ~key:(src.name ^ ">" ^ dst.name) ~phase:Network (fun () ->
        do_transfer src dst payload)
  else do_transfer src dst payload

let bytes_sent n = n.sent
