open Danaus_sim

(** Simulated network: nodes joined by full-duplex links through an ideal
    switch.  A transfer serialises on the sender's TX side and the
    receiver's RX side, so incast congestion at a busy receiver queues
    naturally. *)

type t

type node

(** [create engine] makes an empty network. *)
val create : Engine.t -> t

(** [add_node t ~name ~bandwidth ~latency] attaches a node whose duplex
    link carries [bandwidth] bytes/second each way with [latency] seconds
    propagation delay. *)
val add_node : t -> name:string -> bandwidth:float -> latency:float -> node

val node_name : node -> string

(** [transfer t ~src ~dst ~bytes] moves a message, blocking the calling
    process for queueing + serialisation + propagation. *)
val transfer : t -> src:node -> dst:node -> bytes:int -> unit

(** Bytes sent from the node since creation. *)
val bytes_sent : node -> float

(** {1 Fault injection}

    Hooks driven by [Danaus_faults]: a degraded link serialises [factor]
    times slower on the node's side of every transfer; a partitioned
    link blocks transfers touching the node until {!restore}, which also
    clears any degradation. *)

(** [set_degraded n ~factor] multiplies the node's serialisation time by
    [factor] (clamped to [>= 1.0]). *)
val set_degraded : node -> factor:float -> unit

(** [partition n] makes transfers touching [n] block until {!restore}. *)
val partition : node -> unit

(** [restore n] lifts partition and degradation, waking blocked
    transfers in registration order. *)
val restore : node -> unit
