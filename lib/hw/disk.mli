open Danaus_sim

(** Simulated block device with FIFO service.

    A request occupies the device for [latency + bytes / bandwidth]
    simulated seconds.  Random-access requests pay [seek] extra.  RAID-0
    arrays are built with {!raid0}, which stripes a request over member
    devices and completes when the slowest member finishes. *)

type t

(** [create engine ~name ~bandwidth ~latency ~seek] describes one device;
    [bandwidth] in bytes/second. *)
val create :
  Engine.t -> name:string -> bandwidth:float -> latency:float -> seek:float -> t

(** A striped array over the given members (chunk size in bytes). *)
val raid0 : ?chunk:int -> t array -> t

val name : t -> string

(** [read t ~bytes ~random] blocks for the service time of the request. *)
val read : t -> bytes:int -> random:bool -> unit

val write : t -> bytes:int -> random:bool -> unit

(** Fault injection: [set_slow t ~factor] multiplies every subsequent
    service time by [factor] (clamped to [>= 1.0]; [1.0] restores normal
    speed).  Applies to every member of a RAID-0 array. *)
val set_slow : t -> factor:float -> unit

(** Total bytes transferred (reads + writes) since creation. *)
val bytes_transferred : t -> float

(** Total simulated seconds the device was busy. *)
val busy_seconds : t -> float
