open Danaus_kernel
open Danaus_client

(** Union filesystem over stacked branches of backend clients.

    A branch is a directory subtree of some client.  The topmost branch
    may be writable; lookups walk top-down and stop at the first branch
    holding the entry or a whiteout covering it.  Writing to a
    lower-branch file copies it up to the writable branch first
    (file-granularity copy-on-write, §2.2), deletions of lower entries
    leave whiteouts.

    The union interacts with the branches through plain function calls
    (the Danaus "filesystem integration" principle); transports, if any,
    are added by wrapping the result (e.g. {!Fuse_wrap} for
    unionfs-fuse) or by the branch clients themselves (AUFS over the
    kernel client). *)

type branch = {
  client : Client_intf.t;
  prefix : string;  (** branch root inside the client's namespace *)
  writable : bool;
}

(** [create ~name ~branches ~charge ()] stacks [branches] (topmost
    first; only the first may be writable).  [charge ~pool dt] burns the
    union's own bookkeeping CPU ([cpu_per_op] per lookup step, default
    1 microsecond).

    [block_cow], when set to a block size, enables block-level
    copy-on-write (the paper's §9 extension, Slacker-style): opening a
    lower file for writing creates a sparse delta file in the upper
    branch instead of copying the whole file; reads merge upper blocks
    over the lower file.  Delta files (".cow.<name>") are hidden from
    [readdir]. *)
val create :
  name:string ->
  branches:branch list ->
  charge:(pool:Cgroup.t -> float -> unit) ->
  ?cpu_per_op:float ->
  ?block_cow:int ->
  unit ->
  Client_intf.t

(** Number of copy-up operations performed through this union (for tests
    and ablations). *)
val copy_ups : Client_intf.t -> int

(** Number of copy-ups that failed mid-copy and were rolled back: the
    partial upper copy is unlinked so the intact lower file stays
    visible instead of a truncated shadow. *)
val copy_up_rollbacks : Client_intf.t -> int

(** Whiteout consistency check: union paths whose upper-branch whiteout
    hides no entry in any lower branch (orphans), sorted.  An empty list
    means every whiteout is justified. *)
val check_whiteouts : Client_intf.t -> pool:Cgroup.t -> string list
