open Danaus_kernel
open Danaus_ceph
open Danaus_client

type branch = { client : Client_intf.t; prefix : string; writable : bool }

(* Block-level copy-on-write bookkeeping of one lower file that has been
   opened for writing: which blocks live in the upper delta file, and the
   file's logical size.  (A production system would persist this map in
   the delta file's header; the simulation keeps it with the union.) *)
type cow_meta = {
  cow_blocks : (int, unit) Hashtbl.t;
  mutable cow_size : int;
}

type ufd =
  | Plain of Client_intf.t * Client_intf.fd
  | Cow of {
      lower_c : Client_intf.t;
      lower_fd : Client_intf.fd;
      upper_c : Client_intf.t;
      upper_fd : Client_intf.fd;
      meta : cow_meta;
      blk : int;
    }

type state = {
  u_name : string;
  branches : branch list; (* topmost first *)
  upper : branch option;
  charge : pool:Cgroup.t -> float -> unit;
  cpu_per_op : float;
  block_cow : int option; (* Some block-size: block-level CoW (S9) *)
  cow_files : (string, cow_meta) Hashtbl.t; (* union path -> delta map *)
  fds : (int, ufd) Hashtbl.t;
  mutable next_fd : int;
  mutable copy_up_count : int;
  mutable copy_up_rollbacks : int;
}

(* copy-up statistics, looked up by union name (see mli).  The registry
   is module-global and the parallel experiment runner builds unions
   from several domains, so accesses are serialised with a real mutex
   (Stdlib Hashtbl is not thread-safe). *)
let copy_up_registry : (string, state) Hashtbl.t = Hashtbl.create 8
let registry_mutex = Stdlib.Mutex.create ()

let find_state (iface : Client_intf.t) =
  Stdlib.Mutex.lock registry_mutex;
  let st = Hashtbl.find_opt copy_up_registry iface.Client_intf.name in
  Stdlib.Mutex.unlock registry_mutex;
  st

let copy_ups iface =
  match find_state iface with Some st -> st.copy_up_count | None -> 0

let copy_up_rollbacks iface =
  match find_state iface with Some st -> st.copy_up_rollbacks | None -> 0

let copy_chunk = 1024 * 1024

let branch_path branch path =
  if Fspath.is_root branch.prefix then Fspath.normalize path
  else Fspath.normalize (branch.prefix ^ Fspath.normalize path)

(* First branch (top-down) holding [path]; a whiteout in a higher branch
   hides every copy below it. *)
let lookup st ~pool path =
  let rec walk = function
    | [] -> None
    | b :: rest -> begin
        st.charge ~pool st.cpu_per_op;
        let wh = Whiteout.of_path (branch_path b path) in
        match b.client.Client_intf.stat ~pool wh with
        | Ok _ -> None (* whited out *)
        | Error _ -> begin
            match b.client.Client_intf.stat ~pool (branch_path b path) with
            | Ok attr -> Some (b, attr)
            | Error _ -> walk rest
          end
      end
  in
  walk st.branches

let fresh_ufd st ufd =
  let fd = st.next_fd in
  st.next_fd <- st.next_fd + 1;
  Hashtbl.add st.fds fd ufd;
  fd

let fresh_fd st client bfd = fresh_ufd st (Plain (client, bfd))

let cow_delta_path path =
  let dir = Fspath.parent path and name = Fspath.basename path in
  Fspath.join dir (".cow." ^ name)

let is_cow_delta name = String.starts_with ~prefix:".cow." name

let remove_whiteout (_ : state) ~pool upper path =
  ignore (upper.client.Client_intf.unlink ~pool (Whiteout.of_path (branch_path upper path)))

let make_whiteout st ~pool upper path =
  st.charge ~pool st.cpu_per_op;
  let wh = Whiteout.of_path (branch_path upper path) in
  match upper.client.Client_intf.open_file ~pool wh Client_intf.flags_wo with
  | Ok fd ->
      upper.client.Client_intf.close ~pool fd;
      Ok ()
  | Error e -> Error e

(* File-granularity copy-on-write: read the whole lower file and write it
   into the writable branch.  A failed copy must not leave a truncated
   upper copy shadowing the intact lower file: the partial destination is
   unlinked before the error propagates, so the next lookup falls through
   to the lower branch again. *)
let copy_up st ~pool ~src_branch ~src_attr ~upper ~src_path ~dst_path =
  st.copy_up_count <- st.copy_up_count + 1;
  let src = src_branch.client and dst = upper.client in
  let src_path = branch_path src_branch src_path in
  match src.Client_intf.open_file ~pool src_path Client_intf.flags_ro with
  | Error _ as e -> e
  | Ok sfd -> begin
      match
        dst.Client_intf.open_file ~pool (branch_path upper dst_path)
          Client_intf.flags_wo
      with
      | Error _ as e ->
          src.Client_intf.close ~pool sfd;
          e
      | Ok dfd ->
          let size = src_attr.Namespace.size in
          let off = ref 0 in
          let failed = ref None in
          while !failed = None && !off < size do
            let len = Stdlib.min copy_chunk (size - !off) in
            (match src.Client_intf.read ~pool sfd ~off:!off ~len with
            | Error e -> failed := Some e
            | Ok n -> begin
                match dst.Client_intf.write ~pool dfd ~off:!off ~len:n with
                | Error e -> failed := Some e
                | Ok () -> ()
              end);
            off := !off + len
          done;
          src.Client_intf.close ~pool sfd;
          (match !failed with
          | Some e ->
              dst.Client_intf.close ~pool dfd;
              st.copy_up_rollbacks <- st.copy_up_rollbacks + 1;
              ignore
                (dst.Client_intf.unlink ~pool (branch_path upper dst_path));
              Error e
          | None -> Ok dfd)
    end

let open_file st ~pool path (flags : Client_intf.flags) =
  let require_upper k =
    match st.upper with
    | None -> Error Client_intf.Read_only
    | Some upper -> k upper
  in
  if not flags.wr then begin
    match lookup st ~pool path with
    | None -> Error (Client_intf.Fs Namespace.No_entry)
    | Some (b, _) -> begin
        match (Hashtbl.find_opt st.cow_files (Fspath.normalize path), st.upper) with
        | Some meta, Some upper -> begin
            (* the file has a block-CoW delta: a reader must merge it *)
            match
              b.client.Client_intf.open_file ~pool (branch_path b path)
                Client_intf.flags_ro
            with
            | Error _ as e -> e
            | Ok lower_fd -> begin
                match
                  upper.client.Client_intf.open_file ~pool
                    (branch_path upper (cow_delta_path path))
                    Client_intf.flags_ro
                with
                | Error _ as e ->
                    b.client.Client_intf.close ~pool lower_fd;
                    e
                | Ok upper_fd ->
                    Ok
                      (fresh_ufd st
                         (Cow
                            {
                              lower_c = b.client;
                              lower_fd;
                              upper_c = upper.client;
                              upper_fd;
                              meta;
                              blk = Option.value ~default:65536 st.block_cow;
                            }))
              end
          end
        | _ -> begin
            match
              b.client.Client_intf.open_file ~pool (branch_path b path) flags
            with
            | Ok bfd -> Ok (fresh_fd st b.client bfd)
            | Error _ as e -> e
          end
      end
  end
  else
    require_upper (fun upper ->
        match lookup st ~pool path with
        | Some (b, _) when b == upper -> begin
            match b.client.Client_intf.open_file ~pool (branch_path b path) flags with
            | Ok bfd -> Ok (fresh_fd st b.client bfd)
            | Error _ as e -> e
          end
        | Some (b, attr) ->
            if flags.trunc then begin
              (* no need to copy data that is being discarded *)
              match
                upper.client.Client_intf.open_file ~pool (branch_path upper path)
                  Client_intf.flags_wo
              with
              | Ok bfd -> Ok (fresh_fd st upper.client bfd)
              | Error _ as e -> e
            end
            else begin
              match st.block_cow with
              | Some blk -> begin
                  (* block-level CoW: no data copied; writes go to a
                     sparse delta file in the upper branch *)
                  let meta =
                    match Hashtbl.find_opt st.cow_files path with
                    | Some m -> m
                    | None ->
                        let m =
                          {
                            cow_blocks = Hashtbl.create 64;
                            cow_size = attr.Namespace.size;
                          }
                        in
                        Hashtbl.add st.cow_files path m;
                        m
                  in
                  let delta_flags =
                    {
                      Client_intf.rd = true;
                      wr = true;
                      append = false;
                      create = true;
                      trunc = false;
                    }
                  in
                  match
                    b.client.Client_intf.open_file ~pool (branch_path b path)
                      Client_intf.flags_ro
                  with
                  | Error _ as e -> e
                  | Ok lower_fd -> begin
                      match
                        upper.client.Client_intf.open_file ~pool
                          (branch_path upper (cow_delta_path path))
                          delta_flags
                      with
                      | Error _ as e ->
                          b.client.Client_intf.close ~pool lower_fd;
                          e
                      | Ok upper_fd ->
                          Ok
                            (fresh_ufd st
                               (Cow
                                  {
                                    lower_c = b.client;
                                    lower_fd;
                                    upper_c = upper.client;
                                    upper_fd;
                                    meta;
                                    blk;
                                  }))
                    end
                end
              | None -> begin
                  match
                    copy_up st ~pool ~src_branch:b ~src_attr:attr ~upper
                      ~src_path:path ~dst_path:path
                  with
                  | Ok bfd -> Ok (fresh_fd st upper.client bfd)
                  | Error _ as e -> e
                end
            end
        | None ->
            if not flags.create then Error (Client_intf.Fs Namespace.No_entry)
            else begin
              remove_whiteout st ~pool upper path;
              match
                upper.client.Client_intf.open_file ~pool (branch_path upper path) flags
              with
              | Ok bfd -> Ok (fresh_fd st upper.client bfd)
              | Error _ as e -> e
            end)

let with_fd st fd k =
  match Hashtbl.find_opt st.fds fd with
  | None -> Error Client_intf.Bad_fd
  | Some ufd -> k ufd

(* Split [off, len) into runs of blocks living on the same side. *)
let cow_segments meta ~blk ~off ~len =
  let segments = ref [] in
  let pos = ref off in
  let fin = off + len in
  while !pos < fin do
    let b = !pos / blk in
    let in_upper = Hashtbl.mem meta.cow_blocks b in
    let seg_start = !pos in
    let p = ref !pos in
    while
      !p < fin && Hashtbl.mem meta.cow_blocks (!p / blk) = in_upper
    do
      p := Stdlib.min fin ((!p / blk * blk) + blk)
    done;
    segments := (in_upper, seg_start, !p - seg_start) :: !segments;
    pos := !p
  done;
  List.rev !segments

let ufd_read st ~pool ufd ~off ~len =
  ignore st;
  match ufd with
  | Plain (c, bfd) -> c.Client_intf.read ~pool bfd ~off ~len
  | Cow { lower_c; lower_fd; upper_c; upper_fd; meta; blk } ->
      let total = Stdlib.max 0 (Stdlib.min len (meta.cow_size - off)) in
      if total = 0 then Ok 0
      else begin
        let failed = ref None in
        List.iter
          (fun (in_upper, seg_off, seg_len) ->
            if !failed = None then begin
              let r =
                if in_upper then
                  upper_c.Client_intf.read ~pool upper_fd ~off:seg_off ~len:seg_len
                else
                  lower_c.Client_intf.read ~pool lower_fd ~off:seg_off ~len:seg_len
              in
              match r with Error e -> failed := Some e | Ok _ -> ()
            end)
          (cow_segments meta ~blk ~off ~len:total);
        match !failed with Some e -> Error e | None -> Ok total
      end

let ufd_write st ~pool ufd ~off ~len =
  ignore st;
  match ufd with
  | Plain (c, bfd) -> c.Client_intf.write ~pool bfd ~off ~len
  | Cow { upper_c; upper_fd; meta; blk; _ } -> begin
      match upper_c.Client_intf.write ~pool upper_fd ~off ~len with
      | Error _ as e -> e
      | Ok () ->
          if len > 0 then
            for b = off / blk to (off + len - 1) / blk do
              Hashtbl.replace meta.cow_blocks b ()
            done;
          if off + len > meta.cow_size then meta.cow_size <- off + len;
          Ok ()
    end

let exists_below st ~pool ~upper path =
  List.exists
    (fun b ->
      (not (b == upper))
      && Result.is_ok (b.client.Client_intf.stat ~pool (branch_path b path)))
    st.branches

(* Consistency check: every whiteout in the writable branch must hide an
   entry that actually exists in some lower branch.  An orphan whiteout
   (left behind by an interrupted unlink/rename, or kept after the lower
   entry vanished) wastes lookups and can mask a file re-created later
   under the same name.  Returns the union paths of orphans, depth-first
   in sorted order. *)
let whiteout_orphans st ~pool =
  match st.upper with
  | None -> []
  | Some upper ->
      let orphans = ref [] in
      let rec walk dir =
        match
          upper.client.Client_intf.readdir ~pool (branch_path upper dir)
        with
        | Error _ -> ()
        | Ok names ->
            List.iter
              (fun name ->
                let path = Fspath.join dir name in
                match Whiteout.hidden_name name with
                | Some hidden ->
                    if not (exists_below st ~pool ~upper (Fspath.join dir hidden))
                    then orphans := Fspath.join dir hidden :: !orphans
                | None -> begin
                    match
                      upper.client.Client_intf.stat ~pool (branch_path upper path)
                    with
                    | Ok attr when attr.Namespace.is_dir -> walk path
                    | _ -> ()
                  end)
              names
      in
      walk "/";
      List.sort String.compare !orphans

let unlink st ~pool path =
  match st.upper with
  | None -> Error Client_intf.Read_only
  | Some upper -> begin
      match lookup st ~pool path with
      | None -> Error (Client_intf.Fs Namespace.No_entry)
      | Some (b, _) when b == upper ->
          let r = upper.client.Client_intf.unlink ~pool (branch_path upper path) in
          if Result.is_ok r && exists_below st ~pool ~upper path then
            Result.bind (make_whiteout st ~pool upper path) (fun () -> Ok ())
          else r
      | Some _ ->
          (* drop any block-CoW delta along with the logical file *)
          (match Hashtbl.find_opt st.cow_files (Fspath.normalize path) with
          | Some _ ->
              Hashtbl.remove st.cow_files (Fspath.normalize path);
              ignore
                (upper.client.Client_intf.unlink ~pool
                   (branch_path upper (cow_delta_path path)))
          | None -> ());
          Result.bind (make_whiteout st ~pool upper path) (fun () -> Ok ())
    end

let readdir st ~pool path =
  let visible = Hashtbl.create 32 in
  let masked = Hashtbl.create 8 in
  let saw_dir = ref false in
  List.iter
    (fun b ->
      st.charge ~pool st.cpu_per_op;
      match b.client.Client_intf.readdir ~pool (branch_path b path) with
      | Error _ -> ()
      | Ok names ->
          saw_dir := true;
          List.iter
            (fun name ->
              match Whiteout.hidden_name name with
              | Some hidden -> Hashtbl.replace masked hidden ()
              | None ->
                  if (not (Hashtbl.mem masked name)) && not (is_cow_delta name)
                  then Hashtbl.replace visible name ())
            names)
    st.branches;
  if not !saw_dir then Error (Client_intf.Fs Namespace.No_entry)
  else
    Ok (Hashtbl.fold (fun n () acc -> n :: acc) visible [] |> List.sort String.compare)

let rename st ~pool ~src ~dst =
  match st.upper with
  | None -> Error Client_intf.Read_only
  | Some upper -> begin
      match lookup st ~pool src with
      | None -> Error (Client_intf.Fs Namespace.No_entry)
      | Some (b, attr) ->
          if attr.Namespace.is_dir then Error (Client_intf.Fs Namespace.Is_dir)
          else begin
            remove_whiteout st ~pool upper dst;
            let moved =
              if b == upper then
                upper.client.Client_intf.rename ~pool
                  ~src:(branch_path upper src) ~dst:(branch_path upper dst)
              else begin
                match
                  copy_up st ~pool ~src_branch:b ~src_attr:attr ~upper ~src_path:src
                    ~dst_path:dst
                with
                | Error e -> Error e
                | Ok dfd ->
                    upper.client.Client_intf.close ~pool dfd;
                    Ok ()
              end
            in
            match moved with
            | Error _ as e -> e
            | Ok () ->
                if exists_below st ~pool ~upper src then
                  Result.bind (make_whiteout st ~pool upper src) (fun () -> Ok ())
                else Ok ()
          end
    end

let create ~name ~branches ~charge ?(cpu_per_op = 1.0e-6) ?block_cow () =
  (match branches with
  | [] -> invalid_arg "Union_fs.create: no branches"
  | top :: rest ->
      if List.exists (fun b -> b.writable) rest then
        invalid_arg "Union_fs.create: only the top branch may be writable";
      ignore top);
  let upper =
    match branches with b :: _ when b.writable -> Some b | _ -> None
  in
  let st =
    {
      u_name = name;
      branches;
      upper;
      charge;
      cpu_per_op;
      block_cow;
      cow_files = Hashtbl.create 16;
      fds = Hashtbl.create 64;
      next_fd = 3;
      copy_up_count = 0;
      copy_up_rollbacks = 0;
    }
  in
  let iface =
    {
      Client_intf.name;
      open_file = (fun ~pool path flags -> open_file st ~pool path flags);
      close =
        (fun ~pool fd ->
          match Hashtbl.find_opt st.fds fd with
          | None -> ()
          | Some (Plain (client, bfd)) ->
              client.Client_intf.close ~pool bfd;
              Hashtbl.remove st.fds fd
          | Some (Cow { lower_c; lower_fd; upper_c; upper_fd; _ }) ->
              lower_c.Client_intf.close ~pool lower_fd;
              upper_c.Client_intf.close ~pool upper_fd;
              Hashtbl.remove st.fds fd);
      read =
        (fun ~pool fd ~off ~len ->
          with_fd st fd (fun ufd -> ufd_read st ~pool ufd ~off ~len));
      write =
        (fun ~pool fd ~off ~len ->
          with_fd st fd (fun ufd -> ufd_write st ~pool ufd ~off ~len));
      append =
        (fun ~pool fd ~len ->
          with_fd st fd (function
            | Plain (c, bfd) -> c.Client_intf.append ~pool bfd ~len
            | Cow _ as ufd ->
                let off =
                  match ufd with Cow { meta; _ } -> meta.cow_size | Plain _ -> 0
                in
                ufd_write st ~pool ufd ~off ~len));
      fsync =
        (fun ~pool fd ->
          with_fd st fd (function
            | Plain (c, bfd) -> c.Client_intf.fsync ~pool bfd
            | Cow { upper_c; upper_fd; _ } -> upper_c.Client_intf.fsync ~pool upper_fd));
      fd_size =
        (fun fd ->
          with_fd st fd (function
            | Plain (c, bfd) -> c.Client_intf.fd_size bfd
            | Cow { meta; _ } -> Ok meta.cow_size));
      stat =
        (fun ~pool path ->
          match lookup st ~pool path with
          | Some (_, attr) -> begin
              (* a block-CoW delta overrides the lower file's size *)
              match Hashtbl.find_opt st.cow_files (Fspath.normalize path) with
              | Some meta -> Ok { attr with Namespace.size = meta.cow_size }
              | None -> Ok attr
            end
          | None -> Error (Client_intf.Fs Namespace.No_entry));
      mkdir_p =
        (fun ~pool path ->
          match st.upper with
          | None -> Error Client_intf.Read_only
          | Some upper -> upper.client.Client_intf.mkdir_p ~pool (branch_path upper path));
      readdir = (fun ~pool path -> readdir st ~pool path);
      unlink = (fun ~pool path -> unlink st ~pool path);
      rename = (fun ~pool ~src ~dst -> rename st ~pool ~src ~dst);
      memory_used = (fun () -> 0);
    }
  in
  Stdlib.Mutex.lock registry_mutex;
  Hashtbl.replace copy_up_registry st.u_name st;
  Stdlib.Mutex.unlock registry_mutex;
  iface

let check_whiteouts iface ~pool =
  match find_state iface with
  | None -> []
  | Some st -> whiteout_orphans st ~pool
