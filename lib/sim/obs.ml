(* Typed observability context threaded through every simulation layer.

   One instance is owned by each Engine; layers intern handles once
   (cheap float refs / Stats.t) and emit through them on the hot path,
   so nothing stringly-typed remains in the per-operation code.  The
   interning table keyed by (layer, name, key) is only consulted at
   handle-creation and query time. *)

type hist_summary = {
  h_count : int;
  h_total : float;
  h_mean : float;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
  h_max : float;
}

type value =
  | Counter of float
  | Gauge of float
  | Histogram of hist_summary

type sample = { s_layer : string; s_name : string; s_key : string; s_value : value }

type span = { sp_at : float; sp_layer : string; sp_name : string; sp_dur : float }

type phase = Queue_wait | Lock_wait | Service | Network | Backoff

type cspan = {
  cs_id : int;
  cs_parent : int; (* 0 = no parent *)
  cs_layer : string;
  cs_name : string;
  cs_key : string;
  cs_phase : phase;
  cs_start : float;
  mutable cs_dur : float; (* < 0 while the span is still open *)
}

(* Counters and gauges are single-field all-float records: flat in
   memory, so [add]/[set] store the float unboxed.  A [float ref] cell
   boxed a fresh float on every update — measurable on per-event and
   per-block paths (CPU burst accounting, dirty-page gauges). *)
type fcell = { mutable v : float }

type counter = fcell
type gauge = fcell
type histogram = Stats.t

type cell = C of fcell | G of fcell | H of histogram

type t = {
  cells : (string * string * string, cell) Hashtbl.t;
  mutable tracing : bool;
  trace_capacity : int;
  (* Causal span store: append-only, grown geometrically up to
     [trace_capacity].  When full, new spans are DROPPED (never the old
     ones): a surviving child must be able to find its parent, so the
     store keeps the oldest spans — the opposite of the pre-causal ring.
     Ids are dense and survive {!reset} ([ctrace_base] advances), so a
     span opened before a reset can never close a post-reset span. *)
  mutable ctrace : cspan array;
  mutable ctrace_len : int;
  mutable ctrace_base : int; (* ids <= base belong to discarded epochs *)
  mutable ctrace_dropped : int;
}

(* Defaults consulted at [create] time: the CLI sets them once at startup
   (before any engine exists), so parallel experiment domains only ever
   read them. *)
let default_tracing = ref false
let default_trace_capacity = ref 4096
let default_sample_period : float option ref = ref None

let dummy_cspan =
  {
    cs_id = 0;
    cs_parent = 0;
    cs_layer = "";
    cs_name = "";
    cs_key = "";
    cs_phase = Service;
    cs_start = 0.0;
    cs_dur = 0.0;
  }

let create ?tracing ?trace_capacity () =
  let tracing = Option.value ~default:!default_tracing tracing in
  let capacity =
    Stdlib.max 1 (Option.value ~default:!default_trace_capacity trace_capacity)
  in
  {
    cells = Hashtbl.create 64;
    tracing;
    trace_capacity = capacity;
    ctrace = [||];
    ctrace_len = 0;
    ctrace_base = 0;
    ctrace_dropped = 0;
  }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let intern t ~layer ~name ~key make expect =
  let id = (layer, name, key) in
  match Hashtbl.find t.cells id with
  | cell ->
      if kind_name cell <> expect then
        invalid_arg
          (Printf.sprintf "Obs: %s/%s[%s] is a %s, requested as %s" layer name
             key (kind_name cell) expect);
      cell
  | exception Not_found ->
      let cell = make () in
      Hashtbl.add t.cells id cell;
      cell

let counter t ~layer ~name ~key =
  match intern t ~layer ~name ~key (fun () -> C { v = 0.0 }) "counter" with
  | C r -> r
  | G _ | H _ -> assert false

let gauge t ~layer ~name ~key =
  match intern t ~layer ~name ~key (fun () -> G { v = 0.0 }) "gauge" with
  | G r -> r
  | C _ | H _ -> assert false

let histogram t ~layer ~name ~key =
  match intern t ~layer ~name ~key (fun () -> H (Stats.create ())) "histogram" with
  | H s -> s
  | C _ | G _ -> assert false

let[@inline] add (c : counter) dv = c.v <- c.v +. dv
let[@inline] incr c = c.v <- c.v +. 1.0
let counter_value (c : counter) = c.v
let[@inline] set (g : gauge) dv = g.v <- dv
let[@inline] set_max (g : gauge) dv = if dv > g.v then g.v <- dv
let gauge_value (g : gauge) = g.v
let observe (h : histogram) v = Stats.add h v
let hist_stats (h : histogram) = h

(* ------------------------------------------------------------------ *)
(* Queries *)

let get t ~layer ~name ~key =
  match Hashtbl.find_opt t.cells (layer, name, key) with
  | Some (C r) | Some (G r) -> r.v
  | Some (H s) -> Stats.total s
  | None -> 0.0

let fold_name t ?layer ~name f init =
  Hashtbl.fold
    (fun (l, n, k) cell acc ->
      if String.equal n name && (match layer with None -> true | Some l' -> String.equal l l')
      then f acc ~layer:l ~key:k cell
      else acc)
    t.cells init

let cell_scalar = function
  | C r | G r -> r.v
  | H s -> Stats.total s

let sum t ?layer ~name () =
  fold_name t ?layer ~name (fun acc ~layer:_ ~key:_ cell -> acc +. cell_scalar cell) 0.0

let sum_key t ?layer ~name ~key () =
  fold_name t ?layer ~name
    (fun acc ~layer:_ ~key:k cell ->
      if String.equal k key then acc +. cell_scalar cell else acc)
    0.0

let by_key t ~layer ~name =
  fold_name t ~layer ~name (fun acc ~layer:_ ~key cell -> (key, cell_scalar cell) :: acc) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let summarize (s : Stats.t) =
  {
    h_count = Stats.count s;
    h_total = Stats.total s;
    h_mean = Stats.mean s;
    h_p50 = Stats.percentile s 50.0;
    h_p95 = Stats.percentile s 95.0;
    h_p99 = Stats.percentile s 99.0;
    h_max = Stats.max s;
  }

let hist_summary t ~layer ~name ~key =
  match Hashtbl.find_opt t.cells (layer, name, key) with
  | Some (H s) -> Some (summarize s)
  | Some (C _) | Some (G _) | None -> None

let snapshot t =
  Hashtbl.fold
    (fun (l, n, k) cell acc ->
      let v =
        match cell with
        | C r -> Counter r.v
        | G r -> Gauge r.v
        | H s -> Histogram (summarize s)
      in
      { s_layer = l; s_name = n; s_key = k; s_value = v } :: acc)
    t.cells []
  |> List.sort (fun a b ->
         match String.compare a.s_layer b.s_layer with
         | 0 -> (
             match String.compare a.s_name b.s_name with
             | 0 -> String.compare a.s_key b.s_key
             | c -> c)
         | c -> c)

let prefix_keys prefix samples =
  List.map (fun s -> { s with s_key = prefix ^ s.s_key }) samples

(* ------------------------------------------------------------------ *)
(* Causal span store *)

let tracing t = t.tracing
let set_tracing t b = t.tracing <- b

let ctrace_grow t =
  let cap = Array.length t.ctrace in
  let cap' = Stdlib.min t.trace_capacity (Stdlib.max 64 (cap * 2)) in
  let a = Array.make cap' dummy_cspan in
  Array.blit t.ctrace 0 a 0 t.ctrace_len;
  t.ctrace <- a

(* Returns the span id, or 0 if tracing is off / the store is full.  Id 0
   doubles as "no parent", so every consumer treats it as a no-op. *)
let begin_span t ~at ~parent ~layer ~name ~key ~phase =
  if not t.tracing then 0
  else if t.ctrace_len >= t.trace_capacity then begin
    t.ctrace_dropped <- t.ctrace_dropped + 1;
    0
  end
  else begin
    if t.ctrace_len >= Array.length t.ctrace then ctrace_grow t;
    let id = t.ctrace_base + t.ctrace_len + 1 in
    t.ctrace.(t.ctrace_len) <-
      {
        cs_id = id;
        cs_parent = (if parent > t.ctrace_base then parent else 0);
        cs_layer = layer;
        cs_name = name;
        cs_key = key;
        cs_phase = phase;
        cs_start = at;
        cs_dur = -1.0;
      };
    t.ctrace_len <- t.ctrace_len + 1;
    id
  end

(* Ids from before the last reset fall at or below [ctrace_base] and are
   ignored — a long-lived background process may legitimately try to close
   a span that a reset discarded. *)
let end_span t ~at id =
  if id > t.ctrace_base && id <= t.ctrace_base + t.ctrace_len then begin
    let cs = t.ctrace.(id - t.ctrace_base - 1) in
    if cs.cs_dur < 0.0 then cs.cs_dur <- at -. cs.cs_start
  end

let emit_span t ~at ~parent ~layer ~name ~key ~phase ~dur =
  let id = begin_span t ~at ~parent ~layer ~name ~key ~phase in
  end_span t ~at:(at +. dur) id

let parent_of t id =
  if id > t.ctrace_base && id <= t.ctrace_base + t.ctrace_len then
    t.ctrace.(id - t.ctrace_base - 1).cs_parent
  else 0

let compare_cspan a b =
  match Float.compare a.cs_start b.cs_start with
  | 0 -> Int.compare a.cs_id b.cs_id
  | c -> c

(* Closed spans, sorted by (start, id): completed spans are appended at
   their END time, so the raw store order is not stable for export. *)
let cspans t =
  let acc = ref [] in
  for i = t.ctrace_len - 1 downto 0 do
    let cs = t.ctrace.(i) in
    if cs.cs_dur >= 0.0 then acc := cs :: !acc
  done;
  List.stable_sort compare_cspan !acc

(* Legacy flat span view, derived from the causal store (one code path). *)
let span t ~at ~layer ~name ~dur =
  emit_span t ~at ~parent:0 ~layer ~name ~key:"" ~phase:Service ~dur

let flat_name cs =
  if String.equal cs.cs_key "" then cs.cs_name
  else cs.cs_name ^ ":" ^ cs.cs_key

let spans t =
  List.map
    (fun cs ->
      {
        sp_at = cs.cs_start;
        sp_layer = cs.cs_layer;
        sp_name = flat_name cs;
        sp_dur = cs.cs_dur;
      })
    (cspans t)

let dropped_spans t = t.ctrace_dropped

(* ------------------------------------------------------------------ *)

(* Handles stay valid across a reset: cells are cleared in place, never
   replaced (experiments reset between the warm-up and measured phase).
   The span store is discarded; [ctrace_base] advances past every id ever
   handed out so stale end_span calls from surviving processes are inert. *)
let reset t =
  Hashtbl.iter
    (fun _ cell ->
      match cell with C r | G r -> r.v <- 0.0 | H s -> Stats.clear s)
    t.cells;
  t.ctrace_base <- t.ctrace_base + t.ctrace_len;
  t.ctrace_len <- 0;
  t.ctrace_dropped <- 0;
  if Array.length t.ctrace > 0 then
    Array.fill t.ctrace 0 (Array.length t.ctrace) dummy_cspan

let dump t =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      let v =
        match s.s_value with
        | Counter v -> Printf.sprintf "counter %.6g" v
        | Gauge v -> Printf.sprintf "gauge %.6g" v
        | Histogram h ->
            Printf.sprintf
              "histogram count=%d total=%.6g mean=%.6g p50=%.6g p95=%.6g p99=%.6g max=%.6g"
              h.h_count h.h_total h.h_mean h.h_p50 h.h_p95 h.h_p99 h.h_max
      in
      Buffer.add_string buf
        (Printf.sprintf "%s/%s[%s] = %s\n" s.s_layer s.s_name s.s_key v))
    (snapshot t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Periodic sampler: deterministic timeseries of counters/gauges.

   A driving process calls [tick] on a fixed sim-time period; each tick
   snapshots every counter and gauge (histograms are excluded — their
   summaries are not cheap and the timeline figures only need rates and
   levels).  Points accumulate newest-first and are reversed on read. *)

module Sampler = struct
  type point = { pt_time : float; pt_samples : sample list }

  type s = { sa_obs : t; sa_period : float; mutable sa_points : point list }

  let create obs ~period =
    if period <= 0.0 then invalid_arg "Obs.Sampler.create: period <= 0";
    { sa_obs = obs; sa_period = period; sa_points = [] }

  let period s = s.sa_period

  let tick s ~now =
    let samples =
      Hashtbl.fold
        (fun (l, n, k) cell acc ->
          match cell with
          | C r -> { s_layer = l; s_name = n; s_key = k; s_value = Counter r.v } :: acc
          | G r -> { s_layer = l; s_name = n; s_key = k; s_value = Gauge r.v } :: acc
          | H _ -> acc)
        s.sa_obs.cells []
      |> List.sort (fun a b ->
             match String.compare a.s_layer b.s_layer with
             | 0 -> (
                 match String.compare a.s_name b.s_name with
                 | 0 -> String.compare a.s_key b.s_key
                 | c -> c)
             | c -> c)
    in
    s.sa_points <- { pt_time = now; pt_samples = samples } :: s.sa_points

  let points s = List.rev s.sa_points
  let clear s = s.sa_points <- []

  let prefix_keys prefix pts =
    List.map (fun p -> { p with pt_samples = prefix_keys prefix p.pt_samples }) pts
end
