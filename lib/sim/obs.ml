(* Typed observability context threaded through every simulation layer.

   One instance is owned by each Engine; layers intern handles once
   (cheap float refs / Stats.t) and emit through them on the hot path,
   so nothing stringly-typed remains in the per-operation code.  The
   interning table keyed by (layer, name, key) is only consulted at
   handle-creation and query time. *)

type hist_summary = {
  h_count : int;
  h_total : float;
  h_mean : float;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
  h_max : float;
}

type value =
  | Counter of float
  | Gauge of float
  | Histogram of hist_summary

type sample = { s_layer : string; s_name : string; s_key : string; s_value : value }

type span = { sp_at : float; sp_layer : string; sp_name : string; sp_dur : float }

type counter = float ref
type gauge = float ref
type histogram = Stats.t

type cell = C of counter | G of gauge | H of histogram

type t = {
  cells : (string * string * string, cell) Hashtbl.t;
  mutable tracing : bool;
  mutable trace : span option array; (* bounded ring, overwrites oldest *)
  mutable trace_next : int;
  mutable trace_total : int;
}

(* Defaults consulted at [create] time: the CLI sets them once at startup
   (before any engine exists), so parallel experiment domains only ever
   read them. *)
let default_tracing = ref false
let default_trace_capacity = ref 4096

let create ?tracing ?trace_capacity () =
  let tracing = Option.value ~default:!default_tracing tracing in
  let capacity =
    Stdlib.max 1 (Option.value ~default:!default_trace_capacity trace_capacity)
  in
  {
    cells = Hashtbl.create 64;
    tracing;
    trace = Array.make capacity None;
    trace_next = 0;
    trace_total = 0;
  }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let intern t ~layer ~name ~key make expect =
  let id = (layer, name, key) in
  match Hashtbl.find_opt t.cells id with
  | Some cell ->
      if kind_name cell <> expect then
        invalid_arg
          (Printf.sprintf "Obs: %s/%s[%s] is a %s, requested as %s" layer name
             key (kind_name cell) expect);
      cell
  | None ->
      let cell = make () in
      Hashtbl.add t.cells id cell;
      cell

let counter t ~layer ~name ~key =
  match intern t ~layer ~name ~key (fun () -> C (ref 0.0)) "counter" with
  | C r -> r
  | G _ | H _ -> assert false

let gauge t ~layer ~name ~key =
  match intern t ~layer ~name ~key (fun () -> G (ref 0.0)) "gauge" with
  | G r -> r
  | C _ | H _ -> assert false

let histogram t ~layer ~name ~key =
  match intern t ~layer ~name ~key (fun () -> H (Stats.create ())) "histogram" with
  | H s -> s
  | C _ | G _ -> assert false

let add (c : counter) v = c := !c +. v
let incr c = add c 1.0
let counter_value (c : counter) = !c
let set (g : gauge) v = g := v
let set_max (g : gauge) v = if v > !g then g := v
let gauge_value (g : gauge) = !g
let observe (h : histogram) v = Stats.add h v
let hist_stats (h : histogram) = h

(* ------------------------------------------------------------------ *)
(* Queries *)

let get t ~layer ~name ~key =
  match Hashtbl.find_opt t.cells (layer, name, key) with
  | Some (C r) | Some (G r) -> !r
  | Some (H s) -> Stats.total s
  | None -> 0.0

let fold_name t ?layer ~name f init =
  Hashtbl.fold
    (fun (l, n, k) cell acc ->
      if String.equal n name && (match layer with None -> true | Some l' -> String.equal l l')
      then f acc ~layer:l ~key:k cell
      else acc)
    t.cells init

let cell_scalar = function
  | C r | G r -> !r
  | H s -> Stats.total s

let sum t ?layer ~name () =
  fold_name t ?layer ~name (fun acc ~layer:_ ~key:_ cell -> acc +. cell_scalar cell) 0.0

let sum_key t ?layer ~name ~key () =
  fold_name t ?layer ~name
    (fun acc ~layer:_ ~key:k cell ->
      if String.equal k key then acc +. cell_scalar cell else acc)
    0.0

let by_key t ~layer ~name =
  fold_name t ~layer ~name (fun acc ~layer:_ ~key cell -> (key, cell_scalar cell) :: acc) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let summarize (s : Stats.t) =
  {
    h_count = Stats.count s;
    h_total = Stats.total s;
    h_mean = Stats.mean s;
    h_p50 = Stats.percentile s 50.0;
    h_p95 = Stats.percentile s 95.0;
    h_p99 = Stats.percentile s 99.0;
    h_max = Stats.max s;
  }

let hist_summary t ~layer ~name ~key =
  match Hashtbl.find_opt t.cells (layer, name, key) with
  | Some (H s) -> Some (summarize s)
  | Some (C _) | Some (G _) | None -> None

let snapshot t =
  Hashtbl.fold
    (fun (l, n, k) cell acc ->
      let v =
        match cell with
        | C r -> Counter !r
        | G r -> Gauge !r
        | H s -> Histogram (summarize s)
      in
      { s_layer = l; s_name = n; s_key = k; s_value = v } :: acc)
    t.cells []
  |> List.sort (fun a b ->
         match String.compare a.s_layer b.s_layer with
         | 0 -> (
             match String.compare a.s_name b.s_name with
             | 0 -> String.compare a.s_key b.s_key
             | c -> c)
         | c -> c)

let prefix_keys prefix samples =
  List.map (fun s -> { s with s_key = prefix ^ s.s_key }) samples

(* ------------------------------------------------------------------ *)
(* Trace ring *)

let tracing t = t.tracing
let set_tracing t b = t.tracing <- b

let span t ~at ~layer ~name ~dur =
  if t.tracing then begin
    t.trace.(t.trace_next) <- Some { sp_at = at; sp_layer = layer; sp_name = name; sp_dur = dur };
    t.trace_next <- (t.trace_next + 1) mod Array.length t.trace;
    t.trace_total <- t.trace_total + 1
  end

let spans t =
  let cap = Array.length t.trace in
  let n = Stdlib.min t.trace_total cap in
  let start = if t.trace_total <= cap then 0 else t.trace_next in
  List.init n (fun i ->
      match t.trace.((start + i) mod cap) with
      | Some sp -> sp
      | None -> assert false)

let dropped_spans t = Stdlib.max 0 (t.trace_total - Array.length t.trace)

(* ------------------------------------------------------------------ *)

(* Handles stay valid across a reset: cells are cleared in place, never
   replaced (experiments reset between the warm-up and measured phase). *)
let reset t =
  Hashtbl.iter
    (fun _ cell ->
      match cell with C r | G r -> r := 0.0 | H s -> Stats.clear s)
    t.cells;
  Array.fill t.trace 0 (Array.length t.trace) None;
  t.trace_next <- 0;
  t.trace_total <- 0

let dump t =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      let v =
        match s.s_value with
        | Counter v -> Printf.sprintf "counter %.6g" v
        | Gauge v -> Printf.sprintf "gauge %.6g" v
        | Histogram h ->
            Printf.sprintf
              "histogram count=%d total=%.6g mean=%.6g p50=%.6g p95=%.6g p99=%.6g max=%.6g"
              h.h_count h.h_total h.h_mean h.h_p50 h.h_p95 h.h_p99 h.h_max
      in
      Buffer.add_string buf
        (Printf.sprintf "%s/%s[%s] = %s\n" s.s_layer s.s_name s.s_key v))
    (snapshot t);
  Buffer.contents buf
