type event = { at : float; seq : int; run : unit -> unit }

type t = {
  mutable clock : float;
  mutable seq : int;
  events : event Pheap.t;
  mutable live : int;
  obs : Obs.t;
}

exception Deadlock of string

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Fork : (string option * (unit -> unit)) -> unit Effect.t
  | Self : (t * string) Effect.t
  | Deadline_slot : float option ref Effect.t
  | Trace_slot : int ref Effect.t

let compare_events a b =
  let c = Float.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?obs () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  { clock = 0.0; seq = 0; events = Pheap.create ~cmp:compare_events; live = 0; obs }

let now t = t.clock
let obs t = t.obs
let live_processes t = t.live

let schedule t ?(delay = 0.0) run =
  Invariant.precondition ~layer:"engine" ~what:"schedule_delay"
    ~detail:(fun () -> Printf.sprintf "negative delay %g" delay)
    (delay >= 0.0);
  let ev = { at = t.clock +. delay; seq = t.seq; run } in
  t.seq <- t.seq + 1;
  Pheap.push t.events ev

(* Each process body runs under a deep effect handler that translates the
   blocking effects into event-queue manipulation.  Continuations are
   one-shot; wake functions guard against double resumption.

   Every process owns a deadline slot: a mutable absolute-time bound that
   ops running in the process may consult ([deadline]) or tighten
   ([with_deadline]).  Children forked from a process inherit the value
   the slot held at fork time, so a deadline stamped at a client entry
   point follows the work across [fork] boundaries (e.g. the striper's
   per-object fan-out) without any signature changes.

   The trace slot works the same way: it holds the id of the innermost
   open trace span (0 = none) and is inherited at fork time, so a child
   process's spans parent under the op that forked it. *)
let rec exec t name dl tp body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun exn ->
          t.live <- t.live - 1;
          raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  Invariant.precondition ~layer:"engine" ~what:"sleep_delay"
                    ~detail:(fun () -> Printf.sprintf "negative delay %g" d)
                    (d >= 0.0);
                  schedule t ~delay:d (fun () -> continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let woken = ref false in
                  let wake () =
                    if not !woken then begin
                      woken := true;
                      schedule t (fun () -> continue k ())
                    end
                  in
                  register wake)
          | Fork (child_name, f) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  spawn t ?name:child_name ?deadline:!dl ~span_parent:!tp f;
                  continue k ())
          | Self ->
              Some (fun (k : (a, unit) continuation) -> continue k (t, name))
          | Deadline_slot ->
              Some (fun (k : (a, unit) continuation) -> continue k dl)
          | Trace_slot ->
              Some (fun (k : (a, unit) continuation) -> continue k tp)
          | _ -> None);
    }

and spawn t ?(name = "proc") ?deadline ?(span_parent = 0) body =
  t.live <- t.live + 1;
  schedule t (fun () -> exec t name (ref deadline) (ref span_parent) body)

(* Per-event invariants: the popped event may never lie behind the
   clock (the heap's total order plus non-negative delays guarantee it;
   a violation means event ordering itself broke).  The O(n) structural
   heap check is sampled on seq so even [Strict] test runs only pay it
   once every few thousand events. *)
let check_event t ev =
  Invariant.require ~obs:t.obs ~layer:"engine" ~what:"clock_monotonic"
    ~detail:(fun () ->
      Printf.sprintf "event at %.9g behind clock %.9g" ev.at t.clock)
    (ev.at >= t.clock);
  if ev.seq land 4095 = 0 then
    Invariant.invariant ~obs:t.obs ~layer:"engine" ~what:"heap_order"
      ~detail:(fun () ->
        Printf.sprintf "event heap lost order at %d entries"
          (Pheap.size t.events))
      (fun () -> Pheap.is_heap t.events)

let run t =
  let rec loop () =
    match Pheap.pop t.events with
    | None ->
        if t.live > 0 then
          raise (Deadlock (Printf.sprintf "%d process(es) blocked forever" t.live))
    | Some ev ->
        check_event t ev;
        t.clock <- ev.at;
        ev.run ();
        loop ()
  in
  loop ()

let run_until t horizon =
  let rec loop () =
    match Pheap.peek t.events with
    | Some ev when ev.at <= horizon ->
        ignore (Pheap.pop t.events);
        check_event t ev;
        t.clock <- ev.at;
        ev.run ();
        loop ()
    | Some _ | None -> t.clock <- horizon
  in
  loop ()

let sleep d = Effect.perform (Sleep d)
let suspend register = Effect.perform (Suspend register)
let fork ?name f = Effect.perform (Fork (name, f))
let self () = Effect.perform Self

let self_engine () = fst (self ())
let self_name () = snd (self ())
let time () = now (self_engine ())
let yield () = sleep 0.0

let deadline_slot () =
  try Some (Effect.perform Deadline_slot) with Effect.Unhandled _ -> None

let trace_slot () =
  try Some (Effect.perform Trace_slot) with Effect.Unhandled _ -> None

let trace_parent () = match trace_slot () with Some r -> !r | None -> 0

let deadline () = match deadline_slot () with Some r -> !r | None -> None

let with_deadline d f =
  match deadline_slot () with
  | None -> f ()
  | Some slot ->
      let saved = !slot in
      let tightened =
        match (saved, d) with
        | Some a, Some b -> Some (Float.min a b)
        | None, d | d, None -> d
      in
      slot := tightened;
      Invariant.require ~layer:"engine" ~what:"deadline_tighten"
        ~detail:(fun () -> "with_deadline loosened an inherited deadline")
        (match (saved, tightened) with
        | Some a, Some b -> b <= a
        | None, _ -> true
        | Some _, None -> false);
      Fun.protect ~finally:(fun () -> slot := saved) f
