(* The engine's event queue is the binary-heap layout from
   {!Event_queue}, embedded here as an internal module rather than used
   across the module boundary.  This is load-bearing, not a style
   choice: dune's dev profile compiles with [-opaque], which strips cmx
   inlining information, so a cross-module [Event_queue.push]/[min_time]
   call can never be inlined in dev builds — and a non-inlined call
   boxes its float argument and float return (two minor allocations per
   dispatched event).  Within one compilation unit the Closure inliner
   works in every profile, so the float key flows from caller to flat
   array slot and back without ever being boxed.  The standalone
   {!Event_queue} module (and its [Fourary] variant) remains the
   reference implementation; the differential tests drive both against
   {!Pheap} to pin down identical ordering. *)
module Q = struct
  let nop () = ()

  type t = {
    mutable times : float array;
    mutable seqs : int array;
    mutable runs : (unit -> unit) array;
    mutable size : int;
  }

  let create () =
    {
      times = Array.make 256 0.0;
      seqs = Array.make 256 0;
      runs = Array.make 256 nop;
      size = 0;
    }

  let size q = q.size
  let[@inline] is_empty q = q.size = 0
  let[@inline] min_time q = q.times.(0)
  let[@inline] min_seq q = q.seqs.(0)

  let grow q =
    let cap' = Array.length q.times * 2 in
    let times = Array.make cap' 0.0
    and seqs = Array.make cap' 0
    and runs = Array.make cap' nop in
    Array.blit q.times 0 times 0 q.size;
    Array.blit q.seqs 0 seqs 0 q.size;
    Array.blit q.runs 0 runs 0 q.size;
    q.times <- times;
    q.seqs <- seqs;
    q.runs <- runs

  (* sift loops are outlined and take no float arguments, so the inlined
     [push]/[pop_exn] wrappers stay under the Closure size budget *)
  let sift_up q i0 =
    let ts = q.times and ss = q.seqs and rs = q.runs in
    let at = ts.(i0) and seq = ss.(i0) and run = rs.(i0) in
    let i = ref i0 in
    let stop = ref false in
    while (not !stop) && !i > 0 do
      let p = (!i - 1) / 2 in
      if ts.(p) > at || (ts.(p) = at && ss.(p) > seq) then begin
        ts.(!i) <- ts.(p);
        ss.(!i) <- ss.(p);
        rs.(!i) <- rs.(p);
        i := p
      end
      else stop := true
    done;
    ts.(!i) <- at;
    ss.(!i) <- seq;
    rs.(!i) <- run

  let[@inline] push q ~at ~seq run =
    let n = q.size in
    if n = Array.length q.times then grow q;
    q.times.(n) <- at;
    q.seqs.(n) <- seq;
    q.runs.(n) <- run;
    q.size <- n + 1;
    if n > 0 then sift_up q n

  let sift_down q n =
    let ts = q.times and ss = q.seqs and rs = q.runs in
    let at = ts.(n) and seq = ss.(n) and run = rs.(n) in
    rs.(n) <- nop;
    let i = ref 0 in
    let stop = ref false in
    while not !stop do
      let l = (2 * !i) + 1 in
      if l >= n then stop := true
      else begin
        let r = l + 1 in
        let c =
          if r < n && (ts.(r) < ts.(l) || (ts.(r) = ts.(l) && ss.(r) < ss.(l)))
          then r
          else l
        in
        if ts.(c) < at || (ts.(c) = at && ss.(c) < seq) then begin
          ts.(!i) <- ts.(c);
          ss.(!i) <- ss.(c);
          rs.(!i) <- rs.(c);
          i := c
        end
        else stop := true
      end
    done;
    ts.(!i) <- at;
    ss.(!i) <- seq;
    rs.(!i) <- run

  let[@inline] pop_exn q =
    let n = q.size - 1 in
    if n < 0 then invalid_arg "Engine: event queue empty";
    let run = q.runs.(0) in
    q.size <- n;
    if n = 0 then q.runs.(0) <- nop else sift_down q n;
    run

  let is_heap q =
    let ok = ref true in
    for i = 1 to q.size - 1 do
      let p = (i - 1) / 2 in
      if
        q.times.(p) > q.times.(i)
        || (q.times.(p) = q.times.(i) && q.seqs.(p) > q.seqs.(i))
      then ok := false
    done;
    !ok
end

(* The clock lives in a single-field all-float record: such records are
   flat (the float is stored unboxed), so advancing the clock from a
   value read out of the event queue's float array never allocates.  A
   [mutable clock : float] field directly in [t] would be a boxed slot
   in a mixed record — one boxed float per dispatched event. *)
type clock = { mutable at : float }

type t = {
  clock : clock;
  mutable seq : int;
  events : Q.t;
  mutable live : int;
  mutable processed : int; (* events dispatched by run/run_until *)
  mutable flushed : int; (* portion of [processed] already in the global *)
  obs : Obs.t;
}

(* Process-wide event total, fed from per-engine counters when a run
   loop returns (never per event, so the hot loop stays free of atomic
   traffic).  The bench harness reads it to derive events/sec. *)
let total_events = Atomic.make 0

let flush_events t =
  let d = t.processed - t.flushed in
  if d > 0 then begin
    ignore (Atomic.fetch_and_add total_events d);
    t.flushed <- t.processed
  end

let global_events () = Atomic.get total_events
let reset_global_events () = Atomic.set total_events 0

exception Deadlock of string

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Fork : (string option * (unit -> unit)) -> unit Effect.t
  | Self : (t * string) Effect.t
  | Deadline_slot : float option ref Effect.t
  | Trace_slot : int ref Effect.t

let create ?obs () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  {
    clock = { at = 0.0 };
    seq = 0;
    events = Q.create ();
    live = 0;
    processed = 0;
    flushed = 0;
    obs;
  }

let now t = t.clock.at
let obs t = t.obs
let live_processes t = t.live
let events_processed t = t.processed

(* Internal absolute-time scheduling: no optional argument to wrap, no
   delay validation — the engine's own call sites pass times it already
   knows to be sound.  With [Q.push] inlined here, scheduling an event
   is a handful of array writes. *)
let[@inline] schedule_at t at run =
  let s = t.seq in
  t.seq <- s + 1;
  Q.push t.events ~at ~seq:s run

let schedule t ?(delay = 0.0) run =
  (* [not (>= 0)] also rejects NaN, matching the old precondition *)
  if not (delay >= 0.0) then
    Invariant.fail ~layer:"engine" ~what:"schedule_delay"
      (Printf.sprintf "negative delay %g" delay);
  schedule_at t (t.clock.at +. delay) run

(* Each process body runs under a deep effect handler that translates the
   blocking effects into event-queue manipulation.  Continuations are
   one-shot; wake functions guard against double resumption.

   Every process owns a deadline slot: a mutable absolute-time bound that
   ops running in the process may consult ([deadline]) or tighten
   ([with_deadline]).  Children forked from a process inherit the value
   the slot held at fork time, so a deadline stamped at a client entry
   point follows the work across [fork] boundaries (e.g. the striper's
   per-object fan-out) without any signature changes.

   The trace slot works the same way: it holds the id of the innermost
   open trace span (0 = none) and is inherited at fork time, so a child
   process's spans parent under the op that forked it. *)
let rec exec t name dl tp body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun exn ->
          t.live <- t.live - 1;
          raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if not (d >= 0.0) then
                    Invariant.fail ~layer:"engine" ~what:"sleep_delay"
                      (Printf.sprintf "negative delay %g" d);
                  schedule_at t (t.clock.at +. d) (fun () -> continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let woken = ref false in
                  let wake () =
                    if not !woken then begin
                      woken := true;
                      schedule_at t t.clock.at (fun () -> continue k ())
                    end
                  in
                  register wake)
          | Fork (child_name, f) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  spawn t ?name:child_name ?deadline:!dl ~span_parent:!tp f;
                  continue k ())
          | Self ->
              Some (fun (k : (a, unit) continuation) -> continue k (t, name))
          | Deadline_slot ->
              Some (fun (k : (a, unit) continuation) -> continue k dl)
          | Trace_slot ->
              Some (fun (k : (a, unit) continuation) -> continue k tp)
          | _ -> None);
    }

and spawn t ?(name = "proc") ?deadline ?(span_parent = 0) body =
  t.live <- t.live + 1;
  schedule_at t t.clock.at (fun () ->
      exec t name (ref deadline) (ref span_parent) body)

(* Per-event invariants, only reached when checking is enabled (the run
   loops guard the call on [Invariant.on], so the [Off] fast path pays a
   single branch and allocates nothing).  The popped event may never lie
   behind the clock (the heap's total order plus non-negative delays
   guarantee it; a violation means event ordering itself broke).  The
   O(n) structural heap check is sampled on seq so even [Strict] test
   runs only pay it once every few thousand events. *)
let check_event t at seq =
  Invariant.require ~obs:t.obs ~layer:"engine" ~what:"clock_monotonic"
    ~detail:(fun () ->
      Printf.sprintf "event at %.9g behind clock %.9g" at t.clock.at)
    (at >= t.clock.at);
  if seq land 4095 = 0 then
    Invariant.invariant ~obs:t.obs ~layer:"engine" ~what:"heap_order"
      ~detail:(fun () ->
        Printf.sprintf "event heap lost order at %d entries"
          (Q.size t.events))
      (fun () -> Q.is_heap t.events)

let run t =
  let q = t.events in
  let rec loop () =
    if Q.is_empty q then begin
      flush_events t;
      if t.live > 0 then
        raise (Deadlock (Printf.sprintf "%d process(es) blocked forever" t.live))
    end
    else begin
      let at = Q.min_time q in
      if Invariant.on () then check_event t at (Q.min_seq q);
      let run_ev = Q.pop_exn q in
      t.clock.at <- at;
      t.processed <- t.processed + 1;
      run_ev ();
      loop ()
    end
  in
  loop ()

let run_until t horizon =
  let q = t.events in
  let rec loop () =
    if (not (Q.is_empty q)) && Q.min_time q <= horizon
    then begin
      let at = Q.min_time q in
      if Invariant.on () then check_event t at (Q.min_seq q);
      let run_ev = Q.pop_exn q in
      t.clock.at <- at;
      t.processed <- t.processed + 1;
      run_ev ();
      loop ()
    end
    else begin
      t.clock.at <- horizon;
      flush_events t
    end
  in
  loop ()

let sleep d = Effect.perform (Sleep d)
let suspend register = Effect.perform (Suspend register)
let fork ?name f = Effect.perform (Fork (name, f))
let self () = Effect.perform Self

let self_engine () = fst (self ())
let self_name () = snd (self ())
let time () = now (self_engine ())
let yield () = sleep 0.0

let deadline_slot () =
  try Some (Effect.perform Deadline_slot) with Effect.Unhandled _ -> None

let trace_slot () =
  try Some (Effect.perform Trace_slot) with Effect.Unhandled _ -> None

let trace_parent () = match trace_slot () with Some r -> !r | None -> 0

let deadline () = match deadline_slot () with Some r -> !r | None -> None

let with_deadline d f =
  match deadline_slot () with
  | None -> f ()
  | Some slot ->
      let saved = !slot in
      let tightened =
        match (saved, d) with
        | Some a, Some b -> Some (Float.min a b)
        | None, d | d, None -> d
      in
      slot := tightened;
      Invariant.require ~layer:"engine" ~what:"deadline_tighten"
        ~detail:(fun () -> "with_deadline loosened an inherited deadline")
        (match (saved, tightened) with
        | Some a, Some b -> b <= a
        | None, _ -> true
        | Some _, None -> false);
      Fun.protect ~finally:(fun () -> slot := saved) f
