(** Monomorphic event queue of the simulation engine.

    A min-heap specialized to the engine's event shape: keys are
    [(time : float, seq : int)] pairs compared lexicographically (the
    sequence number breaks timestamp ties deterministically), payloads
    are the event thunks.  The three key/payload columns live in
    parallel arrays — a [float array] for times (flat, unboxed), an
    [int array] for sequence numbers and a closure array for thunks —
    so pushing an event allocates nothing beyond amortized array
    growth, where the generic {!Pheap} allocated a 3-field event
    record plus a boxed float per push and an option per pop.

    The accessors are written so the engine's run loop allocates
    nothing per event: {!min_time}/{!min_seq} are loop-free and small
    enough for the non-flambda inliner (floats stay unboxed at the
    call site), and {!pop_exn} returns the stored thunk directly
    instead of wrapping it in an option.

    Two implementations share the {!S} signature: the default binary
    heap (this module's toplevel) and a {!Fourary} 4-ary variant kept
    for evaluation — shallower by half at the cost of more sibling
    comparisons per level.  The differential tests drive both against
    {!Pheap}; DESIGN.md records the measured comparison. *)

module type S = sig
  type t

  val create : unit -> t
  val size : t -> int
  val is_empty : t -> bool

  (** [push q ~at ~seq run] inserts an event.  O(log n); allocation
      free apart from amortized growth of the backing arrays. *)
  val push : t -> at:float -> seq:int -> (unit -> unit) -> unit

  (** Key of the minimum event.  Undefined (reads stale storage) on an
      empty queue — callers check {!is_empty} first; the engine's run
      loop always does. *)
  val min_time : t -> float

  val min_seq : t -> int

  (** Remove the minimum event and return its thunk.  O(log n), no
      allocation.  Raises [Invalid_argument] when empty. *)
  val pop_exn : t -> unit -> unit

  val clear : t -> unit

  (** Structural heap check: every parent at or before its children in
      [(time, seq)] order.  O(n); invariant layer and tests only. *)
  val is_heap : t -> bool
end

include S

(** 4-ary heap over the same parallel-array layout. *)
module Fourary : S
