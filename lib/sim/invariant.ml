(* Runtime invariant layer (the engine-level half of danaus_check).

   Layers state their conservation laws through {!require} (a cheap,
   already-evaluated condition) and {!invariant} (a predicate thunk only
   evaluated when checking is enabled).  The global {!mode} decides the
   cost: [Off] is a single branch per call site, [Record] counts every
   violation in the violating engine's [Obs] (layer "check", name
   "violations") and in a global bounded log, and [Strict] additionally
   raises {!Violation} so a broken law stops the run where it happened.

   The mode is process-global and set once at startup (test runner,
   fuzzer, CLI flag), before any simulation domain is spawned — exactly
   like [Obs.default_tracing] — so parallel experiment domains only ever
   read it.  The violation log is shared across domains and protected by
   a real mutex; it is bounded so a hot broken invariant cannot eat the
   heap in [Record] mode. *)

type mode = Off | Record | Strict

type violation = { v_layer : string; v_what : string; v_detail : string }

exception Violation of violation

let () =
  Printexc.register_printer (function
    | Violation v ->
        Some
          (Printf.sprintf "Invariant violation in %s/%s%s" v.v_layer v.v_what
             (if v.v_detail = "" then "" else ": " ^ v.v_detail))
    | _ -> None)

let current_mode = Atomic.make Off

let set_mode m = Atomic.set current_mode m
let mode () = Atomic.get current_mode
let on () = Atomic.get current_mode <> Off
let strict () = Atomic.get current_mode = Strict

(* ------------------------------------------------------------------ *)
(* Global bounded violation log (for reports; Obs holds the counters). *)

let log_limit = 1024
let log_mutex = Stdlib.Mutex.create ()
let log : violation list ref = ref [] (* newest first, bounded *)
let logged = ref 0 (* kept entries *)
let total = ref 0 (* every violation ever seen, even past the bound *)

let violations () =
  Stdlib.Mutex.lock log_mutex;
  let vs = List.rev !log in
  Stdlib.Mutex.unlock log_mutex;
  vs

let violation_count () =
  Stdlib.Mutex.lock log_mutex;
  let n = !total in
  Stdlib.Mutex.unlock log_mutex;
  n

let clear_violations () =
  Stdlib.Mutex.lock log_mutex;
  log := [];
  logged := 0;
  total := 0;
  Stdlib.Mutex.unlock log_mutex

let record ?obs ~layer ~what detail =
  let v = { v_layer = layer; v_what = what; v_detail = detail } in
  (match obs with
  | Some obs ->
      Obs.incr
        (Obs.counter obs ~layer:"check" ~name:"violations"
           ~key:(layer ^ ":" ^ what))
  | None -> ());
  Stdlib.Mutex.lock log_mutex;
  incr total;
  if !logged < log_limit then begin
    log := v :: !log;
    incr logged
  end;
  Stdlib.Mutex.unlock log_mutex;
  if strict () then raise (Violation v)

let detail_of = function None -> "" | Some f -> f ()

let require ?obs ?detail ~layer ~what cond =
  if Atomic.get current_mode <> Off && not cond then
    record ?obs ~layer ~what (detail_of detail)

let invariant ?obs ?detail ~layer ~what pred =
  if Atomic.get current_mode <> Off && not (pred ()) then
    record ?obs ~layer ~what (detail_of detail)

(* Unconditional failure: log and raise.  This is the cold half of a
   precondition; hot paths write [if bad then fail ...] so the good path
   evaluates one branch and allocates nothing (a [precondition] call
   site allocates its [detail] closure and [Some] wrappers even when the
   condition holds). *)
let fail ~layer ~what detail =
  let v = { v_layer = layer; v_what = what; v_detail = detail } in
  Stdlib.Mutex.lock log_mutex;
  incr total;
  if !logged < log_limit then begin
    log := v :: !log;
    incr logged
  end;
  Stdlib.Mutex.unlock log_mutex;
  raise (Violation v)

(* Argument/state preconditions migrated from bare [assert]s: always
   evaluated (they replace checks that were always on), and a failure
   always raises, naming the subsystem instead of [Assert_failure]. *)
let precondition ?detail ~layer ~what cond =
  if not cond then fail ~layer ~what (detail_of detail)
