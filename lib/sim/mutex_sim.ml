(* The float accounting lives in an all-float record: those are flat in
   the OCaml value model, so the per-handoff stat updates are plain
   stores.  The same fields as boxed slots of the mixed record below
   would cost a fresh box per assignment — three minor allocations per
   contended acquisition on the hottest lock in the tree. *)
type fstats = {
  mutable acquired_at : float;
  mutable total_wait : float;
  mutable total_hold : float;
}

type t = {
  engine : Engine.t;
  name : string;
  mutable is_locked : bool;
  waiters : (unit -> unit) Queue.t;
  fs : fstats;
  mutable acquisitions : int;
  mutable contended : int;
  wait_h : Obs.histogram;
  hold_h : Obs.histogram;
}

let create engine ~name =
  let obs = Engine.obs engine in
  {
    engine;
    name;
    is_locked = false;
    waiters = Queue.create ();
    fs = { acquired_at = 0.0; total_wait = 0.0; total_hold = 0.0 };
    acquisitions = 0;
    contended = 0;
    (* mutexes sharing a name (per-inode locks, interned kernel locks)
       share one distribution, which is what the figures aggregate *)
    wait_h = Obs.histogram obs ~layer:"sim" ~name:"lock_wait" ~key:name;
    hold_h = Obs.histogram obs ~layer:"sim" ~name:"lock_hold" ~key:name;
  }

let name t = t.name
let locked t = t.is_locked

let lock t =
  if not t.is_locked then begin
    (* An unlocked mutex with queued waiters means [unlock] dropped a
       hand-off: those waiters will never be woken.  The call site is
       guarded: an unguarded [require] builds its detail closure and
       optional wrappers on every uncontended acquisition. *)
    if Invariant.on () then
      Invariant.require ~obs:(Engine.obs t.engine) ~layer:"mutex"
        ~what:"no_orphan_waiters"
        ~detail:(fun () ->
          Printf.sprintf "%s unlocked with %d waiter(s) queued" t.name
            (Queue.length t.waiters))
        (Queue.is_empty t.waiters);
    t.is_locked <- true;
    t.fs.acquired_at <- Engine.now t.engine;
    t.acquisitions <- t.acquisitions + 1
  end
  else begin
    let started = Engine.now t.engine in
    t.contended <- t.contended + 1;
    Engine.suspend (fun wake -> Queue.add wake t.waiters);
    (* Ownership was passed to us by [unlock]; the mutex is still marked
       locked on our behalf. *)
    let now = Engine.now t.engine in
    t.fs.total_wait <- t.fs.total_wait +. (now -. started);
    Obs.observe t.wait_h (now -. started);
    if Trace.enabled (Engine.obs t.engine) then
      Trace.emit t.engine ~layer:"sim" ~name:"lock" ~key:t.name
        ~phase:Lock_wait ~start:started ~dur:(now -. started);
    t.fs.acquired_at <- now;
    t.acquisitions <- t.acquisitions + 1
  end

let unlock t =
  if not t.is_locked then invalid_arg ("Mutex_sim.unlock: not locked: " ^ t.name);
  let held = Engine.now t.engine -. t.fs.acquired_at in
  if Invariant.on () then
    Invariant.require ~obs:(Engine.obs t.engine) ~layer:"mutex"
      ~what:"hold_non_negative"
      ~detail:(fun () -> Printf.sprintf "%s held for %g" t.name held)
      (held >= 0.0);
  t.fs.total_hold <- t.fs.total_hold +. held;
  Obs.observe t.hold_h held;
  (* exceptionless non-allocating hand-off: [take_opt] would box a
     [Some wake] per contended release *)
  if Queue.is_empty t.waiters then t.is_locked <- false
  else (Queue.pop t.waiters) ()

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception exn ->
      unlock t;
      raise exn

let acquisitions t = t.acquisitions
let contended t = t.contended
let total_wait t = t.fs.total_wait
let total_hold t = t.fs.total_hold

let avg_wait t =
  if t.acquisitions = 0 then 0.0
  else t.fs.total_wait /. float_of_int t.acquisitions

let avg_hold t =
  if t.acquisitions = 0 then 0.0
  else t.fs.total_hold /. float_of_int t.acquisitions

let reset_stats t =
  t.fs.total_wait <- 0.0;
  t.fs.total_hold <- 0.0;
  t.acquisitions <- 0;
  t.contended <- 0
