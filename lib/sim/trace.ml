(* Causal per-op tracing: scoped spans with parent links, carried across
   process boundaries by the engine's per-process trace slot (forked
   children inherit the innermost open span of their parent, mirroring
   deadline inheritance).  Crossing an explicit queue — the IPC transport,
   the FUSE channel — requires handing the parent id over in the queued
   request; those layers use [with_parent] on the service side.

   All entry points are zero-cost when tracing is off: [enter]/[emit]
   check [Obs.tracing] first and allocate nothing. *)

type phase = Obs.phase = Queue_wait | Lock_wait | Service | Network | Backoff
type span = Obs.cspan

let phase_name = function
  | Queue_wait -> "queue_wait"
  | Lock_wait -> "lock_wait"
  | Service -> "service"
  | Network -> "network"
  | Backoff -> "backoff"

let enabled obs = Obs.tracing obs
let current () = Engine.trace_parent ()

let enter engine ~layer ~name ~key ~phase =
  let obs = Engine.obs engine in
  if not (Obs.tracing obs) then 0
  else begin
    let slot = Engine.trace_slot () in
    let parent = match slot with Some r -> !r | None -> 0 in
    let id =
      Obs.begin_span obs ~at:(Engine.now engine) ~parent ~layer ~name ~key ~phase
    in
    (match slot with Some r when id <> 0 -> r := id | _ -> ());
    id
  end

let exit engine id =
  if id <> 0 then begin
    let obs = Engine.obs engine in
    Obs.end_span obs ~at:(Engine.now engine) id;
    match Engine.trace_slot () with
    | Some r when !r = id -> r := Obs.parent_of obs id
    | _ -> ()
  end

let with_span engine ~layer ~name ~key ~phase f =
  let id = enter engine ~layer ~name ~key ~phase in
  if id = 0 then f () else Fun.protect ~finally:(fun () -> exit engine id) f

let with_parent parent f =
  match Engine.trace_slot () with
  | None -> f ()
  | Some r ->
      let saved = !r in
      r := parent;
      Fun.protect ~finally:(fun () -> r := saved) f

let emit engine ~layer ~name ~key ~phase ~start ~dur =
  let obs = Engine.obs engine in
  if Obs.tracing obs then
    Obs.emit_span obs ~at:start
      ~parent:(Engine.trace_parent ())
      ~layer ~name ~key ~phase ~dur

(* ------------------------------------------------------------------ *)
(* Merging span sets from several single-cell testbeds into one report:
   ids are offset past the running maximum so they stay unique, and keys
   get the same prefix the cell's metric snapshot got. *)

let merge sets =
  let open Obs in
  let off = ref 0 in
  List.concat_map
    (fun (prefix, spans) ->
      let base = !off in
      let top = ref base in
      let shifted =
        List.map
          (fun cs ->
            let id = cs.cs_id + base in
            if id > !top then top := id;
            {
              cs with
              cs_id = id;
              cs_parent = (if cs.cs_parent > 0 then cs.cs_parent + base else 0);
              cs_key = prefix ^ cs.cs_key;
            })
          spans
      in
      off := !top;
      shifted)
    sets

(* ------------------------------------------------------------------ *)
(* Latency attribution: decompose each root op's end-to-end latency into
   exclusive (layer, phase) buckets.

   For every root span (layer = [roots_layer], no parent in the set) we
   sweep its interval: at each elementary sub-interval the time is
   charged to the DEEPEST active descendant span (ties broken towards
   the newer span), and uncovered time is charged to the root itself.
   By construction the buckets of one op sum exactly to its end-to-end
   duration, which is what `danaus-cli explain` checks. *)

type attr_row = {
  ar_layer : string;
  ar_phase : phase;
  ar_total : float;
  ar_mean : float;
  ar_p99 : float;
  ar_share : float;
}

type attribution = {
  at_rows : attr_row list;
  at_ops : int;
  at_e2e_total : float;
  at_e2e_mean : float;
  at_e2e_p99 : float;
  at_max_residual : float;
}

let attribute ?(roots_layer = "core") all_spans =
  let open Obs in
  let spans = List.filter (fun cs -> cs.cs_dur >= 0.0) all_spans in
  let by_id = Hashtbl.create 256 in
  List.iter (fun cs -> Hashtbl.replace by_id cs.cs_id cs) spans;
  let children = Hashtbl.create 256 in
  List.iter
    (fun cs ->
      if cs.cs_parent <> 0 && Hashtbl.mem by_id cs.cs_parent then
        Hashtbl.replace children cs.cs_parent
          (cs :: (Option.value ~default:[] (Hashtbl.find_opt children cs.cs_parent))))
    spans;
  let kids id =
    (* reverse so children come back in insertion (= id-ish) order *)
    List.rev (Option.value ~default:[] (Hashtbl.find_opt children id))
  in
  let roots =
    List.filter
      (fun cs ->
        String.equal cs.cs_layer roots_layer
        && (cs.cs_parent = 0 || not (Hashtbl.mem by_id cs.cs_parent)))
      spans
  in
  (* Per-op bucket maps, then fold into per-bucket Stats (absent buckets
     count as 0 for that op, so means are comparable across ops). *)
  let bucket_keys = ref [] in
  let seen_bucket = Hashtbl.create 32 in
  let note_bucket k =
    if not (Hashtbl.mem seen_bucket k) then begin
      Hashtbl.add seen_bucket k ();
      bucket_keys := k :: !bucket_keys
    end
  in
  let per_op = ref [] in
  let e2e = Stats.create () in
  let max_residual = ref 0.0 in
  List.iter
    (fun root ->
      let r0 = root.cs_start and r1 = root.cs_start +. root.cs_dur in
      (* Collect descendants with depth, clamped into their ancestors. *)
      let active = ref [] in
      let rec walk depth lo hi cs =
        let lo = Float.max lo cs.cs_start
        and hi = Float.min hi (cs.cs_start +. cs.cs_dur) in
        if lo < hi then begin
          active := (depth, lo, hi, cs) :: !active;
          List.iter (walk (depth + 1) lo hi) (kids cs.cs_id)
        end
      in
      List.iter (walk 1 r0 r1) (kids root.cs_id);
      let active = !active in
      (* Boundary sweep over the root interval. *)
      let points =
        List.concat_map (fun (_, lo, hi, _) -> [ lo; hi ]) active @ [ r0; r1 ]
        |> List.sort_uniq Float.compare
        |> List.filter (fun p -> p >= r0 && p <= r1)
      in
      let buckets = Hashtbl.create 16 in
      let charge layer ph dt =
        let k = (layer, ph) in
        note_bucket k;
        Hashtbl.replace buckets k
          (dt +. Option.value ~default:0.0 (Hashtbl.find_opt buckets k))
      in
      let rec sweep = function
        | p0 :: (p1 :: _ as rest) ->
            let dt = p1 -. p0 in
            if dt > 0.0 then begin
              let best = ref None in
              List.iter
                (fun (depth, lo, hi, cs) ->
                  if lo <= p0 && p1 <= hi then
                    match !best with
                    | Some (d, c)
                      when d > depth || (d = depth && c.cs_id >= cs.cs_id) ->
                        ()
                    | _ -> best := Some (depth, cs))
                active;
              match !best with
              | Some (_, cs) -> charge cs.cs_layer cs.cs_phase dt
              | None -> charge root.cs_layer root.cs_phase dt
            end;
            sweep rest
        | _ -> ()
      in
      sweep points;
      let attributed = Hashtbl.fold (fun _ v acc -> acc +. v) buckets 0.0 in
      let res = Float.abs (root.cs_dur -. attributed) in
      if res > !max_residual then max_residual := res;
      Stats.add e2e root.cs_dur;
      per_op := buckets :: !per_op)
    roots;
  let bucket_keys =
    List.sort
      (fun (l1, p1) (l2, p2) ->
        match String.compare l1 l2 with
        | 0 -> String.compare (phase_name p1) (phase_name p2)
        | c -> c)
      !bucket_keys
  in
  let e2e_total = Stats.total e2e in
  let rows =
    List.map
      (fun ((layer, ph) as k) ->
        let st = Stats.create () in
        List.iter
          (fun buckets ->
            Stats.add st (Option.value ~default:0.0 (Hashtbl.find_opt buckets k)))
          !per_op;
        {
          ar_layer = layer;
          ar_phase = ph;
          ar_total = Stats.total st;
          ar_mean = Stats.mean st;
          ar_p99 = Stats.percentile st 99.0;
          ar_share = (if e2e_total > 0.0 then Stats.total st /. e2e_total else 0.0);
        })
      bucket_keys
    |> List.sort (fun a b ->
           match Float.compare b.ar_total a.ar_total with
           | 0 -> (
               match String.compare a.ar_layer b.ar_layer with
               | 0 -> String.compare (phase_name a.ar_phase) (phase_name b.ar_phase)
               | c -> c)
           | c -> c)
  in
  {
    at_rows = rows;
    at_ops = List.length roots;
    at_e2e_total = e2e_total;
    at_e2e_mean = Stats.mean e2e;
    at_e2e_p99 = Stats.percentile e2e 99.0;
    at_max_residual = !max_residual;
  }
