(** Typed observability context threaded through every simulation layer.

    One instance is owned per {!Engine} and shared by every component
    built on that engine (hardware, kernel, IPC, clients, experiments).
    Components intern typed handles once — a [counter], [gauge] or
    [histogram] identified by [(layer, name, key)] — and emit through
    them on the hot path with no string hashing.

    Conventions: [layer] is the subsystem ("sim", "hw", "kernel", "ipc",
    "client"), [name] the metric ("lock_wait", "io_wait", ...), [key]
    the instance (tenant/pool, device, lock or mount name).

    An optional bounded causal span store records per-op spans with
    ids and parent links when tracing is enabled (the CLI's [--trace] /
    [--trace-chrome]); when full, NEW spans are dropped so surviving
    children always find their parents.  The legacy flat span view is
    derived from the same store. *)

type t

(** {1 Creation} *)

(** Defaults consulted by {!create}.  Set once at program startup
    (e.g. from CLI flags) before any engine exists; engines created
    afterwards — including in parallel runner domains — inherit them. *)
val default_tracing : bool ref

val default_trace_capacity : int ref

(** Period (sim seconds) for {!Sampler}-based timeseries; [None] (the
    default) means experiments do not start a sampler.  Set by the CLI's
    [--timeseries] before any engine exists. *)
val default_sample_period : float option ref

(** [create ()] makes an empty context.  [tracing] and [trace_capacity]
    default to the refs above. *)
val create : ?tracing:bool -> ?trace_capacity:int -> unit -> t

(** {1 Typed handles}

    Handles are interned: the same [(layer, name, key)] always yields
    the same handle, and handles survive {!reset}.  Requesting an id
    under a different kind raises [Invalid_argument]. *)

type counter
type gauge
type histogram

val counter : t -> layer:string -> name:string -> key:string -> counter
val gauge : t -> layer:string -> name:string -> key:string -> gauge
val histogram : t -> layer:string -> name:string -> key:string -> histogram

val add : counter -> float -> unit
val incr : counter -> unit
val counter_value : counter -> float

val set : gauge -> float -> unit

(** [set_max g v] raises the gauge to [v] if larger (high-water marks). *)
val set_max : gauge -> float -> unit

val gauge_value : gauge -> float

(** Record one observation into a histogram (backed by {!Stats}). *)
val observe : histogram -> float -> unit

val hist_stats : histogram -> Stats.t

(** {1 Queries} *)

(** Scalar value of one cell: counter/gauge value, or a histogram's
    total.  0 when the cell does not exist. *)
val get : t -> layer:string -> name:string -> key:string -> float

(** Sum of the scalar values of every cell named [name] (optionally
    restricted to one layer), across all keys. *)
val sum : t -> ?layer:string -> name:string -> unit -> float

(** Like {!sum} but restricted to cells with key [key] — e.g. total
    context switches charged to one pool across layers. *)
val sum_key : t -> ?layer:string -> name:string -> key:string -> unit -> float

(** All [(key, scalar)] pairs of [(layer, name)], sorted by key. *)
val by_key : t -> layer:string -> name:string -> (string * float) list

type hist_summary = {
  h_count : int;
  h_total : float;
  h_mean : float;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
  h_max : float;
}

val hist_summary : t -> layer:string -> name:string -> key:string -> hist_summary option

(** {1 Snapshots} *)

type value =
  | Counter of float
  | Gauge of float
  | Histogram of hist_summary

type sample = { s_layer : string; s_name : string; s_key : string; s_value : value }

(** Deterministic snapshot: sorted by (layer, name, key). *)
val snapshot : t -> sample list

(** [prefix_keys p samples] prepends [p] to every sample's key — used to
    merge the snapshots of several single-cell testbeds into one report. *)
val prefix_keys : string -> sample list -> sample list

(** Deterministic plain-text rendering of {!snapshot} (tests, debug). *)
val dump : t -> string

(** {1 Causal span store}

    Each span has a dense id (> 0), an optional parent id (0 = root) and
    a phase classifying where the time went.  Emission is zero-cost when
    tracing is off: {!begin_span} returns 0 and allocates nothing (the
    backing array is only grown once the first span is recorded). *)

(** What an op was doing for the duration of the span. *)
type phase = Queue_wait | Lock_wait | Service | Network | Backoff

type cspan = {
  cs_id : int;
  cs_parent : int;  (** 0 = root span *)
  cs_layer : string;
  cs_name : string;
  cs_key : string;  (** instance: pool, device, lock, link... *)
  cs_phase : phase;
  cs_start : float;
  mutable cs_dur : float;  (** < 0 while the span is still open *)
}

val tracing : t -> bool
val set_tracing : t -> bool -> unit

(** Open a span; returns its id, or 0 when tracing is off or the store
    is full (new spans are dropped, old ones kept — children must be
    able to find their parents).  A [parent] from before the last
    {!reset} is recorded as 0. *)
val begin_span :
  t ->
  at:float ->
  parent:int ->
  layer:string ->
  name:string ->
  key:string ->
  phase:phase ->
  int

(** Close a span.  No-op for id 0, ids from before the last {!reset},
    and already-closed spans. *)
val end_span : t -> at:float -> int -> unit

(** Record an already-measured span in one call (parent explicit). *)
val emit_span :
  t ->
  at:float ->
  parent:int ->
  layer:string ->
  name:string ->
  key:string ->
  phase:phase ->
  dur:float ->
  unit

(** Parent id of a live span; 0 for roots, unknown or stale ids. *)
val parent_of : t -> int -> int

(** Closed spans sorted by [(cs_start, cs_id)] — a stable, deterministic
    export order (spans complete in end-time order internally). *)
val cspans : t -> cspan list

(** Spans dropped because the store was full. *)
val dropped_spans : t -> int

(** {1 Legacy flat span view}

    Derived from the causal store: one code path, no dual bookkeeping.
    A causal span appears as a flat span named ["name:key"] (or just
    ["name"] when the key is empty). *)

type span = { sp_at : float; sp_layer : string; sp_name : string; sp_dur : float }

(** [span t ~at ~layer ~name ~dur] records a parentless [Service] span;
    no-op unless tracing is enabled. *)
val span : t -> at:float -> layer:string -> name:string -> dur:float -> unit

(** Flat view of {!cspans}, same order. *)
val spans : t -> span list

(** {1 Periodic sampler}

    Deterministic timeseries: a driving process calls {!Sampler.tick} on
    a fixed sim-time period; every tick snapshots all counters and
    gauges (histograms excluded), sorted by (layer, name, key). *)

module Sampler : sig
  type point = { pt_time : float; pt_samples : sample list }
  type s

  (** Raises [Invalid_argument] when [period <= 0]. *)
  val create : t -> period:float -> s

  val period : s -> float
  val tick : s -> now:float -> unit

  (** Points in chronological order. *)
  val points : s -> point list

  val clear : s -> unit

  (** Prefix the key of every sample in every point, mirroring
      {!Obs.prefix_keys} — used when merging the timeseries of several
      per-cell testbeds into one report. *)
  val prefix_keys : string -> point list -> point list
end

(** {1 Reset} *)

(** Zero every counter/gauge, clear every histogram, discard all spans.
    Handles remain valid (cells are cleared in place); span ids keep
    advancing so stale {!end_span} calls from surviving processes are
    ignored. *)
val reset : t -> unit
