(** Typed observability context threaded through every simulation layer.

    One instance is owned per {!Engine} and shared by every component
    built on that engine (hardware, kernel, IPC, clients, experiments).
    Components intern typed handles once — a [counter], [gauge] or
    [histogram] identified by [(layer, name, key)] — and emit through
    them on the hot path with no string hashing.

    Conventions: [layer] is the subsystem ("sim", "hw", "kernel", "ipc",
    "client"), [name] the metric ("lock_wait", "io_wait", ...), [key]
    the instance (tenant/pool, device, lock or mount name).

    An optional bounded trace ring records timestamped span events
    [{t; layer; name; dur}] when tracing is enabled (the CLI's
    [--trace]); when full, the oldest spans are overwritten. *)

type t

(** {1 Creation} *)

(** Defaults consulted by {!create}.  Set once at program startup
    (e.g. from CLI flags) before any engine exists; engines created
    afterwards — including in parallel runner domains — inherit them. *)
val default_tracing : bool ref

val default_trace_capacity : int ref

(** [create ()] makes an empty context.  [tracing] and [trace_capacity]
    default to the refs above. *)
val create : ?tracing:bool -> ?trace_capacity:int -> unit -> t

(** {1 Typed handles}

    Handles are interned: the same [(layer, name, key)] always yields
    the same handle, and handles survive {!reset}.  Requesting an id
    under a different kind raises [Invalid_argument]. *)

type counter
type gauge
type histogram

val counter : t -> layer:string -> name:string -> key:string -> counter
val gauge : t -> layer:string -> name:string -> key:string -> gauge
val histogram : t -> layer:string -> name:string -> key:string -> histogram

val add : counter -> float -> unit
val incr : counter -> unit
val counter_value : counter -> float

val set : gauge -> float -> unit

(** [set_max g v] raises the gauge to [v] if larger (high-water marks). *)
val set_max : gauge -> float -> unit

val gauge_value : gauge -> float

(** Record one observation into a histogram (backed by {!Stats}). *)
val observe : histogram -> float -> unit

val hist_stats : histogram -> Stats.t

(** {1 Queries} *)

(** Scalar value of one cell: counter/gauge value, or a histogram's
    total.  0 when the cell does not exist. *)
val get : t -> layer:string -> name:string -> key:string -> float

(** Sum of the scalar values of every cell named [name] (optionally
    restricted to one layer), across all keys. *)
val sum : t -> ?layer:string -> name:string -> unit -> float

(** Like {!sum} but restricted to cells with key [key] — e.g. total
    context switches charged to one pool across layers. *)
val sum_key : t -> ?layer:string -> name:string -> key:string -> unit -> float

(** All [(key, scalar)] pairs of [(layer, name)], sorted by key. *)
val by_key : t -> layer:string -> name:string -> (string * float) list

type hist_summary = {
  h_count : int;
  h_total : float;
  h_mean : float;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
  h_max : float;
}

val hist_summary : t -> layer:string -> name:string -> key:string -> hist_summary option

(** {1 Snapshots} *)

type value =
  | Counter of float
  | Gauge of float
  | Histogram of hist_summary

type sample = { s_layer : string; s_name : string; s_key : string; s_value : value }

(** Deterministic snapshot: sorted by (layer, name, key). *)
val snapshot : t -> sample list

(** [prefix_keys p samples] prepends [p] to every sample's key — used to
    merge the snapshots of several single-cell testbeds into one report. *)
val prefix_keys : string -> sample list -> sample list

(** Deterministic plain-text rendering of {!snapshot} (tests, debug). *)
val dump : t -> string

(** {1 Trace ring} *)

type span = { sp_at : float; sp_layer : string; sp_name : string; sp_dur : float }

val tracing : t -> bool
val set_tracing : t -> bool -> unit

(** [span t ~at ~layer ~name ~dur] records a span event; no-op unless
    tracing is enabled. *)
val span : t -> at:float -> layer:string -> name:string -> dur:float -> unit

(** Recorded spans, oldest first (at most the ring capacity). *)
val spans : t -> span list

(** Spans lost to ring overwrite. *)
val dropped_spans : t -> int

(** {1 Reset} *)

(** Zero every counter/gauge, clear every histogram and the trace ring.
    Handles remain valid (cells are cleared in place). *)
val reset : t -> unit
