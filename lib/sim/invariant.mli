(** Runtime invariant layer: machine-checked conservation laws.

    Every simulation layer states its conservation laws through this
    module (usually via the re-export in [Danaus_check.Check]); the
    global {!mode} decides what a failed condition costs:

    - [Off] (default): a single branch per call site; {!invariant}
      predicates are never evaluated.  Bench runs stay byte-identical.
    - [Record]: violations are counted in the violating engine's
      [Obs] as [check/violations\[<layer>:<what>\]] and appended to a
      global bounded log, and the run continues.
    - [Strict]: as [Record], plus {!Violation} is raised at the point
      of violation ([dune runtest] and the fuzzer run in this mode).

    The mode is process-global; set it once at startup, before any
    simulation domain is spawned. *)

type mode = Off | Record | Strict

type violation = { v_layer : string; v_what : string; v_detail : string }

exception Violation of violation

val set_mode : mode -> unit
val mode : unit -> mode

(** [true] when checking is enabled ([Record] or [Strict]); use to guard
    expensive condition computations at call sites. *)
val on : unit -> bool

val strict : unit -> bool

(** [require ~layer ~what cond] records a violation when [cond] is
    false.  The condition is evaluated by the caller, so keep it to a
    cheap comparison; use {!invariant} for anything that allocates or
    scans.  [obs] attributes the violation counter to an engine;
    [detail] is only forced on violation. *)
val require :
  ?obs:Obs.t -> ?detail:(unit -> string) -> layer:string -> what:string -> bool -> unit

(** [invariant ~layer ~what pred] is {!require} with the condition
    behind a thunk: [pred] is not called at all when the mode is
    [Off]. *)
val invariant :
  ?obs:Obs.t ->
  ?detail:(unit -> string) ->
  layer:string ->
  what:string ->
  (unit -> bool) ->
  unit

(** Argument/state preconditions migrated from bare [assert]s: always
    evaluated regardless of {!mode}, and a failure always raises
    {!Violation} naming the subsystem (instead of [Assert_failure]). *)
val precondition :
  ?detail:(unit -> string) -> layer:string -> what:string -> bool -> unit

(** [fail ~layer ~what detail] unconditionally logs and raises
    {!Violation} — the cold half of a failed {!precondition}.  Hot paths
    write [if bad then fail ...] so the good path evaluates one branch
    and allocates nothing (a {!precondition} call site builds its
    [detail] closure and optional-argument wrappers on every call, even
    when the condition holds). *)
val fail : layer:string -> what:string -> string -> 'a

(** The global bounded violation log (all engines, all domains). *)

val violations : unit -> violation list
val violation_count : unit -> int
val clear_violations : unit -> unit
