(** Deterministic discrete-event simulation engine.

    Simulated activities are written as ordinary OCaml functions
    ("processes") that may call the blocking operations of this module
    ([sleep], [suspend], ...) and of the synchronisation primitives built
    on top of it ({!Mutex_sim}, {!Condition_sim}, ...).  Blocking is
    implemented with OCaml 5 effect handlers, so process code is direct
    style with no monads.

    Events with equal timestamps fire in scheduling order, which makes
    every run fully deterministic. *)

type t

exception Deadlock of string
(** Raised by {!run} when live processes remain but no event is pending. *)

(** [create ()] returns a fresh engine at simulated time 0, owning a
    fresh observability context unless [obs] is supplied. *)
val create : ?obs:Obs.t -> unit -> t

(** Current simulated time, in seconds. *)
val now : t -> float

(** The engine's observability context.  Every component built on this
    engine (hardware, kernel, IPC, clients) emits through it. *)
val obs : t -> Obs.t

(** [schedule t ~delay f] runs the callback [f] (not a process: it must
    not block) [delay] seconds from now.  [delay] defaults to [0.] and
    must be non-negative. *)
val schedule : t -> ?delay:float -> (unit -> unit) -> unit

(** [spawn t ~name f] creates a process running [f], started at the
    current simulated time.  Exceptions escaping [f] abort the whole
    simulation.  [deadline], if given, seeds the process's deadline slot
    (see {!deadline}) with an absolute simulated time; [span_parent]
    seeds the trace slot (see {!trace_parent}) with a span id. *)
val spawn :
  t -> ?name:string -> ?deadline:float -> ?span_parent:int -> (unit -> unit) -> unit

(** Run until no event remains.

    Termination and deadlock: the loop pops events until the heap is
    empty.  If live processes remain at that point — every one of them
    is blocked in [suspend]/[sleep] with nothing left that could wake
    them — {!Deadlock} is raised; the clock stays at the timestamp of
    the last executed event.  An exception escaping a process body
    also aborts [run] (it propagates out of the event loop), leaving
    the remaining queue intact.

    One-shot continuations: each blocking effect captures its
    continuation once and resumes it at most once.  The [wake] function
    handed out by [suspend] is idempotent — the first call schedules
    the resumption at the simulated time of that call, and every later
    call is ignored — so wakers may be invoked from multiple places
    without double-resuming a process. *)
val run : t -> unit

(** [run_until t horizon] runs exactly the events with timestamps
    [<= horizon] and then sets the clock to [horizon].

    Clock semantics at the horizon: events stamped exactly [horizon]
    DO run.  After the call, [now t = horizon] even when the queue ran
    dry earlier (the clock jumps forward to the horizon, never past
    it), and events later than the horizon stay queued for the next
    call.  Unlike {!run}, blocked processes with an empty queue do not
    raise {!Deadlock} here — the experiment drivers poll with repeated
    [run_until] while their stop condition is evaluated outside the
    engine. *)
val run_until : t -> float -> unit

(** Number of processes spawned and not yet terminated. *)
val live_processes : t -> int

(** {1 Event accounting}

    Every event dispatched by {!run} / {!run_until} is counted: once per
    pop, a plain field increment on the hot loop.  Engine totals are
    folded into a process-wide counter when a run loop returns (never
    per event), so the bench harness can derive events/sec across the
    engines an experiment creates, including inside parallel runner
    domains. *)

(** Events this engine has dispatched so far. *)
val events_processed : t -> int

(** Process-wide dispatched-event total across all engines. *)
val global_events : unit -> int

(** Zero the process-wide total (bench harness, between sections). *)
val reset_global_events : unit -> unit

(** {1 Operations available inside a process} *)

(** Sleep for the given amount of simulated seconds ([>= 0.]). *)
val sleep : float -> unit

(** Current simulated time, callable only from within a process. *)
val time : unit -> float

(** The engine driving the calling process. *)
val self_engine : unit -> t

(** Name of the calling process. *)
val self_name : unit -> string

(** [suspend register] blocks the calling process.  [register] is called
    immediately with a [wake] function; storing it somewhere and invoking
    it later (at most once; later calls are ignored) resumes the
    process at the simulated time of the call. *)
val suspend : ((unit -> unit) -> unit) -> unit

(** Spawn a child process from within a process. *)
val fork : ?name:string -> (unit -> unit) -> unit

(** Let every other runnable process scheduled at the current instant run
    before continuing. *)
val yield : unit -> unit

(** {1 Deadlines}

    Every process carries an optional absolute-time deadline in a
    per-process slot.  The slot travels with the work: children created
    with {!fork} inherit the value the parent's slot held at fork time,
    so a deadline stamped at a client entry point reaches per-object
    fan-out processes and retry loops without threading an argument
    through every layer.  Crossing an explicit queue (e.g. the IPC
    transport) requires handing the value over in the queued request —
    the transport does this internally. *)

(** The calling process's current deadline, or [None] when no deadline is
    set.  Safe to call outside a process (returns [None]). *)
val deadline : unit -> float option

(** [with_deadline d f] runs [f] with the process deadline tightened to
    [d]: the effective deadline is the minimum of [d] and the deadline
    already in scope (deadlines only ever tighten), restored on exit.
    [with_deadline None f] leaves any surrounding deadline in place.
    Outside a process this is just [f ()]. *)
val with_deadline : float option -> (unit -> 'a) -> 'a

(** {1 Trace slot}

    Every process carries the id of the innermost open trace span in a
    per-process slot, inherited at {!fork} time exactly like deadlines.
    {!Trace} manages the slot; layers never touch it directly. *)

(** The calling process's trace slot, or [None] outside a process. *)
val trace_slot : unit -> int ref option

(** Current span id in scope (0 = none).  Safe outside a process. *)
val trace_parent : unit -> int
