(* Monomorphic event queue: a min-heap on (time, seq) keys stored as
   parallel arrays (times : float array — flat and unboxed; seqs : int
   array; runs : thunk array).

   Layout and inlining are deliberate: the non-flambda inliner only
   inlines small loop-free bodies, so [push]/[pop_exn] are thin wrappers
   that do the array writes and delegate the sift loops to outlined
   helpers taking no float arguments.  Inlined at the engine's call
   sites, the float key flows from caller to array slot (and back out of
   [min_time]) without ever being boxed — the whole point of replacing
   the polymorphic {!Pheap}, whose closure comparator forced a heap
   record plus a boxed float per event. *)

module type S = sig
  type t

  val create : unit -> t
  val size : t -> int
  val is_empty : t -> bool
  val push : t -> at:float -> seq:int -> (unit -> unit) -> unit
  val min_time : t -> float
  val min_seq : t -> int
  val pop_exn : t -> unit -> unit
  val clear : t -> unit
  val is_heap : t -> bool
end

let nop () = ()

type t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable runs : (unit -> unit) array;
  mutable size : int;
}

let initial_capacity = 256

let create () =
  {
    times = Array.make initial_capacity 0.0;
    seqs = Array.make initial_capacity 0;
    runs = Array.make initial_capacity nop;
    size = 0;
  }

let size q = q.size
let[@inline] is_empty q = q.size = 0
let[@inline] min_time q = q.times.(0)
let[@inline] min_seq q = q.seqs.(0)

let clear q =
  Array.fill q.runs 0 q.size nop;
  q.size <- 0

let grow q =
  let cap = Array.length q.times in
  let cap' = cap * 2 in
  let times = Array.make cap' 0.0
  and seqs = Array.make cap' 0
  and runs = Array.make cap' nop in
  Array.blit q.times 0 times 0 q.size;
  Array.blit q.seqs 0 seqs 0 q.size;
  Array.blit q.runs 0 runs 0 q.size;
  q.times <- times;
  q.seqs <- seqs;
  q.runs <- runs

(* [before ts ss i (at, seq)] without tuples: (time, seq) lexicographic. *)
let sift_up q i0 =
  let ts = q.times and ss = q.seqs and rs = q.runs in
  let at = ts.(i0) and seq = ss.(i0) and run = rs.(i0) in
  let i = ref i0 in
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let p = (!i - 1) / 2 in
    if ts.(p) > at || (ts.(p) = at && ss.(p) > seq) then begin
      ts.(!i) <- ts.(p);
      ss.(!i) <- ss.(p);
      rs.(!i) <- rs.(p);
      i := p
    end
    else stop := true
  done;
  ts.(!i) <- at;
  ss.(!i) <- seq;
  rs.(!i) <- run

let[@inline] push q ~at ~seq run =
  let n = q.size in
  if n = Array.length q.times then grow q;
  q.times.(n) <- at;
  q.seqs.(n) <- seq;
  q.runs.(n) <- run;
  q.size <- n + 1;
  if n > 0 then sift_up q n

(* Sift the (already detached) last element down from the root.  [n] is
   the post-pop size; the element's key/payload sit in slot [n]. *)
let sift_down q n =
  let ts = q.times and ss = q.seqs and rs = q.runs in
  let at = ts.(n) and seq = ss.(n) and run = rs.(n) in
  rs.(n) <- nop;
  let i = ref 0 in
  let stop = ref false in
  while not !stop do
    let l = (2 * !i) + 1 in
    if l >= n then stop := true
    else begin
      let r = l + 1 in
      let c =
        if r < n && (ts.(r) < ts.(l) || (ts.(r) = ts.(l) && ss.(r) < ss.(l)))
        then r
        else l
      in
      if ts.(c) < at || (ts.(c) = at && ss.(c) < seq) then begin
        ts.(!i) <- ts.(c);
        ss.(!i) <- ss.(c);
        rs.(!i) <- rs.(c);
        i := c
      end
      else stop := true
    end
  done;
  ts.(!i) <- at;
  ss.(!i) <- seq;
  rs.(!i) <- run

let[@inline] pop_exn q =
  let n = q.size - 1 in
  if n < 0 then invalid_arg "Event_queue.pop_exn: empty";
  let run = q.runs.(0) in
  q.size <- n;
  (* the displaced last element already sits in slot [n]; the outlined
     sift re-seats it from the root *)
  if n = 0 then q.runs.(0) <- nop else sift_down q n;
  run

let is_heap q =
  let ok = ref true in
  for i = 1 to q.size - 1 do
    let p = (i - 1) / 2 in
    if
      q.times.(p) > q.times.(i)
      || (q.times.(p) = q.times.(i) && q.seqs.(p) > q.seqs.(i))
    then ok := false
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* 4-ary variant: half the depth of the binary heap, one cache line of
   children per level, at the cost of up to three extra comparisons per
   level on the way down.  Kept behind the same signature so the bench
   harness and the differential tests can drive both; the binary heap is
   the engine's queue (DESIGN.md records the measured comparison). *)

module Fourary = struct
  type nonrec t = t

  let create = create
  let size = size
  let is_empty = is_empty
  let min_time = min_time
  let min_seq = min_seq
  let clear = clear

  let sift_up q i0 =
    let ts = q.times and ss = q.seqs and rs = q.runs in
    let at = ts.(i0) and seq = ss.(i0) and run = rs.(i0) in
    let i = ref i0 in
    let stop = ref false in
    while (not !stop) && !i > 0 do
      let p = (!i - 1) / 4 in
      if ts.(p) > at || (ts.(p) = at && ss.(p) > seq) then begin
        ts.(!i) <- ts.(p);
        ss.(!i) <- ss.(p);
        rs.(!i) <- rs.(p);
        i := p
      end
      else stop := true
    done;
    ts.(!i) <- at;
    ss.(!i) <- seq;
    rs.(!i) <- run

  let[@inline] push q ~at ~seq run =
    let n = q.size in
    if n = Array.length q.times then grow q;
    q.times.(n) <- at;
    q.seqs.(n) <- seq;
    q.runs.(n) <- run;
    q.size <- n + 1;
    if n > 0 then sift_up q n

  let sift_down q n =
    let ts = q.times and ss = q.seqs and rs = q.runs in
    let at = ts.(n) and seq = ss.(n) and run = rs.(n) in
    rs.(n) <- nop;
    let i = ref 0 in
    let stop = ref false in
    while not !stop do
      let first = (4 * !i) + 1 in
      if first >= n then stop := true
      else begin
        let last = Stdlib.min (first + 3) (n - 1) in
        let c = ref first in
        for k = first + 1 to last do
          if
            ts.(k) < ts.(!c) || (ts.(k) = ts.(!c) && ss.(k) < ss.(!c))
          then c := k
        done;
        let c = !c in
        if ts.(c) < at || (ts.(c) = at && ss.(c) < seq) then begin
          ts.(!i) <- ts.(c);
          ss.(!i) <- ss.(c);
          rs.(!i) <- rs.(c);
          i := c
        end
        else stop := true
      end
    done;
    ts.(!i) <- at;
    ss.(!i) <- seq;
    rs.(!i) <- run

  let[@inline] pop_exn q =
    let n = q.size - 1 in
    if n < 0 then invalid_arg "Event_queue.Fourary.pop_exn: empty";
    let run = q.runs.(0) in
    q.size <- n;
    if n = 0 then q.runs.(0) <- nop else sift_down q n;
    run

  let is_heap q =
    let ok = ref true in
    for i = 1 to q.size - 1 do
      let p = (i - 1) / 4 in
      if
        q.times.(p) > q.times.(i)
        || (q.times.(p) = q.times.(i) && q.seqs.(p) > q.seqs.(i))
      then ok := false
    done;
    !ok
end
