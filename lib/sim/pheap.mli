(** Growable binary min-heap used as the event queue of the simulation
    engine.  Elements are ordered by a user-supplied total order supplied
    at creation time; ties must be broken by the caller (the engine uses a
    monotonically increasing sequence number) so that extraction order is
    deterministic. *)

type 'a t

(** [create ~cmp] returns an empty heap ordered by [cmp]. *)
val create : cmp:('a -> 'a -> int) -> 'a t

(** Number of elements currently stored. *)
val size : 'a t -> int

val is_empty : 'a t -> bool

(** Insert an element; O(log n). *)
val push : 'a t -> 'a -> unit

(** Smallest element, if any, without removing it. *)
val peek : 'a t -> 'a option

(** Remove and return the smallest element; O(log n). *)
val pop : 'a t -> 'a option

(** Remove every element. *)
val clear : 'a t -> unit

(** [is_heap h] checks the structural invariant: every parent orders at
    or before its children under [cmp].  O(n); used by the invariant
    layer and the unit tests, never on the hot path. *)
val is_heap : 'a t -> bool
