type t = {
  engine : Engine.t;
  sem_name : string option;
  initial : int; (* permits at creation; release balance bound *)
  mutable permits : int;
  waiting : (unit -> unit) Queue.t;
  wait_h : Obs.histogram option; (* only named semaphores record waits *)
}

let create ?name engine ~value =
  Invariant.precondition ~layer:"semaphore" ~what:"create_value"
    ~detail:(fun () -> Printf.sprintf "negative initial value %d" value)
    (value >= 0);
  {
    engine;
    sem_name = name;
    initial = value;
    permits = value;
    waiting = Queue.create ();
    wait_h =
      Option.map
        (fun n ->
          Obs.histogram (Engine.obs engine) ~layer:"sim" ~name:"sem_wait" ~key:n)
        name;
  }

let acquire t =
  if t.permits > 0 then t.permits <- t.permits - 1
  else begin
    let started = Engine.now t.engine in
    Engine.suspend (fun wake -> Queue.add wake t.waiting);
    match t.wait_h with
    | Some h ->
        let now = Engine.now t.engine in
        Obs.observe h (now -. started);
        if Trace.enabled (Engine.obs t.engine) then
          Trace.emit t.engine ~layer:"sim" ~name:"sem"
            ~key:(Option.value ~default:"" t.sem_name)
            ~phase:Queue_wait ~start:started ~dur:(now -. started)
    | None -> ()
  end

let release t =
  (* exceptionless non-allocating hand-off, as in {!Mutex_sim.unlock} *)
  if not (Queue.is_empty t.waiting) then
    (* the permit is handed over directly *)
    (Queue.pop t.waiting) ()
  else begin
    t.permits <- t.permits + 1;
      (* Every use in the tree is a bounded window (disk/net gates, bdi
         and flush windows): more releases than acquires means a path
         double-released its permit.  Guarded: this runs once per
         released permit on the IO fast path. *)
      if Invariant.on () then
        Invariant.require ~obs:(Engine.obs t.engine) ~layer:"semaphore"
          ~what:"release_balance"
          ~detail:(fun () ->
            Printf.sprintf "%s has %d permits, created with %d"
              (Option.value ~default:"<anon>" t.sem_name)
              t.permits t.initial)
          (t.permits <= t.initial)
  end

let try_acquire t =
  if t.permits > 0 then begin
    t.permits <- t.permits - 1;
    true
  end
  else false

let value t = t.permits
let waiters t = Queue.length t.waiting
