type t = {
  engine : Engine.t;
  sem_name : string option;
  initial : int; (* permits at creation; release balance bound *)
  mutable permits : int;
  waiting : (unit -> unit) Queue.t;
  wait_h : Obs.histogram option; (* only named semaphores record waits *)
}

let create ?name engine ~value =
  Invariant.precondition ~layer:"semaphore" ~what:"create_value"
    ~detail:(fun () -> Printf.sprintf "negative initial value %d" value)
    (value >= 0);
  {
    engine;
    sem_name = name;
    initial = value;
    permits = value;
    waiting = Queue.create ();
    wait_h =
      Option.map
        (fun n ->
          Obs.histogram (Engine.obs engine) ~layer:"sim" ~name:"sem_wait" ~key:n)
        name;
  }

let acquire t =
  if t.permits > 0 then t.permits <- t.permits - 1
  else begin
    let started = Engine.now t.engine in
    Engine.suspend (fun wake -> Queue.add wake t.waiting);
    match t.wait_h with
    | Some h ->
        let now = Engine.now t.engine in
        Obs.observe h (now -. started);
        Trace.emit t.engine ~layer:"sim" ~name:"sem"
          ~key:(Option.value ~default:"" t.sem_name)
          ~phase:Queue_wait ~start:started ~dur:(now -. started)
    | None -> ()
  end

let release t =
  match Queue.take_opt t.waiting with
  | Some wake -> wake () (* the permit is handed over directly *)
  | None ->
      t.permits <- t.permits + 1;
      (* Every use in the tree is a bounded window (disk/net gates, bdi
         and flush windows): more releases than acquires means a path
         double-released its permit. *)
      Invariant.require ~obs:(Engine.obs t.engine) ~layer:"semaphore"
        ~what:"release_balance"
        ~detail:(fun () ->
          Printf.sprintf "%s has %d permits, created with %d"
            (Option.value ~default:"<anon>" t.sem_name)
            t.permits t.initial)
        (t.permits <= t.initial)

let try_acquire t =
  if t.permits > 0 then begin
    t.permits <- t.permits - 1;
    true
  end
  else false

let value t = t.permits
let waiters t = Queue.length t.waiting
