(** Simulated counting semaphore with FIFO wakeup. *)

type t

(** [create engine ~value] returns a semaphore with [value >= 0]
    permits.  When [name] is given, blocked-acquire wait times are
    recorded into the engine's {!Obs} context as the ["sim"/"sem_wait"]
    histogram keyed by [name] (device gates, in-flight I/O windows). *)
val create : ?name:string -> Engine.t -> value:int -> t

(** Take one permit, blocking while none is available. *)
val acquire : t -> unit

(** Return one permit, waking the longest waiter if any. *)
val release : t -> unit

(** Take a permit without blocking; [false] when none is available. *)
val try_acquire : t -> bool

(** Currently available permits. *)
val value : t -> int

val waiters : t -> int
