(** Causal per-op tracing over {!Obs}'s span store.

    A span is opened with {!enter} (or scoped with {!with_span}); while
    it is open, its id sits in the calling process's trace slot, so
    nested spans and forked children parent under it automatically.
    Crossing an explicit queue (IPC transport, FUSE channel) hands the
    parent id over inside the queued request and restores it with
    {!with_parent} on the service side.

    Every entry point is zero-cost when tracing is disabled. *)

type phase = Obs.phase = Queue_wait | Lock_wait | Service | Network | Backoff
type span = Obs.cspan

(** Stable lowercase name of a phase ("queue_wait", ...). *)
val phase_name : phase -> string

val enabled : Obs.t -> bool

(** Innermost open span id of the calling process (0 = none). *)
val current : unit -> int

(** Open a span parented under the current one; returns its id (0 when
    tracing is off or the store is full) and makes it current. *)
val enter :
  Engine.t -> layer:string -> name:string -> key:string -> phase:phase -> int

(** Close a span and restore its parent as current.  No-op for id 0. *)
val exit : Engine.t -> int -> unit

(** [with_span e ~layer ~name ~key ~phase f] scopes [f] in a span,
    closed even if [f] raises. *)
val with_span :
  Engine.t ->
  layer:string ->
  name:string ->
  key:string ->
  phase:phase ->
  (unit -> 'a) ->
  'a

(** [with_parent p f] runs [f] with the trace slot set to [p] (a span id
    carried across a queue), restoring the previous value afterwards. *)
val with_parent : int -> (unit -> 'a) -> 'a

(** Record an already-measured span (e.g. a wait that was timed anyway)
    parented under the current span.  No-op when tracing is off. *)
val emit :
  Engine.t ->
  layer:string ->
  name:string ->
  key:string ->
  phase:phase ->
  start:float ->
  dur:float ->
  unit

(** [merge [(prefix, spans); ...]] combines span sets from several
    engines: ids are offset to stay unique and every key gets its set's
    [prefix] (matching {!Obs.prefix_keys} on the metric side). *)
val merge : (string * span list) list -> span list

(** {1 Latency attribution} *)

type attr_row = {
  ar_layer : string;
  ar_phase : phase;
  ar_total : float;  (** summed exclusive time across ops *)
  ar_mean : float;  (** mean exclusive time per op (0-padded) *)
  ar_p99 : float;
  ar_share : float;  (** fraction of summed end-to-end time *)
}

type attribution = {
  at_rows : attr_row list;  (** sorted by total, descending *)
  at_ops : int;
  at_e2e_total : float;
  at_e2e_mean : float;
  at_e2e_p99 : float;
  at_max_residual : float;
      (** worst per-op |e2e - sum of buckets|; ~0 up to float error *)
}

(** [attribute spans] decomposes every root op (a span in [roots_layer],
    default ["core"], with no parent in the set) into exclusive
    (layer, phase) buckets: each instant of the op is charged to the
    deepest active descendant span, uncovered time to the root itself,
    so per-op buckets sum to end-to-end latency by construction. *)
val attribute : ?roots_layer:string -> span list -> attribution
