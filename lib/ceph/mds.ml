open Danaus_sim

type t = {
  engine : Engine.t;
  ns : Namespace.t;
  gate : Semaphore_sim.t;
  op_cost : float;
  mutable served : int;
}

let create engine ~concurrency ~op_cost =
  Danaus_check.Check.precondition ~layer:"mds" ~what:"create_args"
    ~detail:(fun () ->
      Printf.sprintf "concurrency %d, op_cost %g" concurrency op_cost)
    (concurrency >= 1 && op_cost >= 0.0);
  {
    engine;
    ns = Namespace.create ();
    gate = Semaphore_sim.create engine ~value:concurrency;
    op_cost;
    served = 0;
  }

let perform t f =
  Semaphore_sim.acquire t.gate;
  Engine.sleep t.op_cost;
  let r = f t.ns in
  t.served <- t.served + 1;
  Semaphore_sim.release t.gate;
  r

let namespace t = t.ns
let ops t = t.served
