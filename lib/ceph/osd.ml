open Danaus_sim
open Danaus_hw

type t = {
  engine : Engine.t;
  osd_name : string;
  data : Disk.t;
  journal : Disk.t;
  gate : Semaphore_sim.t;
  op_cost : float;
  cpu_per_byte : float;
  objects : (string, int) Hashtbl.t;
  mutable written : float;
  mutable read_bytes : float;
  mutable up : bool;
}

let create engine ~name ~data ~journal ~concurrency ~op_cost ~cpu_per_byte =
  Danaus_check.Check.precondition ~layer:"osd" ~what:"create_args"
    ~detail:(fun () ->
      Printf.sprintf "%s: concurrency %d, op_cost %g, cpu_per_byte %g" name
        concurrency op_cost cpu_per_byte)
    (concurrency >= 1 && op_cost >= 0.0 && cpu_per_byte >= 0.0);
  {
    engine;
    osd_name = name;
    data;
    journal;
    gate = Semaphore_sim.create engine ~value:concurrency;
    op_cost;
    cpu_per_byte;
    objects = Hashtbl.create 4096;
    written = 0.0;
    read_bytes = 0.0;
    up = true;
  }

let name t = t.osd_name
let is_up t = t.up
let set_up t up = t.up <- up

let with_gate t f =
  Semaphore_sim.acquire t.gate;
  match f () with
  | v ->
      Semaphore_sim.release t.gate;
      v
  | exception exn ->
      Semaphore_sim.release t.gate;
      raise exn

let cpu_time t bytes = t.op_cost +. (float_of_int bytes *. t.cpu_per_byte)

let write t ~obj ~bytes =
  Danaus_check.Check.precondition ~layer:"osd" ~what:"write_bytes"
    ~detail:(fun () -> Printf.sprintf "%s: %s: %d bytes" t.osd_name obj bytes)
    (bytes >= 0);
  with_gate t (fun () ->
      Engine.sleep (cpu_time t bytes);
      Disk.write t.journal ~bytes ~random:false;
      Disk.write t.data ~bytes ~random:false;
      let prev = Option.value ~default:0 (Hashtbl.find_opt t.objects obj) in
      Hashtbl.replace t.objects obj (Stdlib.max prev bytes);
      t.written <- t.written +. float_of_int bytes)

let read t ~obj ~bytes =
  Danaus_check.Check.precondition ~layer:"osd" ~what:"read_bytes"
    ~detail:(fun () -> Printf.sprintf "%s: %s: %d bytes" t.osd_name obj bytes)
    (bytes >= 0);
  ignore obj;
  with_gate t (fun () ->
      Engine.sleep (cpu_time t bytes);
      Disk.read t.data ~bytes ~random:false;
      t.read_bytes <- t.read_bytes +. float_of_int bytes)

let delete t ~obj = Hashtbl.remove t.objects obj
let has_object t ~obj = Hashtbl.mem t.objects obj

let iter_objects t f =
  let objs =
    List.sort compare (Hashtbl.fold (fun o b acc -> (o, b) :: acc) t.objects [])
  in
  List.iter (fun (o, b) -> f o b) objs

let wipe t =
  Hashtbl.reset t.objects;
  t.written <- 0.0;
  t.read_bytes <- 0.0

let object_size t ~obj =
  Option.value ~default:0 (Hashtbl.find_opt t.objects obj)

let objects_stored t = Hashtbl.length t.objects
let bytes_written t = t.written
let bytes_read t = t.read_bytes
