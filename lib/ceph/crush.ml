(* Rendezvous hashing with a 64-bit FNV-1a base hash. *)

let fnv1a64 s =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

(* SplitMix64 finaliser: FNV alone leaves consecutive "#<i>" suffixes
   correlated (the last step is a multiply by a constant), which skews
   rendezvous ordering. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let weight name osd =
  let mixed = mix64 (fnv1a64 (Printf.sprintf "%s#%d" name osd)) in
  (* fold to a non-negative int for easy comparison *)
  Int64.to_int (Int64.logand mixed 0x3FFFFFFFFFFFFFFFL)

let place ~osds ~replicas name =
  if replicas < 1 || replicas > osds then invalid_arg "Crush.place: bad replicas";
  let scored = List.init osds (fun i -> (weight name i, i)) in
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare b a) scored in
  List.filteri (fun i _ -> i < replicas) sorted |> List.map snd

let primary ~osds name =
  match place ~osds ~replicas:1 name with
  | [ i ] -> i
  | l ->
      raise
        (Danaus_check.Check.Violation
           {
             v_layer = "crush";
             v_what = "primary_single";
             v_detail =
               Printf.sprintf "place ~replicas:1 returned %d osds for %s"
                 (List.length l) name;
           })
