(* Nearly every path reaching this module is already canonical (leading
   '/', no empty components, no trailing '/'): they were produced by
   [join] or [normalize] upstream.  Checking that with one scan returns
   the argument itself — the split/filter/concat rebuild would allocate
   a list cell per component on every lookup of every path component. *)
let canonical p =
  let n = String.length p in
  n > 0
  && p.[0] = '/'
  && (n = 1 || p.[n - 1] <> '/')
  &&
  let ok = ref true in
  for i = 0 to n - 2 do
    if p.[i] = '/' && p.[i + 1] = '/' then ok := false
  done;
  !ok

let normalize p =
  if canonical p then p
  else
    let parts = String.split_on_char '/' p |> List.filter (fun s -> s <> "") in
    "/" ^ String.concat "/" parts

let parent p =
  let p = normalize p in
  match String.rindex_opt p '/' with
  | None | Some 0 -> "/"
  | Some i -> String.sub p 0 i

let basename p =
  let p = normalize p in
  if p = "/" then ""
  else
    match String.rindex_opt p '/' with
    | None -> p
    | Some i -> String.sub p (i + 1) (String.length p - i - 1)

let join dir name =
  let dir = normalize dir in
  if dir = "/" then "/" ^ name else dir ^ "/" ^ name

let is_root p = normalize p = "/"
