open Danaus_sim
open Danaus_hw

(** Object storage device: one storage server of the cluster.

    Serves object reads/writes with bounded concurrency; a write hits the
    journal and then the backing store (FileStore-style), a read only the
    backing store.  Devices are the paper's ramdisk-backed OSDs. *)

type t

(** [create engine ~name ~data ~journal ~concurrency ~op_cost
    ~cpu_per_byte] builds an OSD.  [op_cost] is fixed CPU per request;
    [cpu_per_byte] covers checksum/dispatch per payload byte. *)
val create :
  Engine.t ->
  name:string ->
  data:Disk.t ->
  journal:Disk.t ->
  concurrency:int ->
  op_cost:float ->
  cpu_per_byte:float ->
  t

val name : t -> string

(** Availability: a down OSD is skipped by the cluster's data path
    (replica failover); initially up. *)
val is_up : t -> bool

val set_up : t -> bool -> unit

(** Service a write of [bytes] to object [obj] (blocking). *)
val write : t -> obj:string -> bytes:int -> unit

(** Service a read (blocking). *)
val read : t -> obj:string -> bytes:int -> unit

(** Remove an object (namespace-only bookkeeping). *)
val delete : t -> obj:string -> unit

(** Highest byte written to the object so far (0 if absent). *)
val object_size : t -> obj:string -> int

val has_object : t -> obj:string -> bool

(** Visit every stored object with its size, in sorted name order (so
    iteration is deterministic regardless of hash-table history). *)
val iter_objects : t -> (string -> int -> unit) -> unit

(** Drop all objects and IO accounting: the device was swapped for a
    blank replacement.  Availability is untouched. *)
val wipe : t -> unit

val objects_stored : t -> int
val bytes_written : t -> float
val bytes_read : t -> float
