open Danaus_sim
open Danaus_hw

(** The assembled storage cluster: OSDs + MDS behind the network.

    Every operation is called from a client-host process and blocks for
    the full round trip: client-host TX link, server-host RX link, OSD or
    MDS service, and the reply path.  Data is striped over
    {!Striper.default_object_size} objects and placed by {!Crush}. *)

type t

(** [create engine ~net ~client_node ~server_node ~osds ~mds ~replicas
    ~object_size] wires the cluster.  [client_node]/[server_node] are the
    two machines' network attachments (the 20 Gbps bonded links of the
    paper's testbed). *)
val create :
  Engine.t ->
  net:Net.t ->
  client_node:Net.node ->
  server_node:Net.node ->
  osds:Osd.t array ->
  mds:Mds.t ->
  replicas:int ->
  object_size:int ->
  t

(** [for_host t ~client_node] is the same cluster as seen from another
    client machine: identical OSDs, MDS and namespace, but data and
    metadata traffic uses [client_node]'s network link.  This is what
    makes cross-host data sharing — and container migration — work over
    the shared filesystem (§5, §9). *)
val for_host : t -> client_node:Net.node -> t

val osds : t -> Osd.t array
val mds : t -> Mds.t
val object_size : t -> int

(** {1 Data path} *)

(** Data-path failure: every replica of the object is unavailable in the
    client's view, or the op was addressed to a dead OSD under a stale
    osdmap and timed out.  Clients retry with backoff ({!Retry} in
    [lib/client]).  [Deadline_exceeded] means the caller's op deadline
    (see {!Danaus_sim.Engine.deadline}) had already passed when the
    object op started: the op fails fast without touching the network,
    counted under [ceph/deadline_rejects]. *)
type io_error = No_replica of string | Deadline_exceeded

val io_error_to_string : io_error -> string

(** Write [len] bytes of inode [ino] starting at [off]: striped into
    objects, each sent over the network and committed on [replicas]
    OSDs. *)
val write_range : t -> ino:int -> off:int -> len:int -> (unit, io_error) result

(** Read [len] bytes of inode [ino] from the primary OSDs. *)
val read_range : t -> ino:int -> off:int -> len:int -> (unit, io_error) result

(** {1 Monitor (fault tolerance)}

    Without a monitor the data path consults the OSDs' instant [is_up]
    state.  [enable_monitor] switches to osdmap semantics: a heartbeat
    process observes the OSDs every [heartbeat] seconds and marks one
    down after [grace] seconds of silence; until then, ops addressed to
    the dead OSD pay [op_timeout] and fail (clients retry).  Writes that
    skip a down replica record the object as degraded; when the OSD
    returns, a re-sync process replays the degraded objects from the
    surviving replicas (real disk/CPU traffic) before the map shows the
    OSD up again.  Emits [ceph/osd_mark_down], [ceph/failed_ops],
    [ceph/degraded_objects], [ceph/resync_bytes] counters and a
    [ceph/recovery_time] gauge per OSD.

    [?recovery] replaces the instant re-sync with the paced recovery
    engine of {!Recovery}: per-object [clean]/[degraded]/[backfilling]
    state, a peering pass after mark-up or replacement, chunked paced
    transfers charging OSD disk and server-link time, degraded-mode
    reads that redirect to a surviving clean replica instead of timing
    out, writes to in-repair objects logged for re-sync, and full
    backfill of a replaced OSD.  Adds [ceph/degraded_now] and
    [ceph/recovery_active] gauges plus [ceph/recovered_bytes],
    [ceph/recovery_read_bytes], [ceph/degraded_reads],
    [ceph/backfill_objects] and [ceph/unrecoverable_objects] counters.
    Without [?recovery] the legacy semantics are preserved exactly. *)
val enable_monitor :
  ?heartbeat:float ->
  ?grace:float ->
  ?op_timeout:float ->
  ?recovery:Recovery.config ->
  t ->
  unit

(** Stop the heartbeat process and revert to instant [is_up] checks. *)
val disable_monitor : t -> unit

(** The client-visible availability of OSD [i] (the osdmap when a
    monitor runs, the instant state otherwise). *)
val monitor_sees_up : t -> int -> bool

(** {1 Recovery (self-healing)} *)

(** [replace_osd t i] swaps OSD [i] for a blank, healthy replacement:
    stored objects are lost and the monitor schedules a peering pass
    that queues everything CRUSH places on [i] for backfill. *)
val replace_osd : t -> int -> unit

(** [force_mark_up t i] forces the osdmap to show an actually-up OSD
    without waiting for the heartbeat (running peering first if the OSD
    was replaced), so degraded serving starts immediately. *)
val force_mark_up : t -> int -> unit

(** (object, OSD) pairs still awaiting repair; 0 once recovery has
    drained (and always 0 without a monitor). *)
val degraded_now : t -> int

(** Whether a re-sync/recovery pass for OSD [i] is in flight. *)
val recovering : t -> int -> bool

(** Replica state of [obj] on OSD [i] as the monitor sees it. *)
val object_state : t -> int -> obj:string -> Recovery.obj_state

(** Live width of [obj]'s acting set: replicas actually up with a clean
    copy.  Converges back to [replicas] when recovery completes. *)
val acting_width : t -> obj:string -> int

(** Drop all objects of inode [ino] up to [size] bytes. *)
val delete_range : t -> ino:int -> size:int -> unit

(** {1 Metadata path (one network round trip + MDS service each)} *)

val lookup : t -> string -> Namespace.attr option
val create_file : t -> string -> (Namespace.attr, Namespace.error) result
val mkdir_p : t -> string -> (Namespace.attr, Namespace.error) result
val readdir : t -> string -> (string list, Namespace.error) result
val unlink : t -> string -> (unit, Namespace.error) result
val rename : t -> src:string -> dst:string -> (unit, Namespace.error) result
val set_size : t -> string -> int -> (unit, Namespace.error) result

(** Cost-free namespace access for dataset setup (no simulated time). *)
val namespace : t -> Namespace.t
