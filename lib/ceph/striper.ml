let default_object_size = 4 * 1024 * 1024

(* Object names recur on every IO touching the same stripe unit, so the
   rendered string is interned per domain (domain-local because the
   parallel experiment runner computes placements concurrently; inode
   numbers and stripe indexes fit comfortably in the packed key). *)
let names_key : (int, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let name ~ino ~index =
  let names = Domain.DLS.get names_key in
  let key = (ino lsl 31) lor index in
  match Hashtbl.find names key with
  | s -> s
  | exception Not_found ->
      let s = Printf.sprintf "%x.%08x" ino index in
      Hashtbl.add names key s;
      s

let objects ~object_size ~ino ~off ~len =
  Danaus_check.Check.precondition ~layer:"striper" ~what:"objects_args"
    ~detail:(fun () ->
      Printf.sprintf "object_size %d, off %d (ino %x)" object_size off ino)
    (object_size > 0 && off >= 0);
  if len <= 0 then []
  else begin
    let first = off / object_size and last = (off + len - 1) / object_size in
    List.init
      (last - first + 1)
      (fun i ->
        let index = first + i in
        let obj_start = index * object_size in
        let obj_end = obj_start + object_size in
        let lo = Stdlib.max off obj_start and hi = Stdlib.min (off + len) obj_end in
        (name ~ino ~index, hi - lo))
  end

let object_of ~object_size ~ino ~off = name ~ino ~index:(off / object_size)
