let default_object_size = 4 * 1024 * 1024

let name ~ino ~index = Printf.sprintf "%x.%08x" ino index

let objects ~object_size ~ino ~off ~len =
  Danaus_check.Check.precondition ~layer:"striper" ~what:"objects_args"
    ~detail:(fun () ->
      Printf.sprintf "object_size %d, off %d (ino %x)" object_size off ino)
    (object_size > 0 && off >= 0);
  if len <= 0 then []
  else begin
    let first = off / object_size and last = (off + len - 1) / object_size in
    List.init
      (last - first + 1)
      (fun i ->
        let index = first + i in
        let obj_start = index * object_size in
        let obj_end = obj_start + object_size in
        let lo = Stdlib.max off obj_start and hi = Stdlib.min (off + len) obj_end in
        (name ~ino ~index, hi - lo))
  end

let object_of ~object_size ~ino ~off = name ~ino ~index:(off / object_size)
