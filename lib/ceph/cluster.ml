open Danaus_sim
open Danaus_hw

type io_error = No_replica of string | Deadline_exceeded

let io_error_to_string = function
  | No_replica obj -> "no replica of " ^ obj ^ " available"
  | Deadline_exceeded -> "op deadline exceeded"

(* Monitor/osdmap state, shared by every host's view of the cluster.
   [map_up] is the osdmap the clients act on; it lags reality by the
   heartbeat + grace window (stale-map semantics: ops addressed to a
   crashed-but-not-yet-marked-down OSD time out and fail, and the client
   retries until the map catches up). *)
type monitor = {
  mutable active : bool;
  heartbeat : float;
  grace : float;
  op_timeout : float;
  (* [recovery = Some cfg] switches from the legacy instant re-sync to
     the paced recovery engine (peering, degraded reads, backfill).
     [None] keeps the original semantics bit-for-bit. *)
  recovery : Recovery.config option;
  pacer : Recovery.pacer option;
  map_up : bool array;
  last_seen : float array;
  down_at : float array;
  resyncing : bool array;
  (* an OSD that was swapped for a blank device awaits a peering pass
     that enumerates everything CRUSH places on it *)
  replaced : bool array;
  degraded : (string, int) Hashtbl.t array;
  backfilling : (string, int) Hashtbl.t array;
  mutable degraded_live : int;
  mutable draining : int;
  markdown_c : Obs.counter;
  failed_c : Obs.counter;
  degraded_c : Obs.counter;
  resync_c : Obs.counter;
  recovery_g : Obs.gauge array;
  degraded_now_g : Obs.gauge;
  recovery_active_g : Obs.gauge;
  recovered_c : Obs.counter;
  recovery_read_c : Obs.counter;
  degraded_reads_c : Obs.counter;
  backfill_c : Obs.counter;
  unrecoverable_c : Obs.counter;
}

type t = {
  engine : Engine.t;
  net : Net.t;
  client_node : Net.node;
  server_node : Net.node;
  cluster_osds : Osd.t array;
  cluster_mds : Mds.t;
  replicas : int;
  obj_size : int;
  monitor : monitor option ref;
  (* obj -> CRUSH placement.  Rendezvous hashing is pure in the object
     name, so the first computation (FNV per OSD + sort) is definitive;
     the read/write hot path then costs one table probe instead of six
     string formats and a sort per IO. *)
  placements : (string, int list) Hashtbl.t;
}

let message_bytes = 256

let create engine ~net ~client_node ~server_node ~osds ~mds ~replicas
    ~object_size =
  Danaus_check.Check.precondition ~layer:"ceph" ~what:"create_args"
    ~detail:(fun () ->
      Printf.sprintf "%d osds, %d replicas, object_size %d" (Array.length osds)
        replicas object_size)
    (Array.length osds >= replicas && replicas >= 1 && object_size > 0);
  {
    engine;
    net;
    client_node;
    server_node;
    cluster_osds = osds;
    cluster_mds = mds;
    replicas;
    obj_size = object_size;
    monitor = ref None;
    placements = Hashtbl.create 4096;
  }

(* A second client machine's view of the same cluster: shares the OSDs,
   MDS and namespace, but enters the network through its own link. *)
let for_host t ~client_node = { t with client_node }

let osds t = t.cluster_osds
let mds t = t.cluster_mds
let object_size t = t.obj_size

let to_server t ~bytes =
  Net.transfer t.net ~src:t.client_node ~dst:t.server_node ~bytes

let to_client t ~bytes =
  Net.transfer t.net ~src:t.server_node ~dst:t.client_node ~bytes

let placement t obj =
  match Hashtbl.find t.placements obj with
  | place -> place
  | exception Not_found ->
  let place =
    Crush.place ~osds:(Array.length t.cluster_osds) ~replicas:t.replicas obj
  in
  (* CRUSH's contract: exactly [replicas] placements, all distinct, all
     addressing real OSDs — a violation here silently corrupts the
     redundancy the fault experiments measure. *)
  Danaus_check.Check.invariant ~obs:(Engine.obs t.engine) ~layer:"ceph"
    ~what:"placement_legal"
    ~detail:(fun () ->
      Printf.sprintf "%s -> [%s] with %d osds, %d replicas" obj
        (String.concat ";" (List.map string_of_int place))
        (Array.length t.cluster_osds) t.replicas)
    (fun () ->
      List.length place = t.replicas
      && List.for_all (fun i -> i >= 0 && i < Array.length t.cluster_osds) place
      && List.length (List.sort_uniq Int.compare place) = List.length place);
  Hashtbl.add t.placements obj place;
  place

(* The client's view of an OSD's availability: the osdmap when a monitor
   runs (stale by up to heartbeat + grace), instant truth otherwise. *)
let view_up t i =
  match !(t.monitor) with
  | None -> Osd.is_up t.cluster_osds.(i)
  | Some m -> m.map_up.(i)

(* Live count of (object, OSD) pairs still awaiting repair, mirrored in
   the [ceph/degraded_now] gauge; the [ceph/degraded_objects] counter
   stays monotonic as before. *)
let note_degraded m delta =
  m.degraded_live <- m.degraded_live + delta;
  Obs.set m.degraded_now_g (float_of_int m.degraded_live)

(* Remember that [obj] missed a write on OSD [i]; replayed by re-sync
   when the OSD comes back. *)
let record_degraded m i ~obj ~bytes =
  (match Hashtbl.find_opt m.degraded.(i) obj with
  | Some prev -> Hashtbl.replace m.degraded.(i) obj (Stdlib.max prev bytes)
  | None ->
      Hashtbl.replace m.degraded.(i) obj bytes;
      note_degraded m 1);
  Obs.incr m.degraded_c

(* A write missed by OSD [i] lands in whichever repair queue already
   tracks the object, so an object is never in both tables at once. *)
let log_missed_write m i ~obj ~bytes =
  match Hashtbl.find_opt m.backfilling.(i) obj with
  | Some prev ->
      Hashtbl.replace m.backfilling.(i) obj (Stdlib.max prev bytes);
      Obs.incr m.degraded_c
  | None -> record_degraded m i ~obj ~bytes

(* [obj]'s copy on OSD [i] is not serviceable: it missed writes while
   the OSD was down, or awaits backfill after a replacement. *)
let dirty_on m i ~obj =
  Hashtbl.mem m.degraded.(i) obj || Hashtbl.mem m.backfilling.(i) obj

let recovery_monitor t =
  match !(t.monitor) with
  | Some ({ recovery = Some _; _ } as m) -> Some m
  | _ -> None

let fail_op t =
  match !(t.monitor) with
  | None -> ()
  | Some m -> Obs.incr m.failed_c

(* An op whose caller deadline has already passed fails fast before
   paying the network round trip.  The deadline reaches this layer
   through the per-process slot ({!Engine.deadline}), inherited across
   the striper's per-object [Engine.fork] fan-out. *)
let past_deadline t =
  match Engine.deadline () with
  | Some dl -> Engine.now t.engine >= dl
  | None -> false

let deadline_reject t =
  Obs.incr
    (Obs.counter (Engine.obs t.engine) ~layer:"ceph" ~name:"deadline_rejects"
       ~key:"cluster");
  Error Deadline_exceeded

let write_object t ~obj ~bytes =
  if past_deadline t then deadline_reject t
  else begin
  let place = placement t obj in
  (match !(t.monitor) with
  | None -> ()
  | Some m ->
      (* replicas the map already knows are down miss this write *)
      List.iter
        (fun i -> if not m.map_up.(i) then log_missed_write m i ~obj ~bytes)
        place);
  match List.filter (fun i -> view_up t i) place with
  | [] ->
      fail_op t;
      Error (No_replica obj)
  | primary :: _ as targets -> (
      to_server t ~bytes:(bytes + message_bytes);
      match !(t.monitor) with
      | Some m when not (Osd.is_up t.cluster_osds.(primary)) ->
          (* stale map: the op is addressed to a dead primary and times
             out; the client retries until mark-down updates the map *)
          let start = Engine.now t.engine in
          Engine.sleep m.op_timeout;
          Trace.emit t.engine ~layer:"ceph" ~name:"op_timeout" ~key:obj
            ~phase:Backoff ~start ~dur:m.op_timeout;
          Obs.incr m.failed_c;
          Error (No_replica obj)
      | monitor ->
          let wg = Waitgroup.create t.engine in
          let committed = ref 0 in
          List.iter
            (fun i ->
              (* under paced recovery a replica whose copy is still being
                 repaired skips the write: the commit would race the
                 backfill, so it is logged for re-sync instead *)
              let repairing =
                match monitor with
                | Some ({ recovery = Some _; _ } as m) -> dirty_on m i ~obj
                | _ -> false
              in
              if Osd.is_up t.cluster_osds.(i) && not repairing then begin
                incr committed;
                Waitgroup.add wg;
                Engine.fork (fun () ->
                    Osd.write t.cluster_osds.(i) ~obj ~bytes;
                    Waitgroup.finish wg)
              end
              else
                (* non-primary replica died under a stale map (or is mid
                   repair): commit on the live replicas, leave the object
                   degraded *)
                Option.iter
                  (fun m -> log_missed_write m i ~obj ~bytes)
                  monitor)
            targets;
          Waitgroup.wait wg;
          if !committed = 0 then begin
            (* every map-up replica is mid-repair: nothing durable took
               the write (only reachable in recovery mode) *)
            fail_op t;
            Error (No_replica obj)
          end
          else begin
            to_client t ~bytes:message_bytes;
            Ok ()
          end)
  end

let read_object t ~obj ~bytes =
  if past_deadline t then deadline_reject t
  else
  let place = placement t obj in
  (* primary first; fail over to the next up replica in CRUSH order *)
  let legacy = List.find_opt (fun i -> view_up t i) place in
  let choice =
    match recovery_monitor t with
    | None -> legacy
    | Some m -> (
        (* degraded-mode read: prefer a replica that is both actually
           serving and holds a clean copy over the osdmap's stale
           primary choice, instead of timing out into a retry *)
        match
          List.find_opt
            (fun i ->
              view_up t i
              && Osd.is_up t.cluster_osds.(i)
              && not (dirty_on m i ~obj))
            place
        with
        | Some i ->
            if legacy <> Some i then Obs.incr m.degraded_reads_c;
            Some i
        | None -> legacy)
  in
  match choice with
  | None ->
      fail_op t;
      Error (No_replica obj)
  | Some target -> (
      to_server t ~bytes:message_bytes;
      match !(t.monitor) with
      | Some m when not (Osd.is_up t.cluster_osds.(target)) ->
          let start = Engine.now t.engine in
          Engine.sleep m.op_timeout;
          Trace.emit t.engine ~layer:"ceph" ~name:"op_timeout" ~key:obj
            ~phase:Backoff ~start ~dur:m.op_timeout;
          Obs.incr m.failed_c;
          Error (No_replica obj)
      | _ ->
          Osd.read t.cluster_osds.(target) ~obj ~bytes;
          to_client t ~bytes:(bytes + message_bytes);
          Ok ())

let over_objects t ~ino ~off ~len ~io =
  let parts = Striper.objects ~object_size:t.obj_size ~ino ~off ~len in
  match parts with
  | [] -> Ok ()
  | [ (obj, bytes) ] -> io ~obj ~bytes
  | parts ->
      let first_err = ref None in
      let wg = Waitgroup.create t.engine in
      List.iter
        (fun (obj, bytes) ->
          Waitgroup.add wg;
          Engine.fork (fun () ->
              (match io ~obj ~bytes with
              | Ok () -> ()
              | Error e -> if !first_err = None then first_err := Some e);
              Waitgroup.finish wg))
        parts;
      Waitgroup.wait wg;
      (match !first_err with None -> Ok () | Some e -> Error e)

let write_range t ~ino ~off ~len =
  over_objects t ~ino ~off ~len ~io:(fun ~obj ~bytes -> write_object t ~obj ~bytes)

let read_range t ~ino ~off ~len =
  over_objects t ~ino ~off ~len ~io:(fun ~obj ~bytes -> read_object t ~obj ~bytes)

(* ------------------------------------------------------------------ *)
(* Monitor: heartbeat, mark-down, and replica re-sync on recovery. *)

(* Bring the recovered OSD [i] up to date: pull each degraded object
   from a surviving replica (real disk + CPU traffic on both ends) and
   push it onto [i]; only then does the map show the OSD up again. *)
let resync t m i =
  let objs =
    Hashtbl.fold (fun obj bytes acc -> (obj, bytes) :: acc) m.degraded.(i) []
    |> List.sort compare
  in
  List.iter
    (fun (obj, bytes) ->
      let src =
        List.find_opt
          (fun j -> j <> i && m.map_up.(j) && Osd.is_up t.cluster_osds.(j))
          (placement t obj)
      in
      match src with
      | None -> () (* no surviving replica: nothing to recover from *)
      | Some j ->
          Osd.read t.cluster_osds.(j) ~obj ~bytes;
          Osd.write t.cluster_osds.(i) ~obj ~bytes;
          Obs.add m.resync_c (float_of_int bytes))
    objs;
  note_degraded m (-(Hashtbl.length m.degraded.(i)));
  Hashtbl.reset m.degraded.(i);
  m.replaced.(i) <- false;
  m.map_up.(i) <- true;
  if m.down_at.(i) > 0.0 then
    Obs.set m.recovery_g.(i) (Engine.now t.engine -. m.down_at.(i))

(* ------------------------------------------------------------------ *)
(* Paced recovery engine (enabled with [enable_monitor ~recovery]).

   State machine per (object, OSD) pair:

     Clean --missed write while down--> Degraded --drain--> Clean
     Clean --OSD replaced (peering)---> Backfilling --drain--> Clean

   A drain moves data in [cfg.chunk]-sized transfers, each charging the
   survivor's disk, the server link (east-west, contending with client
   traffic) and the target's disk, and each paced by the recovery token
   bucket.  The osdmap shows the OSD up as soon as the drain starts:
   reads redirect around dirty objects, writes to dirty objects are
   logged instead of committed. *)

(* One peering pass for OSD [i].  A returning OSD with intact data only
   needs the writes it missed (already queued in [degraded]); a
   replaced OSD lost everything, so walk the survivors' object tables
   and queue every object CRUSH places on [i] for backfill. *)
let peer t m i =
  if m.replaced.(i) then begin
    m.replaced.(i) <- false;
    (* the missed-write log predates the wipe: superseded by backfill *)
    note_degraded m (-(Hashtbl.length m.degraded.(i)));
    Hashtbl.reset m.degraded.(i);
    Array.iteri
      (fun j osd ->
        if j <> i && Osd.is_up osd then
          Osd.iter_objects osd (fun obj bytes ->
              if
                (not (Hashtbl.mem m.backfilling.(i) obj))
                && List.mem i (placement t obj)
              then begin
                Hashtbl.replace m.backfilling.(i) obj bytes;
                Obs.incr m.backfill_c;
                note_degraded m 1
              end))
      t.cluster_osds
  end

(* A clean, actually-up replica of [obj] other than [i] to read from. *)
let repair_source t m i ~obj =
  List.find_opt
    (fun j -> j <> i && Osd.is_up t.cluster_osds.(j) && not (dirty_on m j ~obj))
    (placement t obj)

type repair_outcome = Repaired | Lost | Aborted

(* Move one object onto [i] as paced, chunked simulated work.  The
   wanted size is re-read from the repair queue every chunk, so writes
   logged while the copy is in flight extend it instead of being lost.
   [Aborted] leaves the queue entry in place for the next peering
   round. *)
let recover_object t m cfg i ~obj =
  let table =
    if Hashtbl.mem m.backfilling.(i) obj then m.backfilling.(i)
    else m.degraded.(i)
  in
  let rec copy done_ =
    let want = Option.value ~default:0 (Hashtbl.find_opt table obj) in
    if done_ >= want then Repaired
    else if (not m.active) || not (Osd.is_up t.cluster_osds.(i)) then Aborted
    else
      match repair_source t m i ~obj with
      | None ->
          (* no surviving clean replica: the bytes are gone; drop the
             entry so the drain terminates, and count the loss *)
          Obs.incr m.unrecoverable_c;
          Lost
      | Some j ->
          let chunk = Stdlib.min cfg.Recovery.chunk (want - done_) in
          Option.iter (fun p -> Recovery.pace p ~bytes:chunk) m.pacer;
          Osd.read t.cluster_osds.(j) ~obj ~bytes:chunk;
          Obs.add m.recovery_read_c (float_of_int chunk);
          (* east-west hop: recovery traffic crosses the server's own
             link and queues FIFO with the clients' data path *)
          Net.transfer t.net ~src:t.server_node ~dst:t.server_node
            ~bytes:(chunk + message_bytes);
          Osd.write t.cluster_osds.(i) ~obj ~bytes:chunk;
          Obs.add m.recovered_c (float_of_int chunk);
          copy (done_ + chunk)
  in
  match copy 0 with
  | Aborted -> false
  | (Repaired | Lost) as outcome ->
      Hashtbl.remove table obj;
      note_degraded m (-1);
      if outcome = Repaired then
        Danaus_check.Check.invariant ~obs:(Engine.obs t.engine) ~layer:"ceph"
          ~what:"repair_clean"
          ~detail:(fun () -> Printf.sprintf "%s on osd %d" obj i)
          (fun () ->
            (not (Osd.is_up t.cluster_osds.(i)))
            || (Osd.has_object t.cluster_osds.(i) ~obj
               && not (dirty_on m i ~obj)));
      true

(* Drain OSD [i]'s repair queues to empty with [cfg.streams] concurrent
   transfer streams sharing one pacer, then re-scan: writes logged while
   draining may have queued more work.  On abort (target lost again, or
   monitor shut down) the remaining entries stay queued — the rollback
   path — and the next heartbeat that sees the OSD re-starts here. *)
let rec drain t m cfg i =
  peer t m i;
  if not m.map_up.(i) then m.map_up.(i) <- true;
  let work =
    Hashtbl.fold
      (fun o b acc -> (o, b) :: acc)
      m.degraded.(i)
      (Hashtbl.fold (fun o b acc -> (o, b) :: acc) m.backfilling.(i) [])
    |> List.sort compare
    |> Array.of_list
  in
  if Array.length work = 0 then begin
    (* converged: every acting set that involves [i] is whole again *)
    Danaus_check.Check.invariant ~obs:(Engine.obs t.engine) ~layer:"ceph"
      ~what:"recovery_conservation"
      ~detail:(fun () ->
        Printf.sprintf "read %g vs written %g"
          (Obs.counter_value m.recovery_read_c)
          (Obs.counter_value m.recovered_c))
      (fun () ->
        Obs.counter_value m.recovery_read_c = Obs.counter_value m.recovered_c);
    if m.down_at.(i) > 0.0 then begin
      Obs.set m.recovery_g.(i) (Engine.now t.engine -. m.down_at.(i));
      m.down_at.(i) <- 0.0
    end
  end
  else begin
    let cursor = ref 0 in
    let aborted = ref false in
    let wg = Waitgroup.create t.engine in
    let streams = Stdlib.min cfg.Recovery.streams (Array.length work) in
    for _ = 1 to streams do
      Waitgroup.add wg;
      Engine.fork ~name:("ceph:recover:" ^ Osd.name t.cluster_osds.(i))
        (fun () ->
          let continue = ref true in
          while !continue do
            if !aborted || !cursor >= Array.length work then continue := false
            else begin
              let obj, _ = work.(!cursor) in
              incr cursor;
              if not (recover_object t m cfg i ~obj) then aborted := true
            end
          done;
          Waitgroup.finish wg)
    done;
    Waitgroup.wait wg;
    if not !aborted then drain t m cfg i
  end

(* An OSD needs a recovery pass when it was replaced, the map still
   shows it down, or repair work is queued against it. *)
let needs_recovery m i =
  m.replaced.(i)
  || (not m.map_up.(i))
  || Hashtbl.length m.degraded.(i) > 0
  || Hashtbl.length m.backfilling.(i) > 0

let enable_monitor ?(heartbeat = 1.0) ?(grace = 3.0) ?(op_timeout = 0.25)
    ?recovery t =
  match !(t.monitor) with
  | Some _ -> ()
  | None ->
      let n = Array.length t.cluster_osds in
      let obs = Engine.obs t.engine in
      let m =
        {
          active = true;
          heartbeat;
          grace;
          op_timeout;
          recovery;
          pacer = Option.map (Recovery.pacer t.engine) recovery;
          map_up = Array.make n true;
          last_seen = Array.make n (Engine.now t.engine);
          down_at = Array.make n 0.0;
          resyncing = Array.make n false;
          replaced = Array.make n false;
          degraded = Array.init n (fun _ -> Hashtbl.create 64);
          backfilling = Array.init n (fun _ -> Hashtbl.create 64);
          degraded_live = 0;
          draining = 0;
          markdown_c =
            Obs.counter obs ~layer:"ceph" ~name:"osd_mark_down" ~key:"cluster";
          failed_c =
            Obs.counter obs ~layer:"ceph" ~name:"failed_ops" ~key:"cluster";
          degraded_c =
            Obs.counter obs ~layer:"ceph" ~name:"degraded_objects" ~key:"cluster";
          resync_c =
            Obs.counter obs ~layer:"ceph" ~name:"resync_bytes" ~key:"cluster";
          recovery_g =
            Array.init n (fun i ->
                Obs.gauge obs ~layer:"ceph" ~name:"recovery_time"
                  ~key:(Osd.name t.cluster_osds.(i)));
          degraded_now_g =
            Obs.gauge obs ~layer:"ceph" ~name:"degraded_now" ~key:"cluster";
          recovery_active_g =
            Obs.gauge obs ~layer:"ceph" ~name:"recovery_active" ~key:"cluster";
          recovered_c =
            Obs.counter obs ~layer:"ceph" ~name:"recovered_bytes" ~key:"cluster";
          recovery_read_c =
            Obs.counter obs ~layer:"ceph" ~name:"recovery_read_bytes"
              ~key:"cluster";
          degraded_reads_c =
            Obs.counter obs ~layer:"ceph" ~name:"degraded_reads" ~key:"cluster";
          backfill_c =
            Obs.counter obs ~layer:"ceph" ~name:"backfill_objects"
              ~key:"cluster";
          unrecoverable_c =
            Obs.counter obs ~layer:"ceph" ~name:"unrecoverable_objects"
              ~key:"cluster";
        }
      in
      t.monitor := Some m;
      Engine.spawn t.engine ~name:"ceph:monitor" (fun () ->
          while m.active do
            Engine.sleep m.heartbeat;
            let now = Engine.now t.engine in
            Array.iteri
              (fun i osd ->
                if Osd.is_up osd then begin
                  m.last_seen.(i) <- now;
                  let wants_pass =
                    match m.recovery with
                    | None -> not m.map_up.(i)
                    | Some _ -> needs_recovery m i
                  in
                  if wants_pass && not m.resyncing.(i) then begin
                    m.resyncing.(i) <- true;
                    Engine.fork ~name:("ceph:resync:" ^ Osd.name osd)
                      (fun () ->
                        (match m.recovery with
                        | None -> resync t m i
                        | Some cfg ->
                            m.draining <- m.draining + 1;
                            Obs.set m.recovery_active_g
                              (float_of_int m.draining);
                            drain t m cfg i;
                            m.draining <- m.draining - 1;
                            Obs.set m.recovery_active_g
                              (float_of_int m.draining));
                        m.resyncing.(i) <- false)
                  end
                end
                else if m.map_up.(i) && now -. m.last_seen.(i) > m.grace
                then begin
                  m.map_up.(i) <- false;
                  m.down_at.(i) <- now;
                  Obs.incr m.markdown_c
                end)
              t.cluster_osds
          done)

let disable_monitor t =
  match !(t.monitor) with
  | None -> ()
  | Some m ->
      m.active <- false;
      t.monitor := None

let monitor_sees_up t i =
  match !(t.monitor) with
  | None -> Osd.is_up t.cluster_osds.(i)
  | Some m -> m.map_up.(i)

(* Swap OSD [i] for a blank replacement device: all stored objects are
   gone, the device itself is healthy.  The monitor flags it for a
   peering pass; until the backfill drains, reads of its objects
   redirect to the surviving replicas. *)
let replace_osd t i =
  let osd = t.cluster_osds.(i) in
  Osd.wipe osd;
  Osd.set_up osd true;
  match !(t.monitor) with
  | None -> ()
  | Some m ->
      m.replaced.(i) <- true;
      if m.map_up.(i) then begin
        m.map_up.(i) <- false;
        m.down_at.(i) <- Engine.now t.engine;
        Obs.incr m.markdown_c
      end
      else if m.down_at.(i) = 0.0 then m.down_at.(i) <- Engine.now t.engine

(* Operator override: force the osdmap to show OSD [i] up without
   waiting for the heartbeat, e.g. to start degraded serving the moment
   a replacement is racked.  If the OSD was replaced, peering runs
   first so reads know which objects are still dirty. *)
let force_mark_up t i =
  match !(t.monitor) with
  | None -> ()
  | Some m ->
      if Osd.is_up t.cluster_osds.(i) then begin
        if m.recovery <> None && m.replaced.(i) then peer t m i;
        m.map_up.(i) <- true
      end

let degraded_now t =
  match !(t.monitor) with None -> 0 | Some m -> m.degraded_live

let recovering t i =
  match !(t.monitor) with None -> false | Some m -> m.resyncing.(i)

let object_state t i ~obj =
  match !(t.monitor) with
  | None -> Recovery.Clean
  | Some m ->
      if Hashtbl.mem m.backfilling.(i) obj then Recovery.Backfilling
      else if Hashtbl.mem m.degraded.(i) obj then Recovery.Degraded
      else Recovery.Clean

(* Number of replicas of [obj] that are actually up with a clean copy:
   the live width of its acting set.  Converges back to [replicas] once
   recovery drains. *)
let acting_width t ~obj =
  List.length
    (List.filter
       (fun i ->
         Osd.is_up t.cluster_osds.(i)
         &&
         match !(t.monitor) with
         | Some ({ recovery = Some _; _ } as m) -> not (dirty_on m i ~obj)
         | _ -> true)
       (placement t obj))

let delete_range t ~ino ~size =
  List.iter
    (fun (obj, _) ->
      Array.iter (fun osd -> Osd.delete osd ~obj) t.cluster_osds)
    (Striper.objects ~object_size:t.obj_size ~ino ~off:0 ~len:size)

let meta t f =
  to_server t ~bytes:message_bytes;
  let r = Mds.perform t.cluster_mds f in
  to_client t ~bytes:message_bytes;
  r

let lookup t path = meta t (fun ns -> Namespace.lookup ns path)
let create_file t path = meta t (fun ns -> Namespace.create_file ns path)
let mkdir_p t path = meta t (fun ns -> Namespace.mkdir_p ns path)
let readdir t path = meta t (fun ns -> Namespace.readdir ns path)
let unlink t path = meta t (fun ns -> Namespace.unlink ns path)
let rename t ~src ~dst = meta t (fun ns -> Namespace.rename ns ~src ~dst)
let set_size t path size = meta t (fun ns -> Namespace.set_size ns path size)
let namespace t = Mds.namespace t.cluster_mds
