open Danaus_sim
open Danaus_hw

type io_error = No_replica of string | Deadline_exceeded

let io_error_to_string = function
  | No_replica obj -> "no replica of " ^ obj ^ " available"
  | Deadline_exceeded -> "op deadline exceeded"

(* Monitor/osdmap state, shared by every host's view of the cluster.
   [map_up] is the osdmap the clients act on; it lags reality by the
   heartbeat + grace window (stale-map semantics: ops addressed to a
   crashed-but-not-yet-marked-down OSD time out and fail, and the client
   retries until the map catches up). *)
type monitor = {
  mutable active : bool;
  heartbeat : float;
  grace : float;
  op_timeout : float;
  map_up : bool array;
  last_seen : float array;
  down_at : float array;
  resyncing : bool array;
  degraded : (string, int) Hashtbl.t array;
  markdown_c : Obs.counter;
  failed_c : Obs.counter;
  degraded_c : Obs.counter;
  resync_c : Obs.counter;
  recovery_g : Obs.gauge array;
}

type t = {
  engine : Engine.t;
  net : Net.t;
  client_node : Net.node;
  server_node : Net.node;
  cluster_osds : Osd.t array;
  cluster_mds : Mds.t;
  replicas : int;
  obj_size : int;
  monitor : monitor option ref;
  (* obj -> CRUSH placement.  Rendezvous hashing is pure in the object
     name, so the first computation (FNV per OSD + sort) is definitive;
     the read/write hot path then costs one table probe instead of six
     string formats and a sort per IO. *)
  placements : (string, int list) Hashtbl.t;
}

let message_bytes = 256

let create engine ~net ~client_node ~server_node ~osds ~mds ~replicas
    ~object_size =
  Danaus_check.Check.precondition ~layer:"ceph" ~what:"create_args"
    ~detail:(fun () ->
      Printf.sprintf "%d osds, %d replicas, object_size %d" (Array.length osds)
        replicas object_size)
    (Array.length osds >= replicas && replicas >= 1 && object_size > 0);
  {
    engine;
    net;
    client_node;
    server_node;
    cluster_osds = osds;
    cluster_mds = mds;
    replicas;
    obj_size = object_size;
    monitor = ref None;
    placements = Hashtbl.create 4096;
  }

(* A second client machine's view of the same cluster: shares the OSDs,
   MDS and namespace, but enters the network through its own link. *)
let for_host t ~client_node = { t with client_node }

let osds t = t.cluster_osds
let mds t = t.cluster_mds
let object_size t = t.obj_size

let to_server t ~bytes =
  Net.transfer t.net ~src:t.client_node ~dst:t.server_node ~bytes

let to_client t ~bytes =
  Net.transfer t.net ~src:t.server_node ~dst:t.client_node ~bytes

let placement t obj =
  match Hashtbl.find t.placements obj with
  | place -> place
  | exception Not_found ->
  let place =
    Crush.place ~osds:(Array.length t.cluster_osds) ~replicas:t.replicas obj
  in
  (* CRUSH's contract: exactly [replicas] placements, all distinct, all
     addressing real OSDs — a violation here silently corrupts the
     redundancy the fault experiments measure. *)
  Danaus_check.Check.invariant ~obs:(Engine.obs t.engine) ~layer:"ceph"
    ~what:"placement_legal"
    ~detail:(fun () ->
      Printf.sprintf "%s -> [%s] with %d osds, %d replicas" obj
        (String.concat ";" (List.map string_of_int place))
        (Array.length t.cluster_osds) t.replicas)
    (fun () ->
      List.length place = t.replicas
      && List.for_all (fun i -> i >= 0 && i < Array.length t.cluster_osds) place
      && List.length (List.sort_uniq Int.compare place) = List.length place);
  Hashtbl.add t.placements obj place;
  place

(* The client's view of an OSD's availability: the osdmap when a monitor
   runs (stale by up to heartbeat + grace), instant truth otherwise. *)
let view_up t i =
  match !(t.monitor) with
  | None -> Osd.is_up t.cluster_osds.(i)
  | Some m -> m.map_up.(i)

(* Remember that [obj] missed a write on OSD [i]; replayed by re-sync
   when the OSD comes back. *)
let record_degraded m i ~obj ~bytes =
  let prev = Option.value ~default:0 (Hashtbl.find_opt m.degraded.(i) obj) in
  Hashtbl.replace m.degraded.(i) obj (Stdlib.max prev bytes);
  Obs.incr m.degraded_c

let fail_op t =
  match !(t.monitor) with
  | None -> ()
  | Some m -> Obs.incr m.failed_c

(* An op whose caller deadline has already passed fails fast before
   paying the network round trip.  The deadline reaches this layer
   through the per-process slot ({!Engine.deadline}), inherited across
   the striper's per-object [Engine.fork] fan-out. *)
let past_deadline t =
  match Engine.deadline () with
  | Some dl -> Engine.now t.engine >= dl
  | None -> false

let deadline_reject t =
  Obs.incr
    (Obs.counter (Engine.obs t.engine) ~layer:"ceph" ~name:"deadline_rejects"
       ~key:"cluster");
  Error Deadline_exceeded

let write_object t ~obj ~bytes =
  if past_deadline t then deadline_reject t
  else begin
  let place = placement t obj in
  (match !(t.monitor) with
  | None -> ()
  | Some m ->
      (* replicas the map already knows are down miss this write *)
      List.iter
        (fun i -> if not m.map_up.(i) then record_degraded m i ~obj ~bytes)
        place);
  match List.filter (fun i -> view_up t i) place with
  | [] ->
      fail_op t;
      Error (No_replica obj)
  | primary :: _ as targets -> (
      to_server t ~bytes:(bytes + message_bytes);
      match !(t.monitor) with
      | Some m when not (Osd.is_up t.cluster_osds.(primary)) ->
          (* stale map: the op is addressed to a dead primary and times
             out; the client retries until mark-down updates the map *)
          let start = Engine.now t.engine in
          Engine.sleep m.op_timeout;
          Trace.emit t.engine ~layer:"ceph" ~name:"op_timeout" ~key:obj
            ~phase:Backoff ~start ~dur:m.op_timeout;
          Obs.incr m.failed_c;
          Error (No_replica obj)
      | monitor ->
          let wg = Waitgroup.create t.engine in
          List.iter
            (fun i ->
              if Osd.is_up t.cluster_osds.(i) then begin
                Waitgroup.add wg;
                Engine.fork (fun () ->
                    Osd.write t.cluster_osds.(i) ~obj ~bytes;
                    Waitgroup.finish wg)
              end
              else
                (* non-primary replica died under a stale map: commit on
                   the live replicas, leave the object degraded *)
                Option.iter
                  (fun m -> record_degraded m i ~obj ~bytes)
                  monitor)
            targets;
          Waitgroup.wait wg;
          to_client t ~bytes:message_bytes;
          Ok ())
  end

let read_object t ~obj ~bytes =
  if past_deadline t then deadline_reject t
  else
  (* primary first; fail over to the next up replica in CRUSH order *)
  match List.find_opt (fun i -> view_up t i) (placement t obj) with
  | None ->
      fail_op t;
      Error (No_replica obj)
  | Some target -> (
      to_server t ~bytes:message_bytes;
      match !(t.monitor) with
      | Some m when not (Osd.is_up t.cluster_osds.(target)) ->
          let start = Engine.now t.engine in
          Engine.sleep m.op_timeout;
          Trace.emit t.engine ~layer:"ceph" ~name:"op_timeout" ~key:obj
            ~phase:Backoff ~start ~dur:m.op_timeout;
          Obs.incr m.failed_c;
          Error (No_replica obj)
      | _ ->
          Osd.read t.cluster_osds.(target) ~obj ~bytes;
          to_client t ~bytes:(bytes + message_bytes);
          Ok ())

let over_objects t ~ino ~off ~len ~io =
  let parts = Striper.objects ~object_size:t.obj_size ~ino ~off ~len in
  match parts with
  | [] -> Ok ()
  | [ (obj, bytes) ] -> io ~obj ~bytes
  | parts ->
      let first_err = ref None in
      let wg = Waitgroup.create t.engine in
      List.iter
        (fun (obj, bytes) ->
          Waitgroup.add wg;
          Engine.fork (fun () ->
              (match io ~obj ~bytes with
              | Ok () -> ()
              | Error e -> if !first_err = None then first_err := Some e);
              Waitgroup.finish wg))
        parts;
      Waitgroup.wait wg;
      (match !first_err with None -> Ok () | Some e -> Error e)

let write_range t ~ino ~off ~len =
  over_objects t ~ino ~off ~len ~io:(fun ~obj ~bytes -> write_object t ~obj ~bytes)

let read_range t ~ino ~off ~len =
  over_objects t ~ino ~off ~len ~io:(fun ~obj ~bytes -> read_object t ~obj ~bytes)

(* ------------------------------------------------------------------ *)
(* Monitor: heartbeat, mark-down, and replica re-sync on recovery. *)

(* Bring the recovered OSD [i] up to date: pull each degraded object
   from a surviving replica (real disk + CPU traffic on both ends) and
   push it onto [i]; only then does the map show the OSD up again. *)
let resync t m i =
  let objs =
    Hashtbl.fold (fun obj bytes acc -> (obj, bytes) :: acc) m.degraded.(i) []
    |> List.sort compare
  in
  List.iter
    (fun (obj, bytes) ->
      let src =
        List.find_opt
          (fun j -> j <> i && m.map_up.(j) && Osd.is_up t.cluster_osds.(j))
          (placement t obj)
      in
      match src with
      | None -> () (* no surviving replica: nothing to recover from *)
      | Some j ->
          Osd.read t.cluster_osds.(j) ~obj ~bytes;
          Osd.write t.cluster_osds.(i) ~obj ~bytes;
          Obs.add m.resync_c (float_of_int bytes))
    objs;
  Hashtbl.reset m.degraded.(i);
  m.map_up.(i) <- true;
  if m.down_at.(i) > 0.0 then
    Obs.set m.recovery_g.(i) (Engine.now t.engine -. m.down_at.(i))

let enable_monitor ?(heartbeat = 1.0) ?(grace = 3.0) ?(op_timeout = 0.25) t =
  match !(t.monitor) with
  | Some _ -> ()
  | None ->
      let n = Array.length t.cluster_osds in
      let obs = Engine.obs t.engine in
      let m =
        {
          active = true;
          heartbeat;
          grace;
          op_timeout;
          map_up = Array.make n true;
          last_seen = Array.make n (Engine.now t.engine);
          down_at = Array.make n 0.0;
          resyncing = Array.make n false;
          degraded = Array.init n (fun _ -> Hashtbl.create 64);
          markdown_c =
            Obs.counter obs ~layer:"ceph" ~name:"osd_mark_down" ~key:"cluster";
          failed_c =
            Obs.counter obs ~layer:"ceph" ~name:"failed_ops" ~key:"cluster";
          degraded_c =
            Obs.counter obs ~layer:"ceph" ~name:"degraded_objects" ~key:"cluster";
          resync_c =
            Obs.counter obs ~layer:"ceph" ~name:"resync_bytes" ~key:"cluster";
          recovery_g =
            Array.init n (fun i ->
                Obs.gauge obs ~layer:"ceph" ~name:"recovery_time"
                  ~key:(Osd.name t.cluster_osds.(i)));
        }
      in
      t.monitor := Some m;
      Engine.spawn t.engine ~name:"ceph:monitor" (fun () ->
          while m.active do
            Engine.sleep m.heartbeat;
            let now = Engine.now t.engine in
            Array.iteri
              (fun i osd ->
                if Osd.is_up osd then begin
                  m.last_seen.(i) <- now;
                  if (not m.map_up.(i)) && not m.resyncing.(i) then begin
                    m.resyncing.(i) <- true;
                    Engine.fork ~name:("ceph:resync:" ^ Osd.name osd)
                      (fun () ->
                        resync t m i;
                        m.resyncing.(i) <- false)
                  end
                end
                else if m.map_up.(i) && now -. m.last_seen.(i) > m.grace
                then begin
                  m.map_up.(i) <- false;
                  m.down_at.(i) <- now;
                  Obs.incr m.markdown_c
                end)
              t.cluster_osds
          done)

let disable_monitor t =
  match !(t.monitor) with
  | None -> ()
  | Some m ->
      m.active <- false;
      t.monitor := None

let monitor_sees_up t i =
  match !(t.monitor) with
  | None -> Osd.is_up t.cluster_osds.(i)
  | Some m -> m.map_up.(i)

let delete_range t ~ino ~size =
  List.iter
    (fun (obj, _) ->
      Array.iter (fun osd -> Osd.delete osd ~obj) t.cluster_osds)
    (Striper.objects ~object_size:t.obj_size ~ino ~off:0 ~len:size)

let meta t f =
  to_server t ~bytes:message_bytes;
  let r = Mds.perform t.cluster_mds f in
  to_client t ~bytes:message_bytes;
  r

let lookup t path = meta t (fun ns -> Namespace.lookup ns path)
let create_file t path = meta t (fun ns -> Namespace.create_file ns path)
let mkdir_p t path = meta t (fun ns -> Namespace.mkdir_p ns path)
let readdir t path = meta t (fun ns -> Namespace.readdir ns path)
let unlink t path = meta t (fun ns -> Namespace.unlink ns path)
let rename t ~src ~dst = meta t (fun ns -> Namespace.rename ns ~src ~dst)
let set_size t path size = meta t (fun ns -> Namespace.set_size ns path size)
let namespace t = Mds.namespace t.cluster_mds
