open Danaus_sim
module Token_bucket = Danaus_qos.Token_bucket

type obj_state = Clean | Degraded | Backfilling

let state_name = function
  | Clean -> "clean"
  | Degraded -> "degraded"
  | Backfilling -> "backfilling"

type priority = Client_first | Recovery_first

let priority_name = function
  | Client_first -> "client-first"
  | Recovery_first -> "recovery-first"

type config = {
  chunk : int;
  rate : float;
  burst : float;
  streams : int;
  priority : priority;
}

(* Recovery-first: move data as fast as the hardware allows.  The
   bucket rate sits above the shared link, the chunks are whole objects
   and eight streams keep the link and the OSD gates saturated — client
   traffic queues behind the re-replication. *)
let aggressive =
  {
    chunk = 4 * 1024 * 1024;
    rate = 8e9;
    burst = 64.0 *. 1024.0 *. 1024.0;
    streams = 8;
    priority = Recovery_first;
  }

(* Client-first: a single paced stream of small chunks.  At 48 MB/s on
   a 2.5 GB/s link a victim op waits at most one 256 KiB chunk, so
   client goodput is preserved at the price of a longer drain. *)
let throttled ?(rate = 48e6) ?(chunk = 256 * 1024) () =
  {
    chunk;
    rate;
    burst = Float.max (float_of_int chunk) (4.0 *. 1024.0 *. 1024.0);
    streams = 1;
    priority = Client_first;
  }

(* ------------------------------------------------------------------ *)
(* Pacer: the recovery token bucket.  One bucket per monitor, shared by
   every drain stream, so the configured rate bounds the *aggregate*
   recovery bandwidth regardless of stream count. *)

type pacer = { p_bucket : Token_bucket.t; p_rate : float; p_burst : float }

let pacer engine cfg =
  Danaus_check.Check.precondition ~layer:"recovery" ~what:"config"
    ~detail:(fun () ->
      Printf.sprintf "chunk %d, rate %g, burst %g, streams %d" cfg.chunk
        cfg.rate cfg.burst cfg.streams)
    (cfg.chunk > 0 && cfg.rate > 0.0
    && float_of_int cfg.chunk <= cfg.burst
    && cfg.streams >= 1);
  {
    p_bucket = Token_bucket.create engine ~rate:cfg.rate ~burst:cfg.burst;
    p_rate = cfg.rate;
    p_burst = cfg.burst;
  }

(* Block until the bucket grants [bytes] tokens.  The wait is computed
   from the deficit, so pacing is deterministic and costs no busy
   polling; clamping the cost to the burst keeps oversized chunks from
   stalling forever. *)
let pace p ~bytes =
  if bytes > 0 then begin
    let cost = Float.min (float_of_int bytes) p.p_burst in
    while not (Token_bucket.try_take ~cost p.p_bucket) do
      let deficit = Float.max 0.0 (cost -. Token_bucket.tokens p.p_bucket) in
      Engine.sleep (Float.max 1e-5 (deficit /. p.p_rate))
    done
  end
