(** Recovery policy for the self-healing backend.

    A degraded or replaced OSD is repaired by a paced drain: chunked
    object transfers that charge real OSD disk time and server-link
    time, throttled by a token bucket built on {!Danaus_qos}
    primitives.  The configuration decides whose bandwidth wins while
    the drain runs — the clients' ([Client_first]) or the repair's
    ([Recovery_first]). *)

(** Replica state of one object on one OSD, as seen by the monitor. *)
type obj_state =
  | Clean  (** the copy is current and serves reads *)
  | Degraded  (** the OSD missed writes while down; delta re-sync queued *)
  | Backfilling  (** the OSD was replaced empty; full copy queued *)

val state_name : obj_state -> string

type priority =
  | Client_first  (** recovery yields: small paced chunks, one stream *)
  | Recovery_first  (** recovery saturates: big chunks, many streams *)

val priority_name : priority -> string

type config = {
  chunk : int;  (** bytes moved per paced transfer, [> 0] *)
  rate : float;  (** aggregate recovery bandwidth cap, bytes/s *)
  burst : float;  (** token-bucket depth, [>= chunk] *)
  streams : int;  (** concurrent transfer streams per draining OSD *)
  priority : priority;
}

val aggressive : config
(** Recovery-first: 4 MiB chunks, 8 streams, rate above the link — the
    drain finishes fast and client traffic visibly suffers. *)

val throttled : ?rate:float -> ?chunk:int -> unit -> config
(** Client-first: one stream of [?chunk] (default 256 KiB) chunks at
    [?rate] (default 48 MB/s) — client goodput is preserved. *)

(** {1 Pacing} *)

type pacer
(** A shared token bucket bounding aggregate recovery bandwidth. *)

val pacer : Danaus_sim.Engine.t -> config -> pacer

val pace : pacer -> bytes:int -> unit
(** Block (in simulated time) until the bucket grants [bytes] tokens.
    Deterministic: the wait is derived from the token deficit. *)
