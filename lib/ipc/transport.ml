open Danaus_sim
open Danaus_hw
open Danaus_kernel

type request = {
  bytes : int;
  deadline : float option;
  t_parent : int; (* caller's span id; crosses the ring like the deadline *)
  enq_at : float;
  exec : unit -> unit;
}

type queue = {
  q_index : int;
  q_cores : int array;
  q_ring : request Ring.t;
  mutable q_threads : int;
  mutable q_pinned : int; (* app threads pinned here *)
}

type t = {
  kernel : Kernel.t;
  pool : Cgroup.t;
  name : string;
  queues : queue array;
  pins : (int, int) Hashtbl.t; (* app thread -> queue index *)
  buffers : (int, Shm.t) Hashtbl.t; (* app thread -> request buffer *)
  scale_threshold : int;
  max_threads_per_queue : int;
  mutable served : int;
  mutable started : bool;
}

let request_buffer_bytes = 1024 * 1024
let enqueue_cpu = 0.5e-6
let dispatch_cpu = 0.5e-6

let group_partition topology cores =
  let groups = Hashtbl.create 8 in
  Array.iter
    (fun core ->
      let g = Topology.group_of_core topology core in
      let members =
        match Hashtbl.find_opt groups g with Some l -> l | None -> []
      in
      Hashtbl.replace groups g (core :: members))
    cores;
  Hashtbl.fold (fun g members acc -> (g, Array.of_list (List.rev members)) :: acc) groups []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

let create kernel ~pool ~topology ~name ?(slots = 64) ?(scale_threshold = 8)
    ?(max_threads_per_queue = 4) () =
  let engine = Kernel.engine kernel in
  let partitions = group_partition topology (Cgroup.cores pool) in
  let queues =
    List.mapi
      (fun i cores ->
        {
          q_index = i;
          q_cores = cores;
          q_ring =
            Ring.create engine ~name:(Printf.sprintf "%s.q%d" name i) ~slots;
          q_threads = 0;
          q_pinned = 0;
        })
      partitions
    |> Array.of_list
  in
  (* the rings themselves live in shared memory *)
  ignore
    (Shm.create ~pool ~name:(name ^ ".rings")
       ~bytes:(Array.length queues * slots * 256));
  {
    kernel;
    pool;
    name;
    queues;
    pins = Hashtbl.create 64;
    buffers = Hashtbl.create 64;
    scale_threshold;
    max_threads_per_queue;
    served = 0;
    started = false;
  }

let queue_count t = Array.length t.queues
let requests t = t.served

let service_threads t =
  Array.fold_left (fun acc q -> acc + q.q_threads) 0 t.queues

let service_cpu t q dt =
  if dt > 0.0 then
    Cpu.compute (Kernel.cpu t.kernel) ~tenant:(Cgroup.name t.pool) ~eligible:q.q_cores dt

let spawn_service_thread t q =
  q.q_threads <- q.q_threads + 1;
  Engine.spawn (Kernel.engine t.kernel)
    ~name:(Printf.sprintf "%s.svc%d-%d" t.name q.q_index q.q_threads)
    (fun () ->
      while true do
        let req = Ring.dequeue q.q_ring in
        (* the payload stays in the shared request buffer: the service
           reads it in place (the single boundary copy is charged on the
           front-driver side) *)
        let engine = Kernel.engine t.kernel in
        let picked_up = Engine.now engine in
        (* the caller's deadline and span id cross the ring inside the
           request descriptor: the handler runs in a different process,
           so the per-process slots do not travel on their own *)
        Trace.with_parent req.t_parent (fun () ->
            if req.t_parent <> 0 && picked_up > req.enq_at then
              Trace.emit engine ~layer:"ipc" ~name:"ring_wait" ~key:t.name
                ~phase:Queue_wait ~start:req.enq_at
                ~dur:(picked_up -. req.enq_at);
            service_cpu t q dispatch_cpu;
            Engine.with_deadline req.deadline req.exec);
        t.served <- t.served + 1
      done)

let start t =
  if not t.started then begin
    t.started <- true;
    Array.iter (fun q -> spawn_service_thread t q) t.queues
  end

(* Pin an application thread to the least-loaded queue on first use. *)
let queue_of_thread t ~thread =
  match Hashtbl.find_opt t.pins thread with
  | Some i -> t.queues.(i)
  | None ->
      let best = ref t.queues.(0) in
      Array.iter
        (fun q -> if q.q_pinned < !best.q_pinned then best := q)
        t.queues;
      !best.q_pinned <- !best.q_pinned + 1;
      Hashtbl.replace t.pins thread !best.q_index;
      ignore
        (match Hashtbl.find_opt t.buffers thread with
        | Some _ -> ()
        | None ->
            Hashtbl.replace t.buffers thread
              (Shm.create ~pool:t.pool
                 ~name:(Printf.sprintf "%s.buf%d" t.name thread)
                 ~bytes:request_buffer_bytes));
      !best

let pinned_cores t ~thread =
  Option.map (fun i -> t.queues.(i).q_cores) (Hashtbl.find_opt t.pins thread)

let pool_counter t name =
  Obs.counter (Kernel.obs t.kernel) ~layer:"ipc" ~name ~key:(Cgroup.name t.pool)

let call ?timeout ?on_timeout ?on_overload t ~thread ~bytes f =
  if not t.started then start t;
  let q = queue_of_thread t ~thread in
  let caller_cpu dt =
    Cpu.compute (Kernel.cpu t.kernel) ~tenant:(Cgroup.name t.pool) ~eligible:q.q_cores dt
  in
  Obs.incr (pool_counter t "ipc_requests");
  let engine = Kernel.engine t.kernel in
  let deadline = Engine.deadline () in
  let span =
    Trace.enter engine ~layer:"ipc" ~name:"ipc_call" ~key:t.name ~phase:Service
  in
  (* front driver: fill the request buffer and the ring entry *)
  caller_cpu (enqueue_cpu +. (float_of_int bytes *. (Kernel.costs t.kernel).copy_per_byte));
  let cell = ref None in
  let waiter = ref None in
  let timed_out = ref false in
  let exec () =
    cell := Some (f ());
    (* the caller already returned on_timeout (): the reply lands in a
       cell nobody will read — tag the silent drop *)
    if !timed_out then Obs.incr (pool_counter t "late_replies");
    match !waiter with Some wake -> wake () | None -> ()
  in
  (* back-driver scaling: grow the queue's thread pool under backlog *)
  if
    Ring.length q.q_ring >= t.scale_threshold
    && q.q_threads < t.max_threads_per_queue
  then spawn_service_thread t q;
  let finish v =
    Trace.exit engine span;
    v
  in
  let req =
    { bytes; deadline; t_parent = span; enq_at = Engine.now engine; exec }
  in
  let shed =
    (* with an overload handler, a full ring sheds at the boundary
       instead of wedging the producer *)
    match on_overload with
    | Some _ -> not (Ring.try_enqueue q.q_ring req)
    | None ->
        Ring.enqueue q.q_ring req;
        false
  in
  if shed then begin
    Obs.incr (pool_counter t "sheds");
    finish ((Option.get on_overload) ())
  end
  else
    match !cell with
    | Some v -> finish v
    | None ->
        (* a timed call arms a timer that wakes the caller with an empty
           result cell; the wake is idempotent, so a reply racing the timer
           at the same instant is harmless either way.  A caller deadline
           tightens the timer: no point waiting for a reply the deadline
           has already disowned. *)
        let effective_timeout =
          if Option.is_none on_timeout then timeout
          else
            let remaining =
              Option.map
                (fun dl ->
                  Float.max 0.0 (dl -. Engine.now (Kernel.engine t.kernel)))
                deadline
            in
            match (timeout, remaining) with
            | None, r -> r
            | (Some _ as d), None -> d
            | Some d, Some r -> Some (Float.min d r)
        in
        Option.iter
          (fun d ->
            Engine.schedule (Kernel.engine t.kernel) ~delay:d (fun () ->
                match (!cell, !waiter) with
                | None, Some wake -> wake ()
                | _ -> ()))
          effective_timeout;
        Engine.suspend (fun wake -> waiter := Some wake);
        (match (!cell, on_timeout) with
        | Some v, _ -> finish v
        | None, Some g ->
            timed_out := true;
            Obs.incr (pool_counter t "timeouts");
            finish (g ())
        | None, None -> failwith "Transport.call: woken without a result")
