open Danaus_sim

type slot_state = Empty | Writing | Valid

type 'a slot = { mutable state : slot_state; mutable payload : 'a option }

type handles = {
  occ_g : Obs.gauge;
  high_g : Obs.gauge;
  enq_c : Obs.counter;
}

type 'a t = {
  ring : 'a slot array;
  mutable head : int; (* next slot to consume *)
  mutable tail : int; (* next slot to fill *)
  mutable occupancy : int;
  mutable high : int;
  mutable enqueued : int;
  producers : (unit -> unit) Queue.t;
  consumers : (unit -> unit) Queue.t;
  handles : handles option; (* only named rings publish to Obs *)
}

let create ?name engine ~slots =
  Danaus_check.Check.precondition ~layer:"ipc" ~what:"ring_slots"
    ~detail:(fun () -> Printf.sprintf "slots %d" slots)
    (slots >= 1);
  {
    ring = Array.init slots (fun _ -> { state = Empty; payload = None });
    head = 0;
    tail = 0;
    occupancy = 0;
    high = 0;
    enqueued = 0;
    producers = Queue.create ();
    consumers = Queue.create ();
    handles =
      Option.map
        (fun n ->
          let obs = Engine.obs engine in
          {
            occ_g = Obs.gauge obs ~layer:"ipc" ~name:"ring_occupancy" ~key:n;
            high_g = Obs.gauge obs ~layer:"ipc" ~name:"ring_high_water" ~key:n;
            enq_c = Obs.counter obs ~layer:"ipc" ~name:"ring_enqueued" ~key:n;
          })
        name;
  }

let publish t =
  match t.handles with
  | None -> ()
  | Some h ->
      Obs.set h.occ_g (float_of_int t.occupancy);
      Obs.set_max h.high_g (float_of_int t.occupancy)

let wake_one q = match Queue.take_opt q with Some w -> w () | None -> ()

let try_enqueue t x =
  let slot = t.ring.(t.tail) in
  match slot.state with
  | Empty ->
      slot.state <- Writing;
      slot.payload <- Some x;
      slot.state <- Valid;
      t.tail <- (t.tail + 1) mod Array.length t.ring;
      t.occupancy <- t.occupancy + 1;
      t.enqueued <- t.enqueued + 1;
      if t.occupancy > t.high then t.high <- t.occupancy;
      Danaus_check.Check.require ~layer:"ipc" ~what:"ring_occupancy"
        ~detail:(fun () ->
          Printf.sprintf "%d occupied of %d slots" t.occupancy
            (Array.length t.ring))
        (t.occupancy >= 1 && t.occupancy <= Array.length t.ring);
      (match t.handles with Some h -> Obs.incr h.enq_c | None -> ());
      publish t;
      wake_one t.consumers;
      true
  | Writing | Valid -> false

let rec enqueue t x =
  if not (try_enqueue t x) then begin
    Engine.suspend (fun wake -> Queue.add wake t.producers);
    enqueue t x
  end

let rec dequeue t =
  let slot = t.ring.(t.head) in
  match slot.state with
  | Valid ->
      let x = Option.get slot.payload in
      slot.payload <- None;
      slot.state <- Empty;
      t.head <- (t.head + 1) mod Array.length t.ring;
      t.occupancy <- t.occupancy - 1;
      Danaus_check.Check.require ~layer:"ipc" ~what:"ring_occupancy"
        ~detail:(fun () ->
          Printf.sprintf "%d occupied after dequeue" t.occupancy)
        (t.occupancy >= 0);
      publish t;
      wake_one t.producers;
      x
  | Empty | Writing ->
      Engine.suspend (fun wake -> Queue.add wake t.consumers);
      dequeue t

let length t = t.occupancy
let slots t = Array.length t.ring
let high_water t = t.high
let total_enqueued t = t.enqueued
