open Danaus_sim

(** Fixed-size circular request queue in shared memory (§3.5).

    Each slot carries a state ([Empty] / [Writing] / [Valid]) mirroring
    the paper's entry state field; producers block while the ring is
    full, consumers while it is empty.  Multi-producer/multi-consumer. *)

type 'a t

(** [create engine ~slots] builds a ring of [slots] entries.  A [name]d
    ring publishes its occupancy, high-water mark and total enqueues
    into the engine's {!Obs} context under layer ["ipc"] keyed by the
    name. *)
val create : ?name:string -> Engine.t -> slots:int -> 'a t

(** Enqueue, blocking while no slot is [Empty]. *)
val enqueue : 'a t -> 'a -> unit

(** Dequeue the oldest [Valid] entry, blocking while none exists. *)
val dequeue : 'a t -> 'a

val length : 'a t -> int
val slots : 'a t -> int

(** Highest occupancy observed (for the back driver's scaling policy). *)
val high_water : 'a t -> int

(** Total entries ever enqueued. *)
val total_enqueued : 'a t -> int
