open Danaus_sim

(** Fixed-size circular request queue in shared memory (§3.5).

    Each slot carries a state ([Empty] / [Writing] / [Valid]) mirroring
    the paper's entry state field; producers block while the ring is
    full, consumers while it is empty.  Multi-producer/multi-consumer. *)

type 'a t

(** [create engine ~slots] builds a ring of [slots] entries.  A [name]d
    ring publishes its occupancy, high-water mark and total enqueues
    into the engine's {!Obs} context under layer ["ipc"] keyed by the
    name. *)
val create : ?name:string -> Engine.t -> slots:int -> 'a t

(** Enqueue, blocking while no slot is [Empty]. *)
val enqueue : 'a t -> 'a -> unit

(** Non-blocking enqueue: [false] means the ring was full and nothing
    was written.  The blocking {!enqueue} is a retry loop over this, so
    the slot-state transitions live in exactly one place.  Shedding
    policy (who counts a shed, what the caller gets back) belongs to the
    caller — see {!Transport.call}'s [on_overload]. *)
val try_enqueue : 'a t -> 'a -> bool

(** Dequeue the oldest [Valid] entry, blocking while none exists. *)
val dequeue : 'a t -> 'a

val length : 'a t -> int
val slots : 'a t -> int

(** Highest occupancy observed (for the back driver's scaling policy). *)
val high_water : 'a t -> int

(** Total entries ever enqueued. *)
val total_enqueued : 'a t -> int
