open Danaus_hw
open Danaus_kernel

(** Danaus user-level IPC: the front driver (filesystem library) and back
    driver (filesystem service) connected by per-core-group request
    queues in shared memory (§3.5).

    Calls never enter the kernel: the caller writes a request descriptor
    into the ring of its core group, the pinned service thread of that
    group executes the handler on the same cores, and the caller resumes.
    A thread is pinned to the core group that receives its first request;
    extra service threads are added to a queue whose backlog exceeds the
    scaling threshold. *)

type t

(** [create kernel ~pool ~topology ~name ()] builds a transport for
    [pool] with one request queue per core group of the pool's cpuset.
    [slots] (default 64) is the ring size; [scale_threshold] (default 8)
    is the backlog that triggers an extra service thread per queue, up to
    [max_threads_per_queue] (default 4). *)
val create :
  Kernel.t ->
  pool:Cgroup.t ->
  topology:Topology.t ->
  name:string ->
  ?slots:int ->
  ?scale_threshold:int ->
  ?max_threads_per_queue:int ->
  unit ->
  t

(** Spawn the initial service threads (one per queue). *)
val start : t -> unit

(** [call t ~thread ~bytes f] sends one request from application thread
    [thread] (an arbitrary stable identifier used for pinning), carrying
    [bytes] of payload through the per-thread request buffer; the handler
    [f] runs in a service thread on the queue's core group and may
    block.  Returns [f]'s result.

    With [timeout], the caller gives up after that many seconds and
    returns [on_timeout ()] instead (counted under ["ipc"/"timeouts"]);
    a handler still in flight keeps running but its late result is
    dropped and counted under ["ipc"/"late_replies"].  [on_timeout] must
    be supplied along with [timeout].

    With [on_overload], a full ring sheds the call instead of blocking
    the producer: the request is dropped before any service work,
    ["ipc"/"sheds"] is incremented and [on_overload ()] is returned.
    Without it the call keeps the historical blocking behaviour.

    The caller's process deadline (see {!Danaus_sim.Engine.deadline}) is
    carried across the ring to the service handler, and — when
    [on_timeout] is supplied — also clamps the effective timeout to the
    time remaining before the deadline. *)
val call :
  ?timeout:float ->
  ?on_timeout:(unit -> 'a) ->
  ?on_overload:(unit -> 'a) ->
  t ->
  thread:int ->
  bytes:int ->
  (unit -> 'a) ->
  'a

(** Number of request queues (= pool core groups). *)
val queue_count : t -> int

(** Service threads currently running. *)
val service_threads : t -> int

(** Requests served so far. *)
val requests : t -> int

(** Cores of the group that [thread] is pinned to, once pinned. *)
val pinned_cores : t -> thread:int -> int array option
