(** Container migration between client hosts over the shared filesystem
    (§9 future work; also the §5 flexibility claim and [80]).

    Two simulated client machines mount the same Ceph cluster.  Migrating
    a container with Danaus is: flush its dirty state, drop it on the
    source, and relaunch on the destination — the root filesystem is
    already visible there, so only the warm-up reads cross the network.
    The baseline copies the container's root filesystem to the
    destination host first (image-download-style migration). *)

(** Time to migrate a Lighttpd container with [state_mib] MiB of private
    writable state, for both strategies.  Returns
    (shared-fs seconds, copy-based seconds) per state size. *)
val fig_migration : seed:int -> quick:bool -> Report.t list
