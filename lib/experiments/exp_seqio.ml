open Danaus_sim
open Danaus
open Danaus_workloads

let mib n = n * 1024 * 1024

let seq_params ~quick =
  if quick then
    (* 20 s so that every config reaches writeback steady state within
       the measurement window *)
    { Seqio.default_params with Seqio.file_size = mib 256; duration = 15.0 }
  else Seqio.default_params

type mode = Write | Read

let run_cell ~seed ~quick ~config ~pools ~mode =
  let p = seq_params ~quick in
  let activated = Stdlib.min Params.client_cores (2 * pools) in
  let tb = Testbed.create ~seed ~activated () in
  let containers =
    List.init pools (fun i ->
        let pool = Testbed.pool tb i in
        ( pool,
          Container_engine.launch tb.Testbed.containers ~config ~pool
            ~id:(Printf.sprintf "seq%d" i) () ))
  in
  (* reads run over a warm file *)
  (if mode = Read then begin
     let warmed = ref 0 in
     List.iteri
       (fun i (pool, ct) ->
         Engine.spawn tb.Testbed.engine (fun () ->
             let ctx = Testbed.ctx tb ~pool ~seed:(1100 + i) in
             Seqio.prepopulate ctx ~view:ct.Container_engine.view p;
             incr warmed))
       containers;
     Testbed.drive tb ~stop:(fun () -> !warmed = pools)
   end);
  Testbed.reset_metrics tb;
  let results = Array.make pools None in
  let done_count = ref 0 in
  List.iteri
    (fun i (pool, ct) ->
      Engine.spawn tb.Testbed.engine (fun () ->
          let ctx = Testbed.ctx tb ~pool ~seed:(1200 + i) in
          let r =
            match mode with
            | Write -> Seqio.run_write ctx ~view:ct.Container_engine.view p
            | Read -> Seqio.run_read ctx ~view:ct.Container_engine.view p
          in
          results.(i) <- Some r;
          incr done_count))
    containers;
  Testbed.drive tb ~stop:(fun () -> !done_count = pools);
  let total =
    Array.fold_left
      (fun acc r ->
        match r with Some r -> acc +. r.Seqio.throughput_mbps | None -> acc)
      0.0 results
  in
  let io_wait = Obs.sum tb.Testbed.obs ~layer:"kernel" ~name:"io_wait" () in
  (total, io_wait, Obs.snapshot tb.Testbed.obs, Obs.cspans tb.Testbed.obs)

let figure ~seed ~quick ~mode =
  let pool_counts = if quick then [ 1; 8 ] else [ 1; 4; 8; 16; 32 ] in
  let configs = [ Config.d; Config.f; Config.k ] in
  let cells =
    List.map
      (fun pools ->
        ( pools,
          List.map
            (fun c -> (c, run_cell ~seed ~quick ~config:c ~pools ~mode))
            configs ))
      pool_counts
  in
  let rows =
    List.map
      (fun (pools, cells) ->
        string_of_int pools
        :: (List.map (fun (_, (t, _, _, _)) -> Report.mbps t) cells
           @ List.map (fun (_, (_, w, _, _)) -> Report.f1 w) cells))
      cells
  in
  let metrics =
    List.concat_map
      (fun (pools, cells) ->
        List.concat_map
          (fun (c, (_, _, m, _)) ->
            Obs.prefix_keys (Printf.sprintf "%s:p%d:" c.Config.label pools) m)
          cells)
      cells
  in
  let spans =
    Danaus_sim.Trace.merge
      (List.concat_map
         (fun (pools, cells) ->
           List.map
             (fun (c, (_, _, _, s)) ->
               (Printf.sprintf "%s:p%d:" c.Config.label pools, s))
             cells)
         cells)
  in
  (rows, metrics, spans)

let fig9 ~seed ~quick =
  let configs = [ "D"; "F"; "K" ] in
  let header =
    "pools"
    :: (List.map (fun c -> c ^ " MB/s") configs
       @ List.map (fun c -> c ^ " iowait s") configs)
  in
  let w_rows, w_metrics, w_spans = figure ~seed ~quick ~mode:Write in
  let r_rows, r_metrics, r_spans = figure ~seed ~quick ~mode:Read in
  [
    Report.make ~id:"fig9w" ~title:"Seqwrite scaleout (total MB/s)" ~header
      ~metrics:w_metrics ~spans:w_spans w_rows;
    Report.make ~id:"fig9r" ~title:"Seqread scaleout (total MB/s, warm cache)"
      ~header ~metrics:r_metrics ~spans:r_spans r_rows;
  ]
