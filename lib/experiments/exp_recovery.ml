open Danaus_sim
open Danaus_ceph
open Danaus
open Danaus_faults
open Danaus_workloads

let mib n = n * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* osd-recovery: kill one replica-holding OSD mid-run under the paced
   recovery engine and compare recovery-first vs client-first pacing.
   A read-only victim pool must keep serving throughout — reads of
   objects on the dead/repairing OSD redirect to the surviving replica
   instead of timing out, so the victim sees zero [No_replica] errors —
   while a writer pool keeps producing degraded objects for the drain
   to replay.  MTTR and the recovered volume quantify the pacing
   trade-off. *)

let victim_params ~quick =
  {
    Openload.default_params with
    Openload.rate = 600.0;
    duration = (if quick then 8.0 else 20.0);
    op_bytes = 256 * 1024;
    files = 128;
    threads = 8;
    dir = "/victim";
    sla = 0.5;
  }

let writer_params ~quick =
  {
    Openload.rate = 200.0;
    duration = (if quick then 8.0 else 20.0);
    op_bytes = mib 1;
    files = 256;
    threads = 8;
    dir = "/writer";
    sla = 0.5;
    write_frac = 1.0;
  }

type recovery_outcome = {
  o_phases : (string * float) list;  (* victim goodput per phase *)
  o_victim_failed : int;
  o_victim_no_replica : float;
  o_degraded_reads : float;
  o_mttr : float;
  o_recovered_mb : float;
  o_metrics : Obs.sample list;
  o_spans : Obs.cspan list;
  o_points : Obs.Sampler.point list;
}

let recovery_cell ~seed ~quick ~recovery =
  let vp = victim_params ~quick in
  let wp = writer_params ~quick in
  let duration = vp.Openload.duration in
  let tb = Testbed.create ~seed ~replicas:2 ~activated:4 () in
  Cluster.enable_monitor ~heartbeat:1.0 ~grace:3.0 ~op_timeout:0.25 ~recovery
    tb.Testbed.cluster;
  let victim_pool = Testbed.pool tb 0 in
  let writer_pool = Testbed.pool tb 1 in
  (* victim cache far smaller than its fileset: reads must refetch, so
     the repairing OSD is actually addressed *)
  let victim =
    Container_engine.launch tb.Testbed.containers ~config:Config.d
      ~pool:victim_pool ~id:"rcv-v" ~cache_bytes:(mib 8) ()
  in
  let writer =
    Container_engine.launch tb.Testbed.containers ~config:Config.d
      ~pool:writer_pool ~id:"rcv-w" ~cache_bytes:(mib 256) ()
  in
  let warmed = ref 0 in
  Engine.spawn tb.Testbed.engine (fun () ->
      let ctx = Testbed.ctx tb ~pool:victim_pool ~seed:6100 in
      Openload.prepopulate ctx ~view:victim.Container_engine.view vp;
      incr warmed);
  Engine.spawn tb.Testbed.engine (fun () ->
      let ctx = Testbed.ctx tb ~pool:writer_pool ~seed:6150 in
      Openload.prepopulate ctx ~view:writer.Container_engine.view wp;
      incr warmed);
  Testbed.drive tb ~stop:(fun () -> !warmed = 2);
  Testbed.reset_metrics tb;
  let points = Testbed.start_sampler tb in
  let t0 = Engine.now tb.Testbed.engine in
  (* phase boundaries: healthy [t0, t0+d), outage [t0+d, t0+2d) with the
     OSD dying 1 s in, rejoin [t0+2d, ...) with the OSD back 1 s in; the
     paced drain overlaps the rejoin phase instead of blocking it *)
  Testbed.inject tb
    ~plan:
      [
        Fault_plan.at (t0 +. duration +. 1.0) (Fault_plan.Osd_down 0);
        Fault_plan.at (t0 +. (2.0 *. duration) +. 1.0) (Fault_plan.Osd_up 0);
      ];
  let phases = [ "healthy"; "osd0 down"; "osd0 back" ] in
  let vres = Array.make (List.length phases) None in
  let done_ = ref false in
  Engine.spawn tb.Testbed.engine (fun () ->
      List.iteri
        (fun i _ ->
          (* victim and writer run in lockstep per phase so the fault
             lands at a comparable point of each window *)
          let wg = Waitgroup.create tb.Testbed.engine in
          Waitgroup.add wg;
          Engine.fork (fun () ->
              let ctx = Testbed.ctx tb ~pool:victim_pool ~seed:(6200 + i) in
              vres.(i) <- Some (Openload.run ctx ~view:victim.Container_engine.view vp);
              Waitgroup.finish wg);
          Waitgroup.add wg;
          Engine.fork (fun () ->
              let ctx = Testbed.ctx tb ~pool:writer_pool ~seed:(6250 + i) in
              ignore (Openload.run ctx ~view:writer.Container_engine.view wp);
              Waitgroup.finish wg);
          Waitgroup.wait wg)
        phases;
      done_ := true);
  Testbed.drive tb ~stop:(fun () -> !done_);
  (* drain the paced recovery to convergence before reading MTTR *)
  Testbed.drive tb ~stop:(fun () ->
      Cluster.degraded_now tb.Testbed.cluster = 0
      && Cluster.monitor_sees_up tb.Testbed.cluster 0
      && not (Cluster.recovering tb.Testbed.cluster 0));
  let obs = tb.Testbed.obs in
  let ceph name = Obs.get obs ~layer:"ceph" ~name ~key:"cluster" in
  let victim_failed =
    List.fold_left
      (fun acc r ->
        acc + match r with Some r -> r.Openload.failed | None -> 0)
      0 (Array.to_list vres)
  in
  let no_replica =
    Obs.get obs ~layer:"client" ~name:"no_replica"
      ~key:(Danaus_kernel.Cgroup.name victim_pool)
  in
  let outcome =
    {
      o_phases =
        List.mapi
          (fun i l ->
            ( l,
              match vres.(i) with
              | Some r -> r.Openload.goodput_ops
              | None -> 0.0 ))
          phases;
      o_victim_failed = victim_failed;
      o_victim_no_replica = no_replica;
      o_degraded_reads = ceph "degraded_reads";
      o_mttr = Obs.get obs ~layer:"ceph" ~name:"recovery_time" ~key:"osd0";
      o_recovered_mb = ceph "recovered_bytes" /. float_of_int (mib 1);
      o_metrics = Obs.snapshot obs;
      o_spans = Obs.cspans obs;
      o_points = points ();
    }
  in
  (* acceptance: the repair converged and moved as many bytes onto the
     returned OSD as it read from the survivors; the victim pool never
     saw an unserved read *)
  Danaus_check.Check.require ~layer:"experiment" ~what:"recovery_converged"
    ~detail:(fun () ->
      Printf.sprintf "degraded_now %d, mttr %g"
        (Cluster.degraded_now tb.Testbed.cluster)
        outcome.o_mttr)
    (Cluster.degraded_now tb.Testbed.cluster = 0 && outcome.o_mttr > 0.0);
  Danaus_check.Check.require ~layer:"experiment" ~what:"recovery_conserved"
    ~detail:(fun () ->
      Printf.sprintf "read %g, recovered %g" (ceph "recovery_read_bytes")
        (ceph "recovered_bytes"))
    (ceph "recovery_read_bytes" = ceph "recovered_bytes");
  Danaus_check.Check.require ~layer:"experiment" ~what:"victim_zero_errors"
    ~detail:(fun () ->
      Printf.sprintf "failed %d, no_replica %g" victim_failed no_replica)
    (victim_failed = 0 && no_replica = 0.0);
  Cluster.disable_monitor tb.Testbed.cluster;
  outcome

let osd_recovery ~seed ~quick =
  let cells =
    [
      ("recovery-first", Recovery.aggressive);
      ("client-first", Recovery.throttled ());
    ]
  in
  let outcomes =
    List.map
      (fun (label, recovery) -> (label, recovery_cell ~seed ~quick ~recovery))
      cells
  in
  let rows =
    List.map
      (fun (label, o) ->
        label
        :: (List.map (fun (_, g) -> Printf.sprintf "%.0f" g) o.o_phases
           @ [
               Printf.sprintf "%d" o.o_victim_failed;
               Printf.sprintf "%.0f" o.o_degraded_reads;
               Report.f1 o.o_mttr;
               Printf.sprintf "%.0f" o.o_recovered_mb;
             ]))
      outcomes
  in
  let get l = List.assoc l outcomes in
  let metrics =
    List.concat_map
      (fun (label, o) -> Obs.prefix_keys (label ^ ":") o.o_metrics)
      outcomes
  in
  let spans =
    Danaus_sim.Trace.merge
      (List.map (fun (label, o) -> (label ^ ":", o.o_spans)) outcomes)
  in
  let timeseries =
    List.concat_map
      (fun (label, o) -> Obs.Sampler.prefix_keys (label ^ ":") o.o_points)
      outcomes
  in
  [
    Report.make ~id:"osd-recovery"
      ~title:
        "Paced OSD recovery: degraded reads keep the victim serving \
         (goodput ops/s per phase)"
      ~header:
        [
          "pacing";
          "healthy";
          "osd0 down";
          "osd0 back";
          "victim errs";
          "degraded reads";
          "MTTR s";
          "recovered MB";
        ]
      ~notes:
        [
          Printf.sprintf
            "victim errors stay 0 in both modes: reads redirect to the \
             surviving replica during the outage and the drain \
             (recovery-first %.0f redirects, client-first %.0f)"
            (get "recovery-first").o_degraded_reads
            (get "client-first").o_degraded_reads;
          Printf.sprintf
            "pacing trade-off: recovery-first MTTR %.1f s vs client-first \
             %.1f s for the same recovered volume"
            (get "recovery-first").o_mttr (get "client-first").o_mttr;
        ]
      ~metrics ~spans ~timeseries rows;
  ]

(* ------------------------------------------------------------------ *)
(* backfill-qos: replace an OSD outright under a latency-sensitive
   victim pool and arbitrate the backfill's bandwidth against the
   victim's.  The replacement is re-replicated from the survivors over
   the server's own link, so unthrottled recovery-first backfill queues
   multi-MiB chunks ahead of every victim op on both link directions
   and the victim's tight SLA collapses; the client-first token bucket
   keeps the backfill a minor background flow at the price of a longer
   drain.  A healthy cell (no fault) is the retention baseline. *)

let bf_victim_params ~quick =
  {
    Openload.default_params with
    Openload.rate = 1500.0;
    duration = (if quick then 8.0 else 20.0);
    op_bytes = 256 * 1024;
    files = 160;
    threads = 8;
    dir = "/victim";
    sla = 0.025;
  }

(* Synthetic cold dataset planted directly on the OSDs (no client or
   cache involvement): enough that the recovery-first backfill spans the
   whole victim window. *)
let bf_objects ~quick = if quick then 18_000 else 40_000
let bf_obj_bytes = mib 4

type bf_outcome = {
  b_goodput : float;
  b_completed : int;
  b_failed : int;
  b_no_replica : float;
  b_p99_ms : float;
  b_mttr : float;
  b_recovered_mb : float;
  b_metrics : Obs.sample list;
  b_spans : Obs.cspan list;
  b_points : Obs.Sampler.point list;
}

let backfill_cell ~seed ~quick ~recovery ~fault =
  let vp = bf_victim_params ~quick in
  let tb = Testbed.create ~seed ~replicas:2 ~activated:4 () in
  Cluster.enable_monitor ~heartbeat:1.0 ~grace:3.0 ~op_timeout:0.25 ~recovery
    tb.Testbed.cluster;
  let pool = Testbed.pool tb 0 in
  let victim =
    Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool
      ~id:"bfq" ~cache_bytes:(mib 8) ()
  in
  let osds = Cluster.osds tb.Testbed.cluster in
  let warmed = ref 0 in
  Engine.spawn tb.Testbed.engine (fun () ->
      let ctx = Testbed.ctx tb ~pool ~seed:6300 in
      Openload.prepopulate ctx ~view:victim.Container_engine.view vp;
      incr warmed);
  (* plant the cold dataset the backfill will have to re-replicate *)
  Engine.spawn tb.Testbed.engine (fun () ->
      for k = 0 to bf_objects ~quick - 1 do
        let obj = Printf.sprintf "bf:%06d" k in
        List.iter
          (fun j -> Osd.write osds.(j) ~obj ~bytes:bf_obj_bytes)
          (Crush.place ~osds:(Array.length osds) ~replicas:2 obj)
      done;
      incr warmed);
  Testbed.drive tb ~stop:(fun () -> !warmed = 2);
  Testbed.reset_metrics tb;
  let points = Testbed.start_sampler tb in
  let t0 = Engine.now tb.Testbed.engine in
  if fault then
    Testbed.inject tb
      ~plan:
        [
          Fault_plan.at (t0 +. 1.0) (Fault_plan.Osd_replace 0);
          (* the operator racks the blank device and forces it into the
             map at once: degraded serving + backfill start immediately
             instead of waiting out heartbeat + grace *)
          Fault_plan.at (t0 +. 1.0) (Fault_plan.Mark_up 0);
        ];
  let result = ref None in
  Engine.spawn tb.Testbed.engine (fun () ->
      let ctx = Testbed.ctx tb ~pool ~seed:6400 in
      result := Some (Openload.run ctx ~view:victim.Container_engine.view vp));
  Testbed.drive tb ~stop:(fun () -> !result <> None);
  (* measure the victim over its window only, then let the drain finish
     for the MTTR and conservation numbers *)
  Testbed.drive tb ~stop:(fun () ->
      Cluster.degraded_now tb.Testbed.cluster = 0
      && (not (Cluster.recovering tb.Testbed.cluster 0))
      && Cluster.monitor_sees_up tb.Testbed.cluster 0);
  let obs = tb.Testbed.obs in
  let ceph name = Obs.get obs ~layer:"ceph" ~name ~key:"cluster" in
  let r = Option.get !result in
  let outcome =
    {
      b_goodput = r.Openload.goodput_ops;
      b_completed = r.Openload.completed;
      b_failed = r.Openload.failed;
      b_no_replica =
        Obs.get obs ~layer:"client" ~name:"no_replica"
          ~key:(Danaus_kernel.Cgroup.name pool);
      b_p99_ms =
        (if Stats.count r.Openload.latency = 0 then 0.0
         else 1000.0 *. Stats.percentile r.Openload.latency 99.0);
      b_mttr = Obs.get obs ~layer:"ceph" ~name:"recovery_time" ~key:"osd0";
      b_recovered_mb = ceph "recovered_bytes" /. float_of_int (mib 1);
      b_metrics = Obs.snapshot obs;
      b_spans = Obs.cspans obs;
      b_points = points ();
    }
  in
  Danaus_check.Check.require ~layer:"experiment" ~what:"backfill_converged"
    ~detail:(fun () ->
      Printf.sprintf "degraded_now %d after drain"
        (Cluster.degraded_now tb.Testbed.cluster))
    (Cluster.degraded_now tb.Testbed.cluster = 0);
  Danaus_check.Check.require ~layer:"experiment" ~what:"backfill_conserved"
    ~detail:(fun () ->
      Printf.sprintf "read %g, recovered %g" (ceph "recovery_read_bytes")
        (ceph "recovered_bytes"))
    (ceph "recovery_read_bytes" = ceph "recovered_bytes");
  Danaus_check.Check.require ~layer:"experiment" ~what:"victim_zero_errors"
    ~detail:(fun () ->
      Printf.sprintf "failed %d, no_replica %g" outcome.b_failed
        outcome.b_no_replica)
    (outcome.b_failed = 0 && outcome.b_no_replica = 0.0);
  Cluster.disable_monitor tb.Testbed.cluster;
  outcome

let backfill_qos ~seed ~quick =
  let cells =
    [
      ("healthy", Recovery.throttled (), false);
      ("recovery-first", Recovery.aggressive, true);
      ("client-first", Recovery.throttled (), true);
    ]
  in
  let outcomes =
    List.map
      (fun (label, recovery, fault) ->
        (label, backfill_cell ~seed ~quick ~recovery ~fault))
      cells
  in
  let get l = List.assoc l outcomes in
  let baseline = (get "healthy").b_goodput in
  let retention o = if baseline > 0.0 then o.b_goodput /. baseline else 0.0 in
  let rows =
    List.map
      (fun (label, o) ->
        [
          label;
          Printf.sprintf "%.0f" o.b_goodput;
          Printf.sprintf "%.0f%%" (100.0 *. retention o);
          Printf.sprintf "%.1f" o.b_p99_ms;
          Printf.sprintf "%d" o.b_failed;
          Report.f1 o.b_mttr;
          Printf.sprintf "%.0f" o.b_recovered_mb;
        ])
      outcomes
  in
  (* the acceptance claim: client-first pacing retains >= 90% of the
     healthy goodput where recovery-first collapses it *)
  Danaus_check.Check.require ~layer:"experiment" ~what:"throttled_retention"
    ~detail:(fun () ->
      Printf.sprintf "client-first retention %.2f (baseline %.0f ops/s)"
        (retention (get "client-first"))
        baseline)
    (retention (get "client-first") >= 0.9);
  let metrics =
    List.concat_map
      (fun (label, o) -> Obs.prefix_keys (label ^ ":") o.b_metrics)
      outcomes
  in
  let spans =
    Danaus_sim.Trace.merge
      (List.map (fun (label, o) -> (label ^ ":", o.b_spans)) outcomes)
  in
  let timeseries =
    List.concat_map
      (fun (label, o) -> Obs.Sampler.prefix_keys (label ^ ":") o.b_points)
      outcomes
  in
  [
    Report.make ~id:"backfill-qos"
      ~title:
        "Backfill bandwidth arbitration: victim goodput under OSD \
         replacement (SLA 25 ms)"
      ~header:
        [
          "recovery";
          "goodput ops/s";
          "retention";
          "p99 ms";
          "victim errs";
          "MTTR s";
          "recovered MB";
        ]
      ~notes:
        [
          Printf.sprintf
            "client-first backfill retains %.0f%% of healthy goodput; \
             recovery-first retains %.0f%% (multi-MiB chunks queue ahead \
             of every victim op on the server link)"
            (100.0 *. retention (get "client-first"))
            (100.0 *. retention (get "recovery-first"));
          Printf.sprintf
            "the price is MTTR: %.1f s recovery-first vs %.1f s \
             client-first for ~%.0f MB re-replicated"
            (get "recovery-first").b_mttr (get "client-first").b_mttr
            (get "client-first").b_recovered_mb;
        ]
      ~metrics ~spans ~timeseries rows;
  ]
