open Danaus_sim
open Danaus
open Danaus_workloads

let mib n = n * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* client_lock granularity: cached sequential read, 1 pool (Fig. 9
   bottom is where the paper sees K beat D because of this lock) *)

let seqread_cell ~seed ~quick ~config ~fine_grained =
  let p =
    if quick then
      { Seqio.default_params with Seqio.file_size = mib 256; duration = 10.0 }
    else Seqio.default_params
  in
  let tb = Testbed.create ~seed ~activated:4 () in
  (* a 4-core pool: enough parallelism that the global lock, not the
     copy bandwidth, is the binding constraint *)
  let pool =
    Testbed.custom_pool tb ~name:"ablpool" ~cores:[| 0; 1; 2; 3 |]
      ~mem:(8 * 1024 * 1024 * 1024)
  in
  let ct =
    Container_engine.launch tb.Testbed.containers ~config ~pool ~id:"abl"
      ~fine_grained_locking:fine_grained ()
  in
  let result = ref None in
  Engine.spawn tb.Testbed.engine (fun () ->
      let ctx = Testbed.ctx tb ~pool ~seed:2100 in
      Seqio.prepopulate ctx ~view:ct.Container_engine.view p;
      result := Some (Seqio.run_read ctx ~view:ct.Container_engine.view p));
  Testbed.drive tb ~stop:(fun () -> !result <> None);
  match !result with Some r -> r.Seqio.throughput_mbps | None -> 0.0

let ablation_lock ~seed ~quick =
  let d = seqread_cell ~seed ~quick ~config:Config.d ~fine_grained:false in
  let d_fg = seqread_cell ~seed ~quick ~config:Config.d ~fine_grained:true in
  let k = seqread_cell ~seed ~quick ~config:Config.k ~fine_grained:false in
  [
    Report.make ~id:"abl-lock"
      ~title:"Ablation: client_lock granularity (cached Seqread, 1 pool)"
      ~header:[ "variant"; "MB/s" ]
      ~notes:
        [
          "per-inode locking is the libcephfs refactoring the paper \
           identifies (S9) as the fix for the cached-read gap vs K";
        ]
      [
        [ "D (global client_lock)"; Report.mbps d ];
        [ "D (per-inode locks)"; Report.mbps d_fg ];
        [ "K (kernel client)"; Report.mbps k ];
      ];
  ]

(* ------------------------------------------------------------------ *)
(* dual interface: the same sequential read over the default
   shared-memory path vs the legacy FUSE path of the same service *)

let ablation_dual ~seed ~quick =
  let file_bytes = if quick then mib 256 else 1024 * 1024 * 1024 in
  let tb = Testbed.create ~seed ~activated:4 () in
  let pool = Testbed.pool tb 0 in
  Container_engine.install_image tb.Testbed.containers ~name:"blob"
    ~files:[ ("/blob", file_bytes) ];
  let ct =
    Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool ~id:"dual"
      ~image:"blob" ()
  in
  let default_time = ref 0.0 and legacy_time = ref 0.0 in
  let done_ = ref false in
  Engine.spawn tb.Testbed.engine (fun () ->
      let ctx = Testbed.ctx tb ~pool ~seed:2200 in
      (* warm the shared client cache once *)
      Filerw.fileread ctx ~view:(ct.Container_engine.view ~thread:1) ~path:"/blob"
        ~chunk:(mib 1);
      let t0 = Engine.time () in
      Filerw.fileread ctx ~view:(ct.Container_engine.view ~thread:1) ~path:"/blob"
        ~chunk:(mib 1);
      default_time := Engine.time () -. t0;
      let t0 = Engine.time () in
      Filerw.fileread ctx ~view:ct.Container_engine.legacy ~path:"/blob"
        ~chunk:(mib 1);
      legacy_time := Engine.time () -. t0;
      done_ := true);
  Testbed.drive tb ~stop:(fun () -> !done_);
  [
    Report.make ~id:"abl-dual"
      ~title:"Ablation: default (shared-memory) vs legacy (FUSE) path"
      ~header:[ "path"; "warm read of the file (s)" ]
      [
        [ "default (IPC)"; Report.f2 !default_time ];
        [ "legacy (FUSE)"; Report.f2 !legacy_time ];
      ];
  ]

(* ------------------------------------------------------------------ *)
(* union layer cost: Fileserver over a Danaus root with and without a
   lower image branch (the union always exists; this measures the extra
   branch probing + whiteout checks) *)

let fileserver_cell ~seed ~quick ~with_image =
  let p =
    {
      Fileserver.default_params with
      Fileserver.files = (if quick then 200 else 1000);
      mean_file_size = mib 1;
      threads = 8;
      duration = (if quick then 8.0 else 60.0);
    }
  in
  let tb = Testbed.create ~seed ~activated:4 () in
  let pool = Testbed.pool tb 0 in
  (if with_image then
     Container_engine.install_image tb.Testbed.containers ~name:"layer"
       ~files:(List.init 100 (fun i -> (Printf.sprintf "/opt/f%d" i, 4096))));
  let ct =
    Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool ~id:"u"
      ?image:(if with_image then Some "layer" else None)
      ()
  in
  let result = ref None in
  Engine.spawn tb.Testbed.engine (fun () ->
      let ctx = Testbed.ctx tb ~pool ~seed:2300 in
      Fileserver.prepopulate ctx ~view:ct.Container_engine.view p;
      result := Some (Fileserver.run ctx ~view:ct.Container_engine.view p));
  Testbed.drive tb ~stop:(fun () -> !result <> None);
  match !result with Some r -> r.Fileserver.throughput_mbps | None -> 0.0

let ablation_union ~seed ~quick =
  let single = fileserver_cell ~seed ~quick ~with_image:false in
  let layered = fileserver_cell ~seed ~quick ~with_image:true in
  [
    Report.make ~id:"abl-union"
      ~title:"Ablation: union branch probing cost (Fileserver, 1 pool)"
      ~header:[ "root filesystem"; "MB/s" ]
      ~notes:
        [
          "the integrated union costs only extra branch stats per lookup \
           because it calls the client directly (S3.1 principle 2)";
        ]
      [
        [ "single branch"; Report.mbps single ];
        [ "upper + image branch"; Report.mbps layered ];
      ];
  ]

(* ------------------------------------------------------------------ *)
(* block-level CoW vs whole-file copy-up: Fileappend over a big lower
   file, N clones (the Fig. 11a scenario) *)

let fileappend_cell ~seed ~quick ~block_cow ~clones =
  let file_bytes = if quick then mib 256 else 2 * 1024 * 1024 * 1024 in
  let tb = Testbed.create ~seed ~activated:Params.client_cores () in
  let pool =
    Testbed.custom_pool tb ~name:"cowpool"
      ~cores:(Array.init Params.client_cores (fun i -> i))
      ~mem:(200 * 1024 * 1024 * 1024)
  in
  Container_engine.install_image tb.Testbed.containers ~name:"dataset"
    ~files:[ ("/big", file_bytes) ];
  let started = Engine.now tb.Testbed.engine in
  let finished = ref 0 in
  let last_finish = ref started in
  for i = 0 to clones - 1 do
    let ct =
      Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool
        ~id:(Printf.sprintf "cow%d" i) ~image:"dataset"
        ?block_cow:(if block_cow then Some (64 * 1024) else None)
        ()
    in
    Engine.spawn tb.Testbed.engine (fun () ->
        let ctx = Testbed.ctx tb ~pool ~seed:(2400 + i) in
        Filerw.fileappend ctx
          ~view:(ct.Container_engine.view ~thread:i)
          ~path:"/big" ~append_bytes:(mib 1) ~chunk:(mib 1);
        last_finish := Engine.now tb.Testbed.engine;
        incr finished)
  done;
  Testbed.drive tb ~stop:(fun () -> !finished = clones);
  !last_finish -. started

let ablation_block_cow ~seed ~quick =
  let clone_counts = if quick then [ 1; 8; 32 ] else [ 1; 8; 32 ] in
  let rows =
    List.map
      (fun clones ->
        [
          string_of_int clones;
          Report.f2 (fileappend_cell ~seed ~quick ~block_cow:false ~clones);
          Report.f2 (fileappend_cell ~seed ~quick ~block_cow:true ~clones);
        ])
      clone_counts
  in
  [
    Report.make ~id:"abl-cow"
      ~title:"Ablation: whole-file vs block-level CoW (Fileappend timespan, s)"
      ~header:[ "clones"; "whole-file copy-up"; "block-level CoW" ]
      ~notes:
        [
          "block-level CoW (S9) writes only the appended megabyte instead \
           of re-copying the 2 GB lower file per clone";
        ]
      rows;
  ]
