open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus
open Danaus_workloads

type fls_system = D | K
type neighbor = No_neighbor | Rnd | Wbs | Ssb

type outcome = {
  fls_throughput : float;
  fls_latency : float;
  stolen_util_pct : float;
  neighbor_metric : float;
  lock_avg_wait : float;
  lock_avg_hold : float;
  metrics : Obs.sample list;
  spans : Obs.cspan list;
}

let gib n = n * 1024 * 1024 * 1024

let fls_params ~quick =
  (* the dataset keeps the paper's shape (5 GB spread over the files) so
     that background writeback stays continuously active; quick mode only
     shortens the run and thins the thread count *)
  if quick then { Fileserver.default_params with Fileserver.duration = 15.0 }
  else Fileserver.default_params

let duration_of ~quick = (fls_params ~quick).Fileserver.duration

let config_of = function D -> Config.d | K -> Config.k

let run ~seed ~quick ~fls_count ~system ~neighbor =
  let activated = if fls_count = 1 then 4 else 16 in
  let tb = Testbed.create ~seed ~activated () in
  let duration = duration_of ~quick in
  let fpars = fls_params ~quick in
  (* Fileserver pools 0..n-1; the neighbour takes the last activated pair *)
  let fls_pools = List.init fls_count (fun i -> Testbed.pool tb i) in
  let nb_pool = Testbed.pool tb ((activated / 2) - 1) in
  let containers =
    List.mapi
      (fun i pool ->
        ( pool,
          Container_engine.launch tb.Testbed.containers ~config:(config_of system)
            ~pool
            ~id:(Printf.sprintf "fls%d" i)
            ~cache_bytes:(gib 5) () ))
      fls_pools
  in
  (* phase A: prepopulate every Fileserver dataset concurrently *)
  let setup_done = ref false in
  Engine.spawn tb.Testbed.engine ~name:"setup" (fun () ->
      let wg = Waitgroup.create tb.Testbed.engine in
      List.iteri
        (fun i (pool, ct) ->
          Waitgroup.add wg;
          Engine.fork (fun () ->
              let ctx = Testbed.ctx tb ~pool ~seed:(100 + i) in
              Fileserver.prepopulate ctx ~view:ct.Container_engine.view fpars;
              Waitgroup.finish wg))
        containers;
      Waitgroup.wait wg;
      (* let the writeback settle before measuring *)
      Engine.sleep (Params.expire_interval +. 2.0);
      setup_done := true);
  Testbed.drive tb ~stop:(fun () -> !setup_done);
  Testbed.reset_metrics tb;
  (* phase B: measured run of every Fileserver next to the neighbour *)
  let fls_results = Array.make fls_count None in
  let rnd_result = ref None in
  let wbs_result = ref None in
  let ssb_result = ref None in
  let all_done = ref false in
  let started = Engine.now tb.Testbed.engine in
  Engine.spawn tb.Testbed.engine ~name:"measure" (fun () ->
      let wg = Waitgroup.create tb.Testbed.engine in
      List.iteri
        (fun i (pool, ct) ->
          Waitgroup.add wg;
          Engine.fork (fun () ->
              let ctx = Testbed.ctx tb ~pool ~seed:(200 + i) in
              fls_results.(i) <- Some (Fileserver.run ctx ~view:ct.Container_engine.view fpars);
              Waitgroup.finish wg))
        containers;
      (match neighbor with
      | No_neighbor -> ()
      | Rnd ->
          Waitgroup.add wg;
          Engine.fork (fun () ->
              let fs = Testbed.local_fs tb ~name:"ext4-rnd" in
              let ctx = Testbed.ctx tb ~pool:nb_pool ~seed:300 in
              rnd_result :=
                Some (Randomio.run ctx ~fs { Randomio.default_params with Randomio.duration });
              Waitgroup.finish wg)
      | Wbs ->
          Waitgroup.add wg;
          Engine.fork (fun () ->
              let fs = Testbed.local_fs tb ~name:"ext4-wbs" in
              let ctx = Testbed.ctx tb ~pool:nb_pool ~seed:301 in
              let p =
                if quick then
                  { Webserver.default_params with Webserver.files = 5000; threads = 16; duration }
                else { Webserver.default_params with Webserver.duration = duration }
              in
              wbs_result := Some (Webserver.run ctx ~fs p);
              Waitgroup.finish wg)
      | Ssb ->
          Waitgroup.add wg;
          Engine.fork (fun () ->
              let ctx = Testbed.ctx tb ~pool:nb_pool ~seed:302 in
              ssb_result :=
                Some (Sysbench.run ctx { Sysbench.default_params with Sysbench.duration });
              Waitgroup.finish wg));
      Waitgroup.wait wg;
      all_done := true);
  Testbed.drive tb ~stop:(fun () -> !all_done);
  let elapsed = Engine.now tb.Testbed.engine -. started in
  let fls =
    Array.to_list fls_results
    |> List.map (function Some r -> r | None -> failwith "missing FLS result")
  in
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  let fls_throughput = mean (List.map (fun r -> r.Fileserver.throughput_mbps) fls) in
  let fls_latency =
    mean (List.map (fun r -> Stats.mean r.Fileserver.stats.Workload.op_latency) fls)
  in
  (* how much of the neighbour's reservation everyone else consumed *)
  let nb_cores = Cgroup.cores nb_pool in
  let total = Cpu.busy_seconds tb.Testbed.cpu ~cores:nb_cores in
  let own =
    Cpu.busy_seconds_by tb.Testbed.cpu ~cores:nb_cores ~tenant:(Cgroup.name nb_pool)
  in
  let stolen_util_pct =
    if elapsed > 0.0 then 100.0 *. (total -. own) /. elapsed else 0.0
  in
  let neighbor_metric =
    match neighbor with
    | No_neighbor -> 0.0
    | Rnd -> (match !rnd_result with Some r -> r.Randomio.ops_per_sec | None -> 0.0)
    | Wbs -> (match !wbs_result with Some r -> r.Webserver.throughput_mbps | None -> 0.0)
    | Ssb ->
        (match !ssb_result with
        | Some r -> Stats.percentile r.Sysbench.latency 99.0
        | None -> 0.0)
  in
  let lock_avg_wait, lock_avg_hold, _ = Kernel.lock_request_stats tb.Testbed.kernel in
  {
    fls_throughput;
    fls_latency;
    stolen_util_pct;
    neighbor_metric;
    lock_avg_wait;
    lock_avg_hold;
    metrics = Obs.snapshot tb.Testbed.obs;
    spans = Obs.cspans tb.Testbed.obs;
  }

let table2 () =
  [
    Report.make ~id:"tab2" ~title:"Contention workloads (Table 2)"
      ~header:[ "Symbol"; "Description" ]
      [
        [ "FLS"; "Fileserver (Filebench) on Ceph" ];
        [ "RND"; "Random I/O with readahead (Stress-ng) on ext4/RAID0" ];
        [ "SSB"; "CPU benchmark (Sysbench)" ];
        [ "WBS"; "Webserver (Filebench) on ext4/RAID0" ];
        [ "1FLS/D"; "1x Fileserver on user-level Danaus/Ceph cluster" ];
        [ "7FLS/D"; "7x Fileserver on user-level Danaus/Ceph cluster" ];
        [ "1FLS/K"; "1x Fileserver on kernel CephFS/Ceph cluster" ];
        [ "7FLS/K"; "7x Fileserver on kernel CephFS/Ceph cluster" ];
        [ "X+Y"; "X next to Y, X=(1|7)FLS/(D|K), Y=(RND|SSB|WBS)" ];
      ];
  ]

(* ------------------------------------------------------------------ *)
(* Figure assembly *)

let label system count nb =
  let base = Printf.sprintf "%dFLS/%s" count (match system with D -> "D" | K -> "K") in
  match nb with
  | No_neighbor -> base
  | Rnd -> base ^ "+1RND"
  | Wbs -> base ^ "+1WBS"
  | Ssb -> base ^ "+1SSB"

let interference_figure ~id ~title ~seed ~quick ~systems ~nb ~nb_name ~nb_unit =
  let cells =
    List.concat_map
      (fun system ->
        List.concat_map
          (fun count ->
            List.map
              (fun neighbor -> (system, count, neighbor))
              [ No_neighbor; nb ])
          [ 1; 7 ])
      systems
  in
  let outcomes =
    List.map
      (fun ((system, count, neighbor) as cell) ->
        (cell, run ~seed ~quick ~fls_count:count ~system ~neighbor))
      cells
  in
  let rows =
    List.map
      (fun ((system, count, neighbor), o) ->
        [
          label system count neighbor;
          Report.mbps o.fls_throughput;
          Report.f1 o.stolen_util_pct;
          (if neighbor = No_neighbor then "-"
           else
             match nb with
             | Ssb -> Report.ms o.neighbor_metric
             | _ -> Report.f1 o.neighbor_metric);
          Printf.sprintf "%.1f" (o.lock_avg_wait *. 1e6);
          Printf.sprintf "%.1f" (o.lock_avg_hold *. 1e6);
        ])
      outcomes
  in
  (* each cell ran on its own testbed: merge the snapshots, prefixing
     every key with the cell's workload label *)
  let metrics =
    List.concat_map
      (fun ((system, count, neighbor), o) ->
        Obs.prefix_keys (label system count neighbor ^ ":") o.metrics)
      outcomes
  in
  let spans =
    Danaus_sim.Trace.merge
      (List.map
         (fun ((system, count, neighbor), o) ->
           (label system count neighbor ^ ":", o.spans))
         outcomes)
  in
  Report.make ~id ~title
    ~header:
      [
        "workload";
        "FLS MB/s";
        "stolen core util %";
        nb_name ^ " " ^ nb_unit;
        "lock wait us/req";
        "lock hold us/req";
      ]
    ~metrics ~spans rows

let fig1 ~seed ~quick =
  [
    interference_figure ~id:"fig1"
      ~title:"Fileserver collapse from kernel core and lock contention (K only)"
      ~seed ~quick ~systems:[ K ] ~nb:Rnd ~nb_name:"RND" ~nb_unit:"ops/s";
  ]

let fig6a ~seed ~quick =
  [
    interference_figure ~id:"fig6a" ~title:"Fileserver x RandomIO interference"
      ~seed ~quick ~systems:[ K; D ] ~nb:Rnd ~nb_name:"RND" ~nb_unit:"ops/s";
  ]

let fig6b ~seed ~quick =
  [
    interference_figure ~id:"fig6b" ~title:"Fileserver x Webserver interference"
      ~seed ~quick ~systems:[ K; D ] ~nb:Wbs ~nb_name:"WBS" ~nb_unit:"MB/s";
  ]

let fig6c ~seed ~quick =
  (* latency-oriented: 1 FLS instance only, as in the paper *)
  let outcomes =
    List.concat_map
      (fun system ->
        List.map
          (fun neighbor ->
            ((system, neighbor), run ~seed ~quick ~fls_count:1 ~system ~neighbor))
          [ No_neighbor; Ssb ])
      [ K; D ]
  in
  let rows =
    List.map
      (fun ((system, neighbor), o) ->
        [
          label system 1 neighbor;
          Report.ms o.fls_latency;
          (if neighbor = Ssb then Report.ms o.neighbor_metric else "-");
          Report.f1 o.stolen_util_pct;
        ])
      outcomes
  in
  let metrics =
    List.concat_map
      (fun ((system, neighbor), o) ->
        Obs.prefix_keys (label system 1 neighbor ^ ":") o.metrics)
      outcomes
  in
  let spans =
    Danaus_sim.Trace.merge
      (List.map
         (fun ((system, neighbor), o) -> (label system 1 neighbor ^ ":", o.spans))
         outcomes)
  in
  [
    Report.make ~id:"fig6c" ~title:"Fileserver x Sysbench latency interference"
      ~header:[ "workload"; "FLS mean latency"; "SSB p99 latency"; "stolen core util %" ]
      ~metrics ~spans rows;
  ]
