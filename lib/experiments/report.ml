open Danaus_sim

type t = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
  metrics : Obs.sample list;
  spans : Obs.cspan list;
  timeseries : Obs.Sampler.point list;
}

let make ~id ~title ~header ?(notes = []) ?(metrics = []) ?(spans = [])
    ?(timeseries = []) rows =
  { id; title; header; rows; notes; metrics; spans; timeseries }

let render t =
  let all = t.header :: t.rows in
  let cols =
    List.fold_left (fun acc row -> Stdlib.max acc (List.length row)) 0 all
  in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> Stdlib.max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = Option.value ~default:"" (List.nth_opt row c) in
           cell ^ String.make (Stdlib.max 0 (w - String.length cell)) ' ')
         widths)
    |> String.trim
    |> fun s -> s ^ "\n"
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "== %s: %s ==\n" t.id t.title);
  Buffer.add_string buf (render_row t.header);
  Buffer.add_string buf
    (String.make (List.fold_left ( + ) (2 * (cols - 1)) widths) '-' ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row)) t.rows;
  List.iter (fun n -> Buffer.add_string buf ("note: " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let ms v = Printf.sprintf "%.2fms" (v *. 1e3)
let mbps v = Printf.sprintf "%.1f" v
let ratio v = Printf.sprintf "%.1fx" v

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let row cells = String.concat "," (List.map csv_cell cells) ^ "\n" in
  String.concat "" (List.map row (t.header :: t.rows))

(* ------------------------------------------------------------------ *)
(* Structured metric export (hand-rolled JSON: no json dep in-tree). *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ json_escape s ^ "\""

(* %.12g is deterministic, compact and round-trips every value the
   simulator produces at the precision the tables report. *)
let jnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let sample_json (s : Obs.sample) =
  let base =
    Printf.sprintf "{\"layer\":%s,\"name\":%s,\"key\":%s" (jstr s.s_layer)
      (jstr s.s_name) (jstr s.s_key)
  in
  match s.s_value with
  | Obs.Counter v -> Printf.sprintf "%s,\"kind\":\"counter\",\"value\":%s}" base (jnum v)
  | Obs.Gauge v -> Printf.sprintf "%s,\"kind\":\"gauge\",\"value\":%s}" base (jnum v)
  | Obs.Histogram h ->
      Printf.sprintf
        "%s,\"kind\":\"histogram\",\"count\":%d,\"total\":%s,\"mean\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"max\":%s}"
        base h.Obs.h_count (jnum h.Obs.h_total) (jnum h.Obs.h_mean)
        (jnum h.Obs.h_p50) (jnum h.Obs.h_p95) (jnum h.Obs.h_p99)
        (jnum h.Obs.h_max)

let report_metrics_json t =
  Printf.sprintf "{\"id\":%s,\"title\":%s,\"metrics\":[%s]}" (jstr t.id)
    (jstr t.title)
    (String.concat "," (List.map sample_json t.metrics))

let metrics_json reports =
  "{\"reports\":[\n"
  ^ String.concat ",\n" (List.map report_metrics_json reports)
  ^ "\n]}\n"

let metrics_csv reports =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "report,layer,name,key,kind,value,count,mean,p50,p95,p99,max\n";
  List.iter
    (fun t ->
      List.iter
        (fun (s : Obs.sample) ->
          let cells =
            match s.s_value with
            | Obs.Counter v ->
                [ t.id; s.s_layer; s.s_name; s.s_key; "counter"; jnum v;
                  ""; ""; ""; ""; ""; "" ]
            | Obs.Gauge v ->
                [ t.id; s.s_layer; s.s_name; s.s_key; "gauge"; jnum v;
                  ""; ""; ""; ""; ""; "" ]
            | Obs.Histogram h ->
                [ t.id; s.s_layer; s.s_name; s.s_key; "histogram";
                  jnum h.Obs.h_total; string_of_int h.Obs.h_count;
                  jnum h.Obs.h_mean; jnum h.Obs.h_p50; jnum h.Obs.h_p95;
                  jnum h.Obs.h_p99; jnum h.Obs.h_max ]
          in
          Buffer.add_string buf
            (String.concat "," (List.map csv_cell cells) ^ "\n"))
        t.metrics)
    reports;
  Buffer.contents buf

(* Legacy flat trace export, derived from the causal spans: same shape
   as the pre-causal `--trace` output (name carries the key). *)
let span_json (cs : Obs.cspan) =
  let flat_name =
    if String.equal cs.Obs.cs_key "" then cs.Obs.cs_name
    else cs.Obs.cs_name ^ ":" ^ cs.Obs.cs_key
  in
  Printf.sprintf "{\"t\":%s,\"layer\":%s,\"name\":%s,\"dur\":%s}"
    (jnum cs.Obs.cs_start) (jstr cs.Obs.cs_layer) (jstr flat_name)
    (jnum cs.Obs.cs_dur)

let trace_json reports =
  let report_json t =
    Printf.sprintf "{\"id\":%s,\"spans\":[%s]}" (jstr t.id)
      (String.concat "," (List.map span_json t.spans))
  in
  "{\"reports\":[\n"
  ^ String.concat ",\n" (List.map report_json reports)
  ^ "\n]}\n"

(* ------------------------------------------------------------------ *)
(* Timeseries export (Obs.Sampler points): one series per report. *)

let point_json (p : Obs.Sampler.point) =
  Printf.sprintf "{\"t\":%s,\"samples\":[%s]}" (jnum p.Obs.Sampler.pt_time)
    (String.concat "," (List.map sample_json p.Obs.Sampler.pt_samples))

let timeseries_json reports =
  let report_json t =
    Printf.sprintf "{\"id\":%s,\"points\":[\n%s\n]}" (jstr t.id)
      (String.concat ",\n" (List.map point_json t.timeseries))
  in
  "{\"reports\":[\n"
  ^ String.concat ",\n" (List.map report_json reports)
  ^ "\n]}\n"
