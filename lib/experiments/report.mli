open Danaus_sim

(** Plain-text tables for the benchmark harness output and
    EXPERIMENTS.md, optionally carrying the structured per-layer
    metrics and trace spans behind the table. *)

type t = {
  id : string;  (** e.g. "fig6a" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
  metrics : Obs.sample list;  (** per-layer snapshot behind the rows *)
  spans : Obs.cspan list;  (** causal trace spans (when tracing) *)
  timeseries : Obs.Sampler.point list;  (** periodic counter/gauge samples *)
}

val make :
  id:string -> title:string -> header:string list -> ?notes:string list ->
  ?metrics:Obs.sample list -> ?spans:Obs.cspan list ->
  ?timeseries:Obs.Sampler.point list ->
  string list list -> t

(** Render as an aligned text table. *)
val render : t -> string

(** Render as CSV (header row first; cells quoted when needed). *)
val to_csv : t -> string

(** One JSON document covering the [metrics] of every report
    ([{"reports":[{"id";"title";"metrics":[...]}]}]). *)
val metrics_json : t list -> string

(** The same metrics as flat CSV
    ([report,layer,name,key,kind,value,count,mean,p50,p95,p99,max]). *)
val metrics_csv : t list -> string

(** One JSON document covering the trace [spans] of every report, in the
    legacy flat span shape (derived from the causal spans). *)
val trace_json : t list -> string

(** One JSON document covering the sampler [timeseries] of every report. *)
val timeseries_json : t list -> string

(** JSON atoms shared with other exporters ({!Trace_export}): quoted,
    escaped string / deterministic compact number. *)
val jstr : string -> string

val jnum : float -> string

(** Formatting helpers. *)
val f1 : float -> string

val f2 : float -> string

(** Milliseconds with 2 decimals. *)
val ms : float -> string

(** MB/s with one decimal. *)
val mbps : float -> string

(** Ratio like "3.7x". *)
val ratio : float -> string
