open Danaus
module Fault_plan = Danaus_faults.Fault_plan
module Check = Danaus_check.Check

(** Seeded property fuzzer (the [danaus-cli fuzz] command).

    Each seed expands deterministically into a small random scenario —
    testbed shape, per-pool workload mix, optional QoS and fault plan —
    which is executed with the invariant layer armed, then judged by
    metamorphic and analytic oracles:

    - {b repeat determinism}: running the same scenario twice in one
      process yields byte-identical observability dumps;
    - {b domain identity}: a spawned domain produces the same digest as
      the in-process run ([-j 1] vs [-j n] reproducibility);
    - {b duration monotonicity}: doubling the measured window of a
      fault-free, QoS-free scenario cannot decrease completed ops or
      bytes (the shorter run is a prefix of the longer one);
    - {b writer conservation}: a lone block-aligned sequential writer
      followed by [fsync] puts exactly [ops * op_bytes * replicas] bytes
      on the OSDs;
    - {b cached re-read}: re-scanning a file that fits the user-level
      cache pulls zero further bytes from the OSDs.

    Conservation-law violations recorded by {!Danaus_check.Check} during
    a seed's runs are attributed to that seed's report. *)

type pool_load =
  | Seq_write of { threads : int; file_mb : int }
  | Seq_read of { threads : int; file_mb : int }
  | Open_read of { rate : float; op_kb : int; files : int; write_frac : float }

type scenario = {
  sc_seed : int;
  sc_activated : int;
  sc_config : Config.t;
  sc_loads : pool_load list;
  sc_qos : bool;
  sc_faults : Fault_plan.plan;
      (** timings relative to the start of the measured phase *)
  sc_duration : float;
}

(** One line describing the scenario a seed expands to. *)
val describe : scenario -> string

(** The deterministic seed → scenario expansion. *)
val generate : quick:bool -> int -> scenario

type run_result = {
  rr_digest : string;  (** digest of the observability dump + summaries *)
  rr_ops : int;
  rr_bytes : float;
}

(** Execute a scenario on a fresh testbed.  [duration_scale] stretches
    the measured window (used by the monotonicity oracle). *)
val run_scenario : ?duration_scale:float -> scenario -> run_result

type oracle = { o_name : string; o_pass : bool; o_detail : string }

type seed_report = {
  sr_seed : int;
  sr_desc : string;
  sr_oracles : oracle list;
  sr_violations : Check.violation list;
      (** invariant violations newly recorded while this seed ran *)
}

val seed_passed : seed_report -> bool

(** Run every oracle for one seed.  Oracle exceptions (including strict
    [Check.Violation]) are caught and reported as failures, so a fuzz
    sweep always covers its whole seed range. *)
val run_seed : quick:bool -> int -> seed_report

(** [run_range ~quick ~lo ~hi ()] fuzzes seeds [lo..hi] inclusive,
    calling [progress] after each. *)
val run_range :
  ?progress:(seed_report -> unit) -> quick:bool -> lo:int -> hi:int -> unit ->
  seed_report list

(** JSON report over a sweep (the CI artifact). *)
val report_json : seed_report list -> string

(** One human-readable block per seed (failures get detail lines). *)
val render_report : seed_report -> string
