open Danaus_sim
open Danaus
open Danaus_qos
open Danaus_workloads

(* ------------------------------------------------------------------ *)
(* overload: offered-load sweep over one Danaus pool, with and without
   the qos pipeline.  An open loop offers multiples of the pool's
   saturation rate; goodput is ops completing within the SLA.  Without
   qos the queueing delay past the knee pushes nearly every op over the
   SLA (goodput collapses); with admission control the excess is shed at
   the entry point and the admitted ops keep finishing in time, so
   goodput stays at the knee. *)

let mib n = n * 1024 * 1024

(* Pool saturation for the 256 KiB-read op mix, established by probing a
   single pool (see the `overload` notes in EXPERIMENTS.md); the sweep
   offers multiples of it. *)
let knee_rate ~quick:_ = 6000.0

(* Each openload op is open + read + close through the view, and
   admission is charged per client call, so the bucket rate is the op
   knee times the calls per op. *)
let calls_per_op = 3.0

let op_params ~quick ~rate =
  {
    Openload.default_params with
    Openload.rate;
    duration = (if quick then 8.0 else 30.0);
    op_bytes = 256 * 1024;
    files = 200;
    threads = 8;
    sla = 0.5;
  }

let overload_qos ~quick =
  let rate = calls_per_op *. knee_rate ~quick in
  Container_engine.qos
    ~admission:
      (Admission.config ~burst:(0.25 *. rate) ~max_inflight:64 ~op_budget:0.5
         ~rate ())
    ~breaker:Breaker.default_config ~request_timeout:0.25 ()

let overload_cell ~seed ~quick ~use_qos ~mult =
  let tb = Testbed.create ~seed ~activated:4 () in
  let pool = Testbed.pool tb 0 in
  let qos = if use_qos then Some (overload_qos ~quick) else None in
  let ct =
    Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool
      ~id:"ovl" ~cache_bytes:(mib 4) ?qos ()
  in
  let p = op_params ~quick ~rate:(mult *. knee_rate ~quick) in
  let warmed = ref false in
  Engine.spawn tb.Testbed.engine (fun () ->
      let ctx = Testbed.ctx tb ~pool ~seed:5100 in
      (* populate through the raw instance so setup is not subject to
         admission control *)
      Openload.prepopulate ctx
        ~view:(fun ~thread:_ -> ct.Container_engine.instance)
        p;
      warmed := true);
  Testbed.drive tb ~stop:(fun () -> !warmed);
  Testbed.reset_metrics tb;
  let points = Testbed.start_sampler tb in
  let result = ref None in
  Engine.spawn tb.Testbed.engine (fun () ->
      let ctx = Testbed.ctx tb ~pool ~seed:5200 in
      result := Some (Openload.run ctx ~view:ct.Container_engine.view p));
  Testbed.drive tb ~stop:(fun () -> !result <> None);
  ( Option.get !result,
    Obs.snapshot tb.Testbed.obs,
    Obs.cspans tb.Testbed.obs,
    points () )

let overload ~seed ~quick =
  let mults = [ 0.5; 1.0; 1.5; 2.0 ] in
  let cells =
    List.concat_map
      (fun mult ->
        List.map
          (fun use_qos -> ((mult, use_qos), overload_cell ~seed ~quick ~use_qos ~mult))
          [ true; false ])
      mults
  in
  let get mult use_qos =
    let r, _, _, _ = List.assoc (mult, use_qos) cells in
    r
  in
  let cell_prefix (mult, use_qos) =
    Printf.sprintf "%s:x%.1f:" (if use_qos then "qos" else "raw") mult
  in
  let p99 (r : Openload.result) =
    if Stats.count r.Openload.latency = 0 then 0.0
    else Stats.percentile r.Openload.latency 99.0
  in
  let rows =
    List.map
      (fun mult ->
        let q = get mult true and n = get mult false in
        [
          Printf.sprintf "%.1fx" mult;
          Printf.sprintf "%.0f" (mult *. knee_rate ~quick);
          Printf.sprintf "%.0f" q.Openload.goodput_ops;
          Printf.sprintf "%d" q.Openload.shed;
          Report.ms (p99 q);
          Printf.sprintf "%.0f" n.Openload.goodput_ops;
          Report.ms (p99 n);
        ])
      mults
  in
  let peak_qos =
    List.fold_left
      (fun acc m -> Float.max acc (get m true).Openload.goodput_ops)
      0.0 mults
  in
  let at2 = (get 2.0 true).Openload.goodput_ops in
  let metrics =
    List.concat_map
      (fun (cell, (_, m, _, _)) -> Obs.prefix_keys (cell_prefix cell) m)
      cells
  in
  let spans =
    Danaus_sim.Trace.merge
      (List.map (fun (cell, (_, _, s, _)) -> (cell_prefix cell, s)) cells)
  in
  let timeseries =
    List.concat_map
      (fun (cell, (_, _, _, ts)) -> Obs.Sampler.prefix_keys (cell_prefix cell) ts)
      cells
  in
  [
    Report.make ~id:"overload"
      ~title:
        "Offered-load sweep on one Danaus pool: goodput (ops/s within 0.5 s \
         SLA) with and without overload protection"
      ~header:
        [
          "offered";
          "ops/s";
          "qos goodput";
          "qos shed";
          "qos p99";
          "raw goodput";
          "raw p99";
        ]
      ~notes:
        [
          Printf.sprintf
            "qos goodput at 2.0x is %.0f%% of its peak (%.0f of %.0f ops/s): \
             admission keeps the pool at the knee while shedding the excess"
            (if peak_qos > 0.0 then 100.0 *. at2 /. peak_qos else 0.0)
            at2 peak_qos;
          "raw (no qos): past the knee the queue grows without bound, every \
           op blows the SLA and goodput collapses";
        ]
      ~metrics ~spans ~timeseries rows;
  ]

(* ------------------------------------------------------------------ *)
(* noisy-neighbor: a victim Fileserver pool colocated with a pool driven
   past saturation by an open-loop writer.  Under D with qos the
   aggressor pool's admission controller sheds the excess before it
   reaches the shared backend, so the victim keeps its isolated
   throughput; under K/K and F/F the full offered load lands on the
   shared stack and the victim degrades. *)

(* The full Fileserver dataset keeps background writeback continuously
   active (as in the contention figures); quick mode only shortens the
   run. *)
let fls_params ~quick =
  if quick then { Fileserver.default_params with Fileserver.duration = 12.0 }
  else { Fileserver.default_params with Fileserver.duration = 40.0 }

(* Three aggressor pools, each offering 3000 mixed 1 MiB ops/s (half
   rewrites, half uncached reads): the aggregate backend demand (~9 GB/s
   offered) far exceeds the shared 2.5 GB/s link and the rewrite streams
   outrun the kernel writeback drain (~0.8 GB/s).  Under qos each
   aggressor pool is admitted at its provisioned contract (250 ops/s,
   0.25 GB/s), which keeps the aggregate inside the link. *)
let aggressor_pools = 3
let aggressor_contract = 250.0

let aggressor_qos =
  let rate = calls_per_op *. aggressor_contract in
  Container_engine.qos
    ~admission:
      (Admission.config ~burst:(0.25 *. rate) ~max_inflight:64 ~op_budget:0.5
         ~rate ())
    ~breaker:Breaker.default_config ~request_timeout:0.25 ()

let aggressor_params ~quick =
  {
    Openload.default_params with
    Openload.rate = 3000.0;
    duration = (if quick then 8.0 else 24.0);
    op_bytes = 1024 * 1024;
    files = 256;
    threads = 8;
    write_frac = 0.5;
    sla = 0.5;
  }

let neighbor_cell ~seed ~quick ~config ~use_qos ~colocated =
  let tb = Testbed.create ~seed ~activated:8 () in
  let victim_pool = Testbed.pool tb 0 in
  let victim =
    Container_engine.launch tb.Testbed.containers ~config ~pool:victim_pool
      ~id:"victim" ~cache_bytes:(mib 128) ()
  in
  let aggressors =
    if not colocated then []
    else
      List.init aggressor_pools (fun i ->
          let pool = Testbed.pool tb (1 + i) in
          let qos = if use_qos then Some aggressor_qos else None in
          ( pool,
            Container_engine.launch tb.Testbed.containers ~config ~pool
              ~id:(Printf.sprintf "aggr%d" i) ~cache_bytes:(mib 16) ?qos () ))
  in
  let fp = fls_params ~quick in
  let ap = aggressor_params ~quick in
  let warmed = ref false in
  Engine.spawn tb.Testbed.engine ~name:"setup" (fun () ->
      let ctx = Testbed.ctx tb ~pool:victim_pool ~seed:5300 in
      Fileserver.prepopulate ctx ~view:victim.Container_engine.view fp;
      List.iteri
        (fun i (pool, ct) ->
          let ctx = Testbed.ctx tb ~pool ~seed:(5400 + i) in
          Openload.prepopulate ctx
            ~view:(fun ~thread:_ -> ct.Container_engine.instance)
            ap)
        aggressors;
      (* let the writeback from the setup writes settle before measuring *)
      Engine.sleep (Params.expire_interval +. 2.0);
      warmed := true);
  Testbed.drive tb ~stop:(fun () -> !warmed);
  Testbed.reset_metrics tb;
  let points = Testbed.start_sampler tb in
  let victim_r = ref None in
  let aggressor_rs = Array.make aggressor_pools None in
  Engine.spawn tb.Testbed.engine (fun () ->
      let ctx = Testbed.ctx tb ~pool:victim_pool ~seed:5500 in
      victim_r := Some (Fileserver.run ctx ~view:victim.Container_engine.view fp));
  List.iteri
    (fun i (pool, ct) ->
      Engine.spawn tb.Testbed.engine (fun () ->
          let ctx = Testbed.ctx tb ~pool ~seed:(5600 + i) in
          aggressor_rs.(i) <- Some (Openload.run ctx ~view:ct.Container_engine.view ap)))
    aggressors;
  let aggressors_done () =
    List.for_all (fun i -> aggressor_rs.(i) <> None)
      (List.init (List.length aggressors) Fun.id)
  in
  Testbed.drive tb ~stop:(fun () -> !victim_r <> None && aggressors_done ());
  let agg =
    List.filter_map Fun.id (Array.to_list aggressor_rs)
    |> List.fold_left
         (fun (good, shed) (r : Openload.result) ->
           (good +. r.Openload.goodput_ops, shed + r.Openload.shed))
         (0.0, 0)
  in
  ( (Option.get !victim_r).Fileserver.throughput_mbps,
    (if colocated then Some agg else None),
    Obs.snapshot tb.Testbed.obs,
    Obs.cspans tb.Testbed.obs,
    points () )

let noisy_neighbor ~seed ~quick =
  let cells =
    [
      ("D+qos", Config.d, true);
      ("K/K", Config.kk, false);
      ("F/F", Config.ff, false);
    ]
  in
  let outcomes =
    List.map
      (fun (label, config, use_qos) ->
        let iso, _, iso_m, iso_s, iso_ts =
          neighbor_cell ~seed ~quick ~config ~use_qos ~colocated:false
        in
        let colo, agg, colo_m, colo_s, colo_ts =
          neighbor_cell ~seed ~quick ~config ~use_qos ~colocated:true
        in
        (label, iso, colo, agg, (iso_m, iso_s, iso_ts), (colo_m, colo_s, colo_ts)))
      cells
  in
  let rows =
    List.map
      (fun (label, iso, colo, agg, _, _) ->
        let retention = if iso > 0.0 then 100.0 *. colo /. iso else 0.0 in
        let agg_good, agg_shed =
          match agg with Some (good, shed) -> (good, shed) | None -> (0.0, 0)
        in
        [
          label;
          Report.mbps iso;
          Report.mbps colo;
          Printf.sprintf "%.0f%%" retention;
          Printf.sprintf "%.0f" agg_good;
          Printf.sprintf "%d" agg_shed;
        ])
      outcomes
  in
  let metrics =
    List.concat_map
      (fun (label, _, _, _, (iso_m, _, _), (colo_m, _, _)) ->
        Obs.prefix_keys (label ^ ":iso:") iso_m
        @ Obs.prefix_keys (label ^ ":colo:") colo_m)
      outcomes
  in
  let spans =
    Danaus_sim.Trace.merge
      (List.concat_map
         (fun (label, _, _, _, (_, iso_s, _), (_, colo_s, _)) ->
           [ (label ^ ":iso:", iso_s); (label ^ ":colo:", colo_s) ])
         outcomes)
  in
  let timeseries =
    List.concat_map
      (fun (label, _, _, _, (_, _, iso_ts), (_, _, colo_ts)) ->
        Obs.Sampler.prefix_keys (label ^ ":iso:") iso_ts
        @ Obs.Sampler.prefix_keys (label ^ ":colo:") colo_ts)
      outcomes
  in
  [
    Report.make ~id:"noisy-neighbor"
      ~title:
        "Victim Fileserver beside a pool driven to 2x saturation (MB/s and \
         retention of isolated throughput)"
      ~header:
        [ "config"; "isolated"; "colocated"; "retention"; "agg good/s"; "agg shed" ]
      ~notes:
        [
          "D+qos: the aggressor pool's admission controller sheds the excess \
           at the client entry point, so the victim keeps >=90% of its \
           isolated throughput";
          "K/K and F/F have no shedding: the aggressor's full offered load \
           lands on the shared stack and the victim pays for it";
        ]
      ~metrics ~spans ~timeseries rows;
  ]
