open Danaus_sim
open Danaus_kernel
open Danaus
open Danaus_workloads

let fig_dynamic ~seed ~quick =
  let window = if quick then 8.0 else 60.0 in
  let fls_params =
    {
      Fileserver.default_params with
      Fileserver.files = 300;
      mean_file_size = 1024 * 1024;
      threads = 16;
      duration = window;
    }
  in
  let tb = Testbed.create ~seed ~activated:4 () in
  let pool_a = Testbed.pool tb 0 in
  let pool_b = Testbed.pool tb 1 in
  let ct =
    Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool:pool_a
      ~id:"busy" ()
  in
  let phases = ref [] in
  let ssb_lent = ref None in
  let ssb_restored = ref None in
  let done_ = ref false in
  Engine.spawn tb.Testbed.engine (fun () ->
      let ctx = Testbed.ctx tb ~pool:pool_a ~seed:3100 in
      Fileserver.prepopulate ctx ~view:ct.Container_engine.view fls_params;
      let measure label =
        let r = Fileserver.run ctx ~view:ct.Container_engine.view fls_params in
        phases := (label, r.Fileserver.throughput_mbps) :: !phases
      in
      (* phase 1: static reservation, neighbour idle *)
      measure "static (2 cores, neighbour idle)";
      (* phase 2: lend the idle neighbour's cores to the busy pool *)
      Cgroup.set_cores pool_a [| 0; 1; 2; 3 |];
      measure "lent 2 extra cores";
      (* phase 3: the neighbour wakes while its cores are still lent *)
      Engine.fork (fun () ->
          let ctx_b = Testbed.ctx tb ~pool:pool_b ~seed:3200 in
          ssb_lent :=
            Some
              (Sysbench.run ctx_b
                 { Sysbench.default_params with Sysbench.duration = window }));
      measure "lent cores, neighbour active";
      (* phase 4: revoke the loan — isolation restored *)
      Cgroup.set_cores pool_a [| 0; 1 |];
      Engine.fork (fun () ->
          let ctx_b = Testbed.ctx tb ~pool:pool_b ~seed:3300 in
          ssb_restored :=
            Some
              (Sysbench.run ctx_b
                 { Sysbench.default_params with Sysbench.duration = window }));
      measure "reservation restored";
      done_ := true);
  Testbed.drive tb ~stop:(fun () -> !done_ && !ssb_restored <> None);
  let p99 = function
    | Some r -> Report.ms (Stats.percentile r.Sysbench.latency 99.0)
    | None -> "-"
  in
  [
    Report.make ~id:"dyn"
      ~title:"Dynamic core reallocation (Fileserver MB/s per phase)"
      ~header:[ "phase"; "FLS MB/s" ]
      ~notes:
        [
          Printf.sprintf
            "neighbour Sysbench p99 while its cores were lent: %s; after \
             the reservation was restored: %s"
            (p99 !ssb_lent) (p99 !ssb_restored);
          "Danaus service threads stay pinned to their original queues; \
           the lent cores serve the client and union work";
        ]
      (List.rev_map (fun (l, t) -> [ l; Report.mbps t ]) !phases);
  ]
