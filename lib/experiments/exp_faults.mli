(** Fault-injection experiments over the {!Danaus_faults} subsystem.

    - [fault_client]: a client-stack crash lands mid-Fileserver in a
      2-pool testbed.  Under D the supervisor restarts one pool's
      filesystem service and only that pool pays downtime and retries;
      under K/K and F/F the shared stack takes every colocated pool
      down — the paper's fault-containment argument (§5) as data.
    - [fault_osd]: one replica-holding OSD dies and later returns under
      osdmap semantics (monitor heartbeat, mark-down after grace,
      degraded-object re-sync).  Throughput dips while clients time out
      against the stale map, and recovers after the re-sync. *)

val fault_client : seed:int -> quick:bool -> Report.t list
val fault_osd : seed:int -> quick:bool -> Report.t list
