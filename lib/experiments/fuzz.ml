open Danaus_sim
open Danaus
open Danaus_ceph
open Danaus_client
open Danaus_workloads
module Fault_plan = Danaus_faults.Fault_plan
module Check = Danaus_check.Check

(* Seeded property fuzzer: each seed expands deterministically into a
   small scenario — testbed shape, workload mix per pool, optional fault
   plan and per-pool QoS — which is executed under whatever invariant
   mode the caller armed (the CLI's [fuzz] command and CI run Strict).
   On top of the always-on conservation laws, every seed is judged by
   metamorphic oracles: repeat determinism, in-process vs spawned-domain
   byte-identity, short-vs-long shape monotonicity, analytic
   closed-form totals for degenerate configurations, and eventual
   convergence with byte conservation of the recovery engine after a
   full OSD loss. *)

let mib n = n * 1024 * 1024
let kib n = n * 1024

type pool_load =
  | Seq_write of { threads : int; file_mb : int }
  | Seq_read of { threads : int; file_mb : int }
  | Open_read of { rate : float; op_kb : int; files : int; write_frac : float }

type scenario = {
  sc_seed : int;
  sc_activated : int;
  sc_config : Config.t;
  sc_loads : pool_load list;
  sc_qos : bool;
  sc_faults : Fault_plan.plan; (* timings relative to the measured phase *)
  sc_duration : float;
}

let describe_load = function
  | Seq_write { threads; file_mb } ->
      Printf.sprintf "seq-write(t%d,%dMiB)" threads file_mb
  | Seq_read { threads; file_mb } ->
      Printf.sprintf "seq-read(t%d,%dMiB)" threads file_mb
  | Open_read { rate; op_kb; files; write_frac } ->
      Printf.sprintf "open(%.0f/s,%dKiB,%df,w%.2f)" rate op_kb files write_frac

let describe sc =
  Printf.sprintf "%s cores=%d dur=%.1fs %s%s%s" sc.sc_config.Config.label
    sc.sc_activated sc.sc_duration
    (String.concat "+" (List.map describe_load sc.sc_loads))
    (if sc.sc_qos then " qos" else "")
    (if sc.sc_faults = [] then ""
     else
       Printf.sprintf " faults[%s]"
         (String.concat ","
            (List.map
               (fun e -> Fault_plan.action_name e.Fault_plan.action)
               sc.sc_faults)))

(* Fault plans are drawn as *relative* windows inside the measured
   phase; {!run_scenario} shifts them to absolute times once warm-up has
   finished. *)
let gen_faults rng ~duration =
  let w lo hi a = Fault_plan.between (lo *. duration) (hi *. duration) a in
  match Rng.int rng 5 with
  | 0 ->
      let i = Rng.int rng Params.osd_count in
      [
        w 0.2 0.4 (Fault_plan.Osd_down i); w 0.5 0.7 (Fault_plan.Osd_up i);
      ]
  | 1 ->
      [
        w 0.2 0.6
          (Fault_plan.Client_crash { pool = "pool0"; restart_after = 0.4 });
      ]
  | 2 ->
      [
        w 0.2 0.4 (Fault_plan.Link_degrade { node = "client"; factor = 4.0 });
        w 0.6 0.8 (Fault_plan.Link_restore "client");
      ]
  | 3 ->
      (* full OSD loss mid-run: kill, swap in a blank replacement, then
         force the map up so degraded serving and backfill overlap the
         tail of the measured window (runs on a replicas=2 testbed) *)
      let i = Rng.int rng Params.osd_count in
      [
        w 0.15 0.25 (Fault_plan.Osd_down i);
        w 0.4 0.5 (Fault_plan.Osd_replace i);
        w 0.6 0.7 (Fault_plan.Mark_up i);
      ]
  | _ -> [ w 0.3 0.6 (Fault_plan.Host_crash { restart_after = 0.4 }) ]

let generate ~quick seed =
  let rng = Rng.create (0xF0220 + (seed * 7919)) in
  let duration = if quick then 1.5 else 4.0 in
  let activated = Rng.pick rng [| 2; 4 |] in
  let config = Rng.pick rng (Array.of_list Config.all) in
  let pools = 1 + Rng.int rng 2 in
  let load _ =
    match Rng.int rng 3 with
    | 0 -> Seq_write { threads = 1 + Rng.int rng 3; file_mb = 4 + Rng.int rng 9 }
    | 1 -> Seq_read { threads = 1 + Rng.int rng 3; file_mb = 4 + Rng.int rng 9 }
    | _ ->
        Open_read
          {
            rate = 40.0 +. (20.0 *. float_of_int (Rng.int rng 8));
            op_kb = 64 * (1 + Rng.int rng 3);
            files = 16 + Rng.int rng 48;
            write_frac = (if Rng.int rng 2 = 0 then 0.0 else 0.25);
          }
  in
  let loads = List.init pools load in
  let qos = Rng.float rng < 0.3 in
  let faults = if Rng.float rng < 0.35 then gen_faults rng ~duration else [] in
  {
    sc_seed = seed;
    sc_activated = activated;
    sc_config = config;
    sc_loads = loads;
    sc_qos = qos;
    sc_faults = faults;
    sc_duration = duration;
  }

(* ------------------------------------------------------------------ *)
(* Scenario execution *)

type run_result = { rr_digest : string; rr_ops : int; rr_bytes : float }

let fuzz_qos () =
  Container_engine.qos
    ~admission:
      (Danaus_qos.Admission.config ~burst:64.0 ~max_inflight:32 ~op_budget:0.5
         ~rate:2000.0 ())
    ~breaker:Danaus_qos.Breaker.default_config ~request_timeout:0.25 ()

let seq_params ~duration ~threads ~file_mb i =
  {
    Seqio.file_size = mib file_mb;
    threads;
    duration;
    io_chunk = mib 1;
    path = Printf.sprintf "/fz%d/stream" i;
  }

let open_params ~duration ~rate ~op_kb ~files ~write_frac i =
  {
    Openload.rate;
    duration;
    op_bytes = kib op_kb;
    files;
    threads = 4;
    dir = Printf.sprintf "/fz%d/ol" i;
    sla = 0.5;
    write_frac;
  }

let shift_timing t0 = function
  | Fault_plan.At t -> Fault_plan.At (t0 +. t)
  | Fault_plan.Between (a, b) -> Fault_plan.Between (t0 +. a, t0 +. b)

(* [duration_scale] stretches the measured window (the monotonicity
   oracle compares 1x against 2x); everything else, warm-up included, is
   byte-identical between the two runs. *)
let run_scenario ?(duration_scale = 1.0) sc =
  let fault_is p =
    List.exists (fun e -> p e.Fault_plan.action) sc.sc_faults
  in
  (* a replaced OSD loses its objects: those plans run on a replicated
     cluster so backfill has survivors to read from *)
  let has_replace =
    fault_is (function
      | Fault_plan.Osd_replace _ | Fault_plan.Mark_up _ -> true
      | _ -> false)
  in
  let replicas = if has_replace then 2 else Params.replicas in
  let tb =
    Testbed.create ~seed:sc.sc_seed ~activated:sc.sc_activated ~replicas ()
  in
  let duration = sc.sc_duration *. duration_scale in
  let pools =
    List.mapi
      (fun i load ->
        let pool = Testbed.pool tb i in
        (* QoS only wraps open-loop pools: the closed-loop streamers
           treat a shed op as a hard error, while Openload classifies
           [Rejected] as shed load *)
        let qos =
          match (sc.sc_qos, load) with
          | true, Open_read _ -> Some (fuzz_qos ())
          | _ -> None
        in
        let ct =
          Container_engine.launch tb.Testbed.containers ~config:sc.sc_config
            ~pool
            ~id:(Printf.sprintf "fz%d" i)
            ~cache_bytes:(mib 8) ?qos ()
        in
        (i, load, pool, ct))
      sc.sc_loads
  in
  if has_replace then
    Cluster.enable_monitor ~recovery:(Recovery.throttled ())
      tb.Testbed.cluster
  else if
    fault_is (function
      | Fault_plan.Osd_down _ | Fault_plan.Osd_up _ -> true
      | _ -> false)
  then Cluster.enable_monitor tb.Testbed.cluster;
  let warmed = ref 0 in
  let want = List.length pools in
  List.iter
    (fun (i, load, pool, ct) ->
      Engine.spawn tb.Testbed.engine
        ~name:(Printf.sprintf "fz-setup%d" i)
        (fun () ->
          let ctx = Testbed.ctx tb ~pool ~seed:(9000 + i) in
          (match load with
          | Seq_write { threads; file_mb } | Seq_read { threads; file_mb } ->
              Seqio.prepopulate ctx ~view:ct.Container_engine.view
                (seq_params ~duration ~threads ~file_mb i)
          | Open_read { rate; op_kb; files; write_frac } ->
              Openload.prepopulate ctx ~view:ct.Container_engine.view
                (open_params ~duration ~rate ~op_kb ~files ~write_frac i));
          incr warmed))
    pools;
  Testbed.drive tb ~stop:(fun () -> !warmed = want);
  Testbed.reset_metrics tb;
  let t0 = Engine.now tb.Testbed.engine in
  if sc.sc_faults <> [] then
    Testbed.inject tb
      ~plan:
        (List.map
           (fun e ->
             { e with Fault_plan.timing = shift_timing t0 e.Fault_plan.timing })
           sc.sc_faults);
  let summaries = Array.make want None in
  List.iter
    (fun (i, load, pool, ct) ->
      Engine.spawn tb.Testbed.engine
        ~name:(Printf.sprintf "fz-run%d" i)
        (fun () ->
          let ctx = Testbed.ctx tb ~pool ~seed:(9100 + i) in
          let summary =
            match load with
            | Seq_write { threads; file_mb } ->
                let r =
                  Seqio.run_write ctx ~view:ct.Container_engine.view
                    (seq_params ~duration ~threads ~file_mb i)
                in
                ( r.Seqio.stats.Workload.ops,
                  r.Seqio.stats.Workload.bytes_read
                  +. r.Seqio.stats.Workload.bytes_written,
                  Printf.sprintf "pool%d seqw ops=%d written=%.0f" i
                    r.Seqio.stats.Workload.ops
                    r.Seqio.stats.Workload.bytes_written )
            | Seq_read { threads; file_mb } ->
                let r =
                  Seqio.run_read ctx ~view:ct.Container_engine.view
                    (seq_params ~duration ~threads ~file_mb i)
                in
                ( r.Seqio.stats.Workload.ops,
                  r.Seqio.stats.Workload.bytes_read
                  +. r.Seqio.stats.Workload.bytes_written,
                  Printf.sprintf "pool%d seqr ops=%d read=%.0f" i
                    r.Seqio.stats.Workload.ops
                    r.Seqio.stats.Workload.bytes_read )
            | Open_read { rate; op_kb; files; write_frac } ->
                let r =
                  Openload.run ctx ~view:ct.Container_engine.view
                    (open_params ~duration ~rate ~op_kb ~files ~write_frac i)
                in
                ( r.Openload.completed,
                  float_of_int (r.Openload.completed * kib op_kb),
                  Printf.sprintf
                    "pool%d open offered=%d completed=%d good=%d shed=%d \
                     failed=%d"
                    i r.Openload.offered r.Openload.completed r.Openload.good
                    r.Openload.shed r.Openload.failed )
          in
          summaries.(i) <- Some summary))
    pools;
  Testbed.drive tb ~stop:(fun () ->
      Array.for_all (fun s -> s <> None) summaries);
  let ops = ref 0 and bytes = ref 0.0 in
  let buf = Buffer.create 256 in
  Array.iter
    (fun s ->
      let o, b, line = Option.get s in
      ops := !ops + o;
      bytes := !bytes +. b;
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    summaries;
  let digest =
    Digest.to_hex
      (Digest.string (Obs.dump tb.Testbed.obs ^ Buffer.contents buf))
  in
  { rr_digest = digest; rr_ops = !ops; rr_bytes = !bytes }

(* ------------------------------------------------------------------ *)
(* Analytic closed forms for degenerate configurations *)

let must_ok what = function
  | Ok v -> v
  | Error e ->
      failwith (Printf.sprintf "%s: %s" what (Client_intf.error_to_string e))

let osd_written tb =
  Array.fold_left
    (fun a o -> a +. Osd.bytes_written o)
    0.0
    (Cluster.osds tb.Testbed.cluster)

let osd_read tb =
  Array.fold_left
    (fun a o -> a +. Osd.bytes_read o)
    0.0
    (Cluster.osds tb.Testbed.cluster)

(* A single closed-loop writer on an otherwise idle testbed: after
   fsync, the cluster must hold exactly [ops * op_bytes * replicas]
   bytes more than before — block-aligned sequential writes, written
   once, flushed once, replicated [replicas] times, nothing else
   running.  Any deviation means bytes were lost, duplicated or
   misattributed somewhere between the view and the OSDs. *)
let writer_conservation ~seed =
  let rng = Rng.create (0xA11C + (seed * 131)) in
  let ops = 8 + Rng.int rng 24 in
  let op_bytes = kib 64 * (1 + Rng.int rng 4) in
  let config = if Rng.int rng 2 = 0 then Config.d else Config.k in
  let tb = Testbed.create ~seed ~activated:2 () in
  let pool = Testbed.pool tb 0 in
  let ct =
    Container_engine.launch tb.Testbed.containers ~config ~pool ~id:"law"
      ~cache_bytes:(mib 64) ()
  in
  let before = osd_written tb in
  let done_ = ref false in
  Engine.spawn tb.Testbed.engine ~name:"law-writer" (fun () ->
      let view = ct.Container_engine.view ~thread:0 in
      must_ok "mkdir" (view.Client_intf.mkdir_p ~pool "/law");
      let fd =
        must_ok "open"
          (view.Client_intf.open_file ~pool "/law/file0" Client_intf.flags_wo)
      in
      for i = 0 to ops - 1 do
        must_ok "write"
          (view.Client_intf.write ~pool fd ~off:(i * op_bytes) ~len:op_bytes)
      done;
      must_ok "fsync" (view.Client_intf.fsync ~pool fd);
      view.Client_intf.close ~pool fd;
      done_ := true);
  Testbed.drive tb ~stop:(fun () -> !done_);
  let wrote = osd_written tb -. before in
  let expected = float_of_int (ops * op_bytes * Params.replicas) in
  ( wrote = expected,
    Printf.sprintf "%s: %d x %d B through %s -> %.0f on OSDs, expected %.0f"
      "writer_conservation" ops op_bytes config.Config.label wrote expected )

(* A file that fits the user-level cache with room to spare: the second
   whole-file read must hit the cache for every byte — zero new OSD
   reads.  Degenerate "infinite cache" configuration of Config.d. *)
let cached_reread ~seed =
  let rng = Rng.create (0xCAC4E + (seed * 257)) in
  let file_bytes = mib (2 + Rng.int rng 6) in
  let chunk = mib 1 in
  let tb = Testbed.create ~seed ~activated:2 () in
  let pool = Testbed.pool tb 0 in
  let ct =
    Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool
      ~id:"law" ~cache_bytes:(mib 64) ()
  in
  let warm_reads = ref 0.0 in
  let done_ = ref false in
  Engine.spawn tb.Testbed.engine ~name:"law-reader" (fun () ->
      let view = ct.Container_engine.view ~thread:0 in
      must_ok "mkdir" (view.Client_intf.mkdir_p ~pool "/law");
      let fd =
        must_ok "open"
          (view.Client_intf.open_file ~pool "/law/big" Client_intf.flags_wo)
      in
      Workload.chunked ~chunk ~total:file_bytes (fun ~off ~len ->
          must_ok "write" (view.Client_intf.write ~pool fd ~off ~len));
      must_ok "fsync" (view.Client_intf.fsync ~pool fd);
      view.Client_intf.close ~pool fd;
      let fd =
        must_ok "reopen"
          (view.Client_intf.open_file ~pool "/law/big" Client_intf.flags_ro)
      in
      (* first scan: allowed to miss; it fills the cache *)
      Workload.chunked ~chunk ~total:file_bytes (fun ~off ~len ->
          ignore
            (must_ok "read1" (Client_intf.read_exact view ~pool fd ~off ~len)));
      warm_reads := osd_read tb;
      (* second scan: every byte must come from the user-level cache *)
      Workload.chunked ~chunk ~total:file_bytes (fun ~off ~len ->
          ignore
            (must_ok "read2" (Client_intf.read_exact view ~pool fd ~off ~len)));
      view.Client_intf.close ~pool fd;
      done_ := true);
  Testbed.drive tb ~stop:(fun () -> !done_);
  let cold = osd_read tb -. !warm_reads in
  ( cold = 0.0,
    Printf.sprintf
      "cached_reread: second scan of %d B pulled %.0f B from the OSDs \
       (expected 0)"
      file_bytes cold )

(* Full OSD loss on a replicated mini-cluster: recovery must converge
   (degraded gauge back to zero, osdmap up) with exact byte
   conservation — every byte read from survivors is written to the
   replacement, and the replacement's disk (wiped at swap time) holds
   exactly the recovered bytes.  Eventual convergence is the liveness
   half of the self-healing contract; conservation is the safety half. *)
let recovery_convergence ~seed =
  let rng = Rng.create (0x4EC0 + (seed * 613)) in
  let len = mib (4 * (1 + Rng.int rng 3)) in
  let tb = Testbed.create ~seed ~activated:2 ~replicas:2 () in
  let cluster = tb.Testbed.cluster in
  Cluster.enable_monitor ~heartbeat:0.1 ~grace:0.3 ~op_timeout:0.05
    ~recovery:(Recovery.throttled ()) cluster;
  let osds = Cluster.osds cluster in
  let victim = ref 0 in
  let converged = ref false in
  let done_ = ref false in
  Engine.spawn tb.Testbed.engine ~name:"law-recovery" (fun () ->
      (match Cluster.write_range cluster ~ino:77 ~off:0 ~len with
      | Ok () -> ()
      | Error _ -> failwith "seed write failed");
      let obj =
        Striper.object_of ~object_size:Params.object_size ~ino:77 ~off:0
      in
      let v =
        List.hd (Crush.place ~osds:(Array.length osds) ~replicas:2 obj)
      in
      victim := v;
      Osd.set_up osds.(v) false;
      Engine.sleep 0.6;
      (* a write during the outage lands in the missed-write log; the
         subsequent replacement supersedes it with a full backfill *)
      (match Cluster.write_range cluster ~ino:77 ~off:0 ~len with
      | Ok () -> ()
      | Error _ -> failwith "degraded write failed");
      Cluster.replace_osd cluster v;
      let spins = ref 0 in
      while
        (Cluster.degraded_now cluster > 0
        || Cluster.recovering cluster v
        || not (Cluster.monitor_sees_up cluster v))
        && !spins < 5000
      do
        incr spins;
        Engine.sleep 0.1
      done;
      converged := !spins < 5000;
      done_ := true);
  Testbed.drive tb ~stop:(fun () -> !done_);
  let v = !victim in
  let sum name = Obs.sum tb.Testbed.obs ~layer:"ceph" ~name () in
  let read_b = sum "recovery_read_bytes" in
  let recov_b = sum "recovered_bytes" in
  let on_disk = Osd.bytes_written osds.(v) in
  ( !converged
    && Cluster.degraded_now cluster = 0
    && read_b = recov_b && on_disk = recov_b
    && recov_b >= float_of_int Params.object_size,
    Printf.sprintf
      "recovery_convergence: lost osd%d under %d B, read %.0f / recovered \
       %.0f / on replacement %.0f, degraded_now %d"
      v len read_b recov_b on_disk
      (Cluster.degraded_now cluster) )

(* ------------------------------------------------------------------ *)
(* Per-seed oracle harness *)

type oracle = { o_name : string; o_pass : bool; o_detail : string }

type seed_report = {
  sr_seed : int;
  sr_desc : string;
  sr_oracles : oracle list;
  sr_violations : Check.violation list; (* new violations during this seed *)
}

let seed_passed r =
  r.sr_violations = [] && List.for_all (fun o -> o.o_pass) r.sr_oracles

let guard name f =
  match f () with
  | pass, detail -> { o_name = name; o_pass = pass; o_detail = detail }
  | exception Check.Violation v ->
      {
        o_name = name;
        o_pass = false;
        o_detail =
          Printf.sprintf "invariant violation in %s/%s: %s" v.Check.v_layer
            v.Check.v_what v.Check.v_detail;
      }
  | exception e ->
      { o_name = name; o_pass = false; o_detail = Printexc.to_string e }

let run_seed ~quick seed =
  let sc = generate ~quick seed in
  let before = Check.violation_count () in
  let base = ref None in
  let oracles =
    [
      guard "repeat_determinism" (fun () ->
          let r1 = run_scenario sc in
          base := Some r1;
          let r2 = run_scenario sc in
          ( r1.rr_digest = r2.rr_digest,
            Printf.sprintf "digests %s / %s" r1.rr_digest r2.rr_digest ));
      guard "domain_identity" (fun () ->
          match !base with
          | None -> (true, "skipped: base run failed")
          | Some r1 ->
              let d = Domain.spawn (fun () -> run_scenario sc) in
              let r3 = Domain.join d in
              ( r1.rr_digest = r3.rr_digest,
                Printf.sprintf "in-process %s, spawned domain %s" r1.rr_digest
                  r3.rr_digest ));
    ]
    @ (if sc.sc_faults = [] && not sc.sc_qos then
         [
           guard "duration_monotonicity" (fun () ->
               match !base with
               | None -> (true, "skipped: base run failed")
               | Some r1 ->
                   let r2 = run_scenario ~duration_scale:2.0 sc in
                   ( r2.rr_ops >= r1.rr_ops && r2.rr_bytes >= r1.rr_bytes,
                     Printf.sprintf "1x: %d ops / %.0f B, 2x: %d ops / %.0f B"
                       r1.rr_ops r1.rr_bytes r2.rr_ops r2.rr_bytes ));
         ]
       else [])
    @ [
        guard "writer_conservation" (fun () -> writer_conservation ~seed);
        guard "cached_reread" (fun () -> cached_reread ~seed);
        guard "recovery_convergence" (fun () -> recovery_convergence ~seed);
      ]
  in
  let vs = Check.violations () in
  let fresh = List.filteri (fun i _ -> i >= before) vs in
  {
    sr_seed = seed;
    sr_desc = describe sc;
    sr_oracles = oracles;
    sr_violations = fresh;
  }

let run_range ?(progress = fun _ -> ()) ~quick ~lo ~hi () =
  List.init
    (hi - lo + 1)
    (fun i ->
      let r = run_seed ~quick (lo + i) in
      progress r;
      r)

(* ------------------------------------------------------------------ *)
(* Reports *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report_json reports =
  let buf = Buffer.create 4096 in
  let fails = List.filter (fun r -> not (seed_passed r)) reports in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"seeds\": %d,\n  \"failed\": %d,\n  \"violations\": %d,\n  \
        \"results\": [\n"
       (List.length reports) (List.length fails)
       (List.fold_left
          (fun a r -> a + List.length r.sr_violations)
          0 reports));
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"seed\": %d, \"ok\": %b, \"scenario\": \"%s\", \"oracles\": \
            [%s], \"violations\": [%s]}%s\n"
           r.sr_seed (seed_passed r) (json_escape r.sr_desc)
           (String.concat ", "
              (List.map
                 (fun o ->
                   Printf.sprintf
                     "{\"name\": \"%s\", \"pass\": %b, \"detail\": \"%s\"}"
                     (json_escape o.o_name) o.o_pass (json_escape o.o_detail))
                 r.sr_oracles))
           (String.concat ", "
              (List.map
                 (fun v ->
                   Printf.sprintf
                     "{\"layer\": \"%s\", \"what\": \"%s\", \"detail\": \
                      \"%s\"}"
                     (json_escape v.Check.v_layer) (json_escape v.Check.v_what)
                     (json_escape v.Check.v_detail))
                 r.sr_violations))
           (if i = List.length reports - 1 then "" else ",")))
    reports;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let render_report r =
  let status = if seed_passed r then "ok  " else "FAIL" in
  let lines =
    List.filter_map
      (fun o ->
        if o.o_pass then None
        else Some (Printf.sprintf "    oracle %s: %s" o.o_name o.o_detail))
      r.sr_oracles
    @ List.map
        (fun v ->
          Printf.sprintf "    violation %s/%s: %s" v.Check.v_layer
            v.Check.v_what v.Check.v_detail)
        r.sr_violations
  in
  Printf.sprintf "%s seed %-4d %s%s" status r.sr_seed r.sr_desc
    (if lines = [] then "" else "\n" ^ String.concat "\n" lines)
