(** Dynamic reallocation of underutilised resources (§9 future work).

    A Fileserver pool runs next to an idle neighbour; the engine grants
    the neighbour's cores to the busy pool and later revokes them when
    the neighbour wakes up.  Shows both the utilisation win and the
    isolation price of lending reserved cores. *)

val fig_dynamic : seed:int -> quick:bool -> Report.t list
