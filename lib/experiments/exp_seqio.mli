(** Sequential I/O scaleout (Fig. 9): Filebench Seqwrite / Seqread at 1-32
    pools over D, F and K, with the client-side I/O-wait CPU that exposes
    the kernel client's blocking behaviour. *)

val fig9 : seed:int -> quick:bool -> Report.t list
