open Danaus_sim
open Danaus_kernel
open Danaus_client
open Danaus
open Danaus_workloads

let mib n = n * 1024 * 1024

(* A two-machine Multihost world; both hosts use the same pool/container
   identity, so the writable branch path matches and the destination
   sees the source's state. *)
type world = {
  mh : Multihost.t;
  pool_a : Cgroup.t;
  pool_b : Cgroup.t;
}

let make_world ~seed () =
  {
    mh = Multihost.create ~hosts:2 ~seed ();
    pool_a = Cgroup.create ~name:"tenant" ~cores:[| 0; 1 |] ~mem_limit:(mib 8192);
    pool_b = Cgroup.create ~name:"tenant" ~cores:[| 0; 1 |] ~mem_limit:(mib 8192);
  }

let host_a w = (Multihost.host w.mh 0).Multihost.h_containers
let host_b w = (Multihost.host w.mh 1).Multihost.h_containers

(* both hosts' startup scripts draw compute bursts on host A's CPU, as
   the historical world did (the cost model charges the pool either
   way) *)
let world_ctx w ~pool ~seed = Multihost.ctx w.mh ~host:0 ~pool ~seed
let startup_params = Startup.default_params

(* Boot the container on host A and write [state_mib] of private state
   (logs, caches) into its writable branch. *)
let boot_and_dirty w ct ~state_mib ~pool =
  let ctx = world_ctx w ~pool ~seed:11 in
  Startup.start_container ctx
    ~view:(ct.Container_engine.view ~thread:1)
    ~legacy:ct.Container_engine.legacy startup_params;
  let v = ct.Container_engine.view ~thread:1 in
  let fd =
    Workload.exn_on_error "state open"
      (v.Client_intf.open_file ~pool "/var/cache/state" Client_intf.flags_wo)
  in
  Workload.chunked ~chunk:(mib 1) ~total:(mib state_mib) (fun ~off ~len ->
      Workload.exn_on_error "state write" (v.Client_intf.write ~pool fd ~off ~len));
  Workload.exn_on_error "state fsync" (v.Client_intf.fsync ~pool fd);
  v.Client_intf.close ~pool fd

let restart_on w ~seed ct =
  let ctx = world_ctx w ~pool:w.pool_b ~seed in
  Startup.start_container ctx
    ~view:(ct.Container_engine.view ~thread:1)
    ~legacy:ct.Container_engine.legacy startup_params

let elapsed = function
  | Ok m -> m.Container_engine.mg_elapsed
  | Error e -> failwith e

(* Shared-filesystem migration: relaunch on B and restart the service;
   its root (image + private state) is already reachable. *)
let migrate_shared w ~state_mib =
  let ct_a =
    Container_engine.launch (host_a w) ~config:Config.d ~pool:w.pool_a ~id:"web"
      ~image:"lighttpd" ()
  in
  boot_and_dirty w ct_a ~state_mib ~pool:w.pool_a;
  (* destination: same id under the same pool name = same root subtree;
     the private state must be visible on B at full size *)
  elapsed
    (Container_engine.migrate_pool (host_b w) ~src:ct_a ~dst_pool:w.pool_b
       ~image:"lighttpd"
       ~after_launch:(restart_on w ~seed:12)
       ~strategy:(`Shared [ ("/var/cache/state", mib state_mib) ])
       ())

(* Copy-based baseline: the destination first copies the whole root
   (image + state) into a fresh subtree, then starts. *)
let migrate_copy w ~state_mib =
  let ct_a =
    Container_engine.launch (host_a w) ~config:Config.d ~pool:w.pool_a ~id:"webc"
      ~image:"lighttpd" ()
  in
  boot_and_dirty w ct_a ~state_mib ~pool:w.pool_a;
  elapsed
    (Container_engine.migrate_pool (host_b w) ~src:ct_a ~dst_pool:w.pool_b
       ~dst_id:"webc-copy"
       ~after_launch:(restart_on w ~seed:13)
       ~strategy:
         (`Copy
            (Startup.image_files startup_params
            @ [ ("/var/cache/state", mib state_mib) ]))
       ())

let fig_migration ~seed ~quick =
  let sizes = if quick then [ 64; 256 ] else [ 64; 256; 1024 ] in
  let rows =
    List.map
      (fun state_mib ->
        let cell f =
          let w = make_world ~seed () in
          Container_engine.install_image (host_a w) ~name:"lighttpd"
            ~files:(Startup.image_files startup_params);
          let result = ref None in
          Engine.spawn w.mh.Multihost.engine (fun () ->
              result := Some (f w ~state_mib));
          (* budget scales with the state being booted, dirtied, and
             copied (plus slack for startup scripts), instead of the
             old fixed 10 000 s wall *)
          let limit =
            (if quick then 200.0 else 500.0) +. (2.0 *. float_of_int state_mib)
          in
          Multihost.drive ~limit w.mh ~stop:(fun () -> !result <> None);
          Option.get !result
        in
        [
          string_of_int state_mib;
          Report.f2 (cell migrate_shared);
          Report.f2 (cell migrate_copy);
        ])
      sizes
  in
  [
    Report.make ~id:"mig" ~title:"Container migration between hosts (s)"
      ~header:[ "private state MiB"; "shared-FS relaunch"; "copy-based" ]
      ~notes:
        [
          "shared-FS migration never copies the root: the destination \
           host mounts the same branches and pages state in on demand \
           (S9 / Wharf-style sharing)";
        ]
      rows;
  ]
