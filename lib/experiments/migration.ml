open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_ceph
open Danaus_client
open Danaus
open Danaus_workloads

let mib n = n * 1024 * 1024

(* A world with two client machines attached to one cluster. *)
type world = {
  engine : Engine.t;
  host_a : Container_engine.t;
  host_b : Container_engine.t;
  pool_a : Cgroup.t;
  pool_b : Cgroup.t;
  cpu_a : Cpu.t;
  w_seed : int;
}

let make_world ~seed () =
  let engine = Engine.create () in
  let topology = Topology.paper_machine () in
  let net = Net.create engine in
  let server_node =
    Net.add_node net ~name:"server" ~bandwidth:Params.net_bandwidth
      ~latency:Params.net_latency
  in
  let osds =
    Array.init Params.osd_count (fun i ->
        let mk kind =
          Disk.create engine
            ~name:(Printf.sprintf "osd%d-%s" i kind)
            ~bandwidth:Params.osd_disk_bandwidth ~latency:5e-6 ~seek:0.0
        in
        Osd.create engine
          ~name:(Printf.sprintf "osd%d" i)
          ~data:(mk "data") ~journal:(mk "journal")
          ~concurrency:Params.osd_concurrency ~op_cost:Params.osd_op_cost
          ~cpu_per_byte:Params.osd_cpu_per_byte)
  in
  let mds =
    Mds.create engine ~concurrency:Params.mds_concurrency ~op_cost:Params.mds_op_cost
  in
  let make_host name =
    let node =
      Net.add_node net ~name ~bandwidth:Params.net_bandwidth
        ~latency:Params.net_latency
    in
    let cpu = Cpu.create engine ~cores:8 in
    let kernel =
      Kernel.create ~costs:Params.costs engine ~cpu
        ~activated:(Array.init 8 (fun i -> i))
        ~page_cache_limit:Params.client_mem
    in
    (node, cpu, kernel)
  in
  let node_a, cpu_a, kernel_a = make_host "host-a" in
  let node_b, _cpu_b, kernel_b = make_host "host-b" in
  let cluster_a =
    Cluster.create engine ~net ~client_node:node_a ~server_node ~osds ~mds
      ~replicas:Params.replicas ~object_size:Params.object_size
  in
  let cluster_b = Cluster.for_host cluster_a ~client_node:node_b in
  {
    engine;
    host_a = Container_engine.create ~kernel:kernel_a ~cluster:cluster_a ~topology;
    host_b = Container_engine.create ~kernel:kernel_b ~cluster:cluster_b ~topology;
    (* the same pool/container identity on both hosts: the writable
       branch path matches, so the destination sees the source's state *)
    pool_a = Cgroup.create ~name:"tenant" ~cores:[| 0; 1 |] ~mem_limit:(mib 8192);
    pool_b = Cgroup.create ~name:"tenant" ~cores:[| 0; 1 |] ~mem_limit:(mib 8192);
    cpu_a;
    w_seed = seed;
  }

(* same base-seed mixing as Testbed.ctx *)
let world_ctx w ~pool ~seed =
  Workload.make_ctx w.engine ~cpu:w.cpu_a ~pool
    ~seed:(seed + (w.w_seed * 1_000_003))

let startup_params = Startup.default_params

(* Boot the container on host A and write [state_mib] of private state
   (logs, caches) into its writable branch. *)
let boot_and_dirty w ct ~state_mib ~pool =
  let ctx = world_ctx w ~pool ~seed:11 in
  Startup.start_container ctx
    ~view:(ct.Container_engine.view ~thread:1)
    ~legacy:ct.Container_engine.legacy startup_params;
  let v = ct.Container_engine.view ~thread:1 in
  let fd =
    Workload.exn_on_error "state open"
      (v.Client_intf.open_file ~pool "/var/cache/state" Client_intf.flags_wo)
  in
  Workload.chunked ~chunk:(mib 1) ~total:(mib state_mib) (fun ~off ~len ->
      Workload.exn_on_error "state write" (v.Client_intf.write ~pool fd ~off ~len));
  Workload.exn_on_error "state fsync" (v.Client_intf.fsync ~pool fd);
  v.Client_intf.close ~pool fd

(* Shared-filesystem migration: relaunch on B and restart the service;
   its root (image + private state) is already reachable. *)
let migrate_shared w ~state_mib =
  let ct_a =
    Container_engine.launch w.host_a ~config:Config.d ~pool:w.pool_a ~id:"web"
      ~image:"lighttpd" ()
  in
  boot_and_dirty w ct_a ~state_mib ~pool:w.pool_a;
  let t0 = Engine.now w.engine in
  (* destination: same id under the same pool name = same root subtree *)
  let ct_b =
    Container_engine.launch w.host_b ~config:Config.d ~pool:w.pool_b ~id:"web"
      ~image:"lighttpd" ()
  in
  let ctx = world_ctx w ~pool:w.pool_b ~seed:12 in
  Startup.start_container ctx
    ~view:(ct_b.Container_engine.view ~thread:1)
    ~legacy:ct_b.Container_engine.legacy startup_params;
  (* the private state must be visible on B *)
  let v = ct_b.Container_engine.view ~thread:1 in
  (match v.Client_intf.stat ~pool:w.pool_b "/var/cache/state" with
  | Ok a when a.Namespace.size = mib state_mib -> ()
  | Ok a -> failwith (Printf.sprintf "migrated state truncated: %d" a.Namespace.size)
  | Error e -> failwith ("migrated state missing: " ^ Client_intf.error_to_string e));
  Engine.now w.engine -. t0

(* Copy-based baseline: the destination first copies the whole root
   (image + state) into a fresh subtree, then starts. *)
let migrate_copy w ~state_mib =
  let ct_a =
    Container_engine.launch w.host_a ~config:Config.d ~pool:w.pool_a ~id:"webc"
      ~image:"lighttpd" ()
  in
  boot_and_dirty w ct_a ~state_mib ~pool:w.pool_a;
  let t0 = Engine.now w.engine in
  let ct_b =
    Container_engine.launch w.host_b ~config:Config.d ~pool:w.pool_b ~id:"webc-copy"
      ()
  in
  let src = ct_a.Container_engine.view ~thread:3 in
  let dst = ct_b.Container_engine.view ~thread:4 in
  (* copy the image files and the private state through both hosts *)
  let copy_file path size =
    match src.Client_intf.open_file ~pool:w.pool_a path Client_intf.flags_ro with
    | Error _ -> ()
    | Ok sfd ->
        let dfd =
          Workload.exn_on_error "copy dst"
            (dst.Client_intf.open_file ~pool:w.pool_b path Client_intf.flags_wo)
        in
        Workload.chunked ~chunk:(mib 1) ~total:size (fun ~off ~len ->
            ignore
              (Workload.exn_on_error "copy read"
                 (src.Client_intf.read ~pool:w.pool_a sfd ~off ~len));
            Workload.exn_on_error "copy write"
              (dst.Client_intf.write ~pool:w.pool_b dfd ~off ~len));
        Workload.exn_on_error "copy fsync" (dst.Client_intf.fsync ~pool:w.pool_b dfd);
        dst.Client_intf.close ~pool:w.pool_b dfd;
        src.Client_intf.close ~pool:w.pool_a sfd
  in
  List.iter (fun (p, size) -> copy_file p size) (Startup.image_files startup_params);
  copy_file "/var/cache/state" (mib state_mib);
  let ctx = world_ctx w ~pool:w.pool_b ~seed:13 in
  Startup.start_container ctx
    ~view:(ct_b.Container_engine.view ~thread:1)
    ~legacy:ct_b.Container_engine.legacy startup_params;
  Engine.now w.engine -. t0

let fig_migration ~seed ~quick =
  let sizes = if quick then [ 64; 256 ] else [ 64; 256; 1024 ] in
  let rows =
    List.map
      (fun state_mib ->
        let cell f =
          let w = make_world ~seed () in
          Container_engine.install_image w.host_a ~name:"lighttpd"
            ~files:(Startup.image_files startup_params);
          let result = ref None in
          Engine.spawn w.engine (fun () -> result := Some (f w ~state_mib));
          let rec spin limit =
            if !result = None then begin
              if Engine.now w.engine > limit then failwith "migration stuck";
              Engine.run_until w.engine (Engine.now w.engine +. 0.25);
              spin limit
            end
          in
          spin 10_000.0;
          Option.get !result
        in
        [
          string_of_int state_mib;
          Report.f2 (cell migrate_shared);
          Report.f2 (cell migrate_copy);
        ])
      sizes
  in
  [
    Report.make ~id:"mig" ~title:"Container migration between hosts (s)"
      ~header:[ "private state MiB"; "shared-FS relaunch"; "copy-based" ]
      ~notes:
        [
          "shared-FS migration never copies the root: the destination \
           host mounts the same branches and pages state in on demand \
           (S9 / Wharf-style sharing)";
        ]
      rows;
  ]
