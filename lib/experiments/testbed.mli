open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_ceph
open Danaus

(** The paper's testbed (Fig. 5), assembled from {!Params}: a 64-core
    client machine with a host kernel, local RAID-0 disks and a network
    link, plus a 6-OSD/1-MDS Ceph cluster on the server machine. *)

type t = {
  engine : Engine.t;
  obs : Obs.t;  (** the engine's observability context *)
  base_seed : int;  (** mixed into every workload RNG stream *)
  topology : Topology.t;
  cpu : Cpu.t;
  kernel : Kernel.t;
  net : Net.t;
  client_node : Net.node;  (** the client machine's network attachment *)
  server_node : Net.node;  (** the Ceph cluster machine's attachment *)
  cluster : Cluster.t;
  local_disk : Disk.t;  (** 4-disk RAID-0 of direct-attached storage *)
  containers : Container_engine.t;
}

(** [create ~activated ()] boots the testbed with host cores
    [0 .. activated-1] enabled (the paper enables 4-16).  [replicas]
    (default {!Params.replicas}) sets the cluster replication factor —
    fault experiments raise it so an OSD loss leaves survivors. *)
val create : ?seed:int -> ?replicas:int -> activated:int -> unit -> t

(** Pool [i] of the standard layout: cores [2i, 2i+1], 8 GB. *)
val pool : t -> int -> Cgroup.t

(** A pool with an explicit shape (scale-up experiments). *)
val custom_pool : t -> name:string -> cores:int array -> mem:int -> Cgroup.t

(** Drive the simulation until [stop ()] becomes true (checked every
    0.25 simulated seconds) or [limit] simulated seconds elapse; raises
    [Failure] on timeout.  Ends with a {!check_invariants} sweep. *)
val drive : ?limit:float -> t -> stop:(unit -> bool) -> unit

(** Sweep the whole-testbed conservation laws (kernel page-cache
    accounting; span-tree well-formedness when tracing) through
    {!Danaus_check.Check}.  No-op when the invariant mode is [Off]. *)
val check_invariants : t -> unit

(** Reset every measurement (CPU usage, lock stats, the whole {!Obs}
    context) — call between the warm-up and the measured phase.
    Interned handles survive; only their values are cleared. *)
val reset_metrics : t -> unit

(** Start a process sampling all counters/gauges every
    {!Danaus_sim.Obs.default_sample_period} sim-seconds (set by the CLI's
    [--timeseries]); returns a getter for the points so far.  When no
    period is configured, spawns nothing and the getter returns [[]].
    Call after {!reset_metrics}. *)
val start_sampler : t -> unit -> Danaus_sim.Obs.Sampler.point list

(** A fresh workload context bound to a pool. *)
val ctx : t -> pool:Cgroup.t -> seed:int -> Danaus_workloads.Workload.ctx

(** A local ext4-like filesystem over the RAID-0 array. *)
val local_fs : t -> name:string -> Local_fs.t

(** The testbed's {!Danaus_faults.Fault_plan.injector}: pools are
    addressed by cgroup name, links by ["client"]/["server"], disks by
    ["local"] (the RAID-0 array), OSDs by index.  Unknown names are
    ignored. *)
val injector : t -> Danaus_faults.Fault_plan.injector

(** Arm a fault plan against this testbed.  The plan's RNG is derived
    from the testbed's base seed, so faults land at the same simulated
    times across identically-seeded runs. *)
val inject : t -> plan:Danaus_faults.Fault_plan.plan -> unit
