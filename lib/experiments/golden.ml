(* Golden-table drift guard: the canonical text of an experiment is its
   rendered tables at --quick, seed 7, with the invariant layer strict.
   `dune runtest` diffs every experiment against test/golden/<id>.txt
   (promote with `dune promote` or `danaus-cli golden --regen` after an
   intentional behaviour change); any unintentional drift — a changed
   number, a reordered row, a violated conservation law — fails the
   build with the diff. *)

let seed = 7
let quick = true

let text (e : Registry.exp) =
  Danaus_check.Check.set_mode Danaus_check.Check.Strict;
  let reports = e.Registry.run ~quick ~seed in
  String.concat "" (List.map Report.render reports)

let file_name id = id ^ ".txt"
