open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_ceph
open Danaus

(** A world with [n] client machines attached to one storage cluster —
    the fleet the scheduler places pools onto, and the two-host world of
    the [mig] experiment.  Every host gets its own NIC, CPU, and kernel;
    they share the cluster's OSDs, MDS, and namespace (so a pool's
    writable branch is reachable from every host — the substrate of
    shared-filesystem migration). *)

type host = {
  h_index : int;
  h_name : string;  (** ["host-a"], ["host-b"], ... *)
  h_node : Net.node;
  h_cpu : Cpu.t;
  h_kernel : Kernel.t;
  h_cluster : Cluster.t;
  h_containers : Container_engine.t;
}

type t = {
  engine : Engine.t;
  obs : Obs.t;
  topology : Topology.t;
  net : Net.t;
  server_node : Net.node;
  hosts : host array;
  base_seed : int;
}

(** [create ~seed ()] builds the world: one server node + OSDs + MDS
    (paper parameters, as [Testbed]), then [hosts] (default 2) client
    machines.  [server_bandwidth] overrides the server NIC (a bonded
    spine for fleets whose contention story is the client-side links);
    the default keeps the world identical to the historical [mig]
    two-host world. *)
val create : ?hosts:int -> ?server_bandwidth:float -> seed:int -> unit -> t

val host : t -> int -> host

(** Workload context drawing from the world's seed (same mixing as
    [Testbed.ctx]).  [host] selects whose CPU runs compute bursts;
    default host 0. *)
val ctx : ?host:int -> t -> pool:Cgroup.t -> seed:int -> Danaus_workloads.Workload.ctx

(** Whole-fleet conservation sweep (every host's page cache, plus span
    well-formedness when tracing); no-op when invariants are off. *)
val check_invariants : t -> unit

(** Run the engine in 0.25 s slices until [stop ()], then sweep
    {!check_invariants}; fails if the clock passes [limit] first. *)
val drive : ?limit:float -> t -> stop:(unit -> bool) -> unit

(** Reset Obs counters, CPU usage, and lock stats on every host (start
    of the measured phase). *)
val reset_metrics : t -> unit

(** Start the [--timeseries] sampler (same contract as
    [Testbed.start_sampler]). *)
val start_sampler : t -> unit -> Obs.Sampler.point list
