open Danaus_sim
open Danaus
open Danaus_workloads

let gib n = n * 1024 * 1024 * 1024

let fls_params ~quick =
  (* the full 5 GB dataset is kept even in quick mode: it must exceed
     the background writeback threshold or the kernel client never pays
     its flushing bill *)
  if quick then
    { Fileserver.default_params with Fileserver.threads = 16; duration = 10.0 }
  else Fileserver.default_params

let run_cell ~seed ~quick ~config ~pools =
  let p = fls_params ~quick in
  let activated = Stdlib.min Params.client_cores (2 * pools) in
  let tb = Testbed.create ~seed ~activated () in
  let containers =
    List.init pools (fun i ->
        let pool = Testbed.pool tb i in
        ( pool,
          Container_engine.launch tb.Testbed.containers ~config ~pool
            ~id:(Printf.sprintf "fls%d" i) ~cache_bytes:(gib 5) () ))
  in
  let warmed = ref 0 in
  List.iteri
    (fun i (pool, ct) ->
      Engine.spawn tb.Testbed.engine (fun () ->
          let ctx = Testbed.ctx tb ~pool ~seed:(1300 + i) in
          Fileserver.prepopulate ctx ~view:ct.Container_engine.view p;
          incr warmed))
    containers;
  Testbed.drive tb ~stop:(fun () -> !warmed = pools);
  Testbed.reset_metrics tb;
  let results = Array.make pools None in
  let done_count = ref 0 in
  List.iteri
    (fun i (pool, ct) ->
      Engine.spawn tb.Testbed.engine (fun () ->
          let ctx = Testbed.ctx tb ~pool ~seed:(1400 + i) in
          results.(i) <- Some (Fileserver.run ctx ~view:ct.Container_engine.view p);
          incr done_count))
    containers;
  Testbed.drive tb ~stop:(fun () -> !done_count = pools);
  let total =
    Array.fold_left
      (fun acc r ->
        match r with Some r -> acc +. r.Fileserver.throughput_mbps | None -> acc)
      0.0 results
  in
  let io_wait = Obs.sum tb.Testbed.obs ~layer:"kernel" ~name:"io_wait" () in
  (total, io_wait, Obs.snapshot tb.Testbed.obs, Obs.cspans tb.Testbed.obs)

let fig10 ~seed ~quick =
  let pool_counts = if quick then [ 1; 8 ] else [ 1; 2; 4; 8; 16 ] in
  let configs = [ Config.d; Config.f; Config.k ] in
  let cells =
    List.map
      (fun pools ->
        ( pools,
          List.map (fun c -> (c, run_cell ~seed ~quick ~config:c ~pools)) configs
        ))
      pool_counts
  in
  let rows =
    List.map
      (fun (pools, cells) ->
        string_of_int pools
        :: (List.map (fun (_, (t, _, _, _)) -> Report.mbps t) cells
           @ List.map (fun (_, (_, w, _, _)) -> Report.f1 w) cells))
      cells
  in
  let metrics =
    List.concat_map
      (fun (pools, cells) ->
        List.concat_map
          (fun (c, (_, _, m, _)) ->
            Obs.prefix_keys (Printf.sprintf "%s:p%d:" c.Config.label pools) m)
          cells)
      cells
  in
  let spans =
    Danaus_sim.Trace.merge
      (List.concat_map
         (fun (pools, cells) ->
           List.map
             (fun (c, (_, _, _, s)) ->
               (Printf.sprintf "%s:p%d:" c.Config.label pools, s))
             cells)
         cells)
  in
  let header =
    "pools"
    :: (List.map (fun c -> c.Config.label ^ " MB/s") configs
       @ List.map (fun c -> c.Config.label ^ " iowait s") configs)
  in
  [
    Report.make ~id:"fig10" ~title:"Fileserver scaleout (total MB/s)" ~header
      ~metrics ~spans rows;
  ]
