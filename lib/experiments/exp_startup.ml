open Danaus_sim
open Danaus_kernel
open Danaus
open Danaus_workloads

let run_cell ~seed ~config ~clones () =
  let tb = Testbed.create ~seed ~activated:Params.client_cores () in
  let pool =
    Testbed.custom_pool tb ~name:"webpool"
      ~cores:(Array.init Params.client_cores (fun i -> i))
      ~mem:(200 * 1024 * 1024 * 1024)
  in
  let p = Startup.default_params in
  Container_engine.install_image tb.Testbed.containers ~name:"lighttpd"
    ~files:(Startup.image_files p);
  let containers =
    List.init clones (fun i ->
        Container_engine.launch tb.Testbed.containers ~config ~pool
          ~id:(Printf.sprintf "web%d" i) ~image:"lighttpd" ())
  in
  Testbed.reset_metrics tb;
  let started = Engine.now tb.Testbed.engine in
  let finished = ref 0 in
  let last_finish = ref started in
  List.iteri
    (fun i ct ->
      Engine.spawn tb.Testbed.engine ~name:(Printf.sprintf "start-%d" i) (fun () ->
          let ctx = Testbed.ctx tb ~pool ~seed:(900 + i) in
          Startup.start_container ctx
            ~view:(ct.Container_engine.view ~thread:i)
            ~legacy:ct.Container_engine.legacy p;
          last_finish := Engine.now tb.Testbed.engine;
          incr finished))
    containers;
  Testbed.drive tb ~stop:(fun () -> !finished = clones);
  let elapsed = !last_finish -. started in
  (* kernel- and client-side switches of the pool together, matching the
     host-wide counter the paper reads *)
  let ctx_switches =
    Obs.sum_key tb.Testbed.obs ~name:"context_switches"
      ~key:(Cgroup.name pool) ()
  in
  (elapsed, ctx_switches, Obs.snapshot tb.Testbed.obs, Obs.cspans tb.Testbed.obs)

let fig8 ~seed ~quick =
  let clone_counts = if quick then [ 1; 16; 64 ] else [ 1; 4; 16; 64; 256 ] in
  let configs = [ Config.d; Config.kk; Config.fk; Config.ff ] in
  let cells =
    List.map
      (fun clones ->
        (clones, List.map (fun c -> run_cell ~seed ~config:c ~clones ()) configs))
      clone_counts
  in
  let time_rows =
    List.map
      (fun (clones, results) ->
        string_of_int clones
        :: List.map (fun (t, _, _, _) -> Report.f2 t) results)
      cells
  in
  let ctx_rows =
    List.map
      (fun (clones, results) ->
        string_of_int clones
        :: List.map (fun (_, c, _, _) -> Printf.sprintf "%.0f" c) results)
      cells
  in
  let metrics =
    List.concat_map
      (fun (clones, results) ->
        List.concat_map
          (fun (cfg, (_, _, m, _)) ->
            Obs.prefix_keys
              (Printf.sprintf "%s:c%d:" cfg.Config.label clones)
              m)
          (List.combine configs results))
      cells
  in
  let spans =
    Danaus_sim.Trace.merge
      (List.concat_map
         (fun (clones, results) ->
           List.map
             (fun (cfg, (_, _, _, s)) ->
               (Printf.sprintf "%s:c%d:" cfg.Config.label clones, s))
             (List.combine configs results))
         cells)
  in
  let header = "clones" :: List.map (fun c -> c.Config.label) configs in
  [
    Report.make ~id:"fig8a" ~title:"Lighttpd container startup time (s)" ~header
      ~metrics ~spans time_rows;
    Report.make ~id:"fig8b" ~title:"Context switches during startup" ~header
      ctx_rows;
  ]
