(** Experiment registry: every table and figure of the paper's
    evaluation, addressable by id (used by the CLI and the bench
    harness). *)

type exp = {
  id : string;
  title : string;
  run : quick:bool -> Report.t list;
}

val all : exp list

val find : string -> exp option

val ids : unit -> string list

(** [run_exps ?jobs ~quick exps] runs the experiments and pairs each
    with its reports, preserving the input order.  [jobs] > 1 spreads
    the runs over that many domains (each experiment owns its engine
    and testbeds, so they are independent); results are collected by
    position, so the returned list — and anything printed from it — is
    byte-identical to a sequential run.  If an experiment raised, the
    exception is re-raised here after every domain has joined. *)
val run_exps :
  ?jobs:int -> quick:bool -> exp list -> (exp * Report.t list) list
