(** Experiment registry: every table and figure of the paper's
    evaluation, addressable by id (used by the CLI and the bench
    harness). *)

type exp = {
  id : string;
  title : string;
  run : quick:bool -> seed:int -> Report.t list;
      (** [seed] feeds every testbed the experiment builds: same seed,
          byte-identical reports. *)
}

val all : exp list

val find : string -> exp option

val ids : unit -> string list

(** [run_exps ?jobs ?seed ~quick exps] runs the experiments and pairs
    each with its reports, preserving the input order.  [jobs] > 1
    spreads the runs over that many domains (each experiment owns its
    engine and testbeds, so they are independent); results are collected
    by position, so the returned list — and anything printed from it —
    is byte-identical to a sequential run.  [seed] (default 1) is passed
    to every experiment.  If an experiment raised, the exception is
    re-raised here after every domain has joined. *)
val run_exps :
  ?jobs:int -> ?seed:int -> quick:bool -> exp list -> (exp * Report.t list) list
