open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_ceph
open Danaus

type host = {
  h_index : int;
  h_name : string;
  h_node : Net.node;
  h_cpu : Cpu.t;
  h_kernel : Kernel.t;
  h_cluster : Cluster.t;
  h_containers : Container_engine.t;
}

type t = {
  engine : Engine.t;
  obs : Obs.t;
  topology : Topology.t;
  net : Net.t;
  server_node : Net.node;
  hosts : host array;
  base_seed : int;
}

let host_name i = Printf.sprintf "host-%c" (Char.chr (Char.code 'a' + i))

(* Construction order matters for byte-identity with the historical
   [mig] world: server node, OSDs, MDS, then every host's node + CPU +
   kernel (in host order), then the clusters. *)
let create ?(hosts = 2) ?(server_bandwidth = Params.net_bandwidth) ~seed () =
  let engine = Engine.create () in
  let topology = Topology.paper_machine () in
  let net = Net.create engine in
  let server_node =
    Net.add_node net ~name:"server" ~bandwidth:server_bandwidth
      ~latency:Params.net_latency
  in
  let osds =
    Array.init Params.osd_count (fun i ->
        let mk kind =
          Disk.create engine
            ~name:(Printf.sprintf "osd%d-%s" i kind)
            ~bandwidth:Params.osd_disk_bandwidth ~latency:5e-6 ~seek:0.0
        in
        Osd.create engine
          ~name:(Printf.sprintf "osd%d" i)
          ~data:(mk "data") ~journal:(mk "journal")
          ~concurrency:Params.osd_concurrency ~op_cost:Params.osd_op_cost
          ~cpu_per_byte:Params.osd_cpu_per_byte)
  in
  let mds =
    Mds.create engine ~concurrency:Params.mds_concurrency ~op_cost:Params.mds_op_cost
  in
  let machines =
    Array.init hosts (fun i ->
        let node =
          Net.add_node net ~name:(host_name i) ~bandwidth:Params.net_bandwidth
            ~latency:Params.net_latency
        in
        let cpu = Cpu.create engine ~cores:8 in
        let kernel =
          Kernel.create ~costs:Params.costs engine ~cpu
            ~activated:(Array.init 8 (fun i -> i))
            ~page_cache_limit:Params.client_mem
        in
        (node, cpu, kernel))
  in
  let node0, _, _ = machines.(0) in
  let cluster0 =
    Cluster.create engine ~net ~client_node:node0 ~server_node ~osds ~mds
      ~replicas:Params.replicas ~object_size:Params.object_size
  in
  let host_of i (node, cpu, kernel) =
    let cluster =
      if i = 0 then cluster0 else Cluster.for_host cluster0 ~client_node:node
    in
    {
      h_index = i;
      h_name = host_name i;
      h_node = node;
      h_cpu = cpu;
      h_kernel = kernel;
      h_cluster = cluster;
      h_containers = Container_engine.create ~kernel ~cluster ~topology;
    }
  in
  {
    engine;
    obs = Engine.obs engine;
    topology;
    net;
    server_node;
    hosts = Array.mapi host_of machines;
    base_seed = seed;
  }

let host t i = t.hosts.(i)

let ctx ?(host = 0) t ~pool ~seed =
  Danaus_workloads.Workload.make_ctx t.engine ~cpu:t.hosts.(host).h_cpu ~pool
    ~seed:(seed + (t.base_seed * 1_000_003))

let check_invariants t =
  if Danaus_check.Check.on () then begin
    Array.iter
      (fun h -> Page_cache.check_invariants (Kernel.page_cache h.h_kernel))
      t.hosts;
    if Obs.tracing t.obs then
      ignore (Danaus_check.Check.check_spans ~obs:t.obs (Obs.cspans t.obs))
  end

let drive ?(limit = 100_000.0) t ~stop =
  let rec go () =
    if stop () then ()
    else if Engine.now t.engine > limit then
      failwith "Multihost.drive: simulation did not converge before the limit"
    else begin
      Engine.run_until t.engine (Engine.now t.engine +. 0.25);
      go ()
    end
  in
  go ();
  check_invariants t

let reset_metrics t =
  Array.iter
    (fun h ->
      Cpu.reset_usage h.h_cpu;
      Kernel.reset_lock_stats h.h_kernel)
    t.hosts;
  Obs.reset t.obs

let start_sampler t =
  match !Obs.default_sample_period with
  | None -> fun () -> []
  | Some period ->
      let sampler = Obs.Sampler.create t.obs ~period in
      Engine.spawn t.engine ~name:"obs-sampler" (fun () ->
          while true do
            Engine.sleep period;
            Obs.Sampler.tick sampler ~now:(Engine.now t.engine)
          done);
      fun () -> Obs.Sampler.points sampler
