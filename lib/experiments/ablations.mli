(** Ablations of Danaus design choices called out in DESIGN.md:

    - [lock]: the global libcephfs [client_lock] vs the per-inode
      refactoring the paper leaves as future work (§6.3.2/§9), measured
      on the cached sequential read that exposes it.
    - [dual]: the default shared-memory path vs the legacy FUSE path for
      the same workload (why the dual interface matters, §3.2).
    - [union]: the integrated (function-call) union layer's overhead on
      a data-intensive workload (§3.1 "filesystem integration"). *)

val ablation_lock : seed:int -> quick:bool -> Report.t list
val ablation_dual : seed:int -> quick:bool -> Report.t list
val ablation_union : seed:int -> quick:bool -> Report.t list

(** Block-level vs whole-file copy-on-write on the Fileappend scale-up
    scenario (the §9 extension; removes Fig. 11a's 50/50 read/write
    amplification). *)
val ablation_block_cow : seed:int -> quick:bool -> Report.t list
