(* Machine-readable perf trajectory of the simulation core.

   Each entry runs one microbench — pure engine loops at the bottom,
   then single cells of the paper's seqio/contention workloads through
   the full client stack — and records wall time, engine events
   dispatched (Engine.global_events), and minor-heap words allocated.
   The derived figures of merit are events/sec (throughput) and minor
   words/event (allocation discipline; machine-independent).

   `danaus-cli bench --json` serializes a run to BENCH_<label>.json and
   `--baseline` gates it against a checked-in measurement: events/sec is
   compared after normalizing by a spin-loop calibration score so the
   gate holds across machines of different speeds, while words/event is
   compared directly.  See EXPERIMENTS.md "Perf trajectory". *)

open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus

type entry = {
  e_name : string;
  e_wall_s : float;
  e_events : int;
  e_minor_words : float;
  e_events_per_sec : float;
  e_words_per_event : float;
}

type result = {
  r_label : string;
  r_calibration : float; (* spin-loop ops/sec: machine speed proxy *)
  r_entries : entry list;
}

let schema_version = 1

(* ------------------------------------------------------------------ *)
(* Measurement *)

(* Fixed pure-OCaml spin loop (xorshift); its ops/sec score normalizes
   events/sec across machines in the regression gate. *)
let calibrate () =
  let n = 20_000_000 in
  let x = ref 0x2545F4914F6CDD1D in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    x := !x lxor (!x lsl 13);
    x := !x lxor (!x lsr 7);
    x := !x lxor (!x lsl 17)
  done;
  ignore (Sys.opaque_identity !x);
  let dt = Unix.gettimeofday () -. t0 in
  if dt > 0.0 then float_of_int n /. dt else 0.0

let measure_once name f =
  Gc.full_major ();
  let ev0 = Engine.global_events () in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. w0 in
  let events = Engine.global_events () - ev0 in
  {
    e_name = name;
    e_wall_s = wall;
    e_events = events;
    e_minor_words = words;
    e_events_per_sec =
      (if wall > 0.0 then float_of_int events /. wall else 0.0);
    e_words_per_event =
      (if events > 0 then words /. float_of_int events else 0.0);
  }

(* Best of three: each bench is deterministic in simulated time, so the
   repeats differ only by scheduler/cache noise on the host — the
   fastest run is the least-perturbed one.  Words/event is identical
   across repeats; keeping the max guards the gate all the same. *)
let measure name f =
  let rec go best n =
    if n = 0 then best
    else
      let e = measure_once name f in
      let best =
        {
          best with
          e_wall_s = Float.min best.e_wall_s e.e_wall_s;
          e_events_per_sec = Float.max best.e_events_per_sec e.e_events_per_sec;
          e_words_per_event =
            Float.max best.e_words_per_event e.e_words_per_event;
        }
      in
      go best (n - 1)
  in
  go (measure_once name f) 2

(* ------------------------------------------------------------------ *)
(* Microbenches: engine substrate *)

(* Pure scheduler cycle: one preallocated thunk reschedules itself, so
   the measured loop is exactly push/pop/dispatch.  This is the entry
   the zero-allocation regression test pins down. *)
let engine_cycle n () =
  let e = Engine.create () in
  let remaining = ref n in
  let rec tick () =
    remaining := !remaining - 1;
    if !remaining > 0 then Engine.schedule e tick
  in
  Engine.schedule e tick;
  Engine.run e

(* Effect-handler path: sleep suspends and re-queues the continuation. *)
let engine_sleep n () =
  let e = Engine.create () in
  Engine.spawn e (fun () ->
      for _ = 1 to n do
        Engine.sleep 1e-6
      done);
  Engine.run e

let engine_fork n () =
  let e = Engine.create () in
  Engine.spawn e (fun () ->
      for _ = 1 to n do
        Engine.fork (fun () -> Engine.yield ())
      done);
  Engine.run e

let mutex_handoff procs iters () =
  let e = Engine.create () in
  let m = Mutex_sim.create e ~name:"bench" in
  for _ = 1 to procs do
    Engine.spawn e (fun () ->
        for _ = 1 to iters do
          Mutex_sim.with_lock m (fun () -> Engine.sleep 1e-6)
        done)
  done;
  Engine.run e

(* Block-map churn: buffered writes, residency scans and full-file
   flushes over a 4 KiB-block file, the page-cache paths the kernel
   clients hit per I/O. *)
let page_cache_churn iters () =
  let e = Engine.create () in
  let mem = Memory.create ~name:"bench" () in
  let pc = Page_cache.create e ~mem ~limit:(1 lsl 30) ~block:4096 in
  let m = Page_cache.add_mount pc ~name:"bench" ~max_dirty:(1 lsl 29) () in
  let f = Page_cache.file pc m ~key:"f" ~flush:(fun ~bytes:_ -> ()) in
  let chunk = 4 * 1024 * 1024 in
  let span = 64 * 1024 * 1024 in
  Engine.spawn e (fun () ->
      for i = 0 to iters - 1 do
        let off = i * chunk mod span in
        Page_cache.write f ~off ~len:chunk;
        ignore (Page_cache.missing f ~off ~len:chunk);
        List.iter
          (fun (_, got) -> Page_cache.writeback_complete pc m ~bytes:got)
          (Page_cache.flush_file f);
        Engine.sleep 1e-6
      done);
  Engine.run e

(* ------------------------------------------------------------------ *)
(* Microbenches: single cells of the paper workloads, full stack *)

let mib n = n * 1024 * 1024

(* One seqwrite cell: 2 pools streaming sequential writes through the
   Danaus (D) user-space stack — striper, IPC, backend OSDs. *)
let seqio_cell () =
  let tb = Testbed.create ~seed:1 ~activated:4 () in
  let p =
    {
      Danaus_workloads.Seqio.default_params with
      Danaus_workloads.Seqio.file_size = mib 48;
      duration = 4.0;
      threads = 4;
    }
  in
  let pools = 2 in
  let done_count = ref 0 in
  List.iter
    (fun i ->
      let pool = Testbed.pool tb i in
      let ct =
        Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool
          ~id:(Printf.sprintf "seq%d" i) ()
      in
      Engine.spawn tb.Testbed.engine (fun () ->
          let ctx = Testbed.ctx tb ~pool ~seed:(1200 + i) in
          ignore
            (Danaus_workloads.Seqio.run_write ctx
               ~view:ct.Container_engine.view p);
          incr done_count))
    [ 0; 1 ];
  Testbed.drive tb ~stop:(fun () -> !done_count = pools)

(* One contention cell: 2 Fileserver pools sharing the in-kernel Ceph
   client (K) — the shared-lock and shared-writeback collapse paths. *)
let contention_cell () =
  let tb = Testbed.create ~seed:1 ~activated:4 () in
  let p =
    {
      Danaus_workloads.Fileserver.default_params with
      Danaus_workloads.Fileserver.files = 60;
      mean_file_size = mib 1;
      threads = 4;
      duration = 4.0;
    }
  in
  let pools = 2 in
  let done_count = ref 0 in
  List.iter
    (fun i ->
      let pool = Testbed.pool tb i in
      let ct =
        Container_engine.launch tb.Testbed.containers ~config:Config.k ~pool
          ~id:(Printf.sprintf "fls%d" i) ()
      in
      Engine.spawn tb.Testbed.engine (fun () ->
          let ctx = Testbed.ctx tb ~pool ~seed:(300 + i) in
          Danaus_workloads.Fileserver.prepopulate ctx
            ~view:ct.Container_engine.view p;
          ignore
            (Danaus_workloads.Fileserver.run ctx ~view:ct.Container_engine.view
               p);
          incr done_count))
    [ 0; 1 ];
  Testbed.drive tb ~stop:(fun () -> !done_count = pools)

(* One scheduler cell: a 3-host fleet with 6 placed pools, the
   controller's sample tick (per-host link-utilization deltas, signal
   windows, score gauges) run at high frequency.  Pins the cost of the
   periodic control plane the sched experiments layer on top. *)
let sched_tick ticks () =
  let open Danaus_sched in
  let mh = Multihost.create ~hosts:3 ~seed:1 () in
  let fleet =
    Fleet.create ~engine:mh.Multihost.engine
      ~policy:(module Placement.Contention_aware)
  in
  Array.iter
    (fun h ->
      Fleet.add_host fleet ~name:h.Multihost.h_name ~node:h.Multihost.h_node
        ~kernel:h.Multihost.h_kernel ~containers:h.Multihost.h_containers
        ~slots:4 ~mem:(mib 2048) ~link_bandwidth:Params.net_bandwidth)
    mh.Multihost.hosts;
  for i = 0 to 5 do
    match
      Fleet.place fleet
        (Fleet.spec
           ~pool:(Printf.sprintf "bench%d" i)
           ~id:"c0" ~slots:1 ~mem:(mib 256) ~config:Config.k ())
    with
    | Ok _ -> ()
    | Error e -> failwith e
  done;
  let interval = 0.01 in
  Engine.spawn mh.Multihost.engine (fun () ->
      for _ = 1 to ticks do
        Engine.sleep interval;
        Fleet.sample fleet
      done);
  Engine.run_until mh.Multihost.engine
    ((float_of_int ticks +. 1.0) *. interval)

(* One recovery-drain cell: a replicated cluster loses OSD 0, absorbs a
   backlog of missed writes while it is down, then heals with the
   aggressive paced drain — peering, pacer token grants, chunked
   survivor-read/target-write transfers and east-west network hops.
   Pins the cost of the self-healing control and data path. *)
let recovery_drain () =
  let open Danaus_ceph in
  let tb = Testbed.create ~seed:1 ~activated:4 ~replicas:2 () in
  let cluster = tb.Testbed.cluster in
  (* 256 KiB chunks (instead of the aggressive 4 MiB) so the drain is
     dominated by per-chunk pace/read/transfer/write cycles, not setup *)
  let recovery =
    {
      Recovery.chunk = 256 * 1024;
      rate = 8e9;
      burst = 16.0 *. 1024.0 *. 1024.0;
      streams = 8;
      priority = Recovery.Recovery_first;
    }
  in
  Cluster.enable_monitor ~heartbeat:0.5 ~grace:1.0 ~op_timeout:0.25 ~recovery
    cluster;
  let osds = Cluster.osds cluster in
  let healed = ref false in
  Engine.spawn tb.Testbed.engine (fun () ->
      Osd.set_up osds.(0) false;
      (* let the monitor mark it down so the writes miss cleanly *)
      Engine.sleep 1.6;
      (match Cluster.write_range cluster ~ino:11 ~off:0 ~len:(256 * mib 4) with
      | Ok () -> ()
      | Error _ -> failwith "bench write failed");
      Osd.set_up osds.(0) true;
      while
        Cluster.degraded_now cluster > 0
        || Cluster.recovering cluster 0
        || not (Cluster.monitor_sees_up cluster 0)
      do
        Engine.sleep 0.25
      done;
      healed := true);
  Testbed.drive tb ~stop:(fun () -> !healed)

(* ------------------------------------------------------------------ *)

let run ?(label = "head") () =
  (* best of three, for the same reason as [measure] *)
  let calibration =
    Float.max (calibrate ()) (Float.max (calibrate ()) (calibrate ()))
  in
  let entries =
    [
      measure "engine-cycle" (engine_cycle 500_000);
      measure "engine-sleep" (engine_sleep 300_000);
      measure "engine-fork" (engine_fork 100_000);
      measure "mutex-handoff" (mutex_handoff 16 2_000);
      measure "page-cache" (page_cache_churn 400);
      measure "sched-tick" (sched_tick 5_000);
      measure "seqio" seqio_cell;
      measure "contention" contention_cell;
      measure "recovery-drain" recovery_drain;
    ]
  in
  { r_label = label; r_calibration = calibration; r_entries = entries }

(* ------------------------------------------------------------------ *)
(* JSON *)

let to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"schema\": %d,\n  \"label\": %S,\n" schema_version
       r.r_label);
  Buffer.add_string buf
    (Printf.sprintf "  \"calibration_ops_per_sec\": %.6g,\n" r.r_calibration);
  Buffer.add_string buf "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"wall_s\": %.6g, \"events\": %d, \
            \"minor_words\": %.6g, \"events_per_sec\": %.6g, \
            \"words_per_event\": %.6g}%s\n"
           e.e_name e.e_wall_s e.e_events e.e_minor_words e.e_events_per_sec
           e.e_words_per_event
           (if i = List.length r.r_entries - 1 then "" else ",")))
    r.r_entries;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* Minimal JSON reader for the schema above (no external deps).  Parses
   the generic JSON data model; lookup helpers then pick out the fields
   the gate needs, so field order in the file does not matter. *)
module Json = struct
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  exception Bad of string

  let parse (s : string) : v =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\255' in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | ' ' | '\t' | '\n' | '\r' ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () <> c then
        raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
      advance ()
    in
    let lit word v =
      String.iter expect word;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'u' ->
                (* \uXXXX: keep the raw escape; labels never need it *)
                Buffer.add_string b "\\u"
            | c -> Buffer.add_char b c);
            advance ();
            go ()
        | '\255' -> raise (Bad "unterminated string")
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while is_num (peek ()) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> raise (Bad (Printf.sprintf "bad number at %d" start))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> raise (Bad (Printf.sprintf "bad object at %d" !pos))
            in
            Obj (members [])
          end
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  advance ();
                  elems (v :: acc)
              | ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> raise (Bad (Printf.sprintf "bad array at %d" !pos))
            in
            Arr (elems [])
          end
      | '"' -> Str (parse_string ())
      | 't' -> lit "true" (Bool true)
      | 'f' -> lit "false" (Bool false)
      | 'n' -> lit "null" Null
      | _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    v

  let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

  let num k o =
    match mem k o with
    | Some (Num f) -> f
    | _ -> raise (Bad ("missing number field " ^ k))

  let str k o =
    match mem k o with
    | Some (Str s) -> s
    | _ -> raise (Bad ("missing string field " ^ k))
end

let of_json text =
  let open Json in
  let v = parse text in
  let entries =
    match mem "entries" v with
    | Some (Arr es) ->
        List.map
          (fun e ->
            let events = int_of_float (num "events" e) in
            {
              e_name = str "name" e;
              e_wall_s = num "wall_s" e;
              e_events = events;
              e_minor_words = num "minor_words" e;
              e_events_per_sec = num "events_per_sec" e;
              e_words_per_event = num "words_per_event" e;
            })
          es
    | _ -> raise (Bad "missing entries array")
  in
  {
    r_label = str "label" v;
    r_calibration = num "calibration_ops_per_sec" v;
    r_entries = entries;
  }

(* ------------------------------------------------------------------ *)
(* Regression gate *)

(* Events/sec is machine-dependent, so the gate compares it normalized
   by each run's calibration score; words/event is exact and compared
   directly (with a half-word absolute allowance so a zero-allocation
   baseline does not turn rounding noise into a failure). *)
let gate ~baseline ~head ~tolerance =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun b ->
      match
        List.find_opt (fun h -> String.equal h.e_name b.e_name) head.r_entries
      with
      | None -> fail "%s: present in baseline but not measured" b.e_name
      | Some h ->
          let b_norm =
            if baseline.r_calibration > 0.0 then
              b.e_events_per_sec /. baseline.r_calibration
            else 0.0
          and h_norm =
            if head.r_calibration > 0.0 then
              h.e_events_per_sec /. head.r_calibration
            else 0.0
          in
          if b_norm > 0.0 && h_norm < b_norm *. (1.0 -. tolerance) then
            fail
              "%s: normalized events/sec regressed %.1f%% (baseline %.3g, \
               head %.3g ev/s at calibration %.3g vs %.3g)"
              b.e_name
              (100.0 *. (1.0 -. (h_norm /. b_norm)))
              b.e_events_per_sec h.e_events_per_sec baseline.r_calibration
              head.r_calibration;
          if
            h.e_words_per_event
            > (b.e_words_per_event *. (1.0 +. tolerance)) +. 0.5
          then
            fail "%s: minor words/event grew from %.3g to %.3g" b.e_name
              b.e_words_per_event h.e_words_per_event)
    baseline.r_entries;
  match !failures with [] -> Ok () | fs -> Error (List.rev fs)

let render r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "perf trajectory [%s] (calibration %.3g ops/s)\n" r.r_label
       r.r_calibration);
  Buffer.add_string buf
    (Printf.sprintf "%-16s %10s %12s %14s %16s\n" "bench" "wall s" "events"
       "events/sec" "minor words/ev");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-16s %10.2f %12d %14.0f %16.2f\n" e.e_name e.e_wall_s
           e.e_events e.e_events_per_sec e.e_words_per_event))
    r.r_entries;
  Buffer.contents buf
