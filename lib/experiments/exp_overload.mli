(** Overload-protection experiments (the danaus_qos pipeline).

    [overload] sweeps open-loop offered load over one Danaus pool at
    0.5x/1x/1.5x/2x of its saturation rate, with and without the qos
    pipeline: with admission control the goodput curve stays at the knee
    while the excess is shed; without it the queue past the knee pushes
    every op over the SLA and goodput collapses.

    [noisy_neighbor] colocates a victim Fileserver pool with a pool
    driven to 2x saturation by an open-loop writer, per configuration:
    under D with qos the aggressor's admission controller sheds the
    excess and the victim keeps >=90% of its isolated throughput; under
    K/K and F/F the full offered load lands on the shared stack. *)

val overload : seed:int -> quick:bool -> Report.t list
val noisy_neighbor : seed:int -> quick:bool -> Report.t list
