(** Perf trajectory of the simulation core: microbenches from the bare
    event loop up to single seqio/contention cells of the paper
    workloads, each measured as (wall time, engine events dispatched,
    minor-heap words), serialized as BENCH_<label>.json, and gated
    against a checked-in baseline in CI.

    Methodology (tolerances, normalization, how to regenerate the
    baseline) is documented in EXPERIMENTS.md "Perf trajectory". *)

type entry = {
  e_name : string;
  e_wall_s : float;  (** wall-clock seconds for the bench body *)
  e_events : int;  (** engine events dispatched ({!Danaus_sim.Engine}) *)
  e_minor_words : float;  (** minor-heap words allocated *)
  e_events_per_sec : float;
  e_words_per_event : float;
}

type result = {
  r_label : string;
  r_calibration : float;
      (** ops/sec of a fixed spin loop; machine-speed proxy used to
          normalize events/sec in {!gate} *)
  r_entries : entry list;
}

val schema_version : int

(** Run every microbench once (invariants and tracing stay at their
    process defaults — off for published numbers). *)
val run : ?label:string -> unit -> result

val to_json : result -> string

(** Parse a BENCH_*.json produced by {!to_json}.  Raises [Json.Bad] on
    malformed input. *)
val of_json : string -> result

(** [gate ~baseline ~head ~tolerance] fails an entry when its
    calibration-normalized events/sec drops more than [tolerance]
    (fractional, e.g. 0.15) below the baseline, or its words/event grows
    beyond the same tolerance (plus a 0.5-word absolute allowance).
    Entries in the baseline but missing from [head] fail; extra head
    entries are ignored (they become gated once the baseline is
    regenerated). *)
val gate :
  baseline:result -> head:result -> tolerance:float -> (unit, string list) Stdlib.result

(** Human-readable table of a result. *)
val render : result -> string
