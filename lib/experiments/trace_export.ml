open Danaus_sim

(* Chrome trace-event ("Perfetto") export and plain-text latency
   attribution over a report's causal spans.

   Chrome layout:
   - pid 1 "cores": one thread per simulated core (per report), showing
     every CPU burst as a complete ("X") event — the flamegraph view of
     core stealing.
   - one pid per (report, pool): the per-op trees rooted in layer "core",
     rendered as nestable async ("b"/"e") events.  Async events are keyed
     by cat+id (NOT pid), so ids are strings "<report>:<root id>" to stay
     unique across reports.
   - one pid per report for "background" trees (flusher work and other
     spans with no "core" root).

   All ordering is derived from the deterministic span order, so the
   bytes are identical between `-j 1` and `-j 4` runs. *)

let jstr = Report.jstr
let jnum = Report.jnum

let is_core_burst (cs : Obs.cspan) =
  String.equal cs.Obs.cs_layer "hw"
  &&
  let key = cs.Obs.cs_key in
  (* last ':'-separated segment is "core<N>" (merged keys carry a
     cell prefix like "fig9w:p2:core1") *)
  let seg =
    match String.rindex_opt key ':' with
    | Some i -> String.sub key (i + 1) (String.length key - i - 1)
    | None -> key
  in
  String.length seg > 4
  && String.equal (String.sub seg 0 4) "core"
  && String.for_all
       (fun c -> c >= '0' && c <= '9')
       (String.sub seg 4 (String.length seg - 4))

let compare_span (a : Obs.cspan) (b : Obs.cspan) =
  match Float.compare a.Obs.cs_start b.Obs.cs_start with
  | 0 -> Int.compare a.Obs.cs_id b.Obs.cs_id
  | c -> c

let args_json (cs : Obs.cspan) =
  Printf.sprintf "{\"layer\":%s,\"phase\":%s,\"key\":%s}"
    (jstr cs.Obs.cs_layer)
    (jstr (Trace.phase_name cs.Obs.cs_phase))
    (jstr cs.Obs.cs_key)

let chrome_json (reports : Report.t list) =
  let events = Buffer.create 4096 in
  let first = ref true in
  let emit ev =
    if !first then first := false else Buffer.add_string events ",\n";
    Buffer.add_string events ev
  in
  (* --- pid 1: per-core tracks --------------------------------------- *)
  emit "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"cores\"}}";
  let bursts =
    List.concat_map
      (fun (r : Report.t) ->
        List.filter_map
          (fun cs ->
            if is_core_burst cs then Some (r.Report.id ^ ":" ^ cs.Obs.cs_key, cs)
            else None)
          r.Report.spans)
      reports
  in
  let core_tids = Hashtbl.create 16 in
  List.iter
    (fun track ->
      if not (Hashtbl.mem core_tids track) then begin
        let tid = Hashtbl.length core_tids + 1 in
        Hashtbl.add core_tids track tid;
        emit
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":%s}}"
             tid (jstr track))
      end)
    (List.sort_uniq String.compare (List.map fst bursts));
  List.iter
    (fun (track, cs) ->
      emit
        (Printf.sprintf
           "{\"name\":%s,\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":%s}"
           (jstr cs.Obs.cs_name)
           (Hashtbl.find core_tids track)
           (jnum (cs.Obs.cs_start *. 1e6))
           (jnum (cs.Obs.cs_dur *. 1e6))
           (args_json cs)))
    bursts;
  (* --- per-pool / background pids: op trees as async events ---------- *)
  let pids = Hashtbl.create 16 in
  let pid_of name =
    match Hashtbl.find_opt pids name with
    | Some p -> p
    | None ->
        let p = Hashtbl.length pids + 2 in
        Hashtbl.add pids name p;
        emit
          (Printf.sprintf
             "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":%s}}"
             p (jstr name));
        p
  in
  List.iter
    (fun (r : Report.t) ->
      let spans = List.filter (fun cs -> cs.Obs.cs_dur >= 0.0) r.Report.spans in
      let by_id = Hashtbl.create 256 in
      List.iter (fun cs -> Hashtbl.replace by_id cs.Obs.cs_id cs) spans;
      let children = Hashtbl.create 256 in
      List.iter
        (fun cs ->
          if cs.Obs.cs_parent <> 0 && Hashtbl.mem by_id cs.Obs.cs_parent then
            Hashtbl.replace children cs.Obs.cs_parent
              (cs
              :: Option.value ~default:[]
                   (Hashtbl.find_opt children cs.Obs.cs_parent)))
        spans;
      let kids id =
        List.sort compare_span
          (Option.value ~default:[] (Hashtbl.find_opt children id))
      in
      let roots =
        List.filter
          (fun cs ->
            (not (is_core_burst cs))
            && (cs.Obs.cs_parent = 0 || not (Hashtbl.mem by_id cs.Obs.cs_parent)))
          spans
        |> List.sort compare_span
      in
      List.iter
        (fun root ->
          let pname =
            if String.equal root.Obs.cs_layer "core" then
              r.Report.id ^ ":" ^ root.Obs.cs_key
            else r.Report.id ^ ":background"
          in
          let pid = pid_of pname in
          let id = jstr (r.Report.id ^ ":" ^ string_of_int root.Obs.cs_id) in
          (* DFS with intervals clamped into the parent window so the
             b/e events nest cleanly *)
          let rec walk lo hi cs =
            let lo = Float.max lo cs.Obs.cs_start
            and hi = Float.min hi (cs.Obs.cs_start +. cs.Obs.cs_dur) in
            if lo <= hi && not (is_core_burst cs) then begin
              emit
                (Printf.sprintf
                   "{\"name\":%s,\"cat\":\"op\",\"ph\":\"b\",\"id\":%s,\"pid\":%d,\"tid\":0,\"ts\":%s,\"args\":%s}"
                   (jstr cs.Obs.cs_name) id pid
                   (jnum (lo *. 1e6))
                   (args_json cs));
              List.iter (walk lo hi) (kids cs.Obs.cs_id);
              emit
                (Printf.sprintf
                   "{\"name\":%s,\"cat\":\"op\",\"ph\":\"e\",\"id\":%s,\"pid\":%d,\"tid\":0,\"ts\":%s}"
                   (jstr cs.Obs.cs_name) id pid
                   (jnum (hi *. 1e6)))
            end
          in
          walk root.Obs.cs_start
            (root.Obs.cs_start +. root.Obs.cs_dur)
            root)
        roots)
    reports;
  "{\"traceEvents\":[\n" ^ Buffer.contents events ^ "\n]}\n"

(* ------------------------------------------------------------------ *)
(* Plain-text latency attribution table (`danaus-cli explain`, bench). *)

let render_attribution (r : Report.t) =
  let att = Trace.attribute r.Report.spans in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "== attribution: %s (%d ops) ==\n" r.Report.id att.Trace.at_ops);
  if att.Trace.at_ops = 0 then
    Buffer.add_string buf
      "no traced ops (run with tracing enabled, e.g. danaus-cli explain)\n"
  else begin
    let rows =
      List.map
        (fun (row : Trace.attr_row) ->
          [
            row.Trace.ar_layer;
            Trace.phase_name row.Trace.ar_phase;
            Printf.sprintf "%.3f" row.Trace.ar_total;
            Printf.sprintf "%.3f" (row.Trace.ar_mean *. 1e3);
            Printf.sprintf "%.3f" (row.Trace.ar_p99 *. 1e3);
            Printf.sprintf "%.1f%%" (row.Trace.ar_share *. 100.0);
          ])
        att.Trace.at_rows
    in
    let header = [ "layer"; "phase"; "total(s)"; "mean(ms)"; "p99(ms)"; "share" ] in
    let all = header :: rows in
    let width c =
      List.fold_left
        (fun acc row ->
          match List.nth_opt row c with
          | Some cell -> Stdlib.max acc (String.length cell)
          | None -> acc)
        0 all
    in
    let widths = List.init (List.length header) width in
    let render_row row =
      String.concat "  "
        (List.mapi
           (fun c w ->
             let cell = Option.value ~default:"" (List.nth_opt row c) in
             cell ^ String.make (Stdlib.max 0 (w - String.length cell)) ' ')
           widths)
      |> String.trim
    in
    Buffer.add_string buf (render_row header ^ "\n");
    Buffer.add_string buf
      (String.make
         (List.fold_left ( + ) (2 * (List.length widths - 1)) widths)
         '-'
      ^ "\n");
    List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
    Buffer.add_string buf
      (Printf.sprintf "e2e: mean %.3fms  p99 %.3fms  total %.3fs\n"
         (att.Trace.at_e2e_mean *. 1e3)
         (att.Trace.at_e2e_p99 *. 1e3)
         att.Trace.at_e2e_total);
    Buffer.add_string buf
      (Printf.sprintf
         "per-op phase sums match e2e latency (max residual %.3g s)\n"
         att.Trace.at_max_residual)
  end;
  Buffer.contents buf
