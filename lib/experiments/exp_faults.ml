open Danaus_sim
open Danaus_kernel
open Danaus_ceph
open Danaus
open Danaus_faults
open Danaus_workloads

let gib n = n * 1024 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* fault-client: crash a client stack mid-Fileserver and compare the
   blast radius across configurations (the paper's §5 fault-containment
   claim).  Two pools run side by side; under D the crash fells one
   pool's service, under K/K or F/F the shared stack takes every
   colocated pool down with it. *)

let fls_params ~quick ~duration =
  if quick then
    {
      Fileserver.default_params with
      Fileserver.files = 200;
      mean_file_size = 1024 * 1024;
      threads = 8;
      duration;
    }
  else { Fileserver.default_params with Fileserver.duration = duration }

type crash_shape = Pool_crash | Host_wide

let client_cell ~seed ~quick ~config ~shape =
  let pools_n = 2 in
  let duration = if quick then 12.0 else 40.0 in
  let restart_after = 2.0 in
  let p = fls_params ~quick ~duration in
  let tb = Testbed.create ~seed ~activated:4 () in
  let containers =
    List.init pools_n (fun i ->
        let pool = Testbed.pool tb i in
        ( pool,
          Container_engine.launch tb.Testbed.containers ~config ~pool
            ~id:(Printf.sprintf "flt%d" i) ~cache_bytes:(gib 2) () ))
  in
  let warmed = ref 0 in
  List.iteri
    (fun i (pool, ct) ->
      Engine.spawn tb.Testbed.engine (fun () ->
          let ctx = Testbed.ctx tb ~pool ~seed:(4100 + i) in
          Fileserver.prepopulate ctx ~view:ct.Container_engine.view p;
          incr warmed))
    containers;
  Testbed.drive tb ~stop:(fun () -> !warmed = pools_n);
  Testbed.reset_metrics tb;
  let points = Testbed.start_sampler tb in
  (* the crash lands a few seconds into the measured window, at a
     seed-determined instant *)
  let t0 = Engine.now tb.Testbed.engine in
  let action =
    match shape with
    | Pool_crash ->
        Fault_plan.Client_crash
          { pool = Cgroup.name (Testbed.pool tb 0); restart_after }
    | Host_wide -> Fault_plan.Host_crash { restart_after }
  in
  Testbed.inject tb ~plan:[ Fault_plan.between (t0 +. 2.0) (t0 +. 4.0) action ];
  let results = Array.make pools_n None in
  let done_count = ref 0 in
  List.iteri
    (fun i (pool, ct) ->
      Engine.spawn tb.Testbed.engine (fun () ->
          let ctx = Testbed.ctx tb ~pool ~seed:(4200 + i) in
          results.(i) <- Some (Fileserver.run ctx ~view:ct.Container_engine.view p);
          incr done_count))
    containers;
  Testbed.drive tb ~stop:(fun () -> !done_count = pools_n);
  let obs = tb.Testbed.obs in
  let per_pool name i =
    Obs.sum_key obs ~name ~key:(Cgroup.name (Testbed.pool tb i)) ()
  in
  let throughput i =
    match results.(i) with
    | Some r -> r.Fileserver.throughput_mbps
    | None -> 0.0
  in
  ( Array.init pools_n throughput,
    Array.init pools_n (per_pool "downtime"),
    Array.init pools_n (per_pool "retries"),
    Obs.sum obs ~layer:"core" ~name:"client_crash" (),
    Obs.snapshot obs,
    Obs.cspans obs,
    points () )

let fault_client ~seed ~quick =
  let cells =
    [
      ("D", Config.d, Pool_crash);
      ("K/K", Config.kk, Host_wide);
      ("F/F", Config.ff, Host_wide);
    ]
  in
  let outcomes =
    List.map
      (fun (label, config, shape) ->
        (label, client_cell ~seed ~quick ~config ~shape))
      cells
  in
  let rows =
    List.map
      (fun (label, (thr, down, retries, crashes, _, _, _)) ->
        [
          label;
          Report.mbps thr.(0);
          Report.mbps thr.(1);
          Report.f1 down.(0);
          Report.f1 down.(1);
          Printf.sprintf "%.0f" retries.(0);
          Printf.sprintf "%.0f" retries.(1);
          Printf.sprintf "%.0f" crashes;
        ])
      outcomes
  in
  let metrics =
    List.concat_map
      (fun (label, (_, _, _, _, m, _, _)) -> Obs.prefix_keys (label ^ ":") m)
      outcomes
  in
  let spans =
    Danaus_sim.Trace.merge
      (List.map (fun (label, (_, _, _, _, _, s, _)) -> (label ^ ":", s)) outcomes)
  in
  let timeseries =
    List.concat_map
      (fun (label, (_, _, _, _, _, _, ts)) ->
        Obs.Sampler.prefix_keys (label ^ ":") ts)
      outcomes
  in
  [
    Report.make ~id:"fault-client"
      ~title:"Client-stack crash blast radius (2 pools, crash mid-run)"
      ~header:
        [
          "config";
          "pool0 MB/s";
          "pool1 MB/s";
          "pool0 downtime s";
          "pool1 downtime s";
          "pool0 retries";
          "pool1 retries";
          "stacks crashed";
        ]
      ~notes:
        [
          "D: only pool0's service dies (pool1 downtime 0); K/K and F/F: \
           the shared stack takes both pools down";
        ]
      ~metrics ~spans ~timeseries rows;
  ]

(* ------------------------------------------------------------------ *)
(* fault-osd: kill one replica-holding OSD mid-run under osdmap
   semantics, then revive it.  Throughput dips while clients time out
   against the stale map and while the survivors absorb the load; it
   recovers after mark-down, and fully after the re-sync replays the
   degraded objects onto the returned OSD. *)

let osd_cell ~seed ~quick =
  let duration = if quick then 8.0 else 30.0 in
  let p = fls_params ~quick ~duration in
  let tb = Testbed.create ~seed ~replicas:2 ~activated:4 () in
  Cluster.enable_monitor ~heartbeat:1.0 ~grace:3.0 ~op_timeout:0.25
    tb.Testbed.cluster;
  let pool = Testbed.pool tb 0 in
  (* a cache much smaller than the dataset: reads must refetch and
     writeback flushes stay frequent, so the dead OSD is actually hit *)
  let ct =
    Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool
      ~id:"osdflt" ~cache_bytes:(64 * 1024 * 1024) ()
  in
  let warmed = ref false in
  Engine.spawn tb.Testbed.engine (fun () ->
      let ctx = Testbed.ctx tb ~pool ~seed:4300 in
      Fileserver.prepopulate ctx ~view:ct.Container_engine.view p;
      warmed := true);
  Testbed.drive tb ~stop:(fun () -> !warmed);
  Testbed.reset_metrics tb;
  let points = Testbed.start_sampler tb in
  let t0 = Engine.now tb.Testbed.engine in
  (* phase boundaries: healthy [t0, t0+d), degraded [t0+d, t0+2d) with
     the OSD dying 1 s in, recovering [t0+2d, ...) with the OSD back
     1 s in (re-sync runs before the map shows it up) *)
  Testbed.inject tb
    ~plan:
      [
        Fault_plan.at (t0 +. duration +. 1.0) (Fault_plan.Osd_down 0);
        Fault_plan.at (t0 +. (2.0 *. duration) +. 1.0) (Fault_plan.Osd_up 0);
      ];
  let phases = [ "healthy"; "osd0 down"; "osd0 back (re-sync)" ] in
  let results = Array.make (List.length phases) 0.0 in
  let done_ = ref false in
  Engine.spawn tb.Testbed.engine (fun () ->
      List.iteri
        (fun i _ ->
          let ctx = Testbed.ctx tb ~pool ~seed:(4400 + i) in
          let r = Fileserver.run ctx ~view:ct.Container_engine.view p in
          results.(i) <- r.Fileserver.throughput_mbps)
        phases;
      done_ := true);
  Testbed.drive tb ~stop:(fun () -> !done_);
  (* drain the re-sync before reading the recovery gauge *)
  Testbed.drive tb ~stop:(fun () -> Cluster.monitor_sees_up tb.Testbed.cluster 0);
  let obs = tb.Testbed.obs in
  let ceph name = Obs.get obs ~layer:"ceph" ~name ~key:"cluster" in
  let recovery = Obs.get obs ~layer:"ceph" ~name:"recovery_time" ~key:"osd0" in
  Cluster.disable_monitor tb.Testbed.cluster;
  ( List.combine phases (Array.to_list results),
    ceph "osd_mark_down",
    ceph "failed_ops",
    ceph "degraded_objects",
    ceph "resync_bytes",
    recovery,
    Obs.snapshot obs,
    Obs.cspans obs,
    points () )

let fault_osd ~seed ~quick =
  let ( phases,
        mark_down,
        failed,
        degraded,
        resync,
        recovery,
        metrics,
        spans,
        timeseries ) =
    osd_cell ~seed ~quick
  in
  let rows = List.map (fun (l, t) -> [ l; Report.mbps t ]) phases in
  [
    Report.make ~id:"fault-osd"
      ~title:"OSD failure and recovery under osdmap semantics (Fileserver MB/s)"
      ~header:[ "phase"; "MB/s" ]
      ~notes:
        [
          Printf.sprintf
            "mark-downs: %.0f; timed-out ops: %.0f; degraded objects: %.0f; \
             re-sync bytes: %.0f; recovery time: %.1f s"
            mark_down failed degraded resync recovery;
          "the dip comes from op timeouts against the stale osdmap and \
           the survivor absorbing writes; recovery completes once the \
           re-sync replays degraded objects onto the returned OSD";
        ]
      ~metrics ~spans ~timeseries rows;
  ]
