open Danaus_sim
open Danaus
open Danaus_workloads

let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

(* Store sizing: quick mode shrinks the data volumes but keeps every
   structural ratio (dataset >> cache for the out-of-core reads). *)
type sizing = {
  put_bytes : int;
  populate_bytes : int;
  gets : int;
  cache_bytes : int;
  scaleup_put_bytes : int;
  scaleup_populate : int;
  scaleup_cache : int;
  scaleup_gets : int;
}

let sizing ~quick =
  if quick then
    {
      put_bytes = mib 256;
      populate_bytes = mib 1536;
      gets = 2000;
      cache_bytes = mib 512;
      scaleup_put_bytes = mib 128;
      scaleup_populate = mib 512;
      scaleup_cache = gib 1;
      scaleup_gets = 1000;
    }
  else
    {
      put_bytes = gib 1;
      populate_bytes = gib 8;
      gets = 65536;
      cache_bytes = gib 4;
      scaleup_put_bytes = gib 1;
      scaleup_populate = gib 8;
      scaleup_cache = gib 100;
      scaleup_gets = 65536;
    }

let kv_params = { Kvstore.default_params with Kvstore.dir = "/db" }

type mode = Put | Get

let mode_name = function Put -> "put" | Get -> "get"

(* ------------------------------------------------------------------ *)
(* Scaleout: one pool + private client per store *)

let scaleout_cell ~seed ~quick ~config ~pools ~mode =
  let sz = sizing ~quick in
  let activated = Stdlib.min Params.client_cores (2 * pools) in
  let tb = Testbed.create ~seed ~activated () in
  let latencies = Array.make pools nan in
  let done_count = ref 0 in
  for i = 0 to pools - 1 do
    let pool = Testbed.pool tb i in
    let cache_bytes = match mode with Put -> gib 4 | Get -> sz.cache_bytes in
    let ct =
      Container_engine.launch tb.Testbed.containers ~config ~pool
        ~id:(Printf.sprintf "kv%d" i) ~cache_bytes ()
    in
    Engine.spawn tb.Testbed.engine ~name:(Printf.sprintf "rocksdb-%d" i) (fun () ->
        let ctx = Testbed.ctx tb ~pool ~seed:(500 + i) in
        let kv = Kvstore.create ctx ~view:ct.Container_engine.view kv_params in
        (match mode with
        | Put ->
            Kvstore.populate kv ~thread:1 ~bytes:sz.put_bytes;
            latencies.(i) <- Stats.mean (Kvstore.put_stats kv).Workload.op_latency
        | Get ->
            Kvstore.populate kv ~thread:1 ~bytes:sz.populate_bytes;
            for _ = 1 to sz.gets do
              Kvstore.get kv ~thread:1
            done;
            latencies.(i) <- Stats.mean (Kvstore.get_stats kv).Workload.op_latency);
        Kvstore.shutdown kv;
        incr done_count)
  done;
  Testbed.drive tb ~stop:(fun () -> !done_count = pools);
  Array.fold_left ( +. ) 0.0 latencies /. float_of_int pools

let scaleout_figure ~id ~title ~seed ~quick ~mode =
  let pool_counts = if quick then [ 1; 8; 32 ] else [ 1; 2; 4; 8; 16; 32 ] in
  let configs = [ Config.d; Config.f; Config.k ] in
  let rows =
    List.map
      (fun pools ->
        string_of_int pools
        :: List.map
             (fun config ->
               Report.ms (scaleout_cell ~seed ~quick ~config ~pools ~mode))
             configs)
      pool_counts
  in
  [
    Report.make ~id ~title
      ~header:("pools" :: List.map (fun c -> c.Config.label ^ " " ^ mode_name mode) configs)
      rows;
  ]

let fig7a ~seed ~quick =
  scaleout_figure ~id:"fig7a" ~title:"RocksDB put scaleout (mean latency)" ~seed
    ~quick ~mode:Put

let fig7b ~seed ~quick =
  scaleout_figure ~id:"fig7b"
    ~title:"RocksDB out-of-core get scaleout (mean latency)" ~seed ~quick
    ~mode:Get

(* ------------------------------------------------------------------ *)
(* Scaleup: cloned containers in one big pool over a shared client *)

let scaleup_cell ~seed ~quick ~config ~clones ~mode =
  let sz = sizing ~quick in
  let tb = Testbed.create ~seed ~activated:Params.client_cores () in
  let pool =
    Testbed.custom_pool tb ~name:"bigpool"
      ~cores:(Array.init Params.client_cores (fun i -> i))
      ~mem:(200 * 1024 * 1024 * 1024)
  in
  Container_engine.install_image tb.Testbed.containers ~name:"rocksdb"
    ~files:[ ("/usr/bin/rocksdb", mib 20); ("/etc/rocksdb.conf", 4096) ];
  let latencies = Array.make clones nan in
  let done_count = ref 0 in
  for i = 0 to clones - 1 do
    let ct =
      Container_engine.launch tb.Testbed.containers ~config ~pool
        ~id:(Printf.sprintf "clone%d" i) ~image:"rocksdb"
        ~cache_bytes:sz.scaleup_cache ()
    in
    Engine.spawn tb.Testbed.engine ~name:(Printf.sprintf "rocksdb-up-%d" i)
      (fun () ->
        let ctx = Testbed.ctx tb ~pool ~seed:(700 + i) in
        let kv = Kvstore.create ctx ~view:ct.Container_engine.view kv_params in
        (match mode with
        | Put ->
            Kvstore.populate kv ~thread:(2 * i) ~bytes:sz.scaleup_put_bytes;
            latencies.(i) <- Stats.mean (Kvstore.put_stats kv).Workload.op_latency
        | Get ->
            Kvstore.populate kv ~thread:(2 * i) ~bytes:sz.scaleup_populate;
            for _ = 1 to sz.scaleup_gets do
              Kvstore.get kv ~thread:(2 * i)
            done;
            latencies.(i) <- Stats.mean (Kvstore.get_stats kv).Workload.op_latency);
        Kvstore.shutdown kv;
        incr done_count)
  done;
  Testbed.drive tb ~stop:(fun () -> !done_count = clones);
  Array.fold_left ( +. ) 0.0 latencies /. float_of_int clones

let scaleup_figure ~id ~title ~seed ~quick ~mode =
  let clone_counts = if quick then [ 1; 8; 32 ] else [ 1; 2; 4; 8; 16; 32 ] in
  let configs = [ Config.d; Config.ff; Config.fk; Config.kk ] in
  let rows =
    List.map
      (fun clones ->
        string_of_int clones
        :: List.map
             (fun config ->
               Report.ms (scaleup_cell ~seed ~quick ~config ~clones ~mode))
             configs)
      clone_counts
  in
  [
    Report.make ~id ~title
      ~header:("clones" :: List.map (fun c -> c.Config.label) configs)
      rows;
  ]

let fig7c ~seed ~quick =
  scaleup_figure ~id:"fig7c" ~title:"RocksDB put scaleup (mean latency)" ~seed
    ~quick ~mode:Put

let fig7d ~seed ~quick =
  scaleup_figure ~id:"fig7d" ~title:"RocksDB get scaleup (mean latency)" ~seed
    ~quick ~mode:Get
