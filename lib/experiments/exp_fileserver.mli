(** Fileserver scaleout (Fig. 10): total Filebench Fileserver throughput
    of 1-16 pools over D, F and K, with client-side I/O-wait CPU. *)

val fig10 : seed:int -> quick:bool -> Report.t list
