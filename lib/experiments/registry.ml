open Danaus

type exp = { id : string; title : string; run : quick:bool -> seed:int -> Report.t list }

let tab1 ~quick:_ ~seed:_ =
  [
    Report.make ~id:"tab1" ~title:"Client system components"
      ~header:[ "" ]
      (List.map (fun l -> [ l ]) (String.split_on_char '\n' (Config.table1 ())));
  ]

let all =
  [
    { id = "tab1"; title = "Table 1: configuration matrix"; run = tab1 };
    {
      id = "tab2";
      title = "Table 2: contention workload symbols";
      run = (fun ~quick:_ ~seed:_ -> Contention.table2 ());
    };
    {
      id = "fig1";
      title = "Fig 1: Fileserver collapse in the shared kernel";
      run = (fun ~quick ~seed -> Contention.fig1 ~seed ~quick);
    };
    {
      id = "fig6a";
      title = "Fig 6a: Fileserver x RandomIO interference";
      run = (fun ~quick ~seed -> Contention.fig6a ~seed ~quick);
    };
    {
      id = "fig6b";
      title = "Fig 6b: Fileserver x Webserver interference";
      run = (fun ~quick ~seed -> Contention.fig6b ~seed ~quick);
    };
    {
      id = "fig6c";
      title = "Fig 6c: Fileserver x Sysbench latency interference";
      run = (fun ~quick ~seed -> Contention.fig6c ~seed ~quick);
    };
    {
      id = "fig7a";
      title = "Fig 7a: RocksDB put scaleout";
      run = (fun ~quick ~seed -> Exp_rocksdb.fig7a ~seed ~quick);
    };
    {
      id = "fig7b";
      title = "Fig 7b: RocksDB get scaleout (out of core)";
      run = (fun ~quick ~seed -> Exp_rocksdb.fig7b ~seed ~quick);
    };
    {
      id = "fig7c";
      title = "Fig 7c: RocksDB put scaleup";
      run = (fun ~quick ~seed -> Exp_rocksdb.fig7c ~seed ~quick);
    };
    {
      id = "fig7d";
      title = "Fig 7d: RocksDB get scaleup";
      run = (fun ~quick ~seed -> Exp_rocksdb.fig7d ~seed ~quick);
    };
    {
      id = "fig8";
      title = "Fig 8: Lighttpd container startup scaleup";
      run = (fun ~quick ~seed -> Exp_startup.fig8 ~seed ~quick);
    };
    {
      id = "fig9";
      title = "Fig 9: Seqwrite/Seqread scaleout";
      run = (fun ~quick ~seed -> Exp_seqio.fig9 ~seed ~quick);
    };
    {
      id = "fig10";
      title = "Fig 10: Fileserver scaleout";
      run = (fun ~quick ~seed -> Exp_fileserver.fig10 ~seed ~quick);
    };
    {
      id = "fig11a";
      title = "Fig 11a: Fileappend scaleup";
      run = (fun ~quick ~seed -> Exp_filerw.fig11a ~seed ~quick);
    };
    {
      id = "fig11b";
      title = "Fig 11b: Fileread scaleup";
      run = (fun ~quick ~seed -> Exp_filerw.fig11b ~seed ~quick);
    };
    {
      id = "abl-lock";
      title = "Ablation: client_lock granularity (paper S9 future work)";
      run = (fun ~quick ~seed -> Ablations.ablation_lock ~seed ~quick);
    };
    {
      id = "abl-dual";
      title = "Ablation: dual interface (default IPC vs legacy FUSE path)";
      run = (fun ~quick ~seed -> Ablations.ablation_dual ~seed ~quick);
    };
    {
      id = "dyn";
      title = "Extension (S9): dynamic reallocation of underutilised cores";
      run = (fun ~quick ~seed -> Dynamic_alloc.fig_dynamic ~seed ~quick);
    };
    {
      id = "abl-cow";
      title = "Extension (S9): block-level copy-on-write in the union";
      run = (fun ~quick ~seed -> Ablations.ablation_block_cow ~seed ~quick);
    };
    {
      id = "mig";
      title = "Extension (S9): container migration over the shared filesystem";
      run = (fun ~quick ~seed -> Migration.fig_migration ~seed ~quick);
    };
    {
      id = "abl-union";
      title = "Ablation: integrated union branch-probing cost";
      run = (fun ~quick ~seed -> Ablations.ablation_union ~seed ~quick);
    };
    {
      id = "fault-client";
      title = "Fault: client-stack crash blast radius (D vs K/K vs F/F)";
      run = (fun ~quick ~seed -> Exp_faults.fault_client ~seed ~quick);
    };
    {
      id = "fault-osd";
      title = "Fault: OSD failure, mark-down and re-sync recovery";
      run = (fun ~quick ~seed -> Exp_faults.fault_osd ~seed ~quick);
    };
    {
      id = "overload";
      title = "Overload: offered-load sweep with and without qos protection";
      run = (fun ~quick ~seed -> Exp_overload.overload ~seed ~quick);
    };
    {
      id = "noisy-neighbor";
      title = "Overload: noisy neighbor at 2x saturation (D+qos vs K/K vs F/F)";
      run = (fun ~quick ~seed -> Exp_overload.noisy_neighbor ~seed ~quick);
    };
    {
      id = "sched-policy";
      title = "Scheduler: bin-pack vs spread vs contention-aware placement";
      run = (fun ~quick ~seed -> Exp_sched.sched_policy ~seed ~quick);
    };
    {
      id = "sched-drain";
      title = "Scheduler: rolling-upgrade host drain under live load";
      run = (fun ~quick ~seed -> Exp_sched.sched_drain ~seed ~quick);
    };
    {
      id = "autoscale";
      title = "Scheduler: shed-rate autoscaling through a flash crowd";
      run = (fun ~quick ~seed -> Exp_sched.autoscale ~seed ~quick);
    };
    {
      id = "osd-recovery";
      title = "Recovery: paced OSD re-sync with degraded reads (MTTR vs pacing)";
      run = (fun ~quick ~seed -> Exp_recovery.osd_recovery ~seed ~quick);
    };
    {
      id = "backfill-qos";
      title = "Recovery: backfill bandwidth vs victim goodput arbitration";
      run = (fun ~quick ~seed -> Exp_recovery.backfill_qos ~seed ~quick);
    };
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all
let ids () = List.map (fun e -> e.id) all

(* Experiments are independent (each builds its own testbeds), so they
   can run on separate domains.  Results land in a position-indexed
   array and are returned in the input order, which keeps the printed
   output byte-identical to a sequential run regardless of [jobs]. *)
let run_exps ?(jobs = 1) ?(seed = 1) ~quick exps =
  let exps = Array.of_list exps in
  let n = Array.length exps in
  let results : (Report.t list, exn) result option array = Array.make n None in
  let run_one i =
    results.(i) <- Some (try Ok (exps.(i).run ~quick ~seed) with exn -> Error exn)
  in
  let jobs = Stdlib.min (Stdlib.max 1 jobs) (Stdlib.max 1 n) in
  if jobs <= 1 then
    for i = 0 to n - 1 do
      run_one i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i < n then run_one i else continue := false
      done
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end;
  Array.to_list
    (Array.mapi
       (fun i r ->
         match r with
         | Some (Ok reports) -> (exps.(i), reports)
         | Some (Error exn) -> raise exn
         | None -> assert false)
       results)
