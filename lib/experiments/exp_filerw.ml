open Danaus_sim
open Danaus_kernel
open Danaus
open Danaus_workloads

let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

type mode = Append | Read

let file_bytes ~quick = if quick then mib 256 else Filerw.default_file_bytes

(* One run: N clones in a single big pool, each with a private union over
   the shared image branch, all running Fileappend or Fileread on the
   image's 2 GB file.  Returns (timespan, max memory bytes). *)
let run_cell ~seed ~quick ~config ~clones ~mode =
  let tb = Testbed.create ~seed ~activated:Params.client_cores () in
  (* quick mode shrinks the files 8x, so the pool memory shrinks too:
     the paper's dirty-pressure ratio (32 x 2 GB of copy-up writes vs a
     100 GB dirty limit) is what drives the Fig. 11a timespans *)
  let pool_mem =
    if quick then 24 * 1024 * 1024 * 1024 else 200 * 1024 * 1024 * 1024
  in
  let pool =
    Testbed.custom_pool tb ~name:"bigpool"
      ~cores:(Array.init Params.client_cores (fun i -> i))
      ~mem:pool_mem
  in
  let fsize = file_bytes ~quick in
  Container_engine.install_image tb.Testbed.containers ~name:"dataset"
    ~files:[ ("/big", fsize) ];
  let containers =
    List.init clones (fun i ->
        Container_engine.launch tb.Testbed.containers ~config ~pool
          ~id:(Printf.sprintf "rw%d" i) ~image:"dataset"
          ~cache_bytes:(if quick then gib 12 else gib 100)
          ())
  in
  let host_mem_before =
    Page_cache.used_bytes (Kernel.page_cache tb.Testbed.kernel)
  in
  let started = Engine.now tb.Testbed.engine in
  let finished = ref 0 in
  let last_finish = ref started in
  List.iteri
    (fun i ct ->
      Engine.spawn tb.Testbed.engine ~name:(Printf.sprintf "filerw-%d" i) (fun () ->
          let ctx = Testbed.ctx tb ~pool ~seed:(1500 + i) in
          let view = ct.Container_engine.view ~thread:i in
          (match mode with
          | Append ->
              Filerw.fileappend ctx ~view ~path:"/big" ~append_bytes:(mib 1)
                ~chunk:(mib 1)
          | Read -> Filerw.fileread ctx ~view ~path:"/big" ~chunk:(mib 1));
          last_finish := Engine.now tb.Testbed.engine;
          incr finished))
    containers;
  Testbed.drive tb ~stop:(fun () -> !finished = clones);
  let timespan = !last_finish -. started in
  let user_mem =
    match containers with ct :: _ -> ct.Container_engine.user_memory () | [] -> 0
  in
  let host_mem =
    Page_cache.used_bytes (Kernel.page_cache tb.Testbed.kernel) - host_mem_before
  in
  (timespan, user_mem + Stdlib.max 0 host_mem)

let figure ~id ~title ~seed ~quick ~mode =
  let clone_counts = if quick then [ 1; 8; 32 ] else [ 1; 2; 4; 8; 16; 32 ] in
  let configs = [ Config.d; Config.kk; Config.ff; Config.fpfp ] in
  let cells =
    List.map
      (fun clones ->
        ( clones,
          List.map (fun c -> run_cell ~seed ~quick ~config:c ~clones ~mode) configs
        ))
      clone_counts
  in
  let header = "clones" :: List.map (fun c -> c.Config.label) configs in
  let time_rows =
    List.map
      (fun (clones, results) ->
        string_of_int clones :: List.map (fun (t, _) -> Report.f2 t) results)
      cells
  in
  let mem_rows =
    List.map
      (fun (clones, results) ->
        string_of_int clones
        :: List.map
             (fun (_, m) -> Printf.sprintf "%.0f" (float_of_int m /. 1048576.0))
             results)
      cells
  in
  [
    Report.make ~id:(id ^ "-time") ~title:(title ^ ": timespan (s)") ~header time_rows;
    Report.make ~id:(id ^ "-mem") ~title:(title ^ ": max memory (MiB)") ~header
      mem_rows;
  ]

let fig11a ~seed ~quick =
  figure ~id:"fig11a" ~title:"Fileappend scaleup (copy-up 50/50 r/w)" ~seed ~quick
    ~mode:Append

let fig11b ~seed ~quick =
  figure ~id:"fig11b" ~title:"Fileread scaleup" ~seed ~quick ~mode:Read
