(** Workload interference experiments: the motivation figure (Fig. 1) and
    the isolation evaluation (Fig. 6a/6b/6c, Table 2 workloads).

    1 or 7 Filebench Fileserver instances run over Ceph through D or K,
    each in its own 2-core/8 GB pool, optionally next to one neighbour —
    Stress-ng RandomIO or Filebench Webserver on local ext4/RAID-0, or
    the Sysbench CPU benchmark.  4 or 16 host cores are activated. *)

type fls_system = D | K

type neighbor = No_neighbor | Rnd | Wbs | Ssb

type outcome = {
  fls_throughput : float;  (** mean per-instance Fileserver MB/s *)
  fls_latency : float;  (** mean Fileserver op latency, seconds *)
  stolen_util_pct : float;
      (** utilisation of the neighbour pool's cores by everyone else
          (kernel + Fileserver pools), % of one core *)
  neighbor_metric : float;
      (** RND: ops/s; WBS: MB/s; SSB: 99th-pct event latency (s) *)
  lock_avg_wait : float;  (** kernel locks: avg wait per request *)
  lock_avg_hold : float;
  metrics : Danaus_sim.Obs.sample list;
      (** full per-layer {!Danaus_sim.Obs} snapshot of the cell's testbed *)
  spans : Danaus_sim.Obs.cspan list;  (** causal spans (when tracing) *)
}

(** One cell of the figure.  [seed] (default 1) feeds the testbed's base
    RNG stream: same seed, same run. *)
val run :
  seed:int ->
  quick:bool ->
  fls_count:int ->
  system:fls_system ->
  neighbor:neighbor ->
  outcome

(** Render Table 2 (the contention workload symbols). *)
val table2 : unit -> Report.t list

val fig1 : seed:int -> quick:bool -> Report.t list
val fig6a : seed:int -> quick:bool -> Report.t list
val fig6b : seed:int -> quick:bool -> Report.t list
val fig6c : seed:int -> quick:bool -> Report.t list
