open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_ceph
open Danaus

type t = {
  engine : Engine.t;
  obs : Obs.t;
  base_seed : int;
  topology : Topology.t;
  cpu : Cpu.t;
  kernel : Kernel.t;
  net : Net.t;
  cluster : Cluster.t;
  local_disk : Disk.t;
  containers : Container_engine.t;
}

let create ?(seed = 1) ~activated () =
  let engine = Engine.create () in
  let obs = Engine.obs engine in
  let topology = Topology.paper_machine () in
  let cpu = Cpu.create engine ~cores:Params.client_cores in
  let kernel =
    Kernel.create ~costs:Params.costs ~writeback:Params.writeback_interval
      ~expire:Params.expire_interval engine ~cpu
      ~activated:(Array.init activated (fun i -> i))
      ~page_cache_limit:Params.client_mem
  in
  let net = Net.create engine in
  let client_node =
    Net.add_node net ~name:"client-host" ~bandwidth:Params.net_bandwidth
      ~latency:Params.net_latency
  in
  let server_node =
    Net.add_node net ~name:"server-host" ~bandwidth:Params.net_bandwidth
      ~latency:Params.net_latency
  in
  let osds =
    Array.init Params.osd_count (fun i ->
        let data =
          Disk.create engine
            ~name:(Printf.sprintf "osd%d-data" i)
            ~bandwidth:Params.osd_disk_bandwidth ~latency:5e-6 ~seek:0.0
        in
        let journal =
          Disk.create engine
            ~name:(Printf.sprintf "osd%d-journal" i)
            ~bandwidth:Params.osd_disk_bandwidth ~latency:5e-6 ~seek:0.0
        in
        Osd.create engine
          ~name:(Printf.sprintf "osd%d" i)
          ~data ~journal ~concurrency:Params.osd_concurrency
          ~op_cost:Params.osd_op_cost ~cpu_per_byte:Params.osd_cpu_per_byte)
  in
  let mds =
    Mds.create engine ~concurrency:Params.mds_concurrency ~op_cost:Params.mds_op_cost
  in
  let cluster =
    Cluster.create engine ~net ~client_node ~server_node ~osds ~mds
      ~replicas:Params.replicas ~object_size:Params.object_size
  in
  let local_disk =
    Disk.raid0
      (Array.init Params.local_disks (fun i ->
           Disk.create engine
             ~name:(Printf.sprintf "sd%c" (Char.chr (Char.code 'a' + i)))
             ~bandwidth:Params.local_disk_bandwidth
             ~latency:Params.local_disk_latency ~seek:Params.local_disk_seek))
  in
  let containers = Container_engine.create ~kernel ~cluster ~topology in
  {
    engine;
    obs;
    base_seed = seed;
    topology;
    cpu;
    kernel;
    net;
    cluster;
    local_disk;
    containers;
  }

let pool t i =
  ignore t;
  Cgroup.create
    ~name:(Printf.sprintf "pool%d" i)
    ~cores:[| 2 * i; (2 * i) + 1 |]
    ~mem_limit:Params.pool_mem

let custom_pool t ~name ~cores ~mem =
  ignore t;
  Cgroup.create ~name ~cores ~mem_limit:mem

let drive ?(limit = 100_000.0) t ~stop =
  let rec go () =
    if stop () then ()
    else if Engine.now t.engine > limit then
      failwith "Testbed.drive: simulation did not converge before the limit"
    else begin
      Engine.run_until t.engine (Engine.now t.engine +. 0.25);
      go ()
    end
  in
  go ()

let reset_metrics t =
  Cpu.reset_usage t.cpu;
  Kernel.reset_lock_stats t.kernel;
  Obs.reset t.obs

let ctx t ~pool ~seed =
  (* derive from the testbed's base seed so that repeated runs with
     different seeds draw independent workload streams (§6.1 repeats) *)
  Danaus_workloads.Workload.make_ctx t.engine ~cpu:t.cpu ~pool
    ~seed:(seed + (t.base_seed * 1_000_003))

let local_fs t ~name =
  Local_fs.create t.kernel ~name ~disk:t.local_disk
    ~max_dirty:(Params.pool_mem / 2) ()
