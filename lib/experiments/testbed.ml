open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_ceph
open Danaus

type t = {
  engine : Engine.t;
  obs : Obs.t;
  base_seed : int;
  topology : Topology.t;
  cpu : Cpu.t;
  kernel : Kernel.t;
  net : Net.t;
  client_node : Net.node;
  server_node : Net.node;
  cluster : Cluster.t;
  local_disk : Disk.t;
  containers : Container_engine.t;
}

let create ?(seed = 1) ?(replicas = Params.replicas) ~activated () =
  let engine = Engine.create () in
  let obs = Engine.obs engine in
  let topology = Topology.paper_machine () in
  let cpu = Cpu.create engine ~cores:Params.client_cores in
  let kernel =
    Kernel.create ~costs:Params.costs ~writeback:Params.writeback_interval
      ~expire:Params.expire_interval engine ~cpu
      ~activated:(Array.init activated (fun i -> i))
      ~page_cache_limit:Params.client_mem
  in
  let net = Net.create engine in
  let client_node =
    Net.add_node net ~name:"client-host" ~bandwidth:Params.net_bandwidth
      ~latency:Params.net_latency
  in
  let server_node =
    Net.add_node net ~name:"server-host" ~bandwidth:Params.net_bandwidth
      ~latency:Params.net_latency
  in
  let osds =
    Array.init Params.osd_count (fun i ->
        let data =
          Disk.create engine
            ~name:(Printf.sprintf "osd%d-data" i)
            ~bandwidth:Params.osd_disk_bandwidth ~latency:5e-6 ~seek:0.0
        in
        let journal =
          Disk.create engine
            ~name:(Printf.sprintf "osd%d-journal" i)
            ~bandwidth:Params.osd_disk_bandwidth ~latency:5e-6 ~seek:0.0
        in
        Osd.create engine
          ~name:(Printf.sprintf "osd%d" i)
          ~data ~journal ~concurrency:Params.osd_concurrency
          ~op_cost:Params.osd_op_cost ~cpu_per_byte:Params.osd_cpu_per_byte)
  in
  let mds =
    Mds.create engine ~concurrency:Params.mds_concurrency ~op_cost:Params.mds_op_cost
  in
  let cluster =
    Cluster.create engine ~net ~client_node ~server_node ~osds ~mds ~replicas
      ~object_size:Params.object_size
  in
  let local_disk =
    Disk.raid0
      (Array.init Params.local_disks (fun i ->
           Disk.create engine
             ~name:(Printf.sprintf "sd%c" (Char.chr (Char.code 'a' + i)))
             ~bandwidth:Params.local_disk_bandwidth
             ~latency:Params.local_disk_latency ~seek:Params.local_disk_seek))
  in
  let containers = Container_engine.create ~kernel ~cluster ~topology in
  {
    engine;
    obs;
    base_seed = seed;
    topology;
    cpu;
    kernel;
    net;
    client_node;
    server_node;
    cluster;
    local_disk;
    containers;
  }

let pool t i =
  ignore t;
  Cgroup.create
    ~name:(Printf.sprintf "pool%d" i)
    ~cores:[| 2 * i; (2 * i) + 1 |]
    ~mem_limit:Params.pool_mem

let custom_pool t ~name ~cores ~mem =
  ignore t;
  Cgroup.create ~name ~cores ~mem_limit:mem

(* End-of-phase sweep of the laws that need a quiescent whole-testbed
   view: the kernel page cache's conservation accounting and, when
   tracing, well-formedness of the span tree collected so far.  No-op
   when the invariant mode is [Off]. *)
let check_invariants t =
  if Danaus_check.Check.on () then begin
    Page_cache.check_invariants (Kernel.page_cache t.kernel);
    if Obs.tracing t.obs then
      ignore (Danaus_check.Check.check_spans ~obs:t.obs (Obs.cspans t.obs))
  end

let drive ?(limit = 100_000.0) t ~stop =
  let rec go () =
    if stop () then ()
    else if Engine.now t.engine > limit then
      failwith "Testbed.drive: simulation did not converge before the limit"
    else begin
      Engine.run_until t.engine (Engine.now t.engine +. 0.25);
      go ()
    end
  in
  go ();
  check_invariants t

let reset_metrics t =
  Cpu.reset_usage t.cpu;
  Kernel.reset_lock_stats t.kernel;
  Obs.reset t.obs

(* Periodic counter/gauge sampling for `--timeseries`: a ticking process
   drives an [Obs.Sampler] every [Obs.default_sample_period] sim-seconds
   (no process, and no overhead, when the period is unset).  Returns a
   getter for the points collected so far.  Call after [reset_metrics] so
   the first tick lands one period into the measured phase. *)
let start_sampler t =
  match !Obs.default_sample_period with
  | None -> fun () -> []
  | Some period ->
      let sampler = Obs.Sampler.create t.obs ~period in
      Engine.spawn t.engine ~name:"obs-sampler" (fun () ->
          while true do
            Engine.sleep period;
            Obs.Sampler.tick sampler ~now:(Engine.now t.engine)
          done);
      fun () -> Obs.Sampler.points sampler

let ctx t ~pool ~seed =
  (* derive from the testbed's base seed so that repeated runs with
     different seeds draw independent workload streams (§6.1 repeats) *)
  Danaus_workloads.Workload.make_ctx t.engine ~cpu:t.cpu ~pool
    ~seed:(seed + (t.base_seed * 1_000_003))

let local_fs t ~name =
  Local_fs.create t.kernel ~name ~disk:t.local_disk
    ~max_dirty:(Params.pool_mem / 2) ()

(* ------------------------------------------------------------------ *)
(* Fault injection wiring *)

let injector t =
  let osds = Cluster.osds t.cluster in
  let node_of = function
    | "client" | "client-host" -> Some t.client_node
    | "server" | "server-host" -> Some t.server_node
    | _ -> None
  in
  let osd_ok i = i >= 0 && i < Array.length osds in
  {
    Danaus_faults.Fault_plan.inj_crash_pool =
      (fun ~pool ~restart_after ->
        Container_engine.crash_pool_named t.containers ~pool_name:pool
          ~restart_after);
    inj_crash_host =
      (fun ~restart_after ->
        Container_engine.crash_host t.containers ~restart_after);
    inj_osd_down = (fun i -> if osd_ok i then Osd.set_up osds.(i) false);
    inj_osd_up = (fun i -> if osd_ok i then Osd.set_up osds.(i) true);
    inj_osd_replace = (fun i -> if osd_ok i then Cluster.replace_osd t.cluster i);
    inj_mark_up = (fun i -> if osd_ok i then Cluster.force_mark_up t.cluster i);
    inj_link_degrade =
      (fun ~node ~factor ->
        Option.iter (fun n -> Net.set_degraded n ~factor) (node_of node));
    inj_link_partition = (fun ~node -> Option.iter Net.partition (node_of node));
    inj_link_restore = (fun ~node -> Option.iter Net.restore (node_of node));
    inj_disk_slow =
      (fun ~disk ~factor ->
        if disk = "local" then Disk.set_slow t.local_disk ~factor);
    inj_disk_restore =
      (fun ~disk -> if disk = "local" then Disk.set_slow t.local_disk ~factor:1.0);
  }

let inject t ~plan =
  Danaus_faults.Fault_plan.schedule t.engine ~seed:(t.base_seed * 7919) (injector t)
    plan
