open Danaus_sim
open Danaus
open Danaus_qos
open Danaus_sched
open Danaus_workloads

(* ------------------------------------------------------------------ *)
(* Scheduler experiments: the fleet controller over a Multihost world.

   Hosts expose 6 single-core slots and 6 pool-memories of schedulable
   RAM.  The per-host contended resource is the NIC (the OSDs and MDS
   are shared by the whole fleet, so they do not differentiate hosts);
   aggressor pools run mixed read/write open-loops whose misses and
   flushes keep both link directions busy. *)

let mib n = n * 1024 * 1024
let host_slots = 6
let host_mem = 6 * Params.pool_mem
let calls_per_op = 3.0

let add_hosts mh fleet =
  Array.iter
    (fun h ->
      Fleet.add_host fleet ~name:h.Multihost.h_name ~node:h.Multihost.h_node
        ~kernel:h.Multihost.h_kernel ~containers:h.Multihost.h_containers
        ~slots:host_slots ~mem:host_mem ~link_bandwidth:Params.net_bandwidth)
    mh.Multihost.hosts

(* ------------------------------------------------------------------ *)
(* sched-policy: the same victim placed by each policy into the same
   contended fleet.

   Pre-state (identical in every cell, forced placements):
     host-a: "east" aggressor, 4 slots, heavy mixed load
     host-b: three idle 1-slot pools
     host-c: "west" aggressor, 2 slots, heavy mixed load
   Bin-pack picks the fullest host that fits -> host-a (beside an
   aggressor); spread picks the emptiest -> host-c (beside the other
   aggressor); contention-aware reads the sampled signals and picks
   host-b.  The victim's read p99 tells them apart. *)

let aggressor_params ~quick ~rate =
  {
    Openload.default_params with
    Openload.rate;
    duration = (if quick then 14.0 else 34.0);
    op_bytes = mib 1;
    files = 256;
    threads = 8;
    write_frac = 0.5;
    sla = 0.5;
  }

let victim_params ~quick =
  {
    Openload.default_params with
    Openload.rate = 500.0;
    duration = (if quick then 6.0 else 20.0);
    op_bytes = 256 * 1024;
    files = 200;
    threads = 8;
    sla = 0.5;
  }

(* The fleet worlds get a bonded server spine so the contended resource
   is each host's own NIC, not the shared ingress. *)
let fleet_world ~seed =
  Multihost.create ~hosts:3 ~server_bandwidth:(4.0 *. Params.net_bandwidth)
    ~seed ()

let policy_cell ~seed ~quick (module P : Placement.POLICY) =
  let mh = fleet_world ~seed in
  let fleet = Fleet.create ~engine:mh.Multihost.engine ~policy:(module P) in
  add_hosts mh fleet;
  let agg name slots host =
    match
      Fleet.place_on fleet
        (Fleet.spec ~cache_bytes:(mib 16) ~pool:name ~id:name ~slots
           ~mem:Params.pool_mem ~config:Config.d ())
        ~host
    with
    | Ok pl -> pl
    | Error e -> failwith e
  in
  let east = agg "east" 4 0 in
  let west = agg "west" 2 2 in
  List.iter
    (fun name -> ignore (agg name 1 1))
    [ "idle0"; "idle1"; "idle2" ];
  let ap = aggressor_params ~quick ~rate:5000.0 in
  let warmed = ref false in
  Engine.spawn mh.Multihost.engine ~name:"setup" (fun () ->
      List.iteri
        (fun i pl ->
          let ctx =
            Multihost.ctx mh ~host:pl.Fleet.pl_host
              ~pool:pl.Fleet.pl_container.Container_engine.ct_pool
              ~seed:(6000 + i)
          in
          Openload.prepopulate ctx
            ~view:(fun ~thread:_ -> pl.Fleet.pl_container.Container_engine.instance)
            ap)
        [ east; west ];
      warmed := true);
  Multihost.drive mh ~stop:(fun () -> !warmed);
  (* open the signal windows, run the aggressors for a warm interval,
     sample again: the views the policy sees carry live rates *)
  Fleet.sample fleet;
  let run_on pl ~seed p done_ =
    Engine.spawn mh.Multihost.engine (fun () ->
        let ctx =
          Multihost.ctx mh ~host:pl.Fleet.pl_host
            ~pool:pl.Fleet.pl_container.Container_engine.ct_pool ~seed
        in
        done_ := Some (Openload.run ctx ~view:(Fleet.view pl) p))
  in
  let east_r = ref None and west_r = ref None in
  run_on east ~seed:6100 ap east_r;
  run_on west ~seed:6200 ap west_r;
  let warm_over = ref false in
  Engine.spawn mh.Multihost.engine (fun () ->
      Engine.sleep 2.0;
      warm_over := true);
  Multihost.drive mh ~stop:(fun () -> !warm_over);
  Fleet.sample fleet;
  (* the decision under test *)
  let victim =
    match
      Fleet.place fleet
        (Fleet.spec ~cache_bytes:(mib 4) ~pool:"victim" ~id:"victim" ~slots:1
           ~mem:Params.pool_mem ~config:Config.d ())
    with
    | Ok pl -> pl
    | Error e -> failwith e
  in
  let vp = victim_params ~quick in
  let ready = ref false in
  Engine.spawn mh.Multihost.engine (fun () ->
      let ctx =
        Multihost.ctx mh ~host:victim.Fleet.pl_host
          ~pool:victim.Fleet.pl_container.Container_engine.ct_pool ~seed:6300
      in
      Openload.prepopulate ctx
        ~view:(fun ~thread:_ ->
          victim.Fleet.pl_container.Container_engine.instance)
        vp;
      ready := true);
  Multihost.drive mh ~stop:(fun () -> !ready);
  Multihost.reset_metrics mh;
  let points = Multihost.start_sampler mh in
  let victim_r = ref None in
  run_on victim ~seed:6400 vp victim_r;
  Multihost.drive mh ~stop:(fun () -> !victim_r <> None);
  Fleet.check_invariants fleet;
  ( (Multihost.host mh victim.Fleet.pl_host).Multihost.h_name,
    Option.get !victim_r,
    Obs.snapshot mh.Multihost.obs,
    Obs.cspans mh.Multihost.obs,
    points () )

let sched_policy ~seed ~quick =
  let outcomes =
    List.map
      (fun (module P : Placement.POLICY) ->
        (P.name, policy_cell ~seed ~quick (module P)))
      Placement.all
  in
  let p99 (r : Openload.result) =
    if Stats.count r.Openload.latency = 0 then 0.0
    else Stats.percentile r.Openload.latency 99.0
  in
  let rows =
    List.map
      (fun (name, (host, r, _, _, _)) ->
        [
          name;
          host;
          Printf.sprintf "%.0f" r.Openload.goodput_ops;
          Report.ms (p99 r);
          Printf.sprintf "%d" r.Openload.failed;
        ])
      outcomes
  in
  let metrics =
    List.concat_map
      (fun (name, (_, _, m, _, _)) -> Obs.prefix_keys (name ^ ":") m)
      outcomes
  in
  let spans =
    Danaus_sim.Trace.merge
      (List.map (fun (name, (_, _, _, s, _)) -> (name ^ ":", s)) outcomes)
  in
  let timeseries =
    List.concat_map
      (fun (name, (_, _, _, _, ts)) -> Obs.Sampler.prefix_keys (name ^ ":") ts)
      outcomes
  in
  [
    Report.make ~id:"sched-policy"
      ~title:
        "Victim read pool placed by each policy into a contended 3-host \
         fleet (goodput ops/s within 0.5 s SLA, p99 latency)"
      ~header:[ "policy"; "victim host"; "goodput"; "p99"; "failed" ]
      ~notes:
        [
          "bin-pack fills the fullest host (the 4-slot aggressor's), \
           spread drains to the emptiest (the 2-slot aggressor's): both \
           colocate the victim with a NIC-saturating neighbor";
          "contention-aware reads the sampled link-utilization/dirty/shed \
           signals and picks the host whose pools are idle";
        ]
      ~metrics ~spans ~timeseries rows;
  ]

(* ------------------------------------------------------------------ *)
(* sched-drain: rolling-upgrade drain of a host under live load.  Four
   1-slot pools spread over 3 hosts (host-a gets two); each runs a
   moderate read open-loop whose view routes through its placement, so
   ops follow a migration.  Mid-run, host-a is drained: its two pools
   live-migrate (shared-FS relaunch) to the other hosts.  The drained
   cell's goodput barely moves vs the undisturbed baseline. *)

let drain_params ~quick =
  {
    Openload.default_params with
    Openload.rate = 300.0;
    duration = (if quick then 8.0 else 24.0);
    op_bytes = 256 * 1024;
    files = 96;
    threads = 8;
    sla = 0.5;
  }

let drain_cell ~seed ~quick ~drain =
  let mh = fleet_world ~seed in
  let fleet =
    Fleet.create ~engine:mh.Multihost.engine ~policy:(module Placement.Spread)
  in
  add_hosts mh fleet;
  let pools =
    List.map
      (fun i ->
        let name = Printf.sprintf "pool%d" i in
        match
          Fleet.place fleet
            (Fleet.spec ~cache_bytes:(mib 4) ~pool:name ~id:name ~slots:1
               ~mem:Params.pool_mem ~config:Config.d ())
        with
        | Ok pl -> pl
        | Error e -> failwith e)
      [ 0; 1; 2; 3 ]
  in
  let p = drain_params ~quick in
  let warmed = ref false in
  Engine.spawn mh.Multihost.engine ~name:"setup" (fun () ->
      List.iteri
        (fun i pl ->
          let ctx =
            Multihost.ctx mh ~host:pl.Fleet.pl_host
              ~pool:pl.Fleet.pl_container.Container_engine.ct_pool
              ~seed:(6500 + i)
          in
          Openload.prepopulate ctx
            ~view:(fun ~thread:_ -> pl.Fleet.pl_container.Container_engine.instance)
            p)
        pools;
      warmed := true);
  Multihost.drive mh ~stop:(fun () -> !warmed);
  Multihost.reset_metrics mh;
  let points = Multihost.start_sampler mh in
  let results = Array.make (List.length pools) None in
  List.iteri
    (fun i pl ->
      Engine.spawn mh.Multihost.engine (fun () ->
          let ctx =
            Multihost.ctx mh ~host:pl.Fleet.pl_host
              ~pool:pl.Fleet.pl_container.Container_engine.ct_pool
              ~seed:(6600 + i)
          in
          results.(i) <- Some (Openload.run ctx ~view:(Fleet.view pl) p)))
    pools;
  let drained = ref None in
  if drain then
    Engine.spawn mh.Multihost.engine ~name:"drain" (fun () ->
        Engine.sleep 2.0;
        match Fleet.drain fleet ~host:0 () with
        | Ok ms -> drained := Some (List.length ms)
        | Error e -> failwith ("drain: " ^ e));
  Multihost.drive mh
    ~stop:(fun () -> Array.for_all (fun r -> r <> None) results);
  Fleet.check_invariants fleet;
  let final_hosts =
    List.map
      (fun pl -> (Multihost.host mh pl.Fleet.pl_host).Multihost.h_name)
      pools
  in
  ( Array.to_list (Array.map Option.get results),
    (match !drained with Some n -> n | None -> 0),
    final_hosts,
    Obs.snapshot mh.Multihost.obs,
    Obs.cspans mh.Multihost.obs,
    points () )

let sched_drain ~seed ~quick =
  let base_rs, _, _, base_m, base_s, base_ts =
    drain_cell ~seed ~quick ~drain:false
  in
  let drain_rs, migrations, hosts, drain_m, drain_s, drain_ts =
    drain_cell ~seed ~quick ~drain:true
  in
  let p99 (r : Openload.result) =
    if Stats.count r.Openload.latency = 0 then 0.0
    else Stats.percentile r.Openload.latency 99.0
  in
  let rows =
    List.mapi
      (fun i (b, (d, host)) ->
        [
          Printf.sprintf "pool%d" i;
          Printf.sprintf "%.0f" b.Openload.goodput_ops;
          Report.ms (p99 b);
          Printf.sprintf "%.0f" d.Openload.goodput_ops;
          Report.ms (p99 d);
          host;
        ])
      (List.combine base_rs (List.combine drain_rs hosts))
  in
  let good rs =
    List.fold_left (fun a (r : Openload.result) -> a +. r.Openload.goodput_ops) 0.0 rs
  in
  let metrics =
    Obs.prefix_keys "base:" base_m @ Obs.prefix_keys "drain:" drain_m
  in
  let spans = Danaus_sim.Trace.merge [ ("base:", base_s); ("drain:", drain_s) ] in
  let timeseries =
    Obs.Sampler.prefix_keys "base:" base_ts
    @ Obs.Sampler.prefix_keys "drain:" drain_ts
  in
  [
    Report.make ~id:"sched-drain"
      ~title:
        "Rolling-upgrade drain of host-a under live load (goodput ops/s, \
         p99; final host after the drain)"
      ~header:
        [ "pool"; "base good"; "base p99"; "drained good"; "drained p99"; "host" ]
      ~notes:
        [
          Printf.sprintf
            "draining host-a live-migrated %d pools (shared-FS relaunch); \
             fleet goodput retained %.0f%% of the undisturbed baseline"
            migrations
            (if good base_rs > 0.0 then 100.0 *. good drain_rs /. good base_rs
             else 0.0);
          "a migrated pool's open-loop keeps issuing through its placement \
           view: in-flight ops drain on the source stack, later ops run on \
           the destination";
        ]
      ~metrics ~spans ~timeseries rows;
  ]

(* ------------------------------------------------------------------ *)
(* autoscale: a flash crowd against one admission-protected service,
   with a static single replica vs the autoscaler growing replicas from
   the shed-rate signal.  Replicas share the pool name and container id,
   so every replica mounts the same shared-FS subtree (the dataset is
   written once); arrivals route round-robin by thread over the live
   replica list.  Each replica's admission contract caps it at
   [contract] ops/s: the static cell sheds the spike, the autoscaler
   turns sheds into capacity. *)

let contract = 300.0

let svc_qos () =
  let rate = calls_per_op *. contract in
  Container_engine.qos
    ~admission:
      (Admission.config ~burst:(0.25 *. rate) ~max_inflight:64 ~op_budget:0.5
         ~rate ())
    ~breaker:Breaker.default_config ~request_timeout:0.25 ()

let svc_spec () =
  Fleet.spec ~cache_bytes:(mib 8) ~qos:(svc_qos ()) ~pool:"svc" ~id:"svc"
    ~slots:1 ~mem:Params.pool_mem ~config:Config.d ()

let flash_phases ~quick =
  let d = if quick then 4.0 else 10.0 in
  [ (200.0, d); (1000.0, d); (200.0, d) ]

let phase_params ~rate ~duration =
  {
    Openload.default_params with
    Openload.rate;
    duration;
    op_bytes = 256 * 1024;
    files = 128;
    threads = 8;
    sla = 0.5;
  }

let autoscale_cell ~seed ~quick ~auto =
  let mh = fleet_world ~seed in
  let fleet =
    Fleet.create ~engine:mh.Multihost.engine ~policy:(module Placement.Spread)
  in
  add_hosts mh fleet;
  let first =
    match Fleet.place fleet (svc_spec ()) with
    | Ok pl -> pl
    | Error e -> failwith e
  in
  let replicas = ref [ first ] in
  let view ~thread =
    let rs = !replicas in
    Fleet.view (List.nth rs (thread mod List.length rs)) ~thread
  in
  let phases = flash_phases ~quick in
  let pre = phase_params ~rate:200.0 ~duration:1.0 in
  let warmed = ref false in
  Engine.spawn mh.Multihost.engine ~name:"setup" (fun () ->
      let ctx = Multihost.ctx mh ~pool:first.Fleet.pl_container.Container_engine.ct_pool ~seed:6700 in
      Openload.prepopulate ctx
        ~view:(fun ~thread:_ -> first.Fleet.pl_container.Container_engine.instance)
        pre;
      warmed := true);
  Multihost.drive mh ~stop:(fun () -> !warmed);
  Multihost.reset_metrics mh;
  let points = Multihost.start_sampler mh in
  let scaler =
    if not auto then None
    else
      let w = Signal.shed_window mh.Multihost.obs ~pool:"svc" in
      Some
        (Autoscaler.create mh.Multihost.engine
           { Autoscaler.default with ac_max = 3 }
           ~key:"svc"
           ~rate:(fun ~now -> Signal.sample w ~now)
           ~replicas:(fun () -> List.length !replicas)
           ~scale_up:(fun () ->
             match Fleet.place fleet (svc_spec ()) with
             | Ok pl ->
                 replicas := !replicas @ [ pl ];
                 true
             | Error _ -> false)
           ~scale_down:(fun () ->
             match List.rev !replicas with
             | last :: (_ :: _ as kept) ->
                 replicas := List.rev kept;
                 Fleet.remove fleet last;
                 true
             | _ -> false))
  in
  let phase_rs = Array.make (List.length phases) None in
  let replica_counts = Array.make (List.length phases) 0 in
  Engine.spawn mh.Multihost.engine ~name:"flash-crowd" (fun () ->
      List.iteri
        (fun i (rate, duration) ->
          let ctx = Multihost.ctx mh ~pool:first.Fleet.pl_container.Container_engine.ct_pool ~seed:(6800 + i) in
          phase_rs.(i) <-
            Some (Openload.run ctx ~view (phase_params ~rate ~duration));
          replica_counts.(i) <- List.length !replicas)
        phases);
  Multihost.drive mh
    ~stop:(fun () -> Array.for_all (fun r -> r <> None) phase_rs);
  Option.iter Autoscaler.stop scaler;
  Fleet.check_invariants fleet;
  ( Array.to_list (Array.map Option.get phase_rs),
    Array.to_list replica_counts,
    Obs.snapshot mh.Multihost.obs,
    Obs.cspans mh.Multihost.obs,
    points () )

let autoscale ~seed ~quick =
  let static_rs, _, static_m, static_s, static_ts =
    autoscale_cell ~seed ~quick ~auto:false
  in
  let auto_rs, auto_n, auto_m, auto_s, auto_ts =
    autoscale_cell ~seed ~quick ~auto:true
  in
  let phases = flash_phases ~quick in
  let rows =
    List.mapi
      (fun i (rate, _) ->
        let s = List.nth static_rs i and a = List.nth auto_rs i in
        [
          (match i with 0 -> "base" | 1 -> "flash crowd" | _ -> "calm");
          Printf.sprintf "%.0f" rate;
          Printf.sprintf "%.0f" s.Openload.goodput_ops;
          Printf.sprintf "%d" s.Openload.shed;
          Printf.sprintf "%.0f" a.Openload.goodput_ops;
          Printf.sprintf "%d" a.Openload.shed;
          string_of_int (List.nth auto_n i);
        ])
      phases
  in
  let spike_s = (List.nth static_rs 1).Openload.goodput_ops in
  let spike_a = (List.nth auto_rs 1).Openload.goodput_ops in
  let metrics =
    Obs.prefix_keys "static:" static_m @ Obs.prefix_keys "auto:" auto_m
  in
  let spans = Danaus_sim.Trace.merge [ ("static:", static_s); ("auto:", auto_s) ] in
  let timeseries =
    Obs.Sampler.prefix_keys "static:" static_ts
    @ Obs.Sampler.prefix_keys "auto:" auto_ts
  in
  [
    Report.make ~id:"autoscale"
      ~title:
        "Flash crowd against an admission-protected service: static single \
         replica vs shed-rate autoscaling (goodput ops/s within 0.5 s SLA)"
      ~header:
        [
          "phase";
          "offered/s";
          "static good";
          "static shed";
          "auto good";
          "auto shed";
          "replicas";
        ]
      ~notes:
        [
          Printf.sprintf
            "during the flash crowd the autoscaler's replicas carry %.1fx \
             the static cell's goodput (%.0f vs %.0f ops/s); each replica \
             mounts the same shared-FS subtree, so scale-up is a relaunch, \
             not a copy"
            (if spike_s > 0.0 then spike_a /. spike_s else 0.0)
            spike_a spike_s;
          "scale decisions hysterese on the qos shed-rate window: two hot \
           ticks up, six calm ticks down, 1 s cooldown";
        ]
      ~metrics ~spans ~timeseries rows;
  ]
