(** Fileappend / Fileread scaleup (Fig. 11): timespan to run N cloned
    containers over union + shared client, and the maximum memory the
    client stacks consume (the FP/FP double-caching blow-up). *)

val fig11a : seed:int -> quick:bool -> Report.t list
val fig11b : seed:int -> quick:bool -> Report.t list
