(** Golden-table drift guard (the [danaus-cli golden] command and the
    [test/golden] dune rules).

    The canonical text of an experiment is the concatenation of its
    rendered report tables at [--quick], seed {!seed}, with the
    invariant layer armed in strict mode — so a golden run both pins the
    published numbers and sweeps every conservation law.  [dune runtest]
    diffs each experiment's canonical text against
    [test/golden/<id>.txt]; regenerate after an intentional behaviour
    change with [dune promote] or [danaus-cli golden --regen]. *)

(** The pinned golden seed (7). *)
val seed : int

(** Goldens are always recorded at [--quick] scale. *)
val quick : bool

(** Canonical golden text of one experiment.  Arms strict mode
    process-wide as a side effect. *)
val text : Registry.exp -> string

(** [file_name id] is ["<id>.txt"]. *)
val file_name : string -> string
