(** Scheduler-layer experiments over a [Multihost] fleet: placement
    policies under contention, host drain under live load, and
    shed-rate autoscaling through a flash crowd. *)

val sched_policy : seed:int -> quick:bool -> Report.t list
val sched_drain : seed:int -> quick:bool -> Report.t list
val autoscale : seed:int -> quick:bool -> Report.t list
