(** Chrome trace-event (Perfetto) export and plain-text latency
    attribution over a report's causal spans. *)

(** One trace-event JSON document over every report's spans: pid 1
    carries one track per simulated core (CPU bursts as complete
    events); each (report, pool) gets a pid with its op trees as
    nestable async events; parentless non-"core" trees land in a
    per-report "background" pid.  Deterministic byte-for-byte given the
    same reports. *)
val chrome_json : Report.t list -> string

(** Aligned layer×phase attribution table for one report (see
    {!Danaus_sim.Trace.attribute}), ending with the e2e summary and the
    per-op residual check line. *)
val render_attribution : Report.t -> string
