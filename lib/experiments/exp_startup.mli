(** Container startup scaleup (Fig. 8): real time to start 1-256 cloned
    Lighttpd containers in a single pool over a shared client, plus the
    context switches of the run (Fig. 8b). *)

val fig8 : seed:int -> quick:bool -> Report.t list

(** One cell: (time to start all clones, context switches, per-layer
    metric snapshot, trace spans). *)
val run_cell :
  seed:int ->
  config:Danaus.Config.t ->
  clones:int ->
  unit ->
  float * float * Danaus_sim.Obs.sample list * Danaus_sim.Obs.cspan list
