(** RocksDB-analogue experiments (Fig. 7).

    - scaleout put (7a): 1-32 pools, each with a private client (D/F/K)
      and its own store; 1 GB of 128 KB-value puts per pool.
    - scaleout get (7b): populate out-of-core, then random gets.
    - scaleup put/get (7c/7d): 1-32 cloned containers in one big pool
      sharing one client (D, F/F, F/K, K/K). *)

val fig7a : seed:int -> quick:bool -> Report.t list
val fig7b : seed:int -> quick:bool -> Report.t list
val fig7c : seed:int -> quick:bool -> Report.t list
val fig7d : seed:int -> quick:bool -> Report.t list
