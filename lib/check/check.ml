(* danaus_check: the correctness subsystem.

   [Check] is the API every layer above the engine uses to state its
   conservation laws; the mode machinery itself lives in
   [Danaus_sim.Invariant] (the engine's own primitives — Pheap order,
   clock monotonicity, lock balance — are below this library in the
   dependency order and call [Invariant] directly).  On top of the
   re-export this module adds the whole-structure checks that need a
   completed run to judge: causal-trace well-formedness and the
   page-cache byte-conservation sweep. *)

open Danaus_sim

include Invariant

(* ------------------------------------------------------------------ *)
(* Causal trace well-formedness.

   Judged over a completed span set (the per-cell [Obs.cspans] an
   experiment collected): ids strictly positive and unique, durations
   non-negative, parents either absent (0 / dropped by the keep-oldest
   policy) or older than the child — a child can never start before the
   span that caused it.  Returns the problems as strings (empty = well
   formed) and, when [obs] is given, records each as a
   [check/violations] count under [trace:*]. *)

let span_problems css =
  let open Obs in
  let by_id = Hashtbl.create 256 in
  List.iter (fun cs -> Hashtbl.replace by_id cs.cs_id cs) css;
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun cs ->
      if cs.cs_id <= 0 then
        problem "span %s/%s has non-positive id %d" cs.cs_layer cs.cs_name
          cs.cs_id;
      if Hashtbl.mem seen cs.cs_id then
        problem "duplicate span id %d (%s/%s)" cs.cs_id cs.cs_layer cs.cs_name;
      Hashtbl.replace seen cs.cs_id ();
      if cs.cs_dur < 0.0 then
        problem "span %d (%s/%s) is still open (dur %g)" cs.cs_id cs.cs_layer
          cs.cs_name cs.cs_dur;
      if cs.cs_parent < 0 then
        problem "span %d has negative parent %d" cs.cs_id cs.cs_parent;
      if cs.cs_parent > 0 then begin
        if cs.cs_parent >= cs.cs_id then
          problem "span %d (%s/%s) has parent %d >= its own id" cs.cs_id
            cs.cs_layer cs.cs_name cs.cs_parent;
        match Hashtbl.find_opt by_id cs.cs_parent with
        | None -> () (* parent dropped by the keep-oldest policy: legal *)
        | Some p ->
            if cs.cs_start +. 1e-9 < p.cs_start then
              problem "span %d (%s/%s) starts %.9g before its parent %d"
                cs.cs_id cs.cs_layer cs.cs_name (p.cs_start -. cs.cs_start)
                cs.cs_parent
      end)
    css;
  List.rev !problems

let check_spans ?obs css =
  let problems = span_problems css in
  List.iter
    (fun p ->
      Invariant.require ?obs ~layer:"trace" ~what:"well_formed"
        ~detail:(fun () -> p)
        false)
    problems;
  problems

(* Phase-sum oracle: for every root op of [roots_layer], the exclusive
   (layer, phase) buckets of [Trace.attribute] must sum to the op's
   end-to-end duration — the sweep constructs them that way, so any
   residual beyond float noise means the tree is inconsistent (children
   outside parents, double counting).  [tolerance] is per op, in
   simulated seconds. *)
let check_attribution ?obs ?(roots_layer = "core") ?(tolerance = 1e-6) spans =
  let at = Trace.attribute ~roots_layer spans in
  Invariant.require ?obs ~layer:"trace" ~what:"phase_sums"
    ~detail:(fun () ->
      Printf.sprintf "max per-op residual %.3g over %d ops exceeds %.3g"
        at.Trace.at_max_residual at.Trace.at_ops tolerance)
    (at.Trace.at_max_residual <= tolerance);
  at
