open Danaus_hw
open Danaus_kernel
open Danaus_client

(** Filesystem service: the standalone user-level process of a container
    pool that runs its filesystem instances (§3.1).

    Applications reach it two ways:
    - the *default* path: {!view}, calling through the pool's
      shared-memory {!Danaus_ipc.Transport} — never entering the kernel;
    - the *legacy* path: {!legacy_iface}, a FUSE mount into the same
      service, used for statically-linked symbols and kernel-initiated
      I/O such as [exec]/[mmap] (§3.2). *)

type t

(** [request_timeout] bounds every default-path IPC round trip: a call
    still outstanding after that many seconds returns
    [Error Timed_out] (counted under ["ipc"/"timeouts"]).
    [shed_on_full] (default [false]) makes a default-path call whose
    IPC ring is full return [Error Rejected] immediately (counted under
    ["ipc"/"sheds"]) instead of blocking the caller behind the
    saturated service. *)
val create :
  ?request_timeout:float ->
  ?shed_on_full:bool ->
  Kernel.t ->
  pool:Cgroup.t ->
  topology:Topology.t ->
  name:string ->
  t

val name : t -> string
val pool : t -> Cgroup.t
val transport : t -> Danaus_ipc.Transport.t

(** Register a filesystem instance in the service's filesystem table. *)
val add_instance : t -> mount_point:string -> Client_intf.t -> unit

(** [view t ~instance ~thread] is the default-path interface to one
    instance for application thread [thread] (used for IPC queue
    pinning). *)
val view : t -> instance:Client_intf.t -> thread:int -> Client_intf.t

(** The FUSE-mediated view of the whole service: paths are resolved
    through the filesystem table ("/mnt/etc/x" reaches the instance
    mounted at "/mnt" as "/etc/x"). *)
val legacy_iface : t -> Client_intf.t

(** Requests served over the default path. *)
val requests : t -> int

(** {1 Fault injection} *)

(** Kill the service process: every subsequent request through any of its
    views fails with [Crashed].  Other pools' services — and the host
    kernel — are unaffected (the paper's fault-containment property,
    §5). *)
val crash : t -> unit

(** Supervised restart after {!crash}: clears the legacy fd remapping
    (fds opened before the crash are invalid) and accepts requests
    again.  Registered instances persist. *)
val restart : t -> unit

val crashed : t -> bool
