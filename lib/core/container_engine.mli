open Danaus_hw
open Danaus_kernel
open Danaus_ceph
open Danaus_client

(** Container engine: the per-host daemon that manages container pools
    and mounts container filesystems (§4.3).

    [launch] builds the full storage stack of one container under any
    Table 1 configuration: the backend client (shared per pool), the
    union filesystem over a private writable branch (plus an optional
    shared read-only image branch), and the transport — Danaus
    service + IPC, plain kernel calls, or FUSE. *)

type t

type container = {
  ct_id : string;
  ct_pool : Cgroup.t;
  ct_config : Config.t;
  view : thread:int -> Client_intf.t;
      (** default data path of the container's root filesystem *)
  legacy : Client_intf.t;
      (** kernel-mediated path (exec/mmap, statically linked binaries) *)
  instance : Client_intf.t;  (** the raw filesystem instance (union stack) *)
  user_memory : unit -> int;
      (** user-level cache bytes of the pool's backend client *)
}

val create : kernel:Kernel.t -> cluster:Cluster.t -> topology:Topology.t -> t

(** {1 Overload protection (danaus_qos)}

    A pool's client stack can be launched with per-pool overload
    protection: admission control + concurrency limiting at the view
    (outermost, so shed ops never reach the retry layer), a circuit
    breaker in the backend client's data path, load shedding at a full
    IPC ring, and a request timeout on every IPC round trip.  Stacks
    launched without [qos] keep the historical behaviour bit-for-bit. *)

type qos

(** [qos ()] enables nothing but shedding at a full ring; supply
    [admission] (rate/in-flight/op-budget caps, [qos/admitted] and
    [qos/shed] counters keyed by pool), [breaker] (backend circuit
    breaker, [qos/breaker_state] gauge) and [request_timeout] (IPC
    round-trip bound) to arm the rest of the pipeline.  [shed_on_full]
    defaults to [true]. *)
val qos :
  ?admission:Danaus_qos.Admission.config ->
  ?breaker:Danaus_qos.Breaker.config ->
  ?shed_on_full:bool ->
  ?request_timeout:float ->
  unit ->
  qos

(** [launch t ~config ~pool ~id ?image ?cache_bytes ()] mounts a
    container root.  [image] names a read-only lower branch under
    "/images/<image>" shared by all clones; [layers] appends further
    read-only branches below it (a stacked image, §2.2, topmost first).
    The writable upper branch is "/pools/<pool>/<id>".  [cache_bytes] sizes the user-level client
    cache (default: half the pool memory, as in §6.1);
    [fine_grained_locking] enables the per-inode-lock client variant and
    [block_cow] block-level copy-on-write in the union (both ablations of
    the paper's §9 future work).  Containers of the same
    pool and configuration share one backend client (and, for Danaus,
    one filesystem service). *)
val launch :
  t ->
  config:Config.t ->
  pool:Cgroup.t ->
  id:string ->
  ?image:string ->
  ?layers:string list ->
  ?cache_bytes:int ->
  ?fine_grained_locking:bool ->
  ?block_cow:int ->
  ?qos:qos ->
  unit ->
  container

(** The Danaus filesystem service of a pool, if one was created. *)
val service_of : t -> pool:Cgroup.t -> config:Config.t -> Fs_service.t option

(** {1 Live pool migration}

    Move a container to another host's engine: launch the pool's stack
    there and bring its root state over, either by remounting the shared
    branches ([`Shared]) or by copying files through both hosts'
    clients ([`Copy]).  The scheduler's fleet controller drains hosts
    with this API; the [mig] experiment measures the two strategies. *)

type migration = {
  mg_container : container;  (** the running destination container *)
  mg_bytes : int;  (** bytes copied ([`Copy]) or verified ([`Shared]) *)
  mg_elapsed : float;  (** simulated seconds from call to completion *)
}

(** [migrate_pool dst_engine ~src ~dst_pool ~strategy ()] relaunches
    [src]'s container (same config, same id unless [dst_id]) on
    [dst_engine] under [dst_pool].  Must run inside an engine process.

    - [`Shared verify]: nothing is copied — the destination mounts the
      same branches over the shared filesystem and state pages in on
      demand.  Each [(path, size)] of [verify] is stat'ed through the
      destination view and must answer exactly [size] bytes.
    - [`Copy files]: each [(path, size)] of [files] is copied from the
      source view into the destination subtree (chunked read/write +
      fsync per file; paths missing on the source are skipped).  A
      mid-copy failure — including a crashed stack exhausting its retry
      budget — rolls the partial destination subtree back (cost-free
      namespace reclaim, as an aborted migration's teardown) and
      answers [Error], leaving the source untouched.

    [after_launch] runs on the destination container once it is mounted
    (and, for [`Copy], once the copy completed) — the place to restart
    the containerised service.  On success the byte-conservation law is
    checked under [Invariant]: every copied/verified file's namespace
    size equals its manifest size.  Counts [core/migrations] and
    [core/migration_bytes], keyed by destination pool. *)
val migrate_pool :
  t ->
  src:container ->
  dst_pool:Cgroup.t ->
  ?dst_id:string ->
  ?image:string ->
  ?layers:string list ->
  ?cache_bytes:int ->
  ?qos:qos ->
  ?chunk:int ->
  ?src_thread:int ->
  ?dst_thread:int ->
  ?after_launch:(container -> unit) ->
  strategy:
    [ `Shared of (string * int) list | `Copy of (string * int) list ] ->
  unit ->
  (migration, string) result

(** {1 Fault injection}

    Crash the processes realising client stacks, then respawn them
    [restart_after] seconds later (supervised restart).  A crash flips
    the stack into answering [Error Crashed]; the retry layer wrapped
    around every container view rides it out with seeded backoff.  Each
    crashed entry counts [core/client_crash] and adds [restart_after]
    to [core/downtime], keyed by pool — the per-pool blast radius. *)

(** Per-pool crash: only the stacks of [pool] die (a Danaus
    [fs_service] or a pool's ceph-fuse daemon). *)
val crash_pool : t -> pool:Cgroup.t -> restart_after:float -> unit

(** Same, addressed by pool name (fault plans carry names, not
    cgroups). *)
val crash_pool_named : t -> pool_name:string -> restart_after:float -> unit

(** Host-wide crash: every client stack on the host dies (a wedged
    shared kernel client, or FUSE transport teardown killing every
    daemon). *)
val crash_host : t -> restart_after:float -> unit

(** {1 Watchdog (self-healing)} *)

type watchdog

(** [start_watchdog t ()] spawns the health-check loop: every
    [interval] (default 0.5 s) it samples each pool stack's progress
    counter into the [core/watchdog_heartbeat] gauge and restarts any
    stack that has stayed crashed for at least [grace] (default 1 s)
    without a supervised restart reviving it, via the same restart path
    the crash supervision uses.  Each forced restart counts
    [core/watchdog_restarts] and adds the observed outage to
    [core/downtime], keyed by pool. *)
val start_watchdog : t -> ?interval:float -> ?grace:float -> unit -> watchdog

(** Stop the loop; the watchdog process exits at its next tick. *)
val stop_watchdog : watchdog -> unit

(** The shared backend client of (pool, config), if created. *)
val client_of : t -> pool:Cgroup.t -> config:Config.t -> Client_intf.t option

(** Populate "/images/<name>" with [files] (path within image, bytes)
    directly in the backend namespace — the image-registry push that
    happens before the experiment starts (no simulated cost). *)
val install_image : t -> name:string -> files:(string * int) list -> unit
