open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_ceph
open Danaus_client
open Danaus_union

type shared = {
  sh_client : Client_intf.t;
  sh_service : Fs_service.t option;
  sh_memory : unit -> int;
  sh_pool : Cgroup.t;
  (* kill/respawn the processes realising this entry's client stack *)
  sh_crash : unit -> unit;
  sh_restart : unit -> unit;
  (* health, for the watchdog: liveness plus a monotone progress counter *)
  sh_crashed : unit -> bool;
  sh_progress : unit -> float;
  (* per-pool admission gate, when the stack was launched with qos *)
  sh_admission : Danaus_qos.Admission.t option;
}

type t = {
  kernel : Kernel.t;
  cluster : Cluster.t;
  topology : Topology.t;
  shared : (string, shared) Hashtbl.t;
}

type container = {
  ct_id : string;
  ct_pool : Cgroup.t;
  ct_config : Config.t;
  view : thread:int -> Client_intf.t;
  legacy : Client_intf.t;
  instance : Client_intf.t;
  user_memory : unit -> int;
}

let create ~kernel ~cluster ~topology =
  Kernel.start_flushers kernel;
  { kernel; cluster; topology; shared = Hashtbl.create 16 }

let user_charge t ~pool dt =
  if dt > 0.0 then
    Cpu.compute (Kernel.cpu t.kernel) ~tenant:(Cgroup.name pool)
      ~eligible:(Cgroup.cores pool) dt

(* ------------------------------------------------------------------ *)
(* Per-pool overload protection (danaus_qos), applied to a stack at
   launch: admission control at the view, a circuit breaker in the
   backend client, shedding at the IPC ring, a request timeout in the
   service.  Stacks launched without [qos] behave exactly as before. *)

type qos = {
  qos_admission : Danaus_qos.Admission.config option;
  qos_breaker : Danaus_qos.Breaker.config option;
  qos_shed_on_full : bool;
  qos_request_timeout : float option;
}

let qos ?admission ?breaker ?(shed_on_full = true) ?request_timeout () =
  {
    qos_admission = admission;
    qos_breaker = breaker;
    qos_shed_on_full = shed_on_full;
    qos_request_timeout = request_timeout;
  }

let shared_key ~fine_grained ~qos pool (config : Config.t) =
  Cgroup.name pool ^ "#" ^ config.label
  ^ (if fine_grained then "+fg" else "")
  ^ if Option.is_some qos then "+qos" else ""

let build_shared t ~(config : Config.t) ~pool ~cache_bytes ~fine_grained ~qos =
  let key = shared_key ~fine_grained ~qos pool config in
  let lib_config =
    {
      (Lib_client.default_config ~cache_bytes) with
      Lib_client.fine_grained_locking = fine_grained;
      breaker = Option.bind qos (fun q -> q.qos_breaker);
    }
  in
  let admission =
    Option.bind qos (fun q ->
        Option.map
          (fun cfg ->
            Danaus_qos.Admission.create (Kernel.engine t.kernel)
              ~key:(Cgroup.name pool) cfg)
          q.qos_admission)
  in
  match config.client with
  | Config.Danaus_lib ->
      let lib =
        Lib_client.create (Kernel.engine t.kernel) ~cpu:(Kernel.cpu t.kernel)
          ~costs:(Kernel.costs t.kernel) ~cluster:t.cluster ~pool
          ~config:lib_config ~name:(key ^ ".client")
      in
      Lib_client.start lib;
      let service =
        Fs_service.create
          ?request_timeout:(Option.bind qos (fun q -> q.qos_request_timeout))
          ?shed_on_full:(Option.map (fun q -> q.qos_shed_on_full) qos)
          t.kernel ~pool ~topology:t.topology ~name:(key ^ ".svc")
      in
      {
        sh_client = Lib_client.iface lib;
        sh_service = Some service;
        sh_memory = (fun () -> Lib_client.cache_used lib);
        sh_pool = pool;
        sh_crash =
          (fun () ->
            Fs_service.crash service;
            Lib_client.crash lib);
        sh_restart =
          (fun () ->
            Fs_service.restart service;
            Lib_client.restart lib);
        sh_crashed =
          (fun () -> Fs_service.crashed service || Lib_client.crashed lib);
        sh_progress = (fun () -> float_of_int (Fs_service.requests service));
        sh_admission = admission;
      }
  | Config.Kernel_cephfs ->
      (* paper §6.1: the kernel client's max dirty bytes are 50% of the
         pool RAM; its page cache is bounded by the pool's cgroup memory
         limit (kept proportional to the user clients' cache parameter so
         quick-mode runs stay comparable) *)
      let kc =
        Kernel_client.create t.kernel ~cluster:t.cluster ~name:(key ^ ".cephfs")
          ~max_dirty:(Cgroup.mem_limit pool / 2)
          ~mem_limit:(Stdlib.min (Cgroup.mem_limit pool) (2 * cache_bytes))
          ()
      in
      {
        sh_client = Kernel_client.iface kc;
        sh_service = None;
        sh_memory = (fun () -> 0);
        sh_pool = pool;
        sh_crash = (fun () -> Kernel_client.crash kc);
        sh_restart = (fun () -> Kernel_client.restart kc);
        sh_crashed = (fun () -> Kernel_client.crashed kc);
        sh_progress = (fun () -> 0.0);
        sh_admission = admission;
      }
  | Config.Ceph_fuse | Config.Ceph_fuse_pagecache ->
      let page_cache = config.client = Config.Ceph_fuse_pagecache in
      let fc =
        Fuse_client.create t.kernel ~cluster:t.cluster ~pool ~config:lib_config
          ~name:(key ^ ".ceph-fuse") ~page_cache ()
      in
      let iface = Fuse_client.iface fc in
      {
        sh_client = iface;
        sh_service = None;
        sh_memory = (fun () -> Lib_client.cache_used (Fuse_client.inner fc));
        sh_pool = pool;
        sh_crash = (fun () -> Fuse_client.crash fc);
        sh_restart = (fun () -> Fuse_client.restart fc);
        sh_crashed = (fun () -> Fuse_client.crashed fc);
        sh_progress = (fun () -> 0.0);
        sh_admission = admission;
      }

let shared_for t ~config ~pool ~cache_bytes ~fine_grained ~qos =
  let key = shared_key ~fine_grained ~qos pool config in
  match Hashtbl.find_opt t.shared key with
  | Some s -> s
  | None ->
      let s = build_shared t ~config ~pool ~cache_bytes ~fine_grained ~qos in
      Hashtbl.add t.shared key s;
      s

(* ------------------------------------------------------------------ *)
(* Fault injection: crash and supervised restart of client stacks. *)

let crash_entry t sh ~restart_after =
  let obs = Kernel.obs t.kernel in
  let key = Cgroup.name sh.sh_pool in
  Obs.incr (Obs.counter obs ~layer:"core" ~name:"client_crash" ~key);
  (* the supervisor respawns the stack after [restart_after]: the pool's
     downtime is known the moment the crash is injected *)
  Obs.add (Obs.counter obs ~layer:"core" ~name:"downtime" ~key) restart_after;
  sh.sh_crash ();
  Engine.schedule (Kernel.engine t.kernel) ~delay:restart_after (fun () ->
      sh.sh_restart ())

(* Shared-table entries in key order, for deterministic crash order. *)
let sorted_shared t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.shared []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let crash_pool_named t ~pool_name ~restart_after =
  List.iter
    (fun (_, sh) ->
      if Cgroup.name sh.sh_pool = pool_name then crash_entry t sh ~restart_after)
    (sorted_shared t)

let crash_pool t ~pool ~restart_after =
  crash_pool_named t ~pool_name:(Cgroup.name pool) ~restart_after

let crash_host t ~restart_after =
  List.iter (fun (_, sh) -> crash_entry t sh ~restart_after) (sorted_shared t)

(* ------------------------------------------------------------------ *)
(* Watchdog: the engine's self-healing loop.  Every [interval] it
   samples each pool stack's progress counter into a heartbeat gauge and
   checks liveness; a stack that stays crashed for [grace] — i.e. no
   supervised restart is coming (the supervisor itself died, or the
   crash was never scheduled a respawn) — is restarted through the same
   [sh_restart] path the crash supervision uses, with the observed
   outage added to [core/downtime] and counted in
   [core/watchdog_restarts]. *)

type watchdog = { mutable wd_stop : bool }

let stop_watchdog wd = wd.wd_stop <- true

let start_watchdog t ?(interval = 0.5) ?(grace = 1.0) () =
  let engine = Kernel.engine t.kernel in
  let obs = Kernel.obs t.kernel in
  let wd = { wd_stop = false } in
  let down_since : (string, float) Hashtbl.t = Hashtbl.create 8 in
  Engine.spawn engine ~name:"watchdog" (fun () ->
      while not wd.wd_stop do
        Engine.sleep interval;
        if not wd.wd_stop then
          List.iter
            (fun (key, sh) ->
              let pool = Cgroup.name sh.sh_pool in
              Obs.set
                (Obs.gauge obs ~layer:"core" ~name:"watchdog_heartbeat" ~key:pool)
                (sh.sh_progress ());
              if sh.sh_crashed () then begin
                match Hashtbl.find_opt down_since key with
                | None -> Hashtbl.replace down_since key (Engine.now engine)
                | Some t0 when Engine.now engine -. t0 >= grace ->
                    Hashtbl.remove down_since key;
                    Obs.incr
                      (Obs.counter obs ~layer:"core" ~name:"watchdog_restarts"
                         ~key:pool);
                    Obs.add
                      (Obs.counter obs ~layer:"core" ~name:"downtime" ~key:pool)
                      (Engine.now engine -. t0);
                    sh.sh_restart ()
                | Some _ -> ()
              end
              else Hashtbl.remove down_since key)
            (sorted_shared t)
      done);
  wd

(* Lookup helpers probe both the plain and the qos-enabled key: a pool
   holds one stack per (config, fg, qos) combination and callers rarely
   care which variant they launched. *)
let find_shared t ~pool ~config =
  match
    Hashtbl.find_opt t.shared (shared_key ~fine_grained:false ~qos:None pool config)
  with
  | Some s -> Some s
  | None ->
      Hashtbl.find_opt t.shared
        (shared_key ~fine_grained:false ~qos:(Some ()) pool config)

let service_of t ~pool ~config =
  Option.bind (find_shared t ~pool ~config) (fun s -> s.sh_service)

let client_of t ~pool ~config =
  Option.map (fun s -> s.sh_client) (find_shared t ~pool ~config)

let install_image t ~name ~files =
  let ns = Cluster.namespace t.cluster in
  let dir = "/images/" ^ name in
  ignore (Namespace.mkdir_p ns dir);
  List.iter
    (fun (path, bytes) ->
      let full = Fspath.normalize (dir ^ Fspath.normalize path) in
      ignore (Namespace.mkdir_p ns (Fspath.parent full));
      (match Namespace.create_file ns full with
      | Ok _ | Error Namespace.Exists -> ()
      | Error e -> invalid_arg ("install_image: " ^ Namespace.error_to_string e));
      ignore (Namespace.set_size ns full bytes))
    files

(* Admission gate over a filesystem instance: every fallible op first
   asks the pool's admission controller; shed ops answer [Rejected]
   without reaching the retry layer, the ring or the backend, and
   admitted ops run with the configured op budget as their deadline.
   Mirrors the op set wrapped by {!Retry.wrap}. *)
let admit_wrap adm (inner : Client_intf.t) =
  let gate f =
    Danaus_qos.Admission.run adm ~shed:(fun () -> Error Client_intf.Rejected) f
  in
  {
    inner with
    Client_intf.open_file =
      (fun ~pool path flags ->
        gate (fun () -> inner.Client_intf.open_file ~pool path flags));
    read =
      (fun ~pool fd ~off ~len ->
        gate (fun () -> inner.Client_intf.read ~pool fd ~off ~len));
    write =
      (fun ~pool fd ~off ~len ->
        gate (fun () -> inner.Client_intf.write ~pool fd ~off ~len));
    append =
      (fun ~pool fd ~len -> gate (fun () -> inner.Client_intf.append ~pool fd ~len));
    fsync = (fun ~pool fd -> gate (fun () -> inner.Client_intf.fsync ~pool fd));
    stat = (fun ~pool path -> gate (fun () -> inner.Client_intf.stat ~pool path));
    mkdir_p =
      (fun ~pool path -> gate (fun () -> inner.Client_intf.mkdir_p ~pool path));
    readdir =
      (fun ~pool path -> gate (fun () -> inner.Client_intf.readdir ~pool path));
    unlink =
      (fun ~pool path -> gate (fun () -> inner.Client_intf.unlink ~pool path));
    rename =
      (fun ~pool ~src ~dst ->
        gate (fun () -> inner.Client_intf.rename ~pool ~src ~dst));
  }

(* Root trace spans around every container-level op: installed outermost,
   so the whole stack below — admission, retries, kernel, IPC, backend —
   decomposes under one per-op tree rooted in layer "core".  Only wrapped
   in when tracing is enabled at launch time, so the traced-off path pays
   nothing per op. *)
let trace_wrap engine ~key (inner : Client_intf.t) =
  let sp name f =
    Trace.with_span engine ~layer:"core" ~name ~key ~phase:Service f
  in
  {
    inner with
    Client_intf.open_file =
      (fun ~pool path flags ->
        sp "op:open" (fun () -> inner.Client_intf.open_file ~pool path flags));
    read =
      (fun ~pool fd ~off ~len ->
        sp "op:read" (fun () -> inner.Client_intf.read ~pool fd ~off ~len));
    write =
      (fun ~pool fd ~off ~len ->
        sp "op:write" (fun () -> inner.Client_intf.write ~pool fd ~off ~len));
    append =
      (fun ~pool fd ~len ->
        sp "op:append" (fun () -> inner.Client_intf.append ~pool fd ~len));
    fsync =
      (fun ~pool fd -> sp "op:fsync" (fun () -> inner.Client_intf.fsync ~pool fd));
    stat =
      (fun ~pool path -> sp "op:stat" (fun () -> inner.Client_intf.stat ~pool path));
    mkdir_p =
      (fun ~pool path ->
        sp "op:mkdir_p" (fun () -> inner.Client_intf.mkdir_p ~pool path));
    readdir =
      (fun ~pool path ->
        sp "op:readdir" (fun () -> inner.Client_intf.readdir ~pool path));
    unlink =
      (fun ~pool path ->
        sp "op:unlink" (fun () -> inner.Client_intf.unlink ~pool path));
    rename =
      (fun ~pool ~src ~dst ->
        sp "op:rename" (fun () -> inner.Client_intf.rename ~pool ~src ~dst));
  }

let launch t ~config ~pool ~id ?image ?(layers = []) ?cache_bytes
    ?(fine_grained_locking = false) ?block_cow ?qos () =
  let cache_bytes =
    match cache_bytes with Some b -> b | None -> Cgroup.mem_limit pool / 2
  in
  let shared =
    shared_for t ~config ~pool ~cache_bytes ~fine_grained:fine_grained_locking
      ~qos
  in
  (* branch directories live in the shared backend namespace *)
  let upper_prefix = Printf.sprintf "/pools/%s/%s" (Cgroup.name pool) id in
  ignore (Namespace.mkdir_p (Cluster.namespace t.cluster) upper_prefix);
  let lower_layers =
    (match image with Some img -> [ img ] | None -> []) @ layers
  in
  let branches =
    { Union_fs.client = shared.sh_client; prefix = upper_prefix; writable = true }
    :: List.map
         (fun img ->
           {
             Union_fs.client = shared.sh_client;
             prefix = "/images/" ^ img;
             writable = false;
           })
         lower_layers
  in
  let union =
    Union_fs.create
      ~name:
        (shared_key ~fine_grained:fine_grained_locking ~qos pool config
        ^ ".union." ^ id)
      ~branches
      ~charge:(fun ~pool dt -> user_charge t ~pool dt)
      ?block_cow ()
  in
  (* the runtime's mount helper retries transient faults (crashed
     service awaiting respawn, backend failover) with seeded backoff, so
     applications ride out a supervised restart instead of erroring *)
  let retry_wrap iface =
    Retry.wrap (Kernel.engine t.kernel) ~policy:Retry.crash_policy
      ~seed:
        (String.fold_left
           (fun a c -> (a * 131) + Char.code c)
           17
           (Cgroup.name pool ^ "/" ^ id))
      ~key:(Cgroup.name pool) iface
  in
  (* admission gating sits outermost: a shed op never reaches the retry
     loop, and an admitted op's budget deadline is in scope for every
     retry and IPC hop below *)
  let admit =
    match shared.sh_admission with
    | None -> fun iface -> iface
    | Some adm -> fun iface -> admit_wrap adm iface
  in
  (* root per-op spans sit outside even the admission gate, so shed ops
     still show up as (very short) traced ops *)
  let tracer =
    let engine = Kernel.engine t.kernel in
    if Trace.enabled (Engine.obs engine) then fun iface ->
      trace_wrap engine ~key:(Cgroup.name pool) iface
    else fun iface -> iface
  in
  let view, legacy =
    match shared.sh_service with
    | Some service ->
        (* Danaus: default path over shared-memory IPC; legacy path over
           the service's FUSE mount *)
        Fs_service.add_instance service ~mount_point:("/" ^ id) union;
        ( (fun ~thread ->
            tracer
              (admit (retry_wrap (Fs_service.view service ~instance:union ~thread)))),
          tracer
            (retry_wrap
               (Rebase.wrap ~prefix:("/" ^ id) (Fs_service.legacy_iface service))) )
    | None ->
        let stacked =
          match config.Config.union_transport with
          | Config.Direct -> union
          | Config.Fuse_u ->
              Fuse_wrap.wrap t.kernel ~pool ~name:(id ^ ".unionfs-fuse") ~threads:8
                union
          | Config.Fuse_pagecache_u ->
              Pagecache_wrap.wrap t.kernel ~name:(id ^ ".union-pc")
                ~max_dirty:(Cgroup.mem_limit pool / 2)
                (Fuse_wrap.wrap t.kernel ~pool ~name:(id ^ ".unionfs-fuse")
                   ~threads:8 union)
        in
        let stacked = tracer (admit (retry_wrap stacked)) in
        ((fun ~thread:_ -> stacked), stacked)
  in
  {
    ct_id = id;
    ct_pool = pool;
    ct_config = config;
    view;
    legacy;
    instance = union;
    user_memory = shared.sh_memory;
  }

(* ------------------------------------------------------------------ *)
(* Live pool migration between hosts (promoted from the `mig`
   experiment, where the two strategies lived as separate code paths).

   Both strategies launch the pool's container on the destination engine
   and answer the running destination container; they differ in how the
   root's state arrives:

   - [`Shared verify]: the destination mounts the same branches over the
     shared filesystem, so nothing is copied — state pages in on demand.
     Each [(path, size)] in [verify] is stat'ed through the destination
     view and must answer exactly [size] bytes, or the migration fails.

   - [`Copy files]: the destination first copies each [(path, size)] of
     [files] from the source container's view into its own subtree
     (chunked read/write + fsync per file; paths missing on the source
     are skipped, as an image manifest may list files a container never
     materialised).  A mid-copy failure — source read error, destination
     write error, a crashed stack exhausting its retry budget — rolls
     the partial subtree back: the destination engine reclaims the
     already-copied files directly in the backend namespace (the
     cost-free teardown an aborted migration performs) and the call
     answers [Error], leaving the source untouched.

   On success the byte-conservation law is checked ([Invariant] mode
   permitting): every copied or verified file's namespace size equals
   the manifest size — a migration never loses bytes. *)

type migration = {
  mg_container : container;
  mg_bytes : int;  (** bytes copied ([`Copy]) or verified ([`Shared]) *)
  mg_elapsed : float;  (** simulated seconds from call to completion *)
}

(* The destination subtree of the migrated container's writable branch,
   mirroring [launch]'s [upper_prefix]. *)
let branch_prefix ~pool ~id = Printf.sprintf "/pools/%s/%s" (Cgroup.name pool) id

let migrate_count t ~pool ~bytes =
  let obs = Kernel.obs t.kernel in
  let key = Cgroup.name pool in
  Obs.incr (Obs.counter obs ~layer:"core" ~name:"migrations" ~key);
  Obs.add
    (Obs.counter obs ~layer:"core" ~name:"migration_bytes" ~key)
    (float_of_int bytes)

let migrate_pool t ~src ~dst_pool ?dst_id ?image ?(layers = []) ?cache_bytes
    ?qos ?(chunk = 1024 * 1024) ?(src_thread = 3) ?(dst_thread = 4)
    ?(after_launch = fun (_ : container) -> ()) ~strategy () =
  let engine = Kernel.engine t.kernel in
  let dst_id = match dst_id with Some i -> i | None -> src.ct_id in
  let src_pool = src.ct_pool in
  let t0 = Engine.now engine in
  let ct =
    launch t ~config:src.ct_config ~pool:dst_pool ~id:dst_id ?image ~layers
      ?cache_bytes ?qos ()
  in
  let ns = Cluster.namespace t.cluster in
  let dst_prefix = branch_prefix ~pool:dst_pool ~id:dst_id in
  (* conservation: the file must exist in the backend namespace at
     exactly its manifest size (writes extend the size through the MDS,
     so a lost chunk shows up as a short file) *)
  let conserved path size =
    Invariant.invariant ~obs:(Kernel.obs t.kernel) ~layer:"core"
      ~what:"migrate_bytes_conserved"
      ~detail:(fun () ->
        Printf.sprintf "%s: namespace size %s, manifest %d" path
          (match Namespace.lookup ns (Fspath.normalize (dst_prefix ^ path)) with
          | Some a -> string_of_int a.Namespace.size
          | None -> "missing")
          size)
      (fun () ->
        match Namespace.lookup ns (Fspath.normalize (dst_prefix ^ path)) with
        | Some a -> a.Namespace.size = size
        | None -> false)
  in
  match strategy with
  | `Shared verify ->
      after_launch ct;
      let v = ct.view ~thread:1 in
      let rec check bytes = function
        | [] -> Ok bytes
        | (path, size) :: rest -> (
            match v.Client_intf.stat ~pool:dst_pool path with
            | Ok a when a.Namespace.size = size -> check (bytes + size) rest
            | Ok a ->
                Error
                  (Printf.sprintf "migrated state truncated: %s is %d of %d"
                     path a.Namespace.size size)
            | Error e ->
                Error
                  (Printf.sprintf "migrated state missing: %s: %s" path
                     (Client_intf.error_to_string e)))
      in
      Result.map
        (fun bytes ->
          List.iter (fun (path, size) -> conserved path size) verify;
          migrate_count t ~pool:dst_pool ~bytes;
          { mg_container = ct; mg_bytes = bytes; mg_elapsed = Engine.now engine -. t0 })
        (check 0 verify)
  | `Copy files ->
      let sv = src.view ~thread:src_thread in
      let dv = ct.view ~thread:dst_thread in
      (* the partial subtree reclaimed on a mid-copy failure: every file
         whose destination copy was started *)
      let started = ref [] in
      let rollback () =
        List.iter
          (fun path ->
            ignore (Namespace.unlink ns (Fspath.normalize (dst_prefix ^ path))))
          !started
      in
      let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
      let err what path e =
        Printf.sprintf "migration copy %s failed on %s: %s" what path
          (Client_intf.error_to_string e)
      in
      let copy_file path size =
        match sv.Client_intf.open_file ~pool:src_pool path Client_intf.flags_ro with
        | Error _ -> Ok 0 (* not materialised on the source: skip *)
        | Ok sfd ->
            started := path :: !started;
            let r =
              let* dfd =
                Result.map_error (err "open" path)
                  (dv.Client_intf.open_file ~pool:dst_pool path
                     Client_intf.flags_wo)
              in
              let rec chunks off =
                if off >= size then Ok ()
                else
                  let len = Stdlib.min chunk (size - off) in
                  let* _ =
                    Result.map_error (err "read" path)
                      (sv.Client_intf.read ~pool:src_pool sfd ~off ~len)
                  in
                  let* () =
                    Result.map_error (err "write" path)
                      (dv.Client_intf.write ~pool:dst_pool dfd ~off ~len)
                  in
                  chunks (off + len)
              in
              let r =
                let* () = chunks 0 in
                let* () =
                  Result.map_error (err "fsync" path)
                    (dv.Client_intf.fsync ~pool:dst_pool dfd)
                in
                Ok size
              in
              dv.Client_intf.close ~pool:dst_pool dfd;
              r
            in
            sv.Client_intf.close ~pool:src_pool sfd;
            r
      in
      let rec copy_all bytes = function
        | [] -> Ok bytes
        | (path, size) :: rest -> (
            match copy_file path size with
            | Ok copied -> copy_all (bytes + copied) rest
            | Error e ->
                rollback ();
                Error e)
      in
      Result.map
        (fun bytes ->
          after_launch ct;
          List.iter
            (fun (path, size) ->
              (* only files the source materialised were copied *)
              match sv.Client_intf.stat ~pool:src_pool path with
              | Ok _ -> conserved path size
              | Error _ -> ())
            files;
          migrate_count t ~pool:dst_pool ~bytes;
          { mg_container = ct; mg_bytes = bytes; mg_elapsed = Engine.now engine -. t0 })
        (copy_all 0 files)
