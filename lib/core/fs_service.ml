open Danaus_kernel
open Danaus_ceph
open Danaus_client
open Danaus_ipc

type t = {
  kernel : Kernel.t;
  svc_pool : Cgroup.t;
  svc_name : string;
  tr : Transport.t;
  table : Client_intf.t Mount_table.t;
  (* legacy-path descriptor remapping: instances allocate overlapping fd
     numbers, so the dispatching view keeps its own table *)
  legacy_fds : (int, Client_intf.t * Client_intf.fd) Hashtbl.t;
  mutable next_legacy_fd : int;
  mutable legacy : Client_intf.t option;
  mutable dead : bool;
  request_timeout : float option;
  shed_on_full : bool;
}

let create ?request_timeout ?(shed_on_full = false) kernel ~pool ~topology ~name =
  let tr = Transport.create kernel ~pool ~topology ~name:(name ^ ".ipc") () in
  Transport.start tr;
  {
    kernel;
    svc_pool = pool;
    svc_name = name;
    tr;
    table = Mount_table.create ();
    legacy_fds = Hashtbl.create 64;
    next_legacy_fd = 3;
    legacy = None;
    dead = false;
    request_timeout;
    shed_on_full;
  }

let name t = t.svc_name
let pool t = t.svc_pool
let transport t = t.tr
let requests t = Transport.requests t.tr

let add_instance t ~mount_point instance =
  Mount_table.add t.table ~mount_point instance

(* ------------------------------------------------------------------ *)
(* Default path: shared-memory IPC into the service threads. *)

let crash t = t.dead <- true

(* Supervised restart: the process is respawned with fresh state; fds
   held by applications across the crash are invalid (the remapping
   table is cleared), but mounted instances persist in the service's
   filesystem table as they are re-registered by the supervisor's
   container config. *)
let restart t =
  Hashtbl.reset t.legacy_fds;
  t.next_legacy_fd <- 3;
  t.dead <- false

let crashed t = t.dead

let view t ~instance ~thread =
  let on_overload =
    (* a full ring answers [Rejected] at the boundary instead of
       blocking the caller behind a saturated service *)
    if t.shed_on_full then Some (fun () -> Error Client_intf.Rejected)
    else None
  in
  let call bytes f =
    if t.dead then Error Client_intf.Crashed
    else
      let body () = if t.dead then Error Client_intf.Crashed else f () in
      match t.request_timeout with
      | None -> Transport.call ?on_overload t.tr ~thread ~bytes body
      | Some d ->
          Transport.call ~timeout:d
            ~on_timeout:(fun () -> Error Client_intf.Timed_out)
            ?on_overload t.tr ~thread ~bytes body
  in
  let call_unit bytes f = if t.dead then () else Transport.call t.tr ~thread ~bytes f in
  {
    Client_intf.name = t.svc_name ^ "/" ^ instance.Client_intf.name;
    open_file =
      (fun ~pool path flags -> call 0 (fun () -> instance.Client_intf.open_file ~pool path flags));
    close = (fun ~pool fd -> call_unit 0 (fun () -> instance.Client_intf.close ~pool fd));
    read =
      (fun ~pool fd ~off ~len ->
        call len (fun () -> instance.Client_intf.read ~pool fd ~off ~len));
    write =
      (fun ~pool fd ~off ~len ->
        call len (fun () -> instance.Client_intf.write ~pool fd ~off ~len));
    append =
      (fun ~pool fd ~len -> call len (fun () -> instance.Client_intf.append ~pool fd ~len));
    fsync = (fun ~pool fd -> call 0 (fun () -> instance.Client_intf.fsync ~pool fd));
    fd_size = instance.Client_intf.fd_size;
    stat = (fun ~pool path -> call 0 (fun () -> instance.Client_intf.stat ~pool path));
    mkdir_p = (fun ~pool path -> call 0 (fun () -> instance.Client_intf.mkdir_p ~pool path));
    readdir = (fun ~pool path -> call 0 (fun () -> instance.Client_intf.readdir ~pool path));
    unlink = (fun ~pool path -> call 0 (fun () -> instance.Client_intf.unlink ~pool path));
    rename =
      (fun ~pool ~src ~dst -> call 0 (fun () -> instance.Client_intf.rename ~pool ~src ~dst));
    memory_used = instance.Client_intf.memory_used;
  }

(* ------------------------------------------------------------------ *)
(* Legacy path: dispatch by the filesystem table, behind FUSE. *)

let with_route t path k =
  if t.dead then Error Client_intf.Crashed
  else
    match Mount_table.resolve t.table path with
    | None -> Error (Client_intf.Fs Namespace.No_entry)
    | Some (instance, remainder) -> k instance remainder

let with_legacy_fd t fd k =
  if t.dead then Error Client_intf.Crashed
  else
    match Hashtbl.find_opt t.legacy_fds fd with
    | None -> Error Client_intf.Bad_fd
    | Some (instance, ifd) -> k instance ifd

let dispatch_iface t =
  {
    Client_intf.name = t.svc_name ^ ".dispatch";
    open_file =
      (fun ~pool path flags ->
        with_route t path (fun instance rest ->
            match instance.Client_intf.open_file ~pool rest flags with
            | Ok ifd ->
                let fd = t.next_legacy_fd in
                t.next_legacy_fd <- t.next_legacy_fd + 1;
                Hashtbl.add t.legacy_fds fd (instance, ifd);
                Ok fd
            | Error _ as e -> e));
    close =
      (fun ~pool fd ->
        match Hashtbl.find_opt t.legacy_fds fd with
        | None -> ()
        | Some (instance, ifd) ->
            instance.Client_intf.close ~pool ifd;
            Hashtbl.remove t.legacy_fds fd);
    read =
      (fun ~pool fd ~off ~len ->
        with_legacy_fd t fd (fun i ifd -> i.Client_intf.read ~pool ifd ~off ~len));
    write =
      (fun ~pool fd ~off ~len ->
        with_legacy_fd t fd (fun i ifd -> i.Client_intf.write ~pool ifd ~off ~len));
    append =
      (fun ~pool fd ~len ->
        with_legacy_fd t fd (fun i ifd -> i.Client_intf.append ~pool ifd ~len));
    fsync =
      (fun ~pool fd -> with_legacy_fd t fd (fun i ifd -> i.Client_intf.fsync ~pool ifd));
    fd_size = (fun fd -> with_legacy_fd t fd (fun i ifd -> i.Client_intf.fd_size ifd));
    stat =
      (fun ~pool path ->
        with_route t path (fun i rest -> i.Client_intf.stat ~pool rest));
    mkdir_p =
      (fun ~pool path ->
        with_route t path (fun i rest -> i.Client_intf.mkdir_p ~pool rest));
    readdir =
      (fun ~pool path ->
        with_route t path (fun i rest -> i.Client_intf.readdir ~pool rest));
    unlink =
      (fun ~pool path ->
        with_route t path (fun i rest -> i.Client_intf.unlink ~pool rest));
    rename =
      (fun ~pool ~src ~dst ->
        with_route t src (fun i rest_src ->
            with_route t dst (fun _ rest_dst ->
                i.Client_intf.rename ~pool ~src:rest_src ~dst:rest_dst)));
    memory_used = (fun () -> 0);
  }

let legacy_iface t =
  match t.legacy with
  | Some l -> l
  | None ->
      let l =
        Fuse_wrap.wrap t.kernel ~pool:t.svc_pool ~name:(t.svc_name ^ ".fuse")
          ~threads:8 (dispatch_iface t)
      in
      t.legacy <- Some l;
      l
