open Danaus_sim
open Danaus_hw

(** The shared host kernel.

    Centralises everything the colocated pools contend on: the page
    cache, the kernel lock registry, the writeback (flusher) machinery
    and the CPU cost accounting of syscalls, context switches and data
    copies.

    The defining behaviour (paper §2.1): syscall-context CPU is charged
    to the calling pool's reserved cores (cpuset applies to the task),
    but *flusher* CPU runs on any activated core of the host — so a
    write-intensive tenant's writeback lands on its neighbours' cores. *)

type t

(** [create engine ~cpu ~activated ~page_cache_limit] builds a kernel
    using cores [activated] for its background threads.  [writeback]
    (default 1 s) and [expire] (default 5 s) mirror
    [dirty_writeback_centisecs] / [dirty_expire_centisecs]. *)
val create :
  ?costs:Costs.t ->
  ?writeback:float ->
  ?expire:float ->
  Engine.t ->
  cpu:Cpu.t ->
  activated:int array ->
  page_cache_limit:int ->
  t

val engine : t -> Engine.t
val cpu : t -> Cpu.t
val costs : t -> Costs.t
val activated : t -> int array
val page_cache : t -> Page_cache.t

(** The engine's observability context.  Kernel accounting lands under
    layer ["kernel"]: counters [syscalls], [mode_switches],
    [context_switches] and [io_wait] keyed by pool name, and
    [bytes_flushed] / [flusher_runs] keyed by ["kernel"]. *)
val obs : t -> Obs.t

(** Change the activated core set (experiments enable 4-16 cores). *)
val set_activated : t -> int array -> unit

(** {1 Locks} *)

(** Interned kernel lock; the same name yields the same mutex, shared by
    every pool on the host (e.g. ["i_mutex:/a/b"], ["sb:cephfs"]). *)
val lock : t -> string -> Mutex_sim.t

(** (avg wait, avg hold, requests) aggregated over all kernel locks —
    the paper's Fig. 1b metric. *)
val lock_request_stats : t -> float * float * int

val reset_lock_stats : t -> unit

(** The [n] locks with the highest total wait (debug/analysis). *)
val top_locks_by_wait : t -> n:int -> (string * float * float * int) list

(** {1 CPU and accounting helpers (call from a simulated process)} *)

(** Syscall-context CPU on the pool's reserved cores. *)
val pool_cpu : t -> pool:Cgroup.t -> float -> unit

(** Kernel background CPU on any activated core (tenant "kernel"). *)
val kernel_cpu : t -> float -> unit

(** [syscall t ~pool f] charges two mode switches around [f] and counts
    one syscall for the pool. *)
val syscall : t -> pool:Cgroup.t -> (unit -> 'a) -> 'a

(** Charge [n] context switches to the pool (cost + counter). *)
val context_switches : t -> pool:Cgroup.t -> int -> unit

(** Charge a kernel memcpy of [bytes] to the pool. *)
val copy : t -> pool:Cgroup.t -> bytes:int -> unit

(** [blocking_io t ~pool f] runs the blocking backing I/O [f], charging
    the pool two context switches and recording the elapsed time as
    I/O wait. *)
val blocking_io : t -> pool:Cgroup.t -> (unit -> 'a) -> 'a

(** {1 Writeback} *)

(** Spawn the writeback coordinator and one flusher thread per activated
    core.  Idempotent. *)
val start_flushers : t -> unit

(** Force synchronous writeback of one file (fsync semantics); CPU is
    charged to the calling pool. *)
val fsync_file : t -> pool:Cgroup.t -> Page_cache.file -> unit
