open Danaus_sim
open Danaus_hw

type flush_job = { job_file : Page_cache.file; job_bytes : int }

(* Per-pool accounting handles, resolved once per pool.  [Obs.counter]
   interns by hashing a (layer, name, key) tuple of three strings; doing
   that on every syscall is a measurable fraction of a metadata-heavy
   workload, so the hot entry points below go through this memo. *)
type pool_ctrs = {
  syscalls_c : Obs.counter;
  mode_switches_c : Obs.counter;
  context_switches_c : Obs.counter;
  io_wait_c : Obs.counter;
}

type t = {
  engine : Engine.t;
  cpu : Cpu.t;
  costs : Costs.t;
  mutable activated : int array;
  host_mem : Memory.t;
  page_cache : Page_cache.t;
  obs : Obs.t;
  bytes_flushed_c : Obs.counter;
  flusher_runs_c : Obs.counter;
  locks : (string, Mutex_sim.t) Hashtbl.t;
  pool_ctrs : (string, pool_ctrs) Hashtbl.t;
  writeback : float;
  expire : float;
  (* one ordered writeback pipeline per mount (Linux per-bdi flusher) *)
  mount_queues : (string, flush_job Channel.t) Hashtbl.t;
  mutable flushers_started : bool;
}

let kernel_tenant = "kernel"
let flush_chunk = 4 * 1024 * 1024

let create ?(costs = Costs.default) ?(writeback = 1.0) ?(expire = 5.0) engine
    ~cpu ~activated ~page_cache_limit =
  let host_mem = Memory.create ~name:"host.page_cache" () in
  let obs = Engine.obs engine in
  {
    engine;
    cpu;
    costs;
    activated;
    host_mem;
    page_cache =
      Page_cache.create engine ~mem:host_mem ~limit:page_cache_limit
        ~block:(64 * 1024);
    obs;
    bytes_flushed_c =
      Obs.counter obs ~layer:"kernel" ~name:"bytes_flushed" ~key:kernel_tenant;
    flusher_runs_c =
      Obs.counter obs ~layer:"kernel" ~name:"flusher_runs" ~key:kernel_tenant;
    locks = Hashtbl.create 64;
    pool_ctrs = Hashtbl.create 16;
    writeback;
    expire;
    mount_queues = Hashtbl.create 16;
    flushers_started = false;
  }

let engine t = t.engine
let cpu t = t.cpu
let costs t = t.costs
let activated t = t.activated
let page_cache t = t.page_cache
let obs t = t.obs
let set_activated t cores = t.activated <- cores

let pool_ctrs t ~pool =
  let key = Cgroup.name pool in
  match Hashtbl.find t.pool_ctrs key with
  | c -> c
  | exception Not_found ->
      let counter name = Obs.counter t.obs ~layer:"kernel" ~name ~key in
      let c =
        {
          syscalls_c = counter "syscalls";
          mode_switches_c = counter "mode_switches";
          context_switches_c = counter "context_switches";
          io_wait_c = counter "io_wait";
        }
      in
      Hashtbl.add t.pool_ctrs key c;
      c

let lock t name =
  match Hashtbl.find t.locks name with
  | m -> m
  | exception Not_found ->
      let m = Mutex_sim.create t.engine ~name in
      Hashtbl.add t.locks name m;
      m

let lock_request_stats t =
  let wait, hold, n =
    Hashtbl.fold
      (fun _ m (w, h, n) ->
        ( w +. Mutex_sim.total_wait m,
          h +. Mutex_sim.total_hold m,
          n + Mutex_sim.acquisitions m ))
      t.locks (0.0, 0.0, 0)
  in
  if n = 0 then (0.0, 0.0, 0)
  else (wait /. float_of_int n, hold /. float_of_int n, n)

let reset_lock_stats t = Hashtbl.iter (fun _ m -> Mutex_sim.reset_stats m) t.locks

let top_locks_by_wait t ~n =
  Hashtbl.fold
    (fun name m acc ->
      (name, Mutex_sim.total_wait m, Mutex_sim.total_hold m, Mutex_sim.acquisitions m)
      :: acc)
    t.locks []
  |> List.sort (fun (_, a, _, _) (_, b, _, _) -> Float.compare b a)
  |> List.filteri (fun i _ -> i < n)

let pool_cpu t ~pool dt =
  if dt > 0.0 then
    Cpu.compute t.cpu ~tenant:(Cgroup.name pool) ~eligible:(Cgroup.cores pool) dt

let flusher_backoff = 2.0e-3

let kernel_cpu t dt =
  if dt > 0.0 then
    Cpu.compute_background t.cpu ~tenant:kernel_tenant ~eligible:t.activated
      ~backoff:flusher_backoff dt

let syscall t ~pool f =
  let c = pool_ctrs t ~pool in
  Obs.incr c.syscalls_c;
  Obs.add c.mode_switches_c 2.0;
  pool_cpu t ~pool (2.0 *. t.costs.mode_switch);
  f ()

let context_switches t ~pool n =
  if n > 0 then begin
    Obs.add (pool_ctrs t ~pool).context_switches_c (float_of_int n);
    pool_cpu t ~pool (float_of_int n *. t.costs.context_switch)
  end

let copy t ~pool ~bytes =
  if bytes > 0 then pool_cpu t ~pool (float_of_int bytes *. t.costs.copy_per_byte)

let blocking_io t ~pool f =
  context_switches t ~pool 2;
  let started = Engine.now t.engine in
  let span =
    Trace.enter t.engine ~layer:"kernel" ~name:"blocking_io"
      ~key:(Cgroup.name pool) ~phase:Service
  in
  let r = f () in
  Trace.exit t.engine span;
  let elapsed = Engine.now t.engine -. started in
  Obs.add (pool_ctrs t ~pool).io_wait_c elapsed;
  r

(* The writeback machinery mirrors Linux: a coordinator scans the mounts
   and turns dirty state into chunked flush jobs; each mount (bdi) has
   ONE ordered flusher pipeline, whose work items execute on per-CPU
   kworkers — modelled by rotating each successive chunk onto the next
   activated core and acquiring it at background priority.  When the
   neighbours' cores are idle the pipeline streams at full speed ("the
   kernel steals the cores"); when every activated core is busy with
   reserved work, each chunk crawls and the whole pipeline — and with it
   every throttled writer — collapses (Fig. 1a). *)

(* in-flight I/O window of one bdi pipeline (nr_requests-style bound) *)
let bdi_window = 32

let mount_queue t m =
  let name = Page_cache.mount_name m in
  match Hashtbl.find_opt t.mount_queues name with
  | Some q -> q
  | None ->
      let q = Channel.create t.engine ~capacity:1024 in
      Hashtbl.add t.mount_queues name q;
      let rotor = ref 0 in
      let window =
        Semaphore_sim.create t.engine ~name:("bdi:" ^ name) ~value:bdi_window
      in
      (* the CephFS client writes back over a couple of concurrent OSD
         sessions: two submission workers share the mount's pipeline *)
      for w = 0 to 1 do
        Engine.spawn t.engine ~name:(Printf.sprintf "bdi-flush:%s:%d" name w)
          (fun () ->
            while true do
              let job = Channel.get q in
              Obs.incr t.flusher_runs_c;
              let cores = t.activated in
              let core = cores.(!rotor mod Array.length cores) in
              incr rotor;
              (* the submission CPU runs on whichever per-CPU kworker the
                 item landed on *)
              Cpu.compute_background t.cpu ~tenant:kernel_tenant
                ~eligible:[| core |] ~backoff:flusher_backoff
                (float_of_int job.job_bytes *. t.costs.flush_per_byte);
              (* the backing I/O itself completes asynchronously *)
              Semaphore_sim.acquire window;
              Engine.fork ~name:("bdi-io:" ^ name) (fun () ->
                  let span =
                    Trace.enter t.engine ~layer:"kernel" ~name:"bdi_flush"
                      ~key:name ~phase:Service
                  in
                  Page_cache.run_flush job.job_file ~bytes:job.job_bytes;
                  Page_cache.writeback_complete t.page_cache
                    (Page_cache.mount_of job.job_file) ~bytes:job.job_bytes;
                  Obs.add t.bytes_flushed_c (float_of_int job.job_bytes);
                  Trace.exit t.engine span;
                  Semaphore_sim.release window)
            done)
      done;
      q

let enqueue_jobs t m work =
  let q = mount_queue t m in
  List.iter
    (fun (file, bytes) ->
      let rec split remaining =
        if remaining > 0 then begin
          let n = min remaining flush_chunk in
          Channel.put q { job_file = file; job_bytes = n };
          split (remaining - n)
        end
      in
      split bytes)
    work

let start_flushers t =
  if not t.flushers_started then begin
    t.flushers_started <- true;
    Engine.spawn t.engine ~name:"kflushd" (fun () ->
        let poll = Float.min 0.1 t.writeback in
        let last_scan = ref neg_infinity in
        while true do
          Engine.sleep poll;
          let now = Engine.now t.engine in
          let periodic = now -. !last_scan >= t.writeback in
          if periodic then last_scan := now;
          (* the periodic scan is a quiescent point for the whole cache:
             sweep its conservation laws before queueing new work *)
          if periodic then Page_cache.check_invariants t.page_cache;
          List.iter
            (fun m ->
              if periodic then
                enqueue_jobs t m
                  (Page_cache.take_dirty t.page_cache m
                     ~older_than:(now -. t.expire) ~max_bytes:max_int);
              let dirty = Page_cache.dirty_bytes t.page_cache m in
              let background = Page_cache.background_threshold m in
              if dirty > background then
                enqueue_jobs t m
                  (Page_cache.take_dirty t.page_cache m ~older_than:now
                     ~max_bytes:(dirty - background)))
            (Page_cache.mounts t.page_cache)
        done)
  end

let fsync_file t ~pool file =
  let work = Page_cache.flush_file file in
  List.iter
    (fun (f, bytes) ->
      pool_cpu t ~pool (float_of_int bytes *. t.costs.flush_per_byte);
      blocking_io t ~pool (fun () -> Page_cache.run_flush f ~bytes);
      Page_cache.writeback_complete t.page_cache (Page_cache.mount_of f) ~bytes)
    work
