open Danaus_sim
open Danaus_hw

(** Shared kernel page cache.

    One instance exists per simulated host kernel.  Cached data is tracked
    at block granularity per file; dirty blocks carry the time they were
    dirtied so the flusher can honour the expire interval.  Dirty limits
    are per *mount* (Linux: per-bdi / per-filesystem max dirty bytes —
    the paper sets them to 50% of the pool RAM for the kernel Ceph
    client), while the eviction limit is global (host memory).

    Memory is charged to the host's page-cache domain — deliberately not
    to the pool that caused it, reproducing the "inaccurate accounting of
    shared kernel resources" the paper criticises. *)

type t

type mount

type file

(** [create engine ~mem ~limit ~block] makes an empty cache charging
    pages to [mem], evicting above [limit] bytes, tracking [block]-byte
    blocks. *)
val create : Engine.t -> mem:Memory.t -> limit:int -> block:int -> t

(** [add_mount t ~name ~max_dirty ?mem_limit ()] registers a filesystem;
    writers on it throttle once its dirty bytes exceed [max_dirty].
    [mem_limit], when given, bounds the mount's cached bytes (cgroup v2
    memory accounting covers the page cache a pool generates, so a
    kernel-client mount evicts at its pool's limit). *)
val add_mount : t -> name:string -> max_dirty:int -> ?mem_limit:int -> unit -> mount

val mount_name : mount -> string

(** Dirty bytes above which background writeback starts for the mount
    (half of its hard limit, as in Linux's dirty_background_ratio). *)
val background_threshold : mount -> int

(** [file t mount ~key ~flush] returns the (interned) cache state of the
    file [key].  [flush ~bytes] writes [bytes] of dirty data to backing
    storage; it runs in flusher-thread context and may block. *)
val file : t -> mount -> key:string -> flush:(bytes:int -> unit) -> file

(** Bytes of [off, off+len) not currently cached. *)
val missing : file -> off:int -> len:int -> int

(** Insert clean data (after reading it from backing storage). *)
val insert_clean : file -> off:int -> len:int -> unit

(** Record a buffered write: blocks become present and dirty. *)
val write : file -> off:int -> len:int -> unit

(** Dirty bytes of one file. *)
val dirty_bytes_of : file -> int

(** Drop the file's blocks (all must be clean; flush first). *)
val invalidate : file -> unit

(** Block the caller while the file's mount is over its dirty limit.
    Woken by the flusher as data is cleaned. *)
val throttle : file -> unit

(** Same, for callers that hold the mount rather than a file. *)
val throttle_mount : t -> mount -> unit

(** {1 Flusher interface} *)

(** [take_dirty t mount ~older_than ~max_bytes] selects up to
    [max_bytes] dirty bytes (oldest first, only blocks dirtied before
    [older_than]) for writeback and returns the per-file amounts.  The
    selected bytes keep counting against the mount's dirty total (they
    are "under writeback") until {!writeback_complete} — so throttled
    writers only resume once data actually reached backing storage. *)
val take_dirty :
  t -> mount -> older_than:float -> max_bytes:int -> (file * int) list

(** [flush_file file] selects *all* dirty bytes of one file (fsync). *)
val flush_file : file -> (file * int) list

(** Run a file's flush callback for the given byte count. *)
val run_flush : file -> bytes:int -> unit

(** Account [bytes] of completed writeback on the mount; wakes throttled
    writers once the mount is back under its limit. *)
val writeback_complete : t -> mount -> bytes:int -> unit

(** Drop a file's dirty data without writing it back (truncate). *)
val discard_dirty : file -> unit

(** The mount a file belongs to. *)
val mount_of : file -> mount

(** Bytes currently cached on behalf of the mount. *)
val mount_used : mount -> int

val dirty_bytes : t -> mount -> int
val total_dirty : t -> int
val mounts : t -> mount list

(** Total bytes cached (clean + dirty). *)
val used_bytes : t -> int

(** Time the oldest dirty block of the mount was dirtied, if any. *)
val oldest_dirty : t -> mount -> float option

(** {1 Invariants} *)

(** Bytes the mount ever dirtied / ever retired by writeback.  Plain
    accumulators (not [Obs] cells), so they survive [Obs.reset]; the
    conservation law is [dirtied_total = wb_total + dirty_bytes]. *)
val dirtied_total : mount -> int

val wb_total : mount -> int

(** Check one mount's conservation laws through {!Invariant} (no-op when
    the invariant mode is [Off]). *)
val check_mount : t -> mount -> unit

(** Check every mount plus the cache-wide laws: per-mount occupancies
    sum to the memory pool's usage, per-mount dirty sums to the cache's
    grand total.  Called periodically by the kernel's flusher sweep and
    at the end of experiments. *)
val check_invariants : t -> unit
