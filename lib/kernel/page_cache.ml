open Danaus_sim
open Danaus_hw

type mount = {
  m_name : string;
  max_dirty : int;
  m_limit : int; (* cgroup memory limit covering this mount's cache *)
  mutable m_used : int;
  mutable m_dirty : int;
  (* Conservation accumulators, deliberately plain ints rather than Obs
     cells: [Obs.reset] between warm-up and measured phases clears the
     cells but must not break the law below. *)
  mutable m_dirtied_total : int; (* every byte that ever became dirty *)
  mutable m_wb_total : int; (* every byte retired by writeback/discard *)
  throttled : (unit -> unit) Queue.t;
  mutable m_files : file list;
  dirty_g : Obs.gauge;
  dirty_peak_g : Obs.gauge;
  wb_c : Obs.counter;
}

(* Dirty blocks of one file, in first-dirtied order: a growable circular
   buffer of (block, dirtied-at) pairs in parallel arrays.  The engine
   clock is monotonic and re-dirtying an already-dirty block keeps its
   original timestamp (it is simply not re-appended), so the ring is
   sorted by dirtied-at by construction — the flusher's oldest-first
   selection pops from the front in O(selected) instead of folding the
   whole dirty table and sorting it on every 4 MB chunk.  [f.dirty]
   remains the membership set; ring and table always hold the same
   blocks ([check_invariants] states that law). *)
and dirty_ring = {
  mutable r_blocks : int array;
  mutable r_at : float array;
  mutable r_head : int; (* index of the oldest entry *)
  mutable r_len : int;
}

and file = {
  key : string;
  mnt : mount;
  cache : t;
  present : (int, unit) Hashtbl.t;
  (* block -> dirtied-at.  The ring mirrors this table in age order; the
     table itself is kept because the flusher's legacy tie-break (see
     {!select_blocks}) is the fold order of exactly this table. *)
  dirty : (int, float) Hashtbl.t;
  dring : dirty_ring;
  mutable last_access : float;
  flush : bytes:int -> unit;
}

and t = {
  engine : Engine.t;
  mem : Memory.t;
  limit : int;
  block : int;
  mutable all_mounts : mount list;
  files_by_key : (string, file) Hashtbl.t;
  mutable grand_dirty : int;
}

let ring_create () =
  { r_blocks = Array.make 64 0; r_at = Array.make 64 0.0; r_head = 0; r_len = 0 }

let ring_grow r =
  let cap = Array.length r.r_blocks in
  let cap' = cap * 2 in
  let blocks = Array.make cap' 0 and at = Array.make cap' 0.0 in
  (* unroll the circle while copying *)
  for i = 0 to r.r_len - 1 do
    let j = (r.r_head + i) mod cap in
    blocks.(i) <- r.r_blocks.(j);
    at.(i) <- r.r_at.(j)
  done;
  r.r_blocks <- blocks;
  r.r_at <- at;
  r.r_head <- 0

let[@inline] ring_push r b at =
  if r.r_len = Array.length r.r_blocks then ring_grow r;
  let tail = (r.r_head + r.r_len) mod Array.length r.r_blocks in
  r.r_blocks.(tail) <- b;
  r.r_at.(tail) <- at;
  r.r_len <- r.r_len + 1

let create engine ~mem ~limit ~block =
  Invariant.precondition ~layer:"page_cache" ~what:"create_args"
    ~detail:(fun () -> Printf.sprintf "limit %d, block %d" limit block)
    (limit > 0 && block > 0);
  {
    engine;
    mem;
    limit;
    block;
    all_mounts = [];
    files_by_key = Hashtbl.create 1024;
    grand_dirty = 0;
  }

let add_mount t ~name ~max_dirty ?mem_limit () =
  Invariant.precondition ~layer:"page_cache" ~what:"mount_max_dirty"
    ~detail:(fun () -> Printf.sprintf "%s: max_dirty %d" name max_dirty)
    (max_dirty > 0);
  let obs = Engine.obs t.engine in
  let m =
    {
      m_name = name;
      max_dirty;
      m_limit = Option.value ~default:max_int mem_limit;
      m_used = 0;
      m_dirty = 0;
      m_dirtied_total = 0;
      m_wb_total = 0;
      throttled = Queue.create ();
      m_files = [];
      dirty_g = Obs.gauge obs ~layer:"kernel" ~name:"dirty_bytes" ~key:name;
      dirty_peak_g =
        Obs.gauge obs ~layer:"kernel" ~name:"dirty_bytes_peak" ~key:name;
      wb_c = Obs.counter obs ~layer:"kernel" ~name:"wb_bytes" ~key:name;
    }
  in
  t.all_mounts <- m :: t.all_mounts;
  m

let note_dirty m =
  let d = float_of_int m.m_dirty in
  Obs.set m.dirty_g d;
  Obs.set_max m.dirty_peak_g d

let mount_name m = m.m_name
let background_threshold m = m.max_dirty / 2

(* Evict clean blocks, least-recently-accessed files first, once the
   cache exceeds its limit.  Eviction proceeds down to 90% of the limit
   (hysteresis) so that the scan is amortised over many inserts.  Dirty
   blocks are never dropped. *)
let evict_if_needed t =
  if Memory.used t.mem > t.limit then begin
    let files =
      Hashtbl.fold (fun _ f acc -> f :: acc) t.files_by_key []
      |> List.sort (fun a b -> Float.compare a.last_access b.last_access)
    in
    let target = t.limit / 10 * 9 in
    let excess = ref (Memory.used t.mem - target) in
    List.iter
      (fun f ->
        if !excess > 0 then begin
          let victims =
            Hashtbl.fold
              (fun b () acc -> if Hashtbl.mem f.dirty b then acc else b :: acc)
              f.present []
          in
          List.iter
            (fun b ->
              if !excess > 0 then begin
                Hashtbl.remove f.present b;
                f.mnt.m_used <- f.mnt.m_used - t.block;
                Memory.free t.mem t.block;
                excess := !excess - t.block
              end)
            victims
        end)
      files
  end

let file t mnt ~key ~flush =
  match Hashtbl.find t.files_by_key key with
  | f -> f
  | exception Not_found ->
      let f =
        {
          key;
          mnt;
          cache = t;
          present = Hashtbl.create 16;
          dirty = Hashtbl.create 16;
          dring = ring_create ();
          last_access = Engine.now t.engine;
          flush;
        }
      in
      Hashtbl.add t.files_by_key key f;
      mnt.m_files <- f :: mnt.m_files;
      f

let missing f ~off ~len =
  f.last_access <- Engine.now f.cache.engine;
  if len <= 0 then 0
  else begin
    let t = f.cache in
    let first = off / t.block and last = (off + len - 1) / t.block in
    let acc = ref 0 in
    for b = first to last do
      if not (Hashtbl.mem f.present b) then acc := !acc + t.block
    done;
    !acc
  end

(* Per-mount (cgroup v2 memory) eviction: drop clean LRU blocks of the
   mount once its cached bytes exceed the pool's memory limit. *)
let evict_mount_if_needed m =
  if m.m_used > m.m_limit then begin
    let files =
      List.sort (fun a b -> Float.compare a.last_access b.last_access) m.m_files
    in
    let target = m.m_limit / 10 * 9 in
    let excess = ref (m.m_used - target) in
    List.iter
      (fun f ->
        if !excess > 0 then begin
          let t = f.cache in
          let victims =
            Hashtbl.fold
              (fun b () acc -> if Hashtbl.mem f.dirty b then acc else b :: acc)
              f.present []
          in
          List.iter
            (fun b ->
              if !excess > 0 then begin
                Hashtbl.remove f.present b;
                Memory.free t.mem t.block;
                m.m_used <- m.m_used - t.block;
                excess := !excess - t.block
              end)
            victims
        end)
      files
  end

let insert_clean f ~off ~len =
  let t = f.cache in
  f.last_access <- Engine.now t.engine;
  if len > 0 then begin
    let first = off / t.block and last = (off + len - 1) / t.block in
    for b = first to last do
      if not (Hashtbl.mem f.present b) then begin
        Hashtbl.add f.present b ();
        f.mnt.m_used <- f.mnt.m_used + t.block;
        Memory.alloc t.mem t.block
      end
    done
  end;
  evict_mount_if_needed f.mnt;
  evict_if_needed t

let write f ~off ~len =
  let t = f.cache in
  let now = Engine.now t.engine in
  f.last_access <- now;
  if len > 0 then begin
    let first = off / t.block and last = (off + len - 1) / t.block in
    for b = first to last do
      if not (Hashtbl.mem f.present b) then begin
        Hashtbl.add f.present b ();
        f.mnt.m_used <- f.mnt.m_used + t.block;
        Memory.alloc t.mem t.block
      end;
      if not (Hashtbl.mem f.dirty b) then begin
        Hashtbl.add f.dirty b now;
        ring_push f.dring b now;
        f.mnt.m_dirty <- f.mnt.m_dirty + t.block;
        f.mnt.m_dirtied_total <- f.mnt.m_dirtied_total + t.block;
        t.grand_dirty <- t.grand_dirty + t.block
      end
    done
  end;
  note_dirty f.mnt;
  evict_mount_if_needed f.mnt;
  evict_if_needed t

let dirty_bytes_of f = Hashtbl.length f.dirty * f.cache.block

let invalidate f =
  let t = f.cache in
  if Hashtbl.length f.dirty > 0 then
    invalid_arg ("Page_cache.invalidate: dirty file " ^ f.key);
  let bytes = Hashtbl.length f.present * t.block in
  Memory.free t.mem bytes;
  f.mnt.m_used <- f.mnt.m_used - bytes;
  Hashtbl.reset f.present

(* Writers over the dirty limit sleep and are released one at a time:
   each writeback completion wakes one, and a writer that gets through
   pulls the next along (chained wakeup).  Batch wakeups would create
   synchronized dirty/sleep cycles with long idle windows — Linux paces
   each dirtier individually. *)
let wake_one m =
  if not (Queue.is_empty m.throttled) then (Queue.pop m.throttled) ()

let throttle_mount (_ : t) m =
  while m.m_dirty > m.max_dirty do
    Engine.suspend (fun wake -> Queue.add wake m.throttled)
  done;
  if m.m_dirty <= m.max_dirty then wake_one m

let throttle f = throttle_mount f.cache f.mnt

let wake_throttled m = if m.m_dirty <= m.max_dirty then wake_one m

(* Move dirty blocks of [f] into the under-writeback state, oldest
   first: they leave the file's dirty set (so they are not selected
   twice) but keep counting against the mount's dirty total until
   {!writeback_complete} — Linux's balance_dirty_pages throttles on
   dirty + writeback together, which is what closes the feedback loop
   between writers and the (possibly starved) flusher threads.

   The ring is sorted by dirtied-at (see {!dirty_ring}), so "oldest
   blocks not newer than [older_than], up to [budget]" is a pop off the
   front — no per-call fold over the dirty table, no sort.  One
   subtlety keeps the result bit-identical to the historical
   fold-and-stable-sort implementation: when the budget cuts through a
   group of blocks dirtied at the same instant (one multi-block write
   call), the old code took the group's members in the dirty table's
   fold order, not first-dirtied order.  Which members are left dirty
   feeds back into later flush timing, so the golden tables see the
   difference.  The fast path below (whole groups, the overwhelmingly
   common case — and always the case for full flushes) never touches
   the table beyond removals; only a split group replays the legacy
   fold order for that one group. *)
let select_blocks f ~older_than ~budget =
  let r = f.dring in
  let block = f.cache.block in
  if budget <= 0 || r.r_len = 0 then 0
  else begin
    let cap = Array.length r.r_blocks in
    (* eligible entries form a prefix of the age-sorted ring *)
    let avail = ref 0 in
    while
      !avail < r.r_len && r.r_at.((r.r_head + !avail) mod cap) <= older_than
    do
      incr avail
    done;
    let avail = !avail in
    if avail = 0 then 0
    else begin
      let want =
        if budget / block >= avail then avail else (budget + block - 1) / block
      in
      let k = if want < avail then want else avail in
      if
        k = avail
        || r.r_at.((r.r_head + k - 1) mod cap) < r.r_at.((r.r_head + k) mod cap)
      then begin
        (* the cut falls on a dirtied-at group boundary *)
        for i = 0 to k - 1 do
          Hashtbl.remove f.dirty r.r_blocks.((r.r_head + i) mod cap)
        done;
        r.r_head <- (r.r_head + k) mod cap;
        r.r_len <- r.r_len - k;
        k * block
      end
      else begin
        (* the budget splits a same-instant group: older groups drain
           wholesale, then the split group's members are taken in the
           table's fold order (what the stable sort preserved) *)
        let t_cut = r.r_at.((r.r_head + k - 1) mod cap) in
        let before = ref 0 in
        while r.r_at.((r.r_head + !before) mod cap) < t_cut do
          incr before
        done;
        let before = !before in
        for i = 0 to before - 1 do
          Hashtbl.remove f.dirty r.r_blocks.((r.r_head + i) mod cap)
        done;
        let group =
          Hashtbl.fold
            (fun b at acc -> if at = t_cut then b :: acc else acc)
            f.dirty []
        in
        let rest = ref (k - before) in
        List.iter
          (fun b ->
            if !rest > 0 then begin
              Hashtbl.remove f.dirty b;
              decr rest
            end)
          group;
        (* compact the ring down to the still-dirty blocks, in order *)
        let w = ref 0 in
        for i = 0 to r.r_len - 1 do
          let j = (r.r_head + i) mod cap in
          if Hashtbl.mem f.dirty r.r_blocks.(j) then begin
            let d = (r.r_head + !w) mod cap in
            r.r_blocks.(d) <- r.r_blocks.(j);
            r.r_at.(d) <- r.r_at.(j);
            incr w
          end
        done;
        r.r_len <- !w;
        k * block
      end
    end
  end

let take_dirty (_ : t) m ~older_than ~max_bytes =
  let budget = ref max_bytes in
  let out = ref [] in
  List.iter
    (fun f ->
      if !budget > 0 && Hashtbl.length f.dirty > 0 then begin
        let got = select_blocks f ~older_than ~budget:!budget in
        if got > 0 then begin
          budget := !budget - got;
          out := (f, got) :: !out
        end
      end)
    m.m_files;
  !out

let flush_file f =
  let got = select_blocks f ~older_than:infinity ~budget:max_int in
  if got > 0 then [ (f, got) ] else []

(* The page cache's conservation law: every byte that ever became dirty
   was either retired by writeback (or an explicit discard) or is still
   dirty right now.  Holds per mount at every quiescent point. *)
let conservation_ok m = m.m_dirtied_total = m.m_wb_total + m.m_dirty

let check_mount t m =
  let obs = Engine.obs t.engine in
  Invariant.require ~obs ~layer:"page_cache" ~what:"dirty_conservation"
    ~detail:(fun () ->
      Printf.sprintf "%s: dirtied %d <> wb %d + dirty %d" m.m_name
        m.m_dirtied_total m.m_wb_total m.m_dirty)
    (conservation_ok m);
  Invariant.require ~obs ~layer:"page_cache" ~what:"dirty_non_negative"
    ~detail:(fun () -> Printf.sprintf "%s: dirty %d" m.m_name m.m_dirty)
    (m.m_dirty >= 0);
  Invariant.require ~obs ~layer:"page_cache" ~what:"used_non_negative"
    ~detail:(fun () -> Printf.sprintf "%s: used %d" m.m_name m.m_used)
    (m.m_used >= 0);
  Invariant.require ~obs ~layer:"page_cache" ~what:"wb_within_dirtied"
    ~detail:(fun () ->
      Printf.sprintf "%s: wrote back %d of %d ever dirtied" m.m_name
        m.m_wb_total m.m_dirtied_total)
    (m.m_wb_total <= m.m_dirtied_total);
  (* ring/table synchronisation: the ordered ring and the membership
     table always describe the same dirty set, and the ring is sorted
     by dirtied-at (monotonic clock + no re-append on re-dirty) *)
  List.iter
    (fun f ->
      Invariant.require ~obs ~layer:"page_cache" ~what:"dirty_ring_sync"
        ~detail:(fun () ->
          Printf.sprintf "%s/%s: ring holds %d block(s), table %d" m.m_name
            f.key f.dring.r_len (Hashtbl.length f.dirty))
        (f.dring.r_len = Hashtbl.length f.dirty);
      Invariant.invariant ~obs ~layer:"page_cache" ~what:"dirty_ring_sorted"
        ~detail:(fun () -> Printf.sprintf "%s/%s: ring out of age order" m.m_name f.key)
        (fun () ->
          let r = f.dring in
          let cap = Array.length r.r_blocks in
          let ok = ref true in
          for i = 0 to r.r_len - 2 do
            if
              r.r_at.((r.r_head + i) mod cap)
              > r.r_at.((r.r_head + i + 1) mod cap)
            then ok := false
          done;
          !ok))
    m.m_files

let check_invariants t =
  List.iter (check_mount t) t.all_mounts;
  let obs = Engine.obs t.engine in
  Invariant.invariant ~obs ~layer:"page_cache" ~what:"occupancy_sum"
    ~detail:(fun () ->
      let sum = List.fold_left (fun a m -> a + m.m_used) 0 t.all_mounts in
      Printf.sprintf "mounts sum to %d, memory pool holds %d" sum
        (Memory.used t.mem))
    (fun () ->
      List.fold_left (fun a m -> a + m.m_used) 0 t.all_mounts
      = Memory.used t.mem);
  Invariant.invariant ~obs ~layer:"page_cache" ~what:"grand_dirty_sum"
    ~detail:(fun () ->
      let sum = List.fold_left (fun a m -> a + m.m_dirty) 0 t.all_mounts in
      Printf.sprintf "mounts sum to %d dirty, cache says %d" sum t.grand_dirty)
    (fun () ->
      List.fold_left (fun a m -> a + m.m_dirty) 0 t.all_mounts = t.grand_dirty)

let writeback_complete t m ~bytes =
  if bytes < 0 then
    Invariant.fail ~layer:"page_cache" ~what:"writeback_bytes"
      (Printf.sprintf "%s: %d bytes" m.m_name bytes);
  m.m_dirty <- m.m_dirty - bytes;
  m.m_wb_total <- m.m_wb_total + bytes;
  t.grand_dirty <- t.grand_dirty - bytes;
  if m.m_dirty < 0 || t.grand_dirty < 0 then
    Invariant.fail ~layer:"page_cache" ~what:"dirty_underflow"
      (Printf.sprintf "%s: dirty %d, grand %d after retiring %d" m.m_name
         m.m_dirty t.grand_dirty bytes);
  if Invariant.on () then
    Invariant.require ~obs:(Engine.obs t.engine) ~layer:"page_cache"
      ~what:"dirty_conservation"
      ~detail:(fun () ->
        Printf.sprintf "%s: dirtied %d <> wb %d + dirty %d" m.m_name
          m.m_dirtied_total m.m_wb_total m.m_dirty)
      (conservation_ok m);
  Obs.set m.dirty_g (float_of_int m.m_dirty);
  Obs.add m.wb_c (float_of_int bytes);
  wake_throttled m;
  evict_if_needed t

(* Throw away dirty data without writing it back (truncate/unlink). *)
let discard_dirty f =
  let got = select_blocks f ~older_than:infinity ~budget:max_int in
  writeback_complete f.cache f.mnt ~bytes:got

let mount_of f = f.mnt
let mount_used m = m.m_used
let dirtied_total m = m.m_dirtied_total
let wb_total m = m.m_wb_total
let run_flush f ~bytes = f.flush ~bytes
let dirty_bytes (_ : t) m = m.m_dirty
let total_dirty t = t.grand_dirty
let mounts t = t.all_mounts
let used_bytes t = Memory.used t.mem

let oldest_dirty (_ : t) m =
  (* the ring front is each file's oldest dirty block *)
  List.fold_left
    (fun acc f ->
      if f.dring.r_len = 0 then acc
      else
        let at = f.dring.r_at.(f.dring.r_head) in
        match acc with
        | None -> Some at
        | Some best -> if at < best then Some at else acc)
    None m.m_files
