open Danaus_sim
open Danaus_hw

type mount = {
  m_name : string;
  max_dirty : int;
  m_limit : int; (* cgroup memory limit covering this mount's cache *)
  mutable m_used : int;
  mutable m_dirty : int;
  (* Conservation accumulators, deliberately plain ints rather than Obs
     cells: [Obs.reset] between warm-up and measured phases clears the
     cells but must not break the law below. *)
  mutable m_dirtied_total : int; (* every byte that ever became dirty *)
  mutable m_wb_total : int; (* every byte retired by writeback/discard *)
  mutable throttled : (unit -> unit) list;
  mutable m_files : file list;
  dirty_g : Obs.gauge;
  dirty_peak_g : Obs.gauge;
  wb_c : Obs.counter;
}

and file = {
  key : string;
  mnt : mount;
  cache : t;
  present : (int, unit) Hashtbl.t;
  dirty : (int, float) Hashtbl.t; (* block -> dirtied-at *)
  mutable last_access : float;
  flush : bytes:int -> unit;
}

and t = {
  engine : Engine.t;
  mem : Memory.t;
  limit : int;
  block : int;
  mutable all_mounts : mount list;
  files_by_key : (string, file) Hashtbl.t;
  mutable grand_dirty : int;
}

let create engine ~mem ~limit ~block =
  Invariant.precondition ~layer:"page_cache" ~what:"create_args"
    ~detail:(fun () -> Printf.sprintf "limit %d, block %d" limit block)
    (limit > 0 && block > 0);
  {
    engine;
    mem;
    limit;
    block;
    all_mounts = [];
    files_by_key = Hashtbl.create 1024;
    grand_dirty = 0;
  }

let add_mount t ~name ~max_dirty ?mem_limit () =
  Invariant.precondition ~layer:"page_cache" ~what:"mount_max_dirty"
    ~detail:(fun () -> Printf.sprintf "%s: max_dirty %d" name max_dirty)
    (max_dirty > 0);
  let obs = Engine.obs t.engine in
  let m =
    {
      m_name = name;
      max_dirty;
      m_limit = Option.value ~default:max_int mem_limit;
      m_used = 0;
      m_dirty = 0;
      m_dirtied_total = 0;
      m_wb_total = 0;
      throttled = [];
      m_files = [];
      dirty_g = Obs.gauge obs ~layer:"kernel" ~name:"dirty_bytes" ~key:name;
      dirty_peak_g =
        Obs.gauge obs ~layer:"kernel" ~name:"dirty_bytes_peak" ~key:name;
      wb_c = Obs.counter obs ~layer:"kernel" ~name:"wb_bytes" ~key:name;
    }
  in
  t.all_mounts <- m :: t.all_mounts;
  m

let note_dirty m =
  let d = float_of_int m.m_dirty in
  Obs.set m.dirty_g d;
  Obs.set_max m.dirty_peak_g d

let mount_name m = m.m_name
let background_threshold m = m.max_dirty / 2

let blocks_of t ~off ~len =
  if len <= 0 then []
  else begin
    let first = off / t.block and last = (off + len - 1) / t.block in
    List.init (last - first + 1) (fun i -> first + i)
  end

(* Evict clean blocks, least-recently-accessed files first, once the
   cache exceeds its limit.  Eviction proceeds down to 90% of the limit
   (hysteresis) so that the scan is amortised over many inserts.  Dirty
   blocks are never dropped. *)
let evict_if_needed t =
  if Memory.used t.mem > t.limit then begin
    let files =
      Hashtbl.fold (fun _ f acc -> f :: acc) t.files_by_key []
      |> List.sort (fun a b -> Float.compare a.last_access b.last_access)
    in
    let target = t.limit / 10 * 9 in
    let excess = ref (Memory.used t.mem - target) in
    List.iter
      (fun f ->
        if !excess > 0 then begin
          let victims =
            Hashtbl.fold
              (fun b () acc -> if Hashtbl.mem f.dirty b then acc else b :: acc)
              f.present []
          in
          List.iter
            (fun b ->
              if !excess > 0 then begin
                Hashtbl.remove f.present b;
                f.mnt.m_used <- f.mnt.m_used - t.block;
                Memory.free t.mem t.block;
                excess := !excess - t.block
              end)
            victims
        end)
      files
  end

let file t mnt ~key ~flush =
  match Hashtbl.find_opt t.files_by_key key with
  | Some f -> f
  | None ->
      let f =
        {
          key;
          mnt;
          cache = t;
          present = Hashtbl.create 16;
          dirty = Hashtbl.create 16;
          last_access = Engine.now t.engine;
          flush;
        }
      in
      Hashtbl.add t.files_by_key key f;
      mnt.m_files <- f :: mnt.m_files;
      f

let missing f ~off ~len =
  f.last_access <- Engine.now f.cache.engine;
  let t = f.cache in
  List.fold_left
    (fun acc b -> if Hashtbl.mem f.present b then acc else acc + t.block)
    0
    (blocks_of t ~off ~len)

(* Per-mount (cgroup v2 memory) eviction: drop clean LRU blocks of the
   mount once its cached bytes exceed the pool's memory limit. *)
let evict_mount_if_needed m =
  if m.m_used > m.m_limit then begin
    let files =
      List.sort (fun a b -> Float.compare a.last_access b.last_access) m.m_files
    in
    let target = m.m_limit / 10 * 9 in
    let excess = ref (m.m_used - target) in
    List.iter
      (fun f ->
        if !excess > 0 then begin
          let t = f.cache in
          let victims =
            Hashtbl.fold
              (fun b () acc -> if Hashtbl.mem f.dirty b then acc else b :: acc)
              f.present []
          in
          List.iter
            (fun b ->
              if !excess > 0 then begin
                Hashtbl.remove f.present b;
                Memory.free t.mem t.block;
                m.m_used <- m.m_used - t.block;
                excess := !excess - t.block
              end)
            victims
        end)
      files
  end

let insert_clean f ~off ~len =
  let t = f.cache in
  f.last_access <- Engine.now t.engine;
  List.iter
    (fun b ->
      if not (Hashtbl.mem f.present b) then begin
        Hashtbl.add f.present b ();
        f.mnt.m_used <- f.mnt.m_used + t.block;
        Memory.alloc t.mem t.block
      end)
    (blocks_of t ~off ~len);
  evict_mount_if_needed f.mnt;
  evict_if_needed t

let write f ~off ~len =
  let t = f.cache in
  let now = Engine.now t.engine in
  f.last_access <- now;
  List.iter
    (fun b ->
      if not (Hashtbl.mem f.present b) then begin
        Hashtbl.add f.present b ();
        f.mnt.m_used <- f.mnt.m_used + t.block;
        Memory.alloc t.mem t.block
      end;
      if not (Hashtbl.mem f.dirty b) then begin
        Hashtbl.add f.dirty b now;
        f.mnt.m_dirty <- f.mnt.m_dirty + t.block;
        f.mnt.m_dirtied_total <- f.mnt.m_dirtied_total + t.block;
        t.grand_dirty <- t.grand_dirty + t.block
      end)
    (blocks_of t ~off ~len);
  note_dirty f.mnt;
  evict_mount_if_needed f.mnt;
  evict_if_needed t

let dirty_bytes_of f = Hashtbl.length f.dirty * f.cache.block

let invalidate f =
  let t = f.cache in
  if Hashtbl.length f.dirty > 0 then
    invalid_arg ("Page_cache.invalidate: dirty file " ^ f.key);
  let bytes = Hashtbl.length f.present * t.block in
  Memory.free t.mem bytes;
  f.mnt.m_used <- f.mnt.m_used - bytes;
  Hashtbl.reset f.present

(* Writers over the dirty limit sleep and are released one at a time:
   each writeback completion wakes one, and a writer that gets through
   pulls the next along (chained wakeup).  Batch wakeups would create
   synchronized dirty/sleep cycles with long idle windows — Linux paces
   each dirtier individually. *)
let wake_one m =
  match m.throttled with
  | [] -> ()
  | w :: rest ->
      m.throttled <- rest;
      w ()

let throttle_mount (_ : t) m =
  while m.m_dirty > m.max_dirty do
    Engine.suspend (fun wake -> m.throttled <- m.throttled @ [ wake ])
  done;
  if m.m_dirty <= m.max_dirty then wake_one m

let throttle f = throttle_mount f.cache f.mnt

let wake_throttled m = if m.m_dirty <= m.max_dirty then wake_one m

(* Move dirty blocks of [f] into the under-writeback state, oldest
   first: they leave the file's dirty table (so they are not selected
   twice) but keep counting against the mount's dirty total until
   {!writeback_complete} — Linux's balance_dirty_pages throttles on
   dirty + writeback together, which is what closes the feedback loop
   between writers and the (possibly starved) flusher threads. *)
let select_blocks f ~older_than ~budget =
  let candidates =
    Hashtbl.fold
      (fun b at acc -> if at <= older_than then (b, at) :: acc else acc)
      f.dirty []
    |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
  in
  let taken = ref 0 in
  List.iter
    (fun (b, _) ->
      if !taken < budget then begin
        Hashtbl.remove f.dirty b;
        taken := !taken + f.cache.block
      end)
    candidates;
  !taken

let take_dirty (_ : t) m ~older_than ~max_bytes =
  let budget = ref max_bytes in
  let out = ref [] in
  List.iter
    (fun f ->
      if !budget > 0 && Hashtbl.length f.dirty > 0 then begin
        let got = select_blocks f ~older_than ~budget:!budget in
        if got > 0 then begin
          budget := !budget - got;
          out := (f, got) :: !out
        end
      end)
    m.m_files;
  !out

let flush_file f =
  let got = select_blocks f ~older_than:infinity ~budget:max_int in
  if got > 0 then [ (f, got) ] else []

(* The page cache's conservation law: every byte that ever became dirty
   was either retired by writeback (or an explicit discard) or is still
   dirty right now.  Holds per mount at every quiescent point. *)
let conservation_ok m = m.m_dirtied_total = m.m_wb_total + m.m_dirty

let check_mount t m =
  let obs = Engine.obs t.engine in
  Invariant.require ~obs ~layer:"page_cache" ~what:"dirty_conservation"
    ~detail:(fun () ->
      Printf.sprintf "%s: dirtied %d <> wb %d + dirty %d" m.m_name
        m.m_dirtied_total m.m_wb_total m.m_dirty)
    (conservation_ok m);
  Invariant.require ~obs ~layer:"page_cache" ~what:"dirty_non_negative"
    ~detail:(fun () -> Printf.sprintf "%s: dirty %d" m.m_name m.m_dirty)
    (m.m_dirty >= 0);
  Invariant.require ~obs ~layer:"page_cache" ~what:"used_non_negative"
    ~detail:(fun () -> Printf.sprintf "%s: used %d" m.m_name m.m_used)
    (m.m_used >= 0);
  Invariant.require ~obs ~layer:"page_cache" ~what:"wb_within_dirtied"
    ~detail:(fun () ->
      Printf.sprintf "%s: wrote back %d of %d ever dirtied" m.m_name
        m.m_wb_total m.m_dirtied_total)
    (m.m_wb_total <= m.m_dirtied_total)

let check_invariants t =
  List.iter (check_mount t) t.all_mounts;
  let obs = Engine.obs t.engine in
  Invariant.invariant ~obs ~layer:"page_cache" ~what:"occupancy_sum"
    ~detail:(fun () ->
      let sum = List.fold_left (fun a m -> a + m.m_used) 0 t.all_mounts in
      Printf.sprintf "mounts sum to %d, memory pool holds %d" sum
        (Memory.used t.mem))
    (fun () ->
      List.fold_left (fun a m -> a + m.m_used) 0 t.all_mounts
      = Memory.used t.mem);
  Invariant.invariant ~obs ~layer:"page_cache" ~what:"grand_dirty_sum"
    ~detail:(fun () ->
      let sum = List.fold_left (fun a m -> a + m.m_dirty) 0 t.all_mounts in
      Printf.sprintf "mounts sum to %d dirty, cache says %d" sum t.grand_dirty)
    (fun () ->
      List.fold_left (fun a m -> a + m.m_dirty) 0 t.all_mounts = t.grand_dirty)

let writeback_complete t m ~bytes =
  Invariant.precondition ~layer:"page_cache" ~what:"writeback_bytes"
    ~detail:(fun () -> Printf.sprintf "%s: %d bytes" m.m_name bytes)
    (bytes >= 0);
  m.m_dirty <- m.m_dirty - bytes;
  m.m_wb_total <- m.m_wb_total + bytes;
  t.grand_dirty <- t.grand_dirty - bytes;
  Invariant.precondition ~layer:"page_cache" ~what:"dirty_underflow"
    ~detail:(fun () ->
      Printf.sprintf "%s: dirty %d, grand %d after retiring %d" m.m_name
        m.m_dirty t.grand_dirty bytes)
    (m.m_dirty >= 0 && t.grand_dirty >= 0);
  Invariant.require ~obs:(Engine.obs t.engine) ~layer:"page_cache"
    ~what:"dirty_conservation"
    ~detail:(fun () ->
      Printf.sprintf "%s: dirtied %d <> wb %d + dirty %d" m.m_name
        m.m_dirtied_total m.m_wb_total m.m_dirty)
    (conservation_ok m);
  Obs.set m.dirty_g (float_of_int m.m_dirty);
  Obs.add m.wb_c (float_of_int bytes);
  wake_throttled m;
  evict_if_needed t

(* Throw away dirty data without writing it back (truncate/unlink). *)
let discard_dirty f =
  let got = select_blocks f ~older_than:infinity ~budget:max_int in
  writeback_complete f.cache f.mnt ~bytes:got

let mount_of f = f.mnt
let mount_used m = m.m_used
let dirtied_total m = m.m_dirtied_total
let wb_total m = m.m_wb_total
let run_flush f ~bytes = f.flush ~bytes
let dirty_bytes (_ : t) m = m.m_dirty
let total_dirty t = t.grand_dirty
let mounts t = t.all_mounts
let used_bytes t = Memory.used t.mem

let oldest_dirty (_ : t) m =
  List.fold_left
    (fun acc f ->
      Hashtbl.fold
        (fun _ at acc ->
          match acc with
          | None -> Some at
          | Some best -> if at < best then Some at else acc)
        f.dirty acc)
    None m.m_files
