open Danaus_sim

type t = {
  kernel : Kernel.t;
  name : string;
  pool : Cgroup.t;
  queue : (unit -> unit) Channel.t;
  mutable served : int;
  queue_g : Obs.gauge;
  queue_peak_g : Obs.gauge;
}

let create kernel ~name ~pool =
  let obs = Kernel.obs kernel in
  {
    kernel;
    name;
    pool;
    queue = Channel.create (Kernel.engine kernel) ~capacity:1024;
    served = 0;
    queue_g = Obs.gauge obs ~layer:"kernel" ~name:"fuse_queue" ~key:name;
    queue_peak_g =
      Obs.gauge obs ~layer:"kernel" ~name:"fuse_queue_peak" ~key:name;
  }

let start t ~threads =
  Danaus_check.Check.precondition ~layer:"fuse" ~what:"start_threads"
    ~detail:(fun () -> Printf.sprintf "%s: threads %d" t.name threads)
    (threads >= 1);
  for i = 1 to threads do
    Engine.spawn (Kernel.engine t.kernel)
      ~name:(Printf.sprintf "%s/fuse-%d" t.name i)
      (fun () ->
        while true do
          let job = Channel.get t.queue in
          Obs.set t.queue_g (float_of_int (Channel.length t.queue));
          job ()
        done)
  done

let call t ~caller ~bytes f =
  let k = t.kernel in
  let engine = Kernel.engine k in
  let costs = Kernel.costs k in
  Kernel.syscall k ~pool:caller (fun () ->
      Obs.incr
        (Obs.counter (Kernel.obs k) ~layer:"kernel" ~name:"fuse_requests"
           ~key:(Cgroup.name caller));
      Kernel.copy k ~pool:caller ~bytes;
      Kernel.context_switches k ~pool:caller 2;
      (* The span opens in the caller; the daemon-side work runs in a fuse
         thread, so the parent id crosses the request queue by value and is
         restored around the job body. *)
      let span =
        Trace.enter engine ~layer:"kernel" ~name:"fuse_call" ~key:t.name
          ~phase:Service
      in
      let queued_at = Engine.now engine in
      let cell = ref None in
      let waiter = ref None in
      let job () =
        let picked_up = Engine.now engine in
        Trace.with_parent span (fun () ->
            if picked_up > queued_at then
              Trace.emit engine ~layer:"kernel" ~name:"fuse_wait" ~key:t.name
                ~phase:Queue_wait ~start:queued_at ~dur:(picked_up -. queued_at);
            Kernel.context_switches k ~pool:t.pool 2;
            Kernel.pool_cpu k ~pool:t.pool costs.fuse_dispatch;
            Kernel.copy k ~pool:t.pool ~bytes;
            cell := Some (f ()));
        t.served <- t.served + 1;
        match !waiter with Some wake -> wake () | None -> ()
      in
      Channel.put t.queue job;
      let depth = float_of_int (Channel.length t.queue) in
      Obs.set t.queue_g depth;
      Obs.set_max t.queue_peak_g depth;
      let finish v =
        Trace.exit engine span;
        v
      in
      match !cell with
      | Some v -> finish v
      | None ->
          Engine.suspend (fun wake -> waiter := Some wake);
          (match !cell with
          | Some v -> finish v
          | None -> failwith "Fuse.call: woken without a result"))

let requests t = t.served
let queue_depth t = Channel.length t.queue
