open Danaus_hw

type t = {
  name : string;
  mutable cores : int array;
  mem : Memory.t;
  mem_limit : int;
}

let create ~name ~cores ~mem_limit =
  Danaus_check.Check.precondition ~layer:"cgroup" ~what:"create_args"
    ~detail:(fun () ->
      Printf.sprintf "%s: %d cores, mem_limit %d" name (Array.length cores)
        mem_limit)
    (Array.length cores > 0 && mem_limit > 0);
  {
    name;
    cores;
    mem = Memory.create ~name:(name ^ ".mem") ~limit:mem_limit ();
    mem_limit;
  }

let name t = t.name
let cores t = t.cores

let set_cores t cores =
  Danaus_check.Check.precondition ~layer:"cgroup" ~what:"set_cores"
    ~detail:(fun () -> t.name ^ ": empty core set")
    (Array.length cores > 0);
  t.cores <- cores
let memory t = t.mem
let mem_limit t = t.mem_limit
