(* Central administration through the backend (§5 Flexibility): a
   malware-scanner/updater walks every container's root filesystem from
   an admin client over the shared storage — without entering (or even
   pausing) the containers themselves.

     dune exec examples/central_admin.exe *)

open Danaus_sim
open Danaus_kernel
open Danaus_ceph
open Danaus_client
open Danaus
open Danaus_experiments

let kib n = n * 1024

let () =
  let tb = Testbed.create ~activated:8 () in
  (* three tenants, each with a container that wrote some private state *)
  let pools = List.init 3 (fun i -> Testbed.pool tb i) in
  Container_engine.install_image tb.Testbed.containers ~name:"base"
    ~files:[ ("/bin/sh", kib 64); ("/etc/passwd", kib 4) ];
  let containers =
    List.mapi
      (fun i pool ->
        ( pool,
          Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool
            ~id:(Printf.sprintf "tenant%d" i) ~image:"base" () ))
      pools
  in
  let ready = ref 0 in
  List.iteri
    (fun i (pool, ct) ->
      Engine.spawn tb.Testbed.engine (fun () ->
          let v = ct.Container_engine.view ~thread:1 in
          let fd =
            Result.get_ok (v.Client_intf.open_file ~pool
              (Printf.sprintf "/var/secret-%d" i) Client_intf.flags_wo)
          in
          ignore (v.Client_intf.write ~pool fd ~off:0 ~len:(kib 16));
          ignore (v.Client_intf.fsync ~pool fd);
          v.Client_intf.close ~pool fd;
          incr ready))
    containers;
  Testbed.drive tb ~stop:(fun () -> !ready = List.length containers);

  (* the admin pool mounts the whole backend namespace with its own
     client: container roots appear under /pools/<pool>/<id> *)
  let admin_pool = Testbed.custom_pool tb ~name:"admin" ~cores:[| 6; 7 |]
      ~mem:(1 lsl 30) in
  let admin =
    Lib_client.create tb.Testbed.engine ~cpu:tb.Testbed.cpu
      ~costs:(Kernel.costs tb.Testbed.kernel) ~cluster:tb.Testbed.cluster
      ~pool:admin_pool
      ~config:(Lib_client.default_config ~cache_bytes:(1 lsl 28))
      ~name:"admin"
  in
  Lib_client.start admin;
  let scan = Lib_client.iface admin in
  let scanned = ref 0 and bytes = ref 0 in
  let finished = ref false in
  Engine.spawn tb.Testbed.engine (fun () ->
      let rec walk path =
        match scan.Client_intf.readdir ~pool:admin_pool path with
        | Error _ -> begin
            (* a file: "scan" it by reading it fully *)
            match scan.Client_intf.open_file ~pool:admin_pool path Client_intf.flags_ro with
            | Error _ -> ()
            | Ok fd ->
                let size =
                  match scan.Client_intf.fd_size fd with Ok s -> s | Error _ -> 0
                in
                (match Client_intf.read_exact scan ~pool:admin_pool fd ~off:0 ~len:size with
                | Ok n ->
                    incr scanned;
                    bytes := !bytes + n
                | Error _ -> ());
                scan.Client_intf.close ~pool:admin_pool fd
          end
        | Ok names -> List.iter (fun n -> walk (Fspath.join path n)) names
      in
      walk "/pools";
      finished := true);
  Testbed.drive tb ~stop:(fun () -> !finished);
  Printf.printf
    "admin scanned %d files (%d KiB) across %d tenants' writable branches\n"
    !scanned (!bytes / 1024) (List.length containers);
  Printf.printf "(containers kept their reserved cores: admin used its own pool)\n";
  print_endline "central_admin: done"
