(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation by
   running the corresponding simulation experiments (quick mode: reduced
   durations/volumes, same mechanisms and shapes; see EXPERIMENTS.md for
   the paper-vs-measured comparison).

   Part 2 runs Bechamel microbenchmarks — one Test.make per hot data
   structure of the simulator substrate — so that regressions in the
   engine itself are visible independently of the modelled systems. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 1: paper tables and figures *)

(* Experiments run through the registry's domain pool (DANAUS_BENCH_JOBS
   overrides the worker count).  Results are collected first and printed
   in registry order, so the output does not depend on [jobs]; the
   per-experiment wall times of the old sequential loop are replaced by
   one overall elapsed line for the same reason. *)
let run_experiments () =
  print_endline "==============================================================";
  print_endline " Danaus reproduction: paper tables and figures (quick mode)";
  print_endline "==============================================================";
  let jobs =
    match Sys.getenv_opt "DANAUS_BENCH_JOBS" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1)
    | None -> Stdlib.max 1 (Stdlib.min 4 (Domain.recommended_domain_count () - 1))
  in
  let seed =
    match Sys.getenv_opt "DANAUS_BENCH_SEED" with
    | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 1)
    | None -> 1
  in
  let t0 = Unix.gettimeofday () in
  let results =
    Danaus_experiments.Registry.run_exps ~jobs ~seed ~quick:true
      Danaus_experiments.Registry.all
  in
  List.iter
    (fun (e, reports) ->
      Printf.printf "\n# %s\n%!" e.Danaus_experiments.Registry.title;
      List.iter
        (fun r -> print_string (Danaus_experiments.Report.render r))
        reports)
    results;
  Printf.printf "\n(all experiments completed in %.1fs wall time, %d jobs)\n%!"
    (Unix.gettimeofday () -. t0)
    jobs

(* ------------------------------------------------------------------ *)
(* Part 1b: causal-tracing checks.

   First the zero-cost claim: with tracing off (the default), running
   seqio must produce the same rendered tables as a traced run — span
   emission must never perturb simulated time — and its wall time is
   printed next to the traced run's so overhead regressions are visible.
   Then the attribution tables themselves (the `danaus-cli explain`
   view) for seqio and overload. *)
let tracing_checks () =
  print_endline "";
  print_endline "==============================================================";
  print_endline " Causal tracing: overhead check and latency attribution";
  print_endline "==============================================================";
  let seed = 1 in
  let render_all reports =
    String.concat ""
      (List.map (fun r -> Danaus_experiments.Report.render r) reports)
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  assert (not !Danaus_sim.Obs.default_tracing);
  let plain, plain_t =
    timed (fun () -> Danaus_experiments.Exp_seqio.fig9 ~seed ~quick:true)
  in
  Danaus_sim.Obs.default_tracing := true;
  Danaus_sim.Obs.default_trace_capacity := 1 lsl 20;
  let traced, traced_t =
    timed (fun () -> Danaus_experiments.Exp_seqio.fig9 ~seed ~quick:true)
  in
  let overload, _ =
    timed (fun () -> Danaus_experiments.Exp_overload.overload ~seed ~quick:true)
  in
  Danaus_sim.Obs.default_tracing := false;
  if render_all plain <> render_all traced then begin
    print_endline "FAIL: tracing changed the rendered seqio tables";
    exit 1
  end;
  Printf.printf
    "seqio tables byte-identical with tracing on/off; wall time %.2fs off, \
     %.2fs on (%.0f%% overhead)\n%!"
    plain_t traced_t
    (if plain_t > 0.0 then 100.0 *. (traced_t -. plain_t) /. plain_t else 0.0);
  List.iter
    (fun r -> print_string (Danaus_experiments.Trace_export.render_attribution r))
    (traced @ overload)

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel microbenchmarks of the simulator substrate *)

open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_ceph

let bench_engine_events =
  Test.make ~name:"sim.engine: 1k sleep events"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         Engine.spawn e (fun () ->
             for _ = 1 to 1000 do
               Engine.sleep 0.001
             done);
         Engine.run e))

let bench_mutex_handoff =
  Test.make ~name:"sim.mutex: 100 contended handoffs"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         let m = Mutex_sim.create e ~name:"bench" in
         for _ = 1 to 10 do
           Engine.spawn e (fun () ->
               for _ = 1 to 10 do
                 Mutex_sim.with_lock m (fun () -> Engine.sleep 1e-6)
               done)
         done;
         Engine.run e))

let bench_ring =
  Test.make ~name:"ipc.ring: 1k enqueue/dequeue"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         let r = Danaus_ipc.Ring.create e ~slots:64 in
         Engine.spawn e (fun () ->
             for i = 1 to 1000 do
               Danaus_ipc.Ring.enqueue r i
             done);
         Engine.spawn e (fun () ->
             for _ = 1 to 1000 do
               ignore (Danaus_ipc.Ring.dequeue r)
             done);
         Engine.run e))

let bench_page_cache =
  Test.make ~name:"kernel.page_cache: write+read 64MB"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         let mem = Memory.create ~name:"bench" () in
         let pc = Page_cache.create e ~mem ~limit:(1 lsl 30) ~block:65536 in
         let m = Page_cache.add_mount pc ~name:"bench" ~max_dirty:(1 lsl 29) () in
         let f = Page_cache.file pc m ~key:"f" ~flush:(fun ~bytes:_ -> ()) in
         Engine.spawn e (fun () ->
             Page_cache.write f ~off:0 ~len:(64 * 1024 * 1024);
             ignore (Page_cache.missing f ~off:0 ~len:(64 * 1024 * 1024));
             Page_cache.discard_dirty f;
             Page_cache.invalidate f);
         Engine.run e))

let bench_crush =
  Test.make ~name:"ceph.crush: 1k placements"
    (Staged.stage (fun () ->
         for i = 0 to 999 do
           ignore (Crush.place ~osds:6 ~replicas:3 (string_of_int i))
         done))

let bench_striper =
  Test.make ~name:"ceph.striper: 1k range splits"
    (Staged.stage (fun () ->
         for i = 0 to 999 do
           ignore
             (Striper.objects ~object_size:(4 * 1024 * 1024) ~ino:i
                ~off:(i * 4096) ~len:(10 * 1024 * 1024))
         done))

let bench_namespace =
  Test.make ~name:"ceph.namespace: create+lookup 1k files"
    (Staged.stage (fun () ->
         let ns = Namespace.create () in
         for i = 0 to 999 do
           ignore (Namespace.create_file ns (Printf.sprintf "/f%d" i))
         done;
         for i = 0 to 999 do
           ignore (Namespace.lookup ns (Printf.sprintf "/f%d" i))
         done))

let bench_stats =
  Test.make ~name:"sim.stats: 10k add + percentiles"
    (Staged.stage (fun () ->
         let s = Stats.create () in
         for i = 1 to 10_000 do
           Stats.add s (float_of_int (i * 7919 mod 1000))
         done;
         ignore (Stats.percentile s 50.0);
         ignore (Stats.percentile s 99.0)))

let microbenchmarks () =
  print_endline "";
  print_endline "==============================================================";
  print_endline " Bechamel microbenchmarks: simulator substrate";
  print_endline "==============================================================";
  let tests =
    [
      bench_engine_events;
      bench_mutex_handoff;
      bench_ring;
      bench_page_cache;
      bench_crush;
      bench_striper;
      bench_namespace;
      bench_stats;
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (t :: _) ->
              Printf.printf "%-48s %12.1f ns/run\n%!" name t
          | Some [] | None -> Printf.printf "%-48s (no estimate)\n%!" name)
        ols)
    tests

let () =
  run_experiments ();
  tracing_checks ();
  microbenchmarks ()
