(* Tests for the three backend clients: library (libcephfs-style),
   kernel (CephFS-style) and FUSE (ceph-fuse-style). *)

open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_ceph
open Danaus_client

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

open Testbed


(* ------------------------------------------------------------------ *)
(* Lib_client *)

let test_lib_write_read_roundtrip () =
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client w pool "lib0" in
  let i = Lib_client.iface c in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (i.open_file ~pool "/f" Client_intf.flags_wo) in
      ok_or_fail "write" (i.write ~pool fd ~off:0 ~len:(mib 1));
      check_int "size tracked" (mib 1) (ok_or_fail "size" (i.fd_size fd));
      let n = ok_or_fail "read" (i.read ~pool fd ~off:0 ~len:(mib 1)) in
      check_int "full read" (mib 1) n;
      let n = ok_or_fail "read eof" (i.read ~pool fd ~off:(mib 1) ~len:4096) in
      check_int "eof short read" 0 n;
      i.close ~pool fd);
  Engine.run_until w.engine 30.0;
  check_bool "no deadlock" true (Engine.live_processes w.engine <= 1)

let test_lib_background_flush_reaches_osds () =
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client w pool "lib0" in
  let i = Lib_client.iface c in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (i.open_file ~pool "/f" Client_intf.flags_wo) in
      ok_or_fail "write" (i.write ~pool fd ~off:0 ~len:(mib 2));
      i.close ~pool fd);
  Engine.run_until w.engine 30.0;
  check_bool "dirty data flushed over network" true
    (total_osd_written w.cluster >= float_of_int (mib 2));
  check_int "nothing left dirty" 0 (Lib_client.dirty_bytes c)

let test_lib_dirty_throttling () =
  let w = make_world () in
  let pool = pool_of () in
  (* tiny cache: 8 MiB, so max dirty is 4 MiB *)
  let c = make_lib_client ~cache:(mib 8) w pool "lib0" in
  let i = Lib_client.iface c in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (i.open_file ~pool "/f" Client_intf.flags_wo) in
      for blk = 0 to 15 do
        ok_or_fail "write" (i.write ~pool fd ~off:(blk * mib 1) ~len:(mib 1))
      done;
      check_bool "writer forced writeback under the limit" true
        (Lib_client.dirty_bytes c <= mib 4));
  Engine.run_until w.engine 30.0;
  check_bool "data went to the OSDs" true (total_osd_written w.cluster > 0.0)

let test_lib_cached_read_fast () =
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client w pool "lib0" in
  let i = Lib_client.iface c in
  let cold = ref 0.0 and warm = ref 0.0 in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (i.open_file ~pool "/f" Client_intf.flags_wo) in
      ok_or_fail "write" (i.write ~pool fd ~off:0 ~len:(mib 8));
      ok_or_fail "fsync" (i.fsync ~pool fd);
      i.close ~pool fd;
      (* new client with a cold cache *)
      let c2 = make_lib_client w pool "lib1" in
      let i2 = Lib_client.iface c2 in
      let fd = ok_or_fail "open2" (i2.open_file ~pool "/f" Client_intf.flags_ro) in
      let t0 = Engine.time () in
      ignore (ok_or_fail "cold" (i2.read ~pool fd ~off:0 ~len:(mib 4)));
      let t1 = Engine.time () in
      ignore (ok_or_fail "warm" (i2.read ~pool fd ~off:0 ~len:(mib 4)));
      let t2 = Engine.time () in
      cold := t1 -. t0;
      warm := t2 -. t1);
  Engine.run_until w.engine 60.0;
  check_bool "warm read at least 5x faster" true (!warm *. 5.0 < !cold)

let test_lib_client_lock_serialises_cached_reads () =
  (* Two threads on 2 cores reading fully cached data: the global
     client_lock forces them to copy one at a time (paper §6.3.2). *)
  let w = make_world () in
  let pool = pool_of ~cores:[| 0; 1 |] () in
  let c = make_lib_client w pool "lib0" in
  let i = Lib_client.iface c in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (i.open_file ~pool "/f" Client_intf.flags_wo) in
      ok_or_fail "write" (i.write ~pool fd ~off:0 ~len:(mib 16));
      (* warm the cache *)
      ignore (ok_or_fail "warm" (i.read ~pool fd ~off:0 ~len:(mib 16)));
      let wg = Waitgroup.create w.engine in
      for _ = 1 to 2 do
        Waitgroup.add wg;
        Engine.fork (fun () ->
            for _ = 1 to 50 do
              ignore (ok_or_fail "read" (i.read ~pool fd ~off:0 ~len:(mib 1)))
            done;
            Waitgroup.finish wg)
      done;
      Waitgroup.wait wg);
  Engine.run_until w.engine 120.0;
  let lock = Lib_client.client_lock c in
  check_bool "client_lock was contended" true (Mutex_sim.contended lock > 0)

let test_lib_negative_lookup_cached () =
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client w pool "lib0" in
  let i = Lib_client.iface c in
  Engine.spawn w.engine (fun () ->
      (match i.stat ~pool "/missing" with
      | Error (Client_intf.Fs Namespace.No_entry) -> ()
      | _ -> Alcotest.fail "expected ENOENT");
      let mds_ops_after_first = Mds.ops (Cluster.mds w.cluster) in
      (match i.stat ~pool "/missing" with
      | Error (Client_intf.Fs Namespace.No_entry) -> ()
      | _ -> Alcotest.fail "expected ENOENT");
      check_int "second miss served from negative cache" mds_ops_after_first
        (Mds.ops (Cluster.mds w.cluster)));
  Engine.run_until w.engine 10.0

let test_lib_unlink_removes_objects () =
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client w pool "lib0" in
  let i = Lib_client.iface c in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (i.open_file ~pool "/f" Client_intf.flags_wo) in
      ok_or_fail "write" (i.write ~pool fd ~off:0 ~len:(mib 8));
      ok_or_fail "fsync" (i.fsync ~pool fd);
      i.close ~pool fd;
      ok_or_fail "unlink" (i.unlink ~pool "/f");
      let stored =
        Array.fold_left (fun acc o -> acc + Osd.objects_stored o) 0
          (Cluster.osds w.cluster)
      in
      check_int "objects deleted" 0 stored;
      match i.stat ~pool "/f" with
      | Error (Client_intf.Fs Namespace.No_entry) -> ()
      | _ -> Alcotest.fail "file should be gone");
  Engine.run_until w.engine 60.0

let test_lib_memory_accounting () =
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client ~cache:(mib 16) w pool "lib0" in
  let i = Lib_client.iface c in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (i.open_file ~pool "/f" Client_intf.flags_wo) in
      ok_or_fail "write" (i.write ~pool fd ~off:0 ~len:(mib 32));
      check_bool "cache below its capacity" true (Lib_client.cache_used c <= mib 17);
      check_bool "cache is in use" true (Lib_client.cache_used c > 0));
  Engine.run_until w.engine 60.0

(* ------------------------------------------------------------------ *)
(* Kernel_client *)

let make_kernel_client w name =
  Kernel_client.create w.kernel ~cluster:w.cluster ~name ~max_dirty:(gib 4) ()

let test_kernel_roundtrip () =
  let w = make_world () in
  Kernel.start_flushers w.kernel;
  let pool = pool_of () in
  let kc = make_kernel_client w "cephfs0" in
  let i = Kernel_client.iface kc in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (i.open_file ~pool "/k" Client_intf.flags_wo) in
      ok_or_fail "write" (i.write ~pool fd ~off:0 ~len:(mib 2));
      let n = ok_or_fail "read" (i.read ~pool fd ~off:0 ~len:(mib 2)) in
      check_int "read back" (mib 2) n;
      i.close ~pool fd);
  Engine.run_until w.engine 60.0;
  check_bool "page cache used (host memory)" true
    (Page_cache.used_bytes (Kernel.page_cache w.kernel) > 0)

let test_kernel_writeback_by_flusher () =
  let w = make_world () in
  Kernel.start_flushers w.kernel;
  let pool = pool_of () in
  let kc = make_kernel_client w "cephfs0" in
  let i = Kernel_client.iface kc in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (i.open_file ~pool "/k" Client_intf.flags_wo) in
      ok_or_fail "write" (i.write ~pool fd ~off:0 ~len:(mib 4));
      i.close ~pool fd);
  Engine.run_until w.engine 30.0;
  check_bool "flusher pushed data to OSDs" true
    (total_osd_written w.cluster >= float_of_int (mib 4));
  (* flusher CPU is attributed to the kernel, not the pool *)
  let kernel_cpu =
    Cpu.busy_seconds_by w.cpu ~cores:(Kernel.activated w.kernel) ~tenant:"kernel"
  in
  check_bool "writeback CPU on kernel threads" true (kernel_cpu > 0.0)

let test_kernel_shared_lock_cross_pool () =
  (* two pools, each with its own kernel client (scaleout): the
     superblock-class lock is still shared host-wide *)
  let w = make_world () in
  Kernel.start_flushers w.kernel;
  let pool0 = pool_of ~name:"pool0" ~cores:[| 0; 1 |] () in
  let pool1 = pool_of ~name:"pool1" ~cores:[| 2; 3 |] () in
  let k0 = make_kernel_client w "cephfs0" in
  let k1 = make_kernel_client w "cephfs1" in
  let i0 = Kernel_client.iface k0 and i1 = Kernel_client.iface k1 in
  let run iface pool path =
    let fd = ok_or_fail "open" (iface.Client_intf.open_file ~pool path Client_intf.flags_wo) in
    for b = 0 to 31 do
      ok_or_fail "write" (iface.Client_intf.write ~pool fd ~off:(b * 65536) ~len:65536)
    done
  in
  Engine.spawn w.engine (fun () -> run i0 pool0 "/a");
  Engine.spawn w.engine (fun () -> run i1 pool1 "/b");
  Engine.run_until w.engine 60.0;
  let sb = Kernel.lock w.kernel "cephfs:i_mutex_key" in
  check_bool "superblock lock shared across pools" true
    (Mutex_sim.acquisitions sb > 60)

(* ------------------------------------------------------------------ *)
(* Fuse_client *)

let make_fuse_client w pool name ~page_cache =
  Fuse_client.create w.kernel ~cluster:w.cluster ~pool
    ~config:(Lib_client.default_config ~cache_bytes:(mib 256)) ~name ~page_cache ()

let test_fuse_roundtrip_counts_requests () =
  let w = make_world () in
  let pool = pool_of () in
  let fc = make_fuse_client w pool "fuse0" ~page_cache:false in
  let i = Fuse_client.iface fc in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (i.open_file ~pool "/f" Client_intf.flags_wo) in
      ok_or_fail "write" (i.write ~pool fd ~off:0 ~len:(mib 1));
      ignore (ok_or_fail "read" (i.read ~pool fd ~off:0 ~len:(mib 1)));
      i.close ~pool fd);
  Engine.run_until w.engine 60.0;
  let fuse_reqs =
    Obs.get (Kernel.obs w.kernel) ~layer:"kernel" ~name:"fuse_requests" ~key:"pool0"
  in
  check_bool "every op crossed FUSE" true (fuse_reqs >= 4.0)

let test_fuse_page_cache_avoids_crossings () =
  let w = make_world () in
  let pool = pool_of () in
  let fc = make_fuse_client w pool "fusep" ~page_cache:true in
  let i = Fuse_client.iface fc in
  let reqs_between = ref 0.0 in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (i.open_file ~pool "/f" Client_intf.flags_wo) in
      ok_or_fail "write" (i.write ~pool fd ~off:0 ~len:(mib 1));
      ignore (ok_or_fail "read1" (i.read ~pool fd ~off:0 ~len:(mib 1)));
      let before =
        Obs.get (Kernel.obs w.kernel) ~layer:"kernel" ~name:"fuse_requests" ~key:"pool0"
      in
      ignore (ok_or_fail "read2" (i.read ~pool fd ~off:0 ~len:(mib 1)));
      let after =
        Obs.get (Kernel.obs w.kernel) ~layer:"kernel" ~name:"fuse_requests" ~key:"pool0"
      in
      reqs_between := after -. before);
  Engine.run_until w.engine 60.0;
  Alcotest.(check (float 0.0)) "page-cache hit crossed no FUSE" 0.0 !reqs_between

let test_fuse_double_caching_memory () =
  let w = make_world () in
  let pool = pool_of () in
  let fc = make_fuse_client w pool "fusep" ~page_cache:true in
  let i = Fuse_client.iface fc in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (i.open_file ~pool "/f" Client_intf.flags_wo) in
      ok_or_fail "write" (i.write ~pool fd ~off:0 ~len:(mib 4)));
  Engine.run_until w.engine 60.0;
  let user_side = Lib_client.cache_used (Fuse_client.inner fc) in
  let kernel_side = Page_cache.used_bytes (Kernel.page_cache w.kernel) in
  check_bool "user cache holds the data" true (user_side >= mib 4);
  check_bool "page cache holds it again" true (kernel_side >= mib 4)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_lib_read_never_past_eof =
  QCheck.Test.make ~name:"reads never return past EOF" ~count:40
    QCheck.(pair (int_range 0 2_000_000) (int_range 1 2_000_000))
    (fun (size, req) ->
      let w = make_world () in
      let pool = pool_of () in
      let c = make_lib_client w pool "lib0" in
      let i = Lib_client.iface c in
      let result = ref 0 in
      Engine.spawn w.engine (fun () ->
          let fd =
            ok_or_fail "open" (i.open_file ~pool "/f" Client_intf.flags_wo)
          in
          if size > 0 then ok_or_fail "write" (i.write ~pool fd ~off:0 ~len:size);
          result := ok_or_fail "read" (i.read ~pool fd ~off:0 ~len:req));
      Engine.run_until w.engine 120.0;
      !result = Stdlib.min size req)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "client.lib",
      [
        tc "write/read roundtrip" `Quick test_lib_write_read_roundtrip;
        tc "background flush to OSDs" `Quick test_lib_background_flush_reaches_osds;
        tc "dirty throttling" `Quick test_lib_dirty_throttling;
        tc "cached read fast" `Quick test_lib_cached_read_fast;
        tc "client_lock contention" `Quick test_lib_client_lock_serialises_cached_reads;
        tc "negative lookup cached" `Quick test_lib_negative_lookup_cached;
        tc "unlink removes objects" `Quick test_lib_unlink_removes_objects;
        tc "memory accounting" `Quick test_lib_memory_accounting;
      ] );
    ( "client.kernel",
      [
        tc "roundtrip via page cache" `Quick test_kernel_roundtrip;
        tc "writeback by kernel flusher" `Quick test_kernel_writeback_by_flusher;
        tc "shared lock across pools" `Quick test_kernel_shared_lock_cross_pool;
      ] );
    ( "client.fuse",
      [
        tc "ops cross FUSE" `Quick test_fuse_roundtrip_counts_requests;
        tc "FP page cache hit" `Quick test_fuse_page_cache_avoids_crossings;
        tc "FP double caching" `Quick test_fuse_double_caching_memory;
      ] );
    ( "client.properties",
      List.map QCheck_alcotest.to_alcotest [ prop_lib_read_never_past_eof ] );
  ]

(* ------------------------------------------------------------------ *)
(* Wrappers: Rebase, Pagecache_wrap, fine-grained locking *)

let test_rebase_paths () =
  Alcotest.(check string) "rebase" "/roots/a/etc/x" (Rebase.rebase ~prefix:"/roots/a" "/etc/x");
  Alcotest.(check string) "rebase root prefix" "/etc/x" (Rebase.rebase ~prefix:"/" "/etc/x");
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client w pool "base" in
  let wrapped = Rebase.wrap ~prefix:"/sub" (Lib_client.iface c) in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (wrapped.Client_intf.open_file ~pool "/f" Client_intf.flags_wo) in
      ok_or_fail "write" (wrapped.Client_intf.write ~pool fd ~off:0 ~len:4096);
      wrapped.Client_intf.close ~pool fd;
      (* visible at the rebased location through the raw client *)
      check_bool "stored under the prefix" true
        (Result.is_ok ((Lib_client.iface c).Client_intf.stat ~pool "/sub/f")));
  Engine.run_until w.engine 30.0

let test_pagecache_wrap_hit_skips_inner () =
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client w pool "inner" in
  let wrapped =
    Pagecache_wrap.wrap w.kernel ~name:"pcw" ~max_dirty:(mib 64) (Lib_client.iface c)
  in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (wrapped.Client_intf.open_file ~pool "/f" Client_intf.flags_wo) in
      ok_or_fail "write" (wrapped.Client_intf.write ~pool fd ~off:0 ~len:(mib 1));
      (* the write-through left a clean page-cache copy: a read must not
         touch the inner client's cache lock *)
      let inner_lock = Lib_client.client_lock c in
      let acq_before = Mutex_sim.acquisitions inner_lock in
      check_int "read served" (mib 1)
        (ok_or_fail "read" (wrapped.Client_intf.read ~pool fd ~off:0 ~len:(mib 1)));
      check_int "inner client untouched on hit" acq_before
        (Mutex_sim.acquisitions inner_lock));
  Engine.run_until w.engine 60.0

let test_fine_grained_locking_roundtrip () =
  let w = make_world () in
  let pool = pool_of () in
  let c =
    Lib_client.create w.engine ~cpu:w.cpu ~costs:(Danaus_kernel.Kernel.costs w.kernel)
      ~cluster:w.cluster ~pool
      ~config:
        {
          (Lib_client.default_config ~cache_bytes:(mib 256)) with
          Lib_client.fine_grained_locking = true;
        }
      ~name:"fg"
  in
  Lib_client.start c;
  let i = Lib_client.iface c in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (i.open_file ~pool "/f" Client_intf.flags_wo) in
      ok_or_fail "write" (i.write ~pool fd ~off:0 ~len:(mib 4));
      check_int "read back" (mib 4) (ok_or_fail "read" (i.read ~pool fd ~off:0 ~len:(mib 4)));
      (* the global client_lock is never taken for cached reads *)
      let before = Mutex_sim.acquisitions (Lib_client.client_lock c) in
      ignore (ok_or_fail "read2" (i.read ~pool fd ~off:0 ~len:(mib 1)));
      check_int "global lock bypassed" before
        (Mutex_sim.acquisitions (Lib_client.client_lock c)));
  Engine.run_until w.engine 60.0

let test_mount_mem_limit_evicts () =
  let w = make_world () in
  let pc = Danaus_kernel.Kernel.page_cache w.kernel in
  let m =
    Danaus_kernel.Page_cache.add_mount pc ~name:"limited" ~max_dirty:(gib 1)
      ~mem_limit:(mib 1) ()
  in
  let f = Danaus_kernel.Page_cache.file pc m ~key:"big" ~flush:(fun ~bytes:_ -> ()) in
  Engine.spawn w.engine (fun () ->
      Danaus_kernel.Page_cache.insert_clean f ~off:0 ~len:(mib 4);
      check_bool "mount bounded by its cgroup limit" true
        (Danaus_kernel.Page_cache.mount_used m <= mib 1));
  Engine.run_until w.engine 10.0

let test_attr_lease_cross_client_visibility () =
  (* client B cached a negative lookup; after A creates the file and the
     lease expires, B sees it (§3.4 consistency) *)
  let w = make_world () in
  let pool = pool_of () in
  let a = make_lib_client w pool "cliA" in
  let b = make_lib_client w pool "cliB" in
  let ia = Lib_client.iface a and ib = Lib_client.iface b in
  Engine.spawn w.engine (fun () ->
      (match ib.Client_intf.stat ~pool "/shared" with
      | Error (Client_intf.Fs Danaus_ceph.Namespace.No_entry) -> ()
      | _ -> Alcotest.fail "expected ENOENT");
      let fd = ok_or_fail "create" (ia.Client_intf.open_file ~pool "/shared" Client_intf.flags_wo) in
      ok_or_fail "write" (ia.Client_intf.write ~pool fd ~off:0 ~len:4096);
      ia.Client_intf.close ~pool fd;
      (* within the lease, B still believes the file is absent *)
      (match ib.Client_intf.stat ~pool "/shared" with
      | Error (Client_intf.Fs Danaus_ceph.Namespace.No_entry) -> ()
      | _ -> Alcotest.fail "lease should still hide the file");
      Engine.sleep 1.5;
      match ib.Client_intf.stat ~pool "/shared" with
      | Ok attr -> check_int "size visible after lease" 4096 attr.Danaus_ceph.Namespace.size
      | Error e -> Alcotest.failf "still hidden: %s" (Client_intf.error_to_string e));
  Engine.run_until w.engine 60.0

let test_attr_lease_does_not_shrink_local_size () =
  (* a lease refetch must not clobber the client's own unflushed size *)
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client w pool "cliC" in
  let i = Lib_client.iface c in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "create" (i.open_file ~pool "/grow" Client_intf.flags_wo) in
      ok_or_fail "write" (i.write ~pool fd ~off:0 ~len:(mib 2));
      Engine.sleep 2.0;
      (* stat revalidates at the MDS (which may still say size 0) *)
      ignore (i.stat ~pool "/grow");
      check_int "local size preserved" (mib 2) (ok_or_fail "size" (i.fd_size fd)));
  Engine.run_until w.engine 60.0

let wrapper_suite =
  let tc = Alcotest.test_case in
  [
    ( "client.wrappers",
      [
        tc "rebase paths" `Quick test_rebase_paths;
        tc "pagecache_wrap hit" `Quick test_pagecache_wrap_hit_skips_inner;
        tc "fine-grained locking" `Quick test_fine_grained_locking_roundtrip;
        tc "mount mem limit" `Quick test_mount_mem_limit_evicts;
        tc "attr lease cross-client" `Quick test_attr_lease_cross_client_visibility;
        tc "attr lease keeps local size" `Quick test_attr_lease_does_not_shrink_local_size;
      ] );
  ]

let suite = suite @ wrapper_suite

let test_write_through_mode () =
  let w = make_world () in
  let pool = pool_of () in
  let c =
    Lib_client.create w.engine ~cpu:w.cpu ~costs:(Danaus_kernel.Kernel.costs w.kernel)
      ~cluster:w.cluster ~pool
      ~config:
        {
          (Lib_client.default_config ~cache_bytes:(mib 64)) with
          Lib_client.write_through = true;
        }
      ~name:"wt"
  in
  Lib_client.start c;
  let i = Lib_client.iface c in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (i.open_file ~pool "/wt" Client_intf.flags_wo) in
      ok_or_fail "write" (i.write ~pool fd ~off:0 ~len:(mib 2));
      (* the data is on the OSDs before write returns *)
      check_bool "write-through reached the backend" true
        (total_osd_written w.cluster >= float_of_int (mib 2));
      check_int "nothing left dirty" 0 (Lib_client.dirty_bytes c));
  Engine.run_until w.engine 60.0

let wt_suite =
  [ ("client.write_through", [ Alcotest.test_case "synchronous writes" `Quick test_write_through_mode ]) ]

let suite = suite @ wt_suite
