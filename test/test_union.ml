(* Tests for the union filesystem: lookup precedence, copy-up, whiteouts,
   merged readdir, rename, and FUSE wrapping. *)

open Danaus_sim
open Danaus_kernel
open Danaus_ceph
open Danaus_client
open Danaus_union
open Testbed

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A world with one lib client holding a populated lower branch at /lower
   and an empty upper branch at /upper, unioned (upper on top). *)
let make_union_world ?(extra_lower = []) () =
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client w pool "libc" in
  let i = Lib_client.iface c in
  let union =
    Union_fs.create ~name:"u0"
      ~branches:
        [
          { Union_fs.client = i; prefix = "/upper"; writable = true };
          { Union_fs.client = i; prefix = "/lower"; writable = false };
        ]
      ~charge:(pool_charge w) ()
  in
  (* populate the lower branch *)
  Engine.spawn w.engine (fun () ->
      ok_or_fail "mkdirs" (i.mkdir_p ~pool "/upper");
      ok_or_fail "mkdirs" (i.mkdir_p ~pool "/lower/etc");
      write_file i ~pool "/lower/etc/passwd" 4096;
      write_file i ~pool "/lower/bigfile" (mib 4);
      List.iter (fun (p, n) -> write_file i ~pool ("/lower" ^ p) n) extra_lower);
  Engine.run_until w.engine 60.0;
  (w, pool, i, union)

let test_lookup_lower_visible () =
  let w, pool, _, u = make_union_world () in
  Engine.spawn w.engine (fun () ->
      let a = ok_or_fail "stat" (u.Client_intf.stat ~pool "/etc/passwd") in
      check_int "lower file size" 4096 a.Namespace.size;
      let fd = ok_or_fail "open ro" (u.Client_intf.open_file ~pool "/etc/passwd" Client_intf.flags_ro) in
      let n = ok_or_fail "read" (u.Client_intf.read ~pool fd ~off:0 ~len:8192) in
      check_int "short read of lower file" 4096 n;
      u.Client_intf.close ~pool fd);
  Engine.run_until w.engine 120.0

let test_upper_shadows_lower () =
  let w, pool, i, u = make_union_world () in
  Engine.spawn w.engine (fun () ->
      (* same path exists in both branches with different sizes *)
      write_file i ~pool "/upper/etc/passwd" 100;
      let a = ok_or_fail "stat" (u.Client_intf.stat ~pool "/etc/passwd") in
      check_int "upper wins" 100 a.Namespace.size);
  Engine.run_until w.engine 120.0

let test_copy_up_on_write () =
  let w, pool, i, u = make_union_world () in
  Engine.spawn w.engine (fun () ->
      let fd =
        ok_or_fail "open append"
          (u.Client_intf.open_file ~pool "/bigfile" Client_intf.flags_append)
      in
      ok_or_fail "append" (u.Client_intf.append ~pool fd ~len:(mib 1));
      u.Client_intf.close ~pool fd;
      check_int "one copy-up happened" 1 (Union_fs.copy_ups u);
      (* the upper branch now holds the full copy plus the append *)
      let a = ok_or_fail "stat upper" (i.stat ~pool "/upper/bigfile") in
      check_int "upper copy size" (mib 5) a.Namespace.size;
      (* lower branch is untouched *)
      let a = ok_or_fail "stat lower" (i.stat ~pool "/lower/bigfile") in
      check_int "lower intact" (mib 4) a.Namespace.size;
      (* the union sees the new size *)
      let a = ok_or_fail "stat union" (u.Client_intf.stat ~pool "/bigfile") in
      check_int "union sees appended size" (mib 5) a.Namespace.size);
  Engine.run_until w.engine 300.0

let test_trunc_skips_copy_up () =
  let w, pool, _, u = make_union_world () in
  Engine.spawn w.engine (fun () ->
      let fd =
        ok_or_fail "open trunc"
          (u.Client_intf.open_file ~pool "/bigfile" Client_intf.flags_wo)
      in
      u.Client_intf.close ~pool fd;
      check_int "no data copied for O_TRUNC" 0 (Union_fs.copy_ups u);
      let a = ok_or_fail "stat" (u.Client_intf.stat ~pool "/bigfile") in
      check_int "truncated view" 0 a.Namespace.size);
  Engine.run_until w.engine 120.0

let test_whiteout_on_unlink () =
  let w, pool, i, u = make_union_world () in
  Engine.spawn w.engine (fun () ->
      ok_or_fail "unlink" (u.Client_intf.unlink ~pool "/etc/passwd");
      (match u.Client_intf.stat ~pool "/etc/passwd" with
      | Error (Client_intf.Fs Namespace.No_entry) -> ()
      | _ -> Alcotest.fail "unlinked file still visible");
      (* the lower copy is untouched; a whiteout hides it *)
      check_bool "lower copy still exists" true
        (Result.is_ok (i.stat ~pool "/lower/etc/passwd"));
      check_bool "whiteout created" true
        (Result.is_ok (i.stat ~pool "/upper/etc/.wh.passwd"));
      (* re-creating removes the whiteout and yields an upper file *)
      let fd =
        ok_or_fail "recreate"
          (u.Client_intf.open_file ~pool "/etc/passwd" Client_intf.flags_wo)
      in
      u.Client_intf.close ~pool fd;
      check_bool "file visible again" true
        (Result.is_ok (u.Client_intf.stat ~pool "/etc/passwd")));
  Engine.run_until w.engine 120.0

let test_readdir_merge () =
  let w, pool, i, u = make_union_world () in
  Engine.spawn w.engine (fun () ->
      write_file i ~pool "/upper/etc/hosts" 10;
      ok_or_fail "unlink lower" (u.Client_intf.unlink ~pool "/etc/passwd");
      let names = ok_or_fail "readdir" (u.Client_intf.readdir ~pool "/etc") in
      Alcotest.(check (list string)) "merged minus whiteouts" [ "hosts" ] names);
  Engine.run_until w.engine 120.0

let test_readdir_dedup () =
  let w, pool, i, u = make_union_world () in
  Engine.spawn w.engine (fun () ->
      write_file i ~pool "/upper/etc/passwd" 5;
      let names = ok_or_fail "readdir" (u.Client_intf.readdir ~pool "/etc") in
      Alcotest.(check (list string)) "no duplicates" [ "passwd" ] names);
  Engine.run_until w.engine 120.0

let test_rename_lower_file () =
  let w, pool, _, u = make_union_world () in
  Engine.spawn w.engine (fun () ->
      ok_or_fail "rename" (u.Client_intf.rename ~pool ~src:"/etc/passwd" ~dst:"/etc/passwd.bak");
      (match u.Client_intf.stat ~pool "/etc/passwd" with
      | Error (Client_intf.Fs Namespace.No_entry) -> ()
      | _ -> Alcotest.fail "source still visible");
      let a = ok_or_fail "stat dst" (u.Client_intf.stat ~pool "/etc/passwd.bak") in
      check_int "content moved" 4096 a.Namespace.size;
      check_int "rename of lower file copied up" 1 (Union_fs.copy_ups u));
  Engine.run_until w.engine 120.0

let test_read_only_union_rejects_writes () =
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client w pool "libc" in
  let i = Lib_client.iface c in
  let u =
    Union_fs.create ~name:"ro"
      ~branches:[ { Union_fs.client = i; prefix = "/lower"; writable = false } ]
      ~charge:(pool_charge w) ()
  in
  Engine.spawn w.engine (fun () ->
      ok_or_fail "mkdir" (i.mkdir_p ~pool "/lower");
      match u.Client_intf.open_file ~pool "/x" Client_intf.flags_wo with
      | Error Client_intf.Read_only -> ()
      | _ -> Alcotest.fail "expected Read_only");
  Engine.run_until w.engine 60.0

let test_fuse_wrapped_union_crosses_fuse () =
  let w, pool, _, u = make_union_world () in
  let wrapped = Fuse_wrap.wrap w.kernel ~pool ~name:"unionfs-fuse" u in
  Engine.spawn w.engine (fun () ->
      let before =
        Obs.get (Kernel.obs w.kernel) ~layer:"kernel" ~name:"fuse_requests" ~key:"pool0"
      in
      ignore (ok_or_fail "stat" (wrapped.Client_intf.stat ~pool "/etc/passwd"));
      let after =
        Obs.get (Kernel.obs w.kernel) ~layer:"kernel" ~name:"fuse_requests" ~key:"pool0"
      in
      check_bool "stat crossed FUSE" true (after > before));
  Engine.run_until w.engine 120.0

let prop_union_precedence =
  QCheck.Test.make ~name:"upper branch always wins lookups" ~count:20
    QCheck.(pair (int_range 1 100) (int_range 101 200))
    (fun (upper_size, lower_size) ->
      let w = make_world () in
      let pool = pool_of () in
      let c = make_lib_client w pool "libc" in
      let i = Lib_client.iface c in
      let u =
        Union_fs.create ~name:"prop-u"
          ~branches:
            [
              { Union_fs.client = i; prefix = "/up"; writable = true };
              { Union_fs.client = i; prefix = "/low"; writable = false };
            ]
          ~charge:(pool_charge w) ()
      in
      let result = ref (-1) in
      Engine.spawn w.engine (fun () ->
          ok_or_fail "mk" (i.mkdir_p ~pool "/up");
          ok_or_fail "mk" (i.mkdir_p ~pool "/low");
          write_file i ~pool "/up/f" upper_size;
          write_file i ~pool "/low/f" lower_size;
          match u.Client_intf.stat ~pool "/f" with
          | Ok a -> result := a.Namespace.size
          | Error _ -> ());
      Engine.run_until w.engine 120.0;
      !result = upper_size)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "union.lookup",
      [
        tc "lower visible" `Quick test_lookup_lower_visible;
        tc "upper shadows lower" `Quick test_upper_shadows_lower;
      ] );
    ( "union.cow",
      [
        tc "copy-up on write" `Quick test_copy_up_on_write;
        tc "O_TRUNC skips copy-up" `Quick test_trunc_skips_copy_up;
      ] );
    ( "union.whiteout",
      [
        tc "whiteout on unlink" `Quick test_whiteout_on_unlink;
        tc "readdir merge" `Quick test_readdir_merge;
        tc "readdir dedup" `Quick test_readdir_dedup;
      ] );
    ( "union.misc",
      [
        tc "rename lower file" `Quick test_rename_lower_file;
        tc "read-only union" `Quick test_read_only_union_rejects_writes;
        tc "FUSE-wrapped union" `Quick test_fuse_wrapped_union_crosses_fuse;
      ] );
    ("union.properties", List.map QCheck_alcotest.to_alcotest [ prop_union_precedence ]);
  ]

(* ------------------------------------------------------------------ *)
(* Deeper stacks and cross-client branches *)

let test_three_branch_stack_with_middle_whiteout () =
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client w pool "libc3" in
  let i = Lib_client.iface c in
  let u =
    Union_fs.create ~name:"u3"
      ~branches:
        [
          { Union_fs.client = i; prefix = "/top"; writable = true };
          { Union_fs.client = i; prefix = "/mid"; writable = false };
          { Union_fs.client = i; prefix = "/bot"; writable = false };
        ]
      ~charge:(pool_charge w) ()
  in
  Engine.spawn w.engine (fun () ->
      ok_or_fail "mk" (i.mkdir_p ~pool "/top");
      ok_or_fail "mk" (i.mkdir_p ~pool "/mid");
      ok_or_fail "mk" (i.mkdir_p ~pool "/bot");
      (* /bot has the file; /mid hides it with a whiteout (image build
         deleted it in a later layer) *)
      write_file i ~pool "/bot/hidden" 100;
      write_file i ~pool "/mid/.wh.hidden" 0;
      write_file i ~pool "/bot/visible" 200;
      (match u.Client_intf.stat ~pool "/hidden" with
      | Error (Client_intf.Fs Danaus_ceph.Namespace.No_entry) -> ()
      | _ -> Alcotest.fail "middle-layer whiteout ignored");
      let a = ok_or_fail "stat" (u.Client_intf.stat ~pool "/visible") in
      Alcotest.(check int) "bottom file visible" 200 a.Danaus_ceph.Namespace.size;
      let names = ok_or_fail "readdir" (u.Client_intf.readdir ~pool "/") in
      Alcotest.(check (list string)) "merged minus middle whiteout" [ "visible" ] names);
  Engine.run_until w.engine 120.0

let test_branches_on_distinct_clients () =
  (* upper on one client, lower on another: copy-up moves data across
     client instances *)
  let w = make_world () in
  let pool = pool_of () in
  let upper_c = make_lib_client w pool "upperc" in
  let lower_c = make_lib_client w pool "lowerc" in
  let ui = Lib_client.iface upper_c and li = Lib_client.iface lower_c in
  let u =
    Union_fs.create ~name:"u-cross"
      ~branches:
        [
          { Union_fs.client = ui; prefix = "/up"; writable = true };
          { Union_fs.client = li; prefix = "/low"; writable = false };
        ]
      ~charge:(pool_charge w) ()
  in
  Engine.spawn w.engine (fun () ->
      ok_or_fail "mk" (ui.mkdir_p ~pool "/up");
      ok_or_fail "mk" (li.mkdir_p ~pool "/low");
      write_file li ~pool "/low/data" (mib 1);
      let fd =
        ok_or_fail "append"
          (u.Client_intf.open_file ~pool "/data" Client_intf.flags_append)
      in
      ok_or_fail "append" (u.Client_intf.append ~pool fd ~len:4096);
      u.Client_intf.close ~pool fd;
      let a = ok_or_fail "stat upper" (ui.stat ~pool "/up/data") in
      Alcotest.(check int) "copied across clients" (mib 1 + 4096)
        a.Danaus_ceph.Namespace.size);
  Engine.run_until w.engine 300.0

let prop_whiteout_name_roundtrip =
  QCheck.Test.make ~name:"whiteout name mangling round-trips" ~count:200
    QCheck.(string_gen_of_size Gen.(int_range 1 32) Gen.(char_range 'a' 'z'))
    (fun name ->
      let wh = Whiteout.of_path ("/d/" ^ name) in
      Whiteout.is_whiteout (Danaus_ceph.Fspath.basename wh)
      && Whiteout.hidden_name (Danaus_ceph.Fspath.basename wh) = Some name)

let extra_suite =
  let tc = Alcotest.test_case in
  [
    ( "union.stacks",
      [
        tc "three branches, middle whiteout" `Quick test_three_branch_stack_with_middle_whiteout;
        tc "branches on distinct clients" `Quick test_branches_on_distinct_clients;
      ] );
    ( "union.more_properties",
      List.map QCheck_alcotest.to_alcotest [ prop_whiteout_name_roundtrip ] );
  ]

let suite = suite @ extra_suite

(* ------------------------------------------------------------------ *)
(* Block-level copy-on-write (§9 extension) *)

let make_block_cow_world () =
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client w pool "libcb" in
  let i = Lib_client.iface c in
  let u =
    Union_fs.create ~name:"u-bcow"
      ~branches:
        [
          { Union_fs.client = i; prefix = "/upper"; writable = true };
          { Union_fs.client = i; prefix = "/lower"; writable = false };
        ]
      ~charge:(pool_charge w) ~block_cow:(64 * 1024) ()
  in
  Engine.spawn w.engine (fun () ->
      ok_or_fail "mk" (i.mkdir_p ~pool "/upper");
      ok_or_fail "mk" (i.mkdir_p ~pool "/lower");
      write_file i ~pool "/lower/big" (mib 8));
  Engine.run_until w.engine 60.0;
  (w, pool, i, u)

let test_block_cow_append_no_copy () =
  let w, pool, i, u = make_block_cow_world () in
  Engine.spawn w.engine (fun () ->
      let osd_before = total_osd_written w.cluster in
      let fd =
        ok_or_fail "open append"
          (u.Client_intf.open_file ~pool "/big" Client_intf.flags_append)
      in
      ok_or_fail "append" (u.Client_intf.append ~pool fd ~len:(mib 1));
      ok_or_fail "fsync" (u.Client_intf.fsync ~pool fd);
      u.Client_intf.close ~pool fd;
      check_int "no whole-file copy-up" 0 (Union_fs.copy_ups u);
      (* only the appended megabyte went to the backend, not 8 MiB *)
      check_bool "write amplification avoided" true
        (total_osd_written w.cluster -. osd_before < float_of_int (mib 2));
      (* the union's view has the merged size *)
      let a = ok_or_fail "stat" (u.Client_intf.stat ~pool "/big") in
      check_int "merged size" (mib 9) a.Namespace.size;
      (* the lower file is untouched; the delta lives in the upper branch *)
      let a = ok_or_fail "stat lower" (i.stat ~pool "/lower/big") in
      check_int "lower intact" (mib 8) a.Namespace.size;
      check_bool "delta file exists" true
        (Result.is_ok (i.stat ~pool "/upper/.wh.big" )= false
         && Result.is_ok (i.stat ~pool "/upper/.cow.big")));
  Engine.run_until w.engine 300.0

let test_block_cow_read_merges_sides () =
  let w, pool, _, u = make_block_cow_world () in
  Engine.spawn w.engine (fun () ->
      let fd =
        ok_or_fail "open rw"
          (u.Client_intf.open_file ~pool "/big"
             { Client_intf.rd = true; wr = true; append = false; create = false; trunc = false })
      in
      (* overwrite one interior megabyte *)
      ok_or_fail "write" (u.Client_intf.write ~pool fd ~off:(mib 2) ~len:(mib 1));
      (* a read spanning lower + upper + lower segments returns fully *)
      check_int "spanning read" (mib 4)
        (ok_or_fail "read" (u.Client_intf.read ~pool fd ~off:(mib 1) ~len:(mib 4)));
      check_int "size unchanged by interior write" (mib 8)
        (ok_or_fail "size" (u.Client_intf.fd_size fd));
      u.Client_intf.close ~pool fd);
  Engine.run_until w.engine 300.0

let test_block_cow_hidden_and_unlinked () =
  let w, pool, _, u = make_block_cow_world () in
  Engine.spawn w.engine (fun () ->
      let fd =
        ok_or_fail "open" (u.Client_intf.open_file ~pool "/big" Client_intf.flags_append)
      in
      ok_or_fail "append" (u.Client_intf.append ~pool fd ~len:4096);
      u.Client_intf.close ~pool fd;
      Alcotest.(check (list string)) "delta hidden from readdir" [ "big" ]
        (ok_or_fail "readdir" (u.Client_intf.readdir ~pool "/"));
      ok_or_fail "unlink" (u.Client_intf.unlink ~pool "/big");
      (match u.Client_intf.stat ~pool "/big" with
      | Error (Client_intf.Fs Namespace.No_entry) -> ()
      | _ -> Alcotest.fail "still visible after unlink"));
  Engine.run_until w.engine 300.0

let test_block_cow_readonly_reopen_sees_delta () =
  let w, pool, _, u = make_block_cow_world () in
  Engine.spawn w.engine (fun () ->
      let fd =
        ok_or_fail "open" (u.Client_intf.open_file ~pool "/big" Client_intf.flags_append)
      in
      ok_or_fail "append" (u.Client_intf.append ~pool fd ~len:(mib 1));
      u.Client_intf.close ~pool fd;
      (* a fresh read-only open must see the merged 9 MiB *)
      let rfd =
        ok_or_fail "reopen ro" (u.Client_intf.open_file ~pool "/big" Client_intf.flags_ro)
      in
      check_int "reader sees the delta" (mib 9)
        (ok_or_fail "size" (u.Client_intf.fd_size rfd));
      check_int "full read" (mib 9)
        (ok_or_fail "read" (u.Client_intf.read ~pool rfd ~off:0 ~len:(mib 9)));
      u.Client_intf.close ~pool rfd);
  Engine.run_until w.engine 300.0

let block_cow_suite =
  let tc = Alcotest.test_case in
  [
    ( "union.block_cow",
      [
        tc "append copies nothing" `Quick test_block_cow_append_no_copy;
        tc "reads merge both sides" `Quick test_block_cow_read_merges_sides;
        tc "delta hidden and unlinked" `Quick test_block_cow_hidden_and_unlinked;
        tc "ro reopen sees delta" `Quick test_block_cow_readonly_reopen_sees_delta;
      ] );
  ]

let suite = suite @ block_cow_suite

(* ------------------------------------------------------------------ *)
(* Whiteout orphan scan and copy-up rollback (the correctness-harness
   satellites): check_whiteouts on empty/justified/orphaned uppers, and
   a mid-copy failure that must roll the partial upper copy back. *)

let test_whiteouts_empty_upper () =
  let w, pool, _, u = make_union_world () in
  let scanned = ref None in
  Engine.spawn w.engine (fun () ->
      scanned := Some (Union_fs.check_whiteouts u ~pool));
  Engine.run_until w.engine 120.0;
  Alcotest.(check (list string)) "no whiteouts in a fresh upper" []
    (Option.get !scanned)

let test_whiteouts_justified_vs_orphan () =
  let w, pool, i, u = make_union_world () in
  Engine.spawn w.engine (fun () ->
      (* a real deletion of a lower file leaves a justified whiteout *)
      ok_or_fail "unlink" (u.Client_intf.unlink ~pool "/etc/passwd");
      Alcotest.(check (list string)) "deletion whiteout is justified" []
        (Union_fs.check_whiteouts u ~pool);
      (* manufacture orphans: whiteouts covering nothing, one at the
         root and one in a nested directory *)
      write_file i ~pool "/upper/.wh.ghost" 0;
      ok_or_fail "mkdir" (i.Client_intf.mkdir_p ~pool "/upper/etc");
      write_file i ~pool "/upper/etc/.wh.nope" 0;
      Alcotest.(check (list string)) "orphans reported sorted" [ "/etc/nope"; "/ghost" ]
        (Union_fs.check_whiteouts u ~pool));
  Engine.run_until w.engine 240.0

(* Write-without-truncate flags: the open that forces a whole-file
   copy-up (flags_wo has trunc set, which legitimately skips the copy). *)
let flags_w_keep =
  { Client_intf.rd = false; wr = true; append = false; create = false; trunc = false }

let test_copy_up_rollback_on_mid_copy_failure () =
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client w pool "libc" in
  let i = Lib_client.iface c in
  (* lower branch whose reads fail from the second 1 MiB chunk on: the
     copy-up gets one good chunk into the upper copy, then dies *)
  let failing_lower =
    {
      i with
      Client_intf.read =
        (fun ~pool fd ~off ~len ->
          if off > 0 then Error Client_intf.Timed_out
          else i.Client_intf.read ~pool fd ~off ~len);
    }
  in
  let u =
    Union_fs.create ~name:"u-rb"
      ~branches:
        [
          { Union_fs.client = i; prefix = "/upper"; writable = true };
          { Union_fs.client = failing_lower; prefix = "/lower"; writable = false };
        ]
      ~charge:(pool_charge w) ()
  in
  Engine.spawn w.engine (fun () ->
      ok_or_fail "mkdirs" (i.Client_intf.mkdir_p ~pool "/upper");
      ok_or_fail "mkdirs" (i.Client_intf.mkdir_p ~pool "/lower/dir/sub");
      write_file i ~pool "/lower/dir/sub/big" (mib 3);
      (* nested-directory copy-up: fails on the second chunk *)
      (match u.Client_intf.open_file ~pool "/dir/sub/big" flags_w_keep with
      | Ok _ -> Alcotest.fail "copy-up unexpectedly succeeded"
      | Error Client_intf.Timed_out -> ()
      | Error e ->
          Alcotest.failf "unexpected error: %s" (Client_intf.error_to_string e));
      check_int "one copy-up attempted" 1 (Union_fs.copy_ups u);
      check_int "rollback counted" 1 (Union_fs.copy_up_rollbacks u);
      (* the partial upper copy must be gone... *)
      (match i.Client_intf.stat ~pool "/upper/dir/sub/big" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "partial upper copy survived the rollback");
      (* ...so the union still shows the intact lower file *)
      let a = ok_or_fail "stat" (u.Client_intf.stat ~pool "/dir/sub/big") in
      check_int "intact lower file still visible" (mib 3) a.Namespace.size);
  Engine.run_until w.engine 240.0

let harness_suite =
  let tc = Alcotest.test_case in
  [
    ( "union.harness",
      [
        tc "whiteout scan: empty upper" `Quick test_whiteouts_empty_upper;
        tc "whiteout scan: justified vs orphan" `Quick
          test_whiteouts_justified_vs_orphan;
        tc "copy-up rollback on mid-copy failure" `Quick
          test_copy_up_rollback_on_mid_copy_failure;
      ] );
  ]

let suite = suite @ harness_suite
