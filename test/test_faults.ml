(* Tests for the fault-injection subsystem: plan resolution and
   scheduling, error propagation from a dead backend up through
   striper -> client -> union, the retry budget, copy-up rollback and
   whiteout consistency, and the end-to-end testbed injector. *)

open Danaus_sim
open Danaus_kernel
open Danaus_ceph
open Danaus_client
open Danaus_union
open Danaus_faults
open Testbed

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Fault_plan: resolution determinism and scheduled execution *)

let sample_plan =
  [
    Fault_plan.at 1.0 (Fault_plan.Osd_down 0);
    Fault_plan.between 2.0 5.0 (Fault_plan.Link_partition "client");
    Fault_plan.between 0.5 3.5 (Fault_plan.Host_crash { restart_after = 1.0 });
  ]

let test_resolve_deterministic () =
  let r1 = Fault_plan.resolve ~seed:42 sample_plan in
  let r2 = Fault_plan.resolve ~seed:42 sample_plan in
  check_bool "same seed, same schedule" true (r1 = r2);
  (match r1 with
  | (t1, Fault_plan.Osd_down 0) :: (t2, _) :: (t3, _) :: [] ->
      Alcotest.(check (float 0.0)) "At times are exact" 1.0 t1;
      check_bool "window respected" true (t2 >= 2.0 && t2 <= 5.0);
      check_bool "window respected" true (t3 >= 0.5 && t3 <= 3.5)
  | _ -> Alcotest.fail "unexpected shape");
  let r3 = Fault_plan.resolve ~seed:43 sample_plan in
  check_bool "different seed, different window draws" true (r1 <> r3)

let test_schedule_fires_and_counts () =
  let e = Engine.create () in
  let obs = Engine.obs e in
  Fault_plan.schedule e ~seed:7 Fault_plan.null_injector
    [
      Fault_plan.at 1.0 (Fault_plan.Osd_down 3);
      Fault_plan.at 2.5 (Fault_plan.Osd_up 3);
    ];
  Engine.run e;
  Alcotest.(check (float 1e-9)) "ran to the last event" 2.5 (Engine.now e);
  Alcotest.(check (float 0.0)) "osd_down injected once" 1.0
    (Obs.get obs ~layer:"faults" ~name:"injected" ~key:"osd_down");
  Alcotest.(check (float 0.0)) "osd_up injected once" 1.0
    (Obs.get obs ~layer:"faults" ~name:"injected" ~key:"osd_up")

(* ------------------------------------------------------------------ *)
(* Retry: the budget is spent deterministically, then the error
   surfaces *)

let retry_run seed =
  let e = Engine.create () in
  let obs = Engine.obs e in
  let rng = Rng.create seed in
  let counters = Retry.counters obs ~key:"t" in
  let attempts = ref 0 in
  let result = ref None in
  Engine.spawn e (fun () ->
      result :=
        Some
          (Retry.with_retry ~policy:Retry.net_policy ~rng ~counters
             ~transient:(fun _ -> true)
             (fun () ->
               incr attempts;
               Error "always")));
  Engine.run e;
  (!attempts, Engine.now e, !result, counters)

let test_retry_gives_up_after_budget () =
  let attempts, elapsed, result, counters = retry_run 11 in
  check_int "every attempt used" Retry.net_policy.Retry.attempts attempts;
  check_bool "error surfaced" true (result = Some (Error "always"));
  check_bool "backoff took simulated time" true (elapsed > 0.0);
  Alcotest.(check (float 0.0)) "retries counted"
    (float_of_int (attempts - 1))
    (Obs.counter_value counters.Retry.retries_c);
  Alcotest.(check (float 0.0)) "one giveup" 1.0
    (Obs.counter_value counters.Retry.giveups_c)

let test_retry_deterministic () =
  let _, e1, _, _ = retry_run 11 in
  let _, e2, _, _ = retry_run 11 in
  let _, e3, _, _ = retry_run 12 in
  Alcotest.(check (float 0.0)) "same seed, same jittered backoff" e1 e2;
  check_bool "different seed, different jitter" true (e1 <> e3)

(* ------------------------------------------------------------------ *)
(* Error propagation: a cluster with every replica down answers
   [Unavailable] through striper -> lib client -> union *)

let make_faulty_union_world () =
  let w = make_world () in
  let pool = pool_of () in
  (* tiny client cache so reads after the fault must refetch *)
  let c = make_lib_client ~cache:(mib 1) w pool "libc" in
  let i = Lib_client.iface c in
  let union =
    Union_fs.create ~name:"uf"
      ~branches:
        [
          { Union_fs.client = i; prefix = "/upper"; writable = true };
          { Union_fs.client = i; prefix = "/lower"; writable = false };
        ]
      ~charge:(pool_charge w) ()
  in
  Engine.spawn w.engine (fun () ->
      ok_or_fail "mkdirs" (i.Client_intf.mkdir_p ~pool "/upper");
      ok_or_fail "mkdirs" (i.Client_intf.mkdir_p ~pool "/lower");
      write_file i ~pool "/lower/data" (mib 4));
  Engine.run_until w.engine 120.0;
  (w, pool, i, union)

let test_osd_error_reaches_union () =
  let w, pool, _, u = make_faulty_union_world () in
  let got = ref None in
  Engine.spawn w.engine (fun () ->
      Array.iter (fun o -> Osd.set_up o false) (Cluster.osds w.cluster);
      let fd =
        ok_or_fail "open ro"
          (u.Client_intf.open_file ~pool "/data" Client_intf.flags_ro)
      in
      got := Some (u.Client_intf.read ~pool fd ~off:0 ~len:(mib 1));
      u.Client_intf.close ~pool fd);
  Engine.run_until w.engine 600.0;
  (match !got with
  | Some (Error Client_intf.Unavailable) -> ()
  | Some (Ok _) -> Alcotest.fail "read succeeded with every OSD down"
  | Some (Error e) ->
      Alcotest.failf "wrong error: %s" (Client_intf.error_to_string e)
  | None -> Alcotest.fail "read never completed");
  (* the client burned its internal retry budget before giving up *)
  check_bool "retries recorded" true
    (Obs.sum (Engine.obs w.engine) ~layer:"client" ~name:"retries" () > 0.0)

(* ------------------------------------------------------------------ *)
(* Union: a failed copy-up rolls the partial upper file back *)

let test_copy_up_rollback () =
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client w pool "libc" in
  let i = Lib_client.iface c in
  (* upper branch whose data writes always fail: the copy-up must not
     leave a truncated shadow that would hide the intact lower file *)
  let broken =
    {
      i with
      Client_intf.write =
        (fun ~pool:_ _ ~off:_ ~len:_ -> Error Client_intf.Unavailable);
    }
  in
  let u =
    Union_fs.create ~name:"ur"
      ~branches:
        [
          { Union_fs.client = broken; prefix = "/upper"; writable = true };
          { Union_fs.client = i; prefix = "/lower"; writable = false };
        ]
      ~charge:(pool_charge w) ()
  in
  Engine.spawn w.engine (fun () ->
      ok_or_fail "mkdirs" (i.Client_intf.mkdir_p ~pool "/upper");
      ok_or_fail "mkdirs" (i.Client_intf.mkdir_p ~pool "/lower");
      write_file i ~pool "/lower/bigfile" (mib 4);
      (match u.Client_intf.open_file ~pool "/bigfile" Client_intf.flags_append with
      | Ok _ -> Alcotest.fail "copy-up succeeded over a broken upper branch"
      | Error Client_intf.Unavailable -> ()
      | Error e ->
          Alcotest.failf "wrong error: %s" (Client_intf.error_to_string e));
      check_int "rollback counted" 1 (Union_fs.copy_up_rollbacks u);
      (* no partial file survives in the upper branch *)
      check_bool "partial upper file removed" true
        (Result.is_error (i.Client_intf.stat ~pool "/upper/bigfile"));
      (* the union still serves the intact lower file *)
      let a = ok_or_fail "stat" (u.Client_intf.stat ~pool "/bigfile") in
      check_int "lower file intact" (mib 4) a.Namespace.size);
  Engine.run_until w.engine 300.0

let test_whiteout_orphan_detection () =
  let w = make_world () in
  let pool = pool_of () in
  let c = make_lib_client w pool "libc" in
  let i = Lib_client.iface c in
  let u =
    Union_fs.create ~name:"uw"
      ~branches:
        [
          { Union_fs.client = i; prefix = "/upper"; writable = true };
          { Union_fs.client = i; prefix = "/lower"; writable = false };
        ]
      ~charge:(pool_charge w) ()
  in
  Engine.spawn w.engine (fun () ->
      ok_or_fail "mkdirs" (i.Client_intf.mkdir_p ~pool "/upper/etc");
      ok_or_fail "mkdirs" (i.Client_intf.mkdir_p ~pool "/lower/etc");
      write_file i ~pool "/lower/etc/passwd" 4096;
      (* a legitimate whiteout: unlink through the union *)
      ok_or_fail "unlink" (u.Client_intf.unlink ~pool "/etc/passwd");
      check_int "no orphans after a real unlink" 0
        (List.length (Union_fs.check_whiteouts u ~pool));
      (* an orphan whiteout hiding nothing (e.g. left by a crashed
         unlink after the lower file was already gone) *)
      write_file i ~pool "/upper/etc/.wh.ghost" 0;
      Alcotest.(check (list string))
        "orphan found" [ "/etc/ghost" ]
        (Union_fs.check_whiteouts u ~pool));
  Engine.run_until w.engine 120.0

(* ------------------------------------------------------------------ *)
(* End to end: the experiment testbed's injector crashes one client
   stack and the supervisor restarts it *)

let test_testbed_injector_crash () =
  let open Danaus_experiments in
  let tb = Testbed.create ~seed:5 ~activated:4 () in
  let pool = Testbed.pool tb 0 in
  let _ct =
    Danaus.Container_engine.launch tb.Testbed.containers ~config:Danaus.Config.d
      ~pool ~id:"victim" ()
  in
  Testbed.inject tb
    ~plan:
      [
        Fault_plan.at 1.0
          (Fault_plan.Client_crash
             { pool = Cgroup.name pool; restart_after = 0.5 });
      ];
  let obs = tb.Testbed.obs in
  Testbed.drive tb ~stop:(fun () ->
      Obs.sum obs ~layer:"core" ~name:"client_crash" () >= 1.0
      && Engine.now tb.Testbed.engine >= 2.0);
  Alcotest.(check (float 0.0)) "exactly one stack crashed" 1.0
    (Obs.sum obs ~layer:"core" ~name:"client_crash" ());
  check_bool "downtime attributed to the pool" true
    (Obs.get obs ~layer:"core" ~name:"downtime" ~key:(Cgroup.name pool) > 0.0);
  Alcotest.(check (float 0.0)) "injection counted" 1.0
    (Obs.get obs ~layer:"faults" ~name:"injected" ~key:"client_crash")

let suite =
  let tc = Alcotest.test_case in
  [
    ( "faults.plan",
      [
        tc "resolve deterministic" `Quick test_resolve_deterministic;
        tc "schedule fires and counts" `Quick test_schedule_fires_and_counts;
      ] );
    ( "faults.retry",
      [
        tc "gives up after budget" `Quick test_retry_gives_up_after_budget;
        tc "deterministic backoff" `Quick test_retry_deterministic;
      ] );
    ( "faults.propagation",
      [ tc "OSD down surfaces through union" `Quick test_osd_error_reaches_union ]
    );
    ( "faults.union",
      [
        tc "copy-up rollback" `Quick test_copy_up_rollback;
        tc "whiteout orphan detection" `Quick test_whiteout_orphan_detection;
      ] );
    ( "faults.testbed",
      [ tc "injector crashes one stack" `Quick test_testbed_injector_crash ] );
  ]
