(* Tests for the causal tracing subsystem: span primitives and slot
   inheritance, end-to-end causality through the D/K/F client stacks,
   latency attribution (phase sums equal e2e), determinism (repeats and
   the parallel runner), the Chrome trace export and the sampler. *)

open Danaus_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

module Etb = Danaus_experiments.Testbed

(* ------------------------------------------------------------------ *)
(* Primitives *)

let test_span_nesting_and_parents () =
  let engine = Engine.create () in
  let obs = Engine.obs engine in
  Obs.set_tracing obs true;
  Engine.spawn engine (fun () ->
      Trace.with_span engine ~layer:"core" ~name:"op" ~key:"k" ~phase:Trace.Service
        (fun () ->
          Engine.sleep 1.0;
          Trace.with_span engine ~layer:"ipc" ~name:"call" ~key:"k"
            ~phase:Trace.Service (fun () -> Engine.sleep 2.0);
          Engine.sleep 1.0));
  Engine.run engine;
  match Obs.cspans obs with
  | [ root; child ] ->
      check_str "root layer" "core" root.Obs.cs_layer;
      check_int "root is parentless" 0 root.Obs.cs_parent;
      check_int "child parents under root" root.Obs.cs_id child.Obs.cs_parent;
      Alcotest.(check (float 1e-9)) "root dur" 4.0 root.Obs.cs_dur;
      Alcotest.(check (float 1e-9)) "child dur" 2.0 child.Obs.cs_dur;
      Alcotest.(check (float 1e-9)) "child start" 1.0 child.Obs.cs_start
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_fork_inherits_current_span () =
  let engine = Engine.create () in
  let obs = Engine.obs engine in
  Obs.set_tracing obs true;
  Engine.spawn engine (fun () ->
      Trace.with_span engine ~layer:"core" ~name:"op" ~key:"" ~phase:Trace.Service
        (fun () ->
          Engine.fork (fun () ->
              Trace.with_span engine ~layer:"kernel" ~name:"bdi_flush" ~key:""
                ~phase:Trace.Service (fun () -> Engine.sleep 0.5));
          Engine.sleep 1.0));
  Engine.run engine;
  match Obs.cspans obs with
  | [ root; child ] ->
      check_str "forked child layer" "kernel" child.Obs.cs_layer;
      check_int "forked child parents under forker's span" root.Obs.cs_id
        child.Obs.cs_parent
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_queue_handoff_with_parent () =
  (* the IPC pattern: the caller's span id travels inside the queued
     request and the service side restores it with [with_parent] *)
  let engine = Engine.create () in
  let obs = Engine.obs engine in
  Obs.set_tracing obs true;
  let handed = ref 0 in
  Engine.spawn engine (fun () ->
      let id =
        Trace.enter engine ~layer:"core" ~name:"op" ~key:"" ~phase:Trace.Service
      in
      handed := id;
      Engine.sleep 2.0;
      Trace.exit engine id);
  Engine.spawn engine (fun () ->
      Engine.sleep 1.0;
      Trace.with_parent !handed (fun () ->
          Trace.emit engine ~layer:"ipc" ~name:"ring_wait" ~key:""
            ~phase:Trace.Queue_wait ~start:0.5 ~dur:0.5));
  Engine.run engine;
  match Obs.cspans obs with
  | [ a; b ] ->
      let root, child = if a.Obs.cs_parent = 0 then (a, b) else (b, a) in
      check_int "queued span parents under the caller" root.Obs.cs_id
        child.Obs.cs_parent;
      check_bool "queue_wait phase" true (child.Obs.cs_phase = Obs.Queue_wait)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_disabled_is_inert () =
  let engine = Engine.create () in
  let obs = Engine.obs engine in
  Engine.spawn engine (fun () ->
      let id =
        Trace.enter engine ~layer:"core" ~name:"op" ~key:"" ~phase:Trace.Service
      in
      check_int "enter returns 0 when off" 0 id;
      Trace.exit engine id;
      Trace.emit engine ~layer:"hw" ~name:"net" ~key:"" ~phase:Trace.Network
        ~start:0.0 ~dur:1.0);
  Engine.run engine;
  check_int "no spans recorded" 0 (List.length (Obs.cspans obs))

let test_merge_offsets_ids () =
  let mk () =
    let o = Obs.create ~tracing:true () in
    let p =
      Obs.begin_span o ~at:0.0 ~parent:0 ~layer:"core" ~name:"op" ~key:"k"
        ~phase:Obs.Service
    in
    ignore
      (Obs.begin_span o ~at:0.5 ~parent:p ~layer:"ipc" ~name:"c" ~key:"k"
         ~phase:Obs.Service);
    List.iter (fun id -> Obs.end_span o ~at:1.0 id) [ p + 1; p ];
    Obs.cspans o
  in
  let merged = Trace.merge [ ("a:", mk ()); ("b:", mk ()) ] in
  check_int "all spans survive" 4 (List.length merged);
  let ids = List.map (fun s -> s.Obs.cs_id) merged in
  check_int "ids unique" 4 (List.length (List.sort_uniq Int.compare ids));
  List.iter
    (fun s ->
      if s.Obs.cs_parent <> 0 then
        check_bool "parent resolves inside the merged set" true
          (List.exists (fun p -> p.Obs.cs_id = s.Obs.cs_parent) merged))
    merged;
  check_bool "keys prefixed" true
    (List.for_all
       (fun s ->
         Astring.String.is_prefix ~affix:"a:" s.Obs.cs_key
         || Astring.String.is_prefix ~affix:"b:" s.Obs.cs_key)
       merged)

(* ------------------------------------------------------------------ *)
(* End-to-end causality through the client stacks *)

(* One 8 MiB write + fsync through a launched container, traced. *)
let traced_write_spans ~config =
  Obs.default_tracing := true;
  Fun.protect
    ~finally:(fun () -> Obs.default_tracing := false)
    (fun () ->
      let tb = Etb.create ~seed:7 ~activated:4 () in
      let pool = Etb.pool tb 0 in
      let ct =
        Danaus.Container_engine.launch tb.Etb.containers ~config ~pool ~id:"tr"
          ~cache_bytes:(4 * 1024 * 1024) ()
      in
      let done_ = ref false in
      Engine.spawn tb.Etb.engine (fun () ->
          let iface = ct.Danaus.Container_engine.view ~thread:0 in
          Testbed.write_file iface ~pool "/trace-me" (8 * 1024 * 1024);
          done_ := true);
      Etb.drive tb ~stop:(fun () -> !done_);
      Obs.cspans tb.Etb.obs)

let descendants spans root =
  let rec grow acc =
    let acc' =
      List.filter
        (fun s ->
          s.Obs.cs_parent <> 0
          && (not (List.memq s acc))
          && List.exists (fun a -> a.Obs.cs_id = s.Obs.cs_parent) (root :: acc))
        spans
      @ acc
    in
    if List.length acc' = List.length acc then acc else grow acc'
  in
  grow []

let check_write_causality ~config ~expect_layer =
  let spans = traced_write_spans ~config in
  check_bool "spans were recorded" true (spans <> []);
  (* every parent link resolves *)
  List.iter
    (fun s ->
      if s.Obs.cs_parent <> 0 then
        check_bool "parent link resolves" true
          (List.exists (fun p -> p.Obs.cs_id = s.Obs.cs_parent) spans))
    spans;
  let roots =
    List.filter
      (fun s -> s.Obs.cs_layer = "core" && s.Obs.cs_parent = 0)
      spans
  in
  check_bool "core roots exist" true (roots <> []);
  let writes =
    List.filter (fun (s : Obs.cspan) -> s.Obs.cs_name = "op:write") roots
  in
  check_bool "op:write roots exist" true (writes <> []);
  (* the op's time decomposes into per-layer work: some write or fsync
     root must reach the configuration's transport layer and the
     hardware below it *)
  let interesting =
    List.filter
      (fun (s : Obs.cspan) ->
        s.Obs.cs_name = "op:write" || s.Obs.cs_name = "op:fsync")
      roots
  in
  let reaches layer =
    List.exists
      (fun r ->
        List.exists (fun d -> d.Obs.cs_layer = layer) (descendants spans r))
      interesting
  in
  check_bool (expect_layer ^ " layer reached") true (reaches expect_layer);
  check_bool "hw layer reached" true (reaches "hw")

let test_write_causality_d () =
  check_write_causality ~config:Danaus.Config.d ~expect_layer:"ipc"

let test_write_causality_k () =
  check_write_causality ~config:Danaus.Config.k ~expect_layer:"kernel"

let test_write_causality_f () =
  check_write_causality ~config:Danaus.Config.f ~expect_layer:"kernel"

(* ------------------------------------------------------------------ *)
(* Attribution *)

let test_attribution_sums_to_e2e () =
  let spans = traced_write_spans ~config:Danaus.Config.d in
  let a = Trace.attribute spans in
  check_bool "ops attributed" true (a.Trace.at_ops > 0);
  check_bool "rows present" true (a.Trace.at_rows <> []);
  check_bool
    (Printf.sprintf "phase sums match e2e (residual %g)" a.Trace.at_max_residual)
    true
    (a.Trace.at_max_residual < 1e-9);
  let share = List.fold_left (fun s r -> s +. r.Trace.ar_share) 0.0 a.Trace.at_rows in
  check_bool "shares sum to 1" true (Float.abs (share -. 1.0) < 1e-6);
  check_bool "e2e total positive" true (a.Trace.at_e2e_total > 0.0)

let test_attribution_empty () =
  let a = Trace.attribute [] in
  check_int "no ops" 0 a.Trace.at_ops;
  check_bool "no rows" true (a.Trace.at_rows = [])

(* ------------------------------------------------------------------ *)
(* Determinism *)

let test_traced_run_deterministic () =
  let a = traced_write_spans ~config:Danaus.Config.d in
  let b = traced_write_spans ~config:Danaus.Config.d in
  check_int "same span count" (List.length a) (List.length b);
  List.iter2
    (fun (x : Obs.cspan) (y : Obs.cspan) ->
      check_bool "identical spans across repeats" true
        (x.Obs.cs_id = y.Obs.cs_id
        && x.Obs.cs_parent = y.Obs.cs_parent
        && x.Obs.cs_layer = y.Obs.cs_layer
        && x.Obs.cs_name = y.Obs.cs_name
        && x.Obs.cs_key = y.Obs.cs_key
        && x.Obs.cs_phase = y.Obs.cs_phase
        && x.Obs.cs_start = y.Obs.cs_start
        && x.Obs.cs_dur = y.Obs.cs_dur))
    a b

let test_parallel_runner_byte_identity () =
  (* the full CLI artifact path: chrome trace + timeseries JSON must be
     byte-identical whether the registry runs on 1 domain or 4 *)
  Obs.default_tracing := true;
  Obs.default_sample_period := Some 1.0;
  Fun.protect
    ~finally:(fun () ->
      Obs.default_tracing := false;
      Obs.default_sample_period := None)
    (fun () ->
      let exps =
        List.filter_map Danaus_experiments.Registry.find [ "tab2"; "fault-osd" ]
      in
      check_int "experiments found" 2 (List.length exps);
      let artifacts ~jobs =
        let results =
          Danaus_experiments.Registry.run_exps ~jobs ~seed:7 ~quick:true exps
        in
        let reports = List.concat_map snd results in
        ( Danaus_experiments.Trace_export.chrome_json reports,
          Danaus_experiments.Report.timeseries_json reports )
      in
      let c1, t1 = artifacts ~jobs:1 in
      let c4, t4 = artifacts ~jobs:4 in
      check_bool "chrome trace byte-identical across jobs" true (c1 = c4);
      check_bool "timeseries byte-identical across jobs" true (t1 = t4);
      check_bool "chrome trace non-trivial" true (String.length c1 > 200);
      check_bool "timeseries non-trivial" true (String.length t1 > 50))

(* ------------------------------------------------------------------ *)
(* Chrome export golden *)

let test_chrome_export_golden () =
  let o = Obs.create ~tracing:true () in
  let root =
    Obs.begin_span o ~at:1.0 ~parent:0 ~layer:"core" ~name:"op:write"
      ~key:"pool0" ~phase:Obs.Service
  in
  Obs.emit_span o ~at:1.25 ~parent:root ~layer:"ipc" ~name:"ipc_call"
    ~key:"pool0" ~phase:Obs.Service ~dur:0.5;
  Obs.emit_span o ~at:1.3 ~parent:root ~layer:"hw" ~name:"pool0"
    ~key:"core0" ~phase:Obs.Service ~dur:0.1;
  Obs.end_span o ~at:2.0 root;
  let report =
    Danaus_experiments.Report.make ~id:"g" ~title:"golden"
      ~header:[ "a" ] ~spans:(Obs.cspans o)
      [ [ "1" ] ]
  in
  let got = Danaus_experiments.Trace_export.chrome_json [ report ] in
  let expected =
    "{\"traceEvents\":[\n\
     {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"cores\"}},\n\
     {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"g:core0\"}},\n\
     {\"name\":\"pool0\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1300000,\"dur\":100000,\"args\":{\"layer\":\"hw\",\"phase\":\"service\",\"key\":\"core0\"}},\n\
     {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"args\":{\"name\":\"g:pool0\"}},\n\
     {\"name\":\"op:write\",\"cat\":\"op\",\"ph\":\"b\",\"id\":\"g:1\",\"pid\":2,\"tid\":0,\"ts\":1000000,\"args\":{\"layer\":\"core\",\"phase\":\"service\",\"key\":\"pool0\"}},\n\
     {\"name\":\"ipc_call\",\"cat\":\"op\",\"ph\":\"b\",\"id\":\"g:1\",\"pid\":2,\"tid\":0,\"ts\":1250000,\"args\":{\"layer\":\"ipc\",\"phase\":\"service\",\"key\":\"pool0\"}},\n\
     {\"name\":\"ipc_call\",\"cat\":\"op\",\"ph\":\"e\",\"id\":\"g:1\",\"pid\":2,\"tid\":0,\"ts\":1750000},\n\
     {\"name\":\"op:write\",\"cat\":\"op\",\"ph\":\"e\",\"id\":\"g:1\",\"pid\":2,\"tid\":0,\"ts\":2000000}\n\
     ]}\n"
  in
  check_str "golden chrome JSON" expected got

(* ------------------------------------------------------------------ *)
(* Sampler *)

let test_sampler_ticks () =
  let o = Obs.create () in
  let c = Obs.counter o ~layer:"hw" ~name:"ops" ~key:"b" in
  let c2 = Obs.counter o ~layer:"hw" ~name:"ops" ~key:"a" in
  let g = Obs.gauge o ~layer:"kernel" ~name:"dirty" ~key:"" in
  let h = Obs.histogram o ~layer:"sim" ~name:"wait" ~key:"" in
  Obs.observe h 1.0;
  let s = Obs.Sampler.create o ~period:0.5 in
  Obs.add c 3.0;
  Obs.set g 7.0;
  Obs.Sampler.tick s ~now:0.5;
  Obs.add c 1.0;
  Obs.incr c2;
  Obs.Sampler.tick s ~now:1.0;
  (match Obs.Sampler.points s with
  | [ p1; p2 ] ->
      Alcotest.(check (float 0.0)) "first tick time" 0.5 p1.Obs.Sampler.pt_time;
      check_int "histograms excluded" 3 (List.length p1.Obs.Sampler.pt_samples);
      (match p1.Obs.Sampler.pt_samples with
      | [ a; b; _ ] ->
          check_str "sorted by key" "a" a.Obs.s_key;
          check_bool "zero before first incr" true (a.Obs.s_value = Obs.Counter 0.0);
          check_bool "counter sampled" true (b.Obs.s_value = Obs.Counter 3.0)
      | _ -> Alcotest.fail "wrong sample shape");
      (match p2.Obs.Sampler.pt_samples with
      | b :: _ -> check_bool "second tick sees the increment" true
          (b.Obs.s_value = Obs.Counter 1.0)
      | [] -> Alcotest.fail "empty second tick")
  | pts -> Alcotest.failf "expected 2 points, got %d" (List.length pts));
  Alcotest.check_raises "period must be positive"
    (Invalid_argument "Obs.Sampler.create: period <= 0") (fun () ->
      ignore (Obs.Sampler.create o ~period:0.0))

let test_sampler_prefix_and_testbed () =
  Obs.default_sample_period := Some 0.5;
  Fun.protect
    ~finally:(fun () -> Obs.default_sample_period := None)
    (fun () ->
      let tb = Etb.create ~seed:3 ~activated:2 () in
      let points = Etb.start_sampler tb in
      let c = Obs.counter tb.Etb.obs ~layer:"hw" ~name:"ops" ~key:"x" in
      Obs.add c 2.0;
      Engine.run_until tb.Etb.engine 2.1;
      let pts = points () in
      check_int "4 periods elapsed" 4 (List.length pts);
      let prefixed = Obs.Sampler.prefix_keys "cell:" pts in
      List.iter
        (fun p ->
          List.iter
            (fun s ->
              check_bool "prefixed" true
                (Astring.String.is_prefix ~affix:"cell:" s.Obs.s_key))
            p.Obs.Sampler.pt_samples)
        prefixed)

(* ------------------------------------------------------------------ *)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "trace.primitives",
      [
        tc "nesting and parent links" `Quick test_span_nesting_and_parents;
        tc "fork inherits current span" `Quick test_fork_inherits_current_span;
        tc "queue handoff via with_parent" `Quick test_queue_handoff_with_parent;
        tc "inert when disabled" `Quick test_disabled_is_inert;
        tc "merge offsets ids and prefixes keys" `Quick test_merge_offsets_ids;
      ] );
    ( "trace.causality",
      [
        tc "D write reaches ipc and hw" `Quick test_write_causality_d;
        tc "K write reaches kernel and hw" `Quick test_write_causality_k;
        tc "F write reaches kernel and hw" `Quick test_write_causality_f;
      ] );
    ( "trace.attribution",
      [
        tc "phase sums equal e2e" `Quick test_attribution_sums_to_e2e;
        tc "empty input" `Quick test_attribution_empty;
      ] );
    ( "trace.determinism",
      [
        tc "identical spans across repeats" `Quick test_traced_run_deterministic;
        tc "byte-identical artifacts at -j1 and -j4" `Slow
          test_parallel_runner_byte_identity;
      ] );
    ( "trace.export",
      [ tc "golden chrome JSON" `Quick test_chrome_export_golden ] );
    ( "trace.sampler",
      [
        tc "tick snapshots counters and gauges" `Quick test_sampler_ticks;
        tc "testbed sampler and prefixing" `Quick test_sampler_prefix_and_testbed;
      ] );
  ]
