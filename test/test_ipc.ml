(* Tests for the user-level IPC: rings, shared memory segments and the
   Danaus transport. *)

open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_ipc
open Testbed

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring_fifo () =
  let e = Engine.create () in
  let r = Ring.create e ~slots:4 in
  let got = ref [] in
  Engine.spawn e (fun () ->
      for i = 1 to 10 do
        Ring.enqueue r i
      done);
  Engine.spawn e (fun () ->
      for _ = 1 to 10 do
        got := Ring.dequeue r :: !got;
        Engine.sleep 0.01
      done);
  Engine.run e;
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] (List.rev !got);
  check_int "all enqueued" 10 (Ring.total_enqueued r);
  check_int "empty at end" 0 (Ring.length r)

let test_ring_blocks_producer_when_full () =
  let e = Engine.create () in
  let r = Ring.create e ~slots:2 in
  let third_at = ref (-1.0) in
  Engine.spawn e (fun () ->
      Ring.enqueue r 1;
      Ring.enqueue r 2;
      Ring.enqueue r 3;
      third_at := Engine.time ());
  Engine.spawn e (fun () ->
      Engine.sleep 5.0;
      ignore (Ring.dequeue r));
  Engine.run e;
  Alcotest.(check (float 1e-6)) "blocked until slot freed" 5.0 !third_at;
  check_int "high water is ring size" 2 (Ring.high_water r)

let prop_ring_order_and_conservation =
  QCheck.Test.make ~name:"ring preserves order for any slot count" ~count:100
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(int_range 0 40) int))
    (fun (slots, xs) ->
      let e = Engine.create () in
      let r = Ring.create e ~slots in
      let got = ref [] in
      Engine.spawn e (fun () -> List.iter (Ring.enqueue r) xs);
      Engine.spawn e (fun () ->
          for _ = 1 to List.length xs do
            got := Ring.dequeue r :: !got
          done);
      Engine.run e;
      List.rev !got = xs)

(* ------------------------------------------------------------------ *)
(* Shm *)

let test_shm_accounting () =
  let pool = pool_of () in
  let seg = Shm.create ~pool ~name:"seg0" ~bytes:4096 in
  check_int "charged to pool" 4096 (Memory.used (Cgroup.memory pool));
  Shm.destroy seg;
  Shm.destroy seg;
  check_int "freed once" 0 (Memory.used (Cgroup.memory pool))

(* ------------------------------------------------------------------ *)
(* Transport *)

let topo () = Danaus_hw.Topology.paper_machine ()

let make_transport ?(cores = [| 0; 1 |]) w name =
  let pool = pool_of ~name:(name ^ "-pool") ~cores () in
  let tr = Transport.create w.kernel ~pool ~topology:(topo ()) ~name () in
  Transport.start tr;
  (pool, tr)

let test_transport_roundtrip () =
  let w = make_world () in
  let _pool, tr = make_transport w "t0" in
  let result = ref 0 in
  Engine.spawn w.engine (fun () ->
      result := Transport.call tr ~thread:1 ~bytes:4096 (fun () -> 6 * 7));
  Engine.run_until w.engine 1.0;
  check_int "handler result" 42 !result;
  check_int "one request served" 1 (Transport.requests tr)

let test_transport_queue_per_core_group () =
  let w = make_world () in
  (* 4 cores spanning 2 core pairs -> 2 queues *)
  let _pool, tr = make_transport ~cores:[| 0; 1; 2; 3 |] w "t1" in
  check_int "one queue per core group" 2 (Transport.queue_count tr);
  check_int "one service thread each" 2 (Transport.service_threads tr)

let test_transport_thread_pinning () =
  let w = make_world () in
  let _pool, tr = make_transport ~cores:[| 0; 1; 2; 3 |] w "t2" in
  Engine.spawn w.engine (fun () ->
      ignore (Transport.call tr ~thread:1 ~bytes:0 (fun () -> ()));
      ignore (Transport.call tr ~thread:2 ~bytes:0 (fun () -> ()));
      ignore (Transport.call tr ~thread:1 ~bytes:0 (fun () -> ())));
  Engine.run_until w.engine 1.0;
  let c1 = Option.get (Transport.pinned_cores tr ~thread:1) in
  let c2 = Option.get (Transport.pinned_cores tr ~thread:2) in
  check_bool "threads spread across groups" true (c1 <> c2);
  check_int "thread 1 stays pinned" 2 (Array.length c1)

let test_transport_no_kernel_crossing () =
  let w = make_world () in
  let pool, tr = make_transport w "t3" in
  Engine.spawn w.engine (fun () ->
      ignore (Transport.call tr ~thread:1 ~bytes:65536 (fun () -> ())));
  Engine.run_until w.engine 1.0;
  let mode_switches =
    Obs.get (Kernel.obs w.kernel) ~layer:"kernel" ~name:"mode_switches"
      ~key:(Cgroup.name pool)
  in
  Alcotest.(check (float 0.0)) "no mode switches on the fast path" 0.0 mode_switches;
  check_bool "ipc counted" true
    (Obs.get (Kernel.obs w.kernel) ~layer:"ipc" ~name:"ipc_requests"
       ~key:(Cgroup.name pool)
    > 0.0)

let test_transport_scales_service_threads () =
  let w = make_world () in
  let _pool, tr = make_transport w "t4" in
  (* 32 concurrent slow requests on one queue: backlog exceeds the
     threshold and extra service threads appear *)
  for i = 1 to 32 do
    Engine.spawn w.engine (fun () ->
        ignore (Transport.call tr ~thread:i ~bytes:0 (fun () -> Engine.sleep 0.1)))
  done;
  Engine.run_until w.engine 10.0;
  check_bool "service threads scaled up" true (Transport.service_threads tr > 1);
  check_int "all served" 32 (Transport.requests tr)

let test_transport_buffer_memory () =
  let w = make_world () in
  let pool, tr = make_transport w "t5" in
  let base = Memory.used (Cgroup.memory pool) in
  Engine.spawn w.engine (fun () ->
      ignore (Transport.call tr ~thread:1 ~bytes:0 (fun () -> ()));
      ignore (Transport.call tr ~thread:2 ~bytes:0 (fun () -> ())));
  Engine.run_until w.engine 1.0;
  let grown = Memory.used (Cgroup.memory pool) - base in
  check_int "two request buffers allocated" (2 * 1024 * 1024) grown

let suite =
  let tc = Alcotest.test_case in
  [
    ( "ipc.ring",
      [
        tc "FIFO" `Quick test_ring_fifo;
        tc "blocks when full" `Quick test_ring_blocks_producer_when_full;
      ] );
    ("ipc.shm", [ tc "accounting" `Quick test_shm_accounting ]);
    ( "ipc.transport",
      [
        tc "roundtrip" `Quick test_transport_roundtrip;
        tc "queue per core group" `Quick test_transport_queue_per_core_group;
        tc "thread pinning" `Quick test_transport_thread_pinning;
        tc "no kernel crossing" `Quick test_transport_no_kernel_crossing;
        tc "service thread scaling" `Quick test_transport_scales_service_threads;
        tc "request buffer memory" `Quick test_transport_buffer_memory;
      ] );
    ( "ipc.properties",
      List.map QCheck_alcotest.to_alcotest [ prop_ring_order_and_conservation ] );
  ]

let test_transport_queue_capacity_metadata () =
  let w = make_world () in
  let pool = pool_of ~name:"cap-pool" () in
  let tr = Transport.create w.kernel ~pool ~topology:(topo ()) ~name:"cap" ~slots:16 () in
  Transport.start tr;
  check_int "queues" 1 (Transport.queue_count tr);
  check_bool "no pin before use" true (Transport.pinned_cores tr ~thread:9 = None);
  Engine.spawn w.engine (fun () ->
      ignore (Transport.call tr ~thread:9 ~bytes:0 (fun () -> ())));
  Engine.run_until w.engine 1.0;
  check_bool "pinned after first call" true (Transport.pinned_cores tr ~thread:9 <> None)

let cap_suite =
  [ ("ipc.metadata", [ Alcotest.test_case "queue capacity and pinning" `Quick test_transport_queue_capacity_metadata ]) ]

let suite = suite @ cap_suite
