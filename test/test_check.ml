(* Tests for the invariant layer itself (Danaus_check.Check): mode
   semantics, the violation log, span well-formedness problems, and a
   strict-mode integration run that sweeps the page-cache conservation
   laws end to end. *)

open Danaus_sim
module Check = Danaus_check.Check

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The mode is process-global (the whole suite runs strict, see
   test_main.ml): flip it for one test body, always restore. *)
let with_mode m f =
  let saved = Check.mode () in
  Check.set_mode m;
  Fun.protect ~finally:(fun () -> Check.set_mode saved) f

let test_off_is_silent () =
  with_mode Check.Off (fun () ->
      let before = Check.violation_count () in
      Check.require ~layer:"test" ~what:"off_silent" false;
      let evaluated = ref false in
      Check.invariant ~layer:"test" ~what:"off_lazy" (fun () ->
          evaluated := true;
          false);
      check_int "nothing recorded when off" before (Check.violation_count ());
      check_bool "invariant predicate not evaluated when off" false !evaluated)

let test_record_logs_without_raising () =
  with_mode Check.Record (fun () ->
      let before = Check.violation_count () in
      Check.require ~layer:"test" ~what:"record_req"
        ~detail:(fun () -> "d1")
        false;
      Check.invariant ~layer:"test" ~what:"record_inv" (fun () -> false);
      Check.require ~layer:"test" ~what:"record_pass" true;
      check_int "two violations recorded" (before + 2)
        (Check.violation_count ());
      match List.filteri (fun i _ -> i >= before) (Check.violations ()) with
      | [ a; b ] ->
          Alcotest.(check string) "layer" "test" a.Check.v_layer;
          Alcotest.(check string) "what" "record_req" a.Check.v_what;
          Alcotest.(check string) "detail forced on violation" "d1"
            a.Check.v_detail;
          Alcotest.(check string) "second what" "record_inv" b.Check.v_what
      | _ -> Alcotest.fail "expected exactly two new violations")

let test_strict_raises_at_violation () =
  with_mode Check.Strict (fun () ->
      let raised =
        match Check.require ~layer:"test" ~what:"strict_req" false with
        | () -> false
        | exception Check.Violation v ->
            v.Check.v_layer = "test" && v.Check.v_what = "strict_req"
      in
      check_bool "strict require raises" true raised;
      check_bool "violation still recorded" true
        (List.exists
           (fun v -> v.Check.v_what = "strict_req")
           (Check.violations ())))

let test_precondition_always_raises () =
  with_mode Check.Off (fun () ->
      let raised =
        match
          Check.precondition ~layer:"test" ~what:"pre"
            ~detail:(fun () -> "bad arg")
            false
        with
        | () -> false
        | exception Check.Violation v ->
            v.Check.v_layer = "test" && v.Check.v_detail = "bad arg"
      in
      check_bool "precondition raises even when mode is Off" true raised);
  Check.precondition ~layer:"test" ~what:"pre" true

let test_violation_counter_in_obs () =
  with_mode Check.Record (fun () ->
      let e = Engine.create () in
      let obs = Engine.obs e in
      Check.require ~obs ~layer:"test" ~what:"counted" false;
      let snap = Obs.snapshot obs in
      check_bool "check/violations counter keyed by layer:what" true
        (List.exists
           (fun s ->
             s.Obs.s_layer = "check" && s.Obs.s_name = "violations"
             && s.Obs.s_key = "test:counted"
             && s.Obs.s_value = Obs.Counter 1.0)
           snap))

(* ------------------------------------------------------------------ *)
(* Span well-formedness problems *)

let span ?(id = 1) ?(parent = 0) ?(start = 0.0) ?(dur = 1.0) () =
  {
    Obs.cs_id = id;
    cs_parent = parent;
    cs_layer = "test";
    cs_name = "op";
    cs_key = "k";
    cs_phase = Obs.Service;
    cs_start = start;
    cs_dur = dur;
  }

let test_span_problems () =
  check_int "well-formed tree has no problems" 0
    (List.length
       (Check.span_problems
          [
            span ~id:1 ~start:0.0 ~dur:2.0 ();
            span ~id:2 ~parent:1 ~start:0.5 ~dur:1.0 ();
          ]));
  check_bool "duplicate ids detected" true
    (Check.span_problems [ span ~id:3 (); span ~id:3 () ] <> []);
  check_bool "open span (negative dur) detected" true
    (Check.span_problems [ span ~id:4 ~dur:(-1.0) () ] <> []);
  check_bool "parent after child detected" true
    (Check.span_problems [ span ~id:5 ~parent:9 (); span ~id:9 () ] <> []);
  check_bool "child starting before parent detected" true
    (Check.span_problems
       [ span ~id:1 ~start:1.0 (); span ~id:2 ~parent:1 ~start:0.5 () ]
    <> [])

(* ------------------------------------------------------------------ *)
(* Strict end-to-end sweep: run real traffic through the kernel client
   with every conservation law armed.  This is the test that catches a
   corrupted page-cache accounting (e.g. a skipped dirty-counter
   decrement) directly in `dune runtest`. *)

let test_strict_end_to_end () =
  with_mode Check.Strict (fun () ->
      let open Danaus_experiments in
      let tb = Testbed.create ~seed:5 ~activated:2 () in
      let pool = Testbed.pool tb 0 in
      let ct =
        Danaus.Container_engine.launch tb.Testbed.containers
          ~config:Danaus.Config.k ~pool ~id:"chk" ()
      in
      let done_ = ref false in
      Engine.spawn tb.Testbed.engine (fun () ->
          let ctx = Testbed.ctx tb ~pool ~seed:1 in
          let p =
            {
              Danaus_workloads.Seqio.file_size = 4 * 1024 * 1024;
              threads = 2;
              duration = 2.0;
              io_chunk = 1024 * 1024;
              path = "/chk/stream";
            }
          in
          ignore
            (Danaus_workloads.Seqio.run_write ctx
               ~view:ct.Danaus.Container_engine.view p);
          ignore
            (Danaus_workloads.Seqio.run_read ctx
               ~view:ct.Danaus.Container_engine.view p);
          done_ := true);
      Testbed.drive tb ~stop:(fun () -> !done_);
      (* the drive ends with a whole-testbed invariant sweep; reaching
         this point in strict mode means every law held *)
      check_bool "strict run completed" true !done_)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "check.invariant",
      [
        tc "Off is silent and lazy" `Quick test_off_is_silent;
        tc "Record logs without raising" `Quick test_record_logs_without_raising;
        tc "Strict raises at the violation" `Quick test_strict_raises_at_violation;
        tc "preconditions always raise" `Quick test_precondition_always_raises;
        tc "violations counted in Obs" `Quick test_violation_counter_in_obs;
        tc "span problems" `Quick test_span_problems;
        tc "strict end-to-end sweep" `Quick test_strict_end_to_end;
      ] );
  ]
