let () =
  Alcotest.run "danaus"
    (Test_sim.suite @ Test_hw.suite @ Test_kernel.suite @ Test_ceph.suite
   @ Test_client.suite @ Test_union.suite @ Test_ipc.suite @ Test_core.suite
   @ Test_workloads.suite @ Test_faults.suite @ Test_qos.suite @ Test_trace.suite
   @ Test_integration.suite)
