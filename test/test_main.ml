let () =
  (* the whole suite runs with the invariant layer strict: any
     conservation-law violation anywhere in a test's simulation raises
     at the point of violation instead of passing silently *)
  Danaus_check.Check.set_mode Danaus_check.Check.Strict;
  Alcotest.run "danaus"
    (Test_sim.suite @ Test_hw.suite @ Test_kernel.suite @ Test_ceph.suite
   @ Test_client.suite @ Test_union.suite @ Test_ipc.suite @ Test_core.suite
   @ Test_workloads.suite @ Test_faults.suite @ Test_qos.suite @ Test_trace.suite
   @ Test_integration.suite @ Test_check.suite @ Test_sched.suite
   @ Test_recovery.suite)
