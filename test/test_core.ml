(* Tests for the Danaus core: mount tables, Table 1 configs, the
   filesystem service (default + legacy paths), the filesystem library
   and the container engine. *)

open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_ceph
open Danaus_client
open Danaus
open Testbed

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let topo = Topology.paper_machine ()

(* ------------------------------------------------------------------ *)
(* Mount_table / Config *)

let test_mount_table_longest_prefix () =
  let mt = Mount_table.create () in
  Mount_table.add mt ~mount_point:"/" 1;
  Mount_table.add mt ~mount_point:"/data" 2;
  Mount_table.add mt ~mount_point:"/data/logs" 3;
  (match Mount_table.resolve mt "/data/logs/x" with
  | Some (3, "/x") -> ()
  | Some (v, rest) -> Alcotest.failf "got (%d, %s)" v rest
  | None -> Alcotest.fail "no resolution");
  (match Mount_table.resolve mt "/data/other" with
  | Some (2, "/other") -> ()
  | _ -> Alcotest.fail "wrong branch");
  (match Mount_table.resolve mt "/etc/passwd" with
  | Some (1, "/etc/passwd") -> ()
  | _ -> Alcotest.fail "root fallback");
  match Mount_table.resolve mt "/data" with
  | Some (2, "/") -> ()
  | _ -> Alcotest.fail "exact mount point"

let test_mount_table_no_match () =
  let mt = Mount_table.create () in
  Mount_table.add mt ~mount_point:"/data" 1;
  check_bool "no match outside mounts" true (Mount_table.resolve mt "/etc" = None);
  check_bool "prefix is component-wise" true (Mount_table.resolve mt "/database" = None)

let test_config_table () =
  check_int "8 configurations" 8 (List.length Config.all);
  (match Config.of_label "FP/FP" with
  | Some c ->
      check_bool "FP/FP client" true (c.Config.client = Config.Ceph_fuse_pagecache);
      check_bool "FP/FP union" true (c.Config.union_transport = Config.Fuse_pagecache_u)
  | None -> Alcotest.fail "FP/FP missing");
  check_bool "unknown label" true (Config.of_label "X" = None);
  let rendered = Config.table1 () in
  List.iter
    (fun c ->
      check_bool (c.Config.label ^ " in table") true
        (Astring.String.is_infix ~affix:c.Config.label rendered))
    Config.all

(* ------------------------------------------------------------------ *)
(* Fs_service *)

let make_service w pool name =
  Fs_service.create w.kernel ~pool ~topology:topo ~name

let test_service_default_path () =
  let w = make_world () in
  let pool = pool_of () in
  let lib = make_lib_client w pool "c0" in
  let instance = Lib_client.iface lib in
  let svc = make_service w pool "svc0" in
  Fs_service.add_instance svc ~mount_point:"/ct0" instance;
  let view = Fs_service.view svc ~instance ~thread:1 in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (view.Client_intf.open_file ~pool "/f" Client_intf.flags_wo) in
      ok_or_fail "write" (view.Client_intf.write ~pool fd ~off:0 ~len:4096);
      check_int "read back" 4096
        (ok_or_fail "read" (view.Client_intf.read ~pool fd ~off:0 ~len:4096));
      view.Client_intf.close ~pool fd);
  Engine.run_until w.engine 30.0;
  check_bool "requests went through the IPC transport" true (Fs_service.requests svc >= 4);
  (* fast path never entered the kernel *)
  Alcotest.(check (float 0.0)) "no FUSE requests" 0.0
    (Obs.get (Kernel.obs w.kernel) ~layer:"kernel" ~name:"fuse_requests" ~key:"pool0")

let test_service_legacy_path_dispatch () =
  let w = make_world () in
  let pool = pool_of () in
  let lib = make_lib_client w pool "c0" in
  let instance = Lib_client.iface lib in
  let svc = make_service w pool "svc0" in
  Fs_service.add_instance svc ~mount_point:"/ct0" instance;
  let legacy = Fs_service.legacy_iface svc in
  Engine.spawn w.engine (fun () ->
      (* create via the default path, read via the legacy path *)
      let view = Fs_service.view svc ~instance ~thread:1 in
      let fd = ok_or_fail "open" (view.Client_intf.open_file ~pool "/bin/app" Client_intf.flags_wo) in
      ok_or_fail "write" (view.Client_intf.write ~pool fd ~off:0 ~len:8192);
      view.Client_intf.close ~pool fd;
      let lfd =
        ok_or_fail "legacy open"
          (legacy.Client_intf.open_file ~pool "/ct0/bin/app" Client_intf.flags_ro)
      in
      check_int "legacy read" 8192
        (ok_or_fail "read" (legacy.Client_intf.read ~pool lfd ~off:0 ~len:8192));
      legacy.Client_intf.close ~pool lfd);
  Engine.run_until w.engine 30.0;
  check_bool "legacy path crossed FUSE" true
    (Obs.get (Kernel.obs w.kernel) ~layer:"kernel" ~name:"fuse_requests" ~key:"pool0" >= 3.0)

let test_service_legacy_unknown_mount () =
  let w = make_world () in
  let pool = pool_of () in
  let svc = make_service w pool "svc0" in
  let legacy = Fs_service.legacy_iface svc in
  Engine.spawn w.engine (fun () ->
      match legacy.Client_intf.stat ~pool "/nope/f" with
      | Error (Client_intf.Fs Namespace.No_entry) -> ()
      | _ -> Alcotest.fail "expected ENOENT on unknown mount");
  Engine.run_until w.engine 10.0

(* ------------------------------------------------------------------ *)
(* Fs_library *)

let test_library_routes_and_fallback () =
  let w = make_world () in
  let pool = pool_of () in
  let lib = make_lib_client w pool "c0" in
  let instance = Lib_client.iface lib in
  let svc = make_service w pool "svc0" in
  Fs_service.add_instance svc ~mount_point:"/mnt" instance;
  (* the legacy side is a second, separate client *)
  let legacy_client = make_lib_client w pool "legacy" in
  let flib =
    Fs_library.create ~mounts:[ ("/mnt", (svc, instance)) ]
      ~legacy:(Lib_client.iface legacy_client)
  in
  let i = Fs_library.iface flib ~thread:7 in
  Engine.spawn w.engine (fun () ->
      (* mounted path: served by the service *)
      let fd = ok_or_fail "open" (i.Client_intf.open_file ~pool "/mnt/a" Client_intf.flags_wo) in
      ok_or_fail "write" (i.Client_intf.write ~pool fd ~off:0 ~len:1024);
      check_int "lib fds tracked" 1 (Fs_library.open_files flib);
      i.Client_intf.close ~pool fd;
      check_int "fd released" 0 (Fs_library.open_files flib);
      (* unmounted path: falls through to the legacy client *)
      let fd2 = ok_or_fail "open2" (i.Client_intf.open_file ~pool "/tmp/x" Client_intf.flags_wo) in
      ok_or_fail "write2" (i.Client_intf.write ~pool fd2 ~off:0 ~len:512);
      i.Client_intf.close ~pool fd2;
      (* the file landed in the legacy client's view of the cluster *)
      check_bool "legacy file exists" true
        (Result.is_ok ((Lib_client.iface legacy_client).Client_intf.stat ~pool "/tmp/x")));
  Engine.run_until w.engine 30.0;
  check_bool "mounted I/O used the transport" true (Fs_service.requests svc >= 2)

(* ------------------------------------------------------------------ *)
(* Container_engine *)

let make_engine w = Container_engine.create ~kernel:w.kernel ~cluster:w.cluster ~topology:topo

let smoke_config config =
  let w = make_world () in
  let engine = make_engine w in
  let pool = pool_of () in
  Container_engine.install_image engine ~name:"debian"
    ~files:[ ("/etc/passwd", 1024); ("/bin/sh", 65536) ];
  let ct =
    Container_engine.launch engine ~config ~pool ~id:"ct0" ~image:"debian" ()
  in
  Engine.spawn w.engine (fun () ->
      let i = ct.Container_engine.view ~thread:1 in
      (* image file visible through the union *)
      let a = ok_or_fail "stat image file" (i.Client_intf.stat ~pool "/etc/passwd") in
      check_int (config.Config.label ^ ": image size") 1024 a.Namespace.size;
      (* write a private file *)
      let fd = ok_or_fail "open" (i.Client_intf.open_file ~pool "/var/log" Client_intf.flags_wo) in
      ok_or_fail "write" (i.Client_intf.write ~pool fd ~off:0 ~len:4096);
      check_int
        (config.Config.label ^ ": read back")
        4096
        (ok_or_fail "read" (i.Client_intf.read ~pool fd ~off:0 ~len:4096));
      i.Client_intf.close ~pool fd;
      (* the legacy path sees the same root *)
      let lfd =
        ok_or_fail "legacy open"
          (ct.Container_engine.legacy.Client_intf.open_file ~pool "/etc/passwd"
             Client_intf.flags_ro)
      in
      check_int
        (config.Config.label ^ ": legacy read")
        1024
        (ok_or_fail "legacy read" (ct.Container_engine.legacy.Client_intf.read ~pool lfd ~off:0 ~len:4096));
      ct.Container_engine.legacy.Client_intf.close ~pool lfd);
  Engine.run_until w.engine 120.0;
  check_int "no stuck processes" 0
    (max 0 (Engine.live_processes w.engine - 1000000))

let test_all_configs_smoke () = List.iter smoke_config Config.all

let test_clones_share_client () =
  let w = make_world () in
  let engine = make_engine w in
  let pool = pool_of ~cores:[| 0; 1; 2; 3 |] () in
  Container_engine.install_image engine ~name:"img" ~files:[ ("/app", 4096) ];
  let c1 = Container_engine.launch engine ~config:Config.d ~pool ~id:"a" ~image:"img" () in
  let c2 = Container_engine.launch engine ~config:Config.d ~pool ~id:"b" ~image:"img" () in
  check_bool "one shared client" true
    (Container_engine.client_of engine ~pool ~config:Config.d <> None);
  check_bool "one shared service" true
    (Container_engine.service_of engine ~pool ~config:Config.d <> None);
  Engine.spawn w.engine (fun () ->
      let i1 = c1.Container_engine.view ~thread:1 in
      let i2 = c2.Container_engine.view ~thread:2 in
      (* both clones read the shared image file; the shared client caches
         it once *)
      let fd1 = ok_or_fail "open1" (i1.Client_intf.open_file ~pool "/app" Client_intf.flags_ro) in
      ignore (ok_or_fail "read1" (i1.Client_intf.read ~pool fd1 ~off:0 ~len:4096));
      let fd2 = ok_or_fail "open2" (i2.Client_intf.open_file ~pool "/app" Client_intf.flags_ro) in
      ignore (ok_or_fail "read2" (i2.Client_intf.read ~pool fd2 ~off:0 ~len:4096));
      (* writes are private: a's upper branch does not leak into b *)
      let wfd = ok_or_fail "openw" (i1.Client_intf.open_file ~pool "/private" Client_intf.flags_wo) in
      ok_or_fail "write" (i1.Client_intf.write ~pool wfd ~off:0 ~len:100);
      i1.Client_intf.close ~pool wfd;
      match i2.Client_intf.stat ~pool "/private" with
      | Error (Client_intf.Fs Namespace.No_entry) -> ()
      | _ -> Alcotest.fail "write leaked across clones");
  Engine.run_until w.engine 120.0;
  (* user cache bounded: the image block cached once, not twice *)
  check_bool "shared cache holds one copy" true (c1.Container_engine.user_memory () <= 65536 * 4);
  check_bool "same memory view from both clones" true
    (c1.Container_engine.user_memory () = c2.Container_engine.user_memory ())

let test_scaleout_private_clients () =
  let w = make_world () in
  let engine = make_engine w in
  let p0 = pool_of ~name:"p0" ~cores:[| 0; 1 |] () in
  let p1 = pool_of ~name:"p1" ~cores:[| 2; 3 |] () in
  let _c0 = Container_engine.launch engine ~config:Config.d ~pool:p0 ~id:"x" () in
  let _c1 = Container_engine.launch engine ~config:Config.d ~pool:p1 ~id:"y" () in
  let cl0 = Container_engine.client_of engine ~pool:p0 ~config:Config.d in
  let cl1 = Container_engine.client_of engine ~pool:p1 ~config:Config.d in
  check_bool "distinct clients per pool" true
    (match (cl0, cl1) with
    | Some a, Some b -> a.Client_intf.name <> b.Client_intf.name
    | _ -> false)

let test_danaus_fast_path_no_kernel () =
  let w = make_world () in
  let engine = make_engine w in
  let pool = pool_of () in
  let ct = Container_engine.launch engine ~config:Config.d ~pool ~id:"ct" () in
  Engine.spawn w.engine (fun () ->
      let i = ct.Container_engine.view ~thread:1 in
      let fd = ok_or_fail "open" (i.Client_intf.open_file ~pool "/f" Client_intf.flags_wo) in
      ok_or_fail "write" (i.Client_intf.write ~pool fd ~off:0 ~len:65536);
      ignore (ok_or_fail "read" (i.Client_intf.read ~pool fd ~off:0 ~len:65536));
      i.Client_intf.close ~pool fd);
  Engine.run_until w.engine 30.0;
  Alcotest.(check (float 0.0)) "no FUSE on default path" 0.0
    (Obs.get (Kernel.obs w.kernel) ~layer:"kernel" ~name:"fuse_requests" ~key:"pool0");
  check_bool "IPC requests flowed" true
    (Obs.get (Kernel.obs w.kernel) ~layer:"ipc" ~name:"ipc_requests" ~key:"pool0" > 0.0)

let test_install_image () =
  let w = make_world () in
  let engine = make_engine w in
  Container_engine.install_image engine ~name:"base"
    ~files:[ ("/bin/sh", 100); ("/lib/libc.so", 200) ];
  let ns = Cluster.namespace w.cluster in
  (match Namespace.lookup ns "/images/base/lib/libc.so" with
  | Some a -> check_int "size recorded" 200 a.Namespace.size
  | None -> Alcotest.fail "image file missing");
  check_str "listing" "bin,lib"
    (String.concat ","
       (match Namespace.readdir ns "/images/base" with Ok l -> l | Error _ -> []))

let suite =
  let tc = Alcotest.test_case in
  [
    ( "core.mount_table",
      [
        tc "longest prefix" `Quick test_mount_table_longest_prefix;
        tc "no match" `Quick test_mount_table_no_match;
      ] );
    ("core.config", [ tc "table 1" `Quick test_config_table ]);
    ( "core.fs_service",
      [
        tc "default path via IPC" `Quick test_service_default_path;
        tc "legacy path via FUSE" `Quick test_service_legacy_path_dispatch;
        tc "legacy unknown mount" `Quick test_service_legacy_unknown_mount;
      ] );
    ("core.fs_library", [ tc "routing and fallback" `Quick test_library_routes_and_fallback ]);
    ( "core.container_engine",
      [
        tc "all Table 1 configs boot" `Quick test_all_configs_smoke;
        tc "clones share the client" `Quick test_clones_share_client;
        tc "scaleout private clients" `Quick test_scaleout_private_clients;
        tc "Danaus fast path avoids kernel" `Quick test_danaus_fast_path_no_kernel;
        tc "install image" `Quick test_install_image;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Libservice facade: compose a stack the way §3.1 describes *)

let test_libservice_stacking () =
  let w = make_world () in
  let pool = pool_of () in
  let backend = Libservice.of_client (Lib_client.iface (make_lib_client w pool "ls")) in
  let done_ = ref false in
  Engine.spawn w.engine (fun () ->
      ok_or_fail "mk" (backend.Client_intf.mkdir_p ~pool "/up");
      ok_or_fail "mk" (backend.Client_intf.mkdir_p ~pool "/low");
      write_file backend ~pool "/low/app" 4096;
      (* union libservice over two subtrees of the backend, by function
         calls only *)
      let union =
        Libservice.union_over ~name:"ls-union"
          ~branches:[ (backend, "/up", true); (backend, "/low", false) ]
          ~charge:(pool_charge w) ()
      in
      check_int "lower visible" 4096
        (ok_or_fail "stat" (union.Client_intf.stat ~pool "/app")).Namespace.size;
      (* a subtree view of the union *)
      ignore
        (ok_or_fail "mkdir" (union.Client_intf.mkdir_p ~pool "/data"));
      let scoped = Libservice.subtree ~prefix:"/data" union in
      let fd = ok_or_fail "open" (scoped.Client_intf.open_file ~pool "/x" Client_intf.flags_wo) in
      ok_or_fail "write" (scoped.Client_intf.write ~pool fd ~off:0 ~len:100);
      scoped.Client_intf.close ~pool fd;
      check_bool "wrote through the scoped view" true
        (Result.is_ok (union.Client_intf.stat ~pool "/data/x"));
      (* a FUSE transport in front of the same stack *)
      let fused = Libservice.fuse_transport w.kernel ~pool ~name:"ls-fuse" union in
      check_int "reachable through FUSE" 4096
        (ok_or_fail "stat" (fused.Client_intf.stat ~pool "/app")).Namespace.size;
      done_ := true);
  Engine.run_until w.engine 120.0;
  check_bool "completed" true !done_

let test_kvstore_write_stall () =
  (* throttle the compaction (1 thread, tiny triggers) and hammer puts:
     the L0 stall must engage *)
  let w = make_world () in
  let pool = pool_of () in
  let engine = Container_engine.create ~kernel:w.kernel ~cluster:w.cluster ~topology:topo in
  let ct = Container_engine.launch engine ~config:Config.d ~pool ~id:"stall" () in
  let stalls = ref 0 in
  Engine.spawn w.engine (fun () ->
      let ctx = Testbed_ctx.make w pool in
      let kv =
        Danaus_workloads.Kvstore.create ctx ~view:ct.Container_engine.view
          {
            Danaus_workloads.Kvstore.default_params with
            Danaus_workloads.Kvstore.memtable_bytes = 1024 * 1024;
            compaction_threads = 1;
            l0_compaction_trigger = 2;
            l0_stall_trigger = 3;
            value_bytes = 128 * 1024;
          }
      in
      Danaus_workloads.Kvstore.populate kv ~thread:1 ~bytes:(64 * 1024 * 1024);
      stalls := Danaus_workloads.Kvstore.stalls kv;
      Danaus_workloads.Kvstore.shutdown kv);
  Engine.run_until w.engine 600.0;
  check_bool "writers stalled on L0 depth" true (!stalls > 0)

let test_multi_layer_image () =
  (* stacked image layers: the app layer overrides the base layer, and a
     whiteout in the app layer hides a base file (§2.2) *)
  let w = make_world () in
  let engine = make_engine w in
  let pool = pool_of () in
  Container_engine.install_image engine ~name:"base"
    ~files:[ ("/etc/conf", 100); ("/bin/tool", 500); ("/bin/legacy", 300) ];
  Container_engine.install_image engine ~name:"app"
    ~files:[ ("/etc/conf", 200); ("/bin/.wh.legacy", 0); ("/srv/app", 900) ];
  let ct =
    Container_engine.launch engine ~config:Config.d ~pool ~id:"ml" ~image:"app"
      ~layers:[ "base" ] ()
  in
  Engine.spawn w.engine (fun () ->
      let i = ct.Container_engine.view ~thread:1 in
      check_int "app layer overrides base" 200
        (ok_or_fail "stat" (i.Client_intf.stat ~pool "/etc/conf")).Namespace.size;
      check_int "base layer visible below" 500
        (ok_or_fail "stat" (i.Client_intf.stat ~pool "/bin/tool")).Namespace.size;
      check_int "app-only file visible" 900
        (ok_or_fail "stat" (i.Client_intf.stat ~pool "/srv/app")).Namespace.size;
      (match i.Client_intf.stat ~pool "/bin/legacy" with
      | Error (Client_intf.Fs Namespace.No_entry) -> ()
      | _ -> Alcotest.fail "app-layer whiteout ignored");
      Alcotest.(check (list string)) "merged /bin" [ "tool" ]
        (ok_or_fail "readdir" (i.Client_intf.readdir ~pool "/bin")));
  Engine.run_until w.engine 60.0

let test_multiple_services_per_tenant () =
  (* §5 flexibility: one tenant, two filesystem services with distinct
     cache settings, both mounted into one process's library state *)
  let w = make_world () in
  let pool = pool_of () in
  let fast_client = make_lib_client ~cache:(mib 512) w pool "fastc" in
  let small_client = make_lib_client ~cache:(mib 16) w pool "smallc" in
  let svc1 = make_service w pool "svc-fast" in
  let svc2 = make_service w pool "svc-small" in
  let i1 = Lib_client.iface fast_client and i2 = Lib_client.iface small_client in
  Fs_service.add_instance svc1 ~mount_point:"/fast" i1;
  Fs_service.add_instance svc2 ~mount_point:"/small" i2;
  let flib =
    Fs_library.create
      ~mounts:[ ("/fast", (svc1, i1)); ("/small", (svc2, i2)) ]
      ~legacy:i1
  in
  let i = Fs_library.iface flib ~thread:1 in
  Engine.spawn w.engine (fun () ->
      let fd1 = ok_or_fail "open fast" (i.Client_intf.open_file ~pool "/fast/a" Client_intf.flags_wo) in
      ok_or_fail "write fast" (i.Client_intf.write ~pool fd1 ~off:0 ~len:(mib 4));
      let fd2 = ok_or_fail "open small" (i.Client_intf.open_file ~pool "/small/b" Client_intf.flags_wo) in
      ok_or_fail "write small" (i.Client_intf.write ~pool fd2 ~off:0 ~len:(mib 4));
      i.Client_intf.close ~pool fd1;
      i.Client_intf.close ~pool fd2;
      (* each service's client cached its own file under its own limit *)
      check_bool "fast cache holds it all" true
        (Lib_client.cache_used fast_client >= mib 4);
      check_bool "small cache bounded" true
        (Lib_client.cache_used small_client <= mib 17));
  Engine.run_until w.engine 120.0;
  check_bool "both services served requests" true
    (Fs_service.requests svc1 > 0 && Fs_service.requests svc2 > 0)

let extra_core_suite =
  let tc = Alcotest.test_case in
  [
    ( "core.libservice",
      [
        tc "stacking facade" `Quick test_libservice_stacking;
        tc "kvstore write stall" `Quick test_kvstore_write_stall;
        tc "multiple services per tenant" `Quick test_multiple_services_per_tenant;
        tc "multi-layer image" `Quick test_multi_layer_image;
      ] );
  ]

let suite = suite @ extra_core_suite

let test_library_fd_ops_via_mount () =
  let w = make_world () in
  let pool = pool_of () in
  let lib = make_lib_client w pool "cfd" in
  let instance = Lib_client.iface lib in
  let svc = make_service w pool "svcfd" in
  Fs_service.add_instance svc ~mount_point:"/m" instance;
  let flib = Fs_library.create ~mounts:[ ("/m", (svc, instance)) ] ~legacy:instance in
  let i = Fs_library.iface flib ~thread:1 in
  Engine.spawn w.engine (fun () ->
      let fd = ok_or_fail "open" (i.Client_intf.open_file ~pool "/m/log" Client_intf.flags_wo) in
      ok_or_fail "write" (i.Client_intf.write ~pool fd ~off:0 ~len:4096);
      ok_or_fail "append" (i.Client_intf.append ~pool fd ~len:1024);
      check_int "size after append" 5120 (ok_or_fail "size" (i.Client_intf.fd_size fd));
      ok_or_fail "fsync" (i.Client_intf.fsync ~pool fd);
      i.Client_intf.close ~pool fd;
      ok_or_fail "rename in mount"
        (i.Client_intf.rename ~pool ~src:"/m/log" ~dst:"/m/log.1");
      check_int "renamed size" 5120
        (ok_or_fail "stat" (i.Client_intf.stat ~pool "/m/log.1")).Namespace.size;
      (* cross-mount rename is rejected *)
      match i.Client_intf.rename ~pool ~src:"/m/log.1" ~dst:"/elsewhere/x" with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "cross-mount rename should fail");
  Engine.run_until w.engine 60.0

let fd_ops_suite =
  [ ("core.fs_library_ops", [ Alcotest.test_case "fd ops via mount" `Quick test_library_fd_ops_via_mount ]) ]

let suite = suite @ fd_ops_suite

let test_fsync_durability_all_configs () =
  (* fsync must not return before the data is on the OSDs, whatever the
     stack *)
  List.iter
    (fun config ->
      let w = make_world () in
      let engine = make_engine w in
      let pool = pool_of () in
      let ct = Container_engine.launch engine ~config ~pool ~id:"dur" () in
      Engine.spawn w.engine (fun () ->
          let v = ct.Container_engine.view ~thread:1 in
          let fd = ok_or_fail "open" (v.Client_intf.open_file ~pool "/d" Client_intf.flags_wo) in
          ok_or_fail "write" (v.Client_intf.write ~pool fd ~off:0 ~len:(mib 2));
          ok_or_fail "fsync" (v.Client_intf.fsync ~pool fd);
          check_bool
            (config.Config.label ^ ": data durable at fsync return")
            true
            (total_osd_written w.cluster >= float_of_int (mib 2)));
      Engine.run_until w.engine 120.0)
    Config.all

let durability_suite =
  [ ("core.durability", [ Alcotest.test_case "fsync durable on all configs" `Quick test_fsync_durability_all_configs ]) ]

let suite = suite @ durability_suite
