(* Tests for the storage backend: paths, namespace, placement, striping,
   OSD/MDS service and the assembled cluster. *)

open Danaus_sim
open Danaus_hw
open Danaus_ceph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let mib n = n * 1024 * 1024

(* Data-path ops return a Result since the fault-injection work; most
   tests expect the happy path. *)
let io_ok = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "io error: %s" (Cluster.io_error_to_string e)

(* ------------------------------------------------------------------ *)
(* Fspath *)

let test_fspath () =
  check_str "normalize" "/a/b" (Fspath.normalize "//a///b/");
  check_str "normalize root" "/" (Fspath.normalize "/");
  check_str "parent" "/a" (Fspath.parent "/a/b");
  check_str "parent of top" "/" (Fspath.parent "/a");
  check_str "root parent" "/" (Fspath.parent "/");
  check_str "basename" "b" (Fspath.basename "/a/b");
  check_str "root basename" "" (Fspath.basename "/");
  check_str "join" "/a/b" (Fspath.join "/a" "b");
  check_str "join at root" "/b" (Fspath.join "/" "b");
  check_bool "is_root" true (Fspath.is_root "//")

(* ------------------------------------------------------------------ *)
(* Namespace *)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Namespace.error_to_string e)

let expect_err want = function
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
      Alcotest.(check string) "error kind" (Namespace.error_to_string want)
        (Namespace.error_to_string e)

let test_ns_create_lookup () =
  let ns = Namespace.create () in
  let a = ok (Namespace.create_file ns "/f") in
  check_bool "file" false a.Namespace.is_dir;
  (match Namespace.lookup ns "/f" with
  | Some attr -> check_int "ino stable" a.Namespace.ino attr.Namespace.ino
  | None -> Alcotest.fail "lookup failed");
  expect_err Namespace.Exists (Namespace.create_file ns "/f");
  expect_err Namespace.No_parent (Namespace.create_file ns "/no/such/f")

let test_ns_mkdir_p_and_readdir () =
  let ns = Namespace.create () in
  ignore (ok (Namespace.mkdir_p ns "/a/b/c"));
  ignore (ok (Namespace.create_file ns "/a/b/f1"));
  ignore (ok (Namespace.create_file ns "/a/b/f2"));
  Alcotest.(check (list string)) "sorted children" [ "c"; "f1"; "f2" ]
    (ok (Namespace.readdir ns "/a/b"));
  expect_err Namespace.No_entry (Namespace.readdir ns "/zzz")

let test_ns_unlink_rmdir () =
  let ns = Namespace.create () in
  ignore (ok (Namespace.mkdir_p ns "/d"));
  ignore (ok (Namespace.create_file ns "/d/f"));
  expect_err Namespace.Not_empty (Namespace.rmdir ns "/d");
  expect_err Namespace.Is_dir (Namespace.unlink ns "/d");
  ok (Namespace.unlink ns "/d/f");
  ok (Namespace.rmdir ns "/d");
  check_bool "gone" true (Namespace.lookup ns "/d" = None)

let test_ns_rename_tree () =
  let ns = Namespace.create () in
  ignore (ok (Namespace.mkdir_p ns "/src/sub"));
  ignore (ok (Namespace.create_file ns "/src/sub/f"));
  ok (Namespace.rename ns ~src:"/src" ~dst:"/dst");
  check_bool "old gone" true (Namespace.lookup ns "/src/sub/f" = None);
  check_bool "moved" true (Namespace.lookup ns "/dst/sub/f" <> None);
  Alcotest.(check (list string)) "children moved" [ "sub" ]
    (ok (Namespace.readdir ns "/dst"))

let test_ns_set_size () =
  let ns = Namespace.create () in
  ignore (ok (Namespace.create_file ns "/f"));
  ok (Namespace.set_size ns "/f" 12345);
  (match Namespace.lookup ns "/f" with
  | Some a -> check_int "size" 12345 a.Namespace.size
  | None -> Alcotest.fail "lookup");
  expect_err Namespace.Is_dir (Namespace.set_size ns "/" 1)

(* ------------------------------------------------------------------ *)
(* Crush / Striper *)

let test_crush_deterministic_distinct () =
  let p1 = Crush.place ~osds:6 ~replicas:3 "obj-a" in
  let p2 = Crush.place ~osds:6 ~replicas:3 "obj-a" in
  check_bool "deterministic" true (p1 = p2);
  check_int "3 replicas" 3 (List.length p1);
  check_int "distinct" 3 (List.length (List.sort_uniq Int.compare p1))

let test_crush_balance () =
  let counts = Array.make 6 0 in
  for i = 0 to 5999 do
    let o = Crush.primary ~osds:6 (Printf.sprintf "obj-%d" i) in
    counts.(o) <- counts.(o) + 1
  done;
  Array.iter
    (fun c -> check_bool "roughly uniform (600..1400)" true (c > 600 && c < 1400))
    counts

let test_striper_split () =
  let objs = Striper.objects ~object_size:(mib 4) ~ino:7 ~off:(mib 2) ~len:(mib 8) in
  check_int "spans 3 objects" 3 (List.length objs);
  let total = List.fold_left (fun acc (_, b) -> acc + b) 0 objs in
  check_int "bytes conserved" (mib 8) total;
  match objs with
  | (o1, b1) :: _ ->
      check_str "first object name"
        (Striper.object_of ~object_size:(mib 4) ~ino:7 ~off:(mib 2))
        o1;
      check_int "first object partial" (mib 2) b1
  | [] -> Alcotest.fail "no objects"

let prop_striper_conserves =
  QCheck.Test.make ~name:"striper conserves bytes and stays in range" ~count:300
    QCheck.(
      triple (int_range 1 1000) (int_range 0 100_000_000) (int_range 0 50_000_000))
    (fun (ino, off, len) ->
      let object_size = 4 * 1024 * 1024 in
      let objs = Striper.objects ~object_size ~ino ~off ~len in
      let total = List.fold_left (fun acc (_, b) -> acc + b) 0 objs in
      total = max 0 len
      && List.for_all (fun (_, b) -> b > 0 && b <= object_size) objs)

let prop_crush_valid =
  QCheck.Test.make ~name:"crush placement valid" ~count:300
    QCheck.(pair (int_range 1 20) small_string)
    (fun (osds, name) ->
      let replicas = 1 + (String.length name mod osds) in
      let p = Crush.place ~osds ~replicas name in
      List.length p = replicas
      && List.for_all (fun i -> i >= 0 && i < osds) p
      && List.length (List.sort_uniq Int.compare p) = replicas)

(* ------------------------------------------------------------------ *)
(* OSD / MDS / Cluster *)

let make_cluster ?(osd_count = 6) ?(replicas = 1) () =
  let e = Engine.create () in
  let net = Net.create e in
  let client_node = Net.add_node net ~name:"client" ~bandwidth:2.5e9 ~latency:20e-6 in
  let server_node = Net.add_node net ~name:"server" ~bandwidth:2.5e9 ~latency:20e-6 in
  let osds =
    Array.init osd_count (fun i ->
        let data =
          Disk.create e ~name:(Printf.sprintf "osd%d-data" i) ~bandwidth:2e9
            ~latency:5e-6 ~seek:0.0
        in
        let journal =
          Disk.create e ~name:(Printf.sprintf "osd%d-journal" i) ~bandwidth:2e9
            ~latency:5e-6 ~seek:0.0
        in
        Osd.create e ~name:(Printf.sprintf "osd%d" i) ~data ~journal ~concurrency:8
          ~op_cost:30e-6 ~cpu_per_byte:(1.0 /. 4e9))
  in
  let mds = Mds.create e ~concurrency:8 ~op_cost:50e-6 in
  let cluster =
    Cluster.create e ~net ~client_node ~server_node ~osds ~mds ~replicas
      ~object_size:(mib 4)
  in
  (e, cluster)

let test_osd_write_read () =
  let e = Engine.create () in
  let data = Disk.create e ~name:"d" ~bandwidth:2e9 ~latency:0.0 ~seek:0.0 in
  let journal = Disk.create e ~name:"j" ~bandwidth:2e9 ~latency:0.0 ~seek:0.0 in
  let osd =
    Osd.create e ~name:"osd0" ~data ~journal ~concurrency:2 ~op_cost:1e-5
      ~cpu_per_byte:0.0
  in
  Engine.spawn e (fun () ->
      Osd.write osd ~obj:"o1" ~bytes:(mib 1);
      Osd.read osd ~obj:"o1" ~bytes:(mib 1));
  Engine.run e;
  check_int "object recorded" 1 (Osd.objects_stored osd);
  check_int "size tracked" (mib 1) (Osd.object_size osd ~obj:"o1");
  check_bool "journal written" true
    (Disk.bytes_transferred journal >= float_of_int (mib 1));
  check_bool "read counted" true (Osd.bytes_read osd >= float_of_int (mib 1))

let test_osd_concurrency_limit () =
  let e = Engine.create () in
  let data = Disk.create e ~name:"d" ~bandwidth:1e12 ~latency:0.0 ~seek:0.0 in
  let journal = Disk.create e ~name:"j" ~bandwidth:1e12 ~latency:0.0 ~seek:0.0 in
  let osd =
    Osd.create e ~name:"osd0" ~data ~journal ~concurrency:2 ~op_cost:1.0
      ~cpu_per_byte:0.0
  in
  for _ = 1 to 4 do
    Engine.spawn e (fun () -> Osd.read osd ~obj:"o" ~bytes:0)
  done;
  Engine.run e;
  Alcotest.(check (float 1e-3)) "two waves of two" 2.0 (Engine.now e)

let test_mds_service () =
  let e = Engine.create () in
  let mds = Mds.create e ~concurrency:4 ~op_cost:1e-3 in
  Engine.spawn e (fun () ->
      let r = Mds.perform mds (fun ns -> Namespace.mkdir_p ns "/a/b") in
      check_bool "op succeeded" true (Result.is_ok r));
  Engine.run e;
  check_int "one op served" 1 (Mds.ops mds);
  Alcotest.(check (float 1e-6)) "cost charged" 1e-3 (Engine.now e)

let test_cluster_write_read_roundtrip () =
  let e, cluster = make_cluster () in
  Engine.spawn e (fun () ->
      io_ok (Cluster.write_range cluster ~ino:42 ~off:0 ~len:(mib 10));
      io_ok (Cluster.read_range cluster ~ino:42 ~off:0 ~len:(mib 10)));
  Engine.run e;
  let stored =
    Array.fold_left
      (fun acc osd -> acc + Osd.objects_stored osd)
      0 (Cluster.osds cluster)
  in
  check_int "10 MiB split into 3 objects of 4 MiB" 3 stored;
  let written =
    Array.fold_left
      (fun acc osd -> acc +. Osd.bytes_written osd)
      0.0 (Cluster.osds cluster)
  in
  check_bool "all bytes written" true (written >= float_of_int (mib 10))

let test_cluster_replication () =
  let e, cluster = make_cluster ~replicas:3 () in
  Engine.spawn e (fun () -> io_ok (Cluster.write_range cluster ~ino:1 ~off:0 ~len:(mib 4)));
  Engine.run e;
  let written =
    Array.fold_left
      (fun acc osd -> acc +. Osd.bytes_written osd)
      0.0 (Cluster.osds cluster)
  in
  Alcotest.(check (float 1.0)) "3 replicas written" (float_of_int (3 * mib 4)) written

let test_cluster_metadata_path () =
  let e, cluster = make_cluster () in
  Engine.spawn e (fun () ->
      ignore (Cluster.mkdir_p cluster "/images/debian");
      (match Cluster.create_file cluster "/images/debian/etc" with
      | Ok _ -> ()
      | Error err -> Alcotest.failf "create: %s" (Namespace.error_to_string err));
      ignore (Cluster.set_size cluster "/images/debian/etc" 100);
      match Cluster.lookup cluster "/images/debian/etc" with
      | Some a -> check_int "size visible" 100 a.Namespace.size
      | None -> Alcotest.fail "lookup failed");
  Engine.run e;
  check_bool "MDS charged time" true (Engine.now e > 0.0);
  check_int "MDS served ops" 4 (Mds.ops (Cluster.mds cluster))

let test_cluster_delete_range () =
  let e, cluster = make_cluster () in
  Engine.spawn e (fun () ->
      io_ok (Cluster.write_range cluster ~ino:9 ~off:0 ~len:(mib 8));
      Cluster.delete_range cluster ~ino:9 ~size:(mib 8));
  Engine.run e;
  let stored =
    Array.fold_left
      (fun acc osd -> acc + Osd.objects_stored osd)
      0 (Cluster.osds cluster)
  in
  check_int "objects removed" 0 stored

let prop_namespace_create_then_lookup =
  QCheck.Test.make ~name:"created files are always found" ~count:100
    QCheck.(
      list_of_size
        Gen.(int_range 1 20)
        (string_gen_of_size Gen.(int_range 1 8) Gen.(char_range 'a' 'z')))
    (fun names ->
      let ns = Namespace.create () in
      let paths = List.map (fun n -> "/" ^ n) names in
      List.iter (fun p -> ignore (Namespace.create_file ns p)) paths;
      List.for_all (fun p -> Namespace.lookup ns p <> None) paths)

let suite =
  let tc = Alcotest.test_case in
  [
    ("ceph.fspath", [ tc "operations" `Quick test_fspath ]);
    ( "ceph.namespace",
      [
        tc "create and lookup" `Quick test_ns_create_lookup;
        tc "mkdir_p and readdir" `Quick test_ns_mkdir_p_and_readdir;
        tc "unlink and rmdir" `Quick test_ns_unlink_rmdir;
        tc "rename subtree" `Quick test_ns_rename_tree;
        tc "set_size" `Quick test_ns_set_size;
      ] );
    ( "ceph.placement",
      [
        tc "crush deterministic" `Quick test_crush_deterministic_distinct;
        tc "crush balance" `Quick test_crush_balance;
        tc "striper split" `Quick test_striper_split;
      ] );
    ( "ceph.servers",
      [
        tc "osd write/read" `Quick test_osd_write_read;
        tc "osd concurrency limit" `Quick test_osd_concurrency_limit;
        tc "mds service" `Quick test_mds_service;
      ] );
    ( "ceph.cluster",
      [
        tc "write/read roundtrip" `Quick test_cluster_write_read_roundtrip;
        tc "replication" `Quick test_cluster_replication;
        tc "metadata path" `Quick test_cluster_metadata_path;
        tc "delete range" `Quick test_cluster_delete_range;
      ] );
    ( "ceph.properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_striper_conserves; prop_crush_valid; prop_namespace_create_then_lookup ]
    );
  ]

(* ------------------------------------------------------------------ *)
(* Failure handling: OSD down + replica failover *)

let test_replica_failover_on_read () =
  let e, cluster = make_cluster ~replicas:3 () in
  Engine.spawn e (fun () ->
      io_ok (Cluster.write_range cluster ~ino:5 ~off:0 ~len:(mib 4));
      (* take the primary of the object down: reads must fail over *)
      let obj = Striper.object_of ~object_size:(mib 4) ~ino:5 ~off:0 in
      let primary = Crush.primary ~osds:6 obj in
      Osd.set_up (Cluster.osds cluster).(primary) false;
      io_ok (Cluster.read_range cluster ~ino:5 ~off:0 ~len:(mib 4));
      check_bool "primary served no reads" true
        (Osd.bytes_read (Cluster.osds cluster).(primary) = 0.0);
      let replica_reads =
        Array.fold_left (fun acc o -> acc +. Osd.bytes_read o) 0.0
          (Cluster.osds cluster)
      in
      check_bool "a replica served the read" true
        (replica_reads >= float_of_int (mib 4)));
  Engine.run e

let test_write_skips_down_replica () =
  let e, cluster = make_cluster ~replicas:3 () in
  Engine.spawn e (fun () ->
      let obj = Striper.object_of ~object_size:(mib 4) ~ino:9 ~off:0 in
      let primary = Crush.primary ~osds:6 obj in
      Osd.set_up (Cluster.osds cluster).(primary) false;
      io_ok (Cluster.write_range cluster ~ino:9 ~off:0 ~len:(mib 4));
      check_bool "down replica skipped" true
        (Osd.bytes_written (Cluster.osds cluster).(primary) = 0.0);
      let written =
        Array.fold_left (fun acc o -> acc +. Osd.bytes_written o) 0.0
          (Cluster.osds cluster)
      in
      Alcotest.(check (float 1.0)) "two live replicas written"
        (float_of_int (2 * mib 4)) written);
  Engine.run e

let test_unreplicated_read_fails_when_down () =
  let e, cluster = make_cluster ~replicas:1 () in
  let failed = ref false in
  Engine.spawn e (fun () ->
      io_ok (Cluster.write_range cluster ~ino:3 ~off:0 ~len:(mib 4));
      Array.iter (fun o -> Osd.set_up o false) (Cluster.osds cluster);
      match Cluster.read_range cluster ~ino:3 ~off:0 ~len:(mib 4) with
      | Ok () | Error Cluster.Deadline_exceeded -> ()
      | Error (Cluster.No_replica _) -> failed := true);
  Engine.run e;
  check_bool "read failed with every replica down" true !failed

let failover_suite =
  let tc = Alcotest.test_case in
  [
    ( "ceph.failover",
      [
        tc "read fails over to replica" `Quick test_replica_failover_on_read;
        tc "write skips down replica" `Quick test_write_skips_down_replica;
        tc "unreplicated read fails" `Quick test_unreplicated_read_fails_when_down;
      ] );
  ]

let suite = suite @ failover_suite

(* ------------------------------------------------------------------ *)
(* More namespace properties *)

let prop_rename_preserves_entry_count =
  QCheck.Test.make ~name:"rename preserves the entry count" ~count:100
    QCheck.(
      pair
        (string_gen_of_size Gen.(int_range 1 8) Gen.(char_range 'a' 'z'))
        (string_gen_of_size Gen.(int_range 1 8) Gen.(char_range 'a' 'z')))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let ns = Namespace.create () in
      ignore (Namespace.create_file ns ("/" ^ a));
      let before = Namespace.entry_count ns in
      match Namespace.rename ns ~src:("/" ^ a) ~dst:("/" ^ b) with
      | Ok () ->
          Namespace.entry_count ns = before
          && Namespace.lookup ns ("/" ^ a) = None
          && Namespace.lookup ns ("/" ^ b) <> None
      | Error _ -> false)

let prop_unlink_then_lookup_fails =
  QCheck.Test.make ~name:"unlinked files are gone" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 10)
      (string_gen_of_size Gen.(int_range 1 6) Gen.(char_range 'a' 'z')))
    (fun names ->
      let ns = Namespace.create () in
      let paths = List.sort_uniq String.compare (List.map (fun n -> "/" ^ n) names) in
      List.iter (fun p -> ignore (Namespace.create_file ns p)) paths;
      List.for_all
        (fun p -> Namespace.unlink ns p = Ok () && Namespace.lookup ns p = None)
        paths)

let prop_rename_to_existing_fails =
  QCheck.Test.make ~name:"rename onto an existing path fails" ~count:50
    QCheck.unit
    (fun () ->
      let ns = Namespace.create () in
      ignore (Namespace.create_file ns "/a");
      ignore (Namespace.create_file ns "/b");
      Namespace.rename ns ~src:"/a" ~dst:"/b" = Error Namespace.Exists)

let more_props_suite =
  [
    ( "ceph.more_properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_rename_preserves_entry_count;
          prop_unlink_then_lookup_fails;
          prop_rename_to_existing_fails;
        ] );
  ]

let suite = suite @ more_props_suite
