(* End-to-end integration tests over the full paper testbed: boot, every
   Table 1 configuration exercised through the experiment harness's
   testbed, determinism of the simulation, fault containment and
   degraded-backend behaviour. *)

open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_ceph
open Danaus_client
open Danaus
open Danaus_experiments

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mib n = n * 1024 * 1024

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Client_intf.error_to_string e)

(* ------------------------------------------------------------------ *)

let test_testbed_boots () =
  let tb = Testbed.create ~activated:8 () in
  check_int "64 cores" 64 (Cpu.core_count tb.Testbed.cpu);
  check_int "6 OSDs" 6 (Array.length (Cluster.osds tb.Testbed.cluster));
  check_int "8 activated" 8 (Array.length (Kernel.activated tb.Testbed.kernel))

let test_mixed_io_all_configs_on_testbed () =
  (* one container per Table 1 config on its own pool, all concurrently
     on one host, each doing create/write/read/readdir/rename/unlink *)
  let tb = Testbed.create ~activated:16 () in
  Container_engine.install_image tb.Testbed.containers ~name:"base"
    ~files:[ ("/bin/sh", 65536) ];
  let finished = ref 0 in
  List.iteri
    (fun i config ->
      let pool = Testbed.pool tb i in
      let ct =
        Container_engine.launch tb.Testbed.containers ~config ~pool
          ~id:("it" ^ string_of_int i) ~image:"base" ()
      in
      Engine.spawn tb.Testbed.engine (fun () ->
          let v = ct.Container_engine.view ~thread:1 in
          let label = config.Config.label in
          ok (label ^ " mkdir") (v.Client_intf.mkdir_p ~pool "/work");
          let fd =
            ok (label ^ " open") (v.Client_intf.open_file ~pool "/work/a" Client_intf.flags_wo)
          in
          ok (label ^ " write") (v.Client_intf.write ~pool fd ~off:0 ~len:(mib 2));
          ok (label ^ " fsync") (v.Client_intf.fsync ~pool fd);
          check_int (label ^ " read") (mib 2)
            (ok (label ^ " read") (v.Client_intf.read ~pool fd ~off:0 ~len:(mib 2)));
          v.Client_intf.close ~pool fd;
          ok (label ^ " rename")
            (v.Client_intf.rename ~pool ~src:"/work/a" ~dst:"/work/b");
          let names = ok (label ^ " readdir") (v.Client_intf.readdir ~pool "/work") in
          Alcotest.(check (list string)) (label ^ " listing") [ "b" ] names;
          ok (label ^ " unlink") (v.Client_intf.unlink ~pool "/work/b");
          (* the image file is still reachable below the union *)
          check_int (label ^ " image intact") 65536
            (ok (label ^ " stat") (v.Client_intf.stat ~pool "/bin/sh")).Namespace.size;
          incr finished))
    Config.all;
  Testbed.drive tb ~stop:(fun () -> !finished = List.length Config.all)

let test_determinism_same_seed () =
  (* the same simulated scenario produces bit-identical results *)
  let run () =
    let tb = Testbed.create ~activated:4 () in
    let pool = Testbed.pool tb 0 in
    let ct =
      Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool ~id:"det" ()
    in
    let result = ref None in
    Engine.spawn tb.Testbed.engine (fun () ->
        let ctx = Testbed.ctx tb ~pool ~seed:99 in
        let p =
          {
            Danaus_workloads.Fileserver.default_params with
            Danaus_workloads.Fileserver.files = 50;
            mean_file_size = 256 * 1024;
            threads = 4;
            duration = 3.0;
          }
        in
        Danaus_workloads.Fileserver.prepopulate ctx ~view:ct.Container_engine.view p;
        result := Some (Danaus_workloads.Fileserver.run ctx ~view:ct.Container_engine.view p));
    Testbed.drive tb ~stop:(fun () -> !result <> None);
    match !result with
    | Some r ->
        ( r.Danaus_workloads.Fileserver.stats.Danaus_workloads.Workload.ops,
          r.Danaus_workloads.Fileserver.throughput_mbps )
    | None -> (0, 0.0)
  in
  let ops1, tput1 = run () in
  let ops2, tput2 = run () in
  check_int "same op count" ops1 ops2;
  Alcotest.(check (float 0.0)) "bit-identical throughput" tput1 tput2;
  check_bool "did real work" true (ops1 > 100)

let test_service_crash_containment () =
  (* two pools with their own Danaus services: crashing one leaves the
     other fully operational *)
  let tb = Testbed.create ~activated:4 () in
  let pool0 = Testbed.pool tb 0 and pool1 = Testbed.pool tb 1 in
  let ct0 =
    Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool:pool0
      ~id:"victim" ()
  in
  let ct1 =
    Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool:pool1
      ~id:"survivor" ()
  in
  let done_ = ref false in
  Engine.spawn tb.Testbed.engine (fun () ->
      let v0 = ct0.Container_engine.view ~thread:1 in
      let v1 = ct1.Container_engine.view ~thread:2 in
      (* both work initially *)
      let fd0 = ok "victim open" (v0.Client_intf.open_file ~pool:pool0 "/f" Client_intf.flags_wo) in
      ok "victim write" (v0.Client_intf.write ~pool:pool0 fd0 ~off:0 ~len:4096);
      let fd1 = ok "survivor open" (v1.Client_intf.open_file ~pool:pool1 "/f" Client_intf.flags_wo) in
      ok "survivor write" (v1.Client_intf.write ~pool:pool1 fd1 ~off:0 ~len:4096);
      (* kill pool0's filesystem service *)
      let svc =
        Option.get
          (Container_engine.service_of tb.Testbed.containers ~pool:pool0
             ~config:Config.d)
      in
      Fs_service.crash svc;
      (match v0.Client_intf.read ~pool:pool0 fd0 ~off:0 ~len:4096 with
      | Error Client_intf.Crashed -> ()
      | Ok _ -> Alcotest.fail "victim survived its service crash"
      | Error e -> Alcotest.failf "unexpected error: %s" (Client_intf.error_to_string e));
      (* the survivor's pool is untouched *)
      check_int "survivor still reads" 4096
        (ok "survivor read" (v1.Client_intf.read ~pool:pool1 fd1 ~off:0 ~len:4096));
      done_ := true);
  Testbed.drive tb ~stop:(fun () -> !done_)

let test_degraded_osd_slows_reads () =
  (* a cluster with one crippled OSD: cold reads that hit it take visibly
     longer, but everything still completes *)
  let engine = Engine.create () in
  let net = Net.create engine in
  let client_node = Net.add_node net ~name:"c" ~bandwidth:2.5e9 ~latency:20e-6 in
  let server_node = Net.add_node net ~name:"s" ~bandwidth:2.5e9 ~latency:20e-6 in
  let make_osd i bandwidth =
    let data =
      Disk.create engine ~name:(Printf.sprintf "d%d" i) ~bandwidth ~latency:5e-6
        ~seek:0.0
    in
    let journal =
      Disk.create engine ~name:(Printf.sprintf "j%d" i) ~bandwidth ~latency:5e-6
        ~seek:0.0
    in
    Osd.create engine ~name:(Printf.sprintf "osd%d" i) ~data ~journal ~concurrency:8
      ~op_cost:30e-6 ~cpu_per_byte:(1.0 /. 4e9)
  in
  let osds =
    Array.init 6 (fun i -> if i = 0 then make_osd i 10e6 (* sick *) else make_osd i 2e9)
  in
  let mds = Mds.create engine ~concurrency:8 ~op_cost:50e-6 in
  let cluster =
    Cluster.create engine ~net ~client_node ~server_node ~osds ~mds ~replicas:1
      ~object_size:(4 * 1024 * 1024)
  in
  let finished = ref false in
  Engine.spawn engine (fun () ->
      (* 16 MiB spans 4 objects; with rendezvous placement some land on
         the sick OSD for this ino *)
      (match Cluster.write_range cluster ~ino:1 ~off:0 ~len:(mib 16) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %s" (Cluster.io_error_to_string e));
      (match Cluster.read_range cluster ~ino:1 ~off:0 ~len:(mib 16) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "read: %s" (Cluster.io_error_to_string e));
      finished := true);
  Engine.run engine;
  check_bool "completed despite the degraded OSD" true !finished;
  check_bool "visibly slow (sick disk dominates)" true (Engine.now engine > 0.2)

let test_network_backpressure () =
  (* many pools writing at once share the 20 Gbps host link: total OSD
     ingest cannot exceed it *)
  let tb = Testbed.create ~activated:16 () in
  let finished = ref 0 in
  let pools = 8 in
  let t0 = Engine.now tb.Testbed.engine in
  for i = 0 to pools - 1 do
    let pool = Testbed.pool tb i in
    let ct =
      Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool
        ~id:("net" ^ string_of_int i) ()
    in
    Engine.spawn tb.Testbed.engine (fun () ->
        let v = ct.Container_engine.view ~thread:1 in
        let fd = ok "open" (v.Client_intf.open_file ~pool "/big" Client_intf.flags_wo) in
        for b = 0 to 63 do
          ok "write" (v.Client_intf.write ~pool fd ~off:(b * mib 1) ~len:(mib 1))
        done;
        ok "fsync" (v.Client_intf.fsync ~pool fd);
        incr finished)
  done;
  Testbed.drive tb ~stop:(fun () -> !finished = pools);
  let elapsed = Engine.now tb.Testbed.engine -. t0 in
  (* 8 x 64 MiB = 512 MiB over a 2.5 GB/s link: at least ~0.2 s *)
  check_bool "link capacity respected" true (elapsed > 0.19)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "integration",
      [
        tc "testbed boots" `Quick test_testbed_boots;
        tc "mixed I/O on all configs" `Quick test_mixed_io_all_configs_on_testbed;
        tc "determinism" `Quick test_determinism_same_seed;
        tc "service crash containment" `Quick test_service_crash_containment;
        tc "degraded OSD" `Quick test_degraded_osd_slows_reads;
        tc "network backpressure" `Quick test_network_backpressure;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* §6.1 repetition methodology *)

let test_repeat_until_stable () =
  (* a noisy measurement converges; runs stay within the paper's 10 *)
  let calls = ref 0 in
  let o =
    Danaus_experiments.Repeat.until_stable (fun ~seed ->
        incr calls;
        100.0 +. float_of_int (seed mod 3))
  in
  Alcotest.(check bool) "converged" true o.Danaus_experiments.Repeat.converged;
  Alcotest.(check bool) "within 10 runs" true (o.Danaus_experiments.Repeat.runs <= 10);
  Alcotest.(check bool) "mean plausible" true
    (o.Danaus_experiments.Repeat.mean > 99.0 && o.Danaus_experiments.Repeat.mean < 103.0)

let test_repeat_reports_non_convergence () =
  (* wildly bimodal measurements do not converge in 10 runs *)
  let o =
    Danaus_experiments.Repeat.until_stable (fun ~seed ->
        if seed mod 2 = 0 then 1.0 else 1000.0)
  in
  Alcotest.(check bool) "did not converge" false o.Danaus_experiments.Repeat.converged;
  Alcotest.(check int) "stopped at max" 10 o.Danaus_experiments.Repeat.runs

let test_repeat_with_real_experiment () =
  (* two different testbed seeds give different — but close — Fileserver
     numbers, and the repeat harness aggregates them *)
  let measure ~seed =
    let tb = Danaus_experiments.Testbed.create ~seed ~activated:4 () in
    let pool = Danaus_experiments.Testbed.pool tb 0 in
    let ct =
      Danaus.Container_engine.launch tb.Danaus_experiments.Testbed.containers
        ~config:Danaus.Config.d ~pool ~id:"rep" ()
    in
    let p =
      {
        Danaus_workloads.Fileserver.default_params with
        Danaus_workloads.Fileserver.files = 30;
        mean_file_size = 256 * 1024;
        threads = 4;
        duration = 2.0;
      }
    in
    let result = ref None in
    Engine.spawn tb.Danaus_experiments.Testbed.engine (fun () ->
        let ctx = Danaus_experiments.Testbed.ctx tb ~pool ~seed:1 in
        Danaus_workloads.Fileserver.prepopulate ctx ~view:ct.Danaus.Container_engine.view p;
        result := Some (Danaus_workloads.Fileserver.run ctx ~view:ct.Danaus.Container_engine.view p));
    Danaus_experiments.Testbed.drive tb ~stop:(fun () -> !result <> None);
    match !result with
    | Some r -> r.Danaus_workloads.Fileserver.throughput_mbps
    | None -> 0.0
  in
  let o = Danaus_experiments.Repeat.until_stable ~min_runs:2 ~max_runs:3 measure in
  Alcotest.(check bool) "positive throughput" true (o.Danaus_experiments.Repeat.mean > 0.0);
  Alcotest.(check bool) "seeds differ but agree" true
    (Danaus_sim.Stats.stddev o.Danaus_experiments.Repeat.samples
    < o.Danaus_experiments.Repeat.mean)

let repeat_suite =
  let tc = Alcotest.test_case in
  [
    ( "integration.repeat",
      [
        tc "converges" `Quick test_repeat_until_stable;
        tc "non-convergence reported" `Quick test_repeat_reports_non_convergence;
        tc "real experiment across seeds" `Quick test_repeat_with_real_experiment;
      ] );
  ]

let suite = suite @ repeat_suite

let test_report_rendering () =
  let r =
    Danaus_experiments.Report.make ~id:"x" ~title:"T"
      ~header:[ "a"; "bb" ]
      ~notes:[ "n1" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let s = Danaus_experiments.Report.render r in
  check_bool "title present" true (Astring.String.is_infix ~affix:"== x: T ==" s);
  check_bool "columns aligned" true (Astring.String.is_infix ~affix:"333  4" s);
  check_bool "note present" true (Astring.String.is_infix ~affix:"note: n1" s);
  Alcotest.(check string) "ratio format" "3.7x" (Danaus_experiments.Report.ratio 3.7);
  Alcotest.(check string) "ms format" "1.50ms" (Danaus_experiments.Report.ms 0.0015)

let test_registry_complete () =
  (* every table/figure of the paper's evaluation is registered *)
  let ids = Danaus_experiments.Registry.ids () in
  List.iter
    (fun id ->
      check_bool (id ^ " registered") true (List.mem id ids))
    [
      "tab1"; "tab2"; "fig1"; "fig6a"; "fig6b"; "fig6c"; "fig7a"; "fig7b";
      "fig7c"; "fig7d"; "fig8"; "fig9"; "fig10"; "fig11a"; "fig11b";
    ];
  check_bool "extensions registered" true
    (List.for_all (fun id -> List.mem id ids) [ "abl-lock"; "abl-cow"; "mig"; "dyn" ])

let test_obs_determinism_same_seed () =
  (* identical seeds produce an identical metrics snapshot, down to the
     rendered dump — the observability layer must not perturb or depend
     on anything outside the simulation *)
  let run () =
    let tb = Testbed.create ~seed:1 ~activated:4 () in
    let pool = Testbed.pool tb 0 in
    let ct =
      Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool
        ~id:"obsdet" ()
    in
    let done_ = ref false in
    Engine.spawn tb.Testbed.engine (fun () ->
        let ctx = Testbed.ctx tb ~pool ~seed:7 in
        let p =
          {
            Danaus_workloads.Fileserver.default_params with
            Danaus_workloads.Fileserver.files = 30;
            mean_file_size = 128 * 1024;
            threads = 4;
            duration = 2.0;
          }
        in
        Danaus_workloads.Fileserver.prepopulate ctx ~view:ct.Container_engine.view p;
        ignore (Danaus_workloads.Fileserver.run ctx ~view:ct.Container_engine.view p);
        done_ := true);
    Testbed.drive tb ~stop:(fun () -> !done_);
    Danaus_sim.Obs.dump tb.Testbed.obs
  in
  let d1 = run () and d2 = run () in
  check_bool "dump is non-trivial" true (String.length d1 > 100);
  Alcotest.(check string) "identical metric dumps" d1 d2

let test_parallel_registry_byte_identical () =
  (* the domain-based runner must produce results indistinguishable from
     the sequential loop, in registry order *)
  let exps =
    List.filter
      (fun e -> List.mem e.Danaus_experiments.Registry.id [ "tab1"; "tab2" ])
      Danaus_experiments.Registry.all
  in
  let render results =
    String.concat ""
      (List.concat_map
         (fun (e, reports) ->
           ("# " ^ e.Danaus_experiments.Registry.title ^ "\n")
           :: List.map Danaus_experiments.Report.render reports)
         results)
  in
  let seq = render (Danaus_experiments.Registry.run_exps ~jobs:1 ~quick:true exps) in
  let par = render (Danaus_experiments.Registry.run_exps ~jobs:2 ~quick:true exps) in
  check_bool "output is non-trivial" true (String.length seq > 100);
  Alcotest.(check string) "parallel output byte-identical" seq par

let registry_suite =
  let tc = Alcotest.test_case in
  [
    ( "integration.harness",
      [
        tc "report rendering" `Quick test_report_rendering;
        tc "registry covers the paper" `Quick test_registry_complete;
        tc "obs determinism across runs" `Quick test_obs_determinism_same_seed;
        tc "parallel registry byte-identical" `Quick test_parallel_registry_byte_identical;
      ] );
  ]

let suite = suite @ registry_suite

(* ------------------------------------------------------------------ *)
(* Cross-stack properties *)

let prop_no_stack_loses_data =
  (* random writes then reads through a random Table 1 stack: sizes and
     read lengths always agree *)
  QCheck.Test.make ~name:"no Table 1 stack loses data" ~count:24
    QCheck.(
      triple (int_range 0 7)
        (list_of_size Gen.(int_range 1 6) (pair (int_range 0 500_000) (int_range 1 300_000)))
        (int_range 0 1000))
    (fun (cfg_idx, writes, seed) ->
      let config = List.nth Config.all cfg_idx in
      let tb = Testbed.create ~seed ~activated:4 () in
      let pool = Testbed.pool tb 0 in
      let ct =
        Container_engine.launch tb.Testbed.containers ~config ~pool ~id:"prop" ()
      in
      let result = ref None in
      Engine.spawn tb.Testbed.engine (fun () ->
          let v = ct.Container_engine.view ~thread:1 in
          let fd =
            Result.get_ok (v.Client_intf.open_file ~pool "/data" Client_intf.flags_wo)
          in
          let expected_size =
            List.fold_left
              (fun acc (off, len) ->
                (match v.Client_intf.write ~pool fd ~off ~len with
                | Ok () -> ()
                | Error e -> failwith (Client_intf.error_to_string e));
                Stdlib.max acc (off + len))
              0 writes
          in
          let size = Result.get_ok (v.Client_intf.fd_size fd) in
          let read =
            Result.get_ok
              (Client_intf.read_exact v ~pool fd ~off:0 ~len:(expected_size + 1000))
          in
          v.Client_intf.close ~pool fd;
          result := Some (size = expected_size && read = expected_size));
      Testbed.drive tb ~stop:(fun () -> !result <> None);
      !result = Some true)

let prop_single_branch_union_transparent =
  (* a single writable branch union is observationally equivalent to the
     raw client for basic operations *)
  QCheck.Test.make ~name:"single-branch union is transparent" ~count:20
    QCheck.(pair (int_range 1 200_000) (int_range 0 1000))
    (fun (len, seed) ->
      let tb = Testbed.create ~seed ~activated:4 () in
      let pool = Testbed.pool tb 0 in
      let ct =
        Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool
          ~id:"eq" ()
      in
      let ok_ = ref false in
      Engine.spawn tb.Testbed.engine (fun () ->
          let v = ct.Container_engine.view ~thread:1 in
          ignore (Result.get_ok (v.Client_intf.mkdir_p ~pool "/d"));
          let fd =
            Result.get_ok (v.Client_intf.open_file ~pool "/d/f" Client_intf.flags_wo)
          in
          Result.get_ok (v.Client_intf.write ~pool fd ~off:0 ~len:len);
          v.Client_intf.close ~pool fd;
          let a = Result.get_ok (v.Client_intf.stat ~pool "/d/f") in
          let listing = Result.get_ok (v.Client_intf.readdir ~pool "/d") in
          Result.get_ok (v.Client_intf.unlink ~pool "/d/f");
          let gone = Result.is_error (v.Client_intf.stat ~pool "/d/f") in
          ok_ := a.Namespace.size = len && listing = [ "f" ] && gone);
      Testbed.drive tb ~stop:(fun () -> !ok_ || Engine.now tb.Testbed.engine > 500.0);
      !ok_)

let cross_stack_suite =
  [
    ( "integration.properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_no_stack_loses_data; prop_single_branch_union_transparent ] );
  ]

let suite = suite @ cross_stack_suite

(* ------------------------------------------------------------------ *)
(* Model-based conformance: random op sequences against a reference
   in-memory model, through the full Danaus stack *)

type model_op =
  | M_write of int * int * int (* file idx, off, len *)
  | M_unlink of int
  | M_stat of int
  | M_rename of int * int

let model_op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map3 (fun f o l -> M_write (f, o, l)) (int_range 0 4)
             (int_range 0 100_000) (int_range 1 60_000));
        (2, map (fun f -> M_unlink f) (int_range 0 4));
        (3, map (fun f -> M_stat f) (int_range 0 4));
        (1, map2 (fun a b -> M_rename (a, b)) (int_range 0 4) (int_range 0 4));
      ])

let prop_model_conformance =
  QCheck.Test.make ~name:"full stack conforms to a reference model" ~count:25
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 1 25) model_op_gen) (int_range 0 999)))
    (fun (ops, seed) ->
      let tb = Testbed.create ~seed ~activated:4 () in
      let pool = Testbed.pool tb 0 in
      let ct =
        Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool
          ~id:"model" ()
      in
      let model : (string, int) Hashtbl.t = Hashtbl.create 8 in
      let path f = Printf.sprintf "/m/f%d" f in
      let agree = ref true in
      let done_ = ref false in
      Engine.spawn tb.Testbed.engine (fun () ->
          let v = ct.Container_engine.view ~thread:1 in
          let check_file f =
            let expected = Hashtbl.find_opt model (path f) in
            let actual =
              match v.Client_intf.stat ~pool (path f) with
              | Ok a -> Some a.Namespace.size
              | Error _ -> None
            in
            if expected <> actual then agree := false
          in
          List.iter
            (fun op ->
              (match op with
              | M_write (f, off, len) -> begin
                  match
                    v.Client_intf.open_file ~pool (path f)
                      {
                        Client_intf.rd = false;
                        wr = true;
                        append = false;
                        create = true;
                        trunc = false;
                      }
                  with
                  | Error _ -> ()
                  | Ok fd ->
                      (match v.Client_intf.write ~pool fd ~off ~len with
                      | Ok () ->
                          let old =
                            Option.value ~default:0 (Hashtbl.find_opt model (path f))
                          in
                          Hashtbl.replace model (path f) (Stdlib.max old (off + len))
                      | Error _ -> ());
                      ignore (v.Client_intf.fsync ~pool fd);
                      v.Client_intf.close ~pool fd
                end
              | M_unlink f -> begin
                  match v.Client_intf.unlink ~pool (path f) with
                  | Ok () -> Hashtbl.remove model (path f)
                  | Error _ ->
                      if Hashtbl.mem model (path f) then agree := false
                end
              | M_stat f -> check_file f
              | M_rename (a, b) -> begin
                  match v.Client_intf.rename ~pool ~src:(path a) ~dst:(path b) with
                  | Ok () -> begin
                      match Hashtbl.find_opt model (path a) with
                      | Some size when a <> b ->
                          Hashtbl.remove model (path a);
                          Hashtbl.replace model (path b) size
                      | Some _ -> ()
                      | None -> agree := false
                    end
                  | Error _ ->
                      (* the model only allows renames of existing files
                         onto non-existing targets *)
                      if
                        Hashtbl.mem model (path a)
                        && (not (Hashtbl.mem model (path b)))
                        && a <> b
                      then agree := false
                end);
              (* full sweep after every op *)
              for f = 0 to 4 do
                check_file f
              done)
            ops;
          done_ := true);
      Testbed.drive tb ~stop:(fun () -> !done_);
      !agree)

let model_suite =
  [
    ( "integration.model",
      List.map QCheck_alcotest.to_alcotest [ prop_model_conformance ] );
  ]

let suite = suite @ model_suite
