(* Overload-protection pipeline: token bucket, circuit breaker, deadline
   propagation through the full stack, load shedding, and the watchdog. *)

open Danaus_sim
open Danaus
open Danaus_kernel
open Danaus_client
open Danaus_ipc
open Danaus_qos
open Danaus_experiments

let mib n = n * 1024 * 1024
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Token bucket *)

let bucket_decisions () =
  let engine = Engine.create () in
  let tb = Token_bucket.create engine ~rate:10.0 ~burst:5.0 in
  let decisions = ref [] in
  Engine.spawn engine (fun () ->
      for _ = 1 to 6 do
        decisions := Token_bucket.try_take tb :: !decisions
      done;
      (* 0.5 s at 10 tokens/s refills the burst *)
      Engine.sleep 0.5;
      decisions := Token_bucket.try_take tb :: !decisions;
      Engine.sleep 10.0;
      (* refill saturates at burst: still only 5 available *)
      for _ = 1 to 6 do
        decisions := Token_bucket.try_take tb :: !decisions
      done);
  Engine.run engine;
  List.rev !decisions

let test_token_bucket () =
  let expect =
    [
      true; true; true; true; true; false; (* burst drained *)
      true; (* refilled *)
      true; true; true; true; true; false; (* capped at burst *)
    ]
  in
  Alcotest.(check (list bool)) "bucket decisions" expect (bucket_decisions ());
  (* same engine clock, same calls: decisions are deterministic *)
  Alcotest.(check (list bool))
    "bucket determinism" (bucket_decisions ()) (bucket_decisions ())

(* ------------------------------------------------------------------ *)
(* Circuit breaker *)

let test_breaker_transitions () =
  let engine = Engine.create () in
  let config =
    { Breaker.failure_threshold = 2; open_for = 1.0; half_open_probes = 1 }
  in
  let b = Breaker.create ~config engine ~key:"test" in
  let states = ref [] in
  let record () = states := Breaker.state b :: !states in
  Engine.spawn engine (fun () ->
      record ();
      (* two consecutive failures open the breaker *)
      check_bool "closed admits" true (Breaker.allow b);
      Breaker.failure b;
      Breaker.failure b;
      record ();
      check_bool "open fast-fails" false (Breaker.allow b);
      (* after open_for the breaker half-opens and admits one probe *)
      Engine.sleep 1.1;
      record ();
      check_bool "half-open admits probe" true (Breaker.allow b);
      check_bool "probe budget spent" false (Breaker.allow b);
      (* a failed probe reopens a fresh window *)
      Breaker.failure b;
      record ();
      check_bool "reopened fast-fails" false (Breaker.allow b);
      (* a successful probe closes it again *)
      Engine.sleep 1.1;
      check_bool "second probe admitted" true (Breaker.allow b);
      Breaker.success b;
      record ();
      check_bool "closed again admits" true (Breaker.allow b));
  Engine.run engine;
  Alcotest.(check (list string))
    "state trajectory"
    [ "closed"; "open"; "half-open"; "open"; "closed" ]
    (List.rev_map Breaker.state_to_string !states)

(* ------------------------------------------------------------------ *)
(* Admission control *)

let test_admission_sheds_and_releases () =
  let engine = Engine.create () in
  let obs = Engine.obs engine in
  let adm =
    Admission.create engine ~key:"pool0"
      (Admission.config ~burst:4.0 ~max_inflight:2 ~rate:100.0 ())
  in
  Engine.spawn engine (fun () ->
      check_bool "first admitted" true (Admission.try_admit adm);
      check_bool "second admitted" true (Admission.try_admit adm);
      (* in-flight cap reached: shed without burning rate tokens *)
      check_bool "third shed at inflight cap" false (Admission.try_admit adm);
      Admission.release adm;
      check_bool "slot freed" true (Admission.try_admit adm);
      Admission.release adm;
      Admission.release adm);
  Engine.run engine;
  check_int "inflight drained" 0 (Admission.inflight adm);
  check_bool "sheds counted" true
    (Obs.sum_key obs ~layer:"qos" ~name:"shed" ~key:"pool0" () >= 1.0);
  check_bool "admissions counted" true
    (Obs.sum_key obs ~layer:"qos" ~name:"admitted" ~key:"pool0" () >= 3.0)

(* ------------------------------------------------------------------ *)
(* Load shedding at the IPC ring *)

let test_ring_try_enqueue () =
  let engine = Engine.create () in
  let r = Ring.create engine ~slots:2 in
  Engine.spawn engine (fun () ->
      check_bool "slot 1" true (Ring.try_enqueue r 1);
      check_bool "slot 2" true (Ring.try_enqueue r 2);
      check_bool "full ring refuses" false (Ring.try_enqueue r 3);
      check_int "fifo preserved" 1 (Ring.dequeue r);
      check_bool "slot freed" true (Ring.try_enqueue r 4));
  Engine.run engine

(* ------------------------------------------------------------------ *)
(* Deadline propagation: client entry -> IPC -> service -> striper ->
   cluster, and the retry layer's refusal to back off past it *)

let test_deadline_propagation () =
  let tb = Testbed.create ~seed:3 ~activated:4 () in
  let pool = Testbed.pool tb 0 in
  let ct =
    Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool
      ~id:"dl" ~cache_bytes:(mib 1) ()
  in
  let obs = tb.Testbed.obs in
  let done_ = ref false in
  Engine.spawn tb.Testbed.engine (fun () ->
      let iface = ct.Container_engine.view ~thread:1 in
      let inst = ct.Container_engine.instance in
      (match inst.Client_intf.open_file ~pool "/dl/f" Client_intf.flags_wo with
      | Error e -> Alcotest.failf "create: %s" (Client_intf.error_to_string e)
      | Ok fd ->
          (match inst.Client_intf.write ~pool fd ~off:0 ~len:(mib 8) with
          | Ok () -> ()
          | Error e -> Alcotest.failf "write: %s" (Client_intf.error_to_string e));
          inst.Client_intf.close ~pool fd);
      (* a cold read under an already-expired deadline must fail fast at
         the cluster (no backend round trip) and the retry layer must
         refuse to back off past the deadline *)
      Engine.sleep 0.5;
      let t0 = Engine.now tb.Testbed.engine in
      let r =
        Engine.with_deadline (Some t0) (fun () ->
            match iface.Client_intf.open_file ~pool "/dl/f" Client_intf.flags_ro with
            | Error e -> Error e
            | Ok fd ->
                let r = iface.Client_intf.read ~pool fd ~off:0 ~len:(64 * 1024) in
                iface.Client_intf.close ~pool fd;
                r)
      in
      check_bool "expired deadline fails" true (Result.is_error r);
      check_bool "fails fast, no retry sleeps"
        true
        (Engine.now tb.Testbed.engine -. t0 < 0.5);
      done_ := true);
  Testbed.drive tb ~stop:(fun () -> !done_);
  check_bool "cluster rejected past-deadline I/O" true
    (Obs.sum obs ~layer:"ceph" ~name:"deadline_rejects" () >= 1.0);
  check_bool "retry gave up under deadline" true
    (Obs.sum obs ~layer:"client" ~name:"deadline_giveups" () >= 1.0)

(* ------------------------------------------------------------------ *)
(* Watchdog: a wedged pool stack (crashed, no supervised restart) is
   detected and restarted *)

let test_watchdog_restarts_wedged_pool () =
  let tb = Testbed.create ~seed:5 ~activated:4 () in
  let pool = Testbed.pool tb 0 in
  let ct =
    Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool
      ~id:"wd" ()
  in
  let obs = tb.Testbed.obs in
  let service =
    match
      Container_engine.service_of tb.Testbed.containers ~pool ~config:Config.d
    with
    | Some s -> s
    | None -> Alcotest.fail "no service for D pool"
  in
  let wd =
    Container_engine.start_watchdog tb.Testbed.containers ~interval:0.1
      ~grace:0.3 ()
  in
  (* wedge the stack: crash without any scheduled restart *)
  Fs_service.crash service;
  Testbed.drive tb ~stop:(fun () ->
      Obs.sum obs ~layer:"core" ~name:"watchdog_restarts" () >= 1.0);
  check_bool "watchdog restarted the stack" true
    (Obs.sum_key obs ~layer:"core" ~name:"watchdog_restarts"
       ~key:(Cgroup.name pool) ()
    >= 1.0);
  (* the revived stack serves requests again *)
  let ok = ref false in
  Engine.spawn tb.Testbed.engine (fun () ->
      let iface = ct.Container_engine.view ~thread:1 in
      (match iface.Client_intf.mkdir_p ~pool "/after-restart" with
      | Ok () -> ok := true
      | Error e -> Alcotest.failf "mkdir: %s" (Client_intf.error_to_string e)));
  Testbed.drive tb ~stop:(fun () -> !ok);
  Container_engine.stop_watchdog wd;
  check_bool "post-restart op succeeded" true !ok

(* ------------------------------------------------------------------ *)
(* The two overload experiments run identically under the parallel
   registry runner *)

let test_parallel_overload_experiments_identical () =
  let exps =
    List.filter
      (fun e -> List.mem e.Registry.id [ "overload"; "noisy-neighbor" ])
      Registry.all
  in
  check_int "both experiments registered" 2 (List.length exps);
  let render results =
    String.concat ""
      (List.concat_map
         (fun (e, reports) ->
           ("# " ^ e.Registry.title ^ "\n") :: List.map Report.render reports)
         results)
  in
  let seq = render (Registry.run_exps ~jobs:1 ~quick:true exps) in
  let par = render (Registry.run_exps ~jobs:2 ~quick:true exps) in
  check_bool "output is non-trivial" true (String.length seq > 100);
  Alcotest.(check string) "parallel output byte-identical" seq par

let suite =
  let tc = Alcotest.test_case in
  [
    ( "qos",
      [
        tc "token bucket decisions and determinism" `Quick test_token_bucket;
        tc "breaker state machine" `Quick test_breaker_transitions;
        tc "admission sheds and releases" `Quick test_admission_sheds_and_releases;
        tc "ring try_enqueue" `Quick test_ring_try_enqueue;
        tc "deadline propagation through the stack" `Quick test_deadline_propagation;
        tc "watchdog restarts a wedged pool" `Quick test_watchdog_restarts_wedged_pool;
        tc "parallel runner identity (overload exps)" `Slow
          test_parallel_overload_experiments_identical;
      ] );
  ]
