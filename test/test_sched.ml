(* Tests for the scheduler layer (danaus_sched): placement policies on
   crafted views, fleet capacity conservation under strict invariants,
   host drain, copy-migration rollback on an injected mid-copy crash,
   autoscaler hysteresis, and byte-identity of the three sched
   experiments under parallel [Registry.run_exps]. *)

open Danaus_sim
open Danaus_kernel
open Danaus
open Danaus_sched
open Danaus_experiments

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let mib n = n * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Placement policies on crafted views: pure functions, no simulation. *)

let view ?(slots_total = 4) ?(slots_used = 0) ?(mem_total = mib 1024)
    ?(mem_used = 0) ?(dirty = 0.0) ?(link = 0.0) ?(shed = 0.0) i =
  {
    Placement.hv_index = i;
    hv_slots_total = slots_total;
    hv_slots_used = slots_used;
    hv_mem_total = mem_total;
    hv_mem_used = mem_used;
    hv_dirty_frac = dirty;
    hv_link_util = link;
    hv_shed_rate = shed;
  }

let d1 = { Placement.dm_slots = 1; dm_mem = mib 64 }

let test_policy_choices () =
  let views =
    [| view ~slots_used:3 0; view ~slots_used:1 1; view ~slots_used:1 2 |]
  in
  check_bool "bin-pack picks the fullest host" true
    (Placement.Bin_pack.choose views d1 = Some 0);
  check_bool "spread picks the emptiest host, ties by lowest index" true
    (Placement.Spread.choose views d1 = Some 1);
  let contended =
    [|
      view ~dirty:0.5 0;
      view ~link:0.9 ~shed:200.0 1;
      view ~dirty:0.05 ~link:0.1 2;
    |]
  in
  check_bool "contention-aware picks the lowest score" true
    (Placement.Contention_aware.choose contended d1 = Some 2);
  (* a full host never wins, whatever its signals *)
  let one_slot =
    [| view ~slots_total:1 ~slots_used:1 0; view ~dirty:0.9 ~link:0.9 1 |]
  in
  List.iter
    (fun (module P : Placement.POLICY) ->
      check_bool (P.name ^ " skips full hosts") true (P.choose one_slot d1 = Some 1);
      check_bool (P.name ^ " answers None when nothing fits") true
        (P.choose [| view ~slots_total:1 ~slots_used:1 0 |] d1 = None))
    Placement.all;
  (* memory is capacity too, not just slots *)
  check_bool "memory-full host skipped" true
    (Placement.Spread.choose
       [| view ~mem_total:(mib 64) ~mem_used:(mib 32) 0; view 1 |]
       d1
    = Some 1)

let test_policy_determinism () =
  (* pure + deterministic: the same views give the same choice, every
     call, for every policy *)
  let views =
    [|
      view ~slots_used:2 ~dirty:0.3 ~link:0.4 0;
      view ~slots_used:2 ~dirty:0.3 ~link:0.4 1;
      view ~slots_used:1 ~shed:50.0 2;
    |]
  in
  List.iter
    (fun (module P : Placement.POLICY) ->
      let first = P.choose views d1 in
      for _ = 1 to 10 do
        check_bool (P.name ^ " stable across calls") true (P.choose views d1 = first)
      done)
    Placement.all;
  check_bool "exact ties break by lowest index" true
    (Placement.Spread.choose [| view 0; view 1; view 2 |] d1 = Some 0)

let test_of_label () =
  List.iter
    (fun (module P : Placement.POLICY) ->
      match Placement.of_label P.name with
      | Some (module Q : Placement.POLICY) -> check_string "label" P.name Q.name
      | None -> Alcotest.fail ("of_label missed " ^ P.name))
    Placement.all;
  check_bool "unknown label" true (Placement.of_label "random" = None)

(* ------------------------------------------------------------------ *)
(* Fleet capacity: the whole suite runs with invariants strict
   (test_main.ml), so every [check_invariants] below raises on any
   broken conservation law. *)

let small_fleet ~seed ~slots =
  let mh = Multihost.create ~hosts:2 ~seed () in
  let fleet =
    Fleet.create ~engine:mh.Multihost.engine
      ~policy:(module Placement.Spread)
  in
  Array.iter
    (fun h ->
      Fleet.add_host fleet ~name:h.Multihost.h_name ~node:h.Multihost.h_node
        ~kernel:h.Multihost.h_kernel ~containers:h.Multihost.h_containers
        ~slots ~mem:(mib 1024) ~link_bandwidth:Params.net_bandwidth)
    mh.Multihost.hosts;
  (mh, fleet)

let spec_n i =
  Fleet.spec
    ~pool:(Printf.sprintf "p%d" i)
    ~id:"c0" ~slots:1 ~mem:(mib 128) ~config:Config.k ()

let test_fleet_capacity () =
  let _mh, fleet = small_fleet ~seed:3 ~slots:2 in
  (* spread alternates hosts until both are full *)
  let placed =
    List.init 4 (fun i ->
        match Fleet.place fleet (spec_n i) with
        | Ok pl ->
            Fleet.check_invariants fleet;
            pl
        | Error e -> Alcotest.fail ("placement " ^ string_of_int i ^ ": " ^ e))
  in
  check_int "four pools placed" 4 (List.length (Fleet.placements fleet));
  (match List.map (fun pl -> pl.Fleet.pl_host) placed with
  | [ 0; 1; 0; 1 ] -> ()
  | hs ->
      Alcotest.failf "spread placed on %s"
        (String.concat "," (List.map string_of_int hs)));
  (* a full fleet refuses the next pool *)
  (match Fleet.place fleet (spec_n 4) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "placement on a full fleet must fail");
  Fleet.check_invariants fleet;
  (* removing a pool frees its slot for the next placement *)
  Fleet.remove fleet (List.nth placed 3);
  Fleet.check_invariants fleet;
  (match Fleet.place fleet (spec_n 5) with
  | Ok pl -> check_int "reuses the freed host" 1 pl.Fleet.pl_host
  | Error e -> Alcotest.fail ("placement after remove: " ^ e));
  Fleet.check_invariants fleet

let test_fleet_drain () =
  let _mh, fleet = small_fleet ~seed:4 ~slots:4 in
  let pl0 =
    Result.get_ok (Fleet.place_on fleet (spec_n 0) ~host:0)
  in
  let pl1 =
    Result.get_ok (Fleet.place_on fleet (spec_n 1) ~host:0)
  in
  Fleet.check_invariants fleet;
  (match Fleet.drain fleet ~host:0 () with
  | Ok migs -> check_int "two migrations" 2 (List.length migs)
  | Error e -> Alcotest.fail ("drain: " ^ e));
  check_int "pool 0 moved" 1 pl0.Fleet.pl_host;
  check_int "pool 1 moved" 1 pl1.Fleet.pl_host;
  Fleet.check_invariants fleet;
  (* the drained host is empty again: a new pool placed there fits *)
  match Fleet.place_on fleet (spec_n 2) ~host:0 with
  | Ok _ -> Fleet.check_invariants fleet
  | Error e -> Alcotest.fail ("post-drain placement: " ^ e)

(* ------------------------------------------------------------------ *)
(* Copy-migration rollback: crash the destination pool mid-copy with a
   restart horizon far beyond the client retry budget (~6 s), so the
   copy surfaces an error; the partial destination subtree must be
   reclaimed and the source left intact. *)

let test_copy_rollback () =
  let open Danaus_workloads in
  let state_mib = 64 in
  let params = Startup.default_params in
  let mh = Multihost.create ~hosts:2 ~seed:5 () in
  let pool_a = Cgroup.create ~name:"tenant" ~cores:[| 0; 1 |] ~mem_limit:(mib 8192) in
  let pool_b = Cgroup.create ~name:"tenant" ~cores:[| 0; 1 |] ~mem_limit:(mib 8192) in
  let ca = (Multihost.host mh 0).Multihost.h_containers in
  let cb = (Multihost.host mh 1).Multihost.h_containers in
  Container_engine.install_image ca ~name:"lighttpd"
    ~files:(Startup.image_files params);
  let manifest =
    Startup.image_files params @ [ ("/var/cache/state", mib state_mib) ]
  in
  let result = ref None in
  Engine.spawn mh.Multihost.engine (fun () ->
      let ct_a =
        Container_engine.launch ca ~config:Config.d ~pool:pool_a ~id:"web"
          ~image:"lighttpd" ()
      in
      let ctx = Multihost.ctx mh ~pool:pool_a ~seed:11 in
      Startup.start_container ctx
        ~view:(ct_a.Container_engine.view ~thread:1)
        ~legacy:ct_a.Container_engine.legacy params;
      let v = ct_a.Container_engine.view ~thread:1 in
      let open Danaus_client in
      let fd =
        Workload.exn_on_error "state open"
          (v.Client_intf.open_file ~pool:pool_a "/var/cache/state"
             Client_intf.flags_wo)
      in
      Workload.chunked ~chunk:(mib 1) ~total:(mib state_mib)
        (fun ~off ~len ->
          Workload.exn_on_error "state write"
            (v.Client_intf.write ~pool:pool_a fd ~off ~len));
      Workload.exn_on_error "state fsync" (v.Client_intf.fsync ~pool:pool_a fd);
      v.Client_intf.close ~pool:pool_a fd;
      (* fell the destination stack shortly after the copy begins *)
      Engine.spawn mh.Multihost.engine (fun () ->
          Engine.sleep 0.01;
          Container_engine.crash_pool_named cb ~pool_name:"tenant"
            ~restart_after:30.0);
      result :=
        Some
          (Container_engine.migrate_pool cb ~src:ct_a ~dst_pool:pool_b
             ~dst_id:"web-copy" ~strategy:(`Copy manifest) ()));
  Multihost.drive ~limit:500.0 mh ~stop:(fun () -> !result <> None);
  (match Option.get !result with
  | Ok _ -> Alcotest.fail "mid-copy crash must fail the migration"
  | Error _ -> ());
  let ns = Danaus_ceph.Cluster.namespace (Multihost.host mh 1).Multihost.h_cluster in
  let lookup p = Danaus_ceph.Namespace.lookup ns (Danaus_ceph.Fspath.normalize p) in
  (* rollback reclaimed every started destination file; unstarted files
     were never created *)
  List.iter
    (fun (path, _) ->
      check_bool ("no partial destination file " ^ path) true
        (lookup ("/pools/tenant/web-copy" ^ path) = None))
    manifest;
  (* the source container's private state is untouched *)
  match lookup "/pools/tenant/web/var/cache/state" with
  | Some a ->
      check_int "source state intact" (mib state_mib) a.Danaus_ceph.Namespace.size
  | None -> Alcotest.fail "source state lost"

(* ------------------------------------------------------------------ *)
(* Autoscaler hysteresis on stub actions: a square-wave rate signal
   must trigger one hysteresis-delayed scale-up, stay bounded by
   [ac_max], and return to [ac_min] after the wave passes. *)

let test_autoscaler_hysteresis () =
  let e = Engine.create () in
  let replicas = ref 1 in
  let max_seen = ref 1 in
  let cfg =
    {
      Autoscaler.ac_min = 1;
      ac_max = 2;
      ac_up_rate = 50.0;
      ac_down_rate = 1.0;
      ac_up_ticks = 2;
      ac_down_ticks = 4;
      ac_cooldown = 0.5;
      ac_interval = 0.25;
    }
  in
  (* high from t=1 to t=3, silent elsewhere *)
  let rate ~now = if now >= 1.0 && now < 3.0 then 100.0 else 0.0 in
  let sc =
    Autoscaler.create e cfg ~key:"test" ~rate
      ~replicas:(fun () -> !replicas)
      ~scale_up:(fun () ->
        incr replicas;
        max_seen := max !max_seen !replicas;
        true)
      ~scale_down:(fun () ->
        decr replicas;
        true)
  in
  Engine.run_until e 8.0;
  Autoscaler.stop sc;
  let ds = Autoscaler.decisions sc in
  let count dir = List.length (List.filter (fun (_, d) -> d = dir) ds) in
  check_bool "scaled up during the wave" true (count "up" >= 1);
  check_bool "scaled back down after it" true (count "down" >= 1);
  check_int "replicas bounded by ac_max" 2 !max_seen;
  check_int "returned to ac_min" 1 !replicas;
  (* hysteresis: the first hot tick lands at t=1.0, so acting takes
     until the up_ticks-th consecutive one *)
  (match ds with
  | (t, "up") :: _ ->
      check_bool "up delayed by up_ticks" true
        (t
        >= 1.0
           +. (float_of_int (cfg.Autoscaler.ac_up_ticks - 1)
              *. cfg.Autoscaler.ac_interval)
           -. 1e-9)
  | _ -> Alcotest.fail "first decision must be a scale-up");
  (* cooldown: no two actions closer than ac_cooldown *)
  let rec gaps = function
    | (t1, _) :: ((t2, _) :: _ as rest) ->
        check_bool "cooldown respected" true
          (t2 -. t1 >= cfg.Autoscaler.ac_cooldown -. 1e-9);
        gaps rest
    | _ -> ()
  in
  gaps ds

(* ------------------------------------------------------------------ *)
(* The three sched experiments must render byte-identically whether
   [Registry.run_exps] runs them on one domain or four, and a rerun at
   the same seed must reproduce exactly. *)

let sched_exps () =
  List.filter_map Registry.find [ "sched-policy"; "sched-drain"; "autoscale" ]

let render_all results =
  String.concat "\n"
    (List.concat_map
       (fun ((e : Registry.exp), reports) ->
         e.Registry.id :: List.map Report.render reports)
       results)

let test_run_exps_parallel_identity () =
  let exps = sched_exps () in
  check_int "all three sched experiments registered" 3 (List.length exps);
  let sequential =
    render_all (Registry.run_exps ~jobs:1 ~seed:7 ~quick:true exps)
  in
  let parallel =
    render_all (Registry.run_exps ~jobs:4 ~seed:7 ~quick:true exps)
  in
  check_string "-j1 and -j4 render byte-identically" sequential parallel

let test_seed_reproducibility () =
  let run () = render_all (Registry.run_exps ~jobs:1 ~seed:3 ~quick:true
                             (List.filter_map Registry.find [ "autoscale" ])) in
  let a = run () in
  let b = run () in
  check_string "same seed reproduces byte-identically" a b;
  check_bool "report is non-trivial" true (String.length a > 100)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "sched.placement",
      [
        tc "policy choices on crafted views" `Quick test_policy_choices;
        tc "policies are pure and deterministic" `Quick test_policy_determinism;
        tc "of_label round-trips" `Quick test_of_label;
      ] );
    ( "sched.fleet",
      [
        tc "capacity conservation under strict invariants" `Quick
          test_fleet_capacity;
        tc "host drain migrates every pool" `Quick test_fleet_drain;
        tc "copy migration rolls back on mid-copy crash" `Quick
          test_copy_rollback;
      ] );
    ( "sched.autoscaler",
      [ tc "hysteresis on a square-wave signal" `Quick test_autoscaler_hysteresis ] );
    ( "sched.experiments",
      [
        tc "run_exps -j1 vs -j4 byte-identity" `Slow
          test_run_exps_parallel_identity;
        tc "seed reproducibility" `Slow test_seed_reproducibility;
      ] );
  ]
