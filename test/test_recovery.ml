(* Tests for the self-healing backend (Cluster + Recovery): the
   per-object peering state machine (clean/degraded/backfilling),
   degraded-mode reads redirecting around in-repair replicas, backfill
   rollback when the target fails again mid-drain, and byte-identity of
   the two recovery experiments under parallel [Registry.run_exps]. *)

open Danaus_sim
open Danaus_hw
open Danaus_ceph
open Danaus_experiments

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let mib n = n * 1024 * 1024

let io_ok = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "io error: %s" (Cluster.io_error_to_string e)

(* A replicated mini-cluster with a fast monitor and a deliberately slow
   recovery drain (512 KiB burst, 4 MB/s) so the tests can observe the
   Backfilling state mid-flight instead of racing a near-instant copy. *)
let slow_recovery =
  {
    Recovery.chunk = 256 * 1024;
    rate = 4e6;
    burst = 512.0 *. 1024.0;
    streams = 1;
    priority = Recovery.Client_first;
  }

let make_cluster ?(recovery = slow_recovery) () =
  let e = Engine.create () in
  let net = Net.create e in
  let client_node = Net.add_node net ~name:"client" ~bandwidth:2.5e9 ~latency:20e-6 in
  let server_node = Net.add_node net ~name:"server" ~bandwidth:2.5e9 ~latency:20e-6 in
  let osds =
    Array.init 6 (fun i ->
        let data =
          Disk.create e ~name:(Printf.sprintf "osd%d-data" i) ~bandwidth:2e9
            ~latency:5e-6 ~seek:0.0
        in
        let journal =
          Disk.create e ~name:(Printf.sprintf "osd%d-journal" i) ~bandwidth:2e9
            ~latency:5e-6 ~seek:0.0
        in
        Osd.create e ~name:(Printf.sprintf "osd%d" i) ~data ~journal ~concurrency:8
          ~op_cost:30e-6 ~cpu_per_byte:(1.0 /. 4e9))
  in
  let mds = Mds.create e ~concurrency:8 ~op_cost:50e-6 in
  let cluster =
    Cluster.create e ~net ~client_node ~server_node ~osds ~mds ~replicas:2
      ~object_size:(mib 4)
  in
  Cluster.enable_monitor ~heartbeat:0.1 ~grace:0.3 ~op_timeout:0.05 ~recovery
    cluster;
  (e, cluster)

let obj_of ~ino = Striper.object_of ~object_size:(mib 4) ~ino ~off:0

let ceph_count e name =
  int_of_float (Obs.sum (Engine.obs e) ~layer:"ceph" ~name ())

(* Block (in simulated time) until recovery has fully drained. *)
let await_convergence cluster osd =
  let spins = ref 0 in
  while
    (Cluster.degraded_now cluster > 0
    || Cluster.recovering cluster osd
    || not (Cluster.monitor_sees_up cluster osd))
    && !spins < 2000
  do
    incr spins;
    Engine.sleep 0.1
  done;
  !spins < 2000

(* ------------------------------------------------------------------ *)
(* Peering state machine: Clean -> Degraded (missed write) ->
   Backfilling (replacement peered) -> Clean (drain converged). *)

let test_peering_states () =
  let e, cluster = make_cluster () in
  let osds = Cluster.osds cluster in
  let finished = ref false in
  Engine.spawn e (fun () ->
      io_ok (Cluster.write_range cluster ~ino:1 ~off:0 ~len:(mib 4));
      let obj = obj_of ~ino:1 in
      let victim = List.hd (Crush.place ~osds:6 ~replicas:2 obj) in
      check_string "fresh replica is clean" "clean"
        (Recovery.state_name (Cluster.object_state cluster victim ~obj));
      check_int "acting set whole" 2 (Cluster.acting_width cluster ~obj);
      (* outage: the monitor marks the OSD down after [grace] *)
      Osd.set_up osds.(victim) false;
      Engine.sleep 0.6;
      check_bool "osdmap shows the victim down" false
        (Cluster.monitor_sees_up cluster victim);
      (* a write during the outage is logged against the dead replica *)
      io_ok (Cluster.write_range cluster ~ino:1 ~off:0 ~len:(mib 4));
      check_string "missed write leaves the replica degraded" "degraded"
        (Recovery.state_name (Cluster.object_state cluster victim ~obj));
      check_bool "degraded gauge is live" true (Cluster.degraded_now cluster > 0);
      check_int "acting set shrank" 1 (Cluster.acting_width cluster ~obj);
      (* swap in a blank replacement: peering turns the missed-write log
         into a full backfill of everything CRUSH places on the OSD *)
      Cluster.replace_osd cluster victim;
      Engine.sleep 0.3;
      check_string "peering queues the object for backfill" "backfilling"
        (Recovery.state_name (Cluster.object_state cluster victim ~obj));
      check_bool "drain pass in flight" true (Cluster.recovering cluster victim);
      check_bool "converged" true (await_convergence cluster victim);
      check_string "repair returns the replica to clean" "clean"
        (Recovery.state_name (Cluster.object_state cluster victim ~obj));
      check_int "acting set whole again" 2 (Cluster.acting_width cluster ~obj);
      check_bool "replacement holds the object" true
        (Osd.has_object osds.(victim) ~obj);
      check_int "nothing left degraded" 0 (Cluster.degraded_now cluster);
      check_bool "bytes conserved: reads equal writes" true
        (ceph_count e "recovery_read_bytes" = ceph_count e "recovered_bytes");
      check_bool "a full object was re-replicated" true
        (ceph_count e "recovered_bytes" >= mib 4);
      finished := true);
  Engine.run_until e 600.0;
  check_bool "scenario ran to completion" true !finished

(* ------------------------------------------------------------------ *)
(* Degraded-mode reads: during a single-OSD outage every read succeeds
   from the surviving replica (no [No_replica], no timeout), and while
   the replacement backfills, reads redirect around the dirty copy. *)

let test_degraded_read_redirect () =
  let e, cluster = make_cluster () in
  let osds = Cluster.osds cluster in
  let finished = ref false in
  Engine.spawn e (fun () ->
      io_ok (Cluster.write_range cluster ~ino:2 ~off:0 ~len:(mib 4));
      let obj = obj_of ~ino:2 in
      let victim = List.hd (Crush.place ~osds:6 ~replicas:2 obj) in
      Osd.set_up osds.(victim) false;
      Engine.sleep 0.6;
      (* outage reads fail over to the survivor, never error out *)
      for _ = 1 to 4 do
        io_ok (Cluster.read_range cluster ~ino:2 ~off:0 ~len:(mib 4))
      done;
      check_int "no failed ops during the outage" 0 (ceph_count e "failed_ops");
      check_bool "victim served nothing while down" true
        (Osd.bytes_read osds.(victim) = 0.0);
      (* replacement: the osdmap flips up when the drain starts, but the
         object is still dirty there -- reads must redirect around it *)
      Cluster.replace_osd cluster victim;
      Engine.sleep 0.25;
      check_bool "map already shows the target up mid-drain" true
        (Cluster.monitor_sees_up cluster victim);
      io_ok (Cluster.read_range cluster ~ino:2 ~off:0 ~len:(mib 4));
      check_bool "read redirected around the in-repair copy" true
        (ceph_count e "degraded_reads" > 0);
      check_int "still no failed ops" 0 (ceph_count e "failed_ops");
      check_bool "converged" true (await_convergence cluster victim);
      io_ok (Cluster.read_range cluster ~ino:2 ~off:0 ~len:(mib 4));
      check_int "clean reads never fail" 0 (ceph_count e "failed_ops");
      finished := true);
  Engine.run_until e 600.0;
  check_bool "scenario ran to completion" true !finished

(* ------------------------------------------------------------------ *)
(* Rollback: a second failure mid-backfill aborts the drain but leaves
   the repair queue intact; reviving the OSD resumes and converges. *)

let test_backfill_rollback () =
  let e, cluster = make_cluster () in
  let osds = Cluster.osds cluster in
  let finished = ref false in
  Engine.spawn e (fun () ->
      io_ok (Cluster.write_range cluster ~ino:3 ~off:0 ~len:(mib 16));
      let obj = obj_of ~ino:3 in
      let victim = List.hd (Crush.place ~osds:6 ~replicas:2 obj) in
      Osd.set_up osds.(victim) false;
      Engine.sleep 0.6;
      Cluster.replace_osd cluster victim;
      Engine.sleep 0.3;
      check_bool "backfill in flight" true (Cluster.recovering cluster victim);
      let queued = Cluster.degraded_now cluster in
      check_bool "objects queued for backfill" true (queued > 0);
      (* second failure mid-drain: the pass aborts, nothing is lost *)
      Osd.set_up osds.(victim) false;
      Engine.sleep 1.0;
      check_bool "aborted pass ended" false (Cluster.recovering cluster victim);
      check_bool "repair queue survives the abort" true
        (Cluster.degraded_now cluster > 0);
      check_int "no object declared unrecoverable" 0
        (ceph_count e "unrecoverable_objects");
      (* revive: the next heartbeat resumes the drain where it left off *)
      Osd.set_up osds.(victim) true;
      check_bool "converged after revival" true
        (await_convergence cluster victim);
      check_string "object repaired" "clean"
        (Recovery.state_name (Cluster.object_state cluster victim ~obj));
      check_bool "replacement holds the object" true
        (Osd.has_object osds.(victim) ~obj);
      check_bool "bytes conserved across the abort/resume" true
        (ceph_count e "recovery_read_bytes" = ceph_count e "recovered_bytes");
      finished := true);
  Engine.run_until e 1200.0;
  check_bool "scenario ran to completion" true !finished

(* ------------------------------------------------------------------ *)
(* The two recovery experiments must render byte-identically whether
   [Registry.run_exps] runs them on one domain or four. *)

let recovery_exps () =
  List.filter_map Registry.find [ "osd-recovery"; "backfill-qos" ]

let render_all results =
  String.concat "\n"
    (List.concat_map
       (fun ((e : Registry.exp), reports) ->
         e.Registry.id :: List.map Report.render reports)
       results)

let test_run_exps_parallel_identity () =
  let exps = recovery_exps () in
  check_int "both recovery experiments registered" 2 (List.length exps);
  let sequential =
    render_all (Registry.run_exps ~jobs:1 ~seed:7 ~quick:true exps)
  in
  let parallel =
    render_all (Registry.run_exps ~jobs:4 ~seed:7 ~quick:true exps)
  in
  check_string "-j1 and -j4 render byte-identically" sequential parallel

let suite =
  let tc = Alcotest.test_case in
  [
    ( "ceph.recovery",
      [
        tc "peering state machine" `Quick test_peering_states;
        tc "degraded reads redirect around repairs" `Quick
          test_degraded_read_redirect;
        tc "backfill rolls back on a second failure" `Quick
          test_backfill_rollback;
      ] );
    ( "recovery.experiments",
      [
        tc "run_exps -j1 vs -j4 byte-identity" `Slow
          test_run_exps_parallel_identity;
      ] );
  ]
