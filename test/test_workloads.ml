(* Tests for the workload generators, each run over a Danaus container
   (the most complex stack) or the local kernel filesystem. *)

open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_client
open Danaus
open Danaus_workloads
open Testbed

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let topo = Topology.paper_machine ()

let make_container ?(config = Config.d) ?image w pool id =
  let engine = Container_engine.create ~kernel:w.kernel ~cluster:w.cluster ~topology:topo in
  (engine, Container_engine.launch engine ~config ~pool ~id ?image ())

let ctx_of w pool = Workload.make_ctx w.engine ~cpu:w.cpu ~pool ~seed:42

(* ------------------------------------------------------------------ *)
(* Fileserver *)

let small_fls =
  {
    Fileserver.default_params with
    Fileserver.files = 20;
    mean_file_size = 256 * 1024;
    threads = 4;
    duration = 5.0;
  }

let test_fileserver_runs () =
  let w = make_world () in
  let pool = pool_of () in
  let _, ct = make_container w pool "fls" in
  let ctx = ctx_of w pool in
  let result = ref None in
  Engine.spawn w.engine (fun () ->
      Fileserver.prepopulate ctx ~view:ct.Container_engine.view small_fls;
      result := Some (Fileserver.run ctx ~view:ct.Container_engine.view small_fls));
  Engine.run_until w.engine 600.0;
  match !result with
  | None -> Alcotest.fail "fileserver did not finish"
  | Some r ->
      check_bool "did work" true (r.Fileserver.stats.Workload.ops > 50);
      check_bool "moved bytes" true
        (r.Fileserver.stats.Workload.bytes_written > 1e6
        && r.Fileserver.stats.Workload.bytes_read > 1e6);
      check_bool "throughput positive" true (r.Fileserver.throughput_mbps > 0.0);
      Alcotest.(check (float 0.3)) "ran for the duration" 5.0 r.Fileserver.elapsed

(* ------------------------------------------------------------------ *)
(* Seqio *)

let small_seq =
  {
    Seqio.default_params with
    Seqio.file_size = 64 * 1024 * 1024;
    threads = 4;
    duration = 3.0;
  }

let test_seqio_write_then_cached_read () =
  let w = make_world () in
  let pool = pool_of ~cores:[| 0; 1 |] () in
  let _, ct = make_container w pool "seq" in
  let ctx = ctx_of w pool in
  let wr = ref None and rd = ref None in
  Engine.spawn w.engine (fun () ->
      wr := Some (Seqio.run_write ctx ~view:ct.Container_engine.view small_seq);
      rd := Some (Seqio.run_read ctx ~view:ct.Container_engine.view small_seq));
  Engine.run_until w.engine 600.0;
  match (!wr, !rd) with
  | Some wr, Some rd ->
      check_bool "write throughput positive" true (wr.Seqio.throughput_mbps > 0.0);
      check_bool "cached read faster than write" true
        (rd.Seqio.throughput_mbps > wr.Seqio.throughput_mbps)
  | _ -> Alcotest.fail "seqio did not finish"

(* ------------------------------------------------------------------ *)
(* Local workloads *)

let test_randomio_local () =
  let w = make_world () in
  let pool = pool_of () in
  let disk = Disk.create w.engine ~name:"local" ~bandwidth:150e6 ~latency:2e-3 ~seek:4e-3 in
  let fs = Local_fs.create w.kernel ~name:"ext4" ~disk ~max_dirty:(mib 512) () in
  Kernel.start_flushers w.kernel;
  let ctx = ctx_of w pool in
  let p = { Randomio.default_params with Randomio.duration = 2.0 } in
  let result = ref None in
  Engine.spawn w.engine (fun () -> result := Some (Randomio.run ctx ~fs p));
  Engine.run_until w.engine 100.0;
  match !result with
  | Some r ->
      check_bool "ops happened" true (r.Randomio.stats.Workload.ops > 10);
      check_bool "rate computed" true (r.Randomio.ops_per_sec > 0.0)
  | None -> Alcotest.fail "randomio did not finish"

let test_webserver_local () =
  let w = make_world () in
  let pool = pool_of () in
  let disk = Disk.create w.engine ~name:"local" ~bandwidth:400e6 ~latency:1e-3 ~seek:2e-3 in
  let fs = Local_fs.create w.kernel ~name:"ext4" ~disk ~max_dirty:(mib 512) () in
  Kernel.start_flushers w.kernel;
  let ctx = ctx_of w pool in
  let p =
    { Webserver.default_params with Webserver.files = 100; threads = 4; duration = 2.0 }
  in
  let result = ref None in
  Engine.spawn w.engine (fun () -> result := Some (Webserver.run ctx ~fs p));
  Engine.run_until w.engine 100.0;
  match !result with
  | Some r -> check_bool "read-heavy" true (r.Webserver.stats.Workload.bytes_read > r.Webserver.stats.Workload.bytes_written)
  | None -> Alcotest.fail "webserver did not finish"

(* ------------------------------------------------------------------ *)
(* Sysbench *)

let test_sysbench_uncontended_latency () =
  let w = make_world () in
  let pool = pool_of () in
  let ctx = ctx_of w pool in
  let p = { Sysbench.default_params with Sysbench.duration = 2.0 } in
  let result = ref None in
  Engine.spawn w.engine (fun () -> result := Some (Sysbench.run ctx p));
  Engine.run w.engine;
  match !result with
  | Some r ->
      (* 2 threads on 2 free cores: latency = event cost *)
      Alcotest.(check (float 1e-4)) "uncontended latency" p.Sysbench.event_cpu
        (Stats.percentile r.Sysbench.latency 99.0);
      check_bool "events counted" true (r.Sysbench.events > 1000)
  | None -> Alcotest.fail "sysbench did not finish"

let test_sysbench_latency_rises_under_steal () =
  (* a greedy neighbour allowed on the sysbench cores inflates its
     event latency — the Fig. 6c mechanism *)
  let w = make_world ~cores:2 () in
  let pool = pool_of ~cores:[| 0; 1 |] () in
  let ctx = ctx_of w pool in
  let p = { Sysbench.default_params with Sysbench.duration = 2.0 } in
  let result = ref None in
  Engine.spawn w.engine (fun () -> result := Some (Sysbench.run ctx p));
  (* two stealing hogs on the same cores *)
  for _ = 1 to 2 do
    Engine.spawn w.engine (fun () ->
        while Engine.time () < 2.0 do
          Cpu.compute w.cpu ~tenant:"hog" ~eligible:[| 0; 1 |] 1e-3
        done)
  done;
  Engine.run w.engine;
  match !result with
  | Some r ->
      check_bool "latency inflated" true
        (Stats.percentile r.Sysbench.latency 99.0 > 1.5 *. p.Sysbench.event_cpu)
  | None -> Alcotest.fail "sysbench did not finish"

(* ------------------------------------------------------------------ *)
(* Kvstore *)

let small_kv =
  {
    Kvstore.default_params with
    Kvstore.memtable_bytes = 2 * 1024 * 1024;
    value_bytes = 64 * 1024;
    l0_compaction_trigger = 2;
    l0_stall_trigger = 4;
  }

let test_kvstore_put_flush_compact () =
  let w = make_world () in
  let pool = pool_of ~cores:[| 0; 1; 2; 3 |] () in
  let _, ct = make_container w pool "kv" in
  let ctx = ctx_of w pool in
  let kv = ref None in
  Engine.spawn w.engine (fun () ->
      let t = Kvstore.create ctx ~view:ct.Container_engine.view small_kv in
      kv := Some t;
      Kvstore.populate t ~thread:1 ~bytes:(16 * 1024 * 1024);
      (* give compaction a moment *)
      Engine.sleep 30.0;
      Kvstore.shutdown t);
  Engine.run_until w.engine 600.0;
  match !kv with
  | None -> Alcotest.fail "kvstore did not start"
  | Some t ->
      check_bool "data inserted" true (Kvstore.db_bytes t >= 16 * 1024 * 1024);
      check_bool "puts recorded" true ((Kvstore.put_stats t).Workload.ops > 100);
      check_bool "compaction kept L0 below the stall trigger" true
        (Kvstore.l0_depth t < small_kv.Kvstore.l0_stall_trigger)

let test_kvstore_get_reads_sst () =
  let w = make_world () in
  let pool = pool_of ~cores:[| 0; 1; 2; 3 |] () in
  let _, ct = make_container w pool "kv2" in
  let ctx = ctx_of w pool in
  let reads = ref 0.0 in
  Engine.spawn w.engine (fun () ->
      let t = Kvstore.create ctx ~view:ct.Container_engine.view small_kv in
      Kvstore.populate t ~thread:1 ~bytes:(8 * 1024 * 1024);
      for _ = 1 to 50 do
        Kvstore.get t ~thread:1
      done;
      reads := (Kvstore.get_stats t).Workload.bytes_read;
      Kvstore.shutdown t);
  Engine.run_until w.engine 600.0;
  check_bool "gets recorded" true (!reads > 0.0)

(* ------------------------------------------------------------------ *)
(* Startup / Filerw *)

let test_startup_uses_legacy_path () =
  let w = make_world () in
  let pool = pool_of () in
  let engine = Container_engine.create ~kernel:w.kernel ~cluster:w.cluster ~topology:topo in
  let p = Startup.default_params in
  Container_engine.install_image engine ~name:"lighttpd" ~files:(Startup.image_files p);
  let ct =
    Container_engine.launch engine ~config:Config.d ~pool ~id:"web0" ~image:"lighttpd" ()
  in
  let ctx = ctx_of w pool in
  let finished = ref false in
  Engine.spawn w.engine (fun () ->
      Startup.start_container ctx
        ~view:(ct.Container_engine.view ~thread:1)
        ~legacy:ct.Container_engine.legacy p;
      finished := true);
  Engine.run_until w.engine 600.0;
  check_bool "startup completed" true !finished;
  check_bool "exec/mmap crossed the FUSE legacy path" true
    (Obs.get (Kernel.obs w.kernel) ~layer:"kernel" ~name:"fuse_requests" ~key:"pool0" > 10.0)

let test_fileappend_copy_up_amplification () =
  let w = make_world () in
  let pool = pool_of () in
  let engine = Container_engine.create ~kernel:w.kernel ~cluster:w.cluster ~topology:topo in
  let file_bytes = 32 * 1024 * 1024 in
  Container_engine.install_image engine ~name:"data" ~files:[ ("/big", file_bytes) ];
  let ct =
    Container_engine.launch engine ~config:Config.d ~pool ~id:"fa" ~image:"data" ()
  in
  let ctx = ctx_of w pool in
  Engine.spawn w.engine (fun () ->
      Filerw.fileappend ctx
        ~view:(ct.Container_engine.view ~thread:1)
        ~path:"/big" ~append_bytes:(mib 1) ~chunk:(mib 1));
  Engine.run_until w.engine 600.0;
  check_int "append triggered exactly one copy-up" 1
    (Danaus_union.Union_fs.copy_ups ct.Container_engine.instance);
  (* the paper's ~50/50 read/write amplification: the whole lower file
     was read and rewritten into the upper branch *)
  let view = ct.Container_engine.view ~thread:2 in
  Engine.spawn w.engine (fun () ->
      let a =
        ok_or_fail "stat" (view.Client_intf.stat ~pool "/big")
      in
      check_int "upper copy holds file + append" (file_bytes + mib 1)
        a.Danaus_ceph.Namespace.size);
  Engine.run_until w.engine 1200.0

let test_fileread_whole_file () =
  let w = make_world () in
  let pool = pool_of () in
  let engine = Container_engine.create ~kernel:w.kernel ~cluster:w.cluster ~topology:topo in
  let file_bytes = 16 * 1024 * 1024 in
  Container_engine.install_image engine ~name:"data" ~files:[ ("/big", file_bytes) ];
  let ct =
    Container_engine.launch engine ~config:Config.kk ~pool ~id:"fr" ~image:"data" ()
  in
  let ctx = ctx_of w pool in
  let finished = ref false in
  Engine.spawn w.engine (fun () ->
      Filerw.fileread ctx ~view:(ct.Container_engine.view ~thread:1) ~path:"/big"
        ~chunk:(mib 1);
      finished := true);
  Engine.run_until w.engine 600.0;
  check_bool "read completed" true !finished;
  check_int "no copy-up on read" 0
    (Danaus_union.Union_fs.copy_ups ct.Container_engine.instance)

let suite =
  let tc = Alcotest.test_case in
  [
    ("workloads.fileserver", [ tc "runs and measures" `Quick test_fileserver_runs ]);
    ("workloads.seqio", [ tc "write then cached read" `Quick test_seqio_write_then_cached_read ]);
    ( "workloads.local",
      [
        tc "randomio" `Quick test_randomio_local;
        tc "webserver" `Quick test_webserver_local;
      ] );
    ( "workloads.sysbench",
      [
        tc "uncontended latency" `Quick test_sysbench_uncontended_latency;
        tc "latency under steal" `Quick test_sysbench_latency_rises_under_steal;
      ] );
    ( "workloads.kvstore",
      [
        tc "put/flush/compact" `Quick test_kvstore_put_flush_compact;
        tc "get reads SSTs" `Quick test_kvstore_get_reads_sst;
      ] );
    ( "workloads.containers",
      [
        tc "startup legacy path" `Quick test_startup_uses_legacy_path;
        tc "fileappend copy-up" `Quick test_fileappend_copy_up_amplification;
        tc "fileread" `Quick test_fileread_whole_file;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Trace capture/replay *)

let test_trace_parse_errors () =
  (match Trace.parse "read /f 0" with
  | Error bad -> Alcotest.(check string) "offending line" "read /f 0" bad
  | Ok _ -> Alcotest.fail "expected parse error");
  match Trace.parse "open /a\n# comment\n\nsleep 0.5\n" with
  | Ok t -> check_int "comments and blanks skipped" 2 (Array.length t)
  | Error e -> Alcotest.failf "parse failed on %s" e

let test_trace_replay_roundtrip () =
  let w = make_world () in
  let pool = pool_of () in
  let _, ct = make_container w pool "trace" in
  let text =
    "openw /data/a\nwrite /data/a 0 65536\nread /data/a 0 65536\nstat /data/a\n\
     sleep 0.01\nunlink /data/a\nread /data/a 0 4096\n"
  in
  let trace = match Trace.parse text with Ok t -> t | Error e -> Alcotest.failf "parse: %s" e in
  let result = ref None in
  Engine.spawn w.engine (fun () ->
      let ctx = ctx_of w pool in
      result := Some (Trace.replay ctx ~view:ct.Container_engine.view trace));
  Engine.run_until w.engine 120.0;
  match !result with
  | Some (stats, elapsed, errors) ->
      check_bool "bytes moved" true
        (stats.Workload.bytes_written = 65536.0 && stats.Workload.bytes_read >= 65536.0);
      check_bool "sleep advanced time" true (elapsed >= 0.01);
      check_int "read after unlink tolerated" 1 errors
  | None -> Alcotest.fail "replay did not finish"

let test_trace_synthesize_and_replay_threads () =
  let w = make_world () in
  let pool = pool_of () in
  let _, ct = make_container w pool "syn" in
  let trace =
    Trace.synthesize (Rng.create 5) ~ops:200 ~files:10 ~mean_io:32768
      ~write_fraction:0.6 ~dir:"/traced"
  in
  let result = ref None in
  Engine.spawn w.engine (fun () ->
      let ctx = ctx_of w pool in
      result := Some (Trace.replay ctx ~view:ct.Container_engine.view ~threads:4 trace));
  Engine.run_until w.engine 300.0;
  match !result with
  | Some (stats, _, _) ->
      check_bool "work done across threads" true (stats.Workload.ops > 100)
  | None -> Alcotest.fail "replay did not finish"

let prop_trace_roundtrip =
  QCheck.Test.make ~name:"trace text format round-trips" ~count:100
    QCheck.(int_range 0 200)
    (fun seed ->
      let t =
        Trace.synthesize (Rng.create seed) ~ops:50 ~files:5 ~mean_io:4096
          ~write_fraction:0.5 ~dir:"/d"
      in
      match Trace.parse (Trace.to_string t) with
      | Ok t2 -> t = t2
      | Error _ -> false)

let trace_suite =
  let tc = Alcotest.test_case in
  [
    ( "workloads.trace",
      [
        tc "parse errors" `Quick test_trace_parse_errors;
        tc "replay roundtrip" `Quick test_trace_replay_roundtrip;
        tc "synthesized multi-thread replay" `Quick test_trace_synthesize_and_replay_threads;
      ] );
    ("workloads.trace_properties", List.map QCheck_alcotest.to_alcotest [ prop_trace_roundtrip ]);
  ]

let suite = suite @ trace_suite

(* ------------------------------------------------------------------ *)
(* Startup image manifest *)

let test_startup_image_files () =
  let p = Startup.default_params in
  let files = Startup.image_files p in
  check_int "binary + libraries + configs" 23 (List.length files);
  check_bool "binary first" true (List.mem_assoc "/usr/sbin/lighttpd" files);
  check_bool "all sizes positive" true (List.for_all (fun (_, b) -> b > 0) files)

let test_fileserver_dataset_sharded () =
  (* the fileset spreads over 20 subdirectories (Filebench dirwidth) *)
  let w = make_world () in
  let pool = pool_of () in
  let _, ct = make_container w pool "shard" in
  let ctx = ctx_of w pool in
  let p = { small_fls with Fileserver.files = 40 } in
  Engine.spawn w.engine (fun () ->
      Fileserver.prepopulate ctx ~view:ct.Container_engine.view p;
      let v = ct.Container_engine.view ~thread:1 in
      let dirs =
        match v.Client_intf.readdir ~pool "/flsdata" with Ok l -> l | Error _ -> []
      in
      check_int "20 shard directories" 20 (List.length dirs));
  Engine.run_until w.engine 300.0

let manifest_suite =
  let tc = Alcotest.test_case in
  [
    ( "workloads.misc",
      [
        tc "startup image manifest" `Quick test_startup_image_files;
        tc "fileserver dataset sharded" `Quick test_fileserver_dataset_sharded;
      ] );
  ]

let suite = suite @ manifest_suite
