(* Shared test fixture: a small simulated host plus a Ceph-like cluster,
   and client constructors used across the test suites. *)

open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_ceph
open Danaus_client

let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

type world = {
  engine : Engine.t;
  cpu : Cpu.t;
  kernel : Kernel.t;
  cluster : Cluster.t;
}

let make_world ?(cores = 8) () =
  let engine = Engine.create () in
  let cpu = Cpu.create engine ~cores in
  let activated = Array.init cores (fun i -> i) in
  let kernel = Kernel.create engine ~cpu ~activated ~page_cache_limit:(gib 4) in
  let net = Net.create engine in
  let client_node = Net.add_node net ~name:"client" ~bandwidth:2.5e9 ~latency:20e-6 in
  let server_node = Net.add_node net ~name:"server" ~bandwidth:2.5e9 ~latency:20e-6 in
  let osds =
    Array.init 6 (fun i ->
        let data =
          Disk.create engine ~name:(Printf.sprintf "osd%d-data" i) ~bandwidth:2e9
            ~latency:5e-6 ~seek:0.0
        in
        let journal =
          Disk.create engine ~name:(Printf.sprintf "osd%d-j" i) ~bandwidth:2e9
            ~latency:5e-6 ~seek:0.0
        in
        Osd.create engine ~name:(Printf.sprintf "osd%d" i) ~data ~journal
          ~concurrency:8 ~op_cost:30e-6 ~cpu_per_byte:(1.0 /. 4e9))
  in
  let mds = Mds.create engine ~concurrency:8 ~op_cost:50e-6 in
  let cluster =
    Cluster.create engine ~net ~client_node ~server_node ~osds ~mds ~replicas:1
      ~object_size:(4 * 1024 * 1024)
  in
  { engine; cpu; kernel; cluster }

let pool_of ?(name = "pool0") ?(cores = [| 0; 1 |]) () =
  Cgroup.create ~name ~cores ~mem_limit:(gib 8)

let make_lib_client ?(cache = mib 512) w pool name =
  let c =
    Lib_client.create w.engine ~cpu:w.cpu ~costs:(Kernel.costs w.kernel)
      ~cluster:w.cluster ~pool
      ~config:(Lib_client.default_config ~cache_bytes:cache) ~name
  in
  Lib_client.start c;
  c

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Client_intf.error_to_string e)

let total_osd_written cluster =
  Array.fold_left (fun acc o -> acc +. Osd.bytes_written o) 0.0 (Cluster.osds cluster)

(* Charge function attributing union bookkeeping CPU to the pool. *)
let pool_charge w ~pool dt =
  if dt > 0.0 then
    Cpu.compute w.cpu ~tenant:(Cgroup.name pool) ~eligible:(Cgroup.cores pool) dt

(* Write a file through an iface (create/trunc), in 1 MiB chunks. *)
let write_file iface ~pool path bytes =
  let fd = ok_or_fail "open" (iface.Client_intf.open_file ~pool path Client_intf.flags_wo) in
  let chunk = mib 1 in
  let off = ref 0 in
  while !off < bytes do
    let len = Stdlib.min chunk (bytes - !off) in
    ok_or_fail "write" (iface.Client_intf.write ~pool fd ~off:!off ~len);
    off := !off + len
  done;
  ok_or_fail "fsync" (iface.Client_intf.fsync ~pool fd);
  iface.Client_intf.close ~pool fd

(* Context builder used by suites that don't import the experiments lib. *)
module Testbed_ctx = struct
  let make w pool = Danaus_workloads.Workload.make_ctx w.engine ~cpu:w.cpu ~pool ~seed:7
end
