(* Unit and property tests for the discrete-event engine and its
   synchronisation primitives. *)

open Danaus_sim

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_sleep_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.spawn e (fun () ->
      Engine.sleep 2.0;
      log := ("b", Engine.time ()) :: !log);
  Engine.spawn e (fun () ->
      Engine.sleep 1.0;
      log := ("a", Engine.time ()) :: !log);
  Engine.run e;
  match List.rev !log with
  | [ ("a", t1); ("b", t2) ] ->
      check_float "first wake" 1.0 t1;
      check_float "second wake" 2.0 t2
  | _ -> Alcotest.fail "wrong ordering"

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.spawn e (fun () ->
        Engine.sleep 1.0;
        log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "spawn order preserved" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_nested_fork () =
  let e = Engine.create () in
  let sum = ref 0 in
  Engine.spawn e (fun () ->
      Engine.fork (fun () ->
          Engine.sleep 1.0;
          sum := !sum + 1);
      Engine.fork (fun () ->
          Engine.sleep 2.0;
          sum := !sum + 10);
      Engine.sleep 3.0;
      sum := !sum + 100);
  Engine.run e;
  check_int "all processes ran" 111 !sum;
  check_float "clock at last event" 3.0 (Engine.now e);
  check_int "no live process" 0 (Engine.live_processes e)

let test_run_until () =
  let e = Engine.create () in
  let hits = ref 0 in
  Engine.spawn e (fun () ->
      for _ = 1 to 10 do
        Engine.sleep 1.0;
        incr hits
      done);
  Engine.run_until e 4.5;
  check_int "only events before horizon" 4 !hits;
  check_float "clock set to horizon" 4.5 (Engine.now e);
  Engine.run e;
  check_int "remaining events run" 10 !hits

let test_deadlock_detection () =
  let e = Engine.create () in
  Engine.spawn e (fun () -> Engine.suspend (fun _wake -> ()));
  Alcotest.check_raises "deadlock raised"
    (Engine.Deadlock "1 process(es) blocked forever") (fun () -> Engine.run e)

let test_suspend_wake_once () =
  let e = Engine.create () in
  let wake_cell = ref (fun () -> ()) in
  let resumed = ref 0 in
  Engine.spawn e (fun () ->
      Engine.suspend (fun wake -> wake_cell := wake);
      incr resumed);
  Engine.spawn e (fun () ->
      Engine.sleep 1.0;
      !wake_cell ();
      !wake_cell () (* second wake must be ignored *));
  Engine.run e;
  check_int "resumed exactly once" 1 !resumed

let test_schedule_callback () =
  let e = Engine.create () in
  let fired = ref (-1.0) in
  Engine.schedule e ~delay:5.0 (fun () -> fired := Engine.now e);
  Engine.run e;
  check_float "callback time" 5.0 !fired

let test_self_name () =
  let e = Engine.create () in
  let seen = ref "" in
  Engine.spawn e ~name:"worker-7" (fun () -> seen := Engine.self_name ());
  Engine.run e;
  Alcotest.(check string) "self name" "worker-7" !seen

(* ------------------------------------------------------------------ *)
(* Mutex *)

let test_mutex_exclusion () =
  let e = Engine.create () in
  let m = Mutex_sim.create e ~name:"m" in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 4 do
    Engine.spawn e (fun () ->
        Mutex_sim.with_lock m (fun () ->
            incr inside;
            if !inside > !max_inside then max_inside := !inside;
            Engine.sleep 1.0;
            decr inside))
  done;
  Engine.run e;
  check_int "mutual exclusion" 1 !max_inside;
  check_float "serialised" 4.0 (Engine.now e);
  check_int "acquisitions" 4 (Mutex_sim.acquisitions m);
  check_int "contended" 3 (Mutex_sim.contended m)

let test_mutex_stats () =
  let e = Engine.create () in
  let m = Mutex_sim.create e ~name:"m" in
  for _ = 1 to 2 do
    Engine.spawn e (fun () -> Mutex_sim.with_lock m (fun () -> Engine.sleep 2.0))
  done;
  Engine.run e;
  check_float "total hold" 4.0 (Mutex_sim.total_hold m);
  check_float "total wait" 2.0 (Mutex_sim.total_wait m);
  check_float "avg hold" 2.0 (Mutex_sim.avg_hold m);
  check_float "avg wait" 1.0 (Mutex_sim.avg_wait m)

let test_mutex_fifo_handoff () =
  let e = Engine.create () in
  let m = Mutex_sim.create e ~name:"m" in
  let order = ref [] in
  for i = 1 to 3 do
    Engine.spawn e (fun () ->
        Mutex_sim.with_lock m (fun () ->
            order := i :: !order;
            Engine.sleep 1.0))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3 ] (List.rev !order)

let test_mutex_unlock_unlocked () =
  let e = Engine.create () in
  let m = Mutex_sim.create e ~name:"m" in
  Alcotest.check_raises "unlock raises"
    (Invalid_argument "Mutex_sim.unlock: not locked: m") (fun () ->
      Mutex_sim.unlock m)

(* ------------------------------------------------------------------ *)
(* Condition *)

let test_condition_signal () =
  let e = Engine.create () in
  let m = Mutex_sim.create e ~name:"m" in
  let c = Condition_sim.create e in
  let ready = ref false and observed = ref false in
  Engine.spawn e (fun () ->
      Mutex_sim.lock m;
      while not !ready do
        Condition_sim.wait c m
      done;
      observed := true;
      Mutex_sim.unlock m);
  Engine.spawn e (fun () ->
      Engine.sleep 1.0;
      Mutex_sim.with_lock m (fun () -> ready := true);
      Condition_sim.signal c);
  Engine.run e;
  check_bool "woken and observed" true !observed

let test_condition_broadcast () =
  let e = Engine.create () in
  let m = Mutex_sim.create e ~name:"m" in
  let c = Condition_sim.create e in
  let woken = ref 0 in
  for _ = 1 to 5 do
    Engine.spawn e (fun () ->
        Mutex_sim.lock m;
        Condition_sim.wait c m;
        incr woken;
        Mutex_sim.unlock m)
  done;
  Engine.spawn e (fun () ->
      Engine.sleep 1.0;
      Condition_sim.broadcast c);
  Engine.run e;
  check_int "all woken" 5 !woken

(* ------------------------------------------------------------------ *)
(* Semaphore / Channel / Waitgroup *)

let test_semaphore_limits () =
  let e = Engine.create () in
  let s = Semaphore_sim.create e ~value:2 in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 6 do
    Engine.spawn e (fun () ->
        Semaphore_sim.acquire s;
        incr inside;
        if !inside > !max_inside then max_inside := !inside;
        Engine.sleep 1.0;
        decr inside;
        Semaphore_sim.release s)
  done;
  Engine.run e;
  check_int "at most 2 inside" 2 !max_inside;
  check_float "three waves" 3.0 (Engine.now e)

let test_try_acquire () =
  let e = Engine.create () in
  let s = Semaphore_sim.create e ~value:1 in
  check_bool "first succeeds" true (Semaphore_sim.try_acquire s);
  check_bool "second fails" false (Semaphore_sim.try_acquire s);
  Semaphore_sim.release s;
  check_bool "after release" true (Semaphore_sim.try_acquire s)

let test_channel_fifo () =
  let e = Engine.create () in
  let ch = Channel.create e ~capacity:2 in
  let got = ref [] in
  Engine.spawn e (fun () ->
      for i = 1 to 5 do
        Channel.put ch i
      done);
  Engine.spawn e (fun () ->
      for _ = 1 to 5 do
        let v = Channel.get ch in
        got := v :: !got;
        Engine.sleep 0.1
      done);
  Engine.run e;
  Alcotest.(check (list int)) "FIFO delivery" [ 1; 2; 3; 4; 5 ] (List.rev !got)

let test_channel_blocking_producer () =
  let e = Engine.create () in
  let ch = Channel.create e ~capacity:1 in
  let done_at = ref 0.0 in
  Engine.spawn e (fun () ->
      Channel.put ch 1;
      Channel.put ch 2;
      (* blocks until consumer takes the first *)
      done_at := Engine.time ());
  Engine.spawn e (fun () ->
      Engine.sleep 3.0;
      ignore (Channel.get ch));
  Engine.run e;
  check_float "producer blocked until get" 3.0 !done_at

let test_waitgroup () =
  let e = Engine.create () in
  let wg = Waitgroup.create e in
  let finished_at = ref 0.0 in
  for i = 1 to 3 do
    Waitgroup.add wg;
    Engine.spawn e (fun () ->
        Engine.sleep (float_of_int i);
        Waitgroup.finish wg)
  done;
  Engine.spawn e (fun () ->
      Waitgroup.wait wg;
      finished_at := Engine.time ());
  Engine.run e;
  check_float "waits for slowest" 3.0 !finished_at

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check_int "count" 5 (Stats.count s);
  check_float "mean" 3.0 (Stats.mean s);
  check_float "min" 1.0 (Stats.min s);
  check_float "max" 5.0 (Stats.max s);
  check_float "median" 3.0 (Stats.percentile s 50.0);
  check_float "p0" 1.0 (Stats.percentile s 0.0);
  check_float "p100" 5.0 (Stats.percentile s 100.0);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) (Stats.stddev s)

let test_stats_percentile_interpolation () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 10.0; 20.0 ];
  check_float "p75 interpolates" 17.5 (Stats.percentile s 75.0)

let test_stats_empty () =
  let s = Stats.create () in
  check_float "mean of empty" 0.0 (Stats.mean s);
  check_float "p99 of empty" 0.0 (Stats.percentile s 99.0);
  check_float "ci of empty" 0.0 (Stats.ci95_halfwidth s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 2.0 ];
  List.iter (Stats.add b) [ 3.0; 4.0 ];
  Stats.merge_into ~dst:a ~src:b;
  check_int "merged count" 4 (Stats.count a);
  check_float "merged mean" 2.5 (Stats.mean a)

let test_stats_single_sample () =
  let s = Stats.create () in
  Stats.add s 42.0;
  check_float "p0 of one" 42.0 (Stats.percentile s 0.0);
  check_float "p50 of one" 42.0 (Stats.percentile s 50.0);
  check_float "p100 of one" 42.0 (Stats.percentile s 100.0);
  check_float "mean of one" 42.0 (Stats.mean s)

let test_stats_unsorted_readd () =
  (* percentile sorts lazily; adding after a query must re-sort *)
  let s = Stats.create () in
  List.iter (Stats.add s) [ 5.0; 1.0; 3.0 ];
  check_float "median of three" 3.0 (Stats.percentile s 50.0);
  Stats.add s 0.0;
  Stats.add s 2.0;
  check_float "median after re-add" 2.0 (Stats.percentile s 50.0);
  check_float "max after re-add" 5.0 (Stats.percentile s 100.0);
  check_float "min after re-add" 0.0 (Stats.percentile s 0.0)

(* ------------------------------------------------------------------ *)
(* Obs *)

let test_obs_counters () =
  let o = Obs.create () in
  let c0 = Obs.counter o ~layer:"kernel" ~name:"ctx" ~key:"pool0" in
  let c1 = Obs.counter o ~layer:"kernel" ~name:"ctx" ~key:"pool1" in
  Obs.add c0 3.0;
  Obs.add c1 4.0;
  Obs.incr c0;
  check_float "per key" 4.0 (Obs.get o ~layer:"kernel" ~name:"ctx" ~key:"pool0");
  check_float "sum" 8.0 (Obs.sum o ~name:"ctx" ());
  Alcotest.(check (list (pair string (float 0.0))))
    "by_key sorted"
    [ ("pool0", 4.0); ("pool1", 4.0) ]
    (Obs.by_key o ~layer:"kernel" ~name:"ctx");
  (* interning returns the same cell *)
  let c0' = Obs.counter o ~layer:"kernel" ~name:"ctx" ~key:"pool0" in
  Obs.incr c0';
  check_float "interned handle shares the cell" 5.0 (Obs.counter_value c0)

let test_obs_gauges_and_histograms () =
  let o = Obs.create () in
  let g = Obs.gauge o ~layer:"hw" ~name:"queue" ~key:"all" in
  Obs.set g 3.0;
  Obs.set_max g 1.0;
  check_float "set_max keeps larger" 3.0 (Obs.gauge_value g);
  Obs.set_max g 7.0;
  check_float "set_max raises" 7.0 (Obs.gauge_value g);
  let h = Obs.histogram o ~layer:"sim" ~name:"wait" ~key:"lock" in
  List.iter (Obs.observe h) [ 1.0; 2.0; 3.0 ];
  (match Obs.hist_summary o ~layer:"sim" ~name:"wait" ~key:"lock" with
  | Some s ->
      check_int "hist count" 3 s.Obs.h_count;
      check_float "hist mean" 2.0 s.Obs.h_mean;
      check_float "hist max" 3.0 s.Obs.h_max
  | None -> Alcotest.fail "histogram summary missing");
  (* same id under a different kind is a bug *)
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Obs: sim/wait[lock] is a histogram, requested as counter")
    (fun () -> ignore (Obs.counter o ~layer:"sim" ~name:"wait" ~key:"lock"))

let test_obs_reset_keeps_handles () =
  let o = Obs.create () in
  let c = Obs.counter o ~layer:"kernel" ~name:"ops" ~key:"p" in
  let h = Obs.histogram o ~layer:"sim" ~name:"wait" ~key:"l" in
  Obs.add c 9.0;
  Obs.observe h 1.0;
  Obs.reset o;
  check_float "counter cleared" 0.0 (Obs.counter_value c);
  check_int "histogram cleared" 0 (Stats.count (Obs.hist_stats h));
  Obs.incr c;
  check_float "handle still live after reset" 1.0
    (Obs.get o ~layer:"kernel" ~name:"ops" ~key:"p")

let test_obs_trace_ring () =
  let o = Obs.create ~tracing:true ~trace_capacity:3 () in
  for i = 1 to 5 do
    Obs.span o ~at:(float_of_int i) ~layer:"kernel" ~name:"flush" ~dur:0.5
  done;
  let spans = Obs.spans o in
  check_int "bounded store" 3 (List.length spans);
  check_int "dropped count" 2 (Obs.dropped_spans o);
  (* keep-oldest: new spans are dropped when full, so surviving causal
     children always find their parents *)
  (match spans with
  | first :: _ -> check_float "oldest survivor" 1.0 first.Obs.sp_at
  | [] -> Alcotest.fail "empty store");
  let quiet = Obs.create () in
  Obs.span quiet ~at:1.0 ~layer:"kernel" ~name:"flush" ~dur:0.5;
  check_int "no-op when tracing off" 0 (List.length (Obs.spans quiet))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  check_bool "split differs from parent" true (Rng.bits64 a <> Rng.bits64 b)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_heap_sorted =
  QCheck.Test.make ~name:"pheap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Pheap.create ~cmp:Int.compare in
      List.iter (Pheap.push h) xs;
      let rec drain acc =
        match Pheap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean within min/max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.mean s >= Stats.min s -. 1e-6 && Stats.mean s <= Stats.max s +. 1e-6)

let prop_stats_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 50) (float_range 0.0 1e3))
        (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (xs, (p1, p2)) ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile s lo <= Stats.percentile s hi +. 1e-9)

let prop_rng_float_range =
  QCheck.Test.make ~name:"rng float in [0,1)" ~count:500 QCheck.int (fun seed ->
      let r = Rng.create seed in
      let x = Rng.float r in
      x >= 0.0 && x < 1.0)

let prop_rng_int_range =
  QCheck.Test.make ~name:"rng int in bound" ~count:500
    QCheck.(pair int (int_range 1 10000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let prop_exponential_positive =
  QCheck.Test.make ~name:"exponential draws positive" ~count:300
    QCheck.(pair int (float_range 0.001 100.0))
    (fun (seed, mean) ->
      let r = Rng.create seed in
      Rng.exponential r ~mean >= 0.0)

let prop_channel_preserves_order =
  QCheck.Test.make ~name:"channel preserves order under any capacity" ~count:100
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(int_range 0 30) int))
    (fun (cap, xs) ->
      let e = Engine.create () in
      let ch = Channel.create e ~capacity:cap in
      let got = ref [] in
      Engine.spawn e (fun () -> List.iter (Channel.put ch) xs);
      Engine.spawn e (fun () ->
          for _ = 1 to List.length xs do
            got := Channel.get ch :: !got
          done);
      Engine.run e;
      List.rev !got = xs)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "sim.engine",
      [
        tc "sleep ordering" `Quick test_sleep_ordering;
        tc "same-time FIFO" `Quick test_same_time_fifo;
        tc "nested fork" `Quick test_nested_fork;
        tc "run_until" `Quick test_run_until;
        tc "deadlock detection" `Quick test_deadlock_detection;
        tc "suspend wakes once" `Quick test_suspend_wake_once;
        tc "schedule callback" `Quick test_schedule_callback;
        tc "self name" `Quick test_self_name;
      ] );
    ( "sim.sync",
      [
        tc "mutex exclusion" `Quick test_mutex_exclusion;
        tc "mutex stats" `Quick test_mutex_stats;
        tc "mutex FIFO handoff" `Quick test_mutex_fifo_handoff;
        tc "unlock unlocked raises" `Quick test_mutex_unlock_unlocked;
        tc "condition signal" `Quick test_condition_signal;
        tc "condition broadcast" `Quick test_condition_broadcast;
        tc "semaphore limits" `Quick test_semaphore_limits;
        tc "semaphore try_acquire" `Quick test_try_acquire;
        tc "channel FIFO" `Quick test_channel_fifo;
        tc "channel blocks producer" `Quick test_channel_blocking_producer;
        tc "waitgroup" `Quick test_waitgroup;
      ] );
    ( "sim.stats",
      [
        tc "basic summary" `Quick test_stats_basic;
        tc "percentile interpolation" `Quick test_stats_percentile_interpolation;
        tc "empty summary" `Quick test_stats_empty;
        tc "merge" `Quick test_stats_merge;
        tc "single sample percentiles" `Quick test_stats_single_sample;
        tc "unsorted re-add" `Quick test_stats_unsorted_readd;
        tc "obs counters" `Quick test_obs_counters;
        tc "obs gauges and histograms" `Quick test_obs_gauges_and_histograms;
        tc "obs reset keeps handles" `Quick test_obs_reset_keeps_handles;
        tc "obs trace ring" `Quick test_obs_trace_ring;
      ] );
    ( "sim.rng",
      [
        tc "determinism" `Quick test_rng_determinism;
        tc "split independence" `Quick test_rng_split_independent;
      ] );
    ( "sim.properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_heap_sorted;
          prop_stats_mean_bounds;
          prop_stats_percentile_monotone;
          prop_rng_float_range;
          prop_rng_int_range;
          prop_exponential_positive;
          prop_channel_preserves_order;
        ] );
  ]

(* ------------------------------------------------------------------ *)
(* Engine edge cases *)

let test_process_exception_propagates () =
  let e = Engine.create () in
  Engine.spawn e (fun () ->
      Engine.sleep 1.0;
      failwith "boom");
  Alcotest.check_raises "exception escapes run" (Failure "boom") (fun () ->
      Engine.run e)

let test_zero_delay_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.spawn e (fun () ->
      log := 1 :: !log;
      Engine.yield ();
      log := 3 :: !log);
  Engine.spawn e (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "yield interleaves" [ 1; 2; 3 ] (List.rev !log)

let test_ci95 () =
  let s = Stats.create () in
  for _ = 1 to 100 do
    Stats.add s 10.0
  done;
  check_float "no variance, no interval" 0.0 (Stats.ci95_halfwidth s);
  Stats.add s 1000.0;
  check_bool "outlier widens the interval" true (Stats.ci95_halfwidth s > 1.0)

let edge_suite =
  let tc = Alcotest.test_case in
  [
    ( "sim.edge",
      [
        tc "process exception propagates" `Quick test_process_exception_propagates;
        tc "yield ordering" `Quick test_zero_delay_runs_in_order;
        tc "ci95" `Quick test_ci95;
      ] );
  ]

let suite = suite @ edge_suite

let test_obs_snapshot_sorted () =
  let o = Obs.create () in
  Obs.incr (Obs.counter o ~layer:"kernel" ~name:"b" ~key:"x");
  Obs.incr (Obs.counter o ~layer:"hw" ~name:"a" ~key:"y");
  Obs.set (Obs.gauge o ~layer:"hw" ~name:"a" ~key:"x") 2.0;
  let ids =
    List.map
      (fun s -> (s.Obs.s_layer, s.Obs.s_name, s.Obs.s_key))
      (Obs.snapshot o)
  in
  Alcotest.(check (list (triple string string string)))
    "snapshot sorted by layer/name/key"
    [ ("hw", "a", "x"); ("hw", "a", "y"); ("kernel", "b", "x") ]
    ids;
  let pref = Obs.prefix_keys "D:p1:" (Obs.snapshot o) in
  Alcotest.(check (list string))
    "prefix_keys rewrites keys"
    [ "D:p1:x"; "D:p1:y"; "D:p1:x" ]
    (List.map (fun s -> s.Obs.s_key) pref);
  check_bool "dump mentions cell" true
    (let dump = Obs.dump o in
     String.length dump > 0
     &&
     let sub = "kernel/b[x] = counter 1" in
     let rec find i =
       i + String.length sub <= String.length dump
       && (String.sub dump i (String.length sub) = sub || find (i + 1))
     in
     find 0)

let test_gamma_like_mean () =
  let r = Rng.create 3 in
  let s = Stats.create () in
  for _ = 1 to 5000 do
    Stats.add s (Rng.gamma_like r ~mean:100.0 ~shape:2)
  done;
  check_bool "empirical mean near 100" true
    (Float.abs (Stats.mean s -. 100.0) < 5.0)

let misc_suite =
  let tc = Alcotest.test_case in
  [
    ( "sim.misc",
      [
        tc "obs snapshot ordering" `Quick test_obs_snapshot_sorted;
        tc "gamma mean" `Quick test_gamma_like_mean;
      ] );
  ]

let suite = suite @ misc_suite

let test_waitgroup_finish_without_add () =
  let e = Engine.create () in
  let wg = Waitgroup.create e in
  Alcotest.check_raises "finish without add"
    (Invalid_argument "Waitgroup.finish: count already zero") (fun () ->
      Waitgroup.finish wg)

let test_negative_sleep_rejected () =
  let e = Engine.create () in
  let raised = ref false in
  Engine.spawn e (fun () ->
      match Engine.sleep (-1.0) with
      | () -> ()
      | exception Invariant.Violation { v_layer = "engine"; _ } ->
          raised := true);
  (try Engine.run e with Invariant.Violation { v_layer = "engine"; _ } ->
    raised := true);
  check_bool "negative sleep rejected" true !raised

let guard_suite =
  let tc = Alcotest.test_case in
  [
    ( "sim.guards",
      [
        tc "waitgroup misuse" `Quick test_waitgroup_finish_without_add;
        tc "negative sleep" `Quick test_negative_sleep_rejected;
      ] );
  ]

let suite = suite @ guard_suite

(* ------------------------------------------------------------------ *)
(* Pheap: direct unit tests of the engine's event queue *)

let test_pheap_empty () =
  let h = Pheap.create ~cmp:Int.compare in
  check_bool "pop on empty" true (Pheap.pop h = None);
  check_bool "peek on empty" true (Pheap.peek h = None);
  check_int "size 0" 0 (Pheap.size h);
  check_bool "is_empty" true (Pheap.is_empty h);
  check_bool "empty heap is a heap" true (Pheap.is_heap h);
  Pheap.push h 3;
  Pheap.clear h;
  check_bool "pop after clear" true (Pheap.pop h = None)

let test_pheap_total_order_seeded () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 400 in
      let xs = List.init n (fun _ -> Rng.int rng 1000) in
      let h = Pheap.create ~cmp:Int.compare in
      List.iter
        (fun x ->
          Pheap.push h x;
          check_bool "heap order after push" true (Pheap.is_heap h))
        xs;
      check_int "size after pushes" n (Pheap.size h);
      let rec drain acc =
        match Pheap.peek h with
        | None ->
            check_bool "pop agrees with peek at end" true (Pheap.pop h = None);
            List.rev acc
        | Some top ->
            check_bool "pop returns the peeked element" true
              (Pheap.pop h = Some top);
            check_bool "heap order after pop" true (Pheap.is_heap h);
            drain (top :: acc)
      in
      let drained = drain [] in
      check_bool "drained in total order" true
        (drained = List.sort Int.compare xs))
    [ 1; 2; 7; 42; 1337 ]

(* The engine orders events by (time, seq) with seq assigned at insertion,
   so same-time events must drain in insertion order no matter how the
   pushes were interleaved. *)
let test_pheap_tie_break_deterministic () =
  let cmp (t1, s1) (t2, s2) =
    match Float.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c
  in
  let evs =
    Array.init 64 (fun i -> ((if i land 1 = 0 then 1.0 else 2.0), i))
  in
  let expected = List.sort cmp (Array.to_list evs) in
  List.iter
    (fun seed ->
      let scrambled = Array.copy evs in
      Rng.shuffle (Rng.create seed) scrambled;
      let h = Pheap.create ~cmp in
      Array.iter (Pheap.push h) scrambled;
      let rec drain acc =
        match Pheap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      check_bool "ties drain by sequence number" true (drain [] = expected))
    [ 3; 5; 9; 21 ]

let pheap_suite =
  let tc = Alcotest.test_case in
  [
    ( "sim.pheap",
      [
        tc "empty heap" `Quick test_pheap_empty;
        tc "total order under random seeds" `Quick test_pheap_total_order_seeded;
        tc "tie-breaking determinism" `Quick test_pheap_tie_break_deterministic;
      ] );
  ]

let suite = suite @ pheap_suite

(* ------------------------------------------------------------------ *)
(* Event_queue: differential tests of the monomorphic (time, seq) queue
   — binary and 4-ary variants — against the reference Pheap, plus the
   allocation guarantee the engine's run loop is built on. *)

let eq_cmp (t1, s1) (t2, s2) =
  match Float.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c

let drain_queue (type q) (module Q : Event_queue.S with type t = q) (q : q) =
  let rec go acc =
    if Q.is_empty q then List.rev acc
    else begin
      let at = Q.min_time q and seq = Q.min_seq q in
      (Q.pop_exn q) ();
      go ((at, seq) :: acc)
    end
  in
  go []

let prop_event_queue_matches_pheap =
  QCheck.Test.make
    ~name:"event queue drains like pheap (binary and 4-ary)" ~count:300
    QCheck.(list (int_range 0 7))
    (fun xs ->
      (* seq assigned in push order, as the engine does; small time
         domain forces same-time groups so ties are exercised hard *)
      let h = Pheap.create ~cmp:eq_cmp in
      let qb = Event_queue.create () in
      let qf = Event_queue.Fourary.create () in
      List.iteri
        (fun s x ->
          let at = float_of_int x in
          Pheap.push h (at, s);
          Event_queue.push qb ~at ~seq:s (fun () -> ());
          Event_queue.Fourary.push qf ~at ~seq:s (fun () -> ()))
        xs;
      let rec drain_ph acc =
        match Pheap.pop h with
        | None -> List.rev acc
        | Some x -> drain_ph (x :: acc)
      in
      let expected = drain_ph [] in
      drain_queue (module Event_queue) qb = expected
      && drain_queue (module Event_queue.Fourary) qf = expected)

(* Interleaved pushes and pops against all three structures at once:
   exercises sift-down from mid-heap states a build-then-drain test
   never reaches. *)
let test_event_queue_interleaved_differential () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let h = Pheap.create ~cmp:eq_cmp in
      let qb = Event_queue.create () in
      let qf = Event_queue.Fourary.create () in
      let seq = ref 0 in
      for _ = 1 to 2_000 do
        if Rng.int rng 3 > 0 || Pheap.is_empty h then begin
          let at = float_of_int (Rng.int rng 16) in
          let s = !seq in
          incr seq;
          Pheap.push h (at, s);
          Event_queue.push qb ~at ~seq:s (fun () -> ());
          Event_queue.Fourary.push qf ~at ~seq:s (fun () -> ())
        end
        else begin
          let expected = Pheap.pop h in
          let got_b = (Event_queue.min_time qb, Event_queue.min_seq qb) in
          let got_f =
            (Event_queue.Fourary.min_time qf, Event_queue.Fourary.min_seq qf)
          in
          (Event_queue.pop_exn qb) ();
          (Event_queue.Fourary.pop_exn qf) ();
          check_bool "binary pop matches pheap" true (Some got_b = expected);
          check_bool "4-ary pop matches pheap" true (Some got_f = expected)
        end
      done;
      check_int "sizes agree (binary)" (Pheap.size h) (Event_queue.size qb);
      check_int "sizes agree (4-ary)" (Pheap.size h)
        (Event_queue.Fourary.size qf);
      check_bool "binary invariant holds" true (Event_queue.is_heap qb);
      check_bool "4-ary invariant holds" true (Event_queue.Fourary.is_heap qf);
      let expected =
        let rec go acc =
          match Pheap.pop h with None -> List.rev acc | Some x -> go (x :: acc)
        in
        go []
      in
      check_bool "binary drains like pheap" true
        (drain_queue (module Event_queue) qb = expected);
      check_bool "4-ary drains like pheap" true
        (drain_queue (module Event_queue.Fourary) qf = expected))
    [ 11; 23; 42; 1009 ]

(* The refactored run loop's contract: with checking off and no tracing,
   a self-rescheduling no-op event costs zero minor-heap words.  This is
   what keeps the simulator's throughput allocation-flat; a regression
   here means a float got boxed or an option crept back into the hot
   path (see DESIGN.md, "Engine internals").  The bound is per-event
   with generous slack for the run loop's fixed-cost closures. *)
let test_run_loop_zero_alloc () =
  let saved = Invariant.mode () in
  Invariant.set_mode Invariant.Off;
  Fun.protect
    ~finally:(fun () -> Invariant.set_mode saved)
    (fun () ->
      let e = Engine.create () in
      let events = 50_000 in
      let n = ref 0 in
      let rec tick () =
        incr n;
        if !n < events then Engine.schedule e tick
      in
      (* warm-up pass: grows the queue arrays, settles the minor heap *)
      Engine.schedule e tick;
      Engine.run e;
      n := 0;
      Gc.full_major ();
      let w0 = Gc.minor_words () in
      Engine.schedule e tick;
      Engine.run e;
      let w1 = Gc.minor_words () in
      let per_event = (w1 -. w0) /. float_of_int events in
      check_bool
        (Printf.sprintf "run loop allocates (%.4f words/event)" per_event)
        true
        (per_event < 0.01))

let event_queue_suite =
  let tc = Alcotest.test_case in
  [
    ( "sim.event_queue",
      QCheck_alcotest.to_alcotest prop_event_queue_matches_pheap
      :: [
           tc "interleaved differential vs pheap" `Quick
             test_event_queue_interleaved_differential;
           tc "run loop allocation-free" `Quick test_run_loop_zero_alloc;
         ] );
  ]

let suite = suite @ event_queue_suite
