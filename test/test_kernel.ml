(* Tests for the simulated host kernel: page cache, writeback/flusher,
   syscall accounting, local filesystem and FUSE transport. *)

open Danaus_sim
open Danaus_hw
open Danaus_kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_floatish = Alcotest.(check (float 1e-3))

let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let make_kernel ?(cores = 4) ?(page_cache_limit = gib 1) () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores in
  let activated = Array.init cores (fun i -> i) in
  let k = Kernel.create e ~cpu ~activated ~page_cache_limit in
  (e, cpu, k)

let pool_of ?(name = "pool0") ?(cores = [| 0; 1 |]) ?(mem = gib 8) () =
  Cgroup.create ~name ~cores ~mem_limit:mem

(* ------------------------------------------------------------------ *)
(* Page cache *)

let test_pc_miss_then_hit () =
  let e, _, k = make_kernel () in
  let pc = Kernel.page_cache k in
  let m = Page_cache.add_mount pc ~name:"fs" ~max_dirty:(mib 64) () in
  let f = Page_cache.file pc m ~key:"a" ~flush:(fun ~bytes:_ -> ()) in
  Engine.spawn e (fun () ->
      check_int "all missing" (mib 1) (Page_cache.missing f ~off:0 ~len:(mib 1));
      Page_cache.insert_clean f ~off:0 ~len:(mib 1);
      check_int "hit after insert" 0 (Page_cache.missing f ~off:0 ~len:(mib 1));
      check_int "beyond still missing" (mib 1)
        (Page_cache.missing f ~off:(mib 1) ~len:(mib 1)));
  Engine.run e

let test_pc_dirty_accounting () =
  let e, _, k = make_kernel () in
  let pc = Kernel.page_cache k in
  let m = Page_cache.add_mount pc ~name:"fs" ~max_dirty:(mib 64) () in
  let f = Page_cache.file pc m ~key:"a" ~flush:(fun ~bytes:_ -> ()) in
  Engine.spawn e (fun () ->
      Page_cache.write f ~off:0 ~len:(mib 2);
      check_int "dirty bytes" (mib 2) (Page_cache.dirty_bytes pc m);
      check_int "file dirty" (mib 2) (Page_cache.dirty_bytes_of f);
      (* rewriting the same range does not double count *)
      Page_cache.write f ~off:0 ~len:(mib 2);
      check_int "no double count" (mib 2) (Page_cache.dirty_bytes pc m));
  Engine.run e

let test_pc_take_dirty_oldest_first () =
  let e, _, k = make_kernel () in
  let pc = Kernel.page_cache k in
  let m = Page_cache.add_mount pc ~name:"fs" ~max_dirty:(mib 64) () in
  let f = Page_cache.file pc m ~key:"a" ~flush:(fun ~bytes:_ -> ()) in
  Engine.spawn e (fun () ->
      Page_cache.write f ~off:0 ~len:(mib 1);
      Engine.sleep 10.0;
      Page_cache.write f ~off:(mib 1) ~len:(mib 1);
      (* only the first MiB is older than t=5 *)
      let work =
        Page_cache.take_dirty pc m ~older_than:5.0 ~max_bytes:max_int
      in
      let bytes = List.fold_left (fun acc (_, b) -> acc + b) 0 work in
      check_int "only expired taken" (mib 1) bytes;
      (* selected data stays accounted until writeback completes *)
      check_int "still counted while under writeback" (mib 2)
        (Page_cache.dirty_bytes pc m);
      Page_cache.writeback_complete pc m ~bytes;
      check_int "rest still dirty" (mib 1) (Page_cache.dirty_bytes pc m));
  Engine.run e

let test_pc_throttle_and_wake () =
  let e, _, k = make_kernel () in
  let pc = Kernel.page_cache k in
  let m = Page_cache.add_mount pc ~name:"fs" ~max_dirty:(mib 1) () in
  let f = Page_cache.file pc m ~key:"a" ~flush:(fun ~bytes:_ -> ()) in
  let resumed_at = ref (-1.0) in
  Engine.spawn e (fun () ->
      Page_cache.write f ~off:0 ~len:(mib 2);
      Page_cache.throttle f;
      resumed_at := Engine.time ());
  Engine.spawn e (fun () ->
      Engine.sleep 3.0;
      let work = Page_cache.take_dirty pc m ~older_than:infinity ~max_bytes:max_int in
      let bytes = List.fold_left (fun acc (_, b) -> acc + b) 0 work in
      Page_cache.writeback_complete pc m ~bytes);
  Engine.run e;
  check_floatish "throttled until writeback completed" 3.0 !resumed_at

let test_pc_eviction_clean_only () =
  let e, _, k = make_kernel ~page_cache_limit:(mib 1) () in
  let pc = Kernel.page_cache k in
  let m = Page_cache.add_mount pc ~name:"fs" ~max_dirty:(gib 1) () in
  let clean = Page_cache.file pc m ~key:"clean" ~flush:(fun ~bytes:_ -> ()) in
  let dirty = Page_cache.file pc m ~key:"dirty" ~flush:(fun ~bytes:_ -> ()) in
  Engine.spawn e (fun () ->
      Page_cache.insert_clean clean ~off:0 ~len:(mib 1);
      Page_cache.write dirty ~off:0 ~len:(mib 1);
      (* cache is 2 MiB used with a 1 MiB limit: the clean file must have
         been evicted, the dirty one must remain *)
      check_bool "clean data evicted" true
        (Page_cache.missing clean ~off:0 ~len:(mib 1) > 0);
      check_int "dirty data kept" 0 (Page_cache.missing dirty ~off:0 ~len:(mib 1)));
  Engine.run e

let test_pc_fsync_flushes_all () =
  let e, _, k = make_kernel () in
  let pc = Kernel.page_cache k in
  let m = Page_cache.add_mount pc ~name:"fs" ~max_dirty:(mib 64) () in
  let flushed = ref 0 in
  let f =
    Page_cache.file pc m ~key:"a" ~flush:(fun ~bytes -> flushed := !flushed + bytes)
  in
  let pool = pool_of () in
  Engine.spawn e (fun () ->
      Page_cache.write f ~off:0 ~len:(mib 3);
      Kernel.fsync_file k ~pool f;
      check_int "all flushed" (mib 3) !flushed;
      check_int "nothing dirty" 0 (Page_cache.dirty_bytes pc m));
  Engine.run e

(* ------------------------------------------------------------------ *)
(* Kernel accounting *)

let test_syscall_costs () =
  let e, cpu, k = make_kernel () in
  let pool = pool_of () in
  Engine.spawn e (fun () -> Kernel.syscall k ~pool (fun () -> ()));
  Engine.run e;
  check_floatish "2 mode switches of CPU"
    (2.0 *. (Kernel.costs k).Costs.mode_switch)
    (Cpu.busy_seconds_by cpu ~cores:(Cgroup.cores pool) ~tenant:"pool0");
  check_floatish "syscall counted" 1.0
    (Obs.get (Kernel.obs k) ~layer:"kernel" ~name:"syscalls" ~key:"pool0")

let test_context_switch_accounting () =
  let e, _, k = make_kernel () in
  let pool = pool_of () in
  Engine.spawn e (fun () -> Kernel.context_switches k ~pool 4);
  Engine.run e;
  check_floatish "counted" 4.0
    (Obs.get (Kernel.obs k) ~layer:"kernel" ~name:"context_switches" ~key:"pool0")

let test_blocking_io_iowait () =
  let e, _, k = make_kernel () in
  let pool = pool_of () in
  Engine.spawn e (fun () ->
      Kernel.blocking_io k ~pool (fun () -> Engine.sleep 2.0));
  Engine.run e;
  check_floatish "io wait recorded" 2.0
    (Obs.get (Kernel.obs k) ~layer:"kernel" ~name:"io_wait" ~key:"pool0")

let test_lock_interning_and_stats () =
  let e, _, k = make_kernel () in
  check_bool "same name same lock" true (Kernel.lock k "a" == Kernel.lock k "a");
  check_bool "different locks" true (Kernel.lock k "a" != Kernel.lock k "b");
  Engine.spawn e (fun () ->
      Mutex_sim.with_lock (Kernel.lock k "a") (fun () -> Engine.sleep 1.0));
  Engine.run e;
  let _, avg_hold, n = Kernel.lock_request_stats k in
  check_int "one request" 1 n;
  check_floatish "hold time" 1.0 avg_hold;
  Kernel.reset_lock_stats k;
  let _, _, n = Kernel.lock_request_stats k in
  check_int "stats reset" 0 n

(* ------------------------------------------------------------------ *)
(* Flusher: kernel writeback uses any activated core *)

let test_flusher_steals_foreign_cores () =
  let e, cpu, k = make_kernel ~cores:4 () in
  Kernel.start_flushers k;
  let pc = Kernel.page_cache k in
  let m = Page_cache.add_mount pc ~name:"cephfs" ~max_dirty:(mib 256) () in
  (* pool0 owns cores 0-1; cores 2-3 belong to somebody else *)
  let writer_pool = pool_of ~name:"pool0" ~cores:[| 0; 1 |] () in
  let f = Page_cache.file pc m ~key:"big" ~flush:(fun ~bytes:_ -> Engine.sleep 1e-6) in
  Engine.spawn e (fun () ->
      (* dirty a lot of data, then give the 1 s writeback scan time to
         kick in and flush it *)
      for i = 0 to 63 do
        Page_cache.write f ~off:(i * mib 4) ~len:(mib 4);
        Kernel.pool_cpu k ~pool:writer_pool 1e-6
      done;
      Engine.sleep 10.0);
  Engine.run_until e 12.0;
  let stolen = Cpu.busy_seconds_by cpu ~cores:[| 2; 3 |] ~tenant:"kernel" in
  check_bool "flusher burned CPU on foreign cores" true (stolen > 0.0);
  check_int "everything flushed" 0 (Page_cache.total_dirty pc)

let test_flusher_respects_expire_interval () =
  let e, _, k = make_kernel () in
  Kernel.start_flushers k;
  let pc = Kernel.page_cache k in
  let m = Page_cache.add_mount pc ~name:"fs" ~max_dirty:(gib 1) () in
  let f = Page_cache.file pc m ~key:"a" ~flush:(fun ~bytes:_ -> ()) in
  Engine.spawn e (fun () -> Page_cache.write f ~off:0 ~len:(mib 1));
  (* small dirty amount, under background threshold: flushed only after
     the 5 s expire interval *)
  Engine.run_until e 3.0;
  check_int "still dirty before expire" (mib 1) (Page_cache.total_dirty pc);
  Engine.run_until e 8.0;
  check_int "flushed after expire" 0 (Page_cache.total_dirty pc)

(* ------------------------------------------------------------------ *)
(* Local filesystem *)

let test_local_fs_read_caches () =
  let e, _, k = make_kernel () in
  let disk = Disk.create e ~name:"hdd" ~bandwidth:(float_of_int (mib 100)) ~latency:1e-3 ~seek:5e-3 in
  let fs = Local_fs.create k ~name:"ext4" ~disk ~max_dirty:(mib 64) () in
  let pool = pool_of () in
  Engine.spawn e (fun () ->
      Local_fs.read fs ~pool ~path:"/f" ~off:0 ~len:4096;
      let t1 = Engine.time () in
      Local_fs.read fs ~pool ~path:"/f" ~off:0 ~len:4096;
      let t2 = Engine.time () in
      check_bool "second read is a cache hit (much faster)" true
        (t2 -. t1 < (t1 /. 2.0)));
  Engine.run e;
  check_bool "disk saw the miss" true (Disk.bytes_transferred disk > 0.0)

let test_local_fs_write_dirties_and_flushes () =
  let e, _, k = make_kernel () in
  Kernel.start_flushers k;
  let disk = Disk.create e ~name:"hdd" ~bandwidth:(float_of_int (mib 200)) ~latency:0.0 ~seek:0.0 in
  let fs = Local_fs.create k ~name:"ext4" ~disk ~max_dirty:(mib 64) () in
  let pool = pool_of () in
  Engine.spawn e (fun () -> Local_fs.write fs ~pool ~path:"/f" ~off:0 ~len:(mib 1));
  Engine.run_until e 10.0;
  check_bool "writeback reached the disk" true
    (Disk.bytes_transferred disk >= float_of_int (mib 1))

let test_local_fs_fsync () =
  let e, _, k = make_kernel () in
  let disk = Disk.create e ~name:"hdd" ~bandwidth:(float_of_int (mib 200)) ~latency:0.0 ~seek:0.0 in
  let fs = Local_fs.create k ~name:"ext4" ~disk ~max_dirty:(mib 64) () in
  let pool = pool_of () in
  Engine.spawn e (fun () ->
      Local_fs.write fs ~pool ~path:"/f" ~off:0 ~len:(mib 1);
      Local_fs.fsync fs ~pool ~path:"/f");
  Engine.run e;
  check_bool "fsync wrote through" true
    (Disk.bytes_transferred disk >= float_of_int (mib 1))

(* ------------------------------------------------------------------ *)
(* FUSE *)

let test_fuse_roundtrip () =
  let e, _, k = make_kernel () in
  let service_pool = pool_of ~name:"svc" ~cores:[| 2; 3 |] () in
  let caller_pool = pool_of ~name:"app" ~cores:[| 0; 1 |] () in
  let fuse = Fuse.create k ~name:"ceph-fuse" ~pool:service_pool in
  Fuse.start fuse ~threads:2;
  let result = ref 0 in
  Engine.spawn e (fun () ->
      result := Fuse.call fuse ~caller:caller_pool ~bytes:4096 (fun () -> 41 + 1));
  Engine.run_until e 1.0;
  check_int "handler result returned" 42 !result;
  check_int "one request served" 1 (Fuse.requests fuse);
  check_floatish "caller context switches" 2.0
    (Obs.get (Kernel.obs k) ~layer:"kernel" ~name:"context_switches" ~key:"app");
  check_floatish "daemon context switches" 2.0
    (Obs.get (Kernel.obs k) ~layer:"kernel" ~name:"context_switches" ~key:"svc")

let test_fuse_parallel_requests () =
  let e, _, k = make_kernel () in
  let service_pool = pool_of ~name:"svc" ~cores:[| 2; 3 |] () in
  let caller_pool = pool_of ~name:"app" ~cores:[| 0; 1 |] () in
  let fuse = Fuse.create k ~name:"fuse" ~pool:service_pool in
  Fuse.start fuse ~threads:2;
  let finished = ref 0 in
  for _ = 1 to 2 do
    Engine.spawn e (fun () ->
        Fuse.call fuse ~caller:caller_pool ~bytes:0 (fun () -> Engine.sleep 1.0);
        incr finished)
  done;
  Engine.run_until e 1.5;
  check_int "two daemon threads served in parallel" 2 !finished

let suite =
  let tc = Alcotest.test_case in
  [
    ( "kernel.page_cache",
      [
        tc "miss then hit" `Quick test_pc_miss_then_hit;
        tc "dirty accounting" `Quick test_pc_dirty_accounting;
        tc "take_dirty oldest first" `Quick test_pc_take_dirty_oldest_first;
        tc "throttle and wake" `Quick test_pc_throttle_and_wake;
        tc "eviction spares dirty" `Quick test_pc_eviction_clean_only;
        tc "fsync flushes all" `Quick test_pc_fsync_flushes_all;
      ] );
    ( "kernel.accounting",
      [
        tc "syscall costs" `Quick test_syscall_costs;
        tc "context switches" `Quick test_context_switch_accounting;
        tc "blocking io wait" `Quick test_blocking_io_iowait;
        tc "lock interning and stats" `Quick test_lock_interning_and_stats;
      ] );
    ( "kernel.flusher",
      [
        tc "steals foreign cores" `Quick test_flusher_steals_foreign_cores;
        tc "respects expire interval" `Quick test_flusher_respects_expire_interval;
      ] );
    ( "kernel.local_fs",
      [
        tc "read caches" `Quick test_local_fs_read_caches;
        tc "write dirties and flushes" `Quick test_local_fs_write_dirties_and_flushes;
        tc "fsync" `Quick test_local_fs_fsync;
      ] );
    ( "kernel.fuse",
      [
        tc "roundtrip" `Quick test_fuse_roundtrip;
        tc "parallel requests" `Quick test_fuse_parallel_requests;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Readahead efficiency on the local filesystem *)

let test_local_fs_sequential_readahead () =
  let e, _, k = make_kernel () in
  let disk = Disk.create e ~name:"hdd" ~bandwidth:(float_of_int (mib 100)) ~latency:1e-3 ~seek:5e-3 in
  let fs = Local_fs.create k ~name:"ext4" ~disk ~max_dirty:(mib 64) ~readahead:(mib 1) () in
  let pool = pool_of () in
  let seq_time = ref 0.0 in
  Engine.spawn e (fun () ->
      (* 16 sequential 64 KiB reads: the first miss prefetches 1 MiB, the
         rest are hits *)
      let t0 = Engine.time () in
      for i = 0 to 15 do
        Local_fs.read fs ~pool ~path:"/seq" ~off:(i * 65536) ~len:65536
      done;
      seq_time := Engine.time () -. t0);
  Engine.run e;
  (* one disk op for the whole megabyte, not sixteen *)
  check_bool "readahead coalesced the disk accesses" true
    (Disk.busy_seconds disk < 0.05)

let readahead_suite =
  let tc = Alcotest.test_case in
  [ ("kernel.readahead", [ tc "sequential readahead" `Quick test_local_fs_sequential_readahead ]) ]

let suite = suite @ readahead_suite

let test_top_locks_by_wait () =
  let e, _, k = make_kernel () in
  Engine.spawn e (fun () ->
      Mutex_sim.with_lock (Kernel.lock k "hot") (fun () -> Engine.sleep 1.0));
  Engine.spawn e (fun () ->
      Mutex_sim.with_lock (Kernel.lock k "hot") (fun () -> ()));
  Engine.spawn e (fun () -> Mutex_sim.with_lock (Kernel.lock k "cold") (fun () -> ()));
  Engine.run e;
  match Kernel.top_locks_by_wait k ~n:1 with
  | [ (name, wait, _, acq) ] ->
      Alcotest.(check string) "hottest lock" "hot" name;
      check_floatish "waited behind the holder" 1.0 wait;
      check_int "acquisitions" 2 acq
  | _ -> Alcotest.fail "expected one entry"

let debug_suite =
  [ ("kernel.debug", [ Alcotest.test_case "top locks by wait" `Quick test_top_locks_by_wait ]) ]

let suite = suite @ debug_suite
