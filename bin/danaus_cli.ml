(* Command-line driver for the Danaus reproduction: list the paper's
   experiments, run one (or all), and print the reproduced tables. *)

open Cmdliner

(* Structured metrics land in JSON by default, CSV when the file name
   ends in .csv. *)
let write_metrics file reports =
  let text =
    if Filename.check_suffix file ".csv" then
      Danaus_experiments.Report.metrics_csv reports
    else Danaus_experiments.Report.metrics_json reports
  in
  Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc text);
  Printf.printf "(metrics written to %s)\n" file

let write_trace file reports =
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc
        (Danaus_experiments.Report.trace_json reports));
  Printf.printf "(trace written to %s)\n" file

let write_chrome file reports =
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc
        (Danaus_experiments.Trace_export.chrome_json reports));
  Printf.printf "(chrome trace written to %s; open in Perfetto or \
                  chrome://tracing)\n"
    file

let write_timeseries file reports =
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc
        (Danaus_experiments.Report.timeseries_json reports));
  Printf.printf "(timeseries written to %s)\n" file

let print_reports ?csv_dir reports =
  List.iter
    (fun r ->
      print_string (Danaus_experiments.Report.render r);
      match csv_dir with
      | None -> ()
      | Some dir ->
          let file =
            Filename.concat dir (r.Danaus_experiments.Report.id ^ ".csv")
          in
          Out_channel.with_open_text file (fun oc ->
              Out_channel.output_string oc
                (Danaus_experiments.Report.to_csv r));
          Printf.printf "(csv written to %s)\n" file)
    reports

let run_experiment ?csv_dir ?metrics_file ?trace_file ?chrome_file
    ?timeseries_file ~quick ~seed ~repeats id =
  match Danaus_experiments.Registry.find id with
  | None ->
      Printf.eprintf "unknown experiment %S; try `danaus-cli list`\n" id;
      exit 1
  | Some e ->
      Printf.printf "# %s\n%!" e.Danaus_experiments.Registry.title;
      let t0 = Unix.gettimeofday () in
      let all_reports =
        List.concat_map
          (fun rep ->
            let seed = seed + rep in
            if repeats > 1 then Printf.printf "## repeat %d (seed %d)\n%!" rep seed;
            let reports = e.Danaus_experiments.Registry.run ~quick ~seed in
            print_reports ?csv_dir reports;
            reports)
          (List.init (Stdlib.max 1 repeats) Fun.id)
      in
      Option.iter (fun f -> write_metrics f all_reports) metrics_file;
      Option.iter (fun f -> write_trace f all_reports) trace_file;
      Option.iter (fun f -> write_chrome f all_reports) chrome_file;
      Option.iter (fun f -> write_timeseries f all_reports) timeseries_file;
      Printf.printf "(completed in %.1fs wall time)\n\n%!"
        (Unix.gettimeofday () -. t0)

let list_cmd =
  let doc = "List the reproducible tables and figures" in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-8s %s\n" e.Danaus_experiments.Registry.id
          e.Danaus_experiments.Registry.title)
      Danaus_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let quick_flag =
  let doc =
    "Run with reduced durations and dataset sizes (same shapes, minutes \
     instead of hours)."
  in
  Arg.(value & flag & info [ "quick" ] ~doc)

let csv_dir_flag =
  let doc = "Also write each table to DIR/<id>.csv." in
  Arg.(value & opt (some dir) None & info [ "csv" ] ~doc ~docv:"DIR")

let metrics_flag =
  let doc =
    "Write the structured per-layer metrics behind the tables (lock \
     wait/hold, core busy time, flusher activity, IPC round trips, ...) to \
     FILE — JSON, or CSV when FILE ends in .csv."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~doc ~docv:"FILE")

let trace_flag =
  let doc =
    "Enable span tracing and write the collected trace (timestamped \
     kernel/IPC span events) to FILE as JSON."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let chrome_flag =
  let doc =
    "Enable causal span tracing and write a Chrome trace-event JSON \
     timeline to FILE (one track per simulated core, one per pool) — \
     open it in Perfetto (ui.perfetto.dev) or chrome://tracing."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-chrome" ] ~doc ~docv:"FILE")

let timeseries_flag =
  let doc =
    "Sample every counter and gauge at a fixed simulated period (1 s) \
     during the measured phase and write the timeseries to FILE as JSON."
  in
  Arg.(
    value & opt (some string) None & info [ "timeseries" ] ~doc ~docv:"FILE")

let seed_flag =
  let doc =
    "Base seed for every stochastic decision of the run (workload arrival \
     jitter, fault timing windows, ...).  The same seed reproduces the run \
     byte for byte."
  in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc ~docv:"SEED")

let repeats_flag =
  let doc =
    "Repeat the experiment N times with seeds SEED, SEED+1, ..., SEED+N-1."
  in
  Arg.(value & opt int 1 & info [ "repeats" ] ~doc ~docv:"N")

let jobs_flag =
  let doc =
    "Run experiments on N domains in parallel (output is identical to a \
     sequential run)."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~doc ~docv:"N")

let strict_flag =
  let doc =
    "Arm the invariant layer in strict mode: every conservation-law \
     violation raises at the point of violation instead of only being \
     recorded.  Off by default, so published numbers carry zero checking \
     overhead."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let apply_strict strict =
  if strict then Danaus_check.Check.set_mode Danaus_check.Check.Strict

(* Tracing and sampling must be decided before any engine exists: engines
   inherit the defaults at creation, including inside parallel runner
   domains. *)
let apply_trace_default ?(chrome_file = None) ?(timeseries_file = None)
    trace_file =
  if trace_file <> None || chrome_file <> None then
    Danaus_sim.Obs.default_tracing := true;
  if timeseries_file <> None then
    Danaus_sim.Obs.default_sample_period := Some 1.0

let run_cmd =
  let doc = "Run one experiment by id (e.g. fig6a)" in
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let run quick seed repeats strict csv_dir metrics_file trace_file chrome_file
      timeseries_file id =
    apply_strict strict;
    apply_trace_default ~chrome_file ~timeseries_file trace_file;
    run_experiment ?csv_dir ?metrics_file ?trace_file ?chrome_file
      ?timeseries_file ~quick ~seed ~repeats id
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ quick_flag $ seed_flag $ repeats_flag $ strict_flag
      $ csv_dir_flag $ metrics_flag $ trace_flag $ chrome_flag
      $ timeseries_flag $ id)

let all_cmd =
  let doc = "Run every experiment (optionally on several domains)" in
  let run quick seed jobs strict metrics_file trace_file chrome_file
      timeseries_file =
    apply_strict strict;
    apply_trace_default ~chrome_file ~timeseries_file trace_file;
    let t0 = Unix.gettimeofday () in
    let results =
      Danaus_experiments.Registry.run_exps ~jobs ~seed ~quick
        Danaus_experiments.Registry.all
    in
    List.iter
      (fun (e, reports) ->
        Printf.printf "# %s\n%!" e.Danaus_experiments.Registry.title;
        print_reports reports;
        print_newline ())
      results;
    let all_reports = List.concat_map snd results in
    Option.iter (fun f -> write_metrics f all_reports) metrics_file;
    Option.iter (fun f -> write_trace f all_reports) trace_file;
    Option.iter (fun f -> write_chrome f all_reports) chrome_file;
    Option.iter (fun f -> write_timeseries f all_reports) timeseries_file;
    Printf.printf "(completed in %.1fs wall time)\n%!"
      (Unix.gettimeofday () -. t0)
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const run $ quick_flag $ seed_flag $ jobs_flag $ strict_flag
      $ metrics_flag $ trace_flag $ chrome_flag $ timeseries_flag)

let explain_cmd =
  let doc =
    "Run one experiment with causal tracing on and print a layer-by-phase \
     latency attribution table per report (where each traced op's time \
     went: queueing, locks, service, network, backoff)"
  in
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let run quick seed id =
    Danaus_sim.Obs.default_tracing := true;
    Danaus_sim.Obs.default_trace_capacity := 1 lsl 20;
    match Danaus_experiments.Registry.find id with
    | None ->
        Printf.eprintf "unknown experiment %S; try `danaus-cli list`\n" id;
        exit 1
    | Some e ->
        Printf.printf "# %s\n%!" e.Danaus_experiments.Registry.title;
        let reports = e.Danaus_experiments.Registry.run ~quick ~seed in
        print_reports reports;
        List.iter
          (fun r ->
            print_string
              (Danaus_experiments.Trace_export.render_attribution r))
          reports
  in
  Cmd.v (Cmd.info "explain" ~doc) Term.(const run $ quick_flag $ seed_flag $ id)

let replay_cmd =
  let doc = "Replay an operation trace file against a Table 1 configuration" in
  let file =
    Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"TRACE")
  in
  let config =
    let doc = "Client configuration (D, K, F, FP, K/K, F/K, F/F, FP/FP)." in
    Arg.(value & opt string "D" & info [ "config" ] ~doc ~docv:"CFG")
  in
  let threads =
    Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Replay thread count.")
  in
  let run file config threads seed =
    let config =
      match Danaus.Config.of_label config with
      | Some c -> c
      | None ->
          Printf.eprintf "unknown configuration %S\n" config;
          exit 1
    in
    let text = In_channel.with_open_text file In_channel.input_all in
    let trace =
      match Danaus_workloads.Trace.parse text with
      | Ok t -> t
      | Error bad ->
          Printf.eprintf "trace parse error at: %s\n" bad;
          exit 1
    in
    let open Danaus_experiments in
    let tb = Testbed.create ~seed ~activated:4 () in
    let pool = Testbed.pool tb 0 in
    let ct =
      Danaus.Container_engine.launch tb.Testbed.containers ~config ~pool
        ~id:"replay" ()
    in
    let result = ref None in
    Danaus_sim.Engine.spawn tb.Testbed.engine (fun () ->
        let ctx = Testbed.ctx tb ~pool ~seed:1 in
        result :=
          Some
            (Danaus_workloads.Trace.replay ctx
               ~view:ct.Danaus.Container_engine.view ~threads trace));
    Testbed.drive tb ~stop:(fun () -> !result <> None);
    match !result with
    | Some (stats, elapsed, errors) ->
        Printf.printf
          "%d ops in %.3f simulated seconds (%.1f MB read, %.1f MB written, %d errors)\n"
          stats.Danaus_workloads.Workload.ops elapsed
          (stats.Danaus_workloads.Workload.bytes_read /. 1e6)
          (stats.Danaus_workloads.Workload.bytes_written /. 1e6)
          errors
    | None -> ()
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ file $ config $ threads $ seed_flag)

let fuzz_cmd =
  let doc =
    "Property-fuzz the simulator: expand each seed into a random scenario \
     (testbed shape, workload mix, faults, QoS), run it with the invariant \
     layer armed, and judge it with metamorphic and analytic oracles \
     (repeat determinism, domain identity, duration monotonicity, writer \
     conservation, cached re-read, recovery convergence)."
  in
  let seeds =
    let doc = "Seed range to fuzz, inclusive (e.g. 0-63), or one seed." in
    Arg.(value & opt string "0-15" & info [ "seeds" ] ~doc ~docv:"A-B")
  in
  let report =
    let doc = "Write a JSON violation/oracle report to FILE (CI artifact)." in
    Arg.(value & opt (some string) None & info [ "report" ] ~doc ~docv:"FILE")
  in
  let parse_range s =
    match String.index_opt s '-' with
    | Some i when i > 0 ->
        let lo = int_of_string_opt (String.sub s 0 i) in
        let hi =
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
        in
        (match (lo, hi) with
        | Some lo, Some hi when lo <= hi -> Some (lo, hi)
        | _ -> None)
    | _ -> (
        match int_of_string_opt s with Some n -> Some (n, n) | None -> None)
  in
  let run quick strict seeds report =
    (* the fuzzer always records violations; --strict also raises at the
       point of violation, which pins the failing stack *)
    Danaus_check.Check.set_mode
      (if strict then Danaus_check.Check.Strict else Danaus_check.Check.Record);
    (* trace so the span-tree well-formedness checks have data *)
    Danaus_sim.Obs.default_tracing := true;
    match parse_range seeds with
    | None ->
        Printf.eprintf "bad --seeds %S (expected A-B or N)\n" seeds;
        exit 1
    | Some (lo, hi) ->
        let t0 = Unix.gettimeofday () in
        let reports =
          Danaus_experiments.Fuzz.run_range
            ~progress:(fun r ->
              Printf.printf "%s\n%!" (Danaus_experiments.Fuzz.render_report r))
            ~quick ~lo ~hi ()
        in
        Option.iter
          (fun f ->
            Out_channel.with_open_text f (fun oc ->
                Out_channel.output_string oc
                  (Danaus_experiments.Fuzz.report_json reports));
            Printf.printf "(report written to %s)\n" f)
          report;
        let failed =
          List.filter
            (fun r -> not (Danaus_experiments.Fuzz.seed_passed r))
            reports
        in
        Printf.printf "%d seed(s), %d failed (%.1fs wall time)\n"
          (List.length reports) (List.length failed)
          (Unix.gettimeofday () -. t0);
        if failed <> [] then exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const run $ quick_flag $ strict_flag $ seeds $ report)

let golden_cmd =
  let doc =
    "Golden-table drift guard: print the canonical rendered tables of one \
     experiment (--quick, seed 7, invariants strict), or regenerate every \
     test/golden/<id>.txt with --regen.  `dune runtest` diffs each \
     experiment against its golden file."
  in
  let id = Arg.(value & pos 0 (some string) None & info [] ~docv:"ID") in
  let regen =
    let doc = "Rewrite every golden file under --dir instead of printing." in
    Arg.(value & flag & info [ "regen" ] ~doc)
  in
  let dir =
    let doc = "Golden directory (for --regen)." in
    Arg.(value & opt string "test/golden" & info [ "dir" ] ~doc ~docv:"DIR")
  in
  let run id regen dir =
    let open Danaus_experiments in
    if regen then begin
      let t0 = Unix.gettimeofday () in
      List.iter
        (fun e ->
          let file = Filename.concat dir (Golden.file_name e.Registry.id) in
          Out_channel.with_open_text file (fun oc ->
              Out_channel.output_string oc (Golden.text e));
          Printf.printf "regenerated %s\n%!" file)
        Registry.all;
      Printf.printf "(%d golden files in %.1fs wall time)\n"
        (List.length Registry.all)
        (Unix.gettimeofday () -. t0)
    end
    else
      match id with
      | None ->
          Printf.eprintf "golden: need an experiment ID (or --regen)\n";
          exit 1
      | Some id -> (
          match Registry.find id with
          | None ->
              Printf.eprintf "unknown experiment %S; try `danaus-cli list`\n" id;
              exit 1
          | Some e -> print_string (Golden.text e))
  in
  Cmd.v (Cmd.info "golden" ~doc) Term.(const run $ id $ regen $ dir)

let bench_cmd =
  let doc =
    "Measure the simulation core: engine/mutex/page-cache microbenches plus \
     single seqio and contention cells, reporting wall time, engine events \
     dispatched, events/sec and minor GC words per event.  --json writes a \
     machine-readable BENCH file; --baseline gates the run against a \
     checked-in measurement (events/sec normalized by a spin-loop \
     calibration so the gate holds across machines)."
  in
  let json_file =
    let doc = "Write the measurements to FILE as JSON." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let baseline_file =
    let doc = "Gate against the BENCH json at FILE; exit 1 on regression." in
    Arg.(value & opt (some string) None & info [ "baseline" ] ~doc ~docv:"FILE")
  in
  let tolerance =
    let doc = "Allowed fractional regression before the gate fails." in
    Arg.(value & opt float 0.15 & info [ "tolerance" ] ~doc ~docv:"FRAC")
  in
  let label =
    let doc = "Label recorded in the JSON (e.g. head, baseline)." in
    Arg.(value & opt string "head" & info [ "label" ] ~doc ~docv:"LABEL")
  in
  let run label json_file baseline_file tolerance =
    let result = Danaus_experiments.Perf.run ~label () in
    print_string (Danaus_experiments.Perf.render result);
    Option.iter
      (fun f ->
        Out_channel.with_open_text f (fun oc ->
            Out_channel.output_string oc
              (Danaus_experiments.Perf.to_json result));
        Printf.printf "(bench json written to %s)\n" f)
      json_file;
    match baseline_file with
    | None -> ()
    | Some f ->
        let baseline =
          Danaus_experiments.Perf.of_json
            (In_channel.with_open_text f In_channel.input_all)
        in
        (match
           Danaus_experiments.Perf.gate ~baseline ~head:result ~tolerance
         with
        | Ok () ->
            Printf.printf
              "bench gate OK against %s (label %s, tolerance %.0f%%)\n" f
              baseline.Danaus_experiments.Perf.r_label (100.0 *. tolerance)
        | Error failures ->
            Printf.eprintf "bench gate FAILED against %s:\n" f;
            List.iter (fun m -> Printf.eprintf "  %s\n" m) failures;
            exit 1)
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(const run $ label $ json_file $ baseline_file $ tolerance)

let table1_cmd =
  let doc = "Print Table 1 (the configuration matrix)" in
  let run () = print_string (Danaus.Config.table1 ()) in
  Cmd.v (Cmd.info "table1" ~doc) Term.(const run $ const ())

let main =
  let doc =
    "Danaus reproduction: isolation and efficiency of container I/O at the \
     client side of network storage (Middleware '21)"
  in
  Cmd.group (Cmd.info "danaus-cli" ~version:"1.0.0" ~doc)
    [
      list_cmd; run_cmd; all_cmd; explain_cmd; table1_cmd; replay_cmd;
      fuzz_cmd; golden_cmd; bench_cmd;
    ]

let () = exit (Cmd.eval main)
