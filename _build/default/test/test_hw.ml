(* Tests for the hardware layer: topology, CPU scheduler, memory
   accounting, disks and network. *)

open Danaus_sim
open Danaus_hw

let check_float = Alcotest.(check (float 1e-9))
let check_floatish = Alcotest.(check (float 1e-3))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_topology_paper () =
  let t = Topology.paper_machine () in
  check_int "64 cores" 64 (Topology.total_cores t);
  check_int "32 groups" 32 (Topology.group_count t);
  check_int "core 5 in group 2" 2 (Topology.group_of_core t 5);
  Alcotest.(check (array int)) "group 2 cores" [| 4; 5 |] (Topology.cores_of_group t 2)

let test_topology_range () =
  let t = Topology.paper_machine () in
  Alcotest.(check (array int)) "range" [| 2; 3 |] (Topology.core_range t ~first:2 ~count:2);
  Alcotest.check_raises "out of machine"
    (Invalid_argument "Topology.core_range: outside machine") (fun () ->
      ignore (Topology.core_range t ~first:63 ~count:2))

(* ------------------------------------------------------------------ *)
(* Cpu *)

let test_cpu_serialises_on_one_core () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:1 in
  for _ = 1 to 3 do
    Engine.spawn e (fun () -> Cpu.compute cpu ~tenant:"t" ~eligible:[| 0 |] 1.0)
  done;
  Engine.run e;
  check_floatish "3s of work on 1 core" 3.0 (Engine.now e);
  check_floatish "busy accounted" 3.0 (Cpu.busy_seconds cpu ~cores:[| 0 |])

let test_cpu_parallel_on_two_cores () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:2 in
  for _ = 1 to 2 do
    Engine.spawn e (fun () -> Cpu.compute cpu ~tenant:"t" ~eligible:[| 0; 1 |] 1.0)
  done;
  Engine.run e;
  check_floatish "parallel completion" 1.0 (Engine.now e)

let test_cpu_tenant_attribution () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:2 in
  Engine.spawn e (fun () -> Cpu.compute cpu ~tenant:"a" ~eligible:[| 0 |] 2.0);
  Engine.spawn e (fun () -> Cpu.compute cpu ~tenant:"b" ~eligible:[| 1 |] 3.0);
  Engine.run e;
  check_floatish "tenant a" 2.0 (Cpu.busy_seconds_by cpu ~cores:[| 0; 1 |] ~tenant:"a");
  check_floatish "tenant b" 3.0 (Cpu.busy_seconds_by cpu ~cores:[| 0; 1 |] ~tenant:"b");
  check_floatish "utilization of b on core 1 over 3s" 100.0
    (Cpu.utilization_pct cpu ~cores:[| 1 |] ~tenant:"b" ~elapsed:3.0)

let test_cpu_steal_visibility () =
  (* A tenant allowed on all cores spills onto the core reserved by the
     other tenant — the situation behind the paper's Fig. 1a. *)
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:2 in
  Engine.spawn e (fun () ->
      (* greedy tenant with two concurrent workers allowed everywhere *)
      Engine.fork (fun () -> Cpu.compute cpu ~tenant:"greedy" ~eligible:[| 0; 1 |] 1.0);
      Cpu.compute cpu ~tenant:"greedy" ~eligible:[| 0; 1 |] 1.0);
  Engine.run e;
  let stolen = Cpu.busy_seconds_by cpu ~cores:[| 1 |] ~tenant:"greedy" in
  check_bool "greedy tenant used the reserved core" true (stolen > 0.5)

let test_cpu_fifo_fairness_quantum () =
  (* With quantum slicing, two long jobs on one core should interleave
     and finish at (almost) the same time, not strictly one after the
     other. *)
  let e = Engine.create () in
  let cpu = Cpu.create ~quantum:0.001 e ~cores:1 in
  let finish = Array.make 2 0.0 in
  for i = 0 to 1 do
    Engine.spawn e (fun () ->
        Cpu.compute cpu ~tenant:"t" ~eligible:[| 0 |] 1.0;
        finish.(i) <- Engine.time ())
  done;
  Engine.run e;
  check_bool "both finish near 2s" true
    (Float.abs (finish.(0) -. finish.(1)) < 0.01)

let test_cpu_usage_breakdown () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:1 in
  Engine.spawn e (fun () -> Cpu.compute cpu ~tenant:"x" ~eligible:[| 0 |] 1.0);
  Engine.spawn e (fun () -> Cpu.compute cpu ~tenant:"y" ~eligible:[| 0 |] 2.0);
  Engine.run e;
  match Cpu.usage_breakdown cpu ~cores:[| 0 |] with
  | [ ("x", bx); ("y", by) ] ->
      check_floatish "x busy" 1.0 bx;
      check_floatish "y busy" 2.0 by
  | _ -> Alcotest.fail "unexpected breakdown"

let test_cpu_reset_usage () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:1 in
  Engine.spawn e (fun () -> Cpu.compute cpu ~tenant:"x" ~eligible:[| 0 |] 1.0);
  Engine.run e;
  Cpu.reset_usage cpu;
  check_float "cleared" 0.0 (Cpu.busy_seconds cpu ~cores:[| 0 |])

(* ------------------------------------------------------------------ *)
(* Memory *)

let test_memory_accounting () =
  let m = Memory.create ~name:"pool" ~limit:100 () in
  Memory.alloc m 60;
  Memory.alloc m 60;
  check_int "used" 120 (Memory.used m);
  check_int "high water" 120 (Memory.high_water m);
  check_int "over limit" 20 (Memory.over_limit m);
  Memory.free m 100;
  check_int "after free" 20 (Memory.used m);
  check_int "high water survives" 120 (Memory.high_water m);
  Alcotest.check_raises "over-free"
    (Invalid_argument "Memory.free: pool: freeing 50 of 20") (fun () ->
      Memory.free m 50)

(* ------------------------------------------------------------------ *)
(* Disk *)

let test_disk_service_time () =
  let e = Engine.create () in
  let d = Disk.create e ~name:"hdd" ~bandwidth:100.0 ~latency:0.5 ~seek:0.2 in
  Engine.spawn e (fun () -> Disk.read d ~bytes:100 ~random:false);
  Engine.run e;
  check_floatish "latency + transfer" 1.5 (Engine.now e);
  let e2 = Engine.create () in
  let d2 = Disk.create e2 ~name:"hdd" ~bandwidth:100.0 ~latency:0.5 ~seek:0.2 in
  Engine.spawn e2 (fun () -> Disk.write d2 ~bytes:100 ~random:true);
  Engine.run e2;
  check_floatish "random adds seek" 1.7 (Engine.now e2)

let test_disk_fifo_queue () =
  let e = Engine.create () in
  let d = Disk.create e ~name:"hdd" ~bandwidth:100.0 ~latency:0.0 ~seek:0.0 in
  for _ = 1 to 3 do
    Engine.spawn e (fun () -> Disk.read d ~bytes:100 ~random:false)
  done;
  Engine.run e;
  check_floatish "serialised requests" 3.0 (Engine.now e);
  check_floatish "bytes counted" 300.0 (Disk.bytes_transferred d)

let test_raid0_parallelism () =
  let e = Engine.create () in
  let members =
    Array.init 4 (fun i ->
        Disk.create e ~name:(Printf.sprintf "d%d" i) ~bandwidth:100.0 ~latency:0.0
          ~seek:0.0)
  in
  let arr = Disk.raid0 ~chunk:100 members in
  Engine.spawn e (fun () -> Disk.read arr ~bytes:400 ~random:false);
  Engine.run e;
  (* 400 bytes striped over 4 disks at 100 B/s each -> 1 second *)
  check_floatish "striping speedup" 1.0 (Engine.now e)

(* ------------------------------------------------------------------ *)
(* Net *)

let test_net_transfer_time () =
  let e = Engine.create () in
  let net = Net.create e in
  let a = Net.add_node net ~name:"a" ~bandwidth:1000.0 ~latency:0.1 in
  let b = Net.add_node net ~name:"b" ~bandwidth:1000.0 ~latency:0.1 in
  Engine.spawn e (fun () -> Net.transfer net ~src:a ~dst:b ~bytes:1000);
  Engine.run e;
  (* tx 1s + latency 0.1 + rx 1s *)
  check_floatish "end to end" 2.1 (Engine.now e);
  check_floatish "bytes sent" 1000.0 (Net.bytes_sent a)

let test_net_receiver_congestion () =
  let e = Engine.create () in
  let net = Net.create e in
  let a = Net.add_node net ~name:"a" ~bandwidth:1000.0 ~latency:0.0 in
  let b = Net.add_node net ~name:"b" ~bandwidth:1000.0 ~latency:0.0 in
  let dst = Net.add_node net ~name:"dst" ~bandwidth:1000.0 ~latency:0.0 in
  Engine.spawn e (fun () -> Net.transfer net ~src:a ~dst ~bytes:1000);
  Engine.spawn e (fun () -> Net.transfer net ~src:b ~dst ~bytes:1000);
  Engine.run e;
  (* both senders transmit in parallel (1s each) but the receiver's RX
     serialises the two arrivals: 1s tx + 2s rx on the shared side *)
  check_floatish "incast queueing" 3.0 (Engine.now e)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_cpu_conservation =
  QCheck.Test.make ~name:"cpu busy time equals requested work" ~count:50
    QCheck.(
      pair (int_range 1 4) (list_of_size Gen.(int_range 1 10) (float_range 0.001 0.5)))
    (fun (ncores, jobs) ->
      let e = Engine.create () in
      let cpu = Cpu.create e ~cores:ncores in
      let eligible = Array.init ncores (fun i -> i) in
      List.iter
        (fun dt -> Engine.spawn e (fun () -> Cpu.compute cpu ~tenant:"t" ~eligible dt))
        jobs;
      Engine.run e;
      let want = List.fold_left ( +. ) 0.0 jobs in
      Float.abs (Cpu.busy_seconds cpu ~cores:eligible -. want) < 1e-6)

let prop_memory_highwater =
  QCheck.Test.make ~name:"high water >= used at all times" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 40) (int_range 0 1000))
    (fun allocs ->
      let m = Memory.create ~name:"m" () in
      List.iter
        (fun a ->
          Memory.alloc m a;
          if Memory.used m > 0 && a mod 2 = 0 then Memory.free m (Memory.used m / 2))
        allocs;
      Memory.high_water m >= Memory.used m)

let prop_disk_bytes_conserved =
  QCheck.Test.make ~name:"raid0 conserves bytes" ~count:100
    QCheck.(pair (int_range 1 6) (int_range 0 100000))
    (fun (n, bytes) ->
      let e = Engine.create () in
      let members =
        Array.init n (fun i ->
            Disk.create e ~name:(string_of_int i) ~bandwidth:1e9 ~latency:0.0 ~seek:0.0)
      in
      let arr = Disk.raid0 ~chunk:4096 members in
      Engine.spawn e (fun () -> Disk.write arr ~bytes ~random:false);
      Engine.run e;
      Float.abs (Disk.bytes_transferred arr -. float_of_int bytes) < 0.5)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "hw.topology",
      [
        tc "paper machine" `Quick test_topology_paper;
        tc "core ranges" `Quick test_topology_range;
      ] );
    ( "hw.cpu",
      [
        tc "serialises on one core" `Quick test_cpu_serialises_on_one_core;
        tc "parallel on two cores" `Quick test_cpu_parallel_on_two_cores;
        tc "tenant attribution" `Quick test_cpu_tenant_attribution;
        tc "steal visibility" `Quick test_cpu_steal_visibility;
        tc "quantum fairness" `Quick test_cpu_fifo_fairness_quantum;
        tc "usage breakdown" `Quick test_cpu_usage_breakdown;
        tc "reset usage" `Quick test_cpu_reset_usage;
      ] );
    ("hw.memory", [ tc "accounting" `Quick test_memory_accounting ]);
    ( "hw.disk",
      [
        tc "service time" `Quick test_disk_service_time;
        tc "fifo queue" `Quick test_disk_fifo_queue;
        tc "raid0 parallelism" `Quick test_raid0_parallelism;
      ] );
    ( "hw.net",
      [
        tc "transfer time" `Quick test_net_transfer_time;
        tc "receiver congestion" `Quick test_net_receiver_congestion;
      ] );
    ( "hw.properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_cpu_conservation; prop_memory_highwater; prop_disk_bytes_conserved ] );
  ]

let test_zero_byte_io () =
  let e = Engine.create () in
  let d = Disk.create e ~name:"d" ~bandwidth:100.0 ~latency:0.5 ~seek:0.0 in
  let net = Net.create e in
  let a = Net.add_node net ~name:"a" ~bandwidth:1e6 ~latency:0.1 in
  let b = Net.add_node net ~name:"b" ~bandwidth:1e6 ~latency:0.1 in
  Engine.spawn e (fun () ->
      Disk.read d ~bytes:0 ~random:false;
      Net.transfer net ~src:a ~dst:b ~bytes:0);
  Engine.run e;
  (* zero-byte ops still pay latency, not bandwidth *)
  Alcotest.(check (float 1e-6)) "latencies only" 0.6 (Engine.now e)

let test_pheap_peek_clear () =
  let open Danaus_sim in
  let h = Pheap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty peek" true (Pheap.peek h = None);
  Pheap.push h 3;
  Pheap.push h 1;
  Alcotest.(check bool) "peek is min" true (Pheap.peek h = Some 1);
  check_int "size" 2 (Pheap.size h);
  Pheap.clear h;
  Alcotest.(check bool) "cleared" true (Pheap.is_empty h)

let misc_hw_suite =
  let tc = Alcotest.test_case in
  [
    ( "hw.misc",
      [
        tc "zero-byte I/O" `Quick test_zero_byte_io;
        tc "pheap peek/clear" `Quick test_pheap_peek_clear;
      ] );
  ]

let suite = suite @ misc_hw_suite
