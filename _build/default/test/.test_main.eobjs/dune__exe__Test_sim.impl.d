test/test_sim.ml: Alcotest Channel Condition_sim Counters Danaus_sim Engine Float Gen Int List Mutex_sim Pheap QCheck QCheck_alcotest Rng Semaphore_sim Stats Waitgroup
