test/test_ceph.ml: Alcotest Array Cluster Crush Danaus_ceph Danaus_hw Danaus_sim Disk Engine Fspath Gen Int List Mds Namespace Net Osd Printf QCheck QCheck_alcotest Result String Striper
