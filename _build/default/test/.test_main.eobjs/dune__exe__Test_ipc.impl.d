test/test_ipc.ml: Alcotest Array Cgroup Counters Danaus_hw Danaus_ipc Danaus_kernel Danaus_sim Engine Gen Kernel List Memory Option QCheck QCheck_alcotest Ring Shm Testbed Transport
