test/test_kernel.ml: Alcotest Array Cgroup Costs Counters Cpu Danaus_hw Danaus_kernel Danaus_sim Disk Engine Fuse Kernel List Local_fs Mutex_sim Page_cache
