test/testbed.ml: Alcotest Array Cgroup Client_intf Cluster Cpu Danaus_ceph Danaus_client Danaus_hw Danaus_kernel Danaus_sim Danaus_workloads Disk Engine Kernel Lib_client Mds Net Osd Printf Stdlib
