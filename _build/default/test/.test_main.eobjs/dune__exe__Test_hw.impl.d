test/test_hw.ml: Alcotest Array Cpu Danaus_hw Danaus_sim Disk Engine Float Gen Int List Memory Net Pheap Printf QCheck QCheck_alcotest Topology
