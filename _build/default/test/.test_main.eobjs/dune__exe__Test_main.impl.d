test/test_main.ml: Alcotest Test_ceph Test_client Test_core Test_hw Test_integration Test_ipc Test_kernel Test_sim Test_union Test_workloads
