lib/hw/topology.ml: Array
