lib/hw/net.mli: Danaus_sim Engine
