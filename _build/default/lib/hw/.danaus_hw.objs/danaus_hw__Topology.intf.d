lib/hw/topology.mli:
