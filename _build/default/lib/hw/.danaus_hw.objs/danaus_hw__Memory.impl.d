lib/hw/memory.ml: Printf
