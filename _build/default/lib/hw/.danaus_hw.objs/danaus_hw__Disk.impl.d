lib/hw/disk.ml: Array Danaus_sim Engine Semaphore_sim Waitgroup
