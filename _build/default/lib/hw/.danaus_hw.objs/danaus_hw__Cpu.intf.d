lib/hw/cpu.mli: Danaus_sim Engine
