lib/hw/disk.mli: Danaus_sim Engine
