lib/hw/memory.mli:
