lib/hw/net.ml: Danaus_sim Engine Float Semaphore_sim
