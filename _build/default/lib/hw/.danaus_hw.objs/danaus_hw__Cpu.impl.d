lib/hw/cpu.ml: Array Danaus_sim Engine Float Hashtbl List String
