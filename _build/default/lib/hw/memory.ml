type t = {
  name : string;
  limit : int option;
  mutable used : int;
  mutable high_water : int;
}

let create ~name ?limit () =
  (match limit with Some l -> assert (l >= 0) | None -> ());
  { name; limit; used = 0; high_water = 0 }

let name t = t.name
let limit t = t.limit

let alloc t bytes =
  assert (bytes >= 0);
  t.used <- t.used + bytes;
  if t.used > t.high_water then t.high_water <- t.used

let free t bytes =
  assert (bytes >= 0);
  if bytes > t.used then
    invalid_arg (Printf.sprintf "Memory.free: %s: freeing %d of %d" t.name bytes t.used);
  t.used <- t.used - bytes

let used t = t.used
let high_water t = t.high_water

let over_limit t =
  match t.limit with
  | None -> 0
  | Some l -> if t.used > l then t.used - l else 0

let reset_high_water t = t.high_water <- t.used
