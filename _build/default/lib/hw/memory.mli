(** Byte-granular memory accounting domain.

    A domain is either a pool's reserved memory, the host kernel's page
    cache, or a user-level cache.  The simulator charges allocations to a
    domain and tracks the high-water mark, which is what the paper's
    Fig. 11 (maximum memory) reports. *)

type t

(** [create ~name ?limit ()] makes an empty domain.  [limit], when given,
    is advisory: {!alloc} never fails, but {!over_limit} reports
    pressure so that caches can trigger eviction. *)
val create : name:string -> ?limit:int -> unit -> t

val name : t -> string
val limit : t -> int option

(** Charge [bytes] (>= 0) to the domain. *)
val alloc : t -> int -> unit

(** Return [bytes] to the domain.  Raises [Invalid_argument] when more is
    freed than is in use. *)
val free : t -> int -> unit

val used : t -> int
val high_water : t -> int

(** Bytes above the limit (0 when unlimited or under it). *)
val over_limit : t -> int

val reset_high_water : t -> unit
