(** Static description of a host machine: sockets, cores and core groups.

    Mirrors the paper's testbed (§6.1): 4 sockets x 16 cores, where each
    adjacent core pair shares an L2 cache.  Core groups matter because the
    Danaus IPC layer maintains one request queue per core group (§3.5). *)

type t

(** [create ~sockets ~cores_per_socket ~cores_per_group] describes a
    machine.  [cores_per_group] is the number of cores sharing the
    same-level cache (2 on the paper's Opterons). *)
val create : sockets:int -> cores_per_socket:int -> cores_per_group:int -> t

(** The paper's client/server machine: 4 sockets x 16 cores, pairs. *)
val paper_machine : unit -> t

val total_cores : t -> int
val sockets : t -> int
val cores_per_socket : t -> int

(** Group id of a core. *)
val group_of_core : t -> int -> int

(** Cores belonging to a group. *)
val cores_of_group : t -> int -> int array

(** Number of core groups on the machine. *)
val group_count : t -> int

(** [core_range t ~first ~count] returns [count] consecutive core ids
    starting at [first]; raises [Invalid_argument] past the machine. *)
val core_range : t -> first:int -> count:int -> int array
