type t = { sockets : int; cores_per_socket : int; cores_per_group : int }

let create ~sockets ~cores_per_socket ~cores_per_group =
  assert (sockets >= 1 && cores_per_socket >= 1 && cores_per_group >= 1);
  assert (cores_per_socket mod cores_per_group = 0);
  { sockets; cores_per_socket; cores_per_group }

let paper_machine () = create ~sockets:4 ~cores_per_socket:16 ~cores_per_group:2
let total_cores t = t.sockets * t.cores_per_socket
let sockets t = t.sockets
let cores_per_socket t = t.cores_per_socket
let group_of_core t core = core / t.cores_per_group

let cores_of_group t group =
  Array.init t.cores_per_group (fun i -> (group * t.cores_per_group) + i)

let group_count t = total_cores t / t.cores_per_group

let core_range t ~first ~count =
  if first < 0 || count < 0 || first + count > total_cores t then
    invalid_arg "Topology.core_range: outside machine";
  Array.init count (fun i -> first + i)
