open Danaus_sim

(** Simulated multicore processor.

    Each core is a FIFO-served resource.  [compute] grabs any idle core of
    an eligible set (queueing when all are busy), holds it for the
    requested amount of simulated CPU time, and attributes the busy time
    to a tenant label.  Long bursts are transparently sliced into small
    quanta so that FIFO service approximates a time-sharing scheduler.

    The per-(core, tenant) accounting is what exposes the paper's central
    motivation result: the kernel flusher threads of a shared kernel run
    on *any activated core*, so their busy time lands on cores reserved by
    other tenants (Fig. 1a / 6a-b line charts). *)

type t

(** [create engine ~cores] makes a processor with core ids
    [0 .. cores-1].  [quantum] (default [500e-6] s) bounds the length of
    an uninterrupted burst on a core. *)
val create : ?quantum:float -> Engine.t -> cores:int -> t

val core_count : t -> int

(** [compute t ~tenant ~eligible seconds] consumes [seconds] of CPU time
    on cores drawn from [eligible], blocking while none is idle.  Must be
    called from a simulated process.  [eligible] must be non-empty. *)
val compute : t -> tenant:string -> eligible:int array -> float -> unit

(** Background (kworker-style) execution of [seconds] of work: bursts
    start only on momentarily idle cores, and the caller sleeps [backoff]
    after finding no idle core or displacing foreground work.  Background
    throughput therefore tracks the idle capacity of [eligible]. *)
val compute_background :
  t -> tenant:string -> eligible:int array -> backoff:float -> float -> unit

(** Number of compute requests currently queued (all core sets). *)
val waiting : t -> int

(** {1 Accounting} *)

(** Total busy seconds accumulated on the given cores since the last
    {!reset_usage}. *)
val busy_seconds : t -> cores:int array -> float

(** Portion of {!busy_seconds} attributed to [tenant]. *)
val busy_seconds_by : t -> cores:int array -> tenant:string -> float

(** [utilization_pct t ~cores ~tenant ~elapsed] is the busy time of
    [tenant] on [cores] as a percentage of a single core's capacity over
    [elapsed] seconds (so 2 fully-used cores report 200%). *)
val utilization_pct : t -> cores:int array -> tenant:string -> elapsed:float -> float

(** Tenants that have used the given cores, with their busy seconds. *)
val usage_breakdown : t -> cores:int array -> (string * float) list

val reset_usage : t -> unit
