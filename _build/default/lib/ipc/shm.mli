open Danaus_kernel

(** Shared-memory segment inside a pool's private IPC namespace
    (System V style, §3.2): accounted against the pool's memory. *)

type t

(** [create ~pool ~name ~bytes] allocates a segment charged to the
    pool. *)
val create : pool:Cgroup.t -> name:string -> bytes:int -> t

val name : t -> string
val bytes : t -> int
val pool : t -> Cgroup.t

(** Release the segment's memory.  Idempotent. *)
val destroy : t -> unit
