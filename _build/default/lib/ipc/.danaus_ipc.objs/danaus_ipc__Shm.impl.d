lib/ipc/shm.ml: Cgroup Danaus_hw Danaus_kernel Memory
