lib/ipc/transport.ml: Array Cgroup Counters Cpu Danaus_hw Danaus_kernel Danaus_sim Engine Hashtbl Int Kernel List Option Printf Ring Shm Topology
