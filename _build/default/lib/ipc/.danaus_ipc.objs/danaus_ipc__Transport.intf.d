lib/ipc/transport.mli: Cgroup Danaus_hw Danaus_kernel Kernel Topology
