lib/ipc/ring.mli: Danaus_sim Engine
