lib/ipc/shm.mli: Cgroup Danaus_kernel
