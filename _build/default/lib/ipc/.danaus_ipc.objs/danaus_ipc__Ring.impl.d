lib/ipc/ring.ml: Array Danaus_sim Engine Option Queue
