open Danaus_hw
open Danaus_kernel

type t = {
  seg_name : string;
  seg_bytes : int;
  seg_pool : Cgroup.t;
  mutable live : bool;
}

let create ~pool ~name ~bytes =
  assert (bytes >= 0);
  Memory.alloc (Cgroup.memory pool) bytes;
  { seg_name = name; seg_bytes = bytes; seg_pool = pool; live = true }

let name t = t.seg_name
let bytes t = t.seg_bytes
let pool t = t.seg_pool

let destroy t =
  if t.live then begin
    t.live <- false;
    Memory.free (Cgroup.memory t.seg_pool) t.seg_bytes
  end
