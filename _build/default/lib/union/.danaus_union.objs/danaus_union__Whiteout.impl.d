lib/union/whiteout.ml: Danaus_ceph Fspath String
