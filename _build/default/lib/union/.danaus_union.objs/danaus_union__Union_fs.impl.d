lib/union/union_fs.ml: Cgroup Client_intf Danaus_ceph Danaus_client Danaus_kernel Fspath Hashtbl List Namespace Option Result Stdlib String Whiteout
