lib/union/union_fs.mli: Cgroup Client_intf Danaus_client Danaus_kernel
