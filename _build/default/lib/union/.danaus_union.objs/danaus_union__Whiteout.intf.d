lib/union/whiteout.mli:
