open Danaus_ceph

let prefix = ".wh."

let of_path path =
  let dir = Fspath.parent path and name = Fspath.basename path in
  Fspath.join dir (prefix ^ name)

let is_whiteout name = String.starts_with ~prefix name

let hidden_name name =
  if is_whiteout name then
    Some (String.sub name (String.length prefix) (String.length name - String.length prefix))
  else None
