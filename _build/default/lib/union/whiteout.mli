(** Whiteout entry naming (unionfs/AUFS convention: ".wh.<name>"). *)

(** Whiteout path covering [path] (same directory, mangled name). *)
val of_path : string -> string

(** [is_whiteout name] holds for a ".wh."-prefixed directory entry. *)
val is_whiteout : string -> bool

(** Original entry name hidden by a whiteout entry name. *)
val hidden_name : string -> string option
