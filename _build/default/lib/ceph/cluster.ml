open Danaus_sim
open Danaus_hw

type t = {
  engine : Engine.t;
  net : Net.t;
  client_node : Net.node;
  server_node : Net.node;
  cluster_osds : Osd.t array;
  cluster_mds : Mds.t;
  replicas : int;
  obj_size : int;
}

let message_bytes = 256

let create engine ~net ~client_node ~server_node ~osds ~mds ~replicas
    ~object_size =
  assert (Array.length osds >= replicas && replicas >= 1 && object_size > 0);
  {
    engine;
    net;
    client_node;
    server_node;
    cluster_osds = osds;
    cluster_mds = mds;
    replicas;
    obj_size = object_size;
  }

(* A second client machine's view of the same cluster: shares the OSDs,
   MDS and namespace, but enters the network through its own link. *)
let for_host t ~client_node = { t with client_node }

let osds t = t.cluster_osds
let mds t = t.cluster_mds
let object_size t = t.obj_size

let to_server t ~bytes =
  Net.transfer t.net ~src:t.client_node ~dst:t.server_node ~bytes

let to_client t ~bytes =
  Net.transfer t.net ~src:t.server_node ~dst:t.client_node ~bytes

let placement t obj =
  Crush.place ~osds:(Array.length t.cluster_osds) ~replicas:t.replicas obj

let write_object t ~obj ~bytes =
  to_server t ~bytes:(bytes + message_bytes);
  let targets =
    List.filter (fun i -> Osd.is_up t.cluster_osds.(i)) (placement t obj)
  in
  if targets = [] then
    failwith ("Cluster.write_object: no replica of " ^ obj ^ " is up");
  let wg = Waitgroup.create t.engine in
  List.iter
    (fun i ->
      Waitgroup.add wg;
      Engine.fork (fun () ->
          Osd.write t.cluster_osds.(i) ~obj ~bytes;
          Waitgroup.finish wg))
    targets;
  Waitgroup.wait wg;
  to_client t ~bytes:message_bytes

let read_object t ~obj ~bytes =
  to_server t ~bytes:message_bytes;
  (* primary first; fail over to the next up replica in CRUSH order *)
  match List.find_opt (fun i -> Osd.is_up t.cluster_osds.(i)) (placement t obj) with
  | None -> failwith ("Cluster.read_object: no replica of " ^ obj ^ " is up")
  | Some target ->
      Osd.read t.cluster_osds.(target) ~obj ~bytes;
      to_client t ~bytes:(bytes + message_bytes)

let over_objects t ~ino ~off ~len ~io =
  let parts = Striper.objects ~object_size:t.obj_size ~ino ~off ~len in
  match parts with
  | [] -> ()
  | [ (obj, bytes) ] -> io ~obj ~bytes
  | parts ->
      let wg = Waitgroup.create t.engine in
      List.iter
        (fun (obj, bytes) ->
          Waitgroup.add wg;
          Engine.fork (fun () ->
              io ~obj ~bytes;
              Waitgroup.finish wg))
        parts;
      Waitgroup.wait wg

let write_range t ~ino ~off ~len =
  over_objects t ~ino ~off ~len ~io:(fun ~obj ~bytes -> write_object t ~obj ~bytes)

let read_range t ~ino ~off ~len =
  over_objects t ~ino ~off ~len ~io:(fun ~obj ~bytes -> read_object t ~obj ~bytes)

let delete_range t ~ino ~size =
  List.iter
    (fun (obj, _) ->
      Array.iter (fun osd -> Osd.delete osd ~obj) t.cluster_osds)
    (Striper.objects ~object_size:t.obj_size ~ino ~off:0 ~len:size)

let meta t f =
  to_server t ~bytes:message_bytes;
  let r = Mds.perform t.cluster_mds f in
  to_client t ~bytes:message_bytes;
  r

let lookup t path = meta t (fun ns -> Namespace.lookup ns path)
let create_file t path = meta t (fun ns -> Namespace.create_file ns path)
let mkdir_p t path = meta t (fun ns -> Namespace.mkdir_p ns path)
let readdir t path = meta t (fun ns -> Namespace.readdir ns path)
let unlink t path = meta t (fun ns -> Namespace.unlink ns path)
let rename t ~src ~dst = meta t (fun ns -> Namespace.rename ns ~src ~dst)
let set_size t path size = meta t (fun ns -> Namespace.set_size ns path size)
let namespace t = Mds.namespace t.cluster_mds
