(** Authoritative filesystem namespace held by the metadata server:
    the inode table and directory tree of the distributed filesystem. *)

type t

type attr = { ino : int; size : int; is_dir : bool }

type error = No_entry | Exists | Not_dir | Is_dir | Not_empty | No_parent

val error_to_string : error -> string

(** Fresh namespace containing only the root directory "/". *)
val create : unit -> t

val lookup : t -> string -> attr option

(** Create a regular file of size 0; the parent must exist and be a
    directory. *)
val create_file : t -> string -> (attr, error) result

val mkdir : t -> string -> (attr, error) result

(** Create the directory and any missing ancestors. *)
val mkdir_p : t -> string -> (attr, error) result

(** Child names of a directory, sorted. *)
val readdir : t -> string -> (string list, error) result

(** Remove a file. *)
val unlink : t -> string -> (unit, error) result

(** Remove an empty directory. *)
val rmdir : t -> string -> (unit, error) result

(** Move a file or (sub)tree; the destination must not exist and the
    destination parent must be a directory. *)
val rename : t -> src:string -> dst:string -> (unit, error) result

(** Grow/shrink a file's recorded size. *)
val set_size : t -> string -> int -> (unit, error) result

(** Number of entries (including "/"). *)
val entry_count : t -> int
