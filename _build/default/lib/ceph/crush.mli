(** Deterministic pseudo-random object placement (CRUSH-like).

    Maps an object name to an ordered list of distinct OSDs using
    rendezvous (highest-random-weight) hashing, so placement is stable
    under the same cluster size and spreads uniformly. *)

(** [place ~osds ~replicas name] returns [replicas] distinct OSD indices
    in [\[0, osds)] for the object [name].  Requires
    [1 <= replicas <= osds]. *)
val place : osds:int -> replicas:int -> string -> int list

(** [primary ~osds name] is the first placement target. *)
val primary : osds:int -> string -> int
