let normalize p =
  let parts = String.split_on_char '/' p |> List.filter (fun s -> s <> "") in
  "/" ^ String.concat "/" parts

let parent p =
  let p = normalize p in
  match String.rindex_opt p '/' with
  | None | Some 0 -> "/"
  | Some i -> String.sub p 0 i

let basename p =
  let p = normalize p in
  if p = "/" then ""
  else
    match String.rindex_opt p '/' with
    | None -> p
    | Some i -> String.sub p (i + 1) (String.length p - i - 1)

let join dir name =
  let dir = normalize dir in
  if dir = "/" then "/" ^ name else dir ^ "/" ^ name

let is_root p = normalize p = "/"
