(** File-to-object striping: a file's byte range maps to fixed-size
    RADOS-style objects named [<ino>.<index>]. *)

(** Default Ceph object size (4 MiB). *)
val default_object_size : int

(** [objects ~object_size ~ino ~off ~len] lists the [(object_name,
    bytes_in_object)] pairs covering the byte range; empty for
    [len <= 0]. *)
val objects :
  object_size:int -> ino:int -> off:int -> len:int -> (string * int) list

(** Name of the object holding byte [off] of inode [ino]. *)
val object_of : object_size:int -> ino:int -> off:int -> string
