lib/ceph/fspath.mli:
