lib/ceph/striper.mli:
