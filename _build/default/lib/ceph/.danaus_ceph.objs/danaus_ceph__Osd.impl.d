lib/ceph/osd.ml: Danaus_hw Danaus_sim Disk Engine Hashtbl Option Semaphore_sim Stdlib
