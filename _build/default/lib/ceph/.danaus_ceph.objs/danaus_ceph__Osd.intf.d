lib/ceph/osd.mli: Danaus_hw Danaus_sim Disk Engine
