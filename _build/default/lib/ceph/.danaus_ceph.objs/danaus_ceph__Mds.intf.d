lib/ceph/mds.mli: Danaus_sim Engine Namespace
