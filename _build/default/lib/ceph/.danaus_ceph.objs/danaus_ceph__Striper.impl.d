lib/ceph/striper.ml: List Printf Stdlib
