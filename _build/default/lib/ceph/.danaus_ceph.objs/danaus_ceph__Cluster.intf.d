lib/ceph/cluster.mli: Danaus_hw Danaus_sim Engine Mds Namespace Net Osd
