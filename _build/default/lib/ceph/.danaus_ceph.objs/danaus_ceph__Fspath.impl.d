lib/ceph/fspath.ml: List String
