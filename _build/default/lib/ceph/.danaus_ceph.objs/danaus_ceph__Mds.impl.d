lib/ceph/mds.ml: Danaus_sim Engine Namespace Semaphore_sim
