lib/ceph/namespace.mli:
