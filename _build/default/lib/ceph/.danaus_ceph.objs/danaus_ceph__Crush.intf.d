lib/ceph/crush.mli:
