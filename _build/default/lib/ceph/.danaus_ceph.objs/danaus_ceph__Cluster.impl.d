lib/ceph/cluster.ml: Array Crush Danaus_hw Danaus_sim Engine List Mds Namespace Net Osd Striper Waitgroup
