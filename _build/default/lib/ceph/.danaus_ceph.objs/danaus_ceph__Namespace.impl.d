lib/ceph/namespace.ml: Fspath Hashtbl List Option String
