lib/ceph/crush.ml: Char Int Int64 List Printf String
