(** Slash-separated absolute path manipulation shared by the metadata
    server, the clients and the union filesystem. *)

(** Normalise: collapse duplicate slashes, drop trailing slash (except
    root), ensure a leading slash. *)
val normalize : string -> string

(** Parent directory ("/" is its own parent). *)
val parent : string -> string

(** Last component ("" for root). *)
val basename : string -> string

(** [join dir name] appends a component. *)
val join : string -> string -> string

(** [is_root p] holds for "/". *)
val is_root : string -> bool
