type attr = { ino : int; size : int; is_dir : bool }

type entry = { mutable e_size : int; e_ino : int; e_is_dir : bool }

type t = {
  entries : (string, entry) Hashtbl.t;
  children : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  mutable next_ino : int;
}

type error = No_entry | Exists | Not_dir | Is_dir | Not_empty | No_parent

let error_to_string = function
  | No_entry -> "no such file or directory"
  | Exists -> "file exists"
  | Not_dir -> "not a directory"
  | Is_dir -> "is a directory"
  | Not_empty -> "directory not empty"
  | No_parent -> "parent does not exist"

let create () =
  let t = { entries = Hashtbl.create 1024; children = Hashtbl.create 256; next_ino = 2 } in
  Hashtbl.add t.entries "/" { e_size = 0; e_ino = 1; e_is_dir = true };
  Hashtbl.add t.children "/" (Hashtbl.create 16);
  t

let attr_of e = { ino = e.e_ino; size = e.e_size; is_dir = e.e_is_dir }

let lookup t path =
  Option.map attr_of (Hashtbl.find_opt t.entries (Fspath.normalize path))

let child_table t dir =
  match Hashtbl.find_opt t.children dir with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.add t.children dir tbl;
      tbl

let add_entry t path ~is_dir =
  let path = Fspath.normalize path in
  match Hashtbl.find_opt t.entries path with
  | Some _ -> Error Exists
  | None -> begin
      let parent = Fspath.parent path in
      match Hashtbl.find_opt t.entries parent with
      | None -> Error No_parent
      | Some p when not p.e_is_dir -> Error Not_dir
      | Some _ ->
          let e = { e_size = 0; e_ino = t.next_ino; e_is_dir = is_dir } in
          t.next_ino <- t.next_ino + 1;
          Hashtbl.add t.entries path e;
          Hashtbl.replace (child_table t parent) (Fspath.basename path) ();
          if is_dir then Hashtbl.add t.children path (Hashtbl.create 8);
          Ok (attr_of e)
    end

let create_file t path = add_entry t path ~is_dir:false
let mkdir t path = add_entry t path ~is_dir:true

let rec mkdir_p t path =
  let path = Fspath.normalize path in
  match Hashtbl.find_opt t.entries path with
  | Some e when e.e_is_dir -> Ok (attr_of e)
  | Some _ -> Error Not_dir
  | None -> begin
      if Fspath.is_root path then Error No_parent
      else
        match mkdir_p t (Fspath.parent path) with
        | Error _ as err -> err
        | Ok _ -> mkdir t path
    end

let readdir t path =
  let path = Fspath.normalize path in
  match Hashtbl.find_opt t.entries path with
  | None -> Error No_entry
  | Some e when not e.e_is_dir -> Error Not_dir
  | Some _ ->
      let tbl = child_table t path in
      Ok (Hashtbl.fold (fun name () acc -> name :: acc) tbl [] |> List.sort String.compare)

let remove_from_parent t path =
  let parent = Fspath.parent path in
  match Hashtbl.find_opt t.children parent with
  | Some tbl -> Hashtbl.remove tbl (Fspath.basename path)
  | None -> ()

let unlink t path =
  let path = Fspath.normalize path in
  match Hashtbl.find_opt t.entries path with
  | None -> Error No_entry
  | Some e when e.e_is_dir -> Error Is_dir
  | Some _ ->
      Hashtbl.remove t.entries path;
      remove_from_parent t path;
      Ok ()

let rmdir t path =
  let path = Fspath.normalize path in
  match Hashtbl.find_opt t.entries path with
  | None -> Error No_entry
  | Some e when not e.e_is_dir -> Error Not_dir
  | Some _ ->
      let tbl = child_table t path in
      if Hashtbl.length tbl > 0 then Error Not_empty
      else begin
        Hashtbl.remove t.entries path;
        Hashtbl.remove t.children path;
        remove_from_parent t path;
        Ok ()
      end

let rename t ~src ~dst =
  let src = Fspath.normalize src and dst = Fspath.normalize dst in
  match Hashtbl.find_opt t.entries src with
  | None -> Error No_entry
  | Some _ when Hashtbl.mem t.entries dst -> Error Exists
  | Some e -> begin
      match Hashtbl.find_opt t.entries (Fspath.parent dst) with
      | None -> Error No_parent
      | Some p when not p.e_is_dir -> Error Not_dir
      | Some _ ->
          (* move the entry and, for directories, every descendant *)
          let moves = ref [ (src, dst) ] in
          if e.e_is_dir then begin
            let prefix = src ^ "/" in
            Hashtbl.iter
              (fun path _ ->
                if String.length path > String.length prefix
                   && String.starts_with ~prefix path then
                  moves :=
                    ( path,
                      dst
                      ^ String.sub path (String.length src)
                          (String.length path - String.length src) )
                    :: !moves)
              t.entries
          end;
          List.iter
            (fun (old_path, new_path) ->
              let entry = Hashtbl.find t.entries old_path in
              Hashtbl.remove t.entries old_path;
              Hashtbl.replace t.entries new_path entry;
              (match Hashtbl.find_opt t.children old_path with
              | Some tbl ->
                  Hashtbl.remove t.children old_path;
                  Hashtbl.replace t.children new_path tbl
              | None -> ()))
            !moves;
          remove_from_parent t src;
          Hashtbl.replace (child_table t (Fspath.parent dst)) (Fspath.basename dst) ();
          Ok ()
    end

let set_size t path size =
  let path = Fspath.normalize path in
  match Hashtbl.find_opt t.entries path with
  | None -> Error No_entry
  | Some e when e.e_is_dir -> Error Is_dir
  | Some e ->
      e.e_size <- size;
      Ok ()

let entry_count t = Hashtbl.length t.entries
