open Danaus_sim

(** Metadata server: wraps the authoritative {!Namespace} with service
    costs (bounded concurrency and per-op CPU). *)

type t

val create : Engine.t -> concurrency:int -> op_cost:float -> t

(** Run a namespace operation under the MDS service discipline
    (blocking). *)
val perform : t -> (Namespace.t -> 'a) -> 'a

(** Direct, cost-free namespace access for cluster setup and tests. *)
val namespace : t -> Namespace.t

(** Operations served so far. *)
val ops : t -> int
