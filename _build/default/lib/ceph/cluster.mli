open Danaus_sim
open Danaus_hw

(** The assembled storage cluster: OSDs + MDS behind the network.

    Every operation is called from a client-host process and blocks for
    the full round trip: client-host TX link, server-host RX link, OSD or
    MDS service, and the reply path.  Data is striped over
    {!Striper.default_object_size} objects and placed by {!Crush}. *)

type t

(** [create engine ~net ~client_node ~server_node ~osds ~mds ~replicas
    ~object_size] wires the cluster.  [client_node]/[server_node] are the
    two machines' network attachments (the 20 Gbps bonded links of the
    paper's testbed). *)
val create :
  Engine.t ->
  net:Net.t ->
  client_node:Net.node ->
  server_node:Net.node ->
  osds:Osd.t array ->
  mds:Mds.t ->
  replicas:int ->
  object_size:int ->
  t

(** [for_host t ~client_node] is the same cluster as seen from another
    client machine: identical OSDs, MDS and namespace, but data and
    metadata traffic uses [client_node]'s network link.  This is what
    makes cross-host data sharing — and container migration — work over
    the shared filesystem (§5, §9). *)
val for_host : t -> client_node:Net.node -> t

val osds : t -> Osd.t array
val mds : t -> Mds.t
val object_size : t -> int

(** {1 Data path} *)

(** Write [len] bytes of inode [ino] starting at [off]: striped into
    objects, each sent over the network and committed on [replicas]
    OSDs. *)
val write_range : t -> ino:int -> off:int -> len:int -> unit

(** Read [len] bytes of inode [ino] from the primary OSDs. *)
val read_range : t -> ino:int -> off:int -> len:int -> unit

(** Drop all objects of inode [ino] up to [size] bytes. *)
val delete_range : t -> ino:int -> size:int -> unit

(** {1 Metadata path (one network round trip + MDS service each)} *)

val lookup : t -> string -> Namespace.attr option
val create_file : t -> string -> (Namespace.attr, Namespace.error) result
val mkdir_p : t -> string -> (Namespace.attr, Namespace.error) result
val readdir : t -> string -> (string list, Namespace.error) result
val unlink : t -> string -> (unit, Namespace.error) result
val rename : t -> src:string -> dst:string -> (unit, Namespace.error) result
val set_size : t -> string -> int -> (unit, Namespace.error) result

(** Cost-free namespace access for dataset setup (no simulated time). *)
val namespace : t -> Namespace.t
