lib/experiments/migration.mli: Report
