lib/experiments/exp_rocksdb.ml: Array Config Container_engine Danaus Danaus_sim Danaus_workloads Engine Kvstore List Params Printf Report Stats Stdlib Testbed Workload
