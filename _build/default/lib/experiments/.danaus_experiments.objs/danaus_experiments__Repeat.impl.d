lib/experiments/repeat.ml: Danaus_sim Float Printf Stats
