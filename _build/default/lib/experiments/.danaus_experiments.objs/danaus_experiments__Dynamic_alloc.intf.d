lib/experiments/dynamic_alloc.mli: Report
