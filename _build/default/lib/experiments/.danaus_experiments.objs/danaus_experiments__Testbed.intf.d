lib/experiments/testbed.mli: Cgroup Cluster Container_engine Cpu Danaus Danaus_ceph Danaus_hw Danaus_kernel Danaus_sim Danaus_workloads Disk Engine Kernel Local_fs Net Topology
