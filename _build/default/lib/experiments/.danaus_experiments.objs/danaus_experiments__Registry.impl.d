lib/experiments/registry.ml: Ablations Config Contention Danaus Dynamic_alloc Exp_filerw Exp_fileserver Exp_rocksdb Exp_seqio Exp_startup List Migration Report String
