lib/experiments/exp_seqio.mli: Report
