lib/experiments/report.ml: Buffer List Option Printf Stdlib String
