lib/experiments/exp_fileserver.mli: Report
