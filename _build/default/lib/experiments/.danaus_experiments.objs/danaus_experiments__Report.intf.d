lib/experiments/report.mli:
