lib/experiments/params.mli: Costs Danaus_kernel
