lib/experiments/exp_startup.ml: Array Cgroup Config Container_engine Counters Danaus Danaus_kernel Danaus_sim Danaus_workloads Engine Kernel List Params Printf Report Startup Testbed
