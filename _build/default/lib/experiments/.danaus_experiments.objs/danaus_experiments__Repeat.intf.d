lib/experiments/repeat.mli: Danaus_sim Stats
