lib/experiments/contention.mli: Report
