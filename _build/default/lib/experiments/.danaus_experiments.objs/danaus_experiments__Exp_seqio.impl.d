lib/experiments/exp_seqio.ml: Array Config Container_engine Counters Danaus Danaus_kernel Danaus_sim Danaus_workloads Engine Kernel List Params Printf Report Seqio Stdlib Testbed
