lib/experiments/exp_filerw.ml: Array Config Container_engine Danaus Danaus_kernel Danaus_sim Danaus_workloads Engine Filerw Kernel List Page_cache Params Printf Report Stdlib Testbed
