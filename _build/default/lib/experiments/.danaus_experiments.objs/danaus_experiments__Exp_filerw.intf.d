lib/experiments/exp_filerw.mli: Report
