lib/experiments/exp_fileserver.ml: Array Config Container_engine Counters Danaus Danaus_kernel Danaus_sim Danaus_workloads Engine Fileserver Kernel List Params Printf Report Stdlib Testbed
