lib/experiments/params.ml: Costs Danaus_kernel
