lib/experiments/exp_startup.mli: Danaus Report
