lib/experiments/exp_rocksdb.mli: Report
