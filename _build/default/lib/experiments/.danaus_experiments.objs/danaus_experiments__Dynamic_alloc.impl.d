lib/experiments/dynamic_alloc.ml: Cgroup Config Container_engine Danaus Danaus_kernel Danaus_sim Danaus_workloads Engine Fileserver List Printf Report Stats Sysbench Testbed
