lib/experiments/ablations.ml: Array Config Container_engine Danaus Danaus_sim Danaus_workloads Engine Filerw Fileserver List Params Printf Report Seqio Testbed
