open Danaus_kernel

(** Calibrated simulation parameters (single source of truth).

    The machine constants mirror the paper's testbed (§6.1): two 64-core
    machines, 256 GB RAM, 20 Gbps bonded links, a 6-OSD + 1-MDS Ceph
    cluster on ramdisks, and 4-disk local RAID-0 arrays.  The CPU cost
    constants are calibrated so that the relative shapes of the paper's
    figures emerge (see DESIGN.md §1). *)

val client_cores : int
val client_mem : int

(** Per container pool (§6.2): 2 cores, 8 GB. *)
val pool_cores : int

val pool_mem : int

(** Network: 20 Gbps per machine, ~20 us switch latency. *)
val net_bandwidth : float

val net_latency : float

val osd_count : int
val osd_disk_bandwidth : float
val osd_concurrency : int
val osd_op_cost : float
val osd_cpu_per_byte : float
val mds_concurrency : int
val mds_op_cost : float
val replicas : int
val object_size : int

(** Local direct-attached disks (125-204 MB/s HDDs, 4-way RAID-0). *)
val local_disk_bandwidth : float

val local_disk_latency : float
val local_disk_seek : float
val local_disks : int

(** Kernel/client CPU cost model. *)
val costs : Costs.t

(** Dirty page flushing defaults (§6.1): 1 s writeback, 5 s expire. *)
val writeback_interval : float

val expire_interval : float
