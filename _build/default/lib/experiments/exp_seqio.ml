open Danaus_sim
open Danaus_kernel
open Danaus
open Danaus_workloads

let mib n = n * 1024 * 1024

let seq_params ~quick =
  if quick then
    (* 20 s so that every config reaches writeback steady state within
       the measurement window *)
    { Seqio.default_params with Seqio.file_size = mib 256; duration = 15.0 }
  else Seqio.default_params

type mode = Write | Read

let run_cell ~quick ~config ~pools ~mode =
  let p = seq_params ~quick in
  let activated = Stdlib.min Params.client_cores (2 * pools) in
  let tb = Testbed.create ~activated () in
  let containers =
    List.init pools (fun i ->
        let pool = Testbed.pool tb i in
        ( pool,
          Container_engine.launch tb.Testbed.containers ~config ~pool
            ~id:(Printf.sprintf "seq%d" i) () ))
  in
  (* reads run over a warm file *)
  (if mode = Read then begin
     let warmed = ref 0 in
     List.iteri
       (fun i (pool, ct) ->
         Engine.spawn tb.Testbed.engine (fun () ->
             let ctx = Testbed.ctx tb ~pool ~seed:(1100 + i) in
             Seqio.prepopulate ctx ~view:ct.Container_engine.view p;
             incr warmed))
       containers;
     Testbed.drive tb ~stop:(fun () -> !warmed = pools)
   end);
  Testbed.reset_metrics tb;
  let results = Array.make pools None in
  let done_count = ref 0 in
  List.iteri
    (fun i (pool, ct) ->
      Engine.spawn tb.Testbed.engine (fun () ->
          let ctx = Testbed.ctx tb ~pool ~seed:(1200 + i) in
          let r =
            match mode with
            | Write -> Seqio.run_write ctx ~view:ct.Container_engine.view p
            | Read -> Seqio.run_read ctx ~view:ct.Container_engine.view p
          in
          results.(i) <- Some r;
          incr done_count))
    containers;
  Testbed.drive tb ~stop:(fun () -> !done_count = pools);
  let total =
    Array.fold_left
      (fun acc r ->
        match r with Some r -> acc +. r.Seqio.throughput_mbps | None -> acc)
      0.0 results
  in
  let io_wait =
    Counters.total (Kernel.counters tb.Testbed.kernel) ~metric:"io_wait"
  in
  (total, io_wait)

let figure ~quick ~mode =
  let pool_counts = if quick then [ 1; 8 ] else [ 1; 4; 8; 16; 32 ] in
  let configs = [ Config.d; Config.f; Config.k ] in
  List.map
    (fun pools ->
      let cells = List.map (fun c -> run_cell ~quick ~config:c ~pools ~mode) configs in
      string_of_int pools
      :: (List.map (fun (t, _) -> Report.mbps t) cells
         @ List.map (fun (_, w) -> Report.f1 w) cells))
    pool_counts

let fig9 ~quick =
  let configs = [ "D"; "F"; "K" ] in
  let header =
    "pools"
    :: (List.map (fun c -> c ^ " MB/s") configs
       @ List.map (fun c -> c ^ " iowait s") configs)
  in
  [
    Report.make ~id:"fig9w" ~title:"Seqwrite scaleout (total MB/s)" ~header
      (figure ~quick ~mode:Write);
    Report.make ~id:"fig9r" ~title:"Seqread scaleout (total MB/s, warm cache)"
      ~header (figure ~quick ~mode:Read);
  ]
