(** Plain-text tables for the benchmark harness output and
    EXPERIMENTS.md. *)

type t = {
  id : string;  (** e.g. "fig6a" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val make :
  id:string -> title:string -> header:string list -> ?notes:string list ->
  string list list -> t

(** Render as an aligned text table. *)
val render : t -> string

(** Render as CSV (header row first; cells quoted when needed). *)
val to_csv : t -> string

(** Formatting helpers. *)
val f1 : float -> string

val f2 : float -> string

(** Milliseconds with 2 decimals. *)
val ms : float -> string

(** MB/s with one decimal. *)
val mbps : float -> string

(** Ratio like "3.7x". *)
val ratio : float -> string
