type t = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~header ?(notes = []) rows = { id; title; header; rows; notes }

let render t =
  let all = t.header :: t.rows in
  let cols =
    List.fold_left (fun acc row -> Stdlib.max acc (List.length row)) 0 all
  in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> Stdlib.max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = Option.value ~default:"" (List.nth_opt row c) in
           cell ^ String.make (Stdlib.max 0 (w - String.length cell)) ' ')
         widths)
    |> String.trim
    |> fun s -> s ^ "\n"
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "== %s: %s ==\n" t.id t.title);
  Buffer.add_string buf (render_row t.header);
  Buffer.add_string buf
    (String.make (List.fold_left ( + ) (2 * (cols - 1)) widths) '-' ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row)) t.rows;
  List.iter (fun n -> Buffer.add_string buf ("note: " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let ms v = Printf.sprintf "%.2fms" (v *. 1e3)
let mbps v = Printf.sprintf "%.1f" v
let ratio v = Printf.sprintf "%.1fx" v

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let row cells = String.concat "," (List.map csv_cell cells) ^ "\n" in
  String.concat "" (List.map row (t.header :: t.rows))
