open Danaus_sim

(** The paper's §6.1 stopping rule: repeat an experiment (up to 10
    times, fresh seed each time) until the half-length of the 95%
    confidence interval of the primary metric is within 5% of the mean. *)

type outcome = {
  mean : float;
  ci95 : float;  (** half-length of the 95% confidence interval *)
  runs : int;
  converged : bool;  (** CI within the tolerance before [max_runs] *)
  samples : Stats.t;
}

(** [until_stable ?min_runs ?max_runs ?tolerance f] calls [f ~seed] with
    seeds 1, 2, ... and stops once the CI criterion holds (after at
    least [min_runs], default 3) or [max_runs] (default 10) is reached.
    [tolerance] is the CI/mean bound (default 0.05). *)
val until_stable :
  ?min_runs:int ->
  ?max_runs:int ->
  ?tolerance:float ->
  (seed:int -> float) ->
  outcome

(** Render as "123.4 ±5.6 (n=4)". *)
val to_string : outcome -> string
