open Danaus_sim

type outcome = {
  mean : float;
  ci95 : float;
  runs : int;
  converged : bool;
  samples : Stats.t;
}

let until_stable ?(min_runs = 3) ?(max_runs = 10) ?(tolerance = 0.05) f =
  assert (min_runs >= 1 && max_runs >= min_runs && tolerance > 0.0);
  let samples = Stats.create () in
  let stable () =
    let n = Stats.count samples in
    n >= min_runs
    && Stats.ci95_halfwidth samples <= tolerance *. Float.abs (Stats.mean samples)
  in
  let seed = ref 0 in
  while (not (stable ())) && Stats.count samples < max_runs do
    incr seed;
    Stats.add samples (f ~seed:!seed)
  done;
  {
    mean = Stats.mean samples;
    ci95 = Stats.ci95_halfwidth samples;
    runs = Stats.count samples;
    converged = stable ();
    samples;
  }

let to_string o = Printf.sprintf "%.1f ±%.1f (n=%d)" o.mean o.ci95 o.runs
